package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/faust"
	"extdict/internal/mat"
	"extdict/internal/matio"
	"extdict/internal/perf"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// cmdLasso solves min ‖A·x - y‖² + λ‖x‖₁ on raw, transformed, or SGD
// operators and reports solution statistics.
func cmdLasso(args []string) error {
	fs := flag.NewFlagSet("lasso", flag.ContinueOnError)
	in := fs.String("in", "", "data matrix (.csv or .edm); required")
	yPath := fs.String("y", "", "observation vector file (single CSV column); required")
	lambda := fs.Float64("lambda", 0, "ℓ₁ weight (0 = 0.05·‖Aᵀy‖∞)")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	raw := fs.Bool("raw", false, "iterate on the untransformed AᵀA baseline")
	sgd := fs.Int("sgd", 0, "use the SGD baseline with this batch size")
	iters := fs.Int("iters", 500, "maximum iterations")
	seed := fs.Uint64("seed", 1, "random seed")
	faults := fs.Uint64("faults", 0, "inject a deterministic fault schedule drawn from this seed and recover through the supervisor (0 = off)")
	out := fs.String("out", "", "optional path to write the solution vector")
	spec := transformFlags(fs, eps, raw, sgd, seed)
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *yPath == "" {
		return fmt.Errorf("lasso: -in and -y are required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	y, err := loadVector(*yPath, a.Rows)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)

	build, err := buildOperatorOn(a, plat, spec())
	if err != nil {
		return err
	}
	if *lambda <= 0 {
		*lambda = 0.05 * mat.NormInf(a.MulVecT(y, nil))
	}
	opts := solver.LassoOpts{Lambda: *lambda, MaxIters: *iters}
	aty, y2 := a.MulVecT(y, nil), mat.Dot(y, y)
	op := build(cluster.NewComm(plat))
	sw := perf.StartWall()
	var res solver.LassoResult
	if *faults != 0 {
		// Each lasso iteration is one Allreduce = two collective phases.
		plan := cliFaultPlan(*faults, plat.Topology.P(), int64(2*(*iters)))
		comm := cluster.NewComm(plat)
		comm.InstallFaultPlan(plan)
		var rec solver.Recovery
		res, rec, err = solver.SupervisedLasso(comm, build, aty, y2, opts, solver.SupervisorOpts{})
		if err != nil {
			return err
		}
		printRecovery(plan, rec)
	} else {
		res = solver.Lasso(op, aty, y2, opts)
	}
	nz := 0
	for _, v := range res.X {
		if v != 0 {
			nz++
		}
	}
	fmt.Printf("%s on %s: %d iters (converged=%v), objective %.6g, %d/%d nonzeros\n",
		op.Name(), plat.Topology, res.Iters, res.Converged, res.Objective, nz, len(res.X))
	fmt.Printf("modeled time %.3f ms, wall %v\n",
		res.Stats.ModeledTime*1e3, sw.Elapsed().Round(time.Microsecond))
	if *out != "" {
		xm := mat.NewDenseData(len(res.X), 1, res.X)
		if err := matio.Save(*out, xm); err != nil {
			return err
		}
		fmt.Printf("wrote solution to %s\n", *out)
	}
	return nil
}

// cmdCluster runs spectral partitioning of the data columns.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	in := fs.String("in", "", "data matrix (.csv or .edm); required")
	k := fs.Int("k", 2, "number of clusters")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	raw := fs.Bool("raw", false, "iterate on the untransformed AᵀA baseline")
	seed := fs.Uint64("seed", 1, "random seed")
	spec := transformFlags(fs, eps, raw, nil, seed)
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("cluster: -in is required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)
	op, err := buildOperator(a, plat, spec())
	if err != nil {
		return err
	}
	res := solver.SpectralCluster(op, solver.SpectralOpts{Clusters: *k, Seed: *seed})
	sizes := make([]int, *k)
	for _, c := range res.Assign {
		sizes[c]++
	}
	fmt.Printf("%s on %s: %d columns into %d clusters, sizes %v\n",
		op.Name(), plat.Topology, len(res.Assign), *k, sizes)
	fmt.Printf("k-means inertia %.4f; %d power iterations, modeled %.3f ms\n",
		res.Inertia, res.Eigen.Iters, res.Eigen.Stats.ModeledTime*1e3)
	return nil
}

// opSpec collects the operator-selection knobs shared by the solver
// subcommands: the classic raw/SGD switches plus the transform family and
// its FastDict chain shape.
type opSpec struct {
	eps       float64
	raw       bool
	sgdBatch  int
	seed      uint64
	transform string // "exd", "fastdict", or "auto"
	factors   int    // fastdict chain depth (0 = faust default)
	budget    int    // fastdict per-factor nnz budget (0 = faust default)
	reuse     int    // iterations the operator amortizes over (auto mode)
}

// transformFlags registers the operator-family flags and returns a closure
// assembling the spec after parsing.
func transformFlags(fs *flag.FlagSet, eps *float64, raw *bool, sgd *int, seed *uint64) func() opSpec {
	transform := fs.String("transform", "exd", "transformed operator family: exd, fastdict, or auto (modeled-cost choice)")
	factors := fs.Int("factors", 0, "fastdict: factor-chain depth k (0 = default 4)")
	budget := fs.Int("nnzbudget", 0, "fastdict: per-factor nnz budget (0 = M·L/(4·k), a 4x compression)")
	reuse := fs.Int("reuse", 1000, "auto: iterations the factorization cost amortizes over")
	return func() opSpec {
		s := opSpec{eps: *eps, seed: *seed, transform: *transform,
			factors: *factors, budget: *budget, reuse: *reuse}
		if raw != nil {
			s.raw = *raw
		}
		if sgd != nil {
			s.sgdBatch = *sgd
		}
		return s
	}
}

// buildOperatorOn assembles a factory for the requested Gram operator over
// a. The factory constructs the operator on any communicator, which is what
// lets the fault supervisor rebuild it on the shrunk survivor communicator
// after a crash; the expensive tune-and-fit (and, for fastdict, PALM
// factorization) preprocessing runs once, up front, and the factory only
// re-partitions.
func buildOperatorOn(a *mat.Dense, plat cluster.Platform, spec opSpec) (func(*cluster.Comm) dist.Operator, error) {
	switch {
	case spec.raw:
		return func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }, nil
	case spec.sgdBatch > 0:
		return func(c *cluster.Comm) dist.Operator { return dist.NewBatchGram(c, a, spec.sgdBatch, spec.seed) }, nil
	}
	tr, _, err := tune.TuneAndFit(a, plat, tune.Config{
		Epsilon: spec.eps, Workers: runtime.GOMAXPROCS(0), Seed: spec.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("preprocessed: L=%d alpha=%.3f\n", tr.L(), tr.Alpha())

	family := spec.transform
	if family == "auto" {
		choice := tune.ChooseFamily(a.Rows, a.Cols, tr.L(), tr.C.NNZ(), plat, tune.FamilyConfig{
			Reuse: spec.reuse, Factors: spec.factors, Budget: spec.budget,
		})
		family = choice.Family
		fmt.Printf("auto family: %s (reuse=%d)\n", family, spec.reuse)
	}
	switch family {
	case "raw":
		return func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }, nil
	case "fastdict":
		fd, err := faust.Factorize(tr.D, faust.Options{
			Factors: spec.factors, Budget: spec.budget, Seed: spec.seed,
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("factorized: k=%d nnz(chain)=%d (dense %d), rel-error %.4f\n",
			fd.Depth(), fd.NNZ(), tr.D.Rows*tr.D.Cols, fd.RelError(tr.D))
		// Validate the shapes once so the factory cannot fail later.
		if _, err := dist.NewFastGram(cluster.NewComm(plat), fd, tr.C); err != nil {
			return nil, err
		}
		return func(c *cluster.Comm) dist.Operator {
			g, err := dist.NewFastGram(c, fd, tr.C)
			if err != nil {
				panic(err) // unreachable: shapes validated above
			}
			return g
		}, nil
	case "exd":
		// Validate the shapes once so the factory cannot fail later.
		if _, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C); err != nil {
			return nil, err
		}
		return func(c *cluster.Comm) dist.Operator {
			g, err := dist.NewExDGram(c, tr.D, tr.C)
			if err != nil {
				panic(err) // unreachable: shapes validated above
			}
			return g
		}, nil
	}
	return nil, fmt.Errorf("unknown transform family %q (have exd, fastdict, auto)", spec.transform)
}

// buildOperator assembles the requested Gram operator over a on a fresh
// communicator for the given platform.
func buildOperator(a *mat.Dense, plat cluster.Platform, spec opSpec) (dist.Operator, error) {
	build, err := buildOperatorOn(a, plat, spec)
	if err != nil {
		return nil, err
	}
	return build(cluster.NewComm(plat)), nil
}

// cliFaultPlan draws the chaos schedule the -faults flag injects: one crash
// (when there is a rank to spare), a few slowdowns, and a couple of Reduce
// corruptions spread over the run's expected collective schedule.
func cliFaultPlan(seed uint64, p int, horizon int64) *cluster.FaultPlan {
	crashes := 1
	if p <= 1 {
		crashes = 0 // a solo rank has no survivors to retry on
	}
	if horizon < 2 {
		horizon = 2
	}
	return cluster.RandomFaultPlan(seed, cluster.FaultConfig{
		P:       p,
		Horizon: horizon,
		Crashes: crashes, Slowdowns: 3, Corruptions: 2,
		MaxDelay: 0.25, MaxDelta: 0.01, MaxWord: 1 << 20,
	})
}

// printRecovery reports what the supervisor absorbed during a faulted solve.
func printRecovery(plan *cluster.FaultPlan, rec solver.Recovery) {
	fmt.Printf("faults: %d scheduled from seed %d; %d restarts, backoff %.3f ms, finished on P=%d\n",
		len(plan.Faults), plan.Seed, rec.Restarts, rec.BackoffTime*1e3, rec.FinalP)
	for _, cr := range rec.Crashes {
		fmt.Printf("  recovered: %v\n", error(cr))
	}
}

// loadVector reads a length-n vector from a matrix file shaped n×1 or 1×n.
func loadVector(path string, n int) ([]float64, error) {
	m, err := matio.Load(path)
	if err != nil {
		return nil, err
	}
	switch {
	case m.Cols == 1 && m.Rows == n:
		return m.Col(0, nil), nil
	case m.Rows == 1 && m.Cols == n:
		return append([]float64(nil), m.Row(0)...), nil
	default:
		return nil, fmt.Errorf("vector file %s is %dx%d, want length %d", path, m.Rows, m.Cols, n)
	}
}
