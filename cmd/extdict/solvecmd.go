package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/matio"
	"extdict/internal/perf"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// cmdLasso solves min ‖A·x - y‖² + λ‖x‖₁ on raw, transformed, or SGD
// operators and reports solution statistics.
func cmdLasso(args []string) error {
	fs := flag.NewFlagSet("lasso", flag.ContinueOnError)
	in := fs.String("in", "", "data matrix (.csv or .edm); required")
	yPath := fs.String("y", "", "observation vector file (single CSV column); required")
	lambda := fs.Float64("lambda", 0, "ℓ₁ weight (0 = 0.05·‖Aᵀy‖∞)")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	raw := fs.Bool("raw", false, "iterate on the untransformed AᵀA baseline")
	sgd := fs.Int("sgd", 0, "use the SGD baseline with this batch size")
	iters := fs.Int("iters", 500, "maximum iterations")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "optional path to write the solution vector")
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *yPath == "" {
		return fmt.Errorf("lasso: -in and -y are required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	y, err := loadVector(*yPath, a.Rows)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)

	op, err := buildOperator(a, plat, *eps, *raw, *sgd, *seed)
	if err != nil {
		return err
	}
	if *lambda <= 0 {
		*lambda = 0.05 * mat.NormInf(a.MulVecT(y, nil))
	}
	sw := perf.StartWall()
	res := solver.Lasso(op, a.MulVecT(y, nil), mat.Dot(y, y), solver.LassoOpts{
		Lambda: *lambda, MaxIters: *iters,
	})
	nz := 0
	for _, v := range res.X {
		if v != 0 {
			nz++
		}
	}
	fmt.Printf("%s on %s: %d iters (converged=%v), objective %.6g, %d/%d nonzeros\n",
		op.Name(), plat.Topology, res.Iters, res.Converged, res.Objective, nz, len(res.X))
	fmt.Printf("modeled time %.3f ms, wall %v\n",
		res.Stats.ModeledTime*1e3, sw.Elapsed().Round(time.Microsecond))
	if *out != "" {
		xm := mat.NewDenseData(len(res.X), 1, res.X)
		if err := matio.Save(*out, xm); err != nil {
			return err
		}
		fmt.Printf("wrote solution to %s\n", *out)
	}
	return nil
}

// cmdCluster runs spectral partitioning of the data columns.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	in := fs.String("in", "", "data matrix (.csv or .edm); required")
	k := fs.Int("k", 2, "number of clusters")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	raw := fs.Bool("raw", false, "iterate on the untransformed AᵀA baseline")
	seed := fs.Uint64("seed", 1, "random seed")
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("cluster: -in is required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)
	op, err := buildOperator(a, plat, *eps, *raw, 0, *seed)
	if err != nil {
		return err
	}
	res := solver.SpectralCluster(op, solver.SpectralOpts{Clusters: *k, Seed: *seed})
	sizes := make([]int, *k)
	for _, c := range res.Assign {
		sizes[c]++
	}
	fmt.Printf("%s on %s: %d columns into %d clusters, sizes %v\n",
		op.Name(), plat.Topology, len(res.Assign), *k, sizes)
	fmt.Printf("k-means inertia %.4f; %d power iterations, modeled %.3f ms\n",
		res.Inertia, res.Eigen.Iters, res.Eigen.Stats.ModeledTime*1e3)
	return nil
}

// buildOperator assembles the requested Gram operator over a.
func buildOperator(a *mat.Dense, plat cluster.Platform, eps float64, raw bool, sgdBatch int, seed uint64) (dist.Operator, error) {
	switch {
	case raw:
		return dist.NewDenseGram(cluster.NewComm(plat), a), nil
	case sgdBatch > 0:
		return dist.NewBatchGram(cluster.NewComm(plat), a, sgdBatch, seed), nil
	default:
		tr, _, err := tune.TuneAndFit(a, plat, tune.Config{
			Epsilon: eps, Workers: runtime.GOMAXPROCS(0), Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("preprocessed: L=%d alpha=%.3f\n", tr.L(), tr.Alpha())
		return dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	}
}

// loadVector reads a length-n vector from a matrix file shaped n×1 or 1×n.
func loadVector(path string, n int) ([]float64, error) {
	m, err := matio.Load(path)
	if err != nil {
		return nil, err
	}
	switch {
	case m.Cols == 1 && m.Rows == n:
		return m.Col(0, nil), nil
	case m.Rows == 1 && m.Cols == n:
		return append([]float64(nil), m.Row(0)...), nil
	default:
		return nil, fmt.Errorf("vector file %s is %dx%d, want length %d", path, m.Rows, m.Cols, n)
	}
}
