package main

import (
	"path/filepath"
	"strings"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/matio"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"gen"},                      // missing -out
		{"tune"},                     // missing -in
		{"fit"},                      // missing -in
		{"power"},                    // missing -in
		{"tune", "-in", "/nope.csv"}, // unreadable input
		{"tune", "-in", "x.csv", "-objective", "speed"}, // bad objective
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.edm")
	dict := filepath.Join(dir, "D.csv")

	// An observation vector for the lasso subcommand: first row of the
	// dataset works fine as a synthetic target.
	yPath := filepath.Join(dir, "y.csv")

	steps := [][]string{
		{"gen", "-preset", "salinas", "-scale", "0.04", "-seed", "5", "-out", data},
		{"tune", "-in", data, "-eps", "0.1", "-nodes", "2", "-cores", "2"},
		{"tune", "-in", data, "-eps", "0.1", "-objective", "memory"},
		{"fit", "-in", data, "-eps", "0.1", "-outD", dict},
		{"fit", "-in", data, "-eps", "0.1", "-L", "40"},
		{"power", "-in", data, "-k", "2", "-nodes", "1", "-cores", "2"},
		{"power", "-in", data, "-k", "2", "-raw"},
		{"lasso", "-in", data, "-y", yPath, "-iters", "50"},
		{"lasso", "-in", data, "-y", yPath, "-raw", "-iters", "20", "-out", filepath.Join(dir, "x.csv")},
		{"lasso", "-in", data, "-y", yPath, "-sgd", "16", "-iters", "20"},
		{"cluster", "-in", data, "-k", "2", "-raw"},
		// FastDict operator family: explicit chain shape, and the
		// modeled-cost auto decision.
		{"power", "-in", data, "-k", "2", "-transform", "fastdict", "-factors", "3", "-nnzbudget", "400"},
		{"lasso", "-in", data, "-y", yPath, "-transform", "fastdict", "-iters", "20"},
		{"cluster", "-in", data, "-k", "2", "-transform", "auto", "-reuse", "100000"},
		// Chaos mode: the supervisor must absorb the injected faults and
		// still return a solution.
		{"lasso", "-in", data, "-y", yPath, "-raw", "-iters", "60", "-faults", "7", "-cores", "4"},
		{"power", "-in", data, "-k", "2", "-raw", "-faults", "7", "-cores", "4"},
	}
	for i, args := range steps {
		// Write the observation vector once the dataset exists (the gen
		// step must run first).
		if i == 1 {
			m, err := matio.Load(data)
			if err != nil {
				t.Fatal(err)
			}
			y := matDenseFromSlice(m.Col(0, nil)) // observations live in signal space (length M)
			if err := matio.Save(yPath, y); err != nil {
				t.Fatal(err)
			}
		}
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

// matDenseFromSlice wraps a vector as a 1×n matrix for matio.
func matDenseFromSlice(v []float64) *mat.Dense {
	out := mat.NewDense(1, len(v))
	copy(out.Row(0), v)
	return out
}

func TestParseObjective(t *testing.T) {
	for in, want := range map[string]perfObjective{
		"runtime": perfRuntime, "Energy": perfEnergy, "MEMORY": perfMemory,
	} {
		got, err := parseObjective(in)
		if err != nil || got != want {
			t.Fatalf("parseObjective(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseObjective("fast"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatal("bad objective accepted")
	}
}
