// Command extdict exposes the ExtDict framework on the command line:
// generate synthetic datasets, tune and fit the ExD transform for a target
// platform, and run the learning algorithms on raw or transformed data.
//
// Subcommands:
//
//	extdict gen   -preset salinas -out data.edm          # synthesize a dataset
//	extdict tune  -in data.edm -eps 0.1 -nodes 8 -cores 8
//	extdict fit   -in data.edm -eps 0.1 -L 200
//	extdict power -in data.edm -eps 0.1 -k 10 -nodes 2 -cores 8
//	extdict power -in data.edm -raw -k 10                # untransformed baseline
//	extdict lasso -in data.edm -y obs.csv -lambda 0.05
//	extdict lasso -in data.edm -y obs.csv -faults 7          # chaos-mode solve with recovery
//	extdict cluster -in data.edm -k 3
//
// Matrices are CSV (.csv) or the EDM binary format (.edm); columns are
// signals. Data is column-normalized automatically before transforming.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/matio"
	"extdict/internal/perf"
	"extdict/internal/rng"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// Local aliases keep the flag-parsing code terse.
type perfObjective = perf.Objective

const (
	perfRuntime = perf.Runtime
	perfEnergy  = perf.Energy
	perfMemory  = perf.Memory
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "extdict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: extdict <gen|tune|fit|power|lasso|cluster> [flags] (see -h of each subcommand)")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "tune":
		return cmdTune(args[1:])
	case "fit":
		return cmdFit(args[1:])
	case "power":
		return cmdPower(args[1:])
	case "lasso":
		return cmdLasso(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (have gen, tune, fit, power, lasso, cluster)", args[0])
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	preset := fs.String("preset", "salinas", "dataset preset: "+strings.Join(dataset.PresetNames(), ", "))
	scale := fs.Float64("scale", 1, "column-count multiplier")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output path (.csv or .edm); required")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	p, err := dataset.Preset(*preset, *scale)
	if err != nil {
		return err
	}
	u, err := dataset.GenerateUnion(p, rng.New(*seed))
	if err != nil {
		return err
	}
	if err := matio.Save(*out, u.A); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %dx%d (%s)\n", *out, u.A.Rows, u.A.Cols, dataset.PresetDescription(*preset))
	return nil
}

func platformFlags(fs *flag.FlagSet) (nodes, cores *int) {
	return fs.Int("nodes", 1, "target platform: number of nodes"),
		fs.Int("cores", 4, "target platform: cores per node")
}

func loadNormalized(path string) (*mat.Dense, error) {
	m, err := matio.Load(path)
	if err != nil {
		return nil, err
	}
	m.NormalizeColumns()
	return m, nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	in := fs.String("in", "", "input matrix (.csv or .edm); required")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	seed := fs.Uint64("seed", 1, "random seed")
	objective := fs.String("objective", "runtime", "tuning objective: runtime, energy, or memory")
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("tune: -in is required")
	}
	obj, err := parseObjective(*objective)
	if err != nil {
		return err
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)
	sw := perf.StartWall()
	res, err := tune.Tune(a, plat, tune.Config{
		Epsilon: *eps, Objective: obj, Workers: runtime.GOMAXPROCS(0), Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tuned for %s (%s objective) in %v over %d subset rounds %v\n",
		plat.Topology, obj, sw.Elapsed().Round(time.Millisecond), res.Rounds, res.SubsetSizes)
	fmt.Printf("%-7s %-9s %-9s %-9s %-12s %s\n", "L", "alpha", "feasible", "error", "pred-cost", "")
	for _, c := range res.Candidates {
		marker := ""
		if c.L == res.Best.L {
			marker = "  <= selected"
		}
		fmt.Printf("%-7d %-9.3f %-9v %-9.4f %-12.3g%s\n",
			c.L, c.Alpha, c.Feasible, c.AchievedError, c.Estimate.Cost(obj), marker)
	}
	return nil
}

func parseObjective(s string) (perfObjective, error) {
	switch strings.ToLower(s) {
	case "runtime":
		return perfRuntime, nil
	case "energy":
		return perfEnergy, nil
	case "memory":
		return perfMemory, nil
	}
	return perfRuntime, fmt.Errorf("unknown objective %q", s)
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	in := fs.String("in", "", "input matrix (.csv or .edm); required")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	l := fs.Int("L", 0, "dictionary size (0 = tune automatically)")
	seed := fs.Uint64("seed", 1, "random seed")
	outD := fs.String("outD", "", "optional path to write the dictionary D")
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("fit: -in is required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)
	sw := perf.StartWall()
	var tr *exd.Transform
	if *l > 0 {
		tr, err = exd.Fit(a, exd.Params{L: *l, Epsilon: *eps, Workers: runtime.GOMAXPROCS(0), Seed: *seed})
	} else {
		tr, _, err = tune.TuneAndFit(a, plat, tune.Config{
			Epsilon: *eps, Workers: runtime.GOMAXPROCS(0), Seed: *seed,
		})
	}
	if err != nil {
		return err
	}
	elapsed := sw.Elapsed()
	fmt.Printf("fitted in %v: L=%d nnz(C)=%d alpha=%.3f achieved-error=%.4f memory=%d words (raw %d)\n",
		elapsed.Round(time.Millisecond), tr.L(), tr.C.NNZ(), tr.Alpha(),
		tr.RelError(a), tr.MemoryWords(), a.Rows*a.Cols)
	if *outD != "" {
		if err := matio.Save(*outD, tr.D); err != nil {
			return err
		}
		fmt.Printf("wrote dictionary to %s\n", *outD)
	}
	return nil
}

func cmdPower(args []string) error {
	fs := flag.NewFlagSet("power", flag.ContinueOnError)
	in := fs.String("in", "", "input matrix (.csv or .edm); required")
	eps := fs.Float64("eps", 0.1, "transformation error tolerance")
	k := fs.Int("k", 10, "number of eigenvalues")
	raw := fs.Bool("raw", false, "iterate on the untransformed AᵀA baseline")
	seed := fs.Uint64("seed", 1, "random seed")
	faults := fs.Uint64("faults", 0, "inject a deterministic fault schedule drawn from this seed and recover through the supervisor (0 = off)")
	spec := transformFlags(fs, eps, raw, nil, seed)
	nodes, cores := platformFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("power: -in is required")
	}
	a, err := loadNormalized(*in)
	if err != nil {
		return err
	}
	plat := cluster.NewPlatform(*nodes, *cores)

	build, err := buildOperatorOn(a, plat, spec())
	if err != nil {
		return err
	}
	op := build(cluster.NewComm(plat))
	opts := solver.PowerOpts{Components: *k, Seed: *seed}
	var res solver.PowerResult
	if *faults != 0 {
		// Each power iteration is one Allreduce = two collective phases;
		// deflation runs the default iteration budget per component.
		plan := cliFaultPlan(*faults, plat.Topology.P(), int64(2*300*(*k)))
		comm := cluster.NewComm(plat)
		comm.InstallFaultPlan(plan)
		var rec solver.Recovery
		res, rec, err = solver.SupervisedPower(comm, build, opts, solver.SupervisorOpts{})
		if err != nil {
			return err
		}
		printRecovery(plan, rec)
	} else {
		res = solver.PowerMethod(op, opts)
	}
	fmt.Printf("%s on %s: %d iterations, modeled time %.3f ms, wall %v\n",
		op.Name(), plat.Topology, res.Iters,
		res.Stats.ModeledTime*1e3, res.Stats.Wall.Round(time.Microsecond))
	for i, v := range res.Eigenvalues {
		fmt.Printf("lambda[%d] = %.6g\n", i+1, v)
	}
	return nil
}
