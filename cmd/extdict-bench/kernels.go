package main

import (
	"extdict/internal/faust"
	"extdict/internal/mat"
	"extdict/internal/perf"
	"extdict/internal/rng"
)

// kernelTiming is one microbenchmark pair in the -json report: the
// optimized kernel and its reference, timed back to back in the same
// process so the speedup ratio is immune to machine drift. The dense rows
// reference their single-accumulator scalar loops; the FastDict chain rows
// reference the blocked dense kernel applying the same reconstructed
// dictionary, so their ratio is the sparse-chain structural speedup.
type kernelTiming struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Reps        int     `json:"reps"`
	NsPerOp     float64 `json:"ns_per_op"`
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	SpeedupVsGo float64 `json:"speedup_vs_scalar"`
	// Intensity is the kernel's analytic arithmetic intensity (flops per
	// byte) from the byte contracts in DESIGN.md ("Memory model"), at this
	// benchmark's shape. Compare against the platform's machine balance
	// (0.4 flop/byte) to read the timing: the BLAS-2 kernels sit below it
	// (bandwidth-bound), the blocked ATA's panel re-streaming lifts it above.
	Intensity float64 `json:"arith_intensity"`
}

// denseMulVecAI: 2·n² flops over 8·(n² + 2n) bytes for a square n×n
// matrix-vector product (matrix once, both vector ends once).
func denseMulVecAI(n int) float64 {
	nf := float64(n)
	return (2 * nf * nf) / (8 * (nf*nf + 2*nf))
}

// fastDictAI: one chain-apply direction costs 2·nnz flops over the CSC
// streaming contract 16·nnz + 8·VecWords bytes (DESIGN.md, "FastDict
// operator family"); at the canonical 4-factor, 1024-entries-per-factor
// chain this is the 0.10 flop/byte the roofline golden pins for FastGram's
// rank-0 chain region.
func fastDictAI(nnz, vecWords int64) float64 {
	return float64(2*nnz) / float64(16*nnz+8*vecWords)
}

// blockedATAAI: AᵀA at M×L costs M·L·(L+1) flops; the blocked kernel
// re-streams A's rows once per 8-row panel of the output, so traffic is
// 8·(M·L + ⌈M/8⌉·L·(L+1)) bytes.
func blockedATAAI(m, l int) float64 {
	flops := float64(m) * float64(l) * float64(l+1)
	panels := float64((m + 7) / 8)
	return flops / (8 * (float64(m)*float64(l) + panels*float64(l)*float64(l+1)))
}

// timeKernel runs fn reps times (after one warmup call) under the wall
// stopwatch and returns ns per call.
func timeKernel(reps int, fn func()) float64 {
	fn()
	sw := perf.StartWall()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(sw.Elapsed().Nanoseconds()) / float64(reps)
}

// scalar reference kernels: the pre-optimization loops, kept here so the
// shipped binary can always report its own speedup over them.

func refMulVec(m *mat.Dense, x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

func refMulVecT(m *mat.Dense, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

func refATA(a *mat.Dense) *mat.Dense {
	n := a.Cols
	g := mat.NewDense(n, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < n; p++ {
			vp := row[p]
			grow := g.Row(p)
			for q := p; q < n; q++ {
				grow[q] += vp * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
	return g
}

// kernelBaselines times the hot dense kernels at the sizes the acceptance
// gate tracks (MulVec n=1024, ATA n=256) plus the transpose product, each
// against its scalar reference, and the FastDict chain D/Dᵀ applies at the
// canonical 512×128 dictionary shape against the blocked dense kernels
// applying the SAME reconstructed dictionary — both compute one linear map,
// so the chain rows compare at exactly matched reconstruction error and the
// ratio is the structural speedup of Σ nnz(Sᵢ) over M·L.
func kernelBaselines(seed uint64) []kernelTiming {
	r := rng.New(seed)
	fill := func(v []float64) {
		for i := range v {
			v[i] = r.NormFloat64()
		}
	}

	a1024 := mat.NewDense(1024, 1024)
	fill(a1024.Data)
	x1024 := make([]float64, 1024)
	y1024 := make([]float64, 1024)
	fill(x1024)

	a256 := mat.NewDense(256, 256)
	fill(a256.Data)

	// The canonical FastDict chain: factor a 512×128 dictionary into 4
	// sparse factors of 1024 entries each (the roofline-reference shape,
	// NNZ(fd)=4096 against 65536 dense entries). Few PALM iterations
	// suffice — the dense reference applies fd.Dense(), so the timing
	// comparison is error-matched whatever the factorization achieves.
	d512 := mat.NewDense(512, 128)
	fill(d512.Data)
	fd, err := faust.Factorize(d512, faust.Options{Budget: 1024, Iters: 8, Polish: 1, Seed: seed})
	if err != nil {
		panic(err) // unreachable: the shape is valid by construction
	}
	dhat := fd.Dense()
	x128 := make([]float64, 128)
	y512 := make([]float64, 512)
	fill(x128)
	inter := fd.MaxInterDim()
	t1 := make([]float64, inter)
	t2 := make([]float64, inter)
	fAI := fastDictAI(fd.NNZ(), fd.VecWords())

	out := []kernelTiming{
		{
			Name: "MulVec", N: 1024, Reps: 100, Intensity: denseMulVecAI(1024),
			NsPerOp:    timeKernel(100, func() { a1024.MulVec(x1024, y1024) }),
			RefNsPerOp: timeKernel(100, func() { refMulVec(a1024, x1024, y1024) }),
		},
		{
			Name: "MulVecT", N: 1024, Reps: 100, Intensity: denseMulVecAI(1024),
			NsPerOp:    timeKernel(100, func() { a1024.MulVecT(x1024, y1024) }),
			RefNsPerOp: timeKernel(100, func() { refMulVecT(a1024, x1024, y1024) }),
		},
		{
			Name: "ATA", N: 256, Reps: 20, Intensity: blockedATAAI(256, 256),
			NsPerOp:    timeKernel(20, func() { mat.ATA(a256) }),
			RefNsPerOp: timeKernel(20, func() { refATA(a256) }),
		},
		{
			Name: "FastDictMulVec", N: 512, Reps: 200, Intensity: fAI,
			NsPerOp:    timeKernel(200, func() { fd.MulVec(x128, y512, t1, t2) }),
			RefNsPerOp: timeKernel(200, func() { dhat.MulVec(x128, y512) }),
		},
		{
			Name: "FastDictMulVecT", N: 512, Reps: 200, Intensity: fAI,
			NsPerOp:    timeKernel(200, func() { fd.MulVecT(y512, x128, t1, t2) }),
			RefNsPerOp: timeKernel(200, func() { dhat.MulVecT(y512, x128) }),
		},
	}
	for i := range out {
		if out[i].NsPerOp > 0 {
			out[i].SpeedupVsGo = out[i].RefNsPerOp / out[i].NsPerOp
		}
	}
	return out
}
