package main

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	reg := registry(3, 3)
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tab2", "tab3"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("missing experiment %q", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown experiment accepted: %v", err)
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	// The cheapest artifact at a tiny scale keeps this an actual
	// end-to-end run of flag parsing, driver, and renderer.
	if err := run([]string{"-exp", "tab3", "-scale", "0.05", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnersRenderTables(t *testing.T) {
	cfg := benchConfig{Scale: 0.05, Seed: 9, Workers: 2}
	reg := registry(2, 2)
	for _, id := range []string{"fig5", "tab2"} {
		out, err := reg[id](cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "---") {
			t.Fatalf("%s rendered no table:\n%s", id, out)
		}
	}
}
