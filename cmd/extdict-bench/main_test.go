package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	reg := registry(3, 3)
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tab2", "tab3", "serve", "fastdict"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("missing experiment %q", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "fig99"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown experiment accepted: %v", err)
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	// The cheapest artifact at a tiny scale keeps this an actual
	// end-to-end run of flag parsing, driver, and renderer.
	if err := run([]string{"-exp", "tab3", "-scale", "0.05", "-trials", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunnersRenderTables(t *testing.T) {
	cfg := benchConfig{Scale: 0.05, Seed: 9, Workers: 2}
	reg := registry(2, 2)
	for _, id := range []string{"fig5", "tab2"} {
		art, err := reg[id](cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(art.Table, "---") {
			t.Fatalf("%s rendered no table:\n%s", id, art.Table)
		}
	}
}

// TestJSONOutputParses is the CI gate for the -json pipeline: the report
// must be valid JSON carrying the schema tag, the three kernel baselines,
// and non-empty metrics for an experiment that exposes them.
func TestJSONOutputParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "-exp", "tab2", "-scale", "0.05", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Schema != "extdict-bench/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Kernels) != 5 {
		t.Fatalf("want 5 kernel baselines, got %d", len(rep.Kernels))
	}
	for _, k := range rep.Kernels {
		if k.NsPerOp <= 0 || k.RefNsPerOp <= 0 {
			t.Fatalf("kernel %s has non-positive timing: %+v", k.Name, k)
		}
		if k.Intensity <= 0 {
			t.Fatalf("kernel %s carries no arithmetic intensity: %+v", k.Name, k)
		}
		// The roofline story the report encodes: BLAS-2 and the FastDict
		// chain below the 0.4 flop/byte machine balance, the blocked ATA's
		// panel reuse above it.
		if wantCompute := k.Name == "ATA"; (k.Intensity >= 0.4) != wantCompute {
			t.Fatalf("kernel %s intensity %.4f on the wrong side of the machine balance", k.Name, k.Intensity)
		}
		// The chain rows reference the blocked dense kernel applying the
		// same reconstructed dictionary: error-matched by construction, so
		// the chain must simply be faster (the committed baselines show
		// 3-7×; >1 here keeps the gate robust to loaded CI machines).
		if strings.HasPrefix(k.Name, "FastDict") && k.SpeedupVsGo <= 1 {
			t.Fatalf("kernel %s not faster than the dense-dictionary reference: %+v", k.Name, k)
		}
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "tab2" {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	if len(rep.Experiments[0].Metrics) == 0 {
		t.Fatal("tab2 reported no metrics")
	}
}

// TestJSONFastDictExperiment extends the -json gate to the FastDict family
// sweep: the report must carry the fig7-comparable improvement keys and at
// least one cell where the chain iteration beats the ExD one — the modeled
// times are deterministic, so this holds at any scale.
func TestJSONFastDictExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "-exp", "fastdict", "-scale", "0.05"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "fastdict" {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	m := rep.Experiments[0].Metrics
	var improvements, chainWins int
	for k, v := range m {
		if strings.HasPrefix(k, "improvement_") {
			improvements++
			if v <= 0 {
				t.Fatalf("metric %s = %v, want > 0", k, v)
			}
		}
		if strings.HasPrefix(k, "vs_exd_") && v > 1 {
			chainWins++
		}
	}
	if improvements == 0 {
		t.Fatalf("no improvement_* metrics in %v", m)
	}
	if chainWins == 0 {
		t.Fatal("chain iteration never beat the ExD iteration")
	}
	for _, ds := range []string{"salinas", "cancercell", "lightfield"} {
		if m["rel_error_"+ds] <= 0 || m["nnz_ratio_"+ds] <= 0 {
			t.Fatalf("dataset %s missing factorization-quality metrics: %v", ds, m)
		}
	}
}
