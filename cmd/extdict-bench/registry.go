package main

import (
	"fmt"

	"extdict/internal/experiments"
)

// benchConfig mirrors experiments.Config without exposing the internal type
// in main's flag plumbing.
type benchConfig struct {
	Scale   float64
	Seed    uint64
	Workers int
}

func (c benchConfig) cfg() experiments.Config {
	return experiments.Config{Scale: c.Scale, Seed: c.Seed, Workers: c.Workers}
}

// artifact is one experiment's rendered output: the human-readable table
// plus the machine-readable metrics the -json mode emits. Metrics carry the
// numbers the paper reports (α, L_min, error, speedups, preprocessing
// times), so a kernel-layer change can be checked for identical results
// against a committed baseline.
type artifact struct {
	Table   string
	Metrics map[string]float64
}

// runner executes one experiment and renders its artifact.
type runner func(benchConfig) (artifact, error)

// tableOnly wraps a table-rendering experiment that exposes no scalar
// metrics beyond its wall time.
func tableOnly(table string) artifact {
	return artifact{Table: table, Metrics: map[string]float64{}}
}

// registry maps experiment ids to drivers.
func registry(trials, components int) map[string]runner {
	return map[string]runner{
		"fig4": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig4(c.cfg(), trials)
			if err != nil {
				return artifact{}, err
			}
			m := map[string]float64{
				"l_min":  float64(r.LMin),
				"points": float64(len(r.Points)),
			}
			for _, p := range r.Points {
				m[fmt.Sprintf("alpha_L%d", p.L)] = p.AlphaMean
				m[fmt.Sprintf("rel_error_L%d", p.L)] = p.RelError
			}
			return artifact{Table: r.Table(), Metrics: m}, nil
		},
		"fig5": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig5(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig6": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig6(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"tab2": func(c benchConfig) (artifact, error) {
			r, err := experiments.Table2(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			m := map[string]float64{}
			for _, row := range r.Rows {
				m["tuning_ms_"+row.Dataset] = row.TuningMS
				m["transf_ms_"+row.Dataset] = row.TransfMS
				m["chosen_l_"+row.Dataset] = float64(row.ChosenL)
				m["alpha_"+row.Dataset] = row.Alpha
				m["resident_bytes_"+row.Dataset] = row.ResidentBytes
			}
			return artifact{Table: r.Table(), Metrics: m}, nil
		},
		"fig7": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig7(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			m := map[string]float64{}
			for _, ds := range r.Datasets {
				for _, cell := range ds.Cells {
					key := fmt.Sprintf("%s_P%d", ds.Name, cell.Platform.P())
					m["improvement_"+key] = cell.Improvement["AᵀA"]
					m["chosen_l_"+key] = float64(cell.ChosenL)
					m["resident_ata_"+key] = float64(cell.Resident["AᵀA"])
					m["resident_exd_"+key] = float64(cell.Resident["ExtDict"])
				}
			}
			return artifact{Table: r.Table(), Metrics: m}, nil
		},
		"fastdict": func(c benchConfig) (artifact, error) {
			r, err := experiments.FastDict(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			m := map[string]float64{}
			for _, ds := range r.Datasets {
				m["rel_error_"+ds.Name] = ds.RelError
				m["nnz_ratio_"+ds.Name] = ds.NNZRatio
				for _, cell := range ds.Cells {
					key := fmt.Sprintf("%s_P%d", ds.Name, cell.Platform.P())
					// improvement_* matches fig7's key shape on purpose:
					// fig7 reports ExtDict's speedup over AᵀA, this reports
					// FastDict's, so the two baselines diff directly.
					m["improvement_"+key] = cell.Improvement
					m["vs_exd_"+key] = cell.VsExD
					m["chosen_l_"+key] = float64(cell.ChosenL)
					m["break_even_reuse_"+key] = float64(cell.BreakEvenReuse)
					m["resident_fast_"+key] = float64(cell.Resident["FastDict"])
				}
			}
			return artifact{Table: r.Table(), Metrics: m}, nil
		},
		"tab3": func(c benchConfig) (artifact, error) {
			r, err := experiments.Table3(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig8": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig8(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig9": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig9(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig10": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig10(c.cfg(), components)
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig11": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig11(c.cfg())
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"fig12": func(c benchConfig) (artifact, error) {
			r, err := experiments.Fig12(c.cfg(), components)
			if err != nil {
				return artifact{}, err
			}
			return tableOnly(r.Table()), nil
		},
		"serve": runServe,
	}
}
