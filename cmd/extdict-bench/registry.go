package main

import "extdict/internal/experiments"

// benchConfig mirrors experiments.Config without exposing the internal type
// in main's flag plumbing.
type benchConfig struct {
	Scale   float64
	Seed    uint64
	Workers int
}

func (c benchConfig) cfg() experiments.Config {
	return experiments.Config{Scale: c.Scale, Seed: c.Seed, Workers: c.Workers}
}

// runner executes one experiment and renders its table.
type runner func(benchConfig) (string, error)

// registry maps experiment ids to drivers.
func registry(trials, components int) map[string]runner {
	return map[string]runner{
		"fig4": func(c benchConfig) (string, error) {
			r, err := experiments.Fig4(c.cfg(), trials)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig5": func(c benchConfig) (string, error) {
			r, err := experiments.Fig5(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig6": func(c benchConfig) (string, error) {
			r, err := experiments.Fig6(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"tab2": func(c benchConfig) (string, error) {
			r, err := experiments.Table2(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig7": func(c benchConfig) (string, error) {
			r, err := experiments.Fig7(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"tab3": func(c benchConfig) (string, error) {
			r, err := experiments.Table3(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig8": func(c benchConfig) (string, error) {
			r, err := experiments.Fig8(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig9": func(c benchConfig) (string, error) {
			r, err := experiments.Fig9(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig10": func(c benchConfig) (string, error) {
			r, err := experiments.Fig10(c.cfg(), components)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig11": func(c benchConfig) (string, error) {
			r, err := experiments.Fig11(c.cfg())
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
		"fig12": func(c benchConfig) (string, error) {
			r, err := experiments.Fig12(c.cfg(), components)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		},
	}
}
