// Command extdict-bench regenerates the paper's evaluation artifacts (every
// table and figure of §VIII) and prints them as text tables, or — with
// -json — emits a machine-readable benchmark baseline combining kernel
// microbenchmark timings with the experiments' reported metrics.
//
// Usage:
//
//	extdict-bench -exp fig7              # one experiment
//	extdict-bench -exp all -scale 0.5    # everything, half-size datasets
//	extdict-bench -json -exp fig4,fig7,tab2 -scale 0.5 > BENCH_PR6.json
//
// Experiments: fig4 fig5 fig6 tab2 fig7 tab3 fig8 fig9 fig10 fig11 fig12
// serve (the batch-coalescing encode server under concurrent load).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"extdict/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "extdict-bench:", err)
		os.Exit(1)
	}
}

// jsonReport is the -json output schema. Kernel timings and experiment
// metrics together form a benchmark baseline: commit one, re-run after a
// kernel change, and diff — ns/op may only improve, metrics must not move.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Scale       float64          `json:"scale"`
	Seed        uint64           `json:"seed"`
	Workers     int              `json:"workers"`
	Kernels     []kernelTiming   `json:"kernels"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	// HeapPeakBytes is the experiment's measured HeapAlloc high-water
	// (collection is paused around the run, so the heap grows monotonically
	// and the final HeapAlloc is the true peak). The analytic counterpart
	// sits in Metrics: tab2 reports the Eq. 4 per-rank prediction
	// (resident_bytes_*), fig7 the runtime-counted per-rank resident sets
	// (resident_ata_*/resident_exd_*).
	HeapPeakBytes uint64             `json:"heap_peak_bytes"`
	Metrics       map[string]float64 `json:"metrics"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("extdict-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (fig4..fig12, tab2, tab3, serve) or 'all'")
	scale := fs.Float64("scale", 1, "dataset size multiplier (1 = paper-shaped laptop scale)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "preprocessing workers (0 = GOMAXPROCS)")
	trials := fs.Int("trials", 10, "random-dictionary trials for fig4")
	components := fs.Int("components", 10, "eigenvalues for fig10/fig12")
	asJSON := fs.Bool("json", false, "emit kernel timings and experiment metrics as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := registry(*trials, *components)
	var ids []string
	if *exp == "all" {
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(keys(reg), ", "))
			}
			ids = append(ids, id)
		}
	}

	cfg := benchConfig{Scale: *scale, Seed: *seed, Workers: *workers}
	if *asJSON {
		return runJSON(w, reg, ids, cfg)
	}
	for _, id := range ids {
		sw := perf.StartWall()
		art, err := reg[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w, art.Table)
		fmt.Fprintf(w, "[%s completed in %v]\n\n", id, sw.Elapsed().Round(time.Millisecond))
	}
	return nil
}

// runJSON times the kernel microbenchmarks, runs the selected experiments,
// and writes the combined baseline report.
func runJSON(w io.Writer, reg map[string]runner, ids []string, cfg benchConfig) error {
	rep := jsonReport{
		Schema:  "extdict-bench/v1",
		Scale:   cfg.Scale,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Kernels: kernelBaselines(cfg.Seed),
	}
	for _, id := range ids {
		sw := perf.StartWall()
		hw := startHeapWatch()
		art, err := reg[id](cfg)
		peak := hw.stop()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rep.Experiments = append(rep.Experiments, jsonExperiment{
			ID:            id,
			WallMS:        float64(sw.Elapsed().Nanoseconds()) / 1e6,
			HeapPeakBytes: peak,
			Metrics:       art.Metrics,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// heapWatch measures one experiment's HeapAlloc high-water mark. The
// collector is paused for the duration, so HeapAlloc grows monotonically
// and the final reading is the true peak — no sampling goroutine needed.
// The laptop-scale experiments allocate modestly (the hot paths are
// allocation-free by lint), so running one uncollected is safe.
type heapWatch struct {
	base   uint64
	prevGC int
}

func startHeapWatch() heapWatch {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return heapWatch{base: ms.HeapAlloc, prevGC: debug.SetGCPercent(-1)}
}

// stop reads the peak, restores collection, and returns the experiment's
// net high-water over its starting heap.
func (h heapWatch) stop() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	debug.SetGCPercent(h.prevGC)
	runtime.GC()
	if ms.HeapAlloc <= h.base {
		return 0
	}
	return ms.HeapAlloc - h.base
}

func keys(m map[string]runner) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
