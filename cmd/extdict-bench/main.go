// Command extdict-bench regenerates the paper's evaluation artifacts (every
// table and figure of §VIII) and prints them as text tables.
//
// Usage:
//
//	extdict-bench -exp fig7              # one experiment
//	extdict-bench -exp all -scale 0.5    # everything, half-size datasets
//
// Experiments: fig4 fig5 fig6 tab2 fig7 tab3 fig8 fig9 fig10 fig11 fig12.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"extdict/internal/perf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "extdict-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("extdict-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (fig4..fig12, tab2, tab3) or 'all'")
	scale := fs.Float64("scale", 1, "dataset size multiplier (1 = paper-shaped laptop scale)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "preprocessing workers (0 = GOMAXPROCS)")
	trials := fs.Int("trials", 10, "random-dictionary trials for fig4")
	components := fs.Int("components", 10, "eigenvalues for fig10/fig12")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := registry(*trials, *components)
	var ids []string
	if *exp == "all" {
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(keys(reg), ", "))
			}
			ids = append(ids, id)
		}
	}

	cfg := benchConfig{Scale: *scale, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		sw := perf.StartWall()
		table, err := reg[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(table)
		fmt.Printf("[%s completed in %v]\n\n", id, sw.Elapsed().Round(time.Millisecond))
	}
	return nil
}

func keys(m map[string]runner) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
