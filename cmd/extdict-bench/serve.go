package main

import (
	"fmt"
	"strings"
	"time"

	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/serve"
	"extdict/internal/serve/loadtest"
)

// serveClients is the concurrency of the serving benchmark: 8 closed-loop
// clients, the level the PR9 acceptance gate fixes.
const serveClients = 8

// runServe benchmarks the serving layer end to end: a real listener on a
// loopback port, 8 concurrent seeded clients, every response verified bit
// for bit against a serial encode. Metrics carry the latency percentiles
// and the achieved batch-size distribution; any bit mismatch fails the
// experiment rather than reporting a number.
func runServe(c benchConfig) (artifact, error) {
	m := 64
	l := int(256 * c.Scale)
	if l < 2*m {
		l = 2 * m
	}
	r := rng.New(c.Seed)
	d := mat.NewDense(m, l)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	d.NormalizeColumns()

	srv, err := serve.New(map[string]*mat.Dense{"bench": d.Clone()}, serve.Config{
		Tol:         0.05,
		BatchWindow: time.Millisecond,
		BatchMax:    32,
		QueueCap:    4096,
		Workers:     c.Workers,
	})
	if err != nil {
		return artifact{}, err
	}
	h, err := serve.Start("127.0.0.1:0", srv)
	if err != nil {
		srv.Close()
		return artifact{}, err
	}
	res, runErr := loadtest.Run(loadtest.Config{
		BaseURL:      "http://" + h.Addr(),
		Dict:         d,
		Name:         "bench",
		Clients:      serveClients,
		Requests:     50,
		Seed:         c.Seed,
		DenoiseEvery: 10,
		Tol:          0.05,
	})
	if cerr := h.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return artifact{}, runErr
	}
	if res.Mismatches > 0 {
		return artifact{}, fmt.Errorf("serve: %d responses differed bitwise from the serial reference", res.Mismatches)
	}
	if res.OK == 0 {
		return artifact{}, fmt.Errorf("serve: no successful responses (shed %d, failed %d)", res.Shed, res.Failed)
	}

	metrics := map[string]float64{
		"clients":         float64(serveClients),
		"requests":        float64(res.Sent),
		"ok":              float64(res.OK),
		"shed":            float64(res.Shed),
		"latency_p50_ms":  res.P50MS,
		"latency_p99_ms":  res.P99MS,
		"latency_mean_ms": res.MeanMS,
		"latency_max_ms":  res.MaxMS,
		"mean_batch":      res.MeanBatch,
		"max_batch":       float64(res.MaxBatch),
	}
	for b1, n := range res.BatchHist {
		if n > 0 {
			metrics[fmt.Sprintf("batch_hist_%d", b1+1)] = float64(n)
		}
	}
	return artifact{Table: serveTable(m, l, res), Metrics: metrics}, nil
}

// serveTable renders the serving benchmark's human-readable summary.
func serveTable(m, l int, res loadtest.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving: %d clients, %dx%d dictionary, batch coalescing\n", serveClients, m, l)
	fmt.Fprintf(&b, "%-12s %-8s %-8s %-10s %-10s %-10s %-10s\n",
		"requests", "ok", "shed", "p50-ms", "p99-ms", "mean-batch", "max-batch")
	fmt.Fprintf(&b, "%-12s %-8s %-8s %-10s %-10s %-10s %-10s\n",
		"---", "---", "---", "---", "---", "---", "---")
	fmt.Fprintf(&b, "%-12d %-8d %-8d %-10.3f %-10.3f %-10.2f %-10d\n",
		res.Sent, res.OK, res.Shed, res.P50MS, res.P99MS, res.MeanBatch, res.MaxBatch)
	return b.String()
}
