package main

import (
	"os"
	"path/filepath"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/matio"
)

func TestDictBaseName(t *testing.T) {
	cases := map[string]string{
		"D.edm":            "D",
		"/a/b/salinas.csv": "salinas",
		"dict":             "dict",
		"a/b/.hidden":      ".hidden",
	}
	for in, want := range cases {
		if got := dictBaseName(in); got != want {
			t.Errorf("dictBaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("run with no -dict should fail")
	}
	if err := run([]string{"-dict", "name="}); err == nil {
		t.Error("empty path in -dict should fail")
	}
	if err := run([]string{"-dict", "a=x.edm", "-dict", "a=y.edm"}); err == nil {
		t.Error("duplicate names should fail")
	}
	if err := run([]string{"-dict", "/nonexistent/dict.edm"}); err == nil {
		t.Error("missing dictionary file should fail")
	}
}

func TestRunLoadsDictionaries(t *testing.T) {
	// A bad listen address makes run return right after the load phase, so
	// the load path is testable without signal plumbing.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.edm")
	d := mat.NewDense(4, 6)
	for i := range d.Data {
		d.Data[i] = float64(i + 1)
	}
	if err := matio.Save(path, d); err != nil {
		t.Fatalf("save: %v", err)
	}
	err := run([]string{"-dict", path, "-addr", "256.0.0.1:0"})
	if err == nil {
		t.Fatal("unlistenable address should fail")
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("dictionary file vanished: %v", statErr)
	}
}
