// Command extdict-serve is ExtDict-as-a-service: it loads one or more
// dictionaries at startup and serves encode/denoise traffic over HTTP,
// coalescing concurrent requests into Batch-OMP panels and admission-
// controlling them with the paper's Eq. 2 performance model.
//
//	extdict-serve -dict D.edm
//	extdict-serve -dict salinas=D1.edm -dict pavia=D2.csv -addr :8347 \
//	    -batch-window 2ms -batch-max 32 -latency-budget 50ms
//
// Endpoints:
//
//	POST /v1/encode   {"dict":"salinas","signal":[...]} → sparse code
//	POST /v1/denoise  same body → reconstruction D·γ
//	POST /v1/reloadz?dict=salinas&format=edm  (matrix body) → hot swap
//	GET  /v1/healthz  liveness + served dictionary names
//	GET  /v1/statsz   batching / admission / pool counters
//
// The process exits cleanly on SIGINT/SIGTERM: the listener stops, in-
// flight requests finish coding, and the batchers drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/matio"
	"extdict/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "extdict-serve:", err)
		os.Exit(1)
	}
}

// dictFlag accumulates repeated -dict values: "path" (name derived from the
// file) or "name=path".
type dictFlag struct {
	specs []string
}

func (d *dictFlag) String() string { return strings.Join(d.specs, ",") }

func (d *dictFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty -dict value")
	}
	d.specs = append(d.specs, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("extdict-serve", flag.ContinueOnError)
	var dicts dictFlag
	fs.Var(&dicts, "dict", "dictionary to serve, as name=path or path (.csv or .edm); repeatable, required")
	addr := fs.String("addr", ":8347", "listen address")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "max wait to coalesce a panel after its first request")
	batchMax := fs.Int("batch-max", 32, "max signals coded per panel")
	queueCap := fs.Int("queue-cap", 256, "per-dictionary queued-request bound")
	latencyBudget := fs.Duration("latency-budget", 0, "shed requests whose Eq. 2 modeled completion latency exceeds this (0 = queue bound only)")
	tol := fs.Float64("tol", 0.1, "OMP relative residual tolerance")
	maxAtoms := fs.Int("max-atoms", 0, "OMP support cap (0 = min(M, L))")
	workers := fs.Int("workers", 0, "panel-encode parallelism (0 = all cores)")
	nodes, cores := fs.Int("nodes", 1, "admission model platform: nodes"),
		fs.Int("cores", 0, "admission model platform: cores per node (0 = host cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(dicts.specs) == 0 {
		return fmt.Errorf("at least one -dict is required")
	}

	loaded := make(map[string]*mat.Dense, len(dicts.specs))
	for _, spec := range dicts.specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = dictBaseName(spec)
		}
		if name == "" || path == "" {
			return fmt.Errorf("bad -dict %q: want name=path or path", spec)
		}
		if _, dup := loaded[name]; dup {
			return fmt.Errorf("duplicate dictionary name %q", name)
		}
		d, err := matio.Load(path)
		if err != nil {
			return err
		}
		d.NormalizeColumns()
		loaded[name] = d
		fmt.Printf("loaded %s: %dx%d from %s\n", name, d.Rows, d.Cols, path)
	}

	if *cores < 1 {
		*cores = mat.Workers
	}
	srv, err := serve.New(loaded, serve.Config{
		BatchWindow:   *batchWindow,
		BatchMax:      *batchMax,
		QueueCap:      *queueCap,
		LatencyBudget: *latencyBudget,
		Tol:           *tol,
		MaxAtoms:      *maxAtoms,
		Workers:       *workers,
		Platform:      cluster.NewPlatform(*nodes, *cores),
	})
	if err != nil {
		return err
	}
	h, err := serve.Start(*addr, srv)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Printf("serving %s on %s (window %v, batch-max %d, budget %v)\n",
		strings.Join(srv.Names(), ", "), h.Addr(), *batchWindow, *batchMax, *latencyBudget)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("caught %v; draining\n", got)
	return h.Close()
}

// dictBaseName derives a dictionary name from a path: the file name without
// its extension.
func dictBaseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}
