package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, check := range []string{"norand", "noclock", "goroutines", "flopaudit", "panicmsg", "nofloateq", "exporteddoc"} {
		if !strings.Contains(out.String(), check) {
			t.Errorf("-list output missing %q:\n%s", check, out.String())
		}
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	// The norand fixtures live under testdata of the lint package; loaded
	// explicitly they are an ordinary package outside internal/rng, so the
	// check must fire and the command must fail.
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "norand", "./internal/lint/testdata/norand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (stderr %s), want 1", code, errb.String())
	}
	if !strings.Contains(out.String(), "math/rand") {
		t.Fatalf("output does not name the violation:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "norand", "./internal/lint/testdata/norand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (stderr %s), want 1", code, errb.String())
	}
	var findings []struct {
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 || findings[0].Check != "norand" {
		t.Fatalf("unexpected findings %+v", findings)
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check exited %d, want 2", code)
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("linting the tree exited %d:\n%s%s", code, out.String(), errb.String())
	}
}
