package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, check := range []string{"norand", "noclock", "goroutines", "flopaudit",
		"collective", "hotalloc", "errcheck", "panicmsg", "nofloateq", "exporteddoc",
		"schedule", "costmodel"} {
		if !strings.Contains(out.String(), check) {
			t.Errorf("-list output missing %q:\n%s", check, out.String())
		}
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	// The norand fixtures live under testdata of the lint package; loaded
	// explicitly they are an ordinary package outside internal/rng, so the
	// check must fire and the command must fail.
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "norand", "./internal/lint/testdata/norand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (stderr %s), want 1", code, errb.String())
	}
	if !strings.Contains(out.String(), "math/rand") {
		t.Fatalf("output does not name the violation:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "norand", "./internal/lint/testdata/norand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (stderr %s), want 1", code, errb.String())
	}
	var findings []struct {
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 || findings[0].Check != "norand" {
		t.Fatalf("unexpected findings %+v", findings)
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("unknown check exited %d, want 2", code)
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("linting the tree exited %d:\n%s%s", code, out.String(), errb.String())
	}
}

func TestChecksExclusion(t *testing.T) {
	// The norand fixtures violate norand only; excluding it from the full
	// suite must leave the directory clean.
	for _, spec := range []string{"all,-norand", "-norand"} {
		var out, errb bytes.Buffer
		code := run([]string{"-checks", spec, "./internal/lint/testdata/norand"}, &out, &errb)
		if code != 0 {
			t.Errorf("-checks %s exited %d:\n%s%s", spec, code, out.String(), errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("unknown exclusion exited %d, want 2", code)
	}
	if code := run([]string{"-checks", "norand,-norand"}, &out, &errb); code != 2 {
		t.Errorf("empty selection exited %d, want 2", code)
	}
}

// writeTempModule lays out a one-package module and returns its directory.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestFixAppliesAndIsIdempotent(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"demo/demo.go": "package demo\n\nfunc f() { panic(\"boom\") }\n",
	})
	target := filepath.Join(dir, "demo", "demo.go")

	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "-checks", "panicmsg", "./demo"}, &out, &errb); code != 1 {
		t.Fatalf("pre-fix exit = %d (stderr %s), want 1", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-checks", "panicmsg", "-fix", "./demo"}, &out, &errb); code != 0 {
		t.Fatalf("-fix exit = %d (out %s, stderr %s), want 0", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "applied 1 fix(es)") {
		t.Errorf("-fix did not report the applied fix:\n%s", out.String())
	}
	fixedSrc, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixedSrc), `panic("demo: boom")`) {
		t.Fatalf("fix did not rewrite the panic message:\n%s", fixedSrc)
	}
	if formatted, err := format.Source(fixedSrc); err != nil || !bytes.Equal(formatted, fixedSrc) {
		t.Fatalf("fixed file is not gofmt-clean (err %v):\n%s", err, fixedSrc)
	}

	// Idempotency: a second -fix run finds nothing and leaves bytes alone.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", dir, "-checks", "panicmsg", "-fix", "./demo"}, &out, &errb); code != 0 {
		t.Fatalf("second -fix exit = %d, want 0", code)
	}
	again, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixedSrc, again) {
		t.Fatal("-fix is not idempotent: second run changed the file")
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.sarif")
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "norand", "-sarif", report, "./internal/lint/testdata/norand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (stderr %s), want 1", code, errb.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "extdict-lint" {
		t.Fatalf("unexpected SARIF envelope: %+v", doc)
	}
	if len(doc.Runs[0].Results) == 0 || doc.Runs[0].Results[0].RuleID != "norand" {
		t.Fatalf("expected norand results, got %+v", doc.Runs[0].Results)
	}
	uri := doc.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if filepath.IsAbs(uri) || !strings.Contains(uri, "internal/lint/testdata/norand") {
		t.Fatalf("result URI should be root-relative, got %q", uri)
	}
}

func TestTypeErrorExitsTwo(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nvar x undefinedType\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "./broken"}, &out, &errb); code != 2 {
		t.Fatalf("type-broken package exited %d (stderr %s), want 2", code, errb.String())
	}
	if !strings.Contains(errb.String(), "type error") {
		t.Fatalf("stderr does not mention the type error:\n%s", errb.String())
	}
}
