// Command extdict-lint runs the project's invariant analyzers (package
// extdict/internal/lint) over the repository and exits nonzero on any
// finding. It is stdlib-only and wired into scripts/ci.sh as a build gate.
//
// Usage:
//
//	extdict-lint [-json] [-checks norand,noclock] [packages...]
//
// Package patterns follow the go tool's shape ("./...", "./internal/dist")
// and are resolved relative to the module root; the default is the whole
// module. Suppress individual findings with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above it. -list prints the analyzer
// suite with the invariant each check enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"extdict/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extdict-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "extdict-lint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}
	root, module, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}
	pkgs, err := lint.Load(root, module, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.Run(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "extdict-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
