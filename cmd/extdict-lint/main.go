// Command extdict-lint runs the project's invariant analyzers (package
// extdict/internal/lint) over the repository. It is stdlib-only and wired
// into scripts/ci.sh as a build gate.
//
// Usage:
//
//	extdict-lint [-json] [-fix] [-sarif report.sarif] [-trace trace.json] [-roofline roofline.json] [-capacity capacity.json] [-checks spec] [-C dir] [packages...]
//
// Package patterns follow the go tool's shape ("./...", "./internal/dist")
// and are resolved relative to the module root; the default is the whole
// module. -C runs the command as if started in dir.
//
// -checks selects analyzers by name: a comma-separated list of names to
// include, names prefixed with "-" to exclude, and the keyword "all" for
// the full suite. "-checks errcheck,hotalloc" runs two checks;
// "-checks all,-errcheck" (or just "-checks -errcheck") runs everything
// else. -list prints the suite with the invariant each check enforces.
//
// -fix applies every machine-applicable suggested fix, gofmt-formats the
// touched files, and reports only the findings that remain; fixed findings
// do not count toward the exit code. -sarif additionally writes the reported
// findings as a SARIF 2.1.0 document for CI viewers.
//
// -trace writes the static collective schedule of every rank operator in
// the loaded packages (the schedule analyzer's abstract interpretation) as
// a JSON array, one entry per rank function, ordered by name. "-" writes to
// stdout. CI diffs this against the checked-in golden trace so schedule
// drift is caught at lint time.
//
// -roofline writes the static roofline report: for every accounted kernel
// region the flop and byte polynomials derived by the costmodel and
// memmodel analyzers, the arithmetic intensity at the documented reference
// shape, and the compute-/bandwidth-bound classification against the
// default platform's machine balance. "-" writes to stdout. CI diffs this
// against the checked-in golden report.
//
// -capacity writes the static capacity report: for every solver/dist rank
// entry point the per-rank peak-resident polynomial proven by the
// allocmodel analyzer, evaluated at the documented reference shapes and
// classified as fits / needs-out-of-core against the default platform's
// per-rank RAM. "-" writes to stdout. CI diffs this against the checked-in
// golden report.
//
// Exit codes are stable: 0 — no findings; 1 — findings reported (after -fix,
// findings remaining); 2 — usage, load, or type-check error. Type-check
// errors are printed and force exit 2 even when no analyzer fires, so a
// broken tree cannot pass as "clean".
//
// Suppress individual findings with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// on the offending line or the line above it. Suppressed findings are also
// exempt from -fix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"extdict/internal/cluster"
	"extdict/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extdict-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	checks := fs.String("checks", "", `check selection: names to run, -name to exclude, "all" for the suite`)
	fix := fs.Bool("fix", false, "apply suggested fixes and report only what remains")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	tracePath := fs.String("trace", "", `write static collective schedules as JSON to this file ("-" for stdout)`)
	rooflinePath := fs.String("roofline", "", `write the static roofline report as JSON to this file ("-" for stdout)`)
	capacityPath := fs.String("capacity", "", `write the static capacity report as JSON to this file ("-" for stdout)`)
	chdir := fs.String("C", "", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectChecks(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir := *chdir
	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	}
	root, module, err := lint.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}
	pkgs, err := lint.Load(root, module, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "extdict-lint:", err)
		return 2
	}

	prog := lint.NewProgram(pkgs)
	typeErrors := 0
	var findings []lint.Finding
	var traces []lint.OpTrace
	var roofRows []lint.RooflineRow
	var capRows []lint.CapacityRow
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			typeErrors++
			fmt.Fprintf(stderr, "extdict-lint: type error: %v\n", terr)
		}
		findings = append(findings, lint.RunProgram(prog, pkg, analyzers)...)
		if *tracePath != "" {
			traces = append(traces, lint.Traces(prog, pkg)...)
		}
		if *rooflinePath != "" {
			roofRows = append(roofRows, lint.Roofline(pkg)...)
		}
		if *capacityPath != "" {
			capRows = append(capRows, lint.Capacity(pkg)...)
		}
	}

	if *tracePath != "" {
		if err := writeTraces(stdout, *tracePath, traces); err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	}

	if *rooflinePath != "" {
		balance := cluster.NewPlatform(1, 1).MachineBalance()
		if err := writeRoofline(stdout, *rooflinePath, lint.NewRooflineReport(balance, roofRows)); err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	}

	if *capacityPath != "" {
		capacity := cluster.NewPlatform(1, 1).MemBytesCapacity()
		if err := writeCapacity(stdout, *capacityPath, lint.NewCapacityReport(capacity, capRows)); err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	}

	if *fix {
		fixed, remaining, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
		if len(fixed) > 0 {
			fmt.Fprintf(stdout, "extdict-lint: applied %d fix(es)\n", len(fixed))
		}
		findings = remaining
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err == nil {
			err = lint.WriteSARIF(f, root, analyzers, findings)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "extdict-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "extdict-lint: %d finding(s)\n", len(findings))
		}
	}
	switch {
	case typeErrors > 0:
		fmt.Fprintf(stderr, "extdict-lint: %d type error(s)\n", typeErrors)
		return 2
	case len(findings) > 0:
		return 1
	}
	return 0
}

// writeTraces emits the static collective schedules as an indented JSON
// array, sorted by function name across all loaded packages so the output
// is diffable against a checked-in golden file.
func writeTraces(stdout io.Writer, path string, traces []lint.OpTrace) error {
	sort.Slice(traces, func(i, j int) bool { return traces[i].Func < traces[j].Func })
	if traces == nil {
		traces = []lint.OpTrace{}
	}
	b, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// writeRoofline emits the static roofline report as indented JSON, rows
// already sorted by NewRooflineReport so the output is diffable against a
// checked-in golden file.
func writeRoofline(stdout io.Writer, path string, report lint.RooflineReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// writeCapacity emits the static capacity report as indented JSON, rows
// already sorted by NewCapacityReport so the output is diffable against a
// checked-in golden file.
func writeCapacity(stdout io.Writer, path string, report lint.CapacityReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// selectChecks resolves a -checks spec into an analyzer list: bare names
// include, "-name" excludes, "all" expands to the full suite. A spec with
// only exclusions starts from the full suite.
func selectChecks(spec string) ([]*lint.Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return lint.All(), nil
	}
	var include []*lint.Analyzer
	exclude := make(map[string]bool)
	sawInclude := false
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(name, "-"); ok {
			if lint.ByName(rest) == nil {
				return nil, fmt.Errorf("unknown check %q", rest)
			}
			exclude[rest] = true
			continue
		}
		sawInclude = true
		if name == "all" {
			include = append(include, lint.All()...)
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown check %q", name)
		}
		include = append(include, a)
	}
	if !sawInclude {
		include = lint.All()
	}
	var out []*lint.Analyzer
	seen := make(map[string]bool)
	for _, a := range include {
		if !seen[a.Name] && !exclude[a.Name] {
			seen[a.Name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks %q selects no analyzers", spec)
	}
	return out, nil
}
