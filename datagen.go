package extdict

import (
	"extdict/internal/dataset"
	"extdict/internal/rng"
)

// UnionOfSubspacesParams configures the synthetic union-of-low-rank-
// subspaces generator — the data model (§II-B) under which ExD's sparsity
// guarantees hold and which mirrors the statistics of the paper's dense
// visual datasets.
type UnionOfSubspacesParams = dataset.UnionParams

// GenerateUnionOfSubspaces draws a column-normalized M×N dataset whose
// columns live on a union of low-rank subspaces, plus per-column subspace
// membership ground truth.
func GenerateUnionOfSubspaces(p UnionOfSubspacesParams, seed uint64) (*Matrix, []int, error) {
	u, err := dataset.GenerateUnion(p, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	return u.A, u.Membership, nil
}

// DatasetPresets lists the built-in dataset presets mirroring the paper's
// evaluation datasets (salinas, cancercell, lightfield).
func DatasetPresets() []string { return dataset.PresetNames() }

// GeneratePreset draws one of the built-in presets at the given scale
// (1 = default size; smaller values shrink the column count).
func GeneratePreset(name string, scale float64, seed uint64) (*Matrix, error) {
	p, err := dataset.Preset(name, scale)
	if err != nil {
		return nil, err
	}
	u, err := dataset.GenerateUnion(p, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return u.A, nil
}

// LightFieldParams configures the structured plenoptic-camera generator
// used by the denoising and super-resolution examples.
type LightFieldParams = dataset.LightFieldParams

// GenerateLightField renders a synthetic light field and returns the patch
// matrix: one column per patch, Patch²·Grid² rows (camera-major layout).
// Columns are raw intensities (not normalized): reconstruction applications
// need them; call NormalizeColumns before Fit.
func GenerateLightField(p LightFieldParams, seed uint64) (*Matrix, error) {
	lf, err := dataset.GenerateLightField(p, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return lf.A, nil
}

// LightFieldSubsetRows returns the row indices of the central sub×sub
// camera block of a light field generated with p, in layout order (the
// super-resolution observation space).
func LightFieldSubsetRows(p LightFieldParams, sub int) ([]int, error) {
	lf := &dataset.LightField{Params: p}
	return lf.CameraSubsetRows(sub)
}

// AddNoiseSNR returns a copy of v corrupted with Gaussian noise scaled for
// the given signal-to-noise ratio in dB.
func AddNoiseSNR(v []float64, snrDB float64, seed uint64) []float64 {
	return dataset.AddNoise(v, snrDB, rng.New(seed))
}
