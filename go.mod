module extdict

go 1.22
