package extdict_test

import (
	"fmt"

	"extdict"
)

// ExampleFit demonstrates the core workflow: generate union-of-subspaces
// data, preprocess it for a platform, and inspect the transform.
func ExampleFit() {
	data, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 32, N: 512, Ks: []int{3, 4},
	}, 1)
	if err != nil {
		panic(err)
	}
	model, err := extdict.Fit(data, extdict.NewPlatform(1, 4), extdict.Options{
		Epsilon: 0.1, L: 120, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("L=%d, error within tolerance: %v\n",
		model.L(), model.RelError(data) <= 0.1)
	// Output:
	// L=120, error within tolerance: true
}

// ExampleModel_GramOperator shows one distributed Gram iteration and its
// communication accounting.
func ExampleModel_GramOperator() {
	data, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 40, N: 256, Ks: []int{3},
	}, 2)
	if err != nil {
		panic(err)
	}
	model, err := extdict.Fit(data, extdict.NewPlatform(2, 2), extdict.Options{
		Epsilon: 0.1, L: 24, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		panic(err)
	}
	x := make([]float64, 256)
	y := make([]float64, 256)
	stats := op.Apply(x, y)
	// Communication is 2·min(M, L) = 2·24 words per iteration.
	fmt.Printf("critical-path words: %d\n", stats.PathWords)
	// Output:
	// critical-path words: 48
}

// ExampleSolvePCA runs the distributed Power method through the facade.
func ExampleSolvePCA() {
	data, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 24, N: 128, Ks: []int{2},
	}, 3)
	if err != nil {
		panic(err)
	}
	res := extdict.SolvePCA(
		extdict.DenseGramOperator(data, extdict.NewPlatform(1, 2)),
		extdict.PCAOptions{Components: 2, Seed: 3},
	)
	fmt.Printf("found %d eigenvalues, sorted: %v\n",
		len(res.Eigenvalues), res.Eigenvalues[0] >= res.Eigenvalues[1])
	// Output:
	// found 2 eigenvalues, sorted: true
}
