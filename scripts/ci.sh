#!/usr/bin/env bash
# ci.sh — the one-command gate for this repository.
#
# Runs, in order: build, go vet, gofmt (fails on any unformatted file), the
# project invariant linter (cmd/extdict-lint), the full test suite, and the
# race detector over the concurrency-bearing packages. Everything must pass
# for a change to land.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== extdict-lint"
go run ./cmd/extdict-lint ./...

echo "== go test"
go test ./...

echo "== go test -race (cluster, dist)"
go test -race -short -count=1 ./internal/cluster/... ./internal/dist/...

echo "CI gate passed."
