#!/usr/bin/env bash
# ci.sh — the one-command gate for this repository.
#
# Runs, in order: build, go vet, gofmt (fails on any unformatted file), the
# project invariant linter (cmd/extdict-lint, all analyzers, SARIF report,
# and a check that -fix would not change any file), a diff of the static
# collective schedule (-trace) against its golden, the full test suite with
# an aggregate coverage floor, the race detector over every internal
# package, and the GOMAXPROCS determinism matrix. Everything must pass for
# a change to land.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== no tracked SARIF artifacts"
# SARIF reports are per-run build artifacts (.gitignore: *.sarif); a
# committed one goes stale instantly and shadows the CI upload.
if git ls-files -- '*.sarif' | grep -q .; then
    echo "these SARIF reports are tracked but must not be:" >&2
    git ls-files -- '*.sarif' >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== extdict-lint -fix (must be a no-op)"
# Mirror the gofmt check for suggested fixes: apply -fix to a scratch copy of
# the tree and fail if any file would change. The copy keeps local working
# trees unmutated on failure.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cp -a . "$tmpdir/tree"
rm -rf "$tmpdir/tree/.git"
go run ./cmd/extdict-lint -C "$tmpdir/tree" -fix ./... >/dev/null || true
if ! diff -rq -x .git "$tmpdir/tree" . >/dev/null; then
    echo "extdict-lint: -fix would change these files; run 'go run ./cmd/extdict-lint -fix ./...' and commit:" >&2
    diff -rq -x .git "$tmpdir/tree" . | sed 's/^/  /' >&2
    exit 1
fi

echo "== extdict-lint"
go run ./cmd/extdict-lint -sarif extdict-lint.sarif ./...

echo "== SARIF report carries the concurrency rules"
# The uploaded report must advertise the whole suite — a stale binary or a
# narrowed run would silently drop the newest analyzers' rule metadata.
for rule in sharedstate lockorder detorder allocmodel; do
    if ! grep -q "\"id\": \"$rule\"" extdict-lint.sarif; then
        echo "extdict-lint.sarif lacks rule metadata for $rule" >&2
        exit 1
    fi
done

echo "== extdict-lint dogfood (internal/lint itself must be clean)"
# The linter's own sources hold to the documentation, error-handling, and
# panic-attribution invariants it enforces on the rest of the module.
go run ./cmd/extdict-lint -checks exporteddoc,errcheck,panicmsg ./internal/lint/...

echo "== extdict-lint -checks sharedstate,lockorder,detorder (tree must be concurrency-clean)"
# The full run above already covers the three concurrency analyzers, but —
# like the memmodel assert below — this keeps the zero-unsuppressed-findings
# guarantee explicit even if someone narrows the run above.
go run ./cmd/extdict-lint -checks sharedstate,lockorder,detorder ./...

echo "== extdict-lint -checks memmodel (tree must be memory-model clean)"
# The roofline report divides proven flop polynomials by proven byte
# polynomials; an unproven AddBytes claim would poison the denominators.
# The full run above already covers memmodel, but this assert keeps the
# guarantee explicit even if someone narrows the run above.
go run ./cmd/extdict-lint -checks memmodel ./...

echo "== extdict-lint -checks allocmodel (tree must be capacity-model clean)"
# The capacity report's fits/needs-out-of-core verdicts evaluate the proven
# resident-set polynomials; an unproven AddResident claim would make them
# claims about nothing. Kept explicit like the memmodel assert above.
go run ./cmd/extdict-lint -checks allocmodel ./...

echo "== extdict-lint cost trio over the FastDict family (zero suppressions)"
# The FastDict chain contracts (2·NNZ flops, 16·NNZ + 8·VecWords bytes,
# 8·ResidentWords resident) must prove symbolically with no escape hatch:
# the full runs above cover these packages, but the suppression scan keeps
# "proven, not waived" explicit for the newest operator family.
go run ./cmd/extdict-lint -checks costmodel,memmodel,allocmodel ./internal/faust/... ./internal/dist/...
if grep -rn "lint:ignore" internal/faust/ internal/dist/fast.go; then
    echo "the FastDict sources must stay suppression-free; every claim is provable" >&2
    exit 1
fi

echo "== extdict-lint -trace (static schedule must match the golden)"
# The schedule analyzer's static collective traces are a reviewed artifact:
# any drift in an operator's reduce/broadcast schedule must be deliberate.
go run ./cmd/extdict-lint -checks schedule -trace "$tmpdir/trace.json" ./...
if ! diff -u internal/lint/testdata/schedule.golden.json "$tmpdir/trace.json"; then
    echo "extdict-lint: static collective schedule drifted; if intended, regenerate with" >&2
    echo "  go run ./cmd/extdict-lint -checks schedule -trace internal/lint/testdata/schedule.golden.json ./..." >&2
    exit 1
fi

echo "== extdict-lint -roofline (static roofline must match the golden)"
# The roofline report — per-kernel arithmetic intensity and compute-vs-
# bandwidth classification — is a reviewed artifact like the schedule: a
# changed kernel contract or platform balance must be deliberate.
go run ./cmd/extdict-lint -checks memmodel -roofline "$tmpdir/roofline.json" ./...
if ! diff -u internal/lint/testdata/roofline.golden.json "$tmpdir/roofline.json"; then
    echo "extdict-lint: static roofline drifted; if intended, regenerate with" >&2
    echo "  go run ./cmd/extdict-lint -checks memmodel -roofline internal/lint/testdata/roofline.golden.json ./..." >&2
    exit 1
fi

echo "== extdict-lint -capacity (static capacity report must match the golden)"
# The capacity report — per-entry-point peak-resident polynomials at the
# documented reference shapes, classified against per-rank RAM — is a
# reviewed artifact like the roofline: a changed allocation contract or
# capacity must be deliberate.
go run ./cmd/extdict-lint -checks allocmodel -capacity "$tmpdir/capacity.json" ./...
if ! diff -u internal/lint/testdata/capacity.golden.json "$tmpdir/capacity.json"; then
    echo "extdict-lint: static capacity report drifted; if intended, regenerate with" >&2
    echo "  go run ./cmd/extdict-lint -checks allocmodel -capacity internal/lint/testdata/capacity.golden.json ./..." >&2
    exit 1
fi

echo "== go test (with coverage floor)"
# The floor is the aggregate statement coverage of ./internal/... measured
# when the gate was introduced; it may only be raised.
coverage_floor=82.9
go test -coverprofile="$tmpdir/cover.out" -coverpkg=./internal/... ./...
coverage=$(go tool cover -func="$tmpdir/cover.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "aggregate internal coverage: ${coverage}%"
if awk -v c="$coverage" -v f="$coverage_floor" 'BEGIN {exit !(c < f)}'; then
    echo "coverage ${coverage}% is below the ${coverage_floor}% floor" >&2
    exit 1
fi

echo "== go test -race (all internal packages)"
go test -race -short -count=1 ./internal/...

echo "== determinism matrix (GOMAXPROCS = 1, 2, NumCPU)"
# The Par-kernel equivalence tests and the 24-seed chaos replay must hold
# under serial, dual, and fully parallel scheduling. The chaos digest test
# compares every run against the same committed golden
# (internal/cluster/chaos/testdata/replay.digest), so the three settings
# cannot silently diverge from one another or from the recorded baseline.
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
for gmp in 1 2 "$ncpu"; do
    echo "-- GOMAXPROCS=$gmp"
    GOMAXPROCS=$gmp go test -count=1 -run 'TestPar' ./internal/mat/
    GOMAXPROCS=$gmp go test -count=1 ./internal/cluster/chaos/
done

echo "== bench smoke (kernel benchmarks must run)"
# One iteration of every kernel microbenchmark: catches benchmarks that
# panic or no longer compile without paying the full measurement cost. The
# faust chain benches ride along with mat/omp.
go test -run '^$' -bench . -benchtime 1x -count=1 ./internal/mat/ ./internal/omp/ ./internal/faust/ ./internal/dist/ >/dev/null

echo "== extdict-bench -json (report must be machine-readable)"
# The JSON baseline pipeline behind BENCH_PR5.json/BENCH_PR10.json: emit
# tiny-scale reports — including the FastDict kernel rows and family sweep —
# and re-parse them with the Go decoder the tests use.
go test -run 'TestJSONOutputParses|TestJSONFastDictExperiment' -count=1 ./cmd/extdict-bench/ >/dev/null

echo "== serve smoke (binary round-trip and clean shutdown)"
# The serving binary end to end: load a generated dictionary, bind a free
# loopback port, answer a health probe and one encode round-trip, then
# drain cleanly on SIGTERM. The in-process variants of this path (listener
# lifecycle under a leak watchdog, the -race soak) already ran with the
# test suite above; this gate proves the shipped binary wires them up.
go run ./cmd/extdict gen -preset salinas -scale 0.05 -out "$tmpdir/dict.edm" >/dev/null
go build -o "$tmpdir/extdict-serve" ./cmd/extdict-serve
"$tmpdir/extdict-serve" -dict smoke="$tmpdir/dict.edm" -addr 127.0.0.1:0 \
    >"$tmpdir/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^serving .* on \([^ ]*\) .*/\1/p' "$tmpdir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "extdict-serve never reported its listen address:" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi
curl -fsS "http://$addr/v1/healthz" | grep -q '"status":"ok"'
m=$(sed -n 's/^loaded smoke: \([0-9]*\)x.*/\1/p' "$tmpdir/serve.log")
signal=$(seq 1 "$m" | awk '{printf "%s%.3f", (NR > 1 ? "," : ""), $1 / 100}')
curl -fsS -X POST -d "{\"dict\":\"smoke\",\"signal\":[$signal]}" \
    "http://$addr/v1/encode" | grep -q '"idx"'
curl -fsS "http://$addr/v1/statsz" | grep -q '"encoded":1'
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "extdict-serve did not exit cleanly:" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi
grep -q 'draining' "$tmpdir/serve.log"

echo "== serve loadtest (seeded clients, bit-identity against serial encode)"
# The deterministic closed-loop harness at a small fixed seed: 8 concurrent
# clients against a live listener, every response compared bit for bit with
# a serial Batch-OMP reference, latency ordering and batch accounting
# checked. Zero mismatches is the gate.
go test -count=1 -run TestLoadAgainstLiveServer ./internal/serve/loadtest/

echo "CI gate passed."
