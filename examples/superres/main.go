// Super-resolution example: reconstruct a full 5×5-camera light-field patch
// from its central 3×3 camera subset (the paper's second application,
// §VIII-A). The LASSO is solved against the subset rows of the patch
// dictionary; applying the full-resolution dictionary to the solution fills
// in the missing views.
//
// Run with: go run ./examples/superres
package main

import (
	"fmt"
	"log"
	"math"

	"extdict"
)

func main() {
	lfp := extdict.LightFieldParams{
		Grid: 5, Patch: 8, NumPatches: 1025, NumSources: 16, SceneSize: 192,
	}
	all, err := extdict.GenerateLightField(lfp, 31)
	if err != nil {
		log.Fatal(err)
	}
	n := all.Cols - 1
	full := all.ColRange(0, n).Clone()
	targetFull := all.Col(n, nil)

	// Observation space: the central 3×3 cameras (576 of 1600 rows).
	subRows, err := extdict.LightFieldSubsetRows(lfp, 3)
	if err != nil {
		log.Fatal(err)
	}
	sub := full.RowSlice(subRows)
	norms := sub.NormalizeColumns()
	// Keep the full-resolution dictionary column-consistent with the
	// normalized observation dictionary.
	for i := 0; i < full.Rows; i++ {
		row := full.Row(i)
		for j := range row {
			if norms[j] > 0 {
				row[j] /= norms[j]
			}
		}
	}
	yLow := make([]float64, len(subRows))
	for k, r := range subRows {
		yLow[k] = targetFull[r]
	}
	fmt.Printf("dictionary: %d patches; observation %d rows -> reconstruction %d rows\n",
		n, sub.Rows, full.Rows)

	platform := extdict.NewPlatform(2, 8)
	model, err := extdict.Fit(sub, platform, extdict.Options{Epsilon: 0.05, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}
	lambda := 0.05 * normInf(sub.MulVecT(yLow, nil))
	res := extdict.SolveLasso(op, sub, yLow, extdict.LassoOptions{
		Lambda: lambda, MaxIters: 800, Tol: 1e-6,
	})

	recon := full.MulVec(res.X, nil)
	fmt.Printf("ExD: L=%d alpha=%.2f; LASSO %d iters, modeled %.2f ms\n",
		model.L(), model.Alpha(), res.Iters, res.Stats.ModeledTime*1e3)
	fmt.Printf("reconstruction: rel.error %.4f, PSNR %.2f dB over %d synthesized pixels\n",
		relError(targetFull, recon), psnr(targetFull, recon), full.Rows-sub.Rows)
}

func normInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func relError(ref, test []float64) float64 {
	var num, den float64
	for i, r := range ref {
		d := r - test[i]
		num += d * d
		den += r * r
	}
	return math.Sqrt(num / den)
}

func psnr(ref, test []float64) float64 {
	var mse, peak float64
	for i, r := range ref {
		d := r - test[i]
		mse += d * d
		if a := math.Abs(r); a > peak {
			peak = a
		}
	}
	mse /= float64(len(ref))
	return 10 * math.Log10(peak*peak/mse)
}
