// Clustering example: spectral partitioning of densely correlated signals
// through the ExtDict-transformed Gram operator, plus sparse PCA for
// interpretable components — two more of the Power-method applications the
// paper lists (§II-A).
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"extdict"
)

func main() {
	// Three direction clusters (rank-1 subspaces) in a 64-dim space.
	data, truth, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 64, N: 1200, Ks: []int{1, 1, 1}, NoiseSigma: 0.01,
	}, 91)
	if err != nil {
		log.Fatal(err)
	}

	platform := extdict.NewPlatform(2, 4)
	model, err := extdict.Fit(data, platform, extdict.Options{Epsilon: 0.05, Seed: 92})
	if err != nil {
		log.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}

	// Spectral partitioning on the transformed operator.
	res := extdict.SolveSpectralClustering(op, extdict.SpectralOptions{Clusters: 3, Seed: 93})
	fmt.Printf("spectral clustering on (DC)ᵀDC: %d columns into 3 clusters\n", len(res.Assign))
	fmt.Printf("pairwise agreement with ground truth: %.1f%%\n", 100*randIndex(res.Assign, truth))
	fmt.Printf("distributed cost: %.2f ms modeled over %d power iterations\n",
		res.Eigen.Stats.ModeledTime*1e3, res.Eigen.Iters)

	// Sparse PCA: components restricted to 8 nonzero loadings each.
	sp := extdict.SolveSparsePCA(op, extdict.SparsePCAOptions{
		Components: 3, Cardinality: 8, Seed: 94,
	})
	fmt.Println("\nsparse PCA (≤8 loadings per component):")
	for k, v := range sp.Variances {
		nz := 0
		for _, x := range sp.Components.Col(k, nil) {
			if x != 0 {
				nz++
			}
		}
		fmt.Printf("component %d: explained variance %.2f, %d nonzero loadings\n", k+1, v, nz)
	}
}

// randIndex is the fraction of pairs on which two clusterings agree.
func randIndex(a, b []int) float64 {
	agree, total := 0, 0
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}
