// Quickstart: generate a densely correlated dataset, preprocess it with
// ExtDict for a target platform, and compare a distributed Gram iteration on
// the transformed data against the raw baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"extdict"
)

func main() {
	// 1. Data: 96-dimensional signals on a union of low-rank subspaces —
	// the structure dense visual data (hyperspectral, light field) shows.
	data, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 96, N: 4096, Ks: []int{3, 4, 5}, NoiseSigma: 0.001,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Target platform: 2 nodes × 8 cores. The cost model knows that
	// words crossing nodes are ~10x dearer than flops-equivalent.
	platform := extdict.NewPlatform(2, 8)

	// 3. Preprocess: tune the dictionary size L against the platform cost
	// model, then project A ≈ D·C with at most 10% transformation error.
	model, err := extdict.Fit(data, platform, extdict.Options{Epsilon: 0.1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExD transform: L=%d, alpha=%.2f nonzeros/column, error=%.3f\n",
		model.L(), model.Alpha(), model.RelError(data))
	fmt.Printf("storage: %d words vs %d raw (%.1fx smaller)\n",
		model.MemoryWords(), data.Rows*data.Cols,
		float64(data.Rows*data.Cols)/float64(model.MemoryWords()))

	// 4. One distributed Gram iteration, transformed vs raw.
	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}
	baseline := extdict.DenseGramOperator(data, platform)

	x := make([]float64, data.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, data.Cols)

	fast := op.Apply(x, y)
	slow := baseline.Apply(x, y)
	fmt.Printf("iteration on (DC)ᵀDC: %.1f µs modeled (%d words on the wire)\n",
		fast.ModeledTime*1e6, fast.PathWords)
	fmt.Printf("iteration on AᵀA:     %.1f µs modeled (%d words on the wire)\n",
		slow.ModeledTime*1e6, slow.PathWords)
	fmt.Printf("speedup: %.2fx\n", slow.ModeledTime/fast.ModeledTime)
}
