// Denoising example: reconstruct a noisy light-field patch with LASSO over
// a dictionary of clean patches (the paper's first application, §VIII-A),
// solving on the ExtDict-transformed Gram operator and comparing against
// the distributed SGD baseline.
//
// Run with: go run ./examples/denoise
package main

import (
	"fmt"
	"log"
	"math"

	"extdict"
)

func main() {
	// Synthetic plenoptic capture: 5×5 cameras, 8×8 patches (1600-dim
	// columns), one held-out patch as the denoising target.
	lfp := extdict.LightFieldParams{
		Grid: 5, Patch: 8, NumPatches: 1025, NumSources: 16, SceneSize: 192,
	}
	all, err := extdict.GenerateLightField(lfp, 21)
	if err != nil {
		log.Fatal(err)
	}
	n := all.Cols - 1
	train := all.ColRange(0, n).Clone()
	clean := all.Col(n, nil)
	train.NormalizeColumns()

	// Corrupt the held-out patch at 20 dB input SNR (the paper's setting).
	noisy := extdict.AddNoiseSNR(clean, 20, 22)
	fmt.Printf("training patches: %d of dim %d; input SNR 20 dB\n", n, train.Rows)

	platform := extdict.NewPlatform(1, 4)
	model, err := extdict.Fit(train, platform, extdict.Options{Epsilon: 0.1, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExD: L=%d alpha=%.2f\n", model.L(), model.Alpha())

	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}
	lambda := lassoWeight(train, noisy)
	gd := extdict.SolveLasso(op, train, noisy, extdict.LassoOptions{
		Lambda: lambda, MaxIters: 600, Tol: 1e-6,
	})
	recGD := train.MulVec(gd.X, nil)

	sgd := extdict.SolveLasso(
		extdict.SGDOperator(train, platform, 64, 24),
		train, noisy, extdict.LassoOptions{Lambda: lambda, MaxIters: 600, Tol: 1e-30},
	)
	recSGD := train.MulVec(sgd.X, nil)

	fmt.Printf("\n%-22s %-10s %-10s %-12s\n", "method", "PSNR(dB)", "iters", "modeled(ms)")
	fmt.Printf("%-22s %-10.2f %-10s %-12s\n", "noisy input", psnr(clean, noisy), "-", "-")
	fmt.Printf("%-22s %-10.2f %-10d %-12.2f\n", "ExtDict grad.descent", psnr(clean, recGD), gd.Iters, gd.Stats.ModeledTime*1e3)
	fmt.Printf("%-22s %-10.2f %-10d %-12.2f\n", "SGD baseline", psnr(clean, recSGD), sgd.Iters, sgd.Stats.ModeledTime*1e3)
}

// lassoWeight sizes λ relative to the correlation scale of the problem.
func lassoWeight(a *extdict.Matrix, y []float64) float64 {
	c := a.MulVecT(y, nil)
	max := 0.0
	for _, v := range c {
		if m := math.Abs(v); m > max {
			max = m
		}
	}
	return 0.05 * max
}

func psnr(ref, test []float64) float64 {
	var mse, peak float64
	for i, r := range ref {
		d := r - test[i]
		mse += d * d
		if a := math.Abs(r); a > peak {
			peak = a
		}
	}
	mse /= float64(len(ref))
	return 10 * math.Log10(peak*peak/mse)
}
