// SVM example: train a soft-margin support vector machine in the dual on
// the distributed Gram operator — §II-A's last target algorithm — comparing
// the ExtDict-transformed iteration against the raw baseline on time and
// agreement, then classifying held-out samples with the primal weights.
//
// Run with: go run ./examples/svm
package main

import (
	"fmt"
	"log"
	"math"

	"extdict"
)

// twoClassData draws unit-norm columns scattered around one of two
// orthogonal directions (no sign flips, so the classes are linearly
// separable), returning the matrix and ±1 labels. A light-weight stand-in
// for a labeled feature matrix.
func twoClassData(m, n int, noise float64, seed int64) (*extdict.Matrix, []float64) {
	// Deterministic pseudo-randomness without importing internal packages:
	// a splitmix-style generator is enough for demo data.
	state := uint64(seed)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	gauss := func() float64 {
		// Box-Muller.
		u1, u2 := next(), next()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}

	u := make([]float64, m)
	v := make([]float64, m)
	for i := range u {
		u[i] = gauss()
		v[i] = gauss()
	}
	norm := func(x []float64) {
		s := 0.0
		for _, e := range x {
			s += e * e
		}
		s = math.Sqrt(s)
		for i := range x {
			x[i] /= s
		}
	}
	norm(u)
	d := 0.0
	for i := range v {
		d += u[i] * v[i]
	}
	for i := range v {
		v[i] -= d * u[i]
	}
	norm(v)

	a := extdict.NewMatrix(m, n)
	labels := make([]float64, n)
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		base := u
		labels[j] = 1
		if j%2 == 1 {
			base = v
			labels[j] = -1
		}
		for i := range col {
			col[i] = base[i] + noise*gauss()
		}
		norm(col)
		a.SetCol(j, col)
	}
	return a, labels
}

func main() {
	// One draw, split into train and held-out halves (both classes share
	// the same pair of directions).
	all, allLabels := twoClassData(64, 2400, 0.02, 121)
	data := all.ColRange(0, 2000).Clone()
	labels := allLabels[:2000]
	fresh := all.ColRange(2000, 2400).Clone()
	freshLabels := allLabels[2000:]

	platform := extdict.NewPlatform(2, 4)
	opts := extdict.SVMOptions{C: 10, MaxIters: 1000, Seed: 122}

	raw := extdict.SolveSVM(extdict.DenseGramOperator(data, platform), labels, opts)

	model, err := extdict.Fit(data, platform, extdict.Options{Epsilon: 0.1, Seed: 123})
	if err != nil {
		log.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}
	fast := extdict.SolveSVM(op, labels, opts)

	fmt.Printf("%-12s %-10s %-8s %-10s %-12s\n", "operator", "accuracy", "SVs", "dual obj", "modeled(ms)")
	for _, row := range []struct {
		name string
		r    extdict.SVMResult
	}{{"AᵀA", raw}, {"ExD", fast}} {
		correct := 0
		for i, y := range labels {
			if y*row.r.Margins[i] > 0 {
				correct++
			}
		}
		fmt.Printf("%-12s %-10.3f %-8d %-10.2f %-12.2f\n",
			row.name, float64(correct)/float64(len(labels)),
			row.r.SupportVectors, row.r.Objective, row.r.Stats.ModeledTime*1e3)
	}
	fmt.Printf("\nspeedup on the training iterations: %.2fx\n",
		raw.Stats.ModeledTime/fast.Stats.ModeledTime)

	// Classify the held-out samples with the primal weights.
	w := extdict.SVMWeights(data, labels, fast)
	correct := 0
	col := make([]float64, 64)
	for j := 0; j < fresh.Cols; j++ {
		fresh.Col(j, col)
		f := 0.0
		for i, wi := range w {
			f += wi * col[i]
		}
		if f*freshLabels[j] > 0 {
			correct++
		}
	}
	fmt.Printf("held-out accuracy on %d fresh samples: %.3f\n",
		fresh.Cols, float64(correct)/float64(fresh.Cols))
}
