// Evolving-data example: extend a fitted ExtDict model as the dataset grows
// (§V-E). In-span additions only grow the coefficient matrix; out-of-span
// additions trigger the zero-padded dictionary extension of Fig. 3 — without
// ever re-transforming the original data.
//
// Run with: go run ./examples/evolving
package main

import (
	"fmt"
	"log"

	"extdict"
)

func main() {
	platform := extdict.NewPlatform(1, 4)

	// Initial corpus: three subspaces.
	base, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 64, N: 2000, Ks: []int{3, 4, 5},
	}, 41)
	if err != nil {
		log.Fatal(err)
	}
	model, err := extdict.Fit(base, platform, extdict.Options{Epsilon: 0.08, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model: N=%d L=%d alpha=%.2f error=%.4f\n",
		model.N(), model.L(), model.Alpha(), model.RelError(base))

	// Batch 1: more columns from the SAME subspaces (same generator seed
	// reproduces the same bases). The dictionary already spans them.
	more, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 64, N: 500, Ks: []int{3, 4, 5},
	}, 41) // same seed -> same subspaces
	if err != nil {
		log.Fatal(err)
	}
	info, err := model.Extend(more)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch 1 (in-span, %d columns): failed=%d, dictionary grown=%v\n",
		info.NewColumns, info.FailedColumns, info.DictGrown)
	fmt.Printf("model now: N=%d L=%d\n", model.N(), model.L())

	// Batch 2: a drastically different structure — a new, higher-dim
	// subspace the dictionary has never seen.
	novel, _, err := extdict.GenerateUnionOfSubspaces(extdict.UnionOfSubspacesParams{
		M: 64, N: 500, Ks: []int{8},
	}, 99)
	if err != nil {
		log.Fatal(err)
	}
	info, err = model.Extend(novel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch 2 (novel structure, %d columns): failed=%d, dictionary grown=%v (+%d atoms)\n",
		info.NewColumns, info.FailedColumns, info.DictGrown, info.AddedAtoms)
	fmt.Printf("model now: N=%d L=%d alpha=%.2f\n", model.N(), model.L(), model.Alpha())
}
