// PCA example: extract the top eigenvalues of a large Gram matrix with the
// distributed Power method, comparing the ExtDict-transformed iteration
// against the raw AᵀA baseline — the paper's Fig. 10 workload in miniature.
//
// Run with: go run ./examples/pca
package main

import (
	"fmt"
	"log"
	"math"

	"extdict"
)

func main() {
	data, err := extdict.GeneratePreset("salinas", 0.5, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %dx%d (hyperspectral-like)\n", data.Rows, data.Cols)

	platform := extdict.NewPlatform(8, 8) // 64 simulated cores

	// Baseline: Power method on the raw Gram matrix.
	raw := extdict.SolvePCA(
		extdict.DenseGramOperator(data, platform),
		extdict.PCAOptions{Components: 6, Seed: 3},
	)

	// ExtDict: preprocess once, then iterate on (DC)ᵀDC.
	model, err := extdict.Fit(data, platform, extdict.Options{Epsilon: 0.05, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	op, err := model.GramOperator()
	if err != nil {
		log.Fatal(err)
	}
	fast := extdict.SolvePCA(op, extdict.PCAOptions{Components: 6, Seed: 3})

	fmt.Printf("\n%-4s %-14s %-14s %s\n", "k", "lambda (AᵀA)", "lambda (ExD)", "rel.diff")
	var errSum, valSum float64
	for k := range raw.Eigenvalues {
		d := math.Abs(raw.Eigenvalues[k] - fast.Eigenvalues[k])
		errSum += d
		valSum += raw.Eigenvalues[k]
		fmt.Printf("%-4d %-14.5g %-14.5g %.2e\n",
			k+1, raw.Eigenvalues[k], fast.Eigenvalues[k], d/raw.Eigenvalues[k])
	}
	fmt.Printf("\ncumulative eigenvalue error: %.4f%%\n", 100*errSum/valSum)
	fmt.Printf("modeled time: raw %.2f ms (%d iters)  ExtDict %.2f ms (%d iters)  -> %.2fx faster\n",
		raw.Stats.ModeledTime*1e3, raw.Iters,
		fast.Stats.ModeledTime*1e3, fast.Iters,
		raw.Stats.ModeledTime/fast.Stats.ModeledTime)
}
