package extdict_test

// The repository-level benchmarks regenerate every table and figure of the
// paper's evaluation (§VIII) through the internal/experiments drivers. Each
// benchmark runs its experiment once per iteration and reports, alongside
// ns/op, experiment-specific metrics extracted from the result (improvement
// factors, model error, memory ratios) so `go test -bench=.` prints the
// numbers EXPERIMENTS.md records.
//
// Scale: benches default to 0.5× the preset sizes so the full suite
// completes in minutes on a laptop while every trend stays in the paper's
// operating regime on the in-regime platforms. Set the scale to 1 via
// cmd/extdict-bench for full-size runs and printed tables.

import (
	"testing"

	"extdict/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.5, Seed: 1, Workers: 0}
}

// BenchmarkFig4AlphaCurve regenerates Fig. 4: α(L) and transformation error
// vs dictionary size with variance over random dictionary draws.
func BenchmarkFig4AlphaCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchCfg(), 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := r.Points[0], r.Points[len(r.Points)-1]
			b.ReportMetric(first.AlphaMean, "alpha@Lmin")
			b.ReportMetric(last.AlphaMean, "alpha@N")
			b.ReportMetric(float64(r.LMin), "Lmin")
		}
	}
}

// BenchmarkFig5Tunability regenerates Fig. 5: α(L) per dataset and ε.
func BenchmarkFig5Tunability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Tunability span on the first dataset: densest ε curve start
			// over sparsest curve end.
			ds := r.Datasets[0]
			tight := ds.Series[0].Alpha[0]
			loose := ds.Series[len(ds.Series)-1].Alpha[len(ds.Ls)-1]
			b.ReportMetric(tight/loose, "alpha-span")
		}
	}
}

// BenchmarkFig6SubsetEstimation regenerates Fig. 6: α(L) from nested
// subsets; the reported metric is the worst small-subset discrepancy.
func BenchmarkFig6SubsetEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for di := range r.Datasets {
				if d := r.FinalDiscrepancy(di); d > worst {
					worst = d
				}
			}
			b.ReportMetric(100*worst, "worst-discrepancy-%")
		}
	}
}

// BenchmarkTable2Preprocessing regenerates Table II: tuning + transformation
// overhead per dataset.
func BenchmarkTable2Preprocessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.OverallMS, row.Dataset+"-ms")
			}
		}
	}
}

// BenchmarkFig7RuntimeImprovement regenerates Fig. 7: Gram-iteration runtime
// of ExtDict vs AᵀA, RCSS, oASIS, and RankMap across platforms.
func BenchmarkFig7RuntimeImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best := map[string]float64{}
			for _, ds := range r.Datasets {
				for _, c := range ds.Cells {
					for m, v := range c.Improvement {
						if v > best[m] {
							best[m] = v
						}
					}
				}
			}
			for m, v := range best {
				b.ReportMetric(v, "best-vs-"+m)
			}
		}
	}
}

// BenchmarkFastDictFamily runs the FastDict sweep: one Gram iteration per
// (dataset, platform) through AᵀA, ExD, and the sparse-factor chain.
func BenchmarkFastDictFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FastDict(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var bestATA, bestExD float64
			for _, ds := range r.Datasets {
				for _, c := range ds.Cells {
					if c.Improvement > bestATA {
						bestATA = c.Improvement
					}
					if c.VsExD > bestExD {
						bestExD = c.VsExD
					}
				}
			}
			b.ReportMetric(bestATA, "best-vs-ATA")
			b.ReportMetric(bestExD, "best-vs-ExD")
		}
	}
}

// BenchmarkTable3Memory regenerates Table III: storage per transform.
func BenchmarkTable3Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := r.Rows[0]
			bestExt := row.ExtDict[64]
			b.ReportMetric(float64(row.Original)/float64(bestExt), "mem-vs-original")
			b.ReportMetric(float64(row.Baselines["RCSS"])/float64(bestExt), "mem-vs-RCSS")
			b.ReportMetric(float64(row.Baselines["RankMap"])/float64(bestExt), "mem-vs-RankMap")
		}
	}
}

// BenchmarkFig8ModelVerification regenerates Fig. 8: predicted vs measured
// iteration cost across L and platforms.
func BenchmarkFig8ModelVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.MaxRelError(), "worst-model-err-%")
		}
	}
}

// BenchmarkFig9LassoVsSGD regenerates Fig. 9: denoising and super-resolution
// solve time, ExtDict gradient descent vs SGD.
func BenchmarkFig9LassoVsSGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, app := range r.Apps {
				best := 0.0
				for _, c := range app.Cells {
					if c.Improvement > best {
						best = c.Improvement
					}
				}
				b.ReportMetric(best, app.Name+"-best-x")
			}
		}
	}
}

// BenchmarkFig10PowerMethod regenerates Fig. 10: Power-method runtime on raw
// vs transformed data.
func BenchmarkFig10PowerMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchCfg(), 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, ds := range r.Datasets {
				best := 0.0
				for _, c := range ds.Cells {
					if c.Improvement > best {
						best = c.Improvement
					}
				}
				b.ReportMetric(best, ds.Name+"-best-x")
			}
		}
	}
}

// BenchmarkFig11ErrorTradeoff regenerates Fig. 11: reconstruction error and
// PSNR vs transformation error.
func BenchmarkFig11ErrorTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, app := range r.Apps {
				b.ReportMetric(app.Points[0].PSNRdB, app.Name+"-psnr-dB")
			}
		}
	}
}

// BenchmarkFig12PCAError regenerates Fig. 12: PCA eigenvalue learning error
// vs transformation error.
func BenchmarkFig12PCAError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCfg(), 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for _, ds := range r.Datasets {
				for _, p := range ds.Points {
					if p.LearningError > worst {
						worst = p.LearningError
					}
				}
			}
			b.ReportMetric(100*worst, "worst-eig-err-%")
		}
	}
}
