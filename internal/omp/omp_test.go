package omp

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// unitDictionary returns an M×L dictionary with unit-norm random columns.
func unitDictionary(r *rng.RNG, m, l int) *mat.Dense {
	d := mat.NewDense(m, l)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	d.NormalizeColumns()
	return d
}

// synthSparse builds a signal that is an exact k-sparse combination of
// dictionary atoms, returning the signal and the support.
func synthSparse(r *rng.RNG, d *mat.Dense, k int) ([]float64, map[int]float64) {
	support := map[int]float64{}
	idx := r.Subset(d.Cols, k)
	x := make([]float64, d.Cols)
	for _, j := range idx {
		c := 1 + r.Float64() // bounded away from zero
		if r.Float64() < 0.5 {
			c = -c
		}
		support[j] = c
		x[j] = c
	}
	return d.MulVec(x, nil), support
}

func reconstruct(d *mat.Dense, res Result) []float64 {
	y := make([]float64, d.Rows)
	for i, j := range res.Idx {
		c := res.Coef[i]
		for row := 0; row < d.Rows; row++ {
			y[row] += c * d.At(row, j)
		}
	}
	return y
}

func TestEncodeZeroSignal(t *testing.T) {
	r := rng.New(1)
	d := unitDictionary(r, 8, 16)
	res := Encode(d, make([]float64, 8), 0.1, 0)
	if res.Iters != 0 || len(res.Idx) != 0 || res.Resid2 != 0 {
		t.Fatalf("zero signal produced %+v", res)
	}
	bres := NewBatchCoder(d).Encode(make([]float64, 8), 0.1, 0, nil)
	if bres.Iters != 0 {
		t.Fatal("batch coder failed zero signal")
	}
}

func TestEncodeExactRecovery(t *testing.T) {
	// With an incoherent dictionary and a genuinely sparse signal, OMP with
	// tol→0 must recover the exact support and coefficients.
	r := rng.New(2)
	d := unitDictionary(r, 64, 96)
	for trial := 0; trial < 20; trial++ {
		sig, support := synthSparse(r, d, 4)
		res := Encode(d, sig, 1e-10, 0)
		if len(res.Idx) != len(support) {
			t.Fatalf("trial %d: support size %d, want %d", trial, len(res.Idx), len(support))
		}
		for i, j := range res.Idx {
			want, ok := support[j]
			if !ok {
				t.Fatalf("trial %d: spurious atom %d", trial, j)
			}
			if math.Abs(res.Coef[i]-want) > 1e-8 {
				t.Fatalf("trial %d: coef for atom %d = %v, want %v", trial, j, res.Coef[i], want)
			}
		}
	}
}

func TestEncodeToleranceRespected(t *testing.T) {
	r := rng.New(3)
	d := unitDictionary(r, 32, 64)
	sig := make([]float64, 32)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	norm := mat.Norm2(sig)
	for _, tol := range []float64{0.5, 0.2, 0.05} {
		res := Encode(d, sig, tol, 0)
		if math.Sqrt(res.Resid2) > tol*norm+1e-12 {
			t.Fatalf("tol %v violated: resid %v", tol, math.Sqrt(res.Resid2))
		}
		// Reported residual must match the actual reconstruction residual.
		rec := reconstruct(d, res)
		diff := make([]float64, len(sig))
		mat.SubVec(diff, sig, rec)
		if math.Abs(mat.Dot(diff, diff)-res.Resid2) > 1e-8 {
			t.Fatalf("tol %v: reported resid² %v, actual %v",
				tol, res.Resid2, mat.Dot(diff, diff))
		}
	}
}

func TestSmallerToleranceNeverFewerAtoms(t *testing.T) {
	r := rng.New(4)
	d := unitDictionary(r, 24, 48)
	sig := make([]float64, 24)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	prev := -1
	for _, tol := range []float64{0.5, 0.3, 0.1, 0.05, 0.01} {
		res := Encode(d, sig, tol, 0)
		if prev >= 0 && res.Iters < prev {
			t.Fatalf("tighter tol used fewer atoms: %d then %d", prev, res.Iters)
		}
		prev = res.Iters
	}
}

func TestMaxAtomsCap(t *testing.T) {
	r := rng.New(5)
	d := unitDictionary(r, 16, 32)
	sig := make([]float64, 16)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	res := Encode(d, sig, 0, 3)
	if res.Iters > 3 {
		t.Fatalf("cap violated: %d atoms", res.Iters)
	}
	bres := NewBatchCoder(d).Encode(sig, 0, 3, nil)
	if bres.Iters > 3 {
		t.Fatalf("batch cap violated: %d atoms", bres.Iters)
	}
}

func TestBatchMatchesReference(t *testing.T) {
	// Core property: Batch-OMP and reference OMP agree on supports,
	// reconstructions, and residuals for arbitrary signals. Raw
	// coefficients are NOT compared: a near-degenerate subdictionary makes
	// the coefficient solve ill-conditioned, so the two algorithms can
	// round them differently (up to ~7e-3 in an exhaustive uint16-seed
	// sweep) while the approximations D·coef stay within 1.4e-7. Seeds are
	// drawn from the repo rng rather than testing/quick's time-seeded
	// generator so every run checks the same inputs; 6834 and 32637 are
	// pinned — the worst-conditioned draws found by the sweep.
	seeds := []uint16{6834, 32637}
	sr := rng.New(0xba7c)
	for len(seeds) < 64 {
		seeds = append(seeds, uint16(sr.Intn(1<<16)))
	}
	for _, seed := range seeds {
		r := rng.New(uint64(seed))
		m := 8 + r.Intn(24)
		l := m + r.Intn(2*m)
		d := unitDictionary(r, m, l)
		sig := make([]float64, m)
		for i := range sig {
			sig[i] = r.NormFloat64()
		}
		tol := 0.02 + 0.3*r.Float64()
		ref := Encode(d, sig, tol, 0)
		bat := NewBatchCoder(d).Encode(sig, tol, 0, nil)
		if len(ref.Idx) != len(bat.Idx) {
			t.Fatalf("seed %d: support sizes differ: %d vs %d", seed, len(ref.Idx), len(bat.Idx))
		}
		recon := make([]float64, m)
		for i := range ref.Idx {
			if ref.Idx[i] != bat.Idx[i] {
				t.Fatalf("seed %d: atom %d differs: %d vs %d", seed, i, ref.Idx[i], bat.Idx[i])
			}
			for row := 0; row < m; row++ {
				recon[row] += (ref.Coef[i] - bat.Coef[i]) * d.At(row, ref.Idx[i])
			}
		}
		for row := 0; row < m; row++ {
			if math.Abs(recon[row]) > 1e-6 {
				t.Fatalf("seed %d: reconstructions differ by %g at row %d", seed, recon[row], row)
			}
		}
		if math.Abs(ref.Resid2-bat.Resid2) > 1e-6 {
			t.Fatalf("seed %d: residuals differ by %g", seed, ref.Resid2-bat.Resid2)
		}
	}
}

func TestBatchWorkspaceReuse(t *testing.T) {
	r := rng.New(6)
	d := unitDictionary(r, 16, 40)
	bc := NewBatchCoder(d)
	ws := &Workspace{}
	sigs := make([][]float64, 5)
	for k := range sigs {
		sigs[k] = make([]float64, 16)
		for i := range sigs[k] {
			sigs[k][i] = r.NormFloat64()
		}
	}
	for _, sig := range sigs {
		withWS := bc.Encode(sig, 0.1, 0, ws)
		fresh := bc.Encode(sig, 0.1, 0, nil)
		if len(withWS.Idx) != len(fresh.Idx) {
			t.Fatal("workspace reuse changed the result")
		}
		for i := range withWS.Idx {
			if withWS.Idx[i] != fresh.Idx[i] ||
				math.Abs(withWS.Coef[i]-fresh.Coef[i]) > 1e-10 {
				t.Fatal("workspace reuse changed coefficients")
			}
		}
	}
}

func TestEncodeColumnsMatchesPerColumn(t *testing.T) {
	r := rng.New(7)
	d := unitDictionary(r, 20, 50)
	a := mat.NewDense(20, 33)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	bc := NewBatchCoder(d)
	c, iters := bc.EncodeColumns(a, 0.1, 0, 3)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.Rows != 50 || c.Cols != 33 {
		t.Fatalf("C shape %dx%d", c.Rows, c.Cols)
	}
	totalIters := 0
	col := make([]float64, 20)
	for j := 0; j < a.Cols; j++ {
		a.Col(j, col)
		res := bc.Encode(col, 0.1, 0, nil)
		totalIters += res.Iters
		if c.ColNNZ(j) != len(res.Idx) {
			t.Fatalf("column %d nnz %d, want %d", j, c.ColNNZ(j), len(res.Idx))
		}
		for i, atom := range res.Idx {
			if math.Abs(c.At(atom, j)-res.Coef[i]) > 1e-12 {
				t.Fatalf("column %d coef mismatch", j)
			}
		}
	}
	if iters != totalIters {
		t.Fatalf("iteration count %d, want %d", iters, totalIters)
	}
}

func TestEncodeColumnsSatisfiesGlobalError(t *testing.T) {
	// Per-column tolerance implies the global Frobenius criterion
	// ‖A - DC‖_F ≤ ε‖A‖_F used in Equation 1.
	r := rng.New(8)
	d := unitDictionary(r, 24, 72)
	a := mat.NewDense(24, 40)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	const eps = 0.15
	bc := NewBatchCoder(d)
	c, _ := bc.EncodeColumns(a, eps, 0, 2)
	diff := mat.Mul(d, c.Dense())
	diff.Sub(a)
	// diff = DC - A; norm identical either sign.
	if diff.FrobNorm() > eps*a.FrobNorm()+1e-9 {
		t.Fatalf("global error %v exceeds %v", diff.FrobNorm()/a.FrobNorm(), eps)
	}
}

func TestFullDictionaryGivesUnitCodes(t *testing.T) {
	// When D == A (L == N), each column codes as a single unit atom
	// (the paper's extreme case: a_i = D e_i, α(N) = 1).
	r := rng.New(9)
	a := unitDictionary(r, 12, 10)
	bc := NewBatchCoder(a)
	col := make([]float64, 12)
	for j := 0; j < a.Cols; j++ {
		a.Col(j, col)
		res := bc.Encode(col, 1e-9, 0, nil)
		if res.Iters != 1 || res.Idx[0] != j {
			t.Fatalf("column %d coded with %v", j, res.Idx)
		}
		if math.Abs(res.Coef[0]-1) > 1e-9 {
			t.Fatalf("column %d coef %v, want 1", j, res.Coef[0])
		}
	}
}

func BenchmarkReferenceEncode(b *testing.B) {
	r := rng.New(1)
	d := unitDictionary(r, 64, 256)
	sig := make([]float64, 64)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(d, sig, 0.1, 0)
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	r := rng.New(1)
	d := unitDictionary(r, 64, 256)
	bc := NewBatchCoder(d)
	ws := &Workspace{}
	sig := make([]float64, 64)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Encode(sig, 0.1, 0, ws)
	}
}
