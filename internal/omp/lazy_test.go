package omp

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// withLazyGram lowers the precompute threshold so the lazy Gram-row path
// runs at test sizes, restoring it afterwards.
func withLazyGram(t *testing.T, limit, cacheFloats int, body func()) {
	t.Helper()
	oldLimit, oldCache := gramPrecomputeLimit, maxLazyCacheFloats
	gramPrecomputeLimit, maxLazyCacheFloats = limit, cacheFloats
	defer func() {
		gramPrecomputeLimit, maxLazyCacheFloats = oldLimit, oldCache
	}()
	body()
}

func TestLazyGramMatchesPrecomputed(t *testing.T) {
	r := rng.New(51)
	d := unitDictionary(r, 24, 64)
	sigs := make([][]float64, 20)
	for k := range sigs {
		sigs[k] = make([]float64, 24)
		for i := range sigs[k] {
			sigs[k][i] = r.NormFloat64()
		}
	}

	eager := NewBatchCoder(d)
	if eager.g == nil {
		t.Fatal("expected precomputed Gram at this size")
	}
	var lazy *BatchCoder
	withLazyGram(t, 8, 1<<20, func() {
		lazy = NewBatchCoder(d)
	})
	if lazy.g != nil {
		t.Fatal("expected lazy Gram")
	}

	for k, sig := range sigs {
		a := eager.Encode(sig, 0.1, 0, nil)
		b := lazy.Encode(sig, 0.1, 0, nil)
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("signal %d: support sizes differ", k)
		}
		for i := range a.Idx {
			if a.Idx[i] != b.Idx[i] || math.Abs(a.Coef[i]-b.Coef[i]) > 1e-10 {
				t.Fatalf("signal %d: codes differ at %d", k, i)
			}
		}
	}
	if lazy.cached == 0 {
		t.Fatal("lazy path cached nothing")
	}
}

func TestLazyGramCacheBudget(t *testing.T) {
	r := rng.New(52)
	d := unitDictionary(r, 16, 48)
	a := mat.NewDense(16, 30)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	withLazyGram(t, 8, 100, func() { // budget: ~2 rows of 48 floats
		lazy := NewBatchCoder(d)
		c, _ := lazy.EncodeColumns(a, 0.05, 0, 2)
		if err := c.Check(); err != nil {
			t.Fatal(err)
		}
		if lazy.cached > 100 {
			t.Fatalf("cache exceeded budget: %d floats", lazy.cached)
		}
		// Results over budget must still satisfy the tolerance.
		rec := mat.Mul(d, c.Dense())
		rec.Sub(a)
		if rec.FrobNorm() > 0.05*a.FrobNorm()+1e-9 {
			t.Fatal("budget-constrained coding broke the error criterion")
		}
	})
}

func TestLazyGramConcurrentEncode(t *testing.T) {
	// Race-detector coverage: parallel workers sharing one lazy coder.
	r := rng.New(53)
	d := unitDictionary(r, 20, 64)
	var lazy *BatchCoder
	withLazyGram(t, 8, 1<<20, func() { lazy = NewBatchCoder(d) })
	a := mat.NewDense(20, 120)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	c1, _ := lazy.EncodeColumns(a, 0.1, 0, 4)
	c2, _ := NewBatchCoder(d).EncodeColumns(a, 0.1, 0, 1)
	if c1.NNZ() != c2.NNZ() {
		t.Fatalf("lazy parallel nnz %d, eager serial %d", c1.NNZ(), c2.NNZ())
	}
	for i := range c1.Val {
		if c1.RowIdx[i] != c2.RowIdx[i] || math.Abs(c1.Val[i]-c2.Val[i]) > 1e-10 {
			t.Fatal("lazy parallel coding differs from eager serial")
		}
	}
}
