package omp

import (
	"math"
	"sync"

	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// gramPrecomputeLimit is the dictionary size above which the full L×L Gram
// matrix (O(L²) memory) is replaced by lazily computed, cached rows. With
// over-complete dictionaries L can approach N, where a dense Gram matrix
// would need O(N²) storage — the exact blow-up ExtDict exists to avoid.
// It is a variable only so tests can exercise the lazy path cheaply.
var gramPrecomputeLimit = 2048

// maxLazyCacheFloats bounds the lazy row cache (~256 MB of float64s). Rows
// beyond the budget are recomputed on demand instead of cached. A variable
// for the same testing reason.
var maxLazyCacheFloats = 1 << 25

// BatchCoder codes many signals against one fixed dictionary using Batch-OMP
// with progressive Cholesky updates (Rubinstein, Zibulevsky & Elad 2008).
//
// For moderate dictionaries the setup precomputes the Gram matrix G = DᵀD
// (O(M·L²)); for very large ones Gram rows are computed on first use and
// cached under a memory budget. Each signal then costs O(M·L) for the
// initial correlations plus O(k·L + k³) for a k-sparse code, and never
// touches the residual vector: its norm is tracked by the recurrence
// ‖r‖² = ‖a‖² - γᵀ(Dᵀa)_φ.
type BatchCoder struct {
	D *mat.Dense // M×L dictionary

	g *mat.Dense // L×L Gram matrix when L ≤ gramPrecomputeLimit, else nil

	mu       sync.Mutex
	lazyRows [][]float64 // cached Gram rows when g == nil
	cached   int         // floats currently cached
}

// NewBatchCoder prepares the Gram structures for d.
func NewBatchCoder(d *mat.Dense) *BatchCoder {
	bc := &BatchCoder{D: d}
	if d.Cols <= gramPrecomputeLimit {
		bc.g = mat.ParATA(d)
	} else {
		bc.lazyRows = make([][]float64, d.Cols)
	}
	return bc
}

// gramRow returns row j of DᵀD. The returned slice is shared and read-only.
func (bc *BatchCoder) gramRow(j int) []float64 {
	if bc.g != nil {
		return bc.g.Row(j)
	}
	bc.mu.Lock()
	if r := bc.lazyRows[j]; r != nil {
		bc.mu.Unlock()
		return r
	}
	bc.mu.Unlock()

	// Compute outside the lock; concurrent duplicate computation is
	// harmless (identical results) and rare.
	col := bc.D.Col(j, nil)
	row := bc.D.MulVecT(col, nil)

	bc.mu.Lock()
	if bc.lazyRows[j] == nil && bc.cached+len(row) <= maxLazyCacheFloats {
		bc.lazyRows[j] = row
		bc.cached += len(row)
	}
	bc.mu.Unlock()
	return row
}

// Workspace holds per-goroutine scratch so concurrent Encode calls do not
// allocate per signal. A zero Workspace is ready to use.
type Workspace struct {
	alpha0   []float64 // Dᵀa, fixed per signal
	alpha    []float64 // Dᵀr, updated per iteration
	gammaRHS []float64 // (Dᵀa)_φ in selection order
	gamma    []float64 // current coefficients
	cross    []float64 // Gram cross-correlations of the newest atom
	selected []bool
	rows     [][]float64 // Gram rows of the selected atoms, selection order
	chol     *mat.Cholesky
}

func (w *Workspace) reset(l, maxAtoms int) {
	if cap(w.alpha0) < l {
		w.alpha0 = make([]float64, l)
		w.alpha = make([]float64, l)
		w.selected = make([]bool, l)
	}
	w.alpha0 = w.alpha0[:l]
	w.alpha = w.alpha[:l]
	w.selected = w.selected[:l]
	for i := range w.selected {
		w.selected[i] = false
	}
	// The per-atom buffers are capped by the support size; sizing them here
	// keeps the selection loop allocation-free (hotalloc).
	if cap(w.gammaRHS) < maxAtoms {
		w.gammaRHS = make([]float64, 0, maxAtoms)
		w.gamma = make([]float64, 0, maxAtoms)
		w.cross = make([]float64, maxAtoms)
		w.rows = make([][]float64, 0, maxAtoms)
	}
	w.gammaRHS = w.gammaRHS[:0]
	w.gamma = w.gamma[:0]
	w.rows = w.rows[:0]
	if w.chol == nil {
		w.chol = mat.NewCholesky(maxAtoms)
	}
	w.chol.Reset()
}

// Encode codes signal a with relative tolerance tol and support cap
// maxAtoms (0 = min(M, L)). ws may be nil, in which case a temporary
// workspace is used.
func (bc *BatchCoder) Encode(a []float64, tol float64, maxAtoms int, ws *Workspace) Result {
	d := bc.D
	if len(a) != d.Rows {
		panic("omp: signal length does not match dictionary rows")
	}
	m, l := d.Rows, d.Cols
	if maxAtoms <= 0 || maxAtoms > min(m, l) {
		maxAtoms = min(m, l)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.reset(l, maxAtoms)

	norm2a := mat.Dot(a, a)
	res := Result{}
	if norm2a == 0 {
		return res
	}
	target2 := tol * tol * norm2a
	// The ‖r‖² recurrence subtracts sums that the unrolled kernels
	// accumulate in different orders (norm2a, α⁰, and the Gram diagonal
	// reassociate differently), so it bottoms out at O(M·u)·‖a‖² instead of
	// an exact 0. A tolerance below that rounding floor cannot be certified;
	// clamp the stop threshold so the full-dictionary identity case (paper
	// §VII: a_i = D·e_i ⇒ one unit atom) still terminates after one atom.
	if floor := 8 * 0x1p-52 * float64(m) * norm2a; target2 < floor {
		target2 = floor
	}

	// α⁰ = Dᵀa; α starts equal to α⁰ because r₀ = a.
	d.MulVecT(a, ws.alpha0)
	copy(ws.alpha, ws.alpha0)
	res.Idx = make([]int, 0, maxAtoms)

	res.Resid2 = norm2a
	for len(res.Idx) < maxAtoms && res.Resid2 > target2 {
		// Select the atom with the largest |Dᵀr| among unselected ones.
		best, bestAbs := -1, 0.0
		for j := 0; j < l; j++ {
			if ws.selected[j] {
				continue
			}
			if ca := math.Abs(ws.alpha[j]); ca > bestAbs {
				best, bestAbs = j, ca
			}
		}
		if best < 0 || bestAbs == 0 {
			break
		}

		// Grow the Cholesky factor of G_φφ using only Gram entries.
		gRow := bc.gramRow(best)
		k := len(res.Idx)
		cross := ws.cross[:k]
		for i, jj := range res.Idx {
			cross[i] = gRow[jj]
		}
		if err := ws.chol.Append(cross, gRow[best]); err != nil {
			break
		}
		ws.selected[best] = true
		res.Idx = res.Idx[:k+1]
		res.Idx[k] = best
		ws.rows = ws.rows[:k+1]
		ws.rows[k] = gRow
		ws.gammaRHS = ws.gammaRHS[:k+1]
		ws.gammaRHS[k] = ws.alpha0[best]

		// γ = (G_φφ)⁻¹ (α⁰)_φ.
		ws.gamma = ws.gamma[:k+1]
		copy(ws.gamma, ws.gammaRHS)
		ws.chol.SolveInPlace(ws.gamma)

		// α = α⁰ - G[:, φ]·γ  (residual correlations without the residual;
		// G is symmetric so the cached rows serve as columns). The unrolled
		// axpy is element-wise, and -= gi*gj[t] ≡ += (-gi)*gj[t] in IEEE
		// arithmetic, so this matches the scalar loop bit for bit.
		copy(ws.alpha, ws.alpha0)
		for i := range res.Idx {
			gi := ws.gamma[i]
			if gi == 0 {
				continue
			}
			mat.Axpy(-gi, ws.rows[i][:l], ws.alpha)
		}

		// ‖r‖² = ‖a‖² - γᵀ(α⁰)_φ.
		res.Resid2 = norm2a - mat.Dot(ws.gamma, ws.gammaRHS)
		if res.Resid2 < 0 {
			res.Resid2 = 0 // rounding can push it slightly negative
		}
	}
	res.Coef = mat.CopyVec(ws.gamma[:len(res.Idx)])
	res.Iters = len(res.Idx)
	return res
}

// EncodePanel codes an ad-hoc panel of signals — each cols[i] a length-M
// column — in parallel across `workers` chunks of the shared mat worker
// pool, returning one Result per column in input order. It is the serving
// layer's batch entry: the request batcher coalesces independent client
// signals into one panel so the precomputed Gram structures amortize across
// users, without copying the signals into a Dense first. Columns are coded
// independently (each gets a fresh-reset workspace), so the results are
// bit-identical to coding the same columns one at a time, at any worker
// count.
func (bc *BatchCoder) EncodePanel(cols [][]float64, tol float64, maxAtoms, workers int) []Result {
	out := make([]Result, len(cols))
	if len(cols) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	mat.ParallelChunks(len(cols), workers, func(_, lo, hi int) {
		ws := &Workspace{}
		for j := lo; j < hi; j++ {
			out[j] = bc.Encode(cols[j], tol, maxAtoms, ws)
		}
	})
	return out
}

// EncodeColumns codes every column of a (M×N) in parallel across `workers`
// chunks of the shared mat worker pool and assembles the coefficient matrix
// C (L×N) such that A ≈ D·C. It returns C and the total number of OMP
// iterations performed (used by the preprocessing-overhead accounting).
// Columns are coded independently, so the result does not depend on the
// worker count.
func (bc *BatchCoder) EncodeColumns(a *mat.Dense, tol float64, maxAtoms, workers int) (*sparse.CSC, int) {
	n := a.Cols
	idx := make([][]int, n)
	val := make([][]float64, n)
	iters := make([]int, n)
	if workers < 1 {
		workers = 1
	}

	mat.ParallelChunks(n, workers, func(_, lo, hi int) {
		ws := &Workspace{}
		col := make([]float64, a.Rows)
		for j := lo; j < hi; j++ {
			a.Col(j, col)
			r := bc.Encode(col, tol, maxAtoms, ws)
			idx[j], val[j], iters[j] = r.Idx, r.Coef, r.Iters
		}
	})

	total := 0
	for _, it := range iters {
		total += it
	}
	return sparse.FromColumns(bc.D.Cols, idx, val), total
}
