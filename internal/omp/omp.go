// Package omp implements Orthogonal Matching Pursuit, the greedy sparse
// coding routine at the core of the ExD projection (Algorithm 1, step 3).
//
// Given a dictionary D (M×L, unit-norm columns) and a signal a, OMP greedily
// selects the atom most correlated with the current residual, re-solves the
// least-squares problem on the selected set, and repeats until the residual
// satisfies ‖r‖ ≤ tol·‖a‖ or a sparsity cap is hit.
//
// Two implementations are provided:
//
//   - Encode: the reference implementation that maintains the explicit
//     residual (matching Algorithm 1 line by line).
//   - BatchCoder: Batch-OMP with Cholesky-factor updates (the paper cites
//     Rubinstein et al. [32] and states the implementation uses it, §V-D).
//     It precomputes the dictionary Gram matrix G = DᵀD once and then codes
//     each column without ever forming the residual, which is the right
//     trade when many signals share one dictionary — exactly ExD's shape.
//
// Both produce identical supports and coefficients (up to floating-point
// noise); a property test in this package checks that.
package omp

import (
	"math"

	"extdict/internal/mat"
)

// Result is the sparse code of one signal.
type Result struct {
	// Idx holds the selected atom indices in selection order.
	Idx []int
	// Coef holds the least-squares coefficients aligned with Idx.
	Coef []float64
	// Resid2 is the squared norm of the final residual a - D·coef.
	Resid2 float64
	// Iters is the number of atoms selected (== len(Idx)).
	Iters int
}

// Encode runs reference OMP: it maintains an explicit residual vector and a
// growing Cholesky factorization of the active Gram matrix.
//
// tol is the relative tolerance: iteration stops once ‖r‖ ≤ tol·‖a‖.
// maxAtoms caps the support size; pass 0 for the default min(M, L).
// A zero signal yields an empty code.
func Encode(d *mat.Dense, a []float64, tol float64, maxAtoms int) Result {
	if len(a) != d.Rows {
		panic("omp: signal length does not match dictionary rows")
	}
	m, l := d.Rows, d.Cols
	if maxAtoms <= 0 || maxAtoms > min(m, l) {
		maxAtoms = min(m, l)
	}
	norm2a := mat.Dot(a, a)
	res := Result{}
	if norm2a == 0 {
		return res
	}
	target2 := tol * tol * norm2a

	r := mat.CopyVec(a)
	chol := mat.NewCholesky(maxAtoms)
	selected := make(map[int]bool, maxAtoms)
	// Cross-correlations of selected atoms with all atoms are needed to
	// grow the Cholesky factor; recompute per step (reference code favors
	// clarity; BatchCoder is the fast path). All buffers are sized here so
	// the selection loop itself stays allocation-free.
	atomCol := make([]float64, m)
	corr := make([]float64, l)
	crossBuf := make([]float64, maxAtoms)
	rhs := make([]float64, 0, maxAtoms)
	res.Idx = make([]int, 0, maxAtoms)

	res.Resid2 = norm2a
	for len(res.Idx) < maxAtoms && res.Resid2 > target2 {
		// Step 3.1: k = argmax_j |d_j · r| over unselected atoms.
		d.MulVecT(r, corr)
		best, bestAbs := -1, 0.0
		for j := 0; j < l; j++ {
			if selected[j] {
				continue
			}
			if ca := math.Abs(corr[j]); ca > bestAbs {
				best, bestAbs = j, ca
			}
		}
		if best < 0 || bestAbs == 0 {
			break // residual orthogonal to every remaining atom
		}

		// Grow the Cholesky factor of D_φᵀD_φ with the new atom.
		d.Col(best, atomCol)
		k := len(res.Idx)
		cross := crossBuf[:k]
		for i, jj := range res.Idx {
			var s float64
			for row := 0; row < m; row++ {
				s += d.At(row, jj) * atomCol[row]
			}
			cross[i] = s
		}
		diag := mat.Dot(atomCol, atomCol)
		if err := chol.Append(cross, diag); err != nil {
			break // numerically dependent atom: cannot improve
		}
		selected[best] = true
		res.Idx = res.Idx[:k+1]
		res.Idx[k] = best
		rhs = rhs[:k+1]
		rhs[k] = mat.Dot(atomCol, a)

		// Step 3.3: y = D_φ⁺ a via the normal equations.
		res.Coef = mat.CopyVec(rhs)
		chol.SolveInPlace(res.Coef)

		// Step 3.4: r = a - D_φ y.
		copy(r, a)
		for i, jj := range res.Idx {
			ci := res.Coef[i]
			for row := 0; row < m; row++ {
				r[row] -= ci * d.At(row, jj)
			}
		}
		res.Resid2 = mat.Dot(r, r)
	}
	res.Iters = len(res.Idx)
	return res
}
