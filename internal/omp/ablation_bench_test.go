package omp

// Ablation: Batch-OMP with progressive Cholesky updates versus the
// reference implementation that recomputes residuals explicitly. The paper
// (§V-D) relies on Batch-OMP to make preprocessing linear-time; this
// benchmark quantifies the win when many signals share one dictionary —
// ExD's exact shape.

import (
	"fmt"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

func BenchmarkAblationOMPVariants(b *testing.B) {
	r := rng.New(1)
	for _, shape := range []struct{ m, l, n int }{
		{64, 128, 256},
		{128, 256, 256},
		{256, 512, 256},
	} {
		d := unitDictionary(r, shape.m, shape.l)
		a := mat.NewDense(shape.m, shape.n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		col := make([]float64, shape.m)

		b.Run(fmt.Sprintf("reference/M=%d_L=%d", shape.m, shape.l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Col(j, col)
					Encode(d, col, 0.1, 0)
				}
			}
		})
		b.Run(fmt.Sprintf("batch/M=%d_L=%d", shape.m, shape.l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc := NewBatchCoder(d) // Gram setup charged, as in real use
				ws := &Workspace{}
				for j := 0; j < a.Cols; j++ {
					a.Col(j, col)
					bc.Encode(col, 0.1, 0, ws)
				}
			}
		})
	}
}
