package dataset

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    UnionParams
		ok   bool
	}{
		{"good", UnionParams{M: 10, N: 20, Ks: []int{2, 3}}, true},
		{"zero M", UnionParams{M: 0, N: 20, Ks: []int{2}}, false},
		{"no subspaces", UnionParams{M: 10, N: 20}, false},
		{"subspace too big", UnionParams{M: 4, N: 20, Ks: []int{5}}, false},
		{"bad weights", UnionParams{M: 10, N: 20, Ks: []int{2}, Weights: []float64{1, 2}}, false},
		{"bad outliers", UnionParams{M: 10, N: 20, Ks: []int{2}, OutlierFrac: 1.5}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, ok=%v", c.name, err, c.ok)
		}
	}
}

func TestGenerateUnionShape(t *testing.T) {
	p := UnionParams{M: 20, N: 100, Ks: []int{3, 4}}
	u, err := GenerateUnion(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if u.A.Rows != 20 || u.A.Cols != 100 {
		t.Fatalf("shape %dx%d", u.A.Rows, u.A.Cols)
	}
	if len(u.Membership) != 100 || len(u.Bases) != 2 {
		t.Fatal("metadata wrong size")
	}
}

func TestGenerateUnionColumnsNormalized(t *testing.T) {
	p := UnionParams{M: 16, N: 50, Ks: []int{3}, NoiseSigma: 0.01}
	u, err := GenerateUnion(p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < u.A.Cols; j++ {
		n := mat.Norm2(u.A.Col(j, nil))
		if math.Abs(n-1) > 1e-10 {
			t.Fatalf("column %d has norm %v", j, n)
		}
	}
}

func TestGenerateUnionDeterministic(t *testing.T) {
	p := UnionParams{M: 12, N: 30, Ks: []int{2, 2}, NoiseSigma: 0.05, OutlierFrac: 0.1}
	u1, _ := GenerateUnion(p, rng.New(77))
	u2, _ := GenerateUnion(p, rng.New(77))
	if !mat.Equal(u1.A, u2.A, 0) {
		t.Fatal("same seed produced different data")
	}
}

func TestGenerateUnionMembershipConsistent(t *testing.T) {
	// Noise-free columns must lie exactly in their assigned subspace:
	// the residual after projecting onto the basis is ~0.
	p := UnionParams{M: 24, N: 60, Ks: []int{3, 5}}
	u, err := GenerateUnion(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, p.M)
	for j := 0; j < p.N; j++ {
		s := u.Membership[j]
		if s < 0 {
			continue
		}
		u.A.Col(j, col)
		// residual = col - B·(Bᵀ·col); B orthonormal.
		b := u.Bases[s]
		proj := b.MulVec(b.MulVecT(col, nil), nil)
		res := make([]float64, p.M)
		mat.SubVec(res, col, proj)
		if mat.Norm2(res) > 1e-8 {
			t.Fatalf("column %d leaves its subspace by %v", j, mat.Norm2(res))
		}
	}
}

func TestGenerateUnionOutliers(t *testing.T) {
	p := UnionParams{M: 10, N: 400, Ks: []int{2}, OutlierFrac: 0.25}
	u, err := GenerateUnion(p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for _, m := range u.Membership {
		if m == -1 {
			outliers++
		}
	}
	frac := float64(outliers) / float64(p.N)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("outlier fraction %v far from 0.25", frac)
	}
}

func TestGenerateUnionWeights(t *testing.T) {
	p := UnionParams{M: 10, N: 1000, Ks: []int{2, 2}, Weights: []float64{9, 1}}
	u, err := GenerateUnion(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, m := range u.Membership {
		if m == 0 {
			count0++
		}
	}
	if count0 < 800 || count0 > 980 {
		t.Fatalf("subspace 0 population %d, want ~900", count0)
	}
}

func TestOrthonormalBases(t *testing.T) {
	r := rng.New(6)
	b := randomOrthonormal(r, 15, 6)
	g := mat.ATA(b)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-10 {
				t.Fatalf("BᵀB(%d,%d) = %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestSubset(t *testing.T) {
	p := UnionParams{M: 8, N: 40, Ks: []int{2}}
	u, _ := GenerateUnion(p, rng.New(7))
	cols := []int{0, 5, 39}
	s := u.Subset(cols)
	if s.A.Cols != 3 || s.Params.N != 3 {
		t.Fatal("subset shape wrong")
	}
	for i, c := range cols {
		if s.Membership[i] != u.Membership[c] {
			t.Fatal("membership not carried over")
		}
		for row := 0; row < p.M; row++ {
			if s.A.At(row, i) != u.A.At(row, c) {
				t.Fatal("column data not carried over")
			}
		}
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) != 3 {
		t.Fatalf("expected 3 presets, got %v", names)
	}
	for _, n := range names {
		p, err := Preset(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", n, err)
		}
		if PresetDescription(n) == "" {
			t.Fatalf("preset %s lacks a description", n)
		}
	}
	if _, err := Preset("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	small, _ := Preset("salinas", 0.1)
	full, _ := Preset("salinas", 1)
	if small.N >= full.N {
		t.Fatal("scaling did not shrink N")
	}
}

func TestGenerateLightFieldShape(t *testing.T) {
	p := LightFieldParams{Grid: 3, Patch: 4, NumPatches: 20, NumSources: 5, SceneSize: 64}
	lf, err := GenerateLightField(p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if lf.A.Rows != 4*4*3*3 || lf.A.Cols != 20 {
		t.Fatalf("shape %dx%d", lf.A.Rows, lf.A.Cols)
	}
}

func TestGenerateLightFieldRejectsBadParams(t *testing.T) {
	if _, err := GenerateLightField(LightFieldParams{}, rng.New(1)); err == nil {
		t.Fatal("accepted zero params")
	}
	p := LightFieldParams{Grid: 3, Patch: 16, NumPatches: 5, NumSources: 2, SceneSize: 20}
	if _, err := GenerateLightField(p, rng.New(1)); err == nil {
		t.Fatal("accepted tiny scene")
	}
}

func TestCameraSubsetRows(t *testing.T) {
	p := LightFieldParams{Grid: 5, Patch: 2, NumPatches: 4, NumSources: 3, SceneSize: 64}
	lf, err := GenerateLightField(p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := lf.CameraSubsetRows(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*3*2*2 {
		t.Fatalf("subset has %d rows", len(rows))
	}
	// Full subset must be the identity selection.
	all, _ := lf.CameraSubsetRows(5)
	if len(all) != lf.A.Rows {
		t.Fatal("full subset incomplete")
	}
	for i, r := range all {
		if r != i {
			t.Fatal("full subset not identity")
		}
	}
	if _, err := lf.CameraSubsetRows(6); err == nil {
		t.Fatal("oversized subset accepted")
	}
}

func TestLightFieldViewCoherence(t *testing.T) {
	// Adjacent camera views of the same patch must be highly correlated —
	// that is the structure the super-resolution experiment relies on.
	p := LightFieldParams{Grid: 3, Patch: 8, NumPatches: 30, NumSources: 8, SceneSize: 128}
	lf, err := GenerateLightField(p, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	per := p.Patch * p.Patch
	col := make([]float64, lf.A.Rows)
	for j := 0; j < 10; j++ {
		lf.A.Col(j, col)
		v0 := col[0:per]       // camera (0,0)
		v1 := col[per : 2*per] // camera (0,1)
		c := mat.Dot(v0, v1) / (mat.Norm2(v0)*mat.Norm2(v1) + 1e-12)
		if c < 0.5 {
			t.Fatalf("patch %d views nearly uncorrelated: %v", j, c)
		}
	}
}

func TestAddNoiseSNR(t *testing.T) {
	r := rng.New(11)
	v := make([]float64, 5000)
	for i := range v {
		v[i] = r.NormFloat64() * 3
	}
	noisy := AddNoise(v, 20, r)
	diff := make([]float64, len(v))
	mat.SubVec(diff, noisy, v)
	snr := 10 * math.Log10(mat.Dot(v, v)/mat.Dot(diff, diff))
	if math.Abs(snr-20) > 1 {
		t.Fatalf("achieved SNR %v dB, want ~20", snr)
	}
}
