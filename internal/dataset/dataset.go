// Package dataset generates the synthetic datasets used throughout the
// reproduction. The paper evaluates on Light Field, Salinas hyperspectral,
// and MD Anderson Cancer Cell images — all either proprietary or too large
// for a laptop-scale run. Section II-B identifies the one property the
// framework relies on: these dense datasets live on a union of low-rank
// subspaces. This package generates data with exactly that structure, with
// per-dataset presets matching each dataset's shape statistics (ambient
// dimension, number and dimension of subspaces, noise, outliers), scaled so
// experiments complete quickly.
package dataset

import (
	"fmt"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// UnionParams describes a union-of-low-rank-subspaces dataset.
type UnionParams struct {
	M  int   // ambient dimension (rows of A)
	N  int   // number of signals (columns of A)
	Ks []int // dimension of each subspace; len(Ks) = number of subspaces

	// Weights gives relative population of each subspace; nil = uniform.
	Weights []float64

	// NoiseSigma adds i.i.d. Gaussian noise of this stddev to every entry
	// before column normalization (0 = exact union of subspaces).
	NoiseSigma float64

	// OutlierFrac replaces this fraction of columns with unstructured
	// Gaussian signals (the "few outlier columns" of §V-B).
	OutlierFrac float64
}

// Validate returns a descriptive error when the parameters are unusable.
func (p UnionParams) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("dataset: M=%d, N=%d must be positive", p.M, p.N)
	}
	if len(p.Ks) == 0 {
		return fmt.Errorf("dataset: at least one subspace required")
	}
	for i, k := range p.Ks {
		if k <= 0 || k > p.M {
			return fmt.Errorf("dataset: subspace %d has dimension %d outside (0, %d]", i, k, p.M)
		}
	}
	if p.Weights != nil && len(p.Weights) != len(p.Ks) {
		return fmt.Errorf("dataset: %d weights for %d subspaces", len(p.Weights), len(p.Ks))
	}
	if p.OutlierFrac < 0 || p.OutlierFrac > 1 {
		return fmt.Errorf("dataset: OutlierFrac %v outside [0,1]", p.OutlierFrac)
	}
	return nil
}

// Union describes a generated dataset: the data matrix plus ground truth.
type Union struct {
	A *mat.Dense // M×N column-normalized data matrix

	// Membership[j] is the subspace index of column j, or -1 for outliers.
	Membership []int

	// Bases[s] is the M×Ks[s] orthonormal basis of subspace s.
	Bases []*mat.Dense

	Params UnionParams
}

// GenerateUnion draws a dataset from p using r. Columns are normalized to
// unit Euclidean norm, matching Algorithm 1's "normalized data matrix"
// precondition.
func GenerateUnion(p UnionParams, r *rng.RNG) (*Union, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ns := len(p.Ks)
	bases := make([]*mat.Dense, ns)
	for s := 0; s < ns; s++ {
		bases[s] = randomOrthonormal(r, p.M, p.Ks[s])
	}

	// Cumulative membership weights.
	cum := make([]float64, ns)
	total := 0.0
	for s := 0; s < ns; s++ {
		w := 1.0
		if p.Weights != nil {
			w = p.Weights[s]
		}
		total += w
		cum[s] = total
	}

	a := mat.NewDense(p.M, p.N)
	membership := make([]int, p.N)
	col := make([]float64, p.M)
	for j := 0; j < p.N; j++ {
		if p.OutlierFrac > 0 && r.Float64() < p.OutlierFrac {
			membership[j] = -1
			for i := range col {
				col[i] = r.NormFloat64()
			}
		} else {
			u := r.Float64() * total
			s := 0
			for s < ns-1 && u > cum[s] {
				s++
			}
			membership[j] = s
			b := bases[s]
			mat.Zero(col)
			for k := 0; k < b.Cols; k++ {
				c := r.NormFloat64()
				for i := 0; i < p.M; i++ {
					col[i] += c * b.At(i, k)
				}
			}
		}
		if p.NoiseSigma > 0 {
			for i := range col {
				col[i] += p.NoiseSigma * r.NormFloat64()
			}
		}
		a.SetCol(j, col)
	}
	a.NormalizeColumns()
	return &Union{A: a, Membership: membership, Bases: bases, Params: p}, nil
}

// randomOrthonormal returns an M×K matrix with orthonormal columns via
// modified Gram-Schmidt on Gaussian vectors.
func randomOrthonormal(r *rng.RNG, m, k int) *mat.Dense {
	b := mat.NewDense(m, k)
	col := make([]float64, m)
	for j := 0; j < k; j++ {
		for {
			for i := range col {
				col[i] = r.NormFloat64()
			}
			// Orthogonalize against previous columns (twice for stability).
			for pass := 0; pass < 2; pass++ {
				for q := 0; q < j; q++ {
					var dot float64
					for i := 0; i < m; i++ {
						dot += col[i] * b.At(i, q)
					}
					for i := 0; i < m; i++ {
						col[i] -= dot * b.At(i, q)
					}
				}
			}
			n := mat.Norm2(col)
			if n > 1e-8 {
				mat.ScaleVec(1/n, col)
				break
			}
		}
		b.SetCol(j, col)
	}
	return b
}

// Subset returns the sub-dataset of the given columns (fresh storage), used
// by the §VII subset-based tuning experiments.
func (u *Union) Subset(cols []int) *Union {
	sub := &Union{
		A:          u.A.ColSlice(cols),
		Membership: make([]int, len(cols)),
		Bases:      u.Bases,
		Params:     u.Params,
	}
	sub.Params.N = len(cols)
	for i, c := range cols {
		sub.Membership[i] = u.Membership[c]
	}
	return sub
}
