package dataset

import (
	"fmt"
	"math"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// LightFieldParams configures the structured light-field generator used by
// the denoising and super-resolution applications (§VIII-A).
//
// A plenoptic camera with Grid×Grid viewpoints images a synthetic scene; an
// 8×8 (Patch×Patch) pixel patch is cut at the same location in all views and
// stacked into one column of Patch²·Grid² entries. Columns therefore carry
// strong cross-view structure (each scene point shifts by a per-depth
// disparity between views), which is exactly the low-dimensional geometry
// the paper exploits: patches of a smooth scene live near a union of
// low-rank subspaces.
type LightFieldParams struct {
	Grid       int // cameras per side of the array (paper: 5)
	Patch      int // pixels per patch side (paper: 8)
	NumPatches int // columns of the data matrix
	NumSources int // smooth scene components (frequencies) to superpose
	SceneSize  int // virtual scene side length in pixels
}

// DefaultLightFieldParams mirrors the paper's 5×5-camera, 8×8-patch setup
// at laptop scale.
func DefaultLightFieldParams() LightFieldParams {
	return LightFieldParams{Grid: 5, Patch: 8, NumPatches: 2048, NumSources: 24, SceneSize: 256}
}

// LightField is a generated plenoptic dataset.
type LightField struct {
	Params LightFieldParams

	// A is the Patch²·Grid² × NumPatches data matrix. Column layout: for
	// camera (s, t) in row-major camera order, the Patch² pixels of the
	// patch in row-major pixel order. Columns are NOT normalized: image
	// reconstruction needs the raw intensities.
	A *mat.Dense
}

// sceneSource is one smooth component of the synthetic scene: a windowed
// cosine with a depth that determines its inter-view disparity.
type sceneSource struct {
	wx, wy, phase float64
	amp           float64
	disparity     float64 // pixels of shift per camera step
}

// GenerateLightField renders a synthetic light field and cuts patch columns.
func GenerateLightField(p LightFieldParams, r *rng.RNG) (*LightField, error) {
	if p.Grid <= 0 || p.Patch <= 0 || p.NumPatches <= 0 || p.NumSources <= 0 {
		return nil, fmt.Errorf("dataset: invalid light field params %+v", p)
	}
	if p.SceneSize < 4*p.Patch {
		return nil, fmt.Errorf("dataset: SceneSize %d too small for patch %d", p.SceneSize, p.Patch)
	}
	sources := make([]sceneSource, p.NumSources)
	for i := range sources {
		// Low spatial frequencies: natural-image-like smoothness.
		sources[i] = sceneSource{
			wx:        (0.02 + 0.16*r.Float64()) * math.Pi,
			wy:        (0.02 + 0.16*r.Float64()) * math.Pi,
			phase:     2 * math.Pi * r.Float64(),
			amp:       0.3 + r.Float64(),
			disparity: 1.5 * r.Float64(), // depth layer
		}
	}

	rows := p.Patch * p.Patch * p.Grid * p.Grid
	a := mat.NewDense(rows, p.NumPatches)
	col := make([]float64, rows)
	maxPos := p.SceneSize - p.Patch - int(3*float64(p.Grid)) - 1
	if maxPos < 1 {
		maxPos = 1
	}
	for j := 0; j < p.NumPatches; j++ {
		px := r.Intn(maxPos)
		py := r.Intn(maxPos)
		idx := 0
		for s := 0; s < p.Grid; s++ {
			for t := 0; t < p.Grid; t++ {
				for y := 0; y < p.Patch; y++ {
					for x := 0; x < p.Patch; x++ {
						col[idx] = sampleScene(sources, float64(px+x), float64(py+y), s, t)
						idx++
					}
				}
			}
		}
		a.SetCol(j, col)
	}
	return &LightField{Params: p, A: a}, nil
}

// sampleScene evaluates the scene for camera (s, t) at scene position (x,
// y): each source shifts by its disparity times the camera offset.
func sampleScene(sources []sceneSource, x, y float64, s, t int) float64 {
	var v float64
	for _, src := range sources {
		sx := x + src.disparity*float64(s)
		sy := y + src.disparity*float64(t)
		v += src.amp * math.Cos(src.wx*sx+src.wy*sy+src.phase)
	}
	return v
}

// CameraSubsetRows returns the row indices of A that belong to the central
// sub×sub camera block, in the same layout order. For the super-resolution
// experiment, sub=3 selects the 3×3 camera subset (576 of 1600 rows in the
// paper's configuration).
func (lf *LightField) CameraSubsetRows(sub int) ([]int, error) {
	p := lf.Params
	if sub <= 0 || sub > p.Grid {
		return nil, fmt.Errorf("dataset: camera subset %d outside [1, %d]", sub, p.Grid)
	}
	off := (p.Grid - sub) / 2
	rows := make([]int, 0, sub*sub*p.Patch*p.Patch)
	per := p.Patch * p.Patch
	for s := off; s < off+sub; s++ {
		for t := off; t < off+sub; t++ {
			base := (s*p.Grid + t) * per
			for k := 0; k < per; k++ {
				rows = append(rows, base+k)
			}
		}
	}
	return rows, nil
}

// AddNoise returns a copy of v corrupted by Gaussian noise scaled to achieve
// the given input SNR in dB (paper's denoising experiment feeds a 20 dB
// noisy image).
func AddNoise(v []float64, snrDB float64, r *rng.RNG) []float64 {
	sigPow := mat.Dot(v, v) / float64(len(v))
	noisePow := sigPow / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noisePow)
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] + sigma*r.NormFloat64()
	}
	return out
}
