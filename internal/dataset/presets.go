package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// The presets mirror the shape statistics of the paper's three evaluation
// datasets (Table I), scaled down so a full experiment sweep finishes on a
// laptop. What matters for every reported trend is preserved:
//
//   - Salinas (hyperspectral): moderate ambient dimension, clean
//     union-of-subspaces geometry, small L_min (~175 in the paper's Fig. 4).
//   - Cancer Cells (tumor morphologies): the densest geometry — larger
//     subspace dimensions — so OMP needs more iterations per column for a
//     given ε (the paper notes its higher preprocessing cost despite Light
//     Field being bigger).
//   - Light Field (plenoptic patches): highest ambient dimension, many
//     small subspaces, the sparsest codes and the biggest ExD wins.
type presetEntry struct {
	params UnionParams
	desc   string
}

var presets = map[string]presetEntry{
	"salinas": {
		params: UnionParams{
			M:           96,
			N:           16384,
			Ks:          []int{3, 3, 4, 4, 5},
			NoiseSigma:  0.0005,
			OutlierFrac: 0.005,
		},
		desc: "hyperspectral-like: clean union of five low-rank subspaces",
	},
	"cancercell": {
		params: UnionParams{
			M:           128,
			N:           16384,
			Ks:          []int{8, 10, 12},
			NoiseSigma:  0.0004,
			OutlierFrac: 0.003,
		},
		desc: "tumor-morphology-like: dense geometry, high per-column sparsity",
	},
	"lightfield": {
		params: UnionParams{
			M:           192,
			N:           24576,
			Ks:          []int{2, 2, 3, 3, 3, 4, 4},
			NoiseSigma:  0.00035,
			OutlierFrac: 0.002,
		},
		desc: "plenoptic-patch-like: many tiny subspaces, very sparse codes",
	},
}

// Preset returns the parameters of the named dataset preset with N scaled
// by the given factor (scale 1 = default laptop size; tests use < 1).
func Preset(name string, scale float64) (UnionParams, error) {
	e, ok := presets[strings.ToLower(name)]
	if !ok {
		return UnionParams{}, fmt.Errorf("dataset: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	p := e.params
	if scale > 0 && scale != 1 {
		p.N = int(float64(p.N) * scale)
		if p.N < 4*len(p.Ks) {
			p.N = 4 * len(p.Ks)
		}
	}
	return p, nil
}

// PresetNames lists the available presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetDescription returns the human-readable summary of a preset.
func PresetDescription(name string) string {
	if e, ok := presets[strings.ToLower(name)]; ok {
		return e.desc
	}
	return ""
}
