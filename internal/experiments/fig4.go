package experiments

import (
	"fmt"
	"math"

	"extdict/internal/exd"
	"extdict/internal/tune"
)

// Fig4Point is one L sample of the density/error curves.
type Fig4Point struct {
	L         int
	AlphaMean float64 // mean nonzeros per column over the trials
	AlphaStd  float64 // dispersion over random dictionary draws
	RelError  float64 // mean achieved ‖A-DC‖_F/‖A‖_F
}

// Fig4Result reproduces Fig. 4: the density function α(L) and the
// transformation error as functions of the number of sampled columns, with
// variance bars over repeated random sub-sampling of D.
type Fig4Result struct {
	Dataset string
	Epsilon float64
	LMin    int
	Trials  int
	Points  []Fig4Point
}

// Fig4 runs the experiment on the Salinas-like preset (the dataset the
// paper's Fig. 4 uses), ε = 0.1, sweeping L around the measured L_min with
// `trials` independent dictionary draws per L (paper: 10).
func Fig4(cfg Config, trials int) (*Fig4Result, error) {
	cfg = cfg.filled()
	if trials <= 0 {
		trials = 10
	}
	u, err := loadPreset("salinas", cfg)
	if err != nil {
		return nil, err
	}
	const eps = 0.1
	res := &Fig4Result{Dataset: "salinas", Epsilon: eps, Trials: trials}
	res.LMin = tune.EstimateLMin(u.A, eps, cfg.Seed)

	// Sweep from below the knee to deep into the over-complete regime
	// (capped as in lGridFor; the paper's axis also stops far below N).
	lo := res.LMin / 2
	if lo < 4 {
		lo = 4
	}
	hi := 16 * res.LMin
	if hi > u.A.Cols {
		hi = u.A.Cols
	}
	for _, l := range geometric(lo, hi, 8) {
		var sum, sum2, errSum float64
		for tr := 0; tr < trials; tr++ {
			t, err := exd.Fit(u.A, exd.Params{
				L: l, Epsilon: eps, Workers: cfg.Workers,
				Seed: cfg.Seed + uint64(tr)*7919 + uint64(l),
			})
			if err != nil {
				return nil, err
			}
			a := t.Alpha()
			sum += a
			sum2 += a * a
			errSum += t.RelError(u.A)
		}
		mean := sum / float64(trials)
		variance := sum2/float64(trials) - mean*mean
		if variance < 0 {
			variance = 0
		}
		res.Points = append(res.Points, Fig4Point{
			L:         l,
			AlphaMean: mean,
			AlphaStd:  math.Sqrt(variance),
			RelError:  errSum / float64(trials),
		})
	}
	return res, nil
}

// Table renders the two curves of Fig. 4 as aligned columns.
func (r *Fig4Result) Table() string {
	tw := &tableWriter{header: []string{"L", "alpha(L)", "±std", "rel.error"}}
	for _, p := range r.Points {
		tw.addRow(
			fmt.Sprintf("%d", p.L),
			fmt.Sprintf("%.3f", p.AlphaMean),
			fmt.Sprintf("%.3f", p.AlphaStd),
			fmt.Sprintf("%.4f", p.RelError),
		)
	}
	return fmt.Sprintf("Fig.4 — alpha(L) and transformation error vs L (%s, eps=%.2f, L_min≈%d, %d trials)\n%s",
		r.Dataset, r.Epsilon, r.LMin, r.Trials, tw.String())
}
