package experiments

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/rng"
	"extdict/internal/transform"
	"extdict/internal/tune"
)

// Table3Row is one dataset's memory comparison, in float64 words (the paper
// reports MB; words are the platform-independent unit — multiply by 8 for
// bytes).
type Table3Row struct {
	Dataset  string
	Original int // M·N words for the raw data matrix
	// Baselines maps method name → storage words of its (D, C).
	Baselines map[string]int
	// ExtDict maps processor count P → storage words with L tuned for the
	// memory objective on that platform (the paper's L=1..64 columns).
	ExtDict map[int]int
	// ExtDictL records the tuned L per P.
	ExtDictL map[int]int
}

// Table3Result reproduces Table III: memory footprints of the transformed
// representations at ε = 0.1. Every baseline produces one platform-oblivious
// answer; ExtDict's column varies with the platform it is tuned for.
type Table3Result struct {
	Epsilon float64
	Rows    []Table3Row
}

// Table3Platforms mirrors the paper's P = 1, 4, 16, 64 columns.
var Table3Platforms = []cluster.Platform{
	cluster.NewPlatform(1, 1),
	cluster.NewPlatform(1, 4),
	cluster.NewPlatform(2, 8),
	cluster.NewPlatform(8, 8),
}

// Table3 measures every preset.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.filled()
	const eps = 0.1
	res := &Table3Result{Epsilon: eps}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Dataset:   name,
			Original:  u.A.Rows * u.A.Cols,
			Baselines: map[string]int{},
			ExtDict:   map[int]int{},
			ExtDictL:  map[int]int{},
		}
		for _, m := range []transform.Method{transform.RCSS{}, transform.OASIS{}, transform.RankMap{Workers: cfg.Workers}} {
			fit, err := m.Fit(u.A, eps, rng.New(cfg.Seed+hashName(m.Name())))
			if err != nil {
				return nil, err
			}
			row.Baselines[m.Name()] = fit.MemoryWords()
		}
		for _, plat := range Table3Platforms {
			tr, _, err := tune.TuneAndFit(u.A, plat, tune.Config{
				Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			p := plat.Topology.P()
			row.ExtDict[p] = tr.MemoryWords()
			row.ExtDictL[p] = tr.L()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the memory comparison with improvement factors over the
// original data.
func (r *Table3Result) Table() string {
	header := []string{"dataset", "original", "RCSS", "oASIS", "RankMap"}
	for _, plat := range Table3Platforms {
		header = append(header, fmt.Sprintf("ExtDict P=%d", plat.Topology.P()))
	}
	tw := &tableWriter{header: header}
	for _, row := range r.Rows {
		cells := []string{
			row.Dataset,
			fmt.Sprintf("%d", row.Original),
			fmt.Sprintf("%d", row.Baselines["RCSS"]),
			fmt.Sprintf("%d", row.Baselines["oASIS"]),
			fmt.Sprintf("%d", row.Baselines["RankMap"]),
		}
		for _, plat := range Table3Platforms {
			p := plat.Topology.P()
			cells = append(cells, fmt.Sprintf("%d (L=%d)", row.ExtDict[p], row.ExtDictL[p]))
		}
		tw.addRow(cells...)
	}
	return fmt.Sprintf("Table III — storage in float64 words per transform (eps=%.2f)\n%s",
		r.Epsilon, tw.String())
}
