package experiments

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/perf"
	"extdict/internal/tune"
)

// Table2Row is one dataset's preprocessing overhead.
type Table2Row struct {
	Dataset   string
	TuningMS  float64 // wall time of the subset-based L search
	TransfMS  float64 // wall time of the final full-data ExD fit
	OverallMS float64
	ChosenL   int
	Alpha     float64
	// ResidentBytes is the Eq. 4 capacity prediction for iterating the
	// tuned transform on the target platform: the worst rank's peak
	// resident set (perf.Estimate.MemoryWordsPerRank, in bytes).
	ResidentBytes float64
}

// Table2Result reproduces Table II: the one-time preprocessing overhead
// (tuning + transformation) per dataset, run with the paper's 64-core
// configuration (8 nodes × 8 cores) as the tuning target. Wall times are
// measured on the host; the paper's observation that Cancer Cells costs
// more than the larger Light Field (denser geometry ⇒ more OMP iterations)
// must reproduce.
type Table2Result struct {
	Platform cluster.Platform
	Rows     []Table2Row
}

// Table2 measures preprocessing for every preset.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.filled()
	plat := cluster.NewPlatform(8, 8)
	res := &Table2Result{Platform: plat}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		tcfg := tune.Config{
			Epsilon: 0.1, Workers: cfg.Workers, Seed: cfg.Seed,
		}
		sw := perf.StartWall()
		tr, err := tune.Tune(u.A, plat, tcfg)
		if err != nil {
			return nil, err
		}
		tuneDur := sw.Elapsed()

		sw = perf.StartWall()
		fit, err := tuneFit(u, tr.Best.L, tcfg)
		if err != nil {
			return nil, err
		}
		fitDur := sw.Elapsed()

		est := perf.PredictTransformed(u.A.Rows, u.A.Cols, fit.L(), fit.C.NNZ(), plat)
		res.Rows = append(res.Rows, Table2Row{
			Dataset:       name,
			TuningMS:      float64(tuneDur.Microseconds()) / 1000,
			TransfMS:      float64(fitDur.Microseconds()) / 1000,
			OverallMS:     float64((tuneDur + fitDur).Microseconds()) / 1000,
			ChosenL:       fit.L(),
			Alpha:         fit.Alpha(),
			ResidentBytes: 8 * est.MemoryWordsPerRank,
		})
	}
	return res, nil
}

// Table renders the overhead rows.
func (r *Table2Result) Table() string {
	tw := &tableWriter{header: []string{"dataset", "tuning(ms)", "transform(ms)", "overall(ms)", "L*", "alpha"}}
	for _, row := range r.Rows {
		tw.addRow(row.Dataset,
			fmt.Sprintf("%.1f", row.TuningMS),
			fmt.Sprintf("%.1f", row.TransfMS),
			fmt.Sprintf("%.1f", row.OverallMS),
			fmt.Sprintf("%d", row.ChosenL),
			fmt.Sprintf("%.3f", row.Alpha),
		)
	}
	return fmt.Sprintf("Table II — preprocessing overhead (tuning + ExD) targeting %s\n%s",
		r.Platform.Topology, tw.String())
}
