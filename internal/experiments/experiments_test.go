package experiments

import (
	"strings"
	"testing"
)

// smallCfg keeps test runs fast; trends must hold at any scale.
func smallCfg() Config { return Config{Scale: 0.12, Seed: 42, Workers: 2} }

func TestGeometricHelper(t *testing.T) {
	g := geometric(10, 100, 4)
	if g[0] != 10 || g[len(g)-1] != 100 {
		t.Fatalf("grid %v", g)
	}
	if got := geometric(7, 7, 5); len(got) != 1 {
		t.Fatalf("degenerate %v", got)
	}
}

func TestTableWriterAlignment(t *testing.T) {
	skipInShort(t)
	tw := &tableWriter{header: []string{"a", "long-header"}}
	tw.addRow("xxxxx", "1")
	s := tw.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator misaligned")
	}
}

func TestFig4CurveShapes(t *testing.T) {
	skipInShort(t)
	r, err := Fig4(smallCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("too few points: %d", len(r.Points))
	}
	// α(L) decreasing (weakly, allowing noise) beyond L_min; error
	// criterion met for all L ≥ L_min.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.AlphaMean > first.AlphaMean {
		t.Fatalf("alpha rose from %v to %v", first.AlphaMean, last.AlphaMean)
	}
	// L_min marks where an *orthogonal* basis meets the criterion; greedy
	// OMP needs some slack beyond the knee, so require the criterion from
	// 2·L_min on and a error decrease across the sweep.
	for _, p := range r.Points {
		if p.L >= 2*r.LMin && p.RelError > r.Epsilon+1e-6 {
			t.Fatalf("error %v at L=%d ≥ 2·L_min=%d", p.RelError, p.L, 2*r.LMin)
		}
	}
	if first.RelError < last.RelError {
		t.Fatalf("error increased with L: %v -> %v", first.RelError, last.RelError)
	}
	if !strings.Contains(r.Table(), "Fig.4") {
		t.Fatal("table header missing")
	}
}

func TestFig5Tunability(t *testing.T) {
	skipInShort(t)
	r, err := Fig5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets) != 3 {
		t.Fatalf("datasets %d", len(r.Datasets))
	}
	for _, ds := range r.Datasets {
		if len(ds.Series) != len(Fig5Epsilons) {
			t.Fatalf("%s: %d series", ds.Name, len(ds.Series))
		}
		// Looser ε ⇒ sparser codes at every L (series are ordered by ε
		// ascending, so alpha must be non-increasing across series).
		for i := range ds.Ls {
			for s := 1; s < len(ds.Series); s++ {
				if ds.Series[s].Alpha[i] > ds.Series[s-1].Alpha[i]*1.05 {
					t.Fatalf("%s: eps=%v denser than eps=%v at L=%d",
						ds.Name, ds.Series[s].Epsilon, ds.Series[s-1].Epsilon, ds.Ls[i])
				}
			}
		}
		// Larger L ⇒ sparser codes for the tightest ε curve.
		tight := ds.Series[0].Alpha
		if tight[len(tight)-1] > tight[0]*1.1 {
			t.Fatalf("%s: alpha not decreasing in L", ds.Name)
		}
	}
	if !strings.Contains(r.Table(), "Fig.5") {
		t.Fatal("table header missing")
	}
}

func TestFig6SubsetConvergence(t *testing.T) {
	skipInShort(t)
	r, err := Fig6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for di, ds := range r.Datasets {
		if len(ds.Curves) < 3 {
			t.Fatalf("%s: %d curves", ds.Name, len(ds.Curves))
		}
		// Subset sizes strictly increasing, last = full data.
		for i := 1; i < len(ds.Curves); i++ {
			if ds.Curves[i].SubsetSize <= ds.Curves[i-1].SubsetSize {
				t.Fatalf("%s: sizes not increasing", ds.Name)
			}
		}
		if ds.Curves[len(ds.Curves)-1].SubsetSize != ds.N {
			t.Fatalf("%s: last curve not full data", ds.Name)
		}
		// The second-to-last subset must already track the full curve
		// closely (convergence of the estimator).
		near := ds.Curves[len(ds.Curves)-2]
		full := ds.Curves[len(ds.Curves)-1]
		for i := range full.Alpha {
			if full.Alpha[i] == 0 {
				continue
			}
			if abs(near.Alpha[i]-full.Alpha[i])/full.Alpha[i] > 0.35 {
				t.Fatalf("%s: 75%% subset off by >35%% at L=%d", ds.Name, ds.Ls[i])
			}
		}
		_ = di
	}
	if !strings.Contains(r.Table(), "Fig.6") {
		t.Fatal("table header missing")
	}
}

func TestTable2Overheads(t *testing.T) {
	skipInShort(t)
	r, err := Table2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.OverallMS <= 0 || row.ChosenL <= 0 || row.Alpha <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.OverallMS < row.TransfMS {
			t.Fatal("overall below transform time")
		}
	}
	if !strings.Contains(r.Table(), "Table II") {
		t.Fatal("table header missing")
	}
}

func TestFig7ExtDictWins(t *testing.T) {
	skipInShort(t)
	r, err := Fig7(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range r.Datasets {
		if len(ds.Cells) != 4 {
			t.Fatalf("%s: %d cells", ds.Name, len(ds.Cells))
		}
		inRegime := 0
		for _, c := range ds.Cells {
			if !c.InRegime {
				// Outside the paper's N/P ≫ L regime (only reachable at
				// reduced test scale) the serial M·L term dominates and no
				// winner claim applies.
				continue
			}
			inRegime++
			// The paper's claim: in regime, ExD yields better or equal
			// runtime vs every alternative. Against RankMap the paper
			// itself reports parity on some datasets (ExD then tunes to
			// L≈L_min), so that comparison gets a wider tolerance band.
			for _, m := range Fig7Methods[:4] {
				slack := 0.9
				if m == "RankMap" {
					slack = 0.8
				}
				if c.Improvement[m] < slack {
					t.Fatalf("%s on %s: ExtDict slower than %s (%.2fx)",
						ds.Name, c.Platform, m, c.Improvement[m])
				}
			}
			// And the win over the dense baseline must be substantial on
			// multi-rank platforms, in both time and energy (Eq. 2/3 share
			// the flop and word counts).
			if c.Platform.P() > 1 && c.Improvement["AᵀA"] < 1.5 {
				t.Fatalf("%s on %s: only %.2fx over dense",
					ds.Name, c.Platform, c.Improvement["AᵀA"])
			}
			if c.EnergyImprovement["AᵀA"] < 1 {
				t.Fatalf("%s on %s: energy regression %.2fx vs dense",
					ds.Name, c.Platform, c.EnergyImprovement["AᵀA"])
			}
		}
		if inRegime < 2 {
			t.Fatalf("%s: only %d in-regime cells — test scale too small to exercise the claim", ds.Name, inRegime)
		}
	}
	if !strings.Contains(r.Table(), "Fig.7") {
		t.Fatal("table header missing")
	}
}

func TestTable3MemoryOrdering(t *testing.T) {
	skipInShort(t)
	r, err := Table3(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Sparse methods must beat the dense-C baselines; every transform
		// must beat the original data.
		for name, w := range row.Baselines {
			if w >= row.Original {
				t.Fatalf("%s: %s uses %d ≥ original %d", row.Dataset, name, w, row.Original)
			}
		}
		for p, w := range row.ExtDict {
			if w >= row.Original {
				t.Fatalf("%s: ExtDict P=%d uses %d ≥ original %d", row.Dataset, p, w, row.Original)
			}
		}
		// ExtDict (tuned, sparse C) must not lose to the dense-C RCSS.
		for _, w := range row.ExtDict {
			if w > row.Baselines["RCSS"] {
				t.Fatalf("%s: ExtDict %d worse than RCSS %d", row.Dataset, w, row.Baselines["RCSS"])
			}
		}
	}
	if !strings.Contains(r.Table(), "Table III") {
		t.Fatal("table header missing")
	}
}

func TestFig8ModelTracksSimulator(t *testing.T) {
	skipInShort(t)
	r, err := Fig8(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MaxRelError(); got > 0.35 {
		t.Fatalf("model diverges from simulator by %.0f%%", 100*got)
	}
	if !strings.Contains(r.Table(), "Fig.8") {
		t.Fatal("table header missing")
	}
}

func TestFig9ExtDictBeatsSGD(t *testing.T) {
	skipInShort(t)
	r, err := Fig9(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps %d", len(r.Apps))
	}
	for _, app := range r.Apps {
		wins := 0
		for _, c := range app.Cells {
			if c.ExtDictSec <= 0 || c.SGDSec <= 0 {
				t.Fatalf("%s: degenerate times %+v", app.Name, c)
			}
			// A cell is an ExtDict win either outright on time or because
			// SGD exhausted its budget without matching ExtDict's solution
			// quality — the paper's "sub-optimal, non-guaranteed, slow
			// convergence" failure mode; its recorded time is then only a
			// lower bound.
			if c.Improvement > 1 || !c.SGDReached {
				wins++
			}
		}
		// ExtDict must win on most platforms (the paper reports up to
		// 2-4x; tiny test scales can flip an individual cell).
		if wins < len(app.Cells)-1 {
			t.Fatalf("%s: ExtDict won only %d/%d cells", app.Name, wins, len(app.Cells))
		}
	}
	if !strings.Contains(r.Table(), "Fig.9") {
		t.Fatal("table header missing")
	}
}

func TestFig10ExtDictSpeedsUpPCA(t *testing.T) {
	skipInShort(t)
	r, err := Fig10(smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range r.Datasets {
		inRegime := 0
		for _, c := range ds.Cells {
			if !c.InRegime {
				continue
			}
			inRegime++
			if c.Improvement < 1 {
				t.Fatalf("%s on %s: ExD slower (%.2fx)", ds.Name, c.Platform, c.Improvement)
			}
		}
		if inRegime < 2 {
			t.Fatalf("%s: only %d in-regime cells", ds.Name, inRegime)
		}
	}
	if !strings.Contains(r.Table(), "Fig.10") {
		t.Fatal("table header missing")
	}
}

func TestFig11ErrorTradeoff(t *testing.T) {
	skipInShort(t)
	r, err := Fig11(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		if len(app.Points) != len(Fig11Epsilons) {
			t.Fatalf("%s: %d points", app.Name, len(app.Points))
		}
		// Reconstruction must be meaningful at tight ε…
		if app.Points[0].RelError > 0.5 {
			t.Fatalf("%s: rel error %v at eps=0.01", app.Name, app.Points[0].RelError)
		}
		// …and the tightest ε must not be worse than the loosest.
		first, last := app.Points[0], app.Points[len(app.Points)-1]
		if first.RelError > last.RelError*1.5 {
			t.Fatalf("%s: error not improving with tighter eps (%v vs %v)",
				app.Name, first.RelError, last.RelError)
		}
	}
	if !strings.Contains(r.Table(), "Fig.11") {
		t.Fatal("table header missing")
	}
}

func TestFig12PCALearningError(t *testing.T) {
	skipInShort(t)
	r, err := Fig12(smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range r.Datasets {
		// Learning error small at the tightest ε and bounded throughout.
		if ds.Points[0].LearningError > 0.05 {
			t.Fatalf("%s: learning error %v at eps=0.01", ds.Name, ds.Points[0].LearningError)
		}
		for _, p := range ds.Points {
			if p.LearningError > 3*p.Epsilon+0.02 {
				t.Fatalf("%s: learning error %v at eps=%v", ds.Name, p.LearningError, p.Epsilon)
			}
		}
	}
	if !strings.Contains(r.Table(), "Fig.12") {
		t.Fatal("table header missing")
	}
}

// skipInShort marks the full experiment drivers as long tests: under -short
// (the CI race pass) only the fast helpers run, because the race detector's
// order-of-magnitude slowdown puts the drivers past any reasonable timeout.
// The plain test phase still runs every driver.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment driver skipped in -short mode")
	}
}
