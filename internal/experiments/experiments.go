// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VIII). Each driver generates its workload from the
// dataset presets, runs the relevant pipeline on the simulated platforms,
// and returns a typed result with a Table() renderer that prints the same
// rows/series the paper reports. The cmd/extdict-bench binary and the
// repository's bench_test.go both call these drivers.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/rng"
	"extdict/internal/tune"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies every preset's column count (1 = default laptop
	// scale; tests use ~0.1 for speed). Trends are scale-free.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds preprocessing parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c Config) filled() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// loadPreset generates the named dataset preset at the config's scale.
func loadPreset(name string, cfg Config) (*dataset.Union, error) {
	p, err := dataset.Preset(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	return dataset.GenerateUnion(p, rng.New(cfg.Seed^hashName(name)))
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// lGridFor returns a reasonable sweep of dictionary sizes for a dataset of
// n columns whose minimal basis is around lMin. The sweep is capped at a
// multiple of L_min rather than at N, matching the paper's plotted ranges
// (its figures stop around 2000 of N = 54129): beyond that regime α has
// flattened and a fit at L ≈ N would cost O(N²) Gram storage/compute for no
// information.
func lGridFor(lMin, n, points int) []int {
	lo := lMin
	if lo < 8 {
		lo = 8
	}
	if lo > n {
		lo = n
	}
	hi := 16 * lMin
	if hi < 128 {
		hi = 128
	}
	if hi > n {
		hi = n
	}
	return geometric(lo, hi, points)
}

func geometric(lo, hi, points int) []int {
	if points < 2 || lo >= hi {
		return []int{lo}
	}
	out := []int{}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(points-1))
	v := float64(lo)
	for i := 0; i < points; i++ {
		iv := int(v + 0.5)
		if len(out) == 0 || iv > out[len(out)-1] {
			out = append(out, iv)
		}
		v *= ratio
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// tuneFit runs the final full-data ExD fit at the tuner-selected L.
func tuneFit(u *dataset.Union, l int, tcfg tune.Config) (*exd.Transform, error) {
	return exd.Fit(u.A, exd.Params{
		L: l, Epsilon: tcfg.Epsilon, Workers: tcfg.Workers, Seed: tcfg.Seed,
	})
}

// tableWriter accumulates aligned text tables.
type tableWriter struct {
	header []string
	rows   [][]string
}

func (t *tableWriter) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
