package experiments

import (
	"math"

	"extdict/internal/imgproc"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// appProblem is a reconstruction task: solve the LASSO
// min ‖A·x - y‖² + λ‖x‖₁ on the (column-normalized) training matrix, then
// reconstruct in the target space and compare against the ground truth.
type appProblem struct {
	name string
	// aNorm is the column-normalized training matrix the solver iterates
	// on (the observation-space A).
	aNorm *mat.Dense
	// aRecon maps a coefficient vector to the target space. For denoising
	// it is aNorm itself; for super-resolution it is the full-resolution
	// matrix with the same column scaling as aNorm.
	aRecon *mat.Dense
	// y is the observation (noisy or low-resolution signal).
	y []float64
	// target is the ground truth in the reconstruction space.
	target []float64
	lambda float64
}

// reconstruct maps the LASSO solution to the target space.
func (p *appProblem) reconstruct(x []float64) []float64 {
	return p.aRecon.MulVec(x, nil)
}

// relError is the paper's reconstruction error ‖y* - ŷ‖/‖y*‖.
func (p *appProblem) relError(x []float64) float64 {
	return imgproc.RelError(p.target, p.reconstruct(x))
}

// psnr is the reconstruction PSNR in dB against the ground truth.
func (p *appProblem) psnr(x []float64) float64 {
	return imgproc.PSNR(p.target, p.reconstruct(x), 0)
}

// lfParams returns the light-field generator parameters at the config's
// scale: the paper's exact 5×5-camera, 8×8-patch plenoptic geometry
// (1600-dimensional patch columns; the 3×3 camera subset used by
// super-resolution has 576 rows), with only the number of patches shrunk.
// The ambient dimension stays 25× the SGD batch size as in the paper —
// that ratio drives SGD's estimator variance and with it Fig. 9.
func lfParams(cfg Config) dataset.LightFieldParams {
	p := dataset.LightFieldParams{
		Grid: 5, Patch: 8, NumSources: 16, SceneSize: 192,
		NumPatches: int(4096 * cfg.Scale),
	}
	if p.NumPatches < 256 {
		p.NumPatches = 256
	}
	return p
}

// buildDenoiseProblem creates the paper's denoising task: y is a noisy
// patch (input SNR 20 dB), A a training set of clean light-field patches,
// and the reconstruction A·x should recover the clean patch (§VIII-A).
func buildDenoiseProblem(cfg Config) (*appProblem, error) {
	p := lfParams(cfg)
	p.NumPatches++ // one held-out test patch
	lf, err := dataset.GenerateLightField(p, rng.New(cfg.Seed+0xde))
	if err != nil {
		return nil, err
	}
	n := lf.A.Cols - 1
	train := lf.A.ColRange(0, n).Clone()
	clean := lf.A.Col(n, nil)

	train.NormalizeColumns()
	noisy := dataset.AddNoise(clean, 20, rng.New(cfg.Seed+0xd0))
	return &appProblem{
		name:   "denoising",
		aNorm:  train,
		aRecon: train,
		y:      noisy,
		target: clean,
		lambda: lassoLambda(train, noisy),
	}, nil
}

// lassoLambda sizes the ℓ₁ weight relative to the correlation scale of the
// problem (a fixed fraction of ‖Aᵀy‖∞, the value at which LASSO returns 0),
// so the regularization is meaningful at every dataset scale.
func lassoLambda(a *mat.Dense, y []float64) float64 {
	return 0.05 * mat.NormInf(a.MulVecT(y, nil))
}

// buildSuperResProblem creates the super-resolution task: the observation
// lives on the central 3×3 camera subset and the reconstruction must fill
// in the full 5×5 light field (§VIII-A).
func buildSuperResProblem(cfg Config) (*appProblem, error) {
	p := lfParams(cfg)
	p.NumPatches++
	lf, err := dataset.GenerateLightField(p, rng.New(cfg.Seed+0x5e))
	if err != nil {
		return nil, err
	}
	subRows, err := lf.CameraSubsetRows(3)
	if err != nil {
		return nil, err
	}
	n := lf.A.Cols - 1
	full := lf.A.ColRange(0, n).Clone()
	targetFull := lf.A.Col(n, nil)

	sub := full.RowSlice(subRows)
	norms := sub.NormalizeColumns()
	// Scale the full-resolution columns identically so a coefficient
	// vector solved against the subset reconstructs consistently.
	for i := 0; i < full.Rows; i++ {
		row := full.Row(i)
		for j := range row {
			if norms[j] > 0 {
				row[j] /= norms[j]
			}
		}
	}
	yLow := make([]float64, len(subRows))
	for k, r := range subRows {
		yLow[k] = targetFull[r]
	}
	return &appProblem{
		name:   "super-resolution",
		aNorm:  sub,
		aRecon: full,
		y:      yLow,
		target: targetFull,
		lambda: lassoLambda(sub, yLow),
	}, nil
}

// trueObjective evaluates ‖A·x - y‖² + λ‖x‖₁ against the untransformed
// training matrix — the common yardstick for comparing solvers that iterate
// on different operators.
func (p *appProblem) trueObjective(x []float64) float64 {
	r := p.aNorm.MulVec(x, nil)
	mat.SubVec(r, r, p.y)
	return mat.Dot(r, r) + p.lambda*mat.Norm1(x)
}

// solveOutcome reports one solver run on one platform.
type solveOutcome struct {
	X         []float64
	Iters     int
	TimeSec   float64 // modeled distributed time, excluding preprocessing
	Objective float64 // true objective at the final iterate
	Reached   bool    // for time-to-target runs: target reached
}

// solveExtDict fits ExD (tuned for the platform), then runs gradient
// descent to convergence on the transformed operator. The returned time
// covers the iterations only; preprocessing is the amortized one-time cost
// reported by Table II.
func (p *appProblem) solveExtDict(plat cluster.Platform, eps float64, cfg Config, maxIters int) (solveOutcome, error) {
	tr, _, err := tune.TuneAndFit(p.aNorm, plat, tune.Config{
		Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		return solveOutcome{}, err
	}
	op, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	if err != nil {
		return solveOutcome{}, err
	}
	aty := p.aNorm.MulVecT(p.y, nil)
	res := solver.Lasso(op, aty, mat.Dot(p.y, p.y), solver.LassoOpts{
		Lambda: p.lambda, MaxIters: maxIters, Tol: 1e-6,
	})
	// Time-to-target accounting, symmetric with the SGD baseline: charge
	// the iterations up to the first one within 5% of the final objective.
	// Adagrad's 1/√t tail spends many iterations polishing the last
	// fraction of a percent; neither solver is charged for that regime.
	target := res.Objective + 0.05*math.Abs(res.Objective)
	reachedAt := res.Iters
	for i, h := range res.History {
		if h <= target {
			reachedAt = i + 1
			break
		}
	}
	frac := float64(reachedAt) / float64(res.Iters)
	return solveOutcome{
		X:         res.X,
		Iters:     reachedAt,
		TimeSec:   res.Stats.ModeledTime * frac,
		Objective: p.trueObjective(res.X),
		Reached:   true,
	}, nil
}

// solveSGDToTarget runs the SGD baseline in chunks until its reconstruction
// error reaches target (or the iteration budget runs out), charging only the
// distributed iteration cost. Reconstruction error — not the LASSO
// objective — is the applications' quality metric (it is what Fig. 11
// reports); SGD's stochastic iterates can score well on the sampled
// objective while reconstructing poorly.
func (p *appProblem) solveSGDToTarget(plat cluster.Platform, target float64, cfg Config, batch, maxIters int) solveOutcome {
	op := dist.NewBatchGram(cluster.NewComm(plat), p.aNorm, batch, cfg.Seed+0x56d)
	aty := p.aNorm.MulVecT(p.y, nil)
	y2 := mat.Dot(p.y, p.y)

	const chunk = 25
	// The stochastic trajectory wobbles: a single lucky dip below the
	// target is not a solution anyone could stop at (the reconstruction
	// error is an oracle metric during training). Require the quality to
	// hold across consecutive checks before stopping the clock.
	const sustain = 3
	var out solveOutcome
	x := make([]float64, p.aNorm.Cols)
	var time float64
	hits := 0
	for out.Iters < maxIters {
		res := solver.Lasso(op, aty, y2, solver.LassoOpts{
			Lambda: p.lambda, MaxIters: chunk, Tol: 1e-30, X0: x,
		})
		copy(x, res.X)
		out.Iters += res.Iters
		time += res.Stats.ModeledTime
		if p.relError(x) <= target {
			hits++
			if hits >= sustain {
				out.Reached = true
				break
			}
		} else {
			hits = 0
		}
	}
	out.X = x
	out.TimeSec = time
	out.Objective = p.trueObjective(x)
	return out
}

func appName(i int) string {
	if i == 0 {
		return "denoising"
	}
	return "super-resolution"
}

func buildApp(i int, cfg Config) (*appProblem, error) {
	if i == 0 {
		return buildDenoiseProblem(cfg)
	}
	return buildSuperResProblem(cfg)
}
