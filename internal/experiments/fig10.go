package experiments

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// Fig10Cell is one (dataset, platform) Power-method comparison.
type Fig10Cell struct {
	Platform      cluster.Topology
	BaselineSec   float64
	BaselineIters int
	ExtDictSec    float64
	ExtDictIters  int
	Improvement   float64
	ChosenL       int
	// InRegime mirrors Fig7Cell.InRegime: N/P ≥ 2·L, the paper's
	// operating regime where the transformed iteration wins.
	InRegime bool
}

// Fig10Dataset holds one dataset's sweep.
type Fig10Dataset struct {
	Name  string
	Cells []Fig10Cell
}

// Fig10Result reproduces Fig. 10: runtime of the Power method extracting
// the first 10 eigenvalues, iterating on the raw Gram matrix AᵀA versus on
// the ExD-transformed (DC)ᵀDC, across datasets and platforms.
type Fig10Result struct {
	Epsilon    float64
	Components int
	Datasets   []Fig10Dataset
}

// Fig10 runs the sweep. components ≤ 0 selects the paper's 10.
func Fig10(cfg Config, components int) (*Fig10Result, error) {
	cfg = cfg.filled()
	const eps = 0.1
	if components <= 0 {
		components = 10
	}
	res := &Fig10Result{Epsilon: eps, Components: components}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		ds := Fig10Dataset{Name: name}
		opts := solver.PowerOpts{Components: components, Seed: cfg.Seed + 0x10, Tol: 1e-6}
		for _, plat := range cluster.PaperPlatforms() {
			base := solver.PowerMethod(dist.NewDenseGram(cluster.NewComm(plat), u.A), opts)

			tr, _, err := tune.TuneAndFit(u.A, plat, tune.Config{
				Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			op, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				return nil, err
			}
			fast := solver.PowerMethod(op, opts)

			ds.Cells = append(ds.Cells, Fig10Cell{
				Platform:      plat.Topology,
				BaselineSec:   base.Stats.ModeledTime,
				BaselineIters: base.Iters,
				ExtDictSec:    fast.Stats.ModeledTime,
				ExtDictIters:  fast.Iters,
				Improvement:   base.Stats.ModeledTime / fast.Stats.ModeledTime,
				ChosenL:       tr.L(),
				InRegime:      u.A.Cols/plat.Topology.P() >= 2*tr.L(),
			})
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// Table renders one block per dataset.
func (r *Fig10Result) Table() string {
	out := fmt.Sprintf("Fig.10 — Power method (first %d eigenvalues), AᵀA vs ExD (eps=%.2f)\n",
		r.Components, r.Epsilon)
	for _, ds := range r.Datasets {
		tw := &tableWriter{header: []string{
			"platform", "L*", "regime", "AᵀA(ms)", "iters", "ExtDict(ms)", "iters", "improvement"}}
		for _, c := range ds.Cells {
			tw.addRow(
				c.Platform.String(),
				fmt.Sprintf("%d", c.ChosenL),
				fmt.Sprintf("%v", c.InRegime),
				fmt.Sprintf("%.2f", c.BaselineSec*1e3),
				fmt.Sprintf("%d", c.BaselineIters),
				fmt.Sprintf("%.2f", c.ExtDictSec*1e3),
				fmt.Sprintf("%d", c.ExtDictIters),
				fmt.Sprintf("%.2fx", c.Improvement),
			)
		}
		out += fmt.Sprintf("\n%s\n%s", ds.Name, tw.String())
	}
	return out
}
