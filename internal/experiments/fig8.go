package experiments

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/perf"
	"extdict/internal/rng"
	"extdict/internal/tune"
)

// Fig8Point compares the closed-form model against the simulated cost for
// one (L, platform) pair.
type Fig8Point struct {
	L             int
	P             int
	PredictedTime float64 // Eq. 2 model (seconds)
	MeasuredTime  float64 // simulated bulk-synchronous cost (seconds)
}

// Fig8Dataset holds one dataset's verification grid.
type Fig8Dataset struct {
	Name   string
	Points []Fig8Point
}

// Fig8Result reproduces Fig. 8: verification of the performance model. The
// top row of the paper's figure is the Eq. 2 estimate, the bottom row the
// measured runtime of (DC)ᵀDC·x; the claim is that the predicted trend
// across L and platforms matches the measurement. Here the measurement is
// the simulator's exact bulk-synchronous accounting, averaged over
// iterations.
type Fig8Result struct {
	Epsilon  float64
	Datasets []Fig8Dataset
}

// Fig8 sweeps L × platform per preset, measuring one Gram iteration.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.filled()
	const eps = 0.1
	const iters = 10 // paper: runtimes averaged over 10 iterations
	res := &Fig8Result{Epsilon: eps}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		n := u.A.Cols
		lMin := tune.EstimateLMin(u.A, eps, cfg.Seed)
		ds := Fig8Dataset{Name: name}
		x := make([]float64, n)
		rr := rng.New(cfg.Seed + 8)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		y := make([]float64, n)
		for _, l := range lGridFor(lMin, n, 4) {
			tr, err := exd.Fit(u.A, exd.Params{
				L: l, Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed + uint64(l),
			})
			if err != nil {
				return nil, err
			}
			for _, plat := range cluster.PaperPlatforms() {
				op, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
				if err != nil {
					return nil, err
				}
				var acc cluster.Stats
				for it := 0; it < iters; it++ {
					acc.Accumulate(op.Apply(x, y))
				}
				pred := perf.PredictTransformed(u.A.Rows, n, l, tr.C.NNZ(), plat)
				ds.Points = append(ds.Points, Fig8Point{
					L: l, P: plat.Topology.P(),
					PredictedTime: pred.Time,
					MeasuredTime:  acc.ModeledTime / iters,
				})
			}
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// MaxRelError returns the worst |predicted-measured|/measured across all
// points of all datasets — the model-fidelity figure of merit.
func (r *Fig8Result) MaxRelError() float64 {
	worst := 0.0
	for _, ds := range r.Datasets {
		for _, p := range ds.Points {
			if p.MeasuredTime == 0 {
				continue
			}
			d := abs(p.PredictedTime-p.MeasuredTime) / p.MeasuredTime
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Table renders one block per dataset.
func (r *Fig8Result) Table() string {
	out := fmt.Sprintf("Fig.8 — performance model verification (eps=%.2f, worst rel. error %.1f%%)\n",
		r.Epsilon, 100*r.MaxRelError())
	for _, ds := range r.Datasets {
		tw := &tableWriter{header: []string{"L", "P", "predicted(µs)", "measured(µs)", "ratio"}}
		for _, p := range ds.Points {
			tw.addRow(
				fmt.Sprintf("%d", p.L),
				fmt.Sprintf("%d", p.P),
				fmt.Sprintf("%.1f", p.PredictedTime*1e6),
				fmt.Sprintf("%.1f", p.MeasuredTime*1e6),
				fmt.Sprintf("%.2f", p.PredictedTime/p.MeasuredTime),
			)
		}
		out += fmt.Sprintf("\n%s\n%s", ds.Name, tw.String())
	}
	return out
}
