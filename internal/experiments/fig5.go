package experiments

import (
	"fmt"

	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/tune"
)

// Fig5Series is one ε curve of one dataset: α(L) over the L sweep.
type Fig5Series struct {
	Epsilon float64
	Alpha   []float64 // aligned with Fig5Dataset.Ls
}

// Fig5Dataset holds the tunability curves of one dataset.
type Fig5Dataset struct {
	Name   string
	M, N   int
	Ls     []int
	Series []Fig5Series
}

// Fig5Result reproduces Fig. 5: ExD's tunability. For each dataset, the
// average nonzeros per column of C versus dictionary size L, one curve per
// transformation error ε ∈ {0.01, 0.05, 0.1}. Both a larger L and a looser
// ε must yield sparser coefficient matrices.
type Fig5Result struct {
	Datasets []Fig5Dataset
}

// Fig5Epsilons are the paper's three tolerance settings.
var Fig5Epsilons = []float64{0.01, 0.05, 0.1}

// Fig5 sweeps all three dataset presets.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.filled()
	res := &Fig5Result{}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		lMin := tune.EstimateLMin(u.A, Fig5Epsilons[len(Fig5Epsilons)-1], cfg.Seed)
		ds := Fig5Dataset{
			Name: name, M: u.A.Rows, N: u.A.Cols,
			Ls: lGridFor(lMin, u.A.Cols, 6),
		}
		for _, eps := range Fig5Epsilons {
			s := Fig5Series{Epsilon: eps}
			for _, l := range ds.Ls {
				t, err := exd.Fit(u.A, exd.Params{
					L: l, Epsilon: eps, Workers: cfg.Workers,
					Seed: cfg.Seed + uint64(l),
				})
				if err != nil {
					return nil, err
				}
				s.Alpha = append(s.Alpha, t.Alpha())
			}
			ds.Series = append(ds.Series, s)
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// Table renders one block per dataset, one α column per ε.
func (r *Fig5Result) Table() string {
	out := "Fig.5 — Tunability of ExD: alpha(L) per dataset and epsilon\n"
	for _, ds := range r.Datasets {
		header := []string{"L"}
		for _, s := range ds.Series {
			header = append(header, fmt.Sprintf("alpha(eps=%.2f)", s.Epsilon))
		}
		tw := &tableWriter{header: header}
		for i, l := range ds.Ls {
			row := []string{fmt.Sprintf("%d", l)}
			for _, s := range ds.Series {
				row = append(row, fmt.Sprintf("%.3f", s.Alpha[i]))
			}
			tw.addRow(row...)
		}
		out += fmt.Sprintf("\n%s %dx%d\n%s", ds.Name, ds.M, ds.N, tw.String())
	}
	return out
}
