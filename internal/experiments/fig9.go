package experiments

import (
	"fmt"

	"extdict/internal/cluster"
)

// Fig9Cell is one (application, platform) runtime comparison.
type Fig9Cell struct {
	Platform     cluster.Topology
	ExtDictSec   float64
	ExtDictIters int
	SGDSec       float64
	SGDIters     int
	SGDReached   bool // whether SGD hit the quality target within budget
	Improvement  float64
}

// Fig9App holds one application's platform sweep.
type Fig9App struct {
	Name  string
	Cells []Fig9Cell
}

// Fig9Result reproduces Fig. 9: total solve time of the image denoising and
// super-resolution LASSO problems, ExtDict's provably-convergent gradient
// descent on the transformed data versus distributed SGD (batch 64) on the
// raw data. SGD is timed to the moment it matches ExtDict's achieved
// objective (within 5%); if it never does inside its iteration budget, its
// full budget is charged and the cell is flagged.
type Fig9Result struct {
	Epsilon float64
	Batch   int
	Apps    []Fig9App
}

// Fig9 runs both applications across the paper's platforms.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.filled()
	const (
		eps         = 0.1
		batch       = 64
		gdMaxIters  = 800
		sgdMaxIters = 2500
	)
	res := &Fig9Result{Epsilon: eps, Batch: batch}
	for appIdx := 0; appIdx < 2; appIdx++ {
		prob, err := buildApp(appIdx, cfg)
		if err != nil {
			return nil, err
		}
		app := Fig9App{Name: appName(appIdx)}
		for _, plat := range cluster.PaperPlatforms() {
			gd, err := prob.solveExtDict(plat, eps, cfg, gdMaxIters)
			if err != nil {
				return nil, err
			}
			// SGD must match ExtDict's reconstruction quality (within 5%)
			// before its clock stops.
			target := prob.relError(gd.X) * 1.05
			sgd := prob.solveSGDToTarget(plat, target, cfg, batch, sgdMaxIters)
			app.Cells = append(app.Cells, Fig9Cell{
				Platform:     plat.Topology,
				ExtDictSec:   gd.TimeSec,
				ExtDictIters: gd.Iters,
				SGDSec:       sgd.TimeSec,
				SGDIters:     sgd.Iters,
				SGDReached:   sgd.Reached,
				Improvement:  sgd.TimeSec / gd.TimeSec,
			})
		}
		res.Apps = append(res.Apps, app)
	}
	return res, nil
}

// Table renders one block per application.
func (r *Fig9Result) Table() string {
	out := fmt.Sprintf("Fig.9 — LASSO solve time, ExtDict gradient descent vs SGD (eps=%.2f, batch=%d)\n",
		r.Epsilon, r.Batch)
	for _, app := range r.Apps {
		tw := &tableWriter{header: []string{
			"platform", "ExtDict(ms)", "iters", "SGD(ms)", "iters", "target met", "improvement"}}
		for _, c := range app.Cells {
			tw.addRow(
				c.Platform.String(),
				fmt.Sprintf("%.2f", c.ExtDictSec*1e3),
				fmt.Sprintf("%d", c.ExtDictIters),
				fmt.Sprintf("%.2f", c.SGDSec*1e3),
				fmt.Sprintf("%d", c.SGDIters),
				fmt.Sprintf("%v", c.SGDReached),
				fmt.Sprintf("%.2fx", c.Improvement),
			)
		}
		out += fmt.Sprintf("\n%s\n%s", app.Name, tw.String())
	}
	return out
}
