package experiments

import (
	"fmt"

	"extdict/internal/cluster"
)

// Fig11Point is one ε sample of the error trade-off.
type Fig11Point struct {
	Epsilon  float64
	RelError float64 // ‖y* - ŷ‖/‖y*‖
	PSNRdB   float64
	Iters    int
}

// Fig11App holds one application's ε sweep.
type Fig11App struct {
	Name   string
	Points []Fig11Point
}

// Fig11Result reproduces Fig. 11: the effect of the transformation error ε
// on the final learning (reconstruction) error for denoising and
// super-resolution. The paper's observation: sizeable ε values buy large
// runtime/memory savings while barely moving the reconstruction error.
type Fig11Result struct {
	Apps []Fig11App
}

// Fig11Epsilons is the sweep grid.
var Fig11Epsilons = []float64{0.01, 0.05, 0.1, 0.2, 0.3}

// Fig11 sweeps ε for both applications on a fixed 1×4 platform (the error
// is platform-independent; the platform only affects speed).
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.filled()
	plat := cluster.NewPlatform(1, 4)
	res := &Fig11Result{}
	for appIdx := 0; appIdx < 2; appIdx++ {
		prob, err := buildApp(appIdx, cfg)
		if err != nil {
			return nil, err
		}
		app := Fig11App{Name: appName(appIdx)}
		for _, eps := range Fig11Epsilons {
			out, err := prob.solveExtDict(plat, eps, cfg, 400)
			if err != nil {
				return nil, err
			}
			app.Points = append(app.Points, Fig11Point{
				Epsilon:  eps,
				RelError: prob.relError(out.X),
				PSNRdB:   prob.psnr(out.X),
				Iters:    out.Iters,
			})
		}
		res.Apps = append(res.Apps, app)
	}
	return res, nil
}

// Table renders one block per application.
func (r *Fig11Result) Table() string {
	out := "Fig.11 — reconstruction error vs transformation error\n"
	for _, app := range r.Apps {
		tw := &tableWriter{header: []string{"epsilon", "rel.error", "PSNR(dB)", "iters"}}
		for _, p := range app.Points {
			tw.addRow(
				fmt.Sprintf("%.2f", p.Epsilon),
				fmt.Sprintf("%.4f", p.RelError),
				fmt.Sprintf("%.2f", p.PSNRdB),
				fmt.Sprintf("%d", p.Iters),
			)
		}
		out += fmt.Sprintf("\n%s\n%s", app.Name, tw.String())
	}
	return out
}
