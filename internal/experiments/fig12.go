package experiments

import (
	"fmt"
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/solver"
	"extdict/internal/tune"
)

// Fig12Point is one ε sample of the PCA learning error.
type Fig12Point struct {
	Epsilon float64
	// LearningError is the normalized cumulative error of the first k
	// eigenvalues: Σ|λᵢ - λ̂ᵢ| / Σλᵢ.
	LearningError float64
}

// Fig12Dataset holds one dataset's sweep.
type Fig12Dataset struct {
	Name   string
	Points []Fig12Point
}

// Fig12Result reproduces Fig. 12: PCA learning error versus transformation
// error. Baseline eigenvalues come from the Power method on the raw AᵀA;
// ExtDict's come from the same solver on (DC)ᵀDC. The error must shrink as
// ε tightens and stay small (≲ε) throughout.
type Fig12Result struct {
	Components int
	Datasets   []Fig12Dataset
}

// Fig12Epsilons is the sweep grid.
var Fig12Epsilons = []float64{0.01, 0.05, 0.1, 0.2}

// Fig12 sweeps ε per preset. components ≤ 0 selects the paper's 10.
func Fig12(cfg Config, components int) (*Fig12Result, error) {
	cfg = cfg.filled()
	if components <= 0 {
		components = 10
	}
	plat := cluster.NewPlatform(1, 4)
	res := &Fig12Result{Components: components}
	opts := solver.PowerOpts{Components: components, Seed: cfg.Seed + 0x12, Tol: 1e-8}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		exact := solver.PowerMethod(dist.NewDenseGram(cluster.NewComm(plat), u.A), opts)
		var exactSum float64
		for _, v := range exact.Eigenvalues {
			exactSum += v
		}

		lMin := tune.EstimateLMin(u.A, Fig12Epsilons[0], cfg.Seed)
		l := lMin * 2
		if l > u.A.Cols {
			l = u.A.Cols
		}
		ds := Fig12Dataset{Name: name}
		for _, eps := range Fig12Epsilons {
			tr, err := exd.Fit(u.A, exd.Params{
				L: l, Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			op, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				return nil, err
			}
			approx := solver.PowerMethod(op, opts)
			var errSum float64
			for k := range exact.Eigenvalues {
				errSum += math.Abs(exact.Eigenvalues[k] - approx.Eigenvalues[k])
			}
			ds.Points = append(ds.Points, Fig12Point{
				Epsilon:       eps,
				LearningError: errSum / exactSum,
			})
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// Table renders one block per dataset.
func (r *Fig12Result) Table() string {
	out := fmt.Sprintf("Fig.12 — PCA learning error vs transformation error (first %d eigenvalues)\n",
		r.Components)
	for _, ds := range r.Datasets {
		tw := &tableWriter{header: []string{"epsilon", "learning error"}}
		for _, p := range ds.Points {
			tw.addRow(fmt.Sprintf("%.2f", p.Epsilon), fmt.Sprintf("%.5f", p.LearningError))
		}
		out += fmt.Sprintf("\n%s\n%s", ds.Name, tw.String())
	}
	return out
}
