package experiments

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/rng"
	"extdict/internal/transform"
	"extdict/internal/tune"
)

// Fig7Cell is one (dataset, platform) comparison of iteration runtimes.
type Fig7Cell struct {
	Platform cluster.Topology
	// IterTime maps method name → modeled seconds for one Gram iteration.
	IterTime map[string]float64
	// IterEnergy maps method name → modeled joules for one iteration
	// (Eq. 3; the paper notes energy follows the same flop+word counts).
	IterEnergy map[string]float64
	// Improvement maps method name → ExtDict's runtime speedup over it.
	Improvement map[string]float64
	// EnergyImprovement maps method name → ExtDict's energy gain over it.
	EnergyImprovement map[string]float64
	// Resident maps method name → the worst rank's peak resident set in
	// bytes for one iteration (cluster.Stats.MaxResident, the runtime side
	// of the allocmodel capacity polynomial).
	Resident map[string]int64
	// ChosenL is the ExD dictionary size tuned for this platform.
	ChosenL int
	// InRegime reports whether this cell is in the paper's operating
	// regime N/P ≫ L (we require N/P ≥ 2·L). Outside it, the serial
	// dictionary term M·L dominates the per-rank cost and the transformed
	// iteration cannot win — exactly what the cost model predicts. The
	// paper's datasets have N/P ≥ 846, always in regime; scaled-down runs
	// may leave it on the largest platforms.
	InRegime bool
}

// Fig7Dataset holds one dataset's platform sweep.
type Fig7Dataset struct {
	Name  string
	Cells []Fig7Cell
}

// Fig7Result reproduces Fig. 7: the runtime improvement of one iterative
// Gram update using ExtDict over the original AᵀA and over the RCSS, oASIS,
// and RankMap transforms, across the four platforms. All transforms run at
// ε = 0.1; ExD alone re-tunes its dictionary size per platform.
type Fig7Result struct {
	Epsilon  float64
	Datasets []Fig7Dataset
}

// Fig7Methods lists the comparison columns in display order.
var Fig7Methods = []string{"AᵀA", "RCSS", "oASIS", "RankMap", "ExtDict"}

// Fig7 runs the full sweep.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.filled()
	const eps = 0.1
	res := &Fig7Result{Epsilon: eps}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		n := u.A.Cols
		x := make([]float64, n)
		rr := rng.New(cfg.Seed + 11)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		y := make([]float64, n)

		// Fit the platform-oblivious baselines once (their output is the
		// same regardless of the platform, as the paper stresses).
		baseline := map[string]*transform.Result{}
		for _, m := range []transform.Method{transform.RCSS{}, transform.OASIS{}, transform.RankMap{Workers: cfg.Workers}} {
			fit, err := m.Fit(u.A, eps, rng.New(cfg.Seed+hashName(m.Name())))
			if err != nil {
				return nil, err
			}
			baseline[m.Name()] = fit
		}

		ds := Fig7Dataset{Name: name}
		for _, plat := range cluster.PaperPlatforms() {
			cell := Fig7Cell{
				Platform:          plat.Topology,
				IterTime:          map[string]float64{},
				IterEnergy:        map[string]float64{},
				Improvement:       map[string]float64{},
				EnergyImprovement: map[string]float64{},
				Resident:          map[string]int64{},
			}

			// Original data.
			dense := dist.NewDenseGram(cluster.NewComm(plat), u.A)
			st := dense.Apply(x, y)
			cell.IterTime["AᵀA"] = st.ModeledTime
			cell.IterEnergy["AᵀA"] = st.ModeledEnergy
			cell.Resident["AᵀA"] = st.MaxResident

			// Baseline transforms through the same Algorithm 2 engine.
			for nameB, fit := range baseline {
				op, err := dist.NewTransformedGram(cluster.NewComm(plat), fit.D, fit.C, nameB)
				if err != nil {
					return nil, err
				}
				st := op.Apply(x, y)
				cell.IterTime[nameB] = st.ModeledTime
				cell.IterEnergy[nameB] = st.ModeledEnergy
				cell.Resident[nameB] = st.MaxResident
			}

			// ExtDict: tune L for THIS platform, then measure.
			tr, _, err := tune.TuneAndFit(u.A, plat, tune.Config{
				Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			cell.ChosenL = tr.L()
			cell.InRegime = n/plat.Topology.P() >= 2*tr.L()
			op, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				return nil, err
			}
			stE := op.Apply(x, y)
			cell.IterTime["ExtDict"] = stE.ModeledTime
			cell.IterEnergy["ExtDict"] = stE.ModeledEnergy
			cell.Resident["ExtDict"] = stE.MaxResident

			for _, m := range Fig7Methods[:4] {
				cell.Improvement[m] = cell.IterTime[m] / cell.IterTime["ExtDict"]
				cell.EnergyImprovement[m] = cell.IterEnergy[m] / cell.IterEnergy["ExtDict"]
			}
			ds.Cells = append(ds.Cells, cell)
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// Table renders one block per dataset: iteration time per method and
// ExtDict's improvement factors.
func (r *Fig7Result) Table() string {
	out := fmt.Sprintf("Fig.7 — Gram-iteration runtime and ExtDict improvement (eps=%.2f)\n", r.Epsilon)
	for _, ds := range r.Datasets {
		header := []string{"platform", "L*", "regime"}
		for _, m := range Fig7Methods {
			header = append(header, m+"(µs)")
		}
		for _, m := range Fig7Methods[:4] {
			header = append(header, "vs "+m)
		}
		header = append(header, "energy vs AᵀA")
		tw := &tableWriter{header: header}
		for _, c := range ds.Cells {
			row := []string{c.Platform.String(), fmt.Sprintf("%d", c.ChosenL), fmt.Sprintf("%v", c.InRegime)}
			for _, m := range Fig7Methods {
				row = append(row, fmt.Sprintf("%.1f", c.IterTime[m]*1e6))
			}
			for _, m := range Fig7Methods[:4] {
				row = append(row, fmt.Sprintf("%.2fx", c.Improvement[m]))
			}
			row = append(row, fmt.Sprintf("%.2fx", c.EnergyImprovement["AᵀA"]))
			tw.addRow(row...)
		}
		out += fmt.Sprintf("\n%s\n%s", ds.Name, tw.String())
	}
	return out
}
