package experiments

import (
	"fmt"

	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/rng"
	"extdict/internal/tune"
)

// Fig6Curve is α(L) measured on one subset size.
type Fig6Curve struct {
	SubsetSize int
	Alpha      []float64 // aligned with Fig6Dataset.Ls
}

// Fig6Dataset holds one dataset's subset-estimation sweep.
type Fig6Dataset struct {
	Name   string
	N      int
	Ls     []int
	Curves []Fig6Curve // increasing subset sizes; last one is the full data
}

// Fig6Result reproduces Fig. 6: tuning ExD from subsets of A. For nested
// random subsets A₁ ⊂ A₂ ⊂ … ⊂ A, the per-column density α(L, Aᵢ, ε)
// converges to the full-data curve as the subsets grow — the observation
// that makes §VII's low-overhead tuning sound. ε is fixed at 0.1 as in the
// paper.
type Fig6Result struct {
	Epsilon  float64
	Datasets []Fig6Dataset
}

// Fig6 runs the subset sweep on all three presets.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.filled()
	const eps = 0.1
	res := &Fig6Result{Epsilon: eps}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		n := u.A.Cols
		// Six nested subset sizes ending at the full data, as in the paper.
		sizes := []int{}
		for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 1} {
			s := int(frac * float64(n))
			if s < 8 {
				s = 8
			}
			if len(sizes) == 0 || s > sizes[len(sizes)-1] {
				sizes = append(sizes, s)
			}
		}
		// Cap the L sweep so the larger subsets remain in the estimator's
		// valid regime (L well below the subset size): the smaller subsets
		// are *expected* to drift at large L — that is the figure's story —
		// but the convergence claim needs the top curves to be sound.
		lMin := tune.EstimateLMin(u.A, eps, cfg.Seed)
		maxL := sizes[len(sizes)-2] / 2
		if maxL <= lMin {
			maxL = lMin * 2
		}
		if maxL > n {
			maxL = n
		}
		// Start above the knee: right at L_min the density estimate is
		// dominated by feasibility noise on every subset, which is not the
		// quantity the figure studies.
		loL := lMin + lMin/2
		if loL >= maxL {
			loL = maxL - 1
		}
		if loL < 4 {
			loL = 4
		}
		ds := Fig6Dataset{Name: name, N: n, Ls: geometric(loL, maxL, 5)}

		// Nested subsets: a fixed permutation prefix keeps Aᵢ ⊂ Aᵢ₊₁.
		perm := rng.New(cfg.Seed ^ hashName(name) ^ 0xf16).Perm(n)
		for _, size := range sizes {
			sub := u.A.ColSlice(perm[:size])
			c := Fig6Curve{SubsetSize: size}
			for _, l := range ds.Ls {
				li := l
				if li > size {
					li = size
				}
				t, err := exd.Fit(sub, exd.Params{
					L: li, Epsilon: eps, Workers: cfg.Workers,
					Seed: cfg.Seed + uint64(l),
				})
				if err != nil {
					return nil, err
				}
				c.Alpha = append(c.Alpha, t.Alpha())
			}
			ds.Curves = append(ds.Curves, c)
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// FinalDiscrepancy returns, for dataset di, the maximum relative difference
// between the smallest-subset curve and the full-data curve — the
// "estimation error from 10% of the data" number the paper quotes (<14%).
func (r *Fig6Result) FinalDiscrepancy(di int) float64 {
	ds := r.Datasets[di]
	first, last := ds.Curves[0], ds.Curves[len(ds.Curves)-1]
	worst := 0.0
	for i := range last.Alpha {
		if last.Alpha[i] == 0 {
			continue
		}
		d := abs(first.Alpha[i]-last.Alpha[i]) / last.Alpha[i]
		if d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Table renders one block per dataset: a row per L, a column per subset.
func (r *Fig6Result) Table() string {
	out := fmt.Sprintf("Fig.6 — alpha(L) estimated from nested subsets (eps=%.2f)\n", r.Epsilon)
	for di, ds := range r.Datasets {
		header := []string{"L"}
		for _, c := range ds.Curves {
			header = append(header, fmt.Sprintf("|A|=%d", c.SubsetSize))
		}
		tw := &tableWriter{header: header}
		for i, l := range ds.Ls {
			row := []string{fmt.Sprintf("%d", l)}
			for _, c := range ds.Curves {
				row = append(row, fmt.Sprintf("%.3f", c.Alpha[i]))
			}
			tw.addRow(row...)
		}
		out += fmt.Sprintf("\n%s (N=%d, worst small-subset discrepancy %.1f%%)\n%s",
			ds.Name, ds.N, 100*r.FinalDiscrepancy(di), tw.String())
	}
	return out
}
