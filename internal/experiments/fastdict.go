package experiments

import (
	"fmt"
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/faust"
	"extdict/internal/rng"
	"extdict/internal/tune"
)

// FastDictCell is one (dataset, platform) comparison of the three operator
// families on a single Gram iteration: the untransformed AᵀA, the ExD
// operator with its dense dictionary, and the FastDict operator applying
// the same dictionary as a sparse-factor chain.
type FastDictCell struct {
	Platform cluster.Topology
	// IterTime maps family name → modeled seconds for one Gram iteration
	// (cluster.Stats.ModeledTime, the runtime side of the Eq. 2 critical
	// path the lint contracts prove).
	IterTime map[string]float64
	// Resident maps family name → the worst rank's peak resident set in
	// bytes for one iteration.
	Resident map[string]int64
	// Improvement is FastDict's runtime speedup over the untransformed
	// iteration — the fig7-comparable headline (fig7 reports the same
	// ratio for ExtDict).
	Improvement float64
	// VsExD is FastDict's runtime speedup over the ExD iteration: the
	// chain's win over the dense dictionary it factors.
	VsExD float64
	// ChosenL is the ExD dictionary size tuned for this platform; both
	// transformed operators run at it.
	ChosenL int
	// BreakEvenReuse is the modeled iteration count after which the
	// one-time PALM factorization has amortized against the per-iteration
	// saving (0 when the chain does not save — fastdict then never wins).
	BreakEvenReuse int
}

// FastDictDataset holds one dataset's platform sweep plus the
// platform-independent factorization quality.
type FastDictDataset struct {
	Name string
	// RelError is ‖D − S₁·…·S_k‖_F/‖D‖_F for the sweep's worst cell — the
	// reconstruction error the chain trades for its speedup.
	RelError float64
	// NNZRatio is nnz(chain)/(M·L) for that factorization: the structural
	// compression driving both the flop and the byte saving.
	NNZRatio float64
	Cells    []FastDictCell
}

// FastDictResult extends the Fig. 7 methodology to the FastDict operator
// family: per (dataset, platform) cell, one simulated Gram iteration
// through AᵀA, ExD, and the factor chain, all at the platform-tuned L.
// Where Fig. 7 reports ExtDict's improvement over the untransformed
// iteration, this reports FastDict's — the chain replaces ExD's dense
// M×L dictionary hop with Σ nnz(Sᵢ) sparse entries, so its improvement
// must dominate Fig. 7's on every cell where the dictionary term matters.
type FastDictResult struct {
	Epsilon  float64
	Datasets []FastDictDataset
}

// FastDictFamilies lists the comparison columns in display order.
var FastDictFamilies = []string{"AᵀA", "ExtDict", "FastDict"}

// FastDict runs the sweep.
func FastDict(cfg Config) (*FastDictResult, error) {
	cfg = cfg.filled()
	const eps = 0.1
	res := &FastDictResult{Epsilon: eps}
	for _, name := range dataset.PresetNames() {
		u, err := loadPreset(name, cfg)
		if err != nil {
			return nil, err
		}
		n := u.A.Cols
		x := make([]float64, n)
		rr := rng.New(cfg.Seed + 17)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		y := make([]float64, n)

		ds := FastDictDataset{Name: name}
		for _, plat := range cluster.PaperPlatforms() {
			cell := FastDictCell{
				Platform: plat.Topology,
				IterTime: map[string]float64{},
				Resident: map[string]int64{},
			}

			dense := dist.NewDenseGram(cluster.NewComm(plat), u.A)
			st := dense.Apply(x, y)
			cell.IterTime["AᵀA"] = st.ModeledTime
			cell.Resident["AᵀA"] = st.MaxResident

			tr, _, err := tune.TuneAndFit(u.A, plat, tune.Config{
				Epsilon: eps, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			cell.ChosenL = tr.L()
			exdOp, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
			if err != nil {
				return nil, err
			}
			stE := exdOp.Apply(x, y)
			cell.IterTime["ExtDict"] = stE.ModeledTime
			cell.Resident["ExtDict"] = stE.MaxResident

			// Factorize THIS platform's tuned dictionary into the default
			// chain (k=4 at 4× compression) and run the same iteration
			// through it.
			fd, err := faust.Factorize(tr.D, faust.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			fastOp, err := dist.NewFastGram(cluster.NewComm(plat), fd, tr.C)
			if err != nil {
				return nil, err
			}
			stF := fastOp.Apply(x, y)
			cell.IterTime["FastDict"] = stF.ModeledTime
			cell.Resident["FastDict"] = stF.MaxResident

			cell.Improvement = cell.IterTime["AᵀA"] / cell.IterTime["FastDict"]
			cell.VsExD = cell.IterTime["ExtDict"] / cell.IterTime["FastDict"]

			// The amortization edge the tuner decides on: factorization
			// flops at platform flop time against the per-iteration saving.
			plan := faust.NewPlan(tr.D.Rows, tr.D.Cols, 0, 0)
			if saving := cell.IterTime["ExtDict"] - cell.IterTime["FastDict"]; saving > 0 {
				prep := float64(plan.FactorizeFlops(0, 0)) * plat.Cost.FlopTime
				cell.BreakEvenReuse = int(prep/saving) + 1
			}

			// Record the sweep's worst factorization quality (the hardest
			// tuned dictionary for the fixed 4× budget).
			if rel := fd.RelError(tr.D); rel > ds.RelError {
				ds.RelError = rel
				ds.NNZRatio = float64(fd.NNZ()) / float64(tr.D.Rows*tr.D.Cols)
			}
			ds.Cells = append(ds.Cells, cell)
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// Table renders one block per dataset.
func (r *FastDictResult) Table() string {
	out := fmt.Sprintf("FastDict — Gram-iteration runtime by operator family (eps=%.2f)\n", r.Epsilon)
	for _, ds := range r.Datasets {
		header := []string{"platform", "L*"}
		for _, m := range FastDictFamilies {
			header = append(header, m+"(µs)")
		}
		header = append(header, "vs AᵀA", "vs ExD", "break-even")
		tw := &tableWriter{header: header}
		for _, c := range ds.Cells {
			row := []string{c.Platform.String(), fmt.Sprintf("%d", c.ChosenL)}
			for _, m := range FastDictFamilies {
				row = append(row, fmt.Sprintf("%.1f", c.IterTime[m]*1e6))
			}
			be := "never"
			if c.BreakEvenReuse > 0 {
				be = fmt.Sprintf("%d iters", c.BreakEvenReuse)
			}
			row = append(row, fmt.Sprintf("%.2fx", c.Improvement), fmt.Sprintf("%.2fx", c.VsExD), be)
			tw.addRow(row...)
		}
		out += fmt.Sprintf("\n%s  (chain rel-error %.3f, nnz ratio %.3f = %.1fx compression)\n%s",
			ds.Name, ds.RelError, ds.NNZRatio, 1/math.Max(ds.NNZRatio, 1e-9), tw.String())
	}
	return out
}
