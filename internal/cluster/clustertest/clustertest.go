// Package clustertest provides shared helpers for tests that drive the
// simulated cluster runtime, from any package. Its centerpiece is the
// goroutine-dump watchdog that used to live privately in the cluster
// package's tests: collective bugs tend to present as a rank parked forever
// in a rendezvous, which under CI looks like a silent suite hang; the
// watchdog turns that into an actionable failure naming the stuck ranks.
package clustertest

import (
	"runtime"
	"testing"
	"time"
)

// Timeout is the watchdog deadline. It is generous: every collective in
// the repository's tests completes in microseconds, so hitting it means a
// wedged rendezvous, not a slow machine.
const Timeout = 30 * time.Second

// Watchdog runs fn and fails the test with a full goroutine dump if fn
// does not return within Timeout. Wrap any code that enters Comm.Run —
// directly or through a dist operator or solver — so a deadlocked
// collective surfaces as a diagnosable failure instead of a hang.
func Watchdog(t testing.TB, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(Timeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("cluster run did not complete within %v; goroutine dump:\n%s",
			Timeout, buf[:n])
	}
}
