package cluster

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Nodes: 0, CoresPerNode: 4}).Validate(); err == nil {
		t.Fatal("accepted 0 nodes")
	}
	if err := (Topology{Nodes: 2, CoresPerNode: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
	tp := Topology{Nodes: 2, CoresPerNode: 8}
	if tp.P() != 16 || tp.String() != "2x8" {
		t.Fatalf("P=%d String=%s", tp.P(), tp.String())
	}
}

func TestPaperPlatforms(t *testing.T) {
	ps := PaperPlatforms()
	if len(ps) != 4 {
		t.Fatalf("want 4 platforms, got %d", len(ps))
	}
	wantP := []int{1, 4, 16, 64}
	for i, p := range ps {
		if p.Topology.P() != wantP[i] {
			t.Fatalf("platform %d has P=%d, want %d", i, p.Topology.P(), wantP[i])
		}
	}
	// Multi-node platforms must have a strictly higher word cost.
	if !(ps[2].WordTime() > ps[1].WordTime()) {
		t.Fatal("inter-node word time not higher than intra-node")
	}
	if ps[0].RbfTime() <= 0 || ps[3].RbfEnergy() <= 0 {
		t.Fatal("R_bf ratios must be positive")
	}
}

func TestRanksAndNodes(t *testing.T) {
	c := NewComm(NewPlatform(2, 3))
	var nodes [6]int32
	c.Run(func(r *Rank) {
		atomic.StoreInt32(&nodes[r.ID], int32(r.Node()))
		if r.P() != 6 {
			t.Errorf("P()=%d", r.P())
		}
	})
	want := []int32{0, 0, 0, 1, 1, 1}
	for i, w := range want {
		if nodes[i] != w {
			t.Fatalf("rank %d on node %d, want %d", i, nodes[i], w)
		}
	}
}

func TestReduceSumsToRoot(t *testing.T) {
	c := NewComm(NewPlatform(1, 5))
	results := make([][]float64, 5)
	c.Run(func(r *Rank) {
		vec := []float64{float64(r.ID), 1, -float64(r.ID)}
		r.Reduce(vec, 2)
		results[r.ID] = vec
	})
	// Root (rank 2) holds [0+1+2+3+4, 5, -(0+1+2+3+4)] = [10, 5, -10].
	if results[2][0] != 10 || results[2][1] != 5 || results[2][2] != -10 {
		t.Fatalf("root result %v", results[2])
	}
	// Non-roots keep their own contribution.
	if results[0][0] != 0 || results[4][0] != 4 {
		t.Fatal("non-root buffers were modified")
	}
}

func TestBroadcastDistributes(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	results := make([][]float64, 4)
	c.Run(func(r *Rank) {
		vec := make([]float64, 3)
		if r.ID == 1 {
			vec = []float64{7, 8, 9}
		}
		r.Broadcast(vec, 1)
		results[r.ID] = vec
	})
	for id, v := range results {
		if v[0] != 7 || v[1] != 8 || v[2] != 9 {
			t.Fatalf("rank %d received %v", id, v)
		}
	}
}

func TestAllreduce(t *testing.T) {
	c := NewComm(NewPlatform(2, 2))
	results := make([][]float64, 4)
	st := c.Run(func(r *Rank) {
		vec := []float64{1, float64(r.ID)}
		r.Allreduce(vec)
		results[r.ID] = vec
	})
	for id, v := range results {
		if v[0] != 4 || v[1] != 6 {
			t.Fatalf("rank %d allreduce %v", id, v)
		}
	}
	if st.Phases != 2 {
		t.Fatalf("Allreduce charged %d phases, want 2", st.Phases)
	}
}

func TestSequentialCollectivesNoCrosstalk(t *testing.T) {
	// Back-to-back collectives with different payloads: a regression test
	// for phase data leaking between rounds.
	c := NewComm(NewPlatform(1, 8))
	const rounds = 50
	fail := make(chan string, 8)
	c.Run(func(r *Rank) {
		for k := 0; k < rounds; k++ {
			vec := []float64{float64(k*100 + r.ID)}
			r.Reduce(vec, 0)
			if r.ID == 0 {
				want := float64(k*100*8 + 28) // Σ ids = 28
				if vec[0] != want {
					fail <- "reduce round mismatch"
					return
				}
			}
			//lint:ignore collective the early return above only fires when the test is already failing
			r.Broadcast(vec, 0)
			if vec[0] != float64(k*100*8+28) {
				fail <- "broadcast round mismatch"
				return
			}
		}
	})
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestFlopAccounting(t *testing.T) {
	c := NewComm(NewPlatform(1, 3))
	st := c.Run(func(r *Rank) {
		r.AddFlops(int64(100 * (r.ID + 1)))
		r.Barrier()
		r.AddFlops(10)
	})
	if st.TotalFlops != 100+200+300+30 {
		t.Fatalf("TotalFlops=%d", st.TotalFlops)
	}
	if st.MaxFlops != 310 {
		t.Fatalf("MaxFlops=%d", st.MaxFlops)
	}
	if st.FlopsPerRank[2] != 310 {
		t.Fatalf("rank2 flops=%d", st.FlopsPerRank[2])
	}
}

func TestModeledTimeBulkSynchronous(t *testing.T) {
	// One phase: time = max(flops)·c_f + words·c_w + latency·hops,
	// plus the tail after the collective.
	p := NewPlatform(1, 4)
	c := NewComm(p)
	st := c.Run(func(r *Rank) {
		r.AddFlops(int64(1000 * (r.ID + 1))) // max 4000
		vec := make([]float64, 8)
		r.Reduce(vec, 0)
		r.AddFlops(500) // uniform tail
	})
	hops := math.Ceil(math.Log2(4))
	want := 4000*p.Cost.FlopTime + 8*p.WordTime() + hops*p.Latency() + 500*p.Cost.FlopTime
	if math.Abs(st.ModeledTime-want)/want > 1e-12 {
		t.Fatalf("ModeledTime=%v, want %v", st.ModeledTime, want)
	}
	if st.PathWords != 8 || st.TotalWords != 8*3 {
		t.Fatalf("words: path=%d total=%d", st.PathWords, st.TotalWords)
	}
}

func TestModeledEnergy(t *testing.T) {
	p := NewPlatform(2, 2)
	c := NewComm(p)
	st := c.Run(func(r *Rank) {
		r.AddFlops(100)
		vec := make([]float64, 4)
		r.Reduce(vec, 0)
	})
	want := 400*p.Cost.FlopEnergy + float64(4*3)*p.WordEnergy()
	if math.Abs(st.ModeledEnergy-want)/want > 1e-12 {
		t.Fatalf("energy %v, want %v", st.ModeledEnergy, want)
	}
}

func TestSingleRankNoCommCost(t *testing.T) {
	p := NewPlatform(1, 1)
	c := NewComm(p)
	st := c.Run(func(r *Rank) {
		r.AddFlops(1234)
		vec := []float64{1}
		r.Allreduce(vec)
		if vec[0] != 1 {
			t.Error("single-rank allreduce changed data")
		}
	})
	if st.TotalWords != 0 {
		t.Fatalf("single rank moved %d words", st.TotalWords)
	}
	if st.TotalFlops != 1234 {
		t.Fatalf("flops %d", st.TotalFlops)
	}
}

func TestCommReusableAcrossRuns(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	st1 := c.Run(func(r *Rank) { r.AddFlops(10); r.Barrier() })
	st2 := c.Run(func(r *Rank) { r.AddFlops(20); r.Barrier() })
	if st1.TotalFlops != 20 || st2.TotalFlops != 40 {
		t.Fatalf("stats leaked across runs: %d, %d", st1.TotalFlops, st2.TotalFlops)
	}
	if st1.Phases != 1 || st2.Phases != 1 {
		t.Fatal("phase counts leaked across runs")
	}
}

func TestWallClockMeasured(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	st := c.Run(func(r *Rank) {
		s := 0.0
		for i := 0; i < 100000; i++ {
			s += float64(i)
		}
		_ = s
	})
	if st.Wall <= 0 {
		t.Fatal("wall clock not measured")
	}
}

func BenchmarkAllreduce64(b *testing.B) {
	c := NewComm(NewPlatform(8, 8))
	vec := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(func(r *Rank) {
			local := make([]float64, len(vec))
			r.Allreduce(local)
		})
	}
}
