package cluster

import (
	"runtime"
	"testing"
	"time"
)

// watchdogTimeout is generous: every collective in these tests completes in
// microseconds, so a second means a wedged rendezvous, not a slow machine.
const watchdogTimeout = 30 * time.Second

// watchdog runs fn and fails the test with a full goroutine dump if fn does
// not return within the timeout. Collective bugs tend to present as a rank
// parked forever in a rendezvous; under CI that used to look like a silent
// test-suite hang. The dump names the stuck ranks so the failure is
// actionable.
func watchdog(t *testing.T, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(watchdogTimeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("cluster run did not complete within %v; goroutine dump:\n%s",
			watchdogTimeout, buf[:n])
	}
}
