package cluster

import (
	"testing"

	"extdict/internal/cluster/clustertest"
)

// watchdog is this package's shorthand for the shared goroutine-dump
// watchdog; see clustertest.Watchdog for the rationale. dist and solver
// tests use the clustertest package directly.
func watchdog(t *testing.T, fn func()) {
	t.Helper()
	clustertest.Watchdog(t, fn)
}
