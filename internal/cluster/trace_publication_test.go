package cluster

import (
	"sync"
	"testing"
)

// TestTraceStatsPublicationUnderFaults closes the gap between what the
// sharedstate analyzer proves statically and what the race detector
// observes dynamically, for the two Comm publication patterns the analyzer
// accepts:
//
//   - EnableTrace is a pre-launch freeze: c.tracing is written before any
//     rank goroutine of the next Run launches and never during one. The
//     test arms it through sync.OnceFunc — the idiomatic once-published
//     form — between Runs of a fault-armed communicator.
//   - Stats is a channel hand-off: each Run's returned Stats (including
//     its Trace slice) is transferred to a consumer goroutine that folds
//     it concurrently with the next Run. If Run retained or kept mutating
//     any slice it returns, -race would flag the consumer's reads.
//
// The armed FaultPlan keeps the rank goroutines' schedules adversarial:
// injected slowdowns and corruption reorder rendezvous arrivals while the
// publications happen.
func TestTraceStatsPublicationUnderFaults(t *testing.T) {
	cfg := FaultConfig{
		P: 4, Horizon: 8,
		Slowdowns: 3, Corruptions: 2,
		MaxDelay: 0.25, MaxDelta: 0.1, MaxWord: 8,
	}
	c := NewComm(NewPlatform(1, 4))
	c.InstallFaultPlan(RandomFaultPlan(42, cfg))
	arm := sync.OnceFunc(c.EnableTrace)

	results := make(chan Stats, 1)
	var consumed sync.WaitGroup
	consumed.Add(1)
	var total Stats
	go func() {
		defer consumed.Done()
		for st := range results {
			total.Accumulate(st)
		}
	}()

	watchdog(t, func() {
		for it := 0; it < 3; it++ {
			arm() // published exactly once, before any rank launches
			results <- c.Run(allreduceBody(2, 8))
		}
	})
	close(results)
	consumed.Wait()

	if len(total.Trace) == 0 {
		t.Fatal("tracing was armed but no phase trace came back")
	}
	// Same plan and workload as TestFaultReplayBitIdenticalStats: the
	// schedule must actually have fired while the publications happened.
	if total.InjectedDelay == 0 {
		t.Fatal("schedule injected no delay; test exercises nothing")
	}
	if total.CorruptWords == 0 {
		t.Fatal("schedule corrupted no words; test exercises nothing")
	}
}
