// Package chaos is the deterministic chaos-test harness for the
// fault-tolerant cluster runtime: every scenario derives its problem data,
// its fault schedule, and its solver settings from a single seed, runs the
// solve twice — once fault-free, once under the schedule with the solver
// Supervisor absorbing crashes — and exposes both results for property
// tests to compare. Because every injection in cluster.FaultPlan is keyed
// to the communicator's fault clock and every random draw flows through
// internal/rng, re-running a scenario from the same seed replays the whole
// experiment bit-for-bit, statistics included.
package chaos

import (
	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/solver"
)

// dataStream decouples the problem-data RNG from the fault-plan RNG so the
// two draws never alias even though both start from the scenario seed.
const dataStream = 0x9e3779b97f4a7c15

// Config bounds the random fault schedule a scenario draws and the cluster
// it runs on.
type Config struct {
	// P is the starting rank count.
	P int
	// Crashes, Slowdowns and Corruptions count the injected faults of
	// each kind.
	Crashes, Slowdowns, Corruptions int
	// Horizon is the fault-clock range the schedule is drawn over;
	// faults landing after the solve converges simply never fire.
	Horizon int64
	// MaxDelay bounds each slowdown's virtual-time delay in seconds.
	MaxDelay float64
	// MaxDelta bounds each corruption's |additive perturbation|. It is
	// kept small by default so a perturbed iteration stays inside the
	// solvers' basin of attraction and convergence re-tightens.
	MaxDelta float64
}

// DefaultConfig is the chaos suite's standard fault mix: one crash (so the
// supervisor must shrink and resume), a few slowdowns (exercising the
// virtual-time critical path), and a few small corruptions (exercising
// transient-error recovery) over a horizon covering most of a solve.
func DefaultConfig() Config {
	return Config{
		P: 4, Crashes: 1, Slowdowns: 3, Corruptions: 2,
		Horizon: 60, MaxDelay: 0.25, MaxDelta: 0.02,
	}
}

// Plan derives the seed's deterministic fault schedule.
func (c Config) Plan(seed uint64) *cluster.FaultPlan {
	return cluster.RandomFaultPlan(seed, cluster.FaultConfig{
		P:       c.P,
		Horizon: c.Horizon,
		Crashes: c.Crashes, Slowdowns: c.Slowdowns, Corruptions: c.Corruptions,
		MaxDelay: c.MaxDelay, MaxDelta: c.MaxDelta,
		MaxWord: 1 << 20,
	})
}

// supervisorOpts is the fixed supervision policy chaos scenarios run
// under; a deterministic policy is part of what makes replays bit-exact.
func supervisorOpts() solver.SupervisorOpts {
	return solver.SupervisorOpts{MaxRetries: 3, CheckpointEvery: 10, BackoffBase: 1}
}

// LassoScenario is one seeded LASSO chaos experiment.
type LassoScenario struct {
	// Cfg is the fault mix the scenario draws from.
	Cfg Config
	// Seed drives both the problem data and the fault schedule.
	Seed uint64

	a    *mat.Dense
	aty  []float64
	yn2  float64
	opts solver.LassoOpts
}

// NewLassoScenario builds the seed's LASSO problem: a dense consistent
// system small enough to solve tightly, with a unique minimizer so the
// fault-free and recovered answers must coincide.
func NewLassoScenario(seed uint64, cfg Config) *LassoScenario {
	r := rng.New(seed ^ dataStream)
	const m, n = 40, 12
	a := mat.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	y := make([]float64, m)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	return &LassoScenario{
		Cfg: cfg, Seed: seed,
		a:   a,
		aty: a.MulVecT(y, nil),
		yn2: mat.Dot(y, y),
		// Tight tolerance: both runs must land on the minimizer to well
		// under the comparison tolerance before the patience rule stops
		// them.
		opts: solver.LassoOpts{Lambda: 0.1, MaxIters: 3000, Tol: 1e-12},
	}
}

// FaultFree solves the scenario on a pristine communicator.
func (s *LassoScenario) FaultFree() solver.LassoResult {
	op := dist.NewDenseGram(cluster.NewComm(cluster.NewPlatform(1, s.Cfg.P)), s.a)
	return solver.Lasso(op, s.aty, s.yn2, s.opts)
}

// Faulted solves the scenario under the seed's fault schedule with the
// Supervisor absorbing crashes. Each call builds a fresh communicator and
// arms the same plan, so calling it twice replays the experiment exactly.
func (s *LassoScenario) Faulted() (solver.LassoResult, solver.Recovery, error) {
	comm := cluster.NewComm(cluster.NewPlatform(1, s.Cfg.P))
	comm.InstallFaultPlan(s.Cfg.Plan(s.Seed))
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, s.a) }
	return solver.SupervisedLasso(comm, build, s.aty, s.yn2, s.opts, supervisorOpts())
}

// PowerScenario is one seeded Power-method chaos experiment.
type PowerScenario struct {
	// Cfg is the fault mix the scenario draws from.
	Cfg Config
	// Seed drives both the problem data and the fault schedule.
	Seed uint64

	a    *mat.Dense
	opts solver.PowerOpts
}

// NewPowerScenario builds the seed's PCA problem: a matrix with a known,
// well-separated spectrum (A = U·diag(σ)·Vᵀ) so the power iteration
// converges fast and every eigenpair is simple — the recovered spectrum
// has one right answer to match.
func NewPowerScenario(seed uint64, cfg Config) *PowerScenario {
	r := rng.New(seed ^ dataStream)
	const m, n = 30, 16
	sigma := []float64{4, 2, 1}
	u := orthonormalCols(r, m, len(sigma))
	v := orthonormalCols(r, n, len(sigma))
	a := mat.NewDense(m, n)
	for k, s := range sigma {
		for i := 0; i < m; i++ {
			ui := u.At(i, k) * s
			row := a.Row(i)
			for j := 0; j < n; j++ {
				row[j] += ui * v.At(j, k)
			}
		}
	}
	return &PowerScenario{
		Cfg: cfg, Seed: seed,
		a:    a,
		opts: solver.PowerOpts{Components: 3, MaxIters: 500, Tol: 1e-12, Seed: seed},
	}
}

// FaultFree solves the scenario on a pristine communicator.
func (s *PowerScenario) FaultFree() solver.PowerResult {
	op := dist.NewDenseGram(cluster.NewComm(cluster.NewPlatform(1, s.Cfg.P)), s.a)
	return solver.PowerMethod(op, s.opts)
}

// Faulted solves the scenario under the seed's fault schedule with the
// Supervisor absorbing crashes; see LassoScenario.Faulted for the replay
// contract.
func (s *PowerScenario) Faulted() (solver.PowerResult, solver.Recovery, error) {
	comm := cluster.NewComm(cluster.NewPlatform(1, s.Cfg.P))
	comm.InstallFaultPlan(s.Cfg.Plan(s.Seed))
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, s.a) }
	return solver.SupervisedPower(comm, build, s.opts, supervisorOpts())
}

// orthonormalCols builds an m×k matrix with orthonormal columns by
// Gram-Schmidt over Gaussian draws (two passes for numerical safety).
func orthonormalCols(r *rng.RNG, m, k int) *mat.Dense {
	b := mat.NewDense(m, k)
	col := make([]float64, m)
	for j := 0; j < k; j++ {
		for i := range col {
			col[i] = r.NormFloat64()
		}
		for pass := 0; pass < 2; pass++ {
			for q := 0; q < j; q++ {
				var d float64
				for i := 0; i < m; i++ {
					d += col[i] * b.At(i, q)
				}
				for i := 0; i < m; i++ {
					col[i] -= d * b.At(i, q)
				}
			}
		}
		mat.ScaleVec(1/mat.Norm2(col), col)
		b.SetCol(j, col)
	}
	return b
}
