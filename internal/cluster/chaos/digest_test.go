package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extdict/internal/cluster/clustertest"
	"extdict/internal/solver"
)

// TestChaosReplayDigest pins a SHA-256 digest of every seed's faulted
// solve — solution bits, recovery record, and every Stats counter except
// wall time — against a committed golden. The CI determinism matrix runs
// this test at GOMAXPROCS=1, 2, and NumCPU: all three compare to the same
// golden, so the 24-seed replay is proven bit-identical across serial,
// dual, and fully parallel scheduling, not merely stable within one
// process. Regenerate after a deliberate numeric change with
//
//	UPDATE_CHAOS_DIGEST=1 go test -run TestChaosReplayDigest ./internal/cluster/chaos/
func TestChaosReplayDigest(t *testing.T) {
	h := sha256.New()
	lassoCfg := DefaultConfig()
	powerCfg := DefaultConfig()
	powerCfg.Horizon = 40 // power solves converge in ~50 phases
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		var lres solver.LassoResult
		var pres solver.PowerResult
		var lrec, prec solver.Recovery
		var lerr, perr error
		clustertest.Watchdog(t, func() {
			lres, lrec, lerr = NewLassoScenario(seed, lassoCfg).Faulted()
			pres, prec, perr = NewPowerScenario(seed, powerCfg).Faulted()
		})
		if lerr != nil || perr != nil {
			t.Fatalf("seed %d: supervised solve failed: %v / %v", seed, lerr, perr)
		}
		lres.Stats.Wall, pres.Stats.Wall = 0, 0
		fmt.Fprintf(h, "lasso %d %+v %+v\n", seed, lres, lrec)
		// Eigenvectors is a nested pointer: hash the matrix it points at,
		// not the address fmt would print for the field.
		fmt.Fprintf(h, "power %d eigvecs %+v\n", seed, *pres.Eigenvectors)
		pres.Eigenvectors = nil
		fmt.Fprintf(h, "power %d %+v %+v\n", seed, pres, prec)
	}
	got := hex.EncodeToString(h.Sum(nil))

	golden := filepath.Join("testdata", "replay.digest")
	if os.Getenv("UPDATE_CHAOS_DIGEST") != "" {
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden digest (%v); record one with UPDATE_CHAOS_DIGEST=1", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("chaos replay digest drifted:\n  got  %s\n  want %s\n"+
			"a numeric or schedule change altered the replayed results; if deliberate, regenerate with UPDATE_CHAOS_DIGEST=1",
			got, strings.TrimSpace(string(want)))
	}
}
