package chaos

import (
	"math"
	"reflect"
	"testing"

	"extdict/internal/cluster/clustertest"
	"extdict/internal/solver"
)

// chaosSeeds is how many independent fault schedules each property test
// replays; the acceptance bar is ≥ 20.
const chaosSeeds = 24

// tol is the agreement tolerance between fault-free and recovered answers.
const tol = 1e-6

func TestLassoChaosProperty(t *testing.T) {
	cfg := DefaultConfig()
	restarts, delays, corruptions := 0, 0, 0
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		s := NewLassoScenario(seed, cfg)
		base := s.FaultFree()

		var res, res2 solver.LassoResult
		var rec, rec2 solver.Recovery
		var err, err2 error
		clustertest.Watchdog(t, func() {
			res, rec, err = s.Faulted()
			res2, rec2, err2 = s.Faulted()
		})
		if err != nil || err2 != nil {
			t.Fatalf("seed %d: supervised solve failed: %v / %v", seed, err, err2)
		}

		// Property 1: the recovered answer matches the fault-free answer.
		for i := range res.X {
			if d := math.Abs(res.X[i] - base.X[i]); d > tol {
				t.Fatalf("seed %d: recovered x[%d] off by %g from fault-free", seed, i, d)
			}
		}

		// Property 2: replaying the same seed is bit-identical — the whole
		// result (iterates, history, and every Stats counter including
		// modeled time, injected delay and corrupted words) and the
		// recovery record. Only wall time may vary.
		res.Stats.Wall, res2.Stats.Wall = 0, 0
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("seed %d: replay diverged:\n%+v\n%+v", seed, res.Stats, res2.Stats)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("seed %d: recovery record diverged: %+v vs %+v", seed, rec, rec2)
		}

		restarts += rec.Restarts
		delays += int(res.Stats.InjectedDelay * 1e9)
		corruptions += int(res.Stats.CorruptWords)
	}
	// The suite must actually have exercised every fault kind somewhere
	// across the seeds, or the properties above prove nothing.
	if restarts == 0 {
		t.Fatal("no schedule crashed a rank: recovery was never exercised")
	}
	if delays == 0 {
		t.Fatal("no schedule injected a slowdown")
	}
	if corruptions == 0 {
		t.Fatal("no schedule corrupted a word")
	}
}

func TestPowerChaosProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 40 // power solves converge in ~50 phases
	restarts := 0
	for seed := uint64(1); seed <= chaosSeeds; seed++ {
		s := NewPowerScenario(seed, cfg)
		base := s.FaultFree()

		var res, res2 solver.PowerResult
		var rec, rec2 solver.Recovery
		var err, err2 error
		clustertest.Watchdog(t, func() {
			res, rec, err = s.Faulted()
			res2, rec2, err2 = s.Faulted()
		})
		if err != nil || err2 != nil {
			t.Fatalf("seed %d: supervised solve failed: %v / %v", seed, err, err2)
		}

		// Property 1: the recovered spectrum matches the fault-free one;
		// eigenvectors are defined up to sign, so compare alignment.
		for k := range base.Eigenvalues {
			if d := math.Abs(res.Eigenvalues[k] - base.Eigenvalues[k]); d > tol {
				t.Fatalf("seed %d: eigenvalue %d off by %g from fault-free", seed, k, d)
			}
			var dot float64
			for i := 0; i < base.Eigenvectors.Rows; i++ {
				dot += res.Eigenvectors.At(i, k) * base.Eigenvectors.At(i, k)
			}
			if math.Abs(math.Abs(dot)-1) > tol {
				t.Fatalf("seed %d: eigenvector %d misaligned: |dot| = %g", seed, k, math.Abs(dot))
			}
		}

		// Property 2: bit-identical replay.
		res.Stats.Wall, res2.Stats.Wall = 0, 0
		if !reflect.DeepEqual(res, res2) {
			t.Fatalf("seed %d: replay diverged:\n%+v\n%+v", seed, res.Stats, res2.Stats)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("seed %d: recovery record diverged: %+v vs %+v", seed, rec, rec2)
		}
		restarts += rec.Restarts
	}
	if restarts == 0 {
		t.Fatal("no schedule crashed a rank: recovery was never exercised")
	}
}

func TestScenarioDataIndependentOfFaultMix(t *testing.T) {
	// The problem data must derive from the seed alone, not the fault
	// config, or comparing runs across configs would be meaningless.
	a := NewLassoScenario(3, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Crashes, cfg.Corruptions = 0, 0
	b := NewLassoScenario(3, cfg)
	if !reflect.DeepEqual(a.a, b.a) || !reflect.DeepEqual(a.aty, b.aty) {
		t.Fatal("problem data depends on the fault config")
	}
}
