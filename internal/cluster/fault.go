package cluster

import (
	"fmt"
	"sort"
	"sync"

	"extdict/internal/rng"
)

// This file implements deterministic fault injection for the simulated
// cluster: a seeded FaultPlan installed on a Comm kills ranks at chosen
// collective indices, slows ranks down by virtual-time delays (counted in
// the modeled cost, never via wall clocks), and corrupts words in Reduce
// payloads. Every injection is keyed to the communicator's fault clock — a
// monotone count of completed collective phases since the plan was armed —
// so a given seed replays bit-identically regardless of goroutine
// scheduling. The Supervisor in internal/solver builds on the crash side:
// it catches the RankCrash abort, shrinks the communicator to the
// survivors, and re-executes from a checkpoint.

// FaultKind classifies an injected fault.
type FaultKind uint8

const (
	// FaultCrash kills the target rank at the start of the target
	// collective: as soon as any rank enters the phase the abort protocol
	// fires with a RankCrash naming the scheduled rank, every peer is
	// released, and Run re-panics with the RankCrash value. Firing on
	// first phase entry (rather than on the dying rank's own arrival)
	// keeps the injection independent of goroutine arrival order.
	FaultCrash FaultKind = iota
	// FaultSlowdown charges the target rank Delay virtual seconds of extra
	// compute in the target phase. The delay flows through the
	// bulk-synchronous accounting exactly like slow flops — it can move the
	// phase's critical path — and is totaled in Stats.InjectedDelay. No
	// wall-clock sleeping is involved, so runs stay deterministic.
	FaultSlowdown
	// FaultCorrupt perturbs one word of the target rank's Reduce
	// contribution: the value summed into the reduction is read as
	// contribution+Delta. The rank's own buffer is not modified (the
	// corruption models a transmission error, not memory corruption).
	// Corruptions target reductions, so the fault fires at the first
	// Reduce whose fault-clock index is at or after Phase — a phase index
	// landing on a broadcast or barrier defers to the next reduction.
	// Corrupted words are totaled in Stats.CorruptWords.
	FaultCorrupt
)

// String names the fault kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSlowdown:
		return "slowdown"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// Fault is one scheduled injection. Phase is the fault-clock index of the
// collective it fires in: the number of collective phases the communicator
// has completed since the plan was installed (an Allreduce counts as two
// phases, exactly as it executes). Each fault fires at most once.
type Fault struct {
	Kind FaultKind
	// Rank is the target rank ID at injection time. When the communicator
	// is shrunk after a crash, pending faults are renumbered with the dead
	// rank's slot removed, so a fault keeps tracking the same logical
	// survivor.
	Rank int
	// Phase is the fault-clock index of the target collective. Crashes and
	// slowdowns fire exactly at this index; corruptions fire at the first
	// reduction at or after it.
	Phase int64
	// Delay is the virtual-time slowdown in modeled seconds (FaultSlowdown).
	Delay float64
	// Word indexes the corrupted element of the Reduce vector, modulo the
	// vector length at injection time (FaultCorrupt).
	Word int
	// Delta is the additive perturbation applied to the corrupted word
	// (FaultCorrupt).
	Delta float64
}

// FaultPlan is a deterministic schedule of injections. Install it on a
// communicator with Comm.InstallFaultPlan; the Comm keeps its own copy, so
// a plan value can be reused to arm several communicators identically.
type FaultPlan struct {
	// Seed records the seed the plan was generated from (0 for hand-built
	// plans); it is carried for reports only.
	Seed uint64
	// Faults is the schedule. Crashes must sit at distinct phases: two
	// ranks crashing in the same phase would race to abort first and the
	// surviving failure value would depend on goroutine scheduling.
	Faults []Fault
}

// FaultConfig bounds the random schedule RandomFaultPlan draws.
type FaultConfig struct {
	// P is the rank count faults target (ranks are drawn from [0, P)).
	P int
	// Horizon is the fault-clock range faults are drawn from ([0, Horizon)).
	Horizon int64
	// Crashes, Slowdowns and Corruptions count the faults of each kind.
	Crashes, Slowdowns, Corruptions int
	// MaxDelay bounds each slowdown's virtual delay in seconds.
	MaxDelay float64
	// MaxDelta bounds each corruption's |additive perturbation|.
	MaxDelta float64
	// MaxWord bounds the corrupted word index drawn (the injector wraps it
	// modulo the live vector length, so any positive bound is safe).
	MaxWord int
}

// RandomFaultPlan draws a schedule from the seed through internal/rng: the
// same seed and config always yield the same plan, which is what makes a
// chaos run replayable bit-for-bit. Crash phases are drawn without
// replacement so at most one rank dies per collective.
func RandomFaultPlan(seed uint64, cfg FaultConfig) *FaultPlan {
	if cfg.P < 1 || cfg.Horizon < 1 {
		panic("cluster: RandomFaultPlan needs P >= 1 and Horizon >= 1")
	}
	if cfg.MaxWord < 1 {
		cfg.MaxWord = 1
	}
	r := rng.New(seed)
	plan := &FaultPlan{Seed: seed}

	// Crashes: distinct phases, drawn via a subset so two ranks never race
	// to abort the same collective.
	n := cfg.Crashes
	if int64(n) > cfg.Horizon {
		n = int(cfg.Horizon)
	}
	for _, ph := range r.Subset(int(cfg.Horizon), n) {
		plan.Faults = append(plan.Faults, Fault{
			Kind:  FaultCrash,
			Rank:  r.Intn(cfg.P),
			Phase: int64(ph),
		})
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		plan.Faults = append(plan.Faults, Fault{
			Kind:  FaultSlowdown,
			Rank:  r.Intn(cfg.P),
			Phase: int64(r.Intn(int(cfg.Horizon))),
			Delay: cfg.MaxDelay * r.Float64(),
		})
	}
	for i := 0; i < cfg.Corruptions; i++ {
		plan.Faults = append(plan.Faults, Fault{
			Kind:  FaultCorrupt,
			Rank:  r.Intn(cfg.P),
			Phase: int64(r.Intn(int(cfg.Horizon))),
			Word:  r.Intn(cfg.MaxWord),
			Delta: cfg.MaxDelta * (2*r.Float64() - 1),
		})
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool {
		return plan.Faults[i].Phase < plan.Faults[j].Phase
	})
	return plan
}

// RankCrash is the panic value a FaultCrash raises. It unwinds through the
// abort protocol, so Comm.Run re-panics with it on the caller's goroutine;
// a supervisor recovers it to learn which rank died and shrink around it.
type RankCrash struct {
	// Rank is the ID of the crashed rank.
	Rank int
	// Phase is the fault-clock index of the collective it died entering.
	Phase int64
}

// Error renders the crash with the dead rank's ID, the anchor the abort
// regression tests pin.
func (e RankCrash) Error() string {
	return fmt.Sprintf("cluster: rank %d killed by fault plan at collective %d", e.Rank, e.Phase)
}

// InstallFaultPlan arms a copy of plan on the communicator and resets the
// fault clock to zero; nil disarms injection. The plan persists across Run
// calls — the fault clock keeps counting phases from Run to Run, which is
// what lets a schedule target "the 57th collective of the solve" when every
// solver iteration is its own Run. Must not be called while a Run is in
// flight.
func (c *Comm) InstallFaultPlan(plan *FaultPlan) {
	if plan == nil {
		c.plan, c.fired, c.pending, c.corrupt = nil, nil, nil, nil
		c.faultClock = 0
		return
	}
	c.plan = &FaultPlan{Seed: plan.Seed, Faults: append([]Fault(nil), plan.Faults...)}
	c.fired = make([]bool, len(c.plan.Faults))
	c.faultClock = 0
	c.rebuildPending()
}

// FaultPlanActive reports whether a fault plan is armed on the communicator.
func (c *Comm) FaultPlanActive() bool { return c.plan != nil }

// rebuildPending indexes the unfired faults: crashes and slowdowns by exact
// phase for O(1) lookup at collective entry, corruptions as an ordered list
// consulted at Reduce finalize. Both keep plan order, so multiple faults
// eligible at the same moment always fire in the same order.
func (c *Comm) rebuildPending() {
	c.pending = make(map[int64][]int, len(c.plan.Faults))
	c.corrupt = c.corrupt[:0]
	for i := range c.plan.Faults {
		if c.fired[i] {
			continue
		}
		f := &c.plan.Faults[i]
		if f.Kind == FaultCorrupt {
			c.corrupt = append(c.corrupt, i)
		} else {
			c.pending[f.Phase] = append(c.pending[f.Phase], i)
		}
	}
}

// fireFault marks fault i consumed and removes it from the pending index.
func (c *Comm) fireFault(i int) {
	c.fired[i] = true
	phase := c.plan.Faults[i].Phase
	fs := c.pending[phase]
	for k, idx := range fs {
		if idx == i {
			fs = append(fs[:k], fs[k+1:]...)
			break
		}
	}
	if len(fs) == 0 {
		delete(c.pending, phase)
	} else {
		c.pending[phase] = fs
	}
}

// injectEntryLocked fires every crash and slowdown fault scheduled for the
// collective now being entered (fault-clock index c.faultClock). It runs
// when the FIRST rank reaches the phase and consumes all of the phase's
// entry faults at once, in plan order — which rank's goroutine happened to
// arrive first never matters, so replays are scheduling-independent even
// when a slowdown and a crash share a phase. Callers hold c.mu. A crash
// aborts the Run and panics with the RankCrash; a slowdown charges the
// target rank virtual compute time for this phase.
func (c *Comm) injectEntryLocked() {
	for {
		pend := c.pending[c.faultClock]
		if len(pend) == 0 {
			return
		}
		i := pend[0]
		f := &c.plan.Faults[i]
		switch f.Kind {
		case FaultCrash:
			rc := RankCrash{Rank: f.Rank, Phase: c.faultClock}
			c.fireFault(i)
			c.abortLocked(rc)
			panic(rc)
		case FaultSlowdown:
			c.sinceDelay[f.Rank] += f.Delay
			c.injectedDelay += f.Delay
			c.fireFault(i)
		}
	}
}

// corruptionLocked returns the additive perturbation for element i of rank
// id's contribution to the Reduce now finalizing, consuming every matching
// corruption fault whose phase has come due. The list is scanned in plan
// order, so stacked perturbations on one word always sum in the same
// order. Callers hold c.mu (finalize runs under the lock).
func (c *Comm) corruptionLocked(id, i, vecLen int) float64 {
	if vecLen == 0 {
		return 0
	}
	var delta float64
	for k := 0; k < len(c.corrupt); {
		idx := c.corrupt[k]
		f := &c.plan.Faults[idx]
		if f.Phase <= c.faultClock && f.Rank == id && f.Word%vecLen == i {
			delta += f.Delta
			c.corruptWords++
			c.fired[idx] = true
			c.corrupt = append(c.corrupt[:k], c.corrupt[k+1:]...)
			continue
		}
		k++
	}
	return delta
}

// hasCorruption reports whether any corruption fault has come due for the
// Reduce now finalizing; it lets the fast path skip per-element lookups
// entirely on fault-free phases. Callers hold c.mu.
func (c *Comm) hasCorruption() bool {
	if c.plan == nil {
		return false
	}
	for _, i := range c.corrupt {
		if c.plan.Faults[i].Phase <= c.faultClock {
			return true
		}
	}
	return false
}

// Shrink returns a fresh communicator over the survivors after rank dead
// crashed: P-1 ranks, the survivors' speeds, the same platform cost model,
// and the same fault plan with the dead rank's pending faults dropped,
// surviving ranks renumbered past the gap, and the fault clock carried
// over (the schedule keeps its position on the solve's timeline). Faults
// already fired stay consumed. Tracing stays enabled if it was. The
// original communicator is left untouched.
//
// Rank-to-node assignment keeps the node-major rule on the shrunk ID space,
// so Node() remains a modeling approximation after a shrink; the modeled
// cost uses the carried per-rank speeds and the platform's word/latency
// constants, which are unaffected.
func (c *Comm) Shrink(dead int) *Comm {
	if c.p <= 1 {
		panic("cluster: cannot shrink a single-rank communicator")
	}
	if dead < 0 || dead >= c.p {
		panic(fmt.Sprintf("cluster: Shrink rank %d out of range [0,%d)", dead, c.p))
	}
	p := c.p - 1
	speeds := make([]float64, 0, p)
	speeds = append(speeds, c.speeds[:dead]...)
	speeds = append(speeds, c.speeds[dead+1:]...)
	n := &Comm{
		platform:      c.platform,
		p:             p,
		speeds:        speeds,
		contrib:       make([][]float64, p),
		dst:           make([][]float64, p),
		sinceFlops:    make([]int64, p),
		totalFlops:    make([]int64, p),
		sinceBytes:    make([]int64, p),
		totalBytes:    make([]int64, p),
		residentBytes: make([]int64, p),
		sinceDelay:    make([]float64, p),
		tracing:       c.tracing,
	}
	n.cond = sync.NewCond(&n.mu)
	if c.plan != nil {
		n.plan = &FaultPlan{Seed: c.plan.Seed}
		// Plan order is preserved (no map iteration), so the shrunk
		// communicator fires surviving faults in the exact same order.
		for i, f := range c.plan.Faults {
			if c.fired[i] || f.Rank == dead {
				continue
			}
			if f.Rank > dead {
				f.Rank--
			}
			n.plan.Faults = append(n.plan.Faults, f)
		}
		n.fired = make([]bool, len(n.plan.Faults))
		n.faultClock = c.faultClock
		n.rebuildPending()
	}
	return n
}
