package cluster

import (
	"math"
	"reflect"
	"testing"
)

// fillTestVec writes a deterministic, rank- and word-dependent pattern so
// word-for-word comparisons are meaningful (no symmetry to hide bugs behind).
func fillTestVec(vec []float64, id int) {
	for i := range vec {
		vec[i] = float64(id+1) * math.Sqrt(float64(i%13)+1)
	}
}

// runAllreduce executes one Allreduce per rank and returns every rank's
// resulting vector plus the run's Stats.
func runAllreduce(c *Comm, words int) ([][]float64, Stats) {
	out := make([][]float64, c.P())
	st := c.Run(func(r *Rank) {
		vec := make([]float64, words)
		fillTestVec(vec, r.ID)
		r.Allreduce(vec)
		out[r.ID] = vec
	})
	return out, st
}

// runReduceBroadcast executes the two collectives Allreduce is defined as.
func runReduceBroadcast(c *Comm, words int) ([][]float64, Stats) {
	out := make([][]float64, c.P())
	st := c.Run(func(r *Rank) {
		vec := make([]float64, words)
		fillTestVec(vec, r.ID)
		r.Reduce(vec, 0)
		r.Broadcast(vec, 0)
		out[r.ID] = vec
	})
	return out, st
}

// TestAllreduceEquivalentToReduceBroadcast checks the documented identity
// Allreduce ≡ Reduce-to-0 + Broadcast-from-0: for every cluster size 1..8
// and representative vector lengths, all ranks end with bit-identical
// vectors and the two runs charge exactly the same Stats — including under
// an installed fault plan that schedules no faults.
func TestAllreduceEquivalentToReduceBroadcast(t *testing.T) {
	lens := []int{0, 1, 7, 1024}
	for p := 1; p <= 8; p++ {
		for _, words := range lens {
			for _, armed := range []bool{false, true} {
				ca := NewComm(NewPlatform(1, p))
				cb := NewComm(NewPlatform(1, p))
				if armed {
					// An active plan with nothing scheduled must be
					// perfectly transparent.
					ca.InstallFaultPlan(&FaultPlan{Seed: 1})
					cb.InstallFaultPlan(&FaultPlan{Seed: 1})
				}
				var va, vb [][]float64
				var sa, sb Stats
				watchdog(t, func() {
					va, sa = runAllreduce(ca, words)
					vb, sb = runReduceBroadcast(cb, words)
				})
				for id := 0; id < p; id++ {
					for i := range va[id] {
						if math.Float64bits(va[id][i]) != math.Float64bits(vb[id][i]) {
							t.Fatalf("P=%d words=%d armed=%v rank %d word %d: Allreduce %v != Reduce+Broadcast %v",
								p, words, armed, id, i, va[id][i], vb[id][i])
						}
					}
					if id > 0 && !reflect.DeepEqual(va[id], va[0]) {
						t.Fatalf("P=%d words=%d armed=%v: rank %d disagrees with rank 0 after Allreduce",
							p, words, armed, id)
					}
				}
				sa.Wall, sb.Wall = 0, 0
				if !reflect.DeepEqual(sa, sb) {
					t.Fatalf("P=%d words=%d armed=%v: Stats diverge:\nallreduce:        %+v\nreduce+broadcast: %+v",
						p, words, armed, sa, sb)
				}
				if words > 0 && p > 1 && sa.TotalWords == 0 {
					t.Fatalf("P=%d words=%d: no words charged", p, words)
				}
			}
		}
	}
}
