package cluster

import (
	"sync"
	"testing"
)

// These tests exercise misuse and edge paths of the communicator: mismatched
// collectives, panicking rank bodies, and degenerate vector lengths.

func TestMismatchedCollectivePanics(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	panics := make(chan interface{}, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	// Drive ranks manually so one calls Reduce while the other Broadcasts.
	go func() {
		defer wg.Done()
		defer func() { panics <- recover() }()
		r := &Rank{ID: 0, c: c}
		r.Reduce([]float64{1}, 0)
	}()
	go func() {
		defer wg.Done()
		defer func() { panics <- recover() }()
		r := &Rank{ID: 1, c: c}
		r.Broadcast([]float64{1}, 0)
	}()
	// The detecting rank panics, and the abort protocol releases its
	// partner with the same failure — nothing leaks or deadlocks.
	wg.Wait()
	for i := 0; i < 2; i++ {
		if p := <-panics; p == nil {
			t.Fatal("a rank survived mismatched collectives without panicking")
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	panics := make(chan interface{}, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for id := 0; id < 2; id++ {
		go func(id int) {
			defer wg.Done()
			defer func() { panics <- recover() }()
			r := &Rank{ID: id, c: c}
			r.Reduce(make([]float64, 1+id), 0) // different lengths
		}(id)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if p := <-panics; p == nil {
			t.Fatal("a rank survived a length mismatch without panicking")
		}
	}
}

func TestNegativeFlopsPanics(t *testing.T) {
	c := NewComm(NewPlatform(1, 1))
	panicked := false
	c.Run(func(r *Rank) {
		// The rank body runs on its own goroutine; recover there.
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.AddFlops(-1)
	})
	if !panicked {
		t.Fatal("negative flop count did not panic")
	}
}

func TestEmptyVectorCollective(t *testing.T) {
	c := NewComm(NewPlatform(1, 3))
	st := c.Run(func(r *Rank) {
		r.Allreduce(nil) // zero-length reduce must be a safe no-op
	})
	if st.PathWords != 0 || st.Phases != 2 {
		t.Fatalf("empty allreduce: %+v", st)
	}
}

func TestInvalidTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology did not panic")
		}
	}()
	NewComm(Platform{Topology: Topology{Nodes: 0, CoresPerNode: 1}})
}

func TestAccumulateMismatchPanics(t *testing.T) {
	a := Stats{FlopsPerRank: []int64{1, 2}}
	b := Stats{FlopsPerRank: []int64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("rank-count mismatch did not panic")
		}
	}()
	a.Accumulate(b)
}

func TestAccumulateFromZero(t *testing.T) {
	var acc Stats
	acc.Accumulate(Stats{FlopsPerRank: []int64{3, 4}, TotalFlops: 7, MaxFlops: 4, Phases: 1})
	acc.Accumulate(Stats{FlopsPerRank: []int64{1, 1}, TotalFlops: 2, MaxFlops: 1, Phases: 1})
	if acc.TotalFlops != 9 || acc.MaxFlops != 5 || acc.Phases != 2 {
		t.Fatalf("accumulated %+v", acc)
	}
	if acc.FlopsPerRank[0] != 4 || acc.FlopsPerRank[1] != 5 {
		t.Fatalf("per-rank %v", acc.FlopsPerRank)
	}
}
