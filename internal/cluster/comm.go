package cluster

import (
	"math"
	"sync"
	"time"
)

// Stats summarizes one distributed run: exact operation counts plus the
// modeled time/energy derived from them through the platform cost model.
type Stats struct {
	// FlopsPerRank is the exact flop count each rank reported.
	FlopsPerRank []int64
	// TotalFlops is the sum over ranks.
	TotalFlops int64
	// MaxFlops is the largest per-rank count — the serial fraction that
	// bounds compute time (load imbalance shows up here).
	MaxFlops int64
	// BytesPerRank is the exact kernel memory traffic each rank reported
	// through AddBytes: the bytes its kernels streamed through the memory
	// hierarchy, the denominator of the roofline's arithmetic intensity.
	BytesPerRank []int64
	// TotalBytes is the sum of BytesPerRank — the runtime ground truth the
	// static memmodel analyzer's derived byte polynomials are checked
	// against.
	TotalBytes int64
	// MaxBytes is the largest per-rank byte count (the bandwidth-bound
	// analogue of MaxFlops).
	MaxBytes int64
	// PeakResidentPerRank is the exact resident-set size each rank reported
	// through AddResident: the bytes of operator state (data blocks,
	// dictionary replicas, scratch buffers) live on that rank for the run —
	// the Eq. 4 capacity axis, and the runtime ground truth the static
	// allocmodel analyzer's derived resident polynomials are checked
	// against.
	PeakResidentPerRank []int64
	// MaxResident is the largest per-rank resident set — the number a
	// platform's MemBytesCapacity must cover for the run to fit in RAM.
	MaxResident int64
	// PathWords counts words on the communication critical path: each
	// collective contributes its vector length once (pipelined tree), the
	// quantity the paper's min(M, L) bound refers to.
	PathWords int64
	// TotalWords counts every word moved by every rank (drives energy).
	TotalWords int64
	// Phases is the number of collective operations executed.
	Phases int64
	// InjectedDelay totals the virtual-time slowdown seconds an armed
	// FaultPlan charged during the run (zero when no plan is installed).
	InjectedDelay float64
	// CorruptWords counts Reduce contribution words an armed FaultPlan
	// perturbed during the run.
	CorruptWords int64

	// ModeledTime is the bulk-synchronous time estimate in seconds:
	// Σ over phases of (slowest rank's compute + path words + latency),
	// plus the compute tail after the last collective.
	ModeledTime float64
	// ModeledEnergy is the energy estimate in joules: every flop plus
	// every word moved.
	ModeledEnergy float64
	// Wall is the measured wall-clock time of the run.
	Wall time.Duration

	// Trace is the ordered collective schedule the run executed, one entry
	// per phase, recorded only when the communicator's tracing is enabled
	// (see Comm.EnableTrace). It is the runtime ground truth the static
	// schedule analyzer's traces are cross-checked against.
	Trace []PhaseTrace
}

// PhaseTrace records one executed collective phase. An Allreduce appears as
// its two constituent phases (Reduce to 0, Broadcast from 0), exactly as
// Algorithm 2 executes and charges them.
type PhaseTrace struct {
	// Op is the collective kind: "Reduce", "Broadcast", or "Barrier".
	Op string `json:"op"`
	// Root is the root rank (0 for Barrier).
	Root int `json:"root"`
	// Words is the vector length every rank passed (0 for Barrier).
	Words int `json:"words"`
}

// Accumulate folds o into s: counts add, per-rank flops add element-wise
// (shapes must match or s must be empty). Iterative solvers use this to sum
// per-iteration statistics into run totals.
func (s *Stats) Accumulate(o Stats) {
	if s.FlopsPerRank == nil {
		s.FlopsPerRank = make([]int64, len(o.FlopsPerRank))
	}
	if len(s.FlopsPerRank) != len(o.FlopsPerRank) {
		panic("cluster: Accumulate rank-count mismatch")
	}
	for i, f := range o.FlopsPerRank {
		s.FlopsPerRank[i] += f
	}
	if s.BytesPerRank == nil {
		s.BytesPerRank = make([]int64, len(o.BytesPerRank))
	}
	if len(s.BytesPerRank) != len(o.BytesPerRank) {
		panic("cluster: Accumulate rank-count mismatch")
	}
	for i, b := range o.BytesPerRank {
		s.BytesPerRank[i] += b
	}
	if s.PeakResidentPerRank == nil {
		s.PeakResidentPerRank = make([]int64, len(o.PeakResidentPerRank))
	}
	if len(s.PeakResidentPerRank) != len(o.PeakResidentPerRank) {
		panic("cluster: Accumulate rank-count mismatch")
	}
	// Residency is a high-water mark, not a flow: iterations reuse the same
	// operator buffers, so across iterations the peak is the element-wise
	// max, never the sum.
	for i, b := range o.PeakResidentPerRank {
		s.PeakResidentPerRank[i] = max(s.PeakResidentPerRank[i], b)
	}
	s.MaxResident = max(s.MaxResident, o.MaxResident)
	s.TotalFlops += o.TotalFlops
	s.TotalBytes += o.TotalBytes
	// Sequential iterations: critical paths add.
	s.MaxFlops += o.MaxFlops
	s.MaxBytes += o.MaxBytes
	s.PathWords += o.PathWords
	s.TotalWords += o.TotalWords
	s.Phases += o.Phases
	s.InjectedDelay += o.InjectedDelay
	s.CorruptWords += o.CorruptWords
	s.ModeledTime += o.ModeledTime
	s.ModeledEnergy += o.ModeledEnergy
	s.Wall += o.Wall
	// Sequential iterations: schedules concatenate.
	s.Trace = append(s.Trace, o.Trace...)
}

// Comm is one communicator: P ranks sharing a collective rendezvous.
// Build with NewComm, run a distributed body with Run. A Comm is reusable
// across Run calls but a single Run must not be entered concurrently.
type Comm struct {
	platform Platform
	p        int
	speeds   []float64 // per-rank relative flop rates

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	kind    collKind
	root    int
	vecLen  int

	contrib [][]float64 // reduce: per-rank staged contributions
	rootDst []float64   // reduce: root's output buffer
	src     []float64   // broadcast: root's source buffer
	dst     [][]float64 // broadcast: per-rank destinations
	sum     []float64   // reduce: accumulation scratch, reused across phases

	// sinceFlops[r] accumulates rank r's flops since the last phase close;
	// sinceBytes[r] its kernel memory traffic, charged the same way.
	sinceFlops []int64
	totalFlops []int64
	sinceBytes []int64
	totalBytes []int64

	// residentBytes[r] accumulates rank r's reported resident-set bytes for
	// the current Run. Within one Run the operators' AddResident claims are
	// establishment-only (hotalloc keeps rank bodies allocation-free, so
	// nothing is freed mid-run) and the sum is the peak.
	residentBytes []int64

	pathWords  int64
	totalWords int64
	phases     int64
	modeled    float64

	// tracing records every phase into trace when enabled; the slice is
	// truncated (capacity kept) on each Run so steady-state tracing does
	// not allocate per iteration.
	tracing bool
	trace   []PhaseTrace

	// Fault injection state (see fault.go). plan is the armed schedule
	// (nil = injection off); fired marks consumed faults; pending indexes
	// unfired crash/slowdown faults by exact phase, while corrupt lists
	// unfired corruption faults in plan order (they fire at the first
	// reduction at or after their phase). faultClock counts collective
	// phases since the plan was installed and deliberately survives
	// reset() so a schedule spans every Run of a multi-iteration solve.
	// sinceDelay[r] accumulates rank r's injected virtual delay since the
	// last phase close, folded into the phase critical path exactly like
	// slow flops.
	plan          *FaultPlan
	fired         []bool
	pending       map[int64][]int
	corrupt       []int
	faultClock    int64
	sinceDelay    []float64
	injectedDelay float64
	corruptWords  int64

	// aborted flips when any rank's body panics (or a collective detects
	// misuse); failure records the first panic value. Blocked ranks are
	// released with the same failure so a bad Run dies loudly instead of
	// deadlocking, and Run re-panics with it on the caller's goroutine.
	aborted bool
	failure any
}

type collKind uint8

const (
	collNone collKind = iota
	collReduce
	collBroadcast
	collBarrier
)

// String names the collective kind as it appears in phase traces, matching
// the Rank method that initiates it.
func (k collKind) String() string {
	switch k {
	case collReduce:
		return "Reduce"
	case collBroadcast:
		return "Broadcast"
	case collBarrier:
		return "Barrier"
	}
	return "none"
}

// NewComm returns a communicator for the given platform.
func NewComm(p Platform) *Comm {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := &Comm{
		platform:      p,
		p:             p.Topology.P(),
		speeds:        p.RankSpeeds(),
		contrib:       make([][]float64, p.Topology.P()),
		dst:           make([][]float64, p.Topology.P()),
		sinceFlops:    make([]int64, p.Topology.P()),
		totalFlops:    make([]int64, p.Topology.P()),
		sinceBytes:    make([]int64, p.Topology.P()),
		totalBytes:    make([]int64, p.Topology.P()),
		residentBytes: make([]int64, p.Topology.P()),
		sinceDelay:    make([]float64, p.Topology.P()),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// P returns the number of ranks.
func (c *Comm) P() int { return c.p }

// EnableTrace turns on collective schedule recording: every subsequent Run
// returns its ordered phase trace in Stats.Trace. Tracing is off by default
// so long solver runs do not retain per-phase records. Must not be called
// while a Run is in flight.
func (c *Comm) EnableTrace() { c.tracing = true }

// Platform returns the platform this communicator models.
func (c *Comm) Platform() Platform { return c.platform }

// RankSpeeds returns the per-rank relative flop rates of this
// communicator's ranks (a copy). For a freshly built communicator these
// are the platform's rank speeds; for one produced by Shrink they are the
// survivors' speeds, so data partitioners stay load-balanced — and sized
// to the live rank count — after a crash.
func (c *Comm) RankSpeeds() []float64 { return append([]float64(nil), c.speeds...) }

// Run executes body once per rank, concurrently, and returns the collected
// statistics. Statistics reset on each Run.
//
// If any rank's body panics — including the "cluster: mismatched collective
// operations across ranks" misuse panic — every other rank is released from
// its rendezvous with the same failure and Run re-panics with the first
// panic value on the caller's goroutine. Misuse therefore surfaces as one
// deterministic, recoverable panic rather than a deadlock or process crash.
// The Comm remains reusable afterwards: the next Run starts from reset
// state.
func (c *Comm) Run(body func(r *Rank)) Stats {
	c.reset()
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < c.p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					c.abort(e)
				}
			}()
			body(&Rank{ID: id, c: c})
		}(id)
	}
	wg.Wait()
	if c.failure != nil {
		panic(c.failure)
	}
	wall := time.Since(start)

	// Compute tail after the last collective (injected delays only linger
	// here if the run aborted between injection and the phase close).
	var tail float64
	for i, f := range c.sinceFlops {
		t := float64(f)/c.speeds[i]*c.platform.Cost.FlopTime +
			float64(c.sinceBytes[i])/c.speeds[i]*c.platform.Cost.MemByteTime +
			c.sinceDelay[i]
		if t > tail {
			tail = t
		}
	}
	c.modeled += tail

	st := Stats{
		FlopsPerRank:        append([]int64(nil), c.totalFlops...),
		BytesPerRank:        append([]int64(nil), c.totalBytes...),
		PeakResidentPerRank: append([]int64(nil), c.residentBytes...),
		PathWords:           c.pathWords,
		TotalWords:          c.totalWords,
		Phases:              c.phases,
		InjectedDelay:       c.injectedDelay,
		CorruptWords:        c.corruptWords,
		ModeledTime:         c.modeled,
		Wall:                wall,
	}
	if c.tracing {
		st.Trace = append([]PhaseTrace(nil), c.trace...)
	}
	for _, f := range c.totalFlops {
		st.TotalFlops += f
		if f > st.MaxFlops {
			st.MaxFlops = f
		}
	}
	for _, b := range c.totalBytes {
		st.TotalBytes += b
		if b > st.MaxBytes {
			st.MaxBytes = b
		}
	}
	for _, b := range c.residentBytes {
		if b > st.MaxResident {
			st.MaxResident = b
		}
	}
	st.ModeledEnergy = float64(st.TotalFlops)*c.platform.Cost.FlopEnergy +
		float64(c.totalWords)*c.platform.WordEnergy()
	return st
}

func (c *Comm) reset() {
	c.arrived, c.gen = 0, 0
	c.kind, c.root, c.vecLen = collNone, 0, 0
	c.rootDst, c.src = nil, nil
	for i := range c.dst {
		c.dst[i] = nil
		c.contrib[i] = nil
	}
	for i := range c.sinceFlops {
		c.sinceFlops[i] = 0
		c.totalFlops[i] = 0
		c.sinceBytes[i] = 0
		c.totalBytes[i] = 0
		c.residentBytes[i] = 0
		c.sinceDelay[i] = 0
	}
	c.pathWords, c.totalWords, c.phases = 0, 0, 0
	c.modeled = 0
	// plan, fired, pending and faultClock deliberately survive: the fault
	// schedule spans every Run of a multi-iteration solve.
	c.injectedDelay, c.corruptWords = 0, 0
	c.trace = c.trace[:0]
	c.aborted, c.failure = false, nil
}

// abort records the first failure and wakes every rank blocked in a
// rendezvous so the whole Run unwinds instead of deadlocking.
func (c *Comm) abort(v any) {
	c.mu.Lock()
	c.abortLocked(v)
	c.mu.Unlock()
}

// abortLocked is abort for callers already holding c.mu.
func (c *Comm) abortLocked(v any) {
	if !c.aborted {
		c.aborted = true
		c.failure = v
	}
	c.cond.Broadcast()
}

// closePhase charges the bulk-synchronous cost of the completed phase: the
// slowest rank's accumulated compute (scaled by its node's speed on
// heterogeneous platforms) plus any injected virtual delay, the
// critical-path word cost of the collective, and the reduction-tree
// latency. Per-rank time is formed as (flops/speed)·FlopTime +
// (bytes/speed)·MemByteTime + delay, so an injected slowdown competes for
// the critical path exactly like slow compute; with no delays or byte
// claims this is bit-identical to scaling the max by FlopTime afterwards.
// It also advances the fault clock: the next collective entered has the
// next injection index. Callers hold c.mu.
func (c *Comm) closePhase(vecLen int) {
	var maxT float64
	for i, f := range c.sinceFlops {
		t := float64(f)/c.speeds[i]*c.platform.Cost.FlopTime +
			float64(c.sinceBytes[i])/c.speeds[i]*c.platform.Cost.MemByteTime +
			c.sinceDelay[i]
		if t > maxT {
			maxT = t
		}
		c.sinceFlops[i] = 0
		c.sinceBytes[i] = 0
		c.sinceDelay[i] = 0
	}
	hops := 1.0
	if c.p > 1 {
		hops = math.Ceil(math.Log2(float64(c.p)))
	}
	c.modeled += maxT +
		float64(vecLen)*c.platform.WordTime() +
		hops*c.platform.Latency()
	if c.tracing {
		c.trace = append(c.trace, PhaseTrace{Op: c.kind.String(), Root: c.root, Words: vecLen})
	}
	c.pathWords += int64(vecLen)
	// Every non-root rank moves vecLen words in a reduce or broadcast.
	c.totalWords += int64(vecLen) * int64(c.p-1)
	c.phases++
	c.faultClock++
}

// Rank is one logical processor's handle inside a Run body.
type Rank struct {
	// ID is the processor id ("pid" in the paper's algorithms), 0-based.
	ID int
	c  *Comm
}

// P returns the total number of ranks in the communicator.
func (r *Rank) P() int { return r.c.p }

// Node returns the node this rank lives on (ranks are node-major).
func (r *Rank) Node() int { return r.ID / r.c.platform.Topology.CoresPerNode }

// AddFlops reports n floating point operations executed by this rank since
// its previous report. It is the instrumentation hook the distributed
// kernels call; counts feed both the phase accounting and Stats.
//
// Each rank touches only its own counters between collectives, and the
// collective rendezvous reads them under the communicator lock after every
// rank has arrived, so the fast path needs no synchronization.
func (r *Rank) AddFlops(n int64) {
	if n < 0 {
		panic("cluster: negative flop count")
	}
	r.c.sinceFlops[r.ID] += n
	r.c.totalFlops[r.ID] += n
}

// AddBytes reports n bytes of kernel memory traffic streamed by this rank
// since its previous report — the bytes a kernel reads and writes through
// the memory hierarchy, placed alongside the kernel's AddFlops claim. The
// static memmodel analyzer proves every claim equal to the byte polynomial
// it derives from the kernel's shape, and the counts feed both the phase
// accounting (through CostModel.MemByteTime) and Stats.TotalBytes.
func (r *Rank) AddBytes(n int64) {
	if n < 0 {
		panic("cluster: negative byte count")
	}
	r.c.sinceBytes[r.ID] += n
	r.c.totalBytes[r.ID] += n
}

// AddResident reports n bytes of operator state resident on this rank for
// the duration of the run: its data block, any dictionary replica, and its
// scratch buffers — the per-rank footprint Eq. 4 bounds. Unlike AddFlops
// and AddBytes this is not a flow: the claims establish a high-water mark
// (hotalloc keeps rank bodies allocation-free, so within one Run the
// established set never shrinks and the claim sum is the peak), the counts
// feed Stats.PeakResidentPerRank, and Stats.Accumulate folds iterations by
// element-wise max rather than addition. The static allocmodel analyzer
// proves every claim equal to the resident polynomial it derives from the
// operator's constructor contracts.
func (r *Rank) AddResident(n int64) {
	if n < 0 {
		panic("cluster: negative resident byte count")
	}
	r.c.residentBytes[r.ID] += n
}

// collective is the shared rendezvous: stage runs under the lock when the
// rank arrives; finalize runs under the lock exactly once after all P ranks
// have staged; every rank returns only after finalize completed. All copies
// into rank-owned buffers happen inside finalize, before anyone resumes, so
// no rank can observe another phase's data.
func (r *Rank) collective(kind collKind, root, vecLen int, stage, finalize func()) {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted {
		// A peer already failed; propagate its failure instead of waiting
		// for a rendezvous that can never complete.
		panic(c.failure)
	}
	if c.plan != nil {
		// Keyed to the fault clock, not arrival order, so a schedule
		// replays identically regardless of goroutine interleaving.
		c.injectEntryLocked()
	}
	if c.arrived == 0 {
		c.kind, c.root, c.vecLen = kind, root, vecLen
	} else if c.kind != kind || c.root != root || c.vecLen != vecLen {
		const msg = "cluster: mismatched collective operations across ranks"
		c.abortLocked(msg)
		panic(msg)
	}
	if stage != nil {
		stage()
	}
	c.arrived++
	if c.arrived == c.p {
		finalize()
		c.closePhase(vecLen)
		c.arrived = 0
		c.kind = collNone
		c.gen++
		c.cond.Broadcast()
		return
	}
	gen := c.gen
	for c.gen == gen && !c.aborted {
		c.cond.Wait()
	}
	if c.gen == gen && c.aborted {
		// Released by an abort, not by phase completion.
		panic(c.failure)
	}
}

// Reduce element-wise sums vec across all ranks. After the call the root
// rank's vec holds the sum; other ranks' buffers are unchanged. All ranks
// must pass slices of equal length (paper Algorithm 2 steps 3-4).
func (r *Rank) Reduce(vec []float64, root int) {
	c := r.c
	r.collective(collReduce, root, len(vec), func() {
		c.contrib[r.ID] = vec
		if r.ID == root {
			c.rootDst = vec
		}
	}, func() {
		// Sum in rank order so results are bitwise deterministic across
		// runs regardless of goroutine arrival order. The scratch lives on
		// the Comm — finalize runs under the lock, so one buffer serves
		// every phase without allocating.
		sum := c.sumScratch(c.vecLen)
		if c.hasCorruption() {
			// A fault plan targets this phase: read each contribution
			// word through the injector (models a transmission error;
			// the contributing rank's buffer is untouched).
			for id := 0; id < c.p; id++ {
				for i, v := range c.contrib[id] {
					sum[i] += v + c.corruptionLocked(id, i, c.vecLen)
				}
				c.contrib[id] = nil
			}
		} else {
			for id := 0; id < c.p; id++ {
				for i, v := range c.contrib[id] {
					sum[i] += v
				}
				c.contrib[id] = nil
			}
		}
		copy(c.rootDst, sum)
		c.rootDst = nil
	})
}

// sumScratch returns a zeroed length-n view of the communicator's reduce
// buffer, growing it on first use or when a longer vector arrives. Callers
// hold c.mu (finalize runs under the lock).
func (c *Comm) sumScratch(n int) []float64 {
	if cap(c.sum) < n {
		c.sum = make([]float64, n)
	}
	s := c.sum[:n]
	clear(s)
	return s
}

// Broadcast copies the root rank's vec into every other rank's vec
// (Algorithm 2 step 6). All ranks must pass slices of equal length.
func (r *Rank) Broadcast(vec []float64, root int) {
	c := r.c
	r.collective(collBroadcast, root, len(vec), func() {
		if r.ID == root {
			c.src = vec
		} else {
			c.dst[r.ID] = vec
		}
	}, func() {
		for i, d := range c.dst {
			if d != nil {
				copy(d, c.src)
				c.dst[i] = nil
			}
		}
		c.src = nil
	})
}

// Allreduce sums vec across ranks and leaves the sum in every rank's vec.
// It is implemented, and charged, as Reduce-to-0 followed by Broadcast-from-0
// — the exact two phases Algorithm 2 executes.
func (r *Rank) Allreduce(vec []float64) {
	r.Reduce(vec, 0)
	r.Broadcast(vec, 0)
}

// Barrier synchronizes all ranks and closes the current compute phase
// without moving data.
func (r *Rank) Barrier() {
	r.collective(collBarrier, 0, 0, nil, func() {})
}
