// Package cluster provides the simulated distributed platform that stands in
// for the paper's MPI deployment on an IBM iDataPlex cluster.
//
// P logical processors (ranks) run as goroutines and execute the *real*
// distributed algorithm — each rank owns its column block, computes real
// partial products, and exchanges real vectors through Reduce/Broadcast
// collectives. The runtime counts, per rank, every floating-point operation
// reported and every word moved through a collective, and converts the
// counts into modeled time and energy through a platform cost model: a
// bulk-synchronous accounting where each collective closes a phase whose
// cost is the slowest rank's compute plus the critical-path communication.
//
// Different paper platforms (1×1, 1×4, 2×8, 8×8 nodes×cores) are expressed
// as topologies with different word-per-flop cost ratios — inter-node words
// are an order of magnitude more expensive than intra-node words — which is
// exactly the platform parameter (R_bf, Eq. 2/3) ExtDict tunes against.
package cluster

import "fmt"

// Topology is a cluster shape: Nodes machines with CoresPerNode cores each.
// Ranks are laid out node-major: rank r lives on node r / CoresPerNode.
type Topology struct {
	Nodes        int
	CoresPerNode int
}

// P returns the total number of ranks.
func (t Topology) P() int { return t.Nodes * t.CoresPerNode }

// String renders the paper's "nodes × cores" notation.
func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.Nodes, t.CoresPerNode) }

// Validate reports invalid topologies.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.CoresPerNode < 1 {
		return fmt.Errorf("cluster: invalid topology %dx%d", t.Nodes, t.CoresPerNode)
	}
	return nil
}

// Validate reports invalid platform configurations.
func (p Platform) Validate() error {
	if err := p.Topology.Validate(); err != nil {
		return err
	}
	if p.Cost.NodeSpeed != nil {
		if len(p.Cost.NodeSpeed) != p.Topology.Nodes {
			return fmt.Errorf("cluster: %d node speeds for %d nodes",
				len(p.Cost.NodeSpeed), p.Topology.Nodes)
		}
		for i, s := range p.Cost.NodeSpeed {
			if s <= 0 {
				return fmt.Errorf("cluster: node %d has non-positive speed %v", i, s)
			}
		}
	}
	return nil
}

// RankSpeed returns the relative flop rate of the given rank (1 for
// homogeneous clusters).
func (p Platform) RankSpeed(rank int) float64 {
	if p.Cost.NodeSpeed == nil {
		return 1
	}
	return p.Cost.NodeSpeed[rank/p.Topology.CoresPerNode]
}

// RankSpeeds returns every rank's relative flop rate.
func (p Platform) RankSpeeds() []float64 {
	out := make([]float64, p.Topology.P())
	for r := range out {
		out[r] = p.RankSpeed(r)
	}
	return out
}

// Heterogeneous reports whether ranks differ in speed.
func (p Platform) Heterogeneous() bool {
	if p.Cost.NodeSpeed == nil {
		return false
	}
	first := p.Cost.NodeSpeed[0]
	for _, s := range p.Cost.NodeSpeed[1:] {
		if s != first {
			return true
		}
	}
	return false
}

// CostModel converts operation counts into modeled time and energy.
// The defaults are calibrated to commodity-cluster ratios (≈1 GFLOP/s/core
// effective dense throughput, ~10 GB/s intra-node and ~1 GB/s inter-node
// links); only the *ratios* matter for every trend in the paper.
//
// MemByteTime prices the local memory traffic the kernels stream
// (Rank.AddBytes claims): ~10 GB/s of core-visible bandwidth. PeakFlopTime
// is the ALU-limited flop cost (≈4 GFLOP/s) a kernel would reach were it
// never waiting on memory; it enters the model only through the roofline
// classification (MachineBalance), never through the time accounting —
// FlopTime remains the achieved, bandwidth-bound dense throughput.
type CostModel struct {
	FlopTime      float64 // seconds per floating point operation
	MemByteTime   float64 // seconds per byte of kernel memory traffic
	PeakFlopTime  float64 // seconds per flop at ALU peak (roofline ceiling)
	IntraWordTime float64 // seconds per word on the critical path, same node
	InterWordTime float64 // seconds per word on the critical path, cross node
	IntraLatency  float64 // seconds per collective hop, same node
	InterLatency  float64 // seconds per collective hop, cross node

	FlopEnergy      float64 // joules per flop
	IntraWordEnergy float64 // joules per word moved, same node
	InterWordEnergy float64 // joules per word moved, cross node

	// MemBytes is the RAM available to one rank in bytes — the capacity
	// side of Eq. 4. A run whose per-rank resident set (the operators'
	// AddResident claims, statically derived by the allocmodel analyzer)
	// exceeds it does not fit in memory and must fall back to a smaller
	// transform or an out-of-core schedule. Zero means "use the default"
	// (2 GiB, a deliberately modest commodity-node share so the paper-scale
	// reference shapes exercise both verdicts).
	MemBytes int64

	// NodeSpeed optionally makes the cluster heterogeneous: entry i
	// multiplies node i's flop rate (1 = baseline, 2 = twice as fast).
	// nil means a homogeneous cluster. The distributed operators
	// partition work proportionally to these speeds, and the
	// bulk-synchronous accounting divides each rank's flop time by its
	// node's speed — the "heterogeneous architectures" the paper's
	// platform-aware mapping targets (§I, §III).
	NodeSpeed []float64
}

// DefaultCostModel returns the calibrated commodity-cluster cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		FlopTime:      1e-9,
		MemByteTime:   0.1e-9,
		PeakFlopTime:  0.25e-9,
		IntraWordTime: 0.8e-9,
		InterWordTime: 8e-9,
		IntraLatency:  0.3e-6,
		InterLatency:  2e-6,

		FlopEnergy:      100e-12,
		IntraWordEnergy: 1e-9,
		InterWordEnergy: 12e-9,

		MemBytes: DefaultMemBytes,
	}
}

// Platform is a topology plus its cost model.
type Platform struct {
	Topology Topology
	Cost     CostModel
}

// NewPlatform builds a platform with the default cost model.
func NewPlatform(nodes, coresPerNode int) Platform {
	return Platform{
		Topology: Topology{Nodes: nodes, CoresPerNode: coresPerNode},
		Cost:     DefaultCostModel(),
	}
}

// PaperPlatforms returns the four configurations the evaluation sweeps
// (§VIII-B3): 1×1, 1×4, 2×8, and 8×8 nodes×cores.
func PaperPlatforms() []Platform {
	return []Platform{
		NewPlatform(1, 1),
		NewPlatform(1, 4),
		NewPlatform(2, 8),
		NewPlatform(8, 8),
	}
}

// crossNode reports whether collectives on this platform cross node
// boundaries (which determines the word cost on the critical path).
func (p Platform) crossNode() bool { return p.Topology.Nodes > 1 }

// WordTime returns the critical-path seconds per communicated word.
func (p Platform) WordTime() float64 {
	if p.crossNode() {
		return p.Cost.InterWordTime
	}
	return p.Cost.IntraWordTime
}

// WordEnergy returns the joules per communicated word.
func (p Platform) WordEnergy() float64 {
	if p.crossNode() {
		return p.Cost.InterWordEnergy
	}
	return p.Cost.IntraWordEnergy
}

// Latency returns the per-hop collective latency.
func (p Platform) Latency() float64 {
	if p.crossNode() {
		return p.Cost.InterLatency
	}
	return p.Cost.IntraLatency
}

// RbfTime returns the platform's word-per-flop time ratio R_bf^time of
// Eq. 2: how many flops one communicated word is worth in runtime.
func (p Platform) RbfTime() float64 { return p.WordTime() / p.Cost.FlopTime }

// RbfEnergy returns the word-per-flop energy ratio R_bf^energy of Eq. 3.
func (p Platform) RbfEnergy() float64 { return p.WordEnergy() / p.Cost.FlopEnergy }

// DefaultMemBytes is the per-rank RAM assumed when a cost model leaves
// MemBytes zero: 2 GiB.
const DefaultMemBytes int64 = 2 << 30

// MemBytesCapacity returns the per-rank RAM capacity in bytes, applying the
// default when the cost model leaves it unset. It is the threshold the
// static capacity report (extdict-lint -capacity) classifies resident-set
// polynomials against.
func (p Platform) MemBytesCapacity() int64 {
	if p.Cost.MemBytes > 0 {
		return p.Cost.MemBytes
	}
	return DefaultMemBytes
}

// MachineBalance returns the roofline ridge point in flops per byte: a
// kernel whose arithmetic intensity (flops ÷ bytes streamed) exceeds this
// ratio is compute-bound at ALU peak; below it the kernel is limited by
// memory bandwidth. With the default model the ridge sits at 0.4 flop/byte,
// so the 2-flop-per-8-byte dense kernels (intensity 0.25) land bandwidth-
// bound — the regime the blocked kernel layer is designed for.
func (p Platform) MachineBalance() float64 {
	if p.Cost.PeakFlopTime == 0 {
		return 0
	}
	return p.Cost.MemByteTime / p.Cost.PeakFlopTime
}
