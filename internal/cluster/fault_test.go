package cluster

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// allreduceBody is a simple SPMD workload: n Allreduces (2n phases) over a
// fixed-length vector, with a little per-rank compute reported around each.
func allreduceBody(n, words int) func(r *Rank) {
	return func(r *Rank) {
		vec := make([]float64, words)
		for i := range vec {
			vec[i] = float64(r.ID + i)
		}
		for k := 0; k < n; k++ {
			r.AddFlops(int64(10 * (r.ID + 1)))
			r.Allreduce(vec)
		}
	}
}

func TestFaultCrashAbortsWithRankCrash(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 2, Phase: 1},
	}})
	failure := runExpectPanic(t, c, allreduceBody(3, 8))
	rc, ok := failure.(RankCrash)
	if !ok {
		t.Fatalf("failure = %#v, want RankCrash", failure)
	}
	if rc.Rank != 2 || rc.Phase != 1 {
		t.Fatalf("RankCrash = %+v, want rank 2 phase 1", rc)
	}
	if !strings.Contains(rc.Error(), "rank 2") {
		t.Fatalf("error %q does not name the dead rank", rc.Error())
	}
	var asCrash RankCrash
	if !errors.As(error(rc), &asCrash) || asCrash != rc {
		t.Fatal("RankCrash must round-trip through errors.As")
	}
	// The comm stays usable: disarm and re-run the same workload.
	c.InstallFaultPlan(nil)
	watchdog(t, func() {
		st := c.Run(allreduceBody(3, 8))
		if st.Phases != 6 {
			t.Errorf("post-recovery Phases = %d, want 6", st.Phases)
		}
	})
}

func TestFaultSlowdownChargedToModeledTime(t *testing.T) {
	const delay = 0.25
	clean := NewComm(NewPlatform(1, 2))
	var base Stats
	watchdog(t, func() { base = clean.Run(allreduceBody(1, 4)) })

	c := NewComm(NewPlatform(1, 2))
	c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultSlowdown, Rank: 1, Phase: 0, Delay: delay},
	}})
	var st Stats
	watchdog(t, func() { st = c.Run(allreduceBody(1, 4)) })

	if st.InjectedDelay != delay {
		t.Fatalf("InjectedDelay = %g, want %g", st.InjectedDelay, delay)
	}
	// The delay dominates the tiny compute in phase 0, so it shifts the
	// modeled time by at least the part exceeding the fault-free critical
	// path, and by at most the whole delay.
	shift := st.ModeledTime - base.ModeledTime
	if shift <= 0 || shift > delay {
		t.Fatalf("modeled-time shift %g not in (0, %g]", shift, delay)
	}
	if st.TotalFlops != base.TotalFlops || st.PathWords != base.PathWords {
		t.Fatal("slowdown must not change operation counts")
	}
}

func TestFaultCorruptPerturbsReduce(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCorrupt, Rank: 1, Phase: 0, Word: 1, Delta: 0.5},
	}})
	results := make([][]float64, 2)
	watchdog(t, func() {
		st := c.Run(func(r *Rank) {
			vec := []float64{1, 2, 3}
			r.Reduce(vec, 0)
			results[r.ID] = vec
		})
		if st.CorruptWords != 1 {
			t.Errorf("CorruptWords = %d, want 1", st.CorruptWords)
		}
	})
	// Root sum: word 1 picked up rank 1's +0.5 perturbation.
	if want := []float64{2, 4.5, 6}; !reflect.DeepEqual(results[0], want) {
		t.Fatalf("root result %v, want %v", results[0], want)
	}
	// The corruption models a transmission error: the contributing rank's
	// own buffer stays clean.
	if want := []float64{1, 2, 3}; !reflect.DeepEqual(results[1], want) {
		t.Fatalf("rank 1 buffer %v, want untouched %v", results[1], want)
	}
}

func TestFaultCorruptWrapsWordModuloVecLen(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCorrupt, Rank: 0, Phase: 0, Word: 7, Delta: 1},
	}})
	var root []float64
	watchdog(t, func() {
		c.Run(func(r *Rank) {
			vec := []float64{0, 0, 0}
			r.Reduce(vec, 0)
			if r.ID == 0 {
				root = vec
			}
		})
	})
	// Word 7 wraps to index 7 % 3 = 1.
	if want := []float64{0, 1, 0}; !reflect.DeepEqual(root, want) {
		t.Fatalf("root result %v, want %v", root, want)
	}
}

func TestFaultClockSpansRuns(t *testing.T) {
	// The schedule targets collective index 3 of the solve; each Run
	// contributes 2 phases, so the crash fires in the second Run.
	c := NewComm(NewPlatform(1, 3))
	c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 0, Phase: 3},
	}})
	watchdog(t, func() { c.Run(allreduceBody(1, 2)) })
	failure := runExpectPanic(t, c, allreduceBody(1, 2))
	rc, ok := failure.(RankCrash)
	if !ok || rc.Phase != 3 {
		t.Fatalf("failure = %#v, want RankCrash at phase 3", failure)
	}
}

func TestEmptyFaultPlanChangesNothing(t *testing.T) {
	clean := NewComm(NewPlatform(2, 2))
	armed := NewComm(NewPlatform(2, 2))
	armed.InstallFaultPlan(&FaultPlan{Seed: 99})
	if !armed.FaultPlanActive() {
		t.Fatal("empty plan should still be active")
	}
	var a, b Stats
	watchdog(t, func() {
		a = clean.Run(allreduceBody(4, 16))
		b = armed.Run(allreduceBody(4, 16))
	})
	a.Wall, b.Wall = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty fault plan perturbed stats:\nclean: %+v\narmed: %+v", a, b)
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	cfg := FaultConfig{
		P: 4, Horizon: 100,
		Crashes: 2, Slowdowns: 3, Corruptions: 3,
		MaxDelay: 0.5, MaxDelta: 0.1, MaxWord: 64,
	}
	p1 := RandomFaultPlan(7, cfg)
	p2 := RandomFaultPlan(7, cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(p1.Faults, RandomFaultPlan(8, cfg).Faults) {
		t.Fatal("different seeds produced identical plans")
	}
	if got := len(p1.Faults); got != 8 {
		t.Fatalf("plan has %d faults, want 8", got)
	}
	crashPhases := map[int64]bool{}
	for _, f := range p1.Faults {
		if f.Phase < 0 || f.Phase >= cfg.Horizon {
			t.Fatalf("fault phase %d outside horizon", f.Phase)
		}
		if f.Rank < 0 || f.Rank >= cfg.P {
			t.Fatalf("fault rank %d outside [0,%d)", f.Rank, cfg.P)
		}
		if f.Kind == FaultCrash {
			if crashPhases[f.Phase] {
				t.Fatalf("two crashes share phase %d", f.Phase)
			}
			crashPhases[f.Phase] = true
		}
	}
}

func TestFaultReplayBitIdenticalStats(t *testing.T) {
	cfg := FaultConfig{
		P: 4, Horizon: 8,
		Slowdowns: 3, Corruptions: 2,
		MaxDelay: 0.25, MaxDelta: 0.1, MaxWord: 8,
	}
	run := func() Stats {
		c := NewComm(NewPlatform(1, 4))
		c.EnableTrace()
		c.InstallFaultPlan(RandomFaultPlan(42, cfg))
		var st Stats
		for it := 0; it < 3; it++ {
			st.Accumulate(c.Run(allreduceBody(2, 8)))
		}
		return st
	}
	a, b := run(), run()
	a.Wall, b.Wall = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay of the same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.InjectedDelay == 0 {
		t.Fatal("schedule injected no delay; test exercises nothing")
	}
	if a.CorruptWords == 0 {
		t.Fatal("schedule corrupted no words; test exercises nothing")
	}
}

func TestShrinkRemapsSurvivingFaults(t *testing.T) {
	c := NewComm(NewPlatform(1, 3))
	c.InstallFaultPlan(&FaultPlan{Seed: 5, Faults: []Fault{
		{Kind: FaultCrash, Rank: 1, Phase: 0},
		{Kind: FaultSlowdown, Rank: 2, Phase: 2, Delay: 0.125},
		{Kind: FaultCorrupt, Rank: 0, Phase: 3, Word: 0, Delta: 0.5},
	}})
	failure := runExpectPanic(t, c, allreduceBody(2, 2))
	rc, ok := failure.(RankCrash)
	if !ok || rc.Rank != 1 {
		t.Fatalf("failure = %#v, want RankCrash of rank 1", failure)
	}

	s := c.Shrink(rc.Rank)
	if s.P() != 2 {
		t.Fatalf("shrunk P = %d, want 2", s.P())
	}
	if !s.FaultPlanActive() {
		t.Fatal("shrunk comm lost the fault plan")
	}
	// Rank 2's slowdown renumbered to rank 1; rank 0's corruption kept.
	want := []Fault{
		{Kind: FaultSlowdown, Rank: 1, Phase: 2, Delay: 0.125},
		{Kind: FaultCorrupt, Rank: 0, Phase: 3, Word: 0, Delta: 0.5},
	}
	if !reflect.DeepEqual(s.plan.Faults, want) {
		t.Fatalf("shrunk plan %+v, want %+v", s.plan.Faults, want)
	}
	// The crash fired entering phase 0, so the clock carries over at 0 and
	// both survivors' faults still fire on the shrunk comm. The corruption
	// sits at phase 3 (a broadcast), so it defers to the reduction at
	// phase 4 — the third run.
	var st Stats
	watchdog(t, func() {
		for it := 0; it < 3; it++ {
			st.Accumulate(s.Run(allreduceBody(1, 2)))
		}
	})
	//lint:ignore nofloateq the injected delay is summed from exactly one fault, so it is bit-exact
	if st.InjectedDelay != 0.125 {
		t.Fatalf("InjectedDelay = %g, want 0.125", st.InjectedDelay)
	}
	if st.CorruptWords != 1 {
		t.Fatalf("CorruptWords = %d, want 1", st.CorruptWords)
	}

	// The original communicator was not mutated by the shrink.
	if c.P() != 3 {
		t.Fatalf("original P changed to %d", c.P())
	}
}

func TestShrinkValidation(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	for _, dead := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shrink(%d) did not panic", dead)
				}
			}()
			c.Shrink(dead)
		}()
	}
	one := NewComm(NewPlatform(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("Shrink on P=1 did not panic")
		}
	}()
	one.Shrink(0)
}
