package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// These regression tests pin down the abort protocol (a bad Run panics
// loudly and deterministically instead of deadlocking) and Comm reuse
// (sequential Runs start from fully reset statistics). All Run calls go
// through the watchdog so a future collective bug fails CI with a goroutine
// dump instead of hanging it.

const mismatchMsg = "cluster: mismatched collective operations across ranks"

// runExpectPanic executes body on c under the watchdog and returns the value
// Run panicked with (nil if it completed).
func runExpectPanic(t *testing.T, c *Comm, body func(r *Rank)) (failure any) {
	t.Helper()
	watchdog(t, func() {
		defer func() { failure = recover() }()
		c.Run(body)
	})
	return failure
}

func TestRunMismatchedKindPanicsFromRun(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	failure := runExpectPanic(t, c, func(r *Rank) {
		v := []float64{1}
		if r.ID == 0 {
			//lint:ignore collective deliberate kind mismatch; the test asserts the runtime panic
			r.Reduce(v, 0)
		} else {
			//lint:ignore collective deliberate kind mismatch; the test asserts the runtime panic
			r.Broadcast(v, 0)
		}
	})
	if failure != mismatchMsg {
		t.Fatalf("Run panicked with %v, want %q", failure, mismatchMsg)
	}
}

func TestRunMismatchedRootPanicsFromRun(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	failure := runExpectPanic(t, c, func(r *Rank) {
		//lint:ignore collective deliberate root mismatch; the test asserts the runtime panic
		r.Reduce([]float64{1}, r.ID%2)
	})
	if failure != mismatchMsg {
		t.Fatalf("Run panicked with %v, want %q", failure, mismatchMsg)
	}
}

func TestRunMismatchedLengthPanicsFromRun(t *testing.T) {
	c := NewComm(NewPlatform(2, 2))
	failure := runExpectPanic(t, c, func(r *Rank) {
		//lint:ignore collective deliberate length mismatch; the test asserts the runtime panic
		r.Allreduce(make([]float64, 1+r.ID%2))
	})
	if failure != mismatchMsg {
		t.Fatalf("Run panicked with %v, want %q", failure, mismatchMsg)
	}
}

func TestRunBodyPanicPropagatesAndReleasesPeers(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	failure := runExpectPanic(t, c, func(r *Rank) {
		if r.ID == 2 {
			panic("solver exploded")
		}
		// The other ranks head into a rendezvous rank 2 will never join;
		// the abort must release them.
		r.Barrier()
	})
	if failure != "solver exploded" {
		t.Fatalf("Run panicked with %v, want the body's panic value", failure)
	}
}

// gramLike is a deterministic body exercising both collectives and the flop
// accounting, so every Stats field is populated.
func gramLike(r *Rank) {
	v := []float64{float64(r.ID + 1), 2}
	r.AddFlops(int64(10 * (r.ID + 1)))
	r.Reduce(v, 0)
	r.Broadcast(v, 0)
	r.AddFlops(5)
}

func TestCommReusableWithResetStats(t *testing.T) {
	c := NewComm(NewPlatform(2, 2))
	var first, second Stats
	watchdog(t, func() { first = c.Run(gramLike) })
	watchdog(t, func() { second = c.Run(gramLike) })

	// Wall clock differs run to run; everything modeled must be identical,
	// which is only possible if the second Run started from reset state.
	first.Wall, second.Wall = 0, 0
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("sequential Runs diverge:\nfirst  %+v\nsecond %+v", first, second)
	}
	if first.Phases != 2 || first.TotalFlops != (10+20+30+40)+4*5 {
		t.Fatalf("unexpected accounting: %+v", first)
	}
}

func TestCommReusableAfterAbort(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	var clean Stats
	watchdog(t, func() { clean = c.Run(gramLike) })

	if failure := runExpectPanic(t, c, func(r *Rank) {
		if r.ID == 0 {
			panic("cluster: induced failure")
		}
		r.Barrier()
	}); failure == nil {
		t.Fatal("induced failure did not propagate out of Run")
	}

	var after Stats
	watchdog(t, func() { after = c.Run(gramLike) })
	clean.Wall, after.Wall = 0, 0
	if !reflect.DeepEqual(clean, after) {
		t.Fatalf("Comm did not fully reset after an aborted Run:\nbefore %+v\nafter  %+v", clean, after)
	}
}

// TestMidCollectiveCrashAbortsAllRanksWithCrasherID pins down the fault
// abort protocol: a fault-plan crash striking any rank of a P=4 cluster in
// the middle of the collective schedule must abort the whole Run — no
// deadlocked survivors — and the panic that escapes must be the RankCrash
// naming the crashing rank, so postmortems identify the culprit.
func TestMidCollectiveCrashAbortsAllRanksWithCrasherID(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		c := NewComm(NewPlatform(1, 4))
		// Phase 1 is the Broadcast half of the first Allreduce: mid-schedule,
		// mid-collective-sequence.
		c.InstallFaultPlan(&FaultPlan{Faults: []Fault{
			{Kind: FaultCrash, Rank: victim, Phase: 1},
		}})
		failure := runExpectPanic(t, c, func(r *Rank) {
			for it := 0; it < 3; it++ {
				r.Allreduce([]float64{float64(r.ID)})
			}
		})
		if failure == nil {
			t.Fatalf("victim %d: crash did not abort the Run", victim)
		}
		err, ok := failure.(error)
		if !ok {
			t.Fatalf("victim %d: Run panicked with %v, want a RankCrash error", victim, failure)
		}
		var rc RankCrash
		if !errors.As(err, &rc) || rc.Rank != victim {
			t.Fatalf("victim %d: panic value %v does not identify the crashing rank", victim, err)
		}
		if want := fmt.Sprintf("rank %d", victim); !strings.Contains(err.Error(), want) {
			t.Fatalf("victim %d: panic message %q lacks %q", victim, err.Error(), want)
		}
	}
}
