package cluster

import (
	"reflect"
	"testing"
)

// TestTraceRecording proves the recorded schedule matches the collectives
// the body executed, in order, with Allreduce expanded into its two phases.
func TestTraceRecording(t *testing.T) {
	c := NewComm(NewPlatform(1, 4))
	c.EnableTrace()
	vec := make([]float64, 5)
	st := c.Run(func(r *Rank) {
		r.Reduce(vec[:3], 2)
		r.Barrier()
		r.Allreduce(vec)
		r.Broadcast(vec[:1], 1)
	})
	want := []PhaseTrace{
		{Op: "Reduce", Root: 2, Words: 3},
		{Op: "Barrier", Root: 0, Words: 0},
		{Op: "Reduce", Root: 0, Words: 5},
		{Op: "Broadcast", Root: 0, Words: 5},
		{Op: "Broadcast", Root: 1, Words: 1},
	}
	if !reflect.DeepEqual(st.Trace, want) {
		t.Fatalf("trace = %v, want %v", st.Trace, want)
	}
	if st.Phases != int64(len(want)) {
		t.Fatalf("Phases = %d, want %d", st.Phases, len(want))
	}

	// Traces reset per Run and concatenate under Accumulate.
	st2 := c.Run(func(r *Rank) { r.Barrier() })
	if len(st2.Trace) != 1 || st2.Trace[0].Op != "Barrier" {
		t.Fatalf("second run trace = %v", st2.Trace)
	}
	st.Accumulate(st2)
	if len(st.Trace) != len(want)+1 {
		t.Fatalf("accumulated trace length = %d, want %d", len(st.Trace), len(want)+1)
	}
}

// TestTraceOffByDefault proves untracked runs carry no trace.
func TestTraceOffByDefault(t *testing.T) {
	c := NewComm(NewPlatform(1, 2))
	st := c.Run(func(r *Rank) { r.Barrier() })
	if st.Trace != nil {
		t.Fatalf("trace recorded without EnableTrace: %v", st.Trace)
	}
}
