// Package imgproc provides the small image toolkit the denoising and
// super-resolution applications need: a float64 grayscale image type, patch
// extraction/assembly, and the PSNR/MSE/SNR metrics the paper reports
// (§VIII-D2).
package imgproc

import (
	"fmt"
	"math"

	"extdict/internal/mat"
)

// Image is a grayscale image with float64 intensities, row-major.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a zeroed W×H image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic("imgproc: negative image dimension")
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set assigns the intensity at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// MaxAbs returns the largest absolute intensity (the MAX of the PSNR
// definition for zero-centered synthetic intensities).
func (im *Image) MaxAbs() float64 {
	var m float64
	for _, v := range im.Pix {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// MSE returns the mean squared error between two equal-length signals.
func MSE(ref, test []float64) float64 {
	if len(ref) != len(test) {
		panic("imgproc: MSE length mismatch")
	}
	if len(ref) == 0 {
		return 0
	}
	var s float64
	for i, r := range ref {
		d := r - test[i]
		s += d * d
	}
	return s / float64(len(ref))
}

// PSNR returns the peak signal-to-noise ratio in dB:
// 10·log₁₀(MAX²/MSE), the metric the paper reports for reconstruction
// quality (≥25 dB recommended, §VIII-D2). maxVal is the peak signal value;
// pass 0 to use the reference's max |value|.
func PSNR(ref, test []float64, maxVal float64) float64 {
	mse := MSE(ref, test)
	if mse == 0 {
		return math.Inf(1)
	}
	if maxVal <= 0 {
		for _, v := range ref {
			if a := math.Abs(v); a > maxVal {
				maxVal = a
			}
		}
	}
	return 10 * math.Log10(maxVal*maxVal/mse)
}

// SNR returns the signal-to-noise ratio in dB of test against ref.
func SNR(ref, test []float64) float64 {
	if len(ref) != len(test) {
		panic("imgproc: SNR length mismatch")
	}
	var sig, noise float64
	for i, r := range ref {
		sig += r * r
		d := r - test[i]
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// RelError returns ‖ref - test‖₂/‖ref‖₂, the paper's learning-error metric
// for the reconstruction applications.
func RelError(ref, test []float64) float64 {
	if len(ref) != len(test) {
		panic("imgproc: RelError length mismatch")
	}
	diff := make([]float64, len(ref))
	mat.SubVec(diff, ref, test)
	d := mat.Norm2(ref)
	if d == 0 {
		return 0
	}
	return mat.Norm2(diff) / d
}

// ExtractPatches cuts every patch of side `side` at stride `stride` from the
// image, returning one column per patch (side² rows, row-major pixels) plus
// the patch origins.
func ExtractPatches(im *Image, side, stride int) (*mat.Dense, [][2]int, error) {
	if side <= 0 || stride <= 0 {
		return nil, nil, fmt.Errorf("imgproc: invalid patch side %d / stride %d", side, stride)
	}
	if im.W < side || im.H < side {
		return nil, nil, fmt.Errorf("imgproc: image %dx%d smaller than patch %d", im.W, im.H, side)
	}
	var origins [][2]int
	for y := 0; y+side <= im.H; y += stride {
		for x := 0; x+side <= im.W; x += stride {
			origins = append(origins, [2]int{x, y})
		}
	}
	out := mat.NewDense(side*side, len(origins))
	col := make([]float64, side*side)
	for j, o := range origins {
		k := 0
		for dy := 0; dy < side; dy++ {
			for dx := 0; dx < side; dx++ {
				col[k] = im.At(o[0]+dx, o[1]+dy)
				k++
			}
		}
		out.SetCol(j, col)
	}
	return out, origins, nil
}

// AssemblePatches reverses ExtractPatches: patches are written back at their
// origins and overlapping pixels are averaged. The image dimensions must
// cover every origin.
func AssemblePatches(w, h, side int, patches *mat.Dense, origins [][2]int) (*Image, error) {
	if patches.Rows != side*side {
		return nil, fmt.Errorf("imgproc: patch rows %d != side² %d", patches.Rows, side*side)
	}
	if patches.Cols != len(origins) {
		return nil, fmt.Errorf("imgproc: %d patches for %d origins", patches.Cols, len(origins))
	}
	im := NewImage(w, h)
	weight := make([]float64, w*h)
	col := make([]float64, side*side)
	for j, o := range origins {
		if o[0] < 0 || o[1] < 0 || o[0]+side > w || o[1]+side > h {
			return nil, fmt.Errorf("imgproc: origin %v out of bounds", o)
		}
		patches.Col(j, col)
		k := 0
		for dy := 0; dy < side; dy++ {
			for dx := 0; dx < side; dx++ {
				idx := (o[1]+dy)*w + o[0] + dx
				im.Pix[idx] += col[k]
				weight[idx]++
				k++
			}
		}
	}
	for i, wt := range weight {
		if wt > 0 {
			im.Pix[i] /= wt
		}
	}
	return im, nil
}

// Downsample2 returns the image averaged over 2×2 blocks (used to fabricate
// low-resolution inputs for super-resolution demos). Odd trailing rows or
// columns are dropped.
func Downsample2(im *Image) *Image {
	out := NewImage(im.W/2, im.H/2)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			s := im.At(2*x, 2*y) + im.At(2*x+1, 2*y) +
				im.At(2*x, 2*y+1) + im.At(2*x+1, 2*y+1)
			out.Set(x, y, s/4)
		}
	}
	return out
}
