package imgproc

import (
	"math"
	"testing"

	"extdict/internal/rng"
)

func rampImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, float64(y*w+x))
		}
	}
	return im
}

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 5)
	if im.At(2, 1) != 5 || im.Pix[1*4+2] != 5 {
		t.Fatal("At/Set layout wrong")
	}
	c := im.Clone()
	c.Set(0, 0, 9)
	if im.At(0, 0) != 0 {
		t.Fatal("Clone aliases")
	}
	im.Set(3, 2, -7)
	if im.MaxAbs() != 7 {
		t.Fatalf("MaxAbs %v", im.MaxAbs())
	}
}

func TestMSEAndPSNR(t *testing.T) {
	ref := []float64{1, 2, 3, 4}
	if MSE(ref, ref) != 0 {
		t.Fatal("MSE of identical signals")
	}
	if !math.IsInf(PSNR(ref, ref, 0), 1) {
		t.Fatal("PSNR of identical signals must be +Inf")
	}
	test := []float64{1, 2, 3, 6}
	if got := MSE(ref, test); got != 1 {
		t.Fatalf("MSE %v, want 1", got)
	}
	// PSNR with max 4: 10·log10(16/1).
	if got := PSNR(ref, test, 0); math.Abs(got-10*math.Log10(16)) > 1e-12 {
		t.Fatalf("PSNR %v", got)
	}
	if got := PSNR(ref, test, 10); math.Abs(got-20) > 1e-12 {
		t.Fatalf("PSNR with explicit max %v, want 20", got)
	}
}

func TestSNRKnown(t *testing.T) {
	ref := []float64{3, 0, 0, 0}
	test := []float64{3, 1, 0, 0} // noise power 1, signal power 9
	if got := SNR(ref, test); math.Abs(got-10*math.Log10(9)) > 1e-12 {
		t.Fatalf("SNR %v", got)
	}
	if !math.IsInf(SNR(ref, ref), 1) {
		t.Fatal("SNR of identical must be +Inf")
	}
}

func TestRelError(t *testing.T) {
	ref := []float64{3, 4}
	test := []float64{3, 0}
	if got := RelError(ref, test); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("RelError %v, want 0.8", got)
	}
	if RelError([]float64{0, 0}, []float64{0, 0}) != 0 {
		t.Fatal("zero-ref RelError")
	}
}

func TestExtractAssembleRoundTripNonOverlapping(t *testing.T) {
	im := rampImage(8, 6)
	p, origins, err := ExtractPatches(im, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cols != 4*3 || p.Rows != 4 {
		t.Fatalf("patches %dx%d", p.Rows, p.Cols)
	}
	re, err := AssemblePatches(8, 6, 2, p, origins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if re.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %v vs %v", i, re.Pix[i], im.Pix[i])
		}
	}
}

func TestExtractAssembleRoundTripOverlapping(t *testing.T) {
	im := rampImage(9, 9)
	p, origins, err := ExtractPatches(im, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	re, err := AssemblePatches(9, 9, 3, p, origins)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent overlapping patches must average back to the original.
	for i := range im.Pix {
		if math.Abs(re.Pix[i]-im.Pix[i]) > 1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, re.Pix[i], im.Pix[i])
		}
	}
}

func TestExtractPatchesErrors(t *testing.T) {
	im := rampImage(4, 4)
	if _, _, err := ExtractPatches(im, 0, 1); err == nil {
		t.Fatal("side 0 accepted")
	}
	if _, _, err := ExtractPatches(im, 5, 1); err == nil {
		t.Fatal("oversized patch accepted")
	}
}

func TestAssemblePatchesErrors(t *testing.T) {
	im := rampImage(6, 6)
	p, origins, _ := ExtractPatches(im, 2, 2)
	if _, err := AssemblePatches(6, 6, 3, p, origins); err == nil {
		t.Fatal("side mismatch accepted")
	}
	if _, err := AssemblePatches(6, 6, 2, p, origins[:1]); err == nil {
		t.Fatal("origin count mismatch accepted")
	}
	bad := [][2]int{{5, 5}}
	if _, err := AssemblePatches(6, 6, 2, p.ColSlice([]int{0}), bad); err == nil {
		t.Fatal("out-of-bounds origin accepted")
	}
}

func TestDownsample2(t *testing.T) {
	im := NewImage(4, 2)
	for i := range im.Pix {
		im.Pix[i] = float64(i)
	}
	d := Downsample2(im)
	if d.W != 2 || d.H != 1 {
		t.Fatalf("downsampled %dx%d", d.W, d.H)
	}
	// Block (0,0): pixels 0,1,4,5 -> 2.5.
	//lint:ignore nofloateq the mean of 0,1,4,5 is exactly representable and must round-trip bitwise
	if d.At(0, 0) != 2.5 {
		t.Fatalf("block average %v", d.At(0, 0))
	}
}

func TestPSNRImprovesWithLessNoise(t *testing.T) {
	r := rng.New(1)
	ref := make([]float64, 1000)
	for i := range ref {
		ref[i] = r.NormFloat64()
	}
	mk := func(sigma float64) []float64 {
		out := make([]float64, len(ref))
		for i := range out {
			out[i] = ref[i] + sigma*r.NormFloat64()
		}
		return out
	}
	if PSNR(ref, mk(0.01), 0) <= PSNR(ref, mk(0.2), 0) {
		t.Fatal("PSNR not monotone in noise level")
	}
}
