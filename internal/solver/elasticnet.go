package solver

import (
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
)

// ElasticNetOpts configures an Elastic Net solve:
//
//	min_x ‖A·x - y‖² + λ₁‖x‖₁ + λ₂‖x‖².
//
// The paper lists Elastic Net alongside LASSO and Ridge as the descent-based
// regression objectives the framework targets (§II-A); λ₂ = 0 reduces to
// LASSO, λ₁ = 0 to Ridge.
type ElasticNetOpts struct {
	// Lambda1 weights the ℓ₁ (sparsity) term.
	Lambda1 float64
	// Lambda2 weights the ℓ₂ (ridge) term.
	Lambda2 float64
	// LearningRate is Adagrad's base step (default 0.5).
	LearningRate float64
	// MaxIters caps the iteration count (default 500).
	MaxIters int
	// Tol is the relative objective-change convergence tolerance
	// (default 1e-6, with the same patience rule as Lasso).
	Tol float64
	// X0 optionally warm-starts the solve.
	X0 []float64
}

func (o *ElasticNetOpts) fill() {
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
}

// ElasticNetResult is the outcome of an ElasticNet solve.
type ElasticNetResult struct {
	X         []float64
	Iters     int
	Converged bool
	Objective float64
	History   []float64
	Stats     cluster.Stats
}

// ElasticNet minimizes the elastic-net objective with the same distributed
// Adagrad proximal iteration as Lasso: the ℓ₂ term joins the smooth
// gradient, the ℓ₁ term stays in the prox.
func ElasticNet(op dist.Operator, aty []float64, yNorm2 float64, opts ElasticNetOpts) ElasticNetResult {
	opts.fill()
	n := op.Dim()
	if len(aty) != n {
		panic("solver: len(aty) != operator dim")
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			panic("solver: len(X0) != operator dim")
		}
		copy(x, opts.X0)
	}
	gx := make([]float64, n)
	grad := make([]float64, n)
	accum := make([]float64, n)
	// Preallocated to the iteration cap: the hot loop appends nothing.
	history := make([]float64, opts.MaxIters)
	const adaEps = 1e-12
	const patience = 5

	res := ElasticNetResult{X: x}
	prevObj := math.Inf(1)
	small := 0
	for it := 0; it < opts.MaxIters; it++ {
		st := op.Apply(x, gx)
		res.Stats.Accumulate(st)
		res.Iters = it + 1

		x2 := mat.Dot(x, x)
		obj := mat.Dot(x, gx) - 2*mat.Dot(aty, x) + yNorm2 +
			opts.Lambda1*mat.Norm1(x) + opts.Lambda2*x2
		history[it] = obj
		res.Objective = obj

		if math.Abs(prevObj-obj) <= opts.Tol*math.Max(1, math.Abs(obj)) {
			small++
			if small >= patience {
				res.Converged = true
				break
			}
		} else {
			small = 0
		}
		prevObj = obj

		// Smooth gradient: 2(Gx - Aᵀy) + 2λ₂x.
		for i := range grad {
			grad[i] = 2*(gx[i]-aty[i]) + 2*opts.Lambda2*x[i]
		}
		for i := range x {
			accum[i] += grad[i] * grad[i]
			lr := opts.LearningRate / math.Sqrt(accum[i]+adaEps)
			x[i] = softThreshold(x[i]-lr*grad[i], lr*opts.Lambda1)
		}
	}
	res.History = history[:res.Iters]
	return res
}
