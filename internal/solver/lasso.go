// Package solver implements the iterative learning algorithms ExtDict's
// evaluation runs on top of the distributed Gram operators: LASSO solved by
// proximal gradient descent with Adagrad step sizes (the paper's choice,
// §VIII-A) and the Power method with deflation for top-k PCA.
//
// Solvers see only the dist.Operator interface, so the same code runs on the
// raw data (AᵀA·x), on any transformed representation ((DC)ᵀDC·x), or on the
// stochastic SGD estimator — with per-iteration cost and total distributed
// statistics accounted identically.
package solver

import (
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
)

// LassoOpts configures a LASSO solve: min_x ‖A·x - y‖² + λ‖x‖₁.
type LassoOpts struct {
	// Lambda is the ℓ₁ regularization weight.
	Lambda float64
	// LearningRate is Adagrad's base step (default 0.5).
	LearningRate float64
	// MaxIters caps the iteration count (default 500).
	MaxIters int
	// Tol stops iteration when the objective's relative improvement falls
	// below it (default 1e-6).
	Tol float64
	// X0 optionally warm-starts the solve; nil starts at zero.
	X0 []float64
	// CheckpointEvery takes an in-memory snapshot of the solver state
	// through Sink every k iterations (0 disables checkpointing). The
	// Supervisor uses the snapshots to restart a solve after a rank crash.
	CheckpointEvery int
	// Sink receives each snapshot. The pointed-to checkpoint and its
	// buffers are owned by the solver and overwritten at the next
	// snapshot; consumers needing longer-lived copies must clone.
	Sink func(*Checkpoint)
	// Resume restores the solver state (iterate, Adagrad accumulators,
	// iteration counter) from a snapshot previously emitted via Sink and
	// continues from that iteration. X0 is ignored when resuming.
	Resume *Checkpoint
}

func (o *LassoOpts) fill() {
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
}

// LassoResult is the outcome of a LASSO solve.
type LassoResult struct {
	// X is the solution vector.
	X []float64
	// Iters is the solve's iteration counter after this call: the number
	// of iterations executed, counting any iterations a Resume checkpoint
	// carried in. History covers only this call's window.
	Iters int
	// Converged reports whether the tolerance was reached before MaxIters.
	Converged bool
	// Objective is the final value of ‖Ax - y‖² + λ‖x‖₁.
	Objective float64
	// History records the objective at every iteration.
	History []float64
	// Stats accumulates the distributed cost of all iterations.
	Stats cluster.Stats
}

// Lasso minimizes ‖A·x - y‖² + λ‖x‖₁ using the Gram operator for AᵀA·x.
//
// aty must hold Aᵀ·y (computed once in preprocessing — it costs one pass
// over the data) and yNorm2 must hold ‖y‖² so the true objective can be
// tracked. Each iteration performs exactly one distributed Gram product
// (the paper's "update of type G·x_t - Aᵀy"), an Adagrad-scaled step, and a
// proximal soft-threshold for the ℓ₁ term.
func Lasso(op dist.Operator, aty []float64, yNorm2 float64, opts LassoOpts) LassoResult {
	opts.fill()
	n := op.Dim()
	if len(aty) != n {
		panic("solver: len(aty) != operator dim")
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			panic("solver: len(X0) != operator dim")
		}
		copy(x, opts.X0)
	}
	gx := make([]float64, n)
	grad := make([]float64, n)
	accum := make([]float64, n)
	startIter := 0
	if opts.Resume != nil {
		if len(opts.Resume.X) != n || len(opts.Resume.Accum) != n {
			panic("solver: resume checkpoint dim mismatch")
		}
		copy(x, opts.Resume.X)
		copy(accum, opts.Resume.Accum)
		startIter = opts.Resume.Iter
	}
	// History is preallocated to the iteration cap so the hot loop below
	// appends nothing; it is trimmed to the iterations actually run.
	history := make([]float64, opts.MaxIters)
	const adaEps = 1e-12

	// The snapshot buffers are hoisted out of the hot loop: a checkpoint is
	// two copies into preallocated storage, never an allocation.
	checkpointing := opts.CheckpointEvery > 0 && opts.Sink != nil
	var ckpt Checkpoint
	if checkpointing {
		ckpt = Checkpoint{X: make([]float64, n), Accum: make([]float64, n)}
	}

	res := LassoResult{X: x, Iters: startIter}
	prevObj := math.Inf(1)
	// Adagrad with the ℓ₁ prox descends on average but the objective can
	// jitter by tiny amounts near the optimum; require a run of
	// small-change iterations before declaring convergence.
	const patience = 5
	small := 0
	for it := startIter; it < opts.MaxIters; it++ {
		st := op.Apply(x, gx)
		res.Stats.Accumulate(st)
		res.Iters = it + 1

		// Objective from the quantities already in hand:
		// ‖Ax-y‖² = xᵀGx - 2·(Aᵀy)ᵀx + ‖y‖².
		obj := mat.Dot(x, gx) - 2*mat.Dot(aty, x) + yNorm2 + opts.Lambda*mat.Norm1(x)
		history[it-startIter] = obj
		res.Objective = obj

		if math.Abs(prevObj-obj) <= opts.Tol*math.Max(1, math.Abs(obj)) {
			small++
			if small >= patience {
				res.Converged = true
				break
			}
		} else {
			small = 0
		}
		prevObj = obj

		// Gradient of the smooth part: 2(Gx - Aᵀy), computed with the
		// element-wise vector kernels (bit-identical to the scalar loop).
		mat.SubVec(grad, gx, aty)
		mat.ScaleVec(2, grad)
		// Adagrad step + proximal soft threshold (composite Adagrad).
		for i := range x {
			accum[i] += grad[i] * grad[i]
			lr := opts.LearningRate / math.Sqrt(accum[i]+adaEps)
			x[i] = softThreshold(x[i]-lr*grad[i], lr*opts.Lambda)
		}

		if checkpointing && (it+1)%opts.CheckpointEvery == 0 {
			copy(ckpt.X, x)
			copy(ckpt.Accum, accum)
			ckpt.Iter = it + 1
			opts.Sink(&ckpt)
		}
	}
	res.History = history[:res.Iters-startIter]
	return res
}

// softThreshold is the ℓ₁ proximal operator: sign(v)·max(|v|-t, 0).
func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}
