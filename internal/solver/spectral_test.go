package solver

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// clusterAgreement measures how well assign matches truth up to label
// permutation: the fraction of pairs (i, j) on which the two clusterings
// agree about "same cluster vs different cluster" (Rand index).
func clusterAgreement(assign, truth []int) float64 {
	n := len(assign)
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same1 := assign[i] == assign[j]
			same2 := truth[i] == truth[j]
			if same1 == same2 {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}

// wellSeparatedUnion makes a union of rank-1 subspaces (direction
// clusters, the paper's Fig. 2 geometry): the setting SpectralCluster is
// scoped to.
func wellSeparatedUnion(t *testing.T, seed uint64) *dataset.Union {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{
		M: 48, N: 240, Ks: []int{1, 1, 1}, NoiseSigma: 0.01,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSpectralClusterRecoversSubspaces(t *testing.T) {
	u := wellSeparatedUnion(t, 81)
	res := SpectralCluster(singleCoreOp(u.A), SpectralOpts{
		Clusters: 3, Seed: 82,
	})
	if len(res.Assign) != 240 {
		t.Fatalf("assignment length %d", len(res.Assign))
	}
	if got := clusterAgreement(res.Assign, u.Membership); got < 0.9 {
		t.Fatalf("Rand agreement %v with ground truth", got)
	}
	if res.Inertia < 0 {
		t.Fatal("negative inertia")
	}
}

func TestSpectralClusterOnExDOperator(t *testing.T) {
	// The framework claim again: clustering through the transformed
	// operator matches clustering through the raw one.
	u := wellSeparatedUnion(t, 83)
	tr, err := exd.Fit(u.A, exd.Params{L: 120, Epsilon: 0.02, Seed: 84, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	op, err := dist.NewExDGram(cluster.NewComm(cluster.NewPlatform(1, 2)), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	res := SpectralCluster(op, SpectralOpts{Clusters: 3, Seed: 85})
	if got := clusterAgreement(res.Assign, u.Membership); got < 0.85 {
		t.Fatalf("Rand agreement %v through ExD operator", got)
	}
}

func TestSpectralClusterAssignmentsInRange(t *testing.T) {
	u := wellSeparatedUnion(t, 86)
	res := SpectralCluster(singleCoreOp(u.A), SpectralOpts{Clusters: 4, Seed: 87})
	for i, c := range res.Assign {
		if c < 0 || c >= 4 {
			t.Fatalf("column %d assigned to %d", i, c)
		}
	}
}

func TestSpectralClusterDefaults(t *testing.T) {
	var o SpectralOpts
	o.fill()
	if o.Clusters != 2 || o.EmbedDim != 2 || o.KMeansIters != 50 || o.Restarts != 4 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestKMeansDegenerate(t *testing.T) {
	// k larger than the point count must not crash; identical points must
	// yield zero inertia.
	r := rng.New(88)
	emb := matFromRows([][]float64{{1, 0}, {1, 0}, {1, 0}})
	assign, inertia := kmeans(emb, 5, 10, r)
	if len(assign) != 3 || inertia != 0 {
		t.Fatalf("degenerate kmeans: %v %v", assign, inertia)
	}
}

// matFromRows builds a dense matrix from row slices (test helper).
func matFromRows(rows [][]float64) *mat.Dense {
	m := mat.NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}
