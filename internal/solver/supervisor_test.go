package solver

import (
	"math"
	"strings"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// lassoProblem builds a small consistent system with a unique LASSO
// minimizer so fault-free and recovered solves must agree.
func lassoProblem(seed uint64) (a *mat.Dense, aty []float64, yn2 float64) {
	r := rng.New(seed)
	a = mat.NewDense(40, 12)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	y := make([]float64, 40)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	return a, a.MulVecT(y, nil), mat.Dot(y, y)
}

func tightLassoOpts() LassoOpts {
	return LassoOpts{Lambda: 0.1, MaxIters: 3000, Tol: 1e-12}
}

func TestSupervisedLassoRecoversFromCrash(t *testing.T) {
	a, aty, yn2 := lassoProblem(11)
	base := Lasso(dist.NewDenseGram(cluster.NewComm(cluster.NewPlatform(1, 4)), a), aty, yn2, tightLassoOpts())

	comm := cluster.NewComm(cluster.NewPlatform(1, 4))
	comm.InstallFaultPlan(&cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.FaultCrash, Rank: 2, Phase: 61},
	}})
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }
	res, rec, err := SupervisedLasso(comm, build, aty, yn2, tightLassoOpts(), SupervisorOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 1 || len(rec.Crashes) != 1 || rec.Crashes[0].Rank != 2 {
		t.Fatalf("recovery %+v, want 1 restart of rank-2 crash", rec)
	}
	if rec.FinalP != 3 {
		t.Fatalf("FinalP = %d, want 3", rec.FinalP)
	}
	if rec.BackoffTime <= 0 {
		t.Fatal("recovery charged no backoff")
	}
	for i := range res.X {
		if d := math.Abs(res.X[i] - base.X[i]); d > 1e-6 {
			t.Fatalf("recovered x[%d] off by %g from fault-free", i, d)
		}
	}
	// The resumed attempt did not start over: its history covers only the
	// post-checkpoint window while the iteration counter carries the
	// checkpointed prefix.
	if len(res.History) >= res.Iters {
		t.Fatalf("history covers %d of %d iters; resumed solve lost the pre-crash prefix",
			len(res.History), res.Iters)
	}
}

func TestSupervisedLassoCrashBeforeFirstCheckpoint(t *testing.T) {
	a, aty, yn2 := lassoProblem(12)
	comm := cluster.NewComm(cluster.NewPlatform(1, 4))
	comm.InstallFaultPlan(&cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.FaultCrash, Rank: 0, Phase: 2},
	}})
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }
	res, rec, err := SupervisedLasso(comm, build, aty, yn2, tightLassoOpts(), SupervisorOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rec.Restarts)
	}
	if !res.Converged {
		t.Fatal("restarted-from-scratch solve did not converge")
	}
}

func TestSupervisedLassoExhaustsRetries(t *testing.T) {
	a, aty, yn2 := lassoProblem(13)
	comm := cluster.NewComm(cluster.NewPlatform(1, 4))
	comm.InstallFaultPlan(&cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.FaultCrash, Rank: 0, Phase: 11},
		// Targets a survivor: after rank 0 dies this renumbers to rank 1
		// of the shrunk communicator and still fires.
		{Kind: cluster.FaultCrash, Rank: 2, Phase: 31},
	}})
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }
	_, rec, err := SupervisedLasso(comm, build, aty, yn2, tightLassoOpts(), SupervisorOpts{MaxRetries: 1})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	// The second crash renumbered to rank 1 of the shrunk communicator.
	if !strings.Contains(err.Error(), "rank 1 killed by fault plan") {
		t.Fatalf("error %q does not name the dead rank", err)
	}
	if len(rec.Crashes) != 2 || rec.Restarts != 1 {
		t.Fatalf("recovery %+v, want 2 crashes and 1 restart", rec)
	}
}

func TestSupervisedPowerRecoversFromCrash(t *testing.T) {
	r := rng.New(21)
	a, _ := knownSpectrum(r, 30, 16, []float64{4, 2, 1})
	popts := PowerOpts{Components: 3, MaxIters: 500, Tol: 1e-12, Seed: 7}
	base := PowerMethod(dist.NewDenseGram(cluster.NewComm(cluster.NewPlatform(1, 4)), a), popts)

	comm := cluster.NewComm(cluster.NewPlatform(1, 4))
	comm.InstallFaultPlan(&cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.FaultCrash, Rank: 1, Phase: 21},
	}})
	build := func(c *cluster.Comm) dist.Operator { return dist.NewDenseGram(c, a) }
	res, rec, err := SupervisedPower(comm, build, popts, SupervisorOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 1 || rec.FinalP != 3 {
		t.Fatalf("recovery %+v, want 1 restart ending at P=3", rec)
	}
	for k := range base.Eigenvalues {
		if d := math.Abs(res.Eigenvalues[k] - base.Eigenvalues[k]); d > 1e-6 {
			t.Fatalf("eigenvalue %d off by %g from fault-free", k, d)
		}
		// Eigenvectors are defined up to sign.
		var dot float64
		for i := 0; i < 16; i++ {
			dot += res.Eigenvectors.At(i, k) * base.Eigenvectors.At(i, k)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("eigenvector %d misaligned: |dot| = %g", k, math.Abs(dot))
		}
	}
}

func TestLassoCheckpointResumeMatchesUninterrupted(t *testing.T) {
	// Pure solver-level contract, no faults: resuming from a mid-solve
	// snapshot continues the same trajectory the uninterrupted solve took.
	a, aty, yn2 := lassoProblem(14)
	op := singleCoreOp(a)

	var snap *Checkpoint
	opts := tightLassoOpts()
	opts.CheckpointEvery = 25
	opts.Sink = func(c *Checkpoint) {
		if snap == nil && c.Iter == 50 {
			snap = &Checkpoint{
				Iter:  c.Iter,
				X:     append([]float64(nil), c.X...),
				Accum: append([]float64(nil), c.Accum...),
			}
		}
	}
	full := Lasso(op, aty, yn2, opts)
	if snap == nil {
		t.Fatal("no iteration-50 checkpoint emitted")
	}

	resumed := Lasso(op, aty, yn2, LassoOpts{
		Lambda: 0.1, MaxIters: 3000, Tol: 1e-12, Resume: snap,
	})
	for i := range full.X {
		if d := math.Abs(full.X[i] - resumed.X[i]); d > 1e-9 {
			t.Fatalf("resumed x[%d] off by %g from uninterrupted", i, d)
		}
	}
	if resumed.Iters <= 50 {
		t.Fatalf("resumed Iters = %d, want > 50", resumed.Iters)
	}
}

func TestPowerCheckpointResumeMatchesUninterrupted(t *testing.T) {
	r := rng.New(22)
	a, _ := knownSpectrum(r, 24, 12, []float64{5, 3, 1.5})
	op := singleCoreOp(a)
	popts := PowerOpts{Components: 3, MaxIters: 400, Tol: 1e-12, Seed: 9}
	full := PowerMethod(op, popts)

	// Grab one mid-component snapshot and one component-boundary snapshot.
	var mid, boundary *Checkpoint
	withSink := popts
	withSink.CheckpointEvery = 7
	withSink.Sink = func(c *Checkpoint) {
		clone := &Checkpoint{
			Iter: c.Iter, Comp: c.Comp, TotalIters: c.TotalIters,
			X:    append([]float64(nil), c.X...),
			Vals: append([]float64(nil), c.Vals...),
		}
		for _, f := range c.Found {
			clone.Found = append(clone.Found, append([]float64(nil), f...))
		}
		if mid == nil && c.Comp == 1 && c.Iter > 0 {
			mid = clone
		}
		if boundary == nil && c.Comp == 2 && c.Iter == 0 {
			boundary = clone
		}
	}
	if got := PowerMethod(op, withSink); math.Abs(got.Eigenvalues[0]-full.Eigenvalues[0]) > 1e-12 {
		t.Fatal("enabling checkpointing changed the solve")
	}
	if mid == nil || boundary == nil {
		t.Fatal("expected snapshots not emitted")
	}

	for name, snap := range map[string]*Checkpoint{"mid-component": mid, "boundary": boundary} {
		re := popts
		re.Resume = snap
		res := PowerMethod(op, re)
		for k := range full.Eigenvalues {
			if d := math.Abs(res.Eigenvalues[k] - full.Eigenvalues[k]); d > 1e-9 {
				t.Fatalf("%s resume: eigenvalue %d off by %g", name, k, d)
			}
		}
	}
}
