package solver

import (
	"fmt"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/perf"
)

// Checkpoint is an in-memory snapshot of solver state, the unit of
// fault-tolerance: solvers emit one through their Sink hook every
// CheckpointEvery iterations, and the Supervisor feeds the last one back
// through Resume when it restarts a solve after a rank crash. LASSO uses
// Iter/X/Accum; the Power method uses Comp/Iter/X/Found/Vals/TotalIters.
type Checkpoint struct {
	// Iter is the completed-iteration counter: LASSO's global iteration,
	// or the Power method's iteration within the current component (0 at
	// a component boundary, meaning the next component has not started).
	Iter int
	// X is the current iterate (LASSO solution estimate, or the Power
	// method's mid-component vector when Iter > 0).
	X []float64
	// Accum holds LASSO's Adagrad gradient-square accumulators.
	Accum []float64
	// Comp is the number of Power-method components already completed.
	Comp int
	// Found holds the completed components' eigenvectors (Power method).
	Found [][]float64
	// Vals holds the completed components' eigenvalues (Power method).
	Vals []float64
	// TotalIters is the Power method's iteration count across components.
	TotalIters int
}

// SupervisorOpts configures fault-tolerant execution of a solve.
type SupervisorOpts struct {
	// MaxRetries caps how many crashes the supervisor absorbs before
	// giving up (default 3). Each retry shrinks the communicator by the
	// crashed rank, so retries are also bounded by P-1.
	MaxRetries int
	// CheckpointEvery is the snapshot cadence in solver iterations
	// (default 10).
	CheckpointEvery int
	// BackoffBase is the base of the modeled exponential recovery pause,
	// in virtual seconds (default 1). Retry i charges
	// perf.RetryBackoff(BackoffBase, i) to the result's ModeledTime.
	BackoffBase float64
}

func (o *SupervisorOpts) fill() {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 1
	}
}

// Recovery reports what the supervisor had to do to finish a solve.
type Recovery struct {
	// Restarts is the number of crash-and-resume cycles performed.
	Restarts int
	// Crashes records each absorbed rank crash in order.
	Crashes []cluster.RankCrash
	// BackoffTime is the total modeled recovery pause in virtual seconds,
	// already folded into the result's Stats.ModeledTime.
	BackoffTime float64
	// FinalP is the rank count of the communicator that finished the
	// solve (the original P minus one per absorbed crash).
	FinalP int
}

// recoverCrash runs f, converting a cluster.RankCrash panic into a returned
// crash record. Any other panic — a genuine bug, or the mismatched-
// collective misuse panic — propagates: the supervisor only absorbs the
// failures the fault model can recover from.
func recoverCrash(f func()) (crash *cluster.RankCrash) {
	defer func() {
		if e := recover(); e != nil {
			if rc, ok := e.(cluster.RankCrash); ok {
				crash = &rc
				return
			}
			panic(e)
		}
	}()
	f()
	return nil
}

// superviseLoop drives the generic retry cycle: run attempt, and on a rank
// crash shrink the communicator around the dead rank, charge the modeled
// backoff, and go again from the last checkpoint (the attempt closure is
// responsible for resuming). A crashed attempt's in-flight statistics die
// with it — only completed attempts and the backoff reach the final result,
// mirroring a real cluster where a dead worker's partial epoch is lost.
func superviseLoop(comm *cluster.Comm, opts SupervisorOpts, attempt func(*cluster.Comm)) (*cluster.Comm, Recovery, error) {
	rec := Recovery{FinalP: comm.P()}
	for {
		crash := recoverCrash(func() { attempt(comm) })
		if crash == nil {
			rec.FinalP = comm.P()
			return comm, rec, nil
		}
		rec.Crashes = append(rec.Crashes, *crash)
		if rec.Restarts >= opts.MaxRetries {
			return comm, rec, fmt.Errorf("solver: supervisor exhausted %d retries: %w", opts.MaxRetries, *crash)
		}
		if comm.P() <= 1 {
			return comm, rec, fmt.Errorf("solver: no surviving ranks to retry on: %w", *crash)
		}
		rec.BackoffTime += perf.RetryBackoff(opts.BackoffBase, rec.Restarts)
		rec.Restarts++
		comm = comm.Shrink(crash.Rank)
	}
}

// SupervisedLasso runs Lasso under crash supervision. build constructs the
// distributed Gram operator on a given communicator; it is re-invoked after
// every crash so the operator re-partitions its data over the survivors.
// The solve checkpoints every sup.CheckpointEvery iterations and resumes
// from the last snapshot after each crash, so completed work is never
// redone from scratch; the modeled backoff pause of every restart is added
// to the result's Stats.ModeledTime. On success err is nil and rec tells
// how many crashes were absorbed; after sup.MaxRetries crashes (or running
// out of ranks) the partial result and the error are returned.
func SupervisedLasso(comm *cluster.Comm, build func(*cluster.Comm) dist.Operator, aty []float64, yNorm2 float64, opts LassoOpts, sup SupervisorOpts) (res LassoResult, rec Recovery, err error) {
	sup.fill()
	opts.CheckpointEvery = sup.CheckpointEvery
	var last *Checkpoint
	opts.Sink = func(c *Checkpoint) { last = c }
	_, rec, err = superviseLoop(comm, sup, func(c *cluster.Comm) {
		opts.Resume = last
		res = Lasso(build(c), aty, yNorm2, opts)
	})
	res.Stats.ModeledTime += rec.BackoffTime
	return res, rec, err
}

// SupervisedPower runs PowerMethod under crash supervision; see
// SupervisedLasso for the retry/checkpoint/backoff contract.
func SupervisedPower(comm *cluster.Comm, build func(*cluster.Comm) dist.Operator, opts PowerOpts, sup SupervisorOpts) (res PowerResult, rec Recovery, err error) {
	sup.fill()
	opts.CheckpointEvery = sup.CheckpointEvery
	var last *Checkpoint
	opts.Sink = func(c *Checkpoint) { last = c }
	_, rec, err = superviseLoop(comm, sup, func(c *cluster.Comm) {
		opts.Resume = last
		res = PowerMethod(build(c), opts)
	})
	res.Stats.ModeledTime += rec.BackoffTime
	return res, rec, err
}
