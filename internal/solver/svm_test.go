package solver

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// separableData builds two well-separated clouds of unit-norm columns with
// ±1 labels: each class scatters tightly around its own direction, and the
// two directions are orthogonal, so a linear separator exists with margin.
func separableData(r *rng.RNG, m, n int) (*mat.Dense, []float64) {
	u1 := make([]float64, m)
	u2 := make([]float64, m)
	for i := range u1 {
		u1[i] = r.NormFloat64()
		u2[i] = r.NormFloat64()
	}
	mat.ScaleVec(1/mat.Norm2(u1), u1)
	// Make u2 orthogonal to u1 so the classes are well separated.
	mat.Axpy(-mat.Dot(u1, u2), u1, u2)
	mat.ScaleVec(1/mat.Norm2(u2), u2)

	a := mat.NewDense(m, n)
	labels := make([]float64, n)
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		base := u1
		labels[j] = 1
		if j%2 == 1 {
			base = u2
			labels[j] = -1
		}
		for i := range col {
			col[i] = base[i] + 0.05*r.NormFloat64()
		}
		mat.ScaleVec(1/mat.Norm2(col), col)
		a.SetCol(j, col)
	}
	return a, labels
}

func trainAccuracy(labels, margins []float64) float64 {
	correct := 0
	for i, y := range labels {
		if y*margins[i] > 0 {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func TestSVMSeparatesClasses(t *testing.T) {
	r := rng.New(101)
	a, labels := separableData(r, 30, 120)
	res := SVM(singleCoreOp(a), labels, SVMOpts{C: 10, MaxIters: 2000, Seed: 102})
	if acc := trainAccuracy(labels, res.Margins); acc < 0.99 {
		t.Fatalf("training accuracy %v", acc)
	}
	if res.SupportVectors == 0 || res.SupportVectors > 120 {
		t.Fatalf("support vectors %d", res.SupportVectors)
	}
	if res.Objective <= 0 {
		t.Fatalf("dual objective %v", res.Objective)
	}
}

func TestSVMBoxConstraints(t *testing.T) {
	r := rng.New(103)
	a, labels := separableData(r, 20, 60)
	const c = 0.5
	res := SVM(singleCoreOp(a), labels, SVMOpts{C: c, MaxIters: 800, Seed: 104})
	for i, al := range res.Alpha {
		if al < 0 || al > c+1e-12 {
			t.Fatalf("alpha[%d]=%v outside [0,%v]", i, al, c)
		}
	}
}

func TestSVMKKTInteriorPoints(t *testing.T) {
	// KKT: for 0 < αᵢ < C, the functional margin yᵢ·f(xᵢ) ≈ 1.
	r := rng.New(105)
	a, labels := separableData(r, 24, 80)
	const c = 5.0
	res := SVM(singleCoreOp(a), labels, SVMOpts{C: c, MaxIters: 6000, Tol: 1e-12, Seed: 106})
	checked := 0
	for i, al := range res.Alpha {
		if al > 1e-4*c && al < c*(1-1e-4) {
			m := labels[i] * res.Margins[i]
			if math.Abs(m-1) > 0.05 {
				t.Fatalf("interior point %d has margin %v, want ~1", i, m)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no interior support vectors in this draw")
	}
}

func TestSVMWeightsClassify(t *testing.T) {
	r := rng.New(107)
	a, labels := separableData(r, 30, 100)
	res := SVM(singleCoreOp(a), labels, SVMOpts{C: 10, MaxIters: 2000, Seed: 108})
	w := SVMWeights(a, labels, res)
	// The primal weights must classify the training columns identically
	// to the dual margins: wᵀa_j == (K(α∘y))_j up to numerics.
	col := make([]float64, 30)
	for j := 0; j < 100; j++ {
		a.Col(j, col)
		f := mat.Dot(w, col)
		if math.Abs(f-res.Margins[j]) > 1e-8 {
			t.Fatalf("primal/dual margin mismatch at %d: %v vs %v", j, f, res.Margins[j])
		}
	}
}

func TestSVMOnExDOperator(t *testing.T) {
	// Framework claim: the SVM trained through the transformed operator
	// matches the raw one on classification.
	r := rng.New(109)
	a, labels := separableData(r, 32, 150)
	raw := SVM(singleCoreOp(a), labels, SVMOpts{C: 10, MaxIters: 1500, Seed: 110})

	tr, err := exd.Fit(a, exd.Params{L: 90, Epsilon: 0.02, Seed: 111, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	op, err := dist.NewExDGram(cluster.NewComm(cluster.NewPlatform(1, 2)), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	fast := SVM(op, labels, SVMOpts{C: 10, MaxIters: 1500, Seed: 110})
	if acc := trainAccuracy(labels, fast.Margins); acc < 0.99 {
		t.Fatalf("transformed SVM accuracy %v", acc)
	}
	relObj := math.Abs(raw.Objective-fast.Objective) / raw.Objective
	if relObj > 0.1 {
		t.Fatalf("dual objectives diverge: %v vs %v", raw.Objective, fast.Objective)
	}
}

func TestSVMRejectsBadLabels(t *testing.T) {
	r := rng.New(112)
	a, labels := separableData(r, 10, 20)
	labels[3] = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("non-±1 label accepted")
		}
	}()
	SVM(singleCoreOp(a), labels, SVMOpts{})
}

func TestSVMDefaults(t *testing.T) {
	var o SVMOpts
	o.fill()
	//lint:ignore nofloateq defaults are assigned constants, equality is bit-exact by construction
	if o.C != 1 || o.MaxIters != 500 || o.Tol != 1e-7 {
		t.Fatalf("defaults %+v", o)
	}
}
