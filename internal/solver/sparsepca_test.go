package solver

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// sparseSpectrumData builds A whose leading right singular vectors are
// exactly k-sparse, so the truncated power method can recover them.
func sparseSpectrumData(r *rng.RNG, m, n, card int, sigma []float64) (*mat.Dense, *mat.Dense) {
	u := orthonormalCols(r, m, len(sigma))
	// Sparse, disjoint-support right vectors: component i occupies
	// indices [i*card, (i+1)*card).
	v := mat.NewDense(n, len(sigma))
	for k := range sigma {
		nrm := 0.0
		vals := make([]float64, card)
		for j := range vals {
			vals[j] = 1 + r.Float64()
			nrm += vals[j] * vals[j]
		}
		nrm = math.Sqrt(nrm)
		for j, val := range vals {
			v.Set(k*card+j, k, val/nrm)
		}
	}
	a := mat.NewDense(m, n)
	for k, s := range sigma {
		for i := 0; i < m; i++ {
			ui := u.At(i, k) * s
			if ui == 0 {
				continue
			}
			row := a.Row(i)
			for j := 0; j < n; j++ {
				row[j] += ui * v.At(j, k)
			}
		}
	}
	return a, v
}

func TestSparsePCARecoversSupports(t *testing.T) {
	r := rng.New(71)
	const card = 5
	sigma := []float64{6, 4, 2}
	a, v := sparseSpectrumData(r, 40, 30, card, sigma)

	res := SparsePCA(singleCoreOp(a), SparsePCAOpts{
		Components: 3, Cardinality: card, Seed: 72,
	})
	if len(res.Variances) != 3 {
		t.Fatalf("got %d components", len(res.Variances))
	}
	for k, s := range sigma {
		want := s * s
		if math.Abs(res.Variances[k]-want)/want > 1e-3 {
			t.Fatalf("component %d variance %v, want %v", k, res.Variances[k], want)
		}
		got := res.Components.Col(k, nil)
		// Support must match the planted one.
		nz := 0
		for j, val := range got {
			if val != 0 {
				nz++
				if j < k*card || j >= (k+1)*card {
					t.Fatalf("component %d has a loading outside its support at %d", k, j)
				}
			}
		}
		if nz == 0 || nz > card {
			t.Fatalf("component %d has %d nonzeros, cap %d", k, nz, card)
		}
		if d := math.Abs(mat.Dot(got, v.Col(k, nil))); d < 1-1e-3 {
			t.Fatalf("component %d misaligned: |dot|=%v", k, d)
		}
	}
}

func TestSparsePCACardinalityRespected(t *testing.T) {
	r := rng.New(73)
	a := mat.NewDense(25, 40)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for _, card := range []int{1, 3, 10} {
		res := SparsePCA(singleCoreOp(a), SparsePCAOpts{
			Components: 2, Cardinality: card, Seed: 74,
		})
		for k := 0; k < 2; k++ {
			nz := 0
			for _, v := range res.Components.Col(k, nil) {
				if v != 0 {
					nz++
				}
			}
			if nz > card {
				t.Fatalf("cardinality %d violated: %d nonzeros", card, nz)
			}
		}
	}
}

func TestSparsePCAFullCardinalityMatchesPower(t *testing.T) {
	// With Cardinality = N the truncation is a no-op and the leading
	// variance must match the dense Power method's eigenvalue.
	r := rng.New(75)
	a, _ := knownSpectrum(r, 30, 20, []float64{5, 3})
	dense := PowerMethod(singleCoreOp(a), PowerOpts{Components: 1, Seed: 76})
	sp := SparsePCA(singleCoreOp(a), SparsePCAOpts{Components: 1, Cardinality: 20, Seed: 76})
	if math.Abs(dense.Eigenvalues[0]-sp.Variances[0])/dense.Eigenvalues[0] > 1e-6 {
		t.Fatalf("variance %v, eigenvalue %v", sp.Variances[0], dense.Eigenvalues[0])
	}
}

func TestSparsePCAUnitNormComponents(t *testing.T) {
	r := rng.New(77)
	a := mat.NewDense(20, 25)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	res := SparsePCA(singleCoreOp(a), SparsePCAOpts{Components: 3, Cardinality: 4, Seed: 78})
	for k := 0; k < 3; k++ {
		if n := mat.Norm2(res.Components.Col(k, nil)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("component %d norm %v", k, n)
		}
	}
}
