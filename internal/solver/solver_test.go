package solver

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/cluster/clustertest"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// orthonormalCols builds an m×k matrix with orthonormal columns.
func orthonormalCols(r *rng.RNG, m, k int) *mat.Dense {
	b := mat.NewDense(m, k)
	col := make([]float64, m)
	for j := 0; j < k; j++ {
		for i := range col {
			col[i] = r.NormFloat64()
		}
		for pass := 0; pass < 2; pass++ {
			for q := 0; q < j; q++ {
				var d float64
				for i := 0; i < m; i++ {
					d += col[i] * b.At(i, q)
				}
				for i := 0; i < m; i++ {
					col[i] -= d * b.At(i, q)
				}
			}
		}
		mat.ScaleVec(1/mat.Norm2(col), col)
		b.SetCol(j, col)
	}
	return b
}

// knownSpectrum builds A = U·diag(σ)·Vᵀ with prescribed singular values, so
// AᵀA has eigenvalues σ² with eigenvectors the columns of V.
func knownSpectrum(r *rng.RNG, m, n int, sigma []float64) (*mat.Dense, *mat.Dense) {
	u := orthonormalCols(r, m, len(sigma))
	v := orthonormalCols(r, n, len(sigma))
	a := mat.NewDense(m, n)
	for k, s := range sigma {
		for i := 0; i < m; i++ {
			ui := u.At(i, k) * s
			if ui == 0 {
				continue
			}
			row := a.Row(i)
			for j := 0; j < n; j++ {
				row[j] += ui * v.At(j, k)
			}
		}
	}
	return a, v
}

func singleCoreOp(a *mat.Dense) dist.Operator {
	return dist.NewDenseGram(cluster.NewComm(cluster.NewPlatform(1, 1)), a)
}

// lassoWatched and powerWatched run the solvers under the shared cluster
// watchdog so a collective deadlock fails the test with a goroutine dump
// instead of hanging CI.
func lassoWatched(t testing.TB, op dist.Operator, aty []float64, yNorm2 float64, opts LassoOpts) LassoResult {
	t.Helper()
	var res LassoResult
	clustertest.Watchdog(t, func() { res = Lasso(op, aty, yNorm2, opts) })
	return res
}

func powerWatched(t testing.TB, op dist.Operator, opts PowerOpts) PowerResult {
	t.Helper()
	var res PowerResult
	clustertest.Watchdog(t, func() { res = PowerMethod(op, opts) })
	return res
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, thr, want float64 }{
		{3, 1, 2}, {-3, 1, -2}, {0.5, 1, 0}, {-0.5, 1, 0}, {1, 1, 0}, {2, 0, 2},
	}
	for _, c := range cases {
		if got := softThreshold(c.v, c.thr); got != c.want {
			t.Fatalf("soft(%v,%v)=%v, want %v", c.v, c.thr, got, c.want)
		}
	}
}

func TestLassoUnregularizedSolvesLeastSquares(t *testing.T) {
	// λ=0 reduces to least squares; with a consistent system the residual
	// must vanish.
	r := rng.New(1)
	a := mat.NewDense(40, 12)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	xTrue := make([]float64, 12)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	y := a.MulVec(xTrue, nil)

	res := lassoWatched(t, singleCoreOp(a), a.MulVecT(y, nil), mat.Dot(y, y), LassoOpts{
		Lambda: 0, MaxIters: 4000, Tol: 1e-14, LearningRate: 0.3,
	})
	rec := a.MulVec(res.X, nil)
	diff := make([]float64, 40)
	mat.SubVec(diff, rec, y)
	if rel := mat.Norm2(diff) / mat.Norm2(y); rel > 1e-3 {
		t.Fatalf("least-squares residual %v after %d iters", rel, res.Iters)
	}
}

func TestLassoObjectiveMonotoneAtConvergence(t *testing.T) {
	r := rng.New(2)
	a := mat.NewDense(30, 20)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	y := make([]float64, 30)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	res := lassoWatched(t, singleCoreOp(a), a.MulVecT(y, nil), mat.Dot(y, y), LassoOpts{
		Lambda: 0.1, MaxIters: 800,
	})
	if len(res.History) < 2 {
		t.Fatal("no history recorded")
	}
	// The tail of the history must be non-increasing (Adagrad can
	// oscillate early; convergence demands eventual descent).
	tail := res.History[len(res.History)/2:]
	for i := 1; i < len(tail); i++ {
		if tail[i] > tail[i-1]+1e-6*math.Abs(tail[i-1]) {
			t.Fatalf("objective rose near convergence: %v -> %v", tail[i-1], tail[i])
		}
	}
	if res.Objective < 0 {
		t.Fatal("objective cannot be negative")
	}
}

func TestLassoSparseRecovery(t *testing.T) {
	// Classic compressed-sensing sanity check: recover a sparse x from
	// overdetermined noiseless measurements with a small λ.
	r := rng.New(3)
	a := mat.NewDense(80, 40)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64() / math.Sqrt(80)
	}
	xTrue := make([]float64, 40)
	xTrue[3], xTrue[17], xTrue[31] = 2, -1.5, 1
	y := a.MulVec(xTrue, nil)

	res := lassoWatched(t, singleCoreOp(a), a.MulVecT(y, nil), mat.Dot(y, y), LassoOpts{
		Lambda: 0.001, MaxIters: 5000, Tol: 1e-13,
	})
	for i, want := range xTrue {
		if math.Abs(res.X[i]-want) > 0.05 {
			t.Fatalf("x[%d]=%v, want %v (iters %d)", i, res.X[i], want, res.Iters)
		}
	}
}

func TestLassoOnExDOperatorMatchesDense(t *testing.T) {
	// The framework claim: solving on (DC)ᵀDC with small ε lands close to
	// the raw-data solution.
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: 32, N: 150, Ks: []int{4, 5}}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	y := make([]float64, 32)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	aty := u.A.MulVecT(y, nil)
	y2 := mat.Dot(y, y)
	opts := LassoOpts{Lambda: 0.05, MaxIters: 1500, Tol: 1e-12}

	dense := lassoWatched(t, singleCoreOp(u.A), aty, y2, opts)

	tr, err := exd.Fit(u.A, exd.Params{L: 90, Epsilon: 0.01, Seed: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := dist.NewExDGram(cluster.NewComm(cluster.NewPlatform(1, 2)), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	approx := lassoWatched(t, g, aty, y2, opts)

	relObj := math.Abs(approx.Objective-dense.Objective) / math.Max(dense.Objective, 1e-12)
	if relObj > 0.05 {
		t.Fatalf("ExD objective %v vs dense %v (rel %v)",
			approx.Objective, dense.Objective, relObj)
	}
}

func TestLassoStatsAccumulate(t *testing.T) {
	u, _ := dataset.GenerateUnion(dataset.UnionParams{M: 16, N: 60, Ks: []int{3}}, rng.New(7))
	y := make([]float64, 16)
	y[0] = 1
	res := lassoWatched(t, singleCoreOp(u.A), u.A.MulVecT(y, nil), 1, LassoOpts{Lambda: 0.01, MaxIters: 25, Tol: 1e-30})
	if res.Iters != 25 || res.Converged {
		t.Fatalf("expected to exhaust iterations, got %d converged=%v", res.Iters, res.Converged)
	}
	if res.Stats.Phases != int64(25*2) {
		t.Fatalf("phases %d, want %d", res.Stats.Phases, 50)
	}
	perIter := res.Stats.TotalFlops / 25
	if perIter != 4*16*60 {
		t.Fatalf("per-iteration flops %d", perIter)
	}
}

func TestPowerMethodKnownSpectrum(t *testing.T) {
	r := rng.New(8)
	sigma := []float64{5, 3, 2, 1}
	a, v := knownSpectrum(r, 30, 25, sigma)

	res := powerWatched(t, singleCoreOp(a), PowerOpts{Components: 4, Seed: 9})
	if len(res.Eigenvalues) != 4 {
		t.Fatalf("got %d eigenvalues", len(res.Eigenvalues))
	}
	for k, s := range sigma {
		want := s * s
		if math.Abs(res.Eigenvalues[k]-want)/want > 1e-4 {
			t.Fatalf("eigenvalue %d = %v, want %v", k, res.Eigenvalues[k], want)
		}
		// Eigenvector matches ±v_k.
		got := res.Eigenvectors.Col(k, nil)
		dot := math.Abs(mat.Dot(got, v.Col(k, nil)))
		if dot < 1-1e-4 {
			t.Fatalf("eigenvector %d misaligned: |dot|=%v", k, dot)
		}
	}
}

func TestPowerMethodEigenvectorsOrthonormal(t *testing.T) {
	u, _ := dataset.GenerateUnion(dataset.UnionParams{M: 24, N: 40, Ks: []int{5}}, rng.New(10))
	res := powerWatched(t, singleCoreOp(u.A), PowerOpts{Components: 5, Seed: 11})
	for i := 0; i < 5; i++ {
		vi := res.Eigenvectors.Col(i, nil)
		for j := 0; j <= i; j++ {
			d := mat.Dot(vi, res.Eigenvectors.Col(j, nil))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-6 {
				t.Fatalf("vᵢᵀvⱼ(%d,%d)=%v", i, j, d)
			}
		}
	}
	// Eigenvalues decreasing.
	for i := 1; i < 5; i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-9 {
			t.Fatalf("eigenvalues not sorted: %v", res.Eigenvalues)
		}
	}
}

func TestPowerMethodOnExDCloseToDense(t *testing.T) {
	// Fig. 12's quantity: eigenvalues from the transformed operator track
	// the exact ones within the transformation error budget.
	u, _ := dataset.GenerateUnion(dataset.UnionParams{M: 32, N: 120, Ks: []int{4, 4}}, rng.New(12))
	exact := powerWatched(t, singleCoreOp(u.A), PowerOpts{Components: 5, Seed: 13})

	tr, err := exd.Fit(u.A, exd.Params{L: 80, Epsilon: 0.02, Seed: 14, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := dist.NewExDGram(cluster.NewComm(cluster.NewPlatform(1, 2)), tr.D, tr.C)
	approx := powerWatched(t, g, PowerOpts{Components: 5, Seed: 13})

	var errSum, valSum float64
	for k := range exact.Eigenvalues {
		errSum += math.Abs(exact.Eigenvalues[k] - approx.Eigenvalues[k])
		valSum += exact.Eigenvalues[k]
	}
	if errSum/valSum > 0.05 {
		t.Fatalf("cumulative eigenvalue error %v", errSum/valSum)
	}
}

func TestPowerMethodRankDeficient(t *testing.T) {
	// Rank-2 data: third eigenvalue must be ~0 and the solver must not
	// spin forever on the null space.
	r := rng.New(15)
	a, _ := knownSpectrum(r, 20, 15, []float64{4, 2})
	res := powerWatched(t, singleCoreOp(a), PowerOpts{Components: 3, Seed: 16, MaxIters: 100})
	if res.Eigenvalues[2] > 1e-6 {
		t.Fatalf("phantom eigenvalue %v", res.Eigenvalues[2])
	}
}

func TestDefaultsFilled(t *testing.T) {
	var lo LassoOpts
	lo.fill()
	//lint:ignore nofloateq defaults are assigned constants, equality is bit-exact by construction
	if lo.MaxIters != 500 || lo.LearningRate != 0.5 || lo.Tol != 1e-6 {
		t.Fatalf("lasso defaults %+v", lo)
	}
	var po PowerOpts
	po.fill()
	//lint:ignore nofloateq defaults are assigned constants, equality is bit-exact by construction
	if po.Components != 1 || po.MaxIters != 300 || po.Tol != 1e-8 {
		t.Fatalf("power defaults %+v", po)
	}
}
