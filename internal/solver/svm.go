package solver

import (
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// SVMOpts configures a soft-margin support vector machine trained in the
// dual — the last of the paper's §II-A target algorithms ("interior point
// methods for solving SVM [10]" — any dual solver iterates on the Gram
// matrix, which is exactly what the framework accelerates). This
// implementation uses projected gradient ascent on
//
//	W(α) = Σαᵢ - ½ Σᵢⱼ αᵢαⱼ yᵢyⱼ K(i,j),  0 ≤ αᵢ ≤ C,
//
// with the linear kernel K = AᵀA supplied by the distributed Gram operator.
type SVMOpts struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// MaxIters caps gradient steps (default 500).
	MaxIters int
	// Tol stops iteration when the dual objective's relative improvement
	// falls below it for several consecutive steps (default 1e-7).
	Tol float64
	// Seed drives the spectral-norm estimation used for the step size.
	Seed uint64
}

func (o *SVMOpts) fill() {
	if o.C <= 0 {
		o.C = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
}

// SVMResult is a trained dual SVM.
type SVMResult struct {
	// Alpha holds the dual variables, one per training column.
	Alpha []float64
	// Margins holds the decision values K·(α∘y) for every training
	// column (the bias-free functional margin is yᵢ·Margins[i]).
	Margins []float64
	// SupportVectors is the number of strictly positive αᵢ.
	SupportVectors int
	// Objective is the final dual objective W(α).
	Objective float64
	// Iters counts gradient steps (plus the step-size estimation).
	Iters int
	// Converged reports whether Tol was met before MaxIters.
	Converged bool
	// Stats accumulates the distributed cost of every Gram product.
	Stats cluster.Stats
}

// SVM trains a bias-free soft-margin SVM on the Gram operator. labels must
// hold ±1 per column. The step size is 1/λ̂max(K), estimated with a few
// power iterations (charged to Stats like everything else).
func SVM(op dist.Operator, labels []float64, opts SVMOpts) SVMResult {
	opts.fill()
	n := op.Dim()
	if len(labels) != n {
		panic("solver: len(labels) != operator dim")
	}
	for _, y := range labels {
		if y != 1 && y != -1 {
			panic("solver: SVM labels must be ±1")
		}
	}
	res := SVMResult{Alpha: make([]float64, n)}

	// Estimate the spectral norm of K for the step size.
	r := rng.New(opts.Seed + 0x57a)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	normalize(x)
	gx := make([]float64, n)
	lmax := 1.0
	for it := 0; it < 12; it++ {
		st := op.Apply(x, gx)
		res.Stats.Accumulate(st)
		res.Iters++
		lmax = mat.Norm2(gx)
		if lmax == 0 {
			break
		}
		for i := range x {
			x[i] = gx[i] / lmax
		}
	}
	if lmax <= 0 {
		lmax = 1
	}
	step := 1 / lmax

	alpha := res.Alpha
	v := make([]float64, n)  // α∘y
	kv := make([]float64, n) // K·(α∘y)
	grad := make([]float64, n)
	prev := math.Inf(-1)
	const patience = 5
	small := 0
	for it := 0; it < opts.MaxIters; it++ {
		for i := range v {
			v[i] = alpha[i] * labels[i]
		}
		st := op.Apply(v, kv)
		res.Stats.Accumulate(st)
		res.Iters++

		// Dual objective W(α) = Σα - ½ (α∘y)ᵀK(α∘y).
		obj := 0.0
		for _, a := range alpha {
			obj += a
		}
		obj -= 0.5 * mat.Dot(v, kv)
		res.Objective = obj

		if obj-prev >= 0 && obj-prev <= opts.Tol*math.Max(1, math.Abs(obj)) {
			small++
			if small >= patience {
				res.Converged = true
				break
			}
		} else {
			small = 0
		}
		prev = obj

		// ∇W = 1 - y ∘ K(α∘y); ascend and project onto the box [0, C].
		for i := range grad {
			grad[i] = 1 - labels[i]*kv[i]
			a := alpha[i] + step*grad[i]
			if a < 0 {
				a = 0
			} else if a > opts.C {
				a = opts.C
			}
			alpha[i] = a
		}
	}

	// Final margins and support-vector count.
	for i := range v {
		v[i] = alpha[i] * labels[i]
	}
	st := op.Apply(v, kv)
	res.Stats.Accumulate(st)
	res.Margins = mat.CopyVec(kv)
	for _, a := range alpha {
		if a > 1e-9 {
			res.SupportVectors++
		}
	}
	return res
}

// SVMWeights recovers the primal weight vector w = A·(α∘y) from the
// original data matrix, for classifying new M-dimensional samples with
// sign(wᵀx).
func SVMWeights(a *mat.Dense, labels []float64, res SVMResult) []float64 {
	v := make([]float64, len(res.Alpha))
	for i := range v {
		v[i] = res.Alpha[i] * labels[i]
	}
	return a.MulVec(v, nil)
}
