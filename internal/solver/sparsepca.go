package solver

import (
	"math"
	"sort"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// SparsePCAOpts configures sparse principal component extraction — one of
// the Power-method applications the paper lists (§II-A, "sparse PCA [13]").
type SparsePCAOpts struct {
	// Components is the number of sparse components to extract.
	Components int
	// Cardinality is the maximum number of nonzero loadings per component.
	Cardinality int
	// MaxIters caps iterations per component (default 300).
	MaxIters int
	// Tol stops a component when its explained variance stabilizes to this
	// relative change (default 1e-8).
	Tol float64
	// Seed initializes the start vectors.
	Seed uint64
}

func (o *SparsePCAOpts) fill(n int) {
	if o.Components <= 0 {
		o.Components = 1
	}
	if o.Cardinality <= 0 || o.Cardinality > n {
		o.Cardinality = n
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 300
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
}

// SparsePCAResult holds the extracted sparse components.
type SparsePCAResult struct {
	// Variances holds each component's explained variance xᵀGx (with
	// ‖x‖ = 1), in extraction order.
	Variances []float64
	// Components has one column per sparse loading vector (N×k), each with
	// at most Cardinality nonzeros and unit norm.
	Components *mat.Dense
	// Iters is the total iteration count.
	Iters int
	// Stats accumulates the distributed cost of every iteration.
	Stats cluster.Stats
}

// SparsePCA runs the truncated power method (Yuan & Zhang 2013): a power
// iteration whose iterate is hard-thresholded to the top-k entries each
// step, yielding interpretable sparse loadings. Deflation between
// components matches the dense Power method.
func SparsePCA(op dist.Operator, opts SparsePCAOpts) SparsePCAResult {
	n := op.Dim()
	opts.fill(n)
	res := SparsePCAResult{Components: mat.NewDense(n, opts.Components)}
	r := rng.New(opts.Seed)

	found := make([][]float64, 0, opts.Components)
	x := make([]float64, n)
	gx := make([]float64, n)
	for comp := 0; comp < opts.Components; comp++ {
		for i := range x {
			x[i] = r.NormFloat64()
		}
		deflate(x, found)
		normalize(x)
		// Warm start: a few dense power iterations align x with the
		// leading (deflated) eigenvector before truncation kicks in —
		// truncated power iteration from a cold random start can lock
		// onto the support of a minor component.
		for warm := 0; warm < 5; warm++ {
			st := op.Apply(x, gx)
			res.Stats.Accumulate(st)
			res.Iters++
			deflate(gx, found)
			if n := mat.Norm2(gx); n > 0 {
				for i := range x {
					x[i] = gx[i] / n
				}
			}
		}
		truncate(x, opts.Cardinality)
		normalize(x)

		variance, prev := 0.0, math.Inf(1)
		for it := 0; it < opts.MaxIters; it++ {
			st := op.Apply(x, gx)
			res.Stats.Accumulate(st)
			res.Iters++

			deflate(gx, found)
			// Explained variance of the CURRENT iterate: xᵀGx.
			variance = mat.Dot(x, gx)

			truncate(gx, opts.Cardinality)
			nrm := mat.Norm2(gx)
			if nrm == 0 {
				break
			}
			for i := range x {
				x[i] = gx[i] / nrm
			}
			if math.Abs(variance-prev) <= opts.Tol*math.Abs(variance) {
				break
			}
			prev = variance
		}
		vec := mat.CopyVec(x)
		found = append(found, vec)
		res.Variances = append(res.Variances, variance)
		res.Components.SetCol(comp, vec)
	}
	return res
}

// truncate zeroes all but the k largest-magnitude entries of v in place.
func truncate(v []float64, k int) {
	if k >= len(v) {
		return
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(v[idx[a]]) > math.Abs(v[idx[b]])
	})
	for _, i := range idx[k:] {
		v[i] = 0
	}
}
