package solver

import (
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// PowerOpts configures a Power-method PCA run on the Gram matrix G = AᵀA.
type PowerOpts struct {
	// Components is the number of leading eigenpairs to extract
	// (paper experiments: 10).
	Components int
	// MaxIters caps iterations per component (default 300).
	MaxIters int
	// Tol stops a component when the eigenvalue estimate's relative
	// change falls below it (default 1e-8).
	Tol float64
	// Seed initializes the start vectors.
	Seed uint64
	// CheckpointEvery takes an in-memory snapshot of the solver state
	// through Sink every k inner iterations, plus one at every component
	// completion (0 disables checkpointing).
	CheckpointEvery int
	// Sink receives each snapshot. The pointed-to checkpoint and its
	// buffers are owned by the solver and overwritten at the next
	// snapshot; consumers needing longer-lived copies must clone.
	Sink func(*Checkpoint)
	// Resume restores the solver state (completed components, the
	// mid-component iterate, iteration counters) from a snapshot
	// previously emitted via Sink and continues from there. The RNG
	// stream is advanced past the draws the interrupted run already
	// consumed, so later components start exactly where an uninterrupted
	// run would have.
	Resume *Checkpoint
}

func (o *PowerOpts) fill() {
	if o.Components <= 0 {
		o.Components = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 300
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
}

// PowerResult holds the extracted spectrum of G = AᵀA.
type PowerResult struct {
	// Eigenvalues of the Gram matrix, in decreasing order (these are the
	// squared singular values of A).
	Eigenvalues []float64
	// Eigenvectors has one column per eigenvalue (N×k), orthonormal.
	Eigenvectors *mat.Dense
	// Iters is the total iteration count across all components.
	Iters int
	// Stats accumulates the distributed cost of every iteration.
	Stats cluster.Stats
}

// PowerMethod extracts the leading eigenpairs of the Gram matrix behind op
// with the classic iteration x ← G·x/‖G·x‖ (§VIII-A). After a component
// converges, its contribution is deflated from the operator output
// (equivalent to the paper's "subtract the found content from the data")
// and the iteration restarts for the next component.
func PowerMethod(op dist.Operator, opts PowerOpts) PowerResult {
	opts.fill()
	n := op.Dim()
	res := PowerResult{Eigenvectors: mat.NewDense(n, opts.Components)}
	r := rng.New(opts.Seed)

	found := make([][]float64, 0, opts.Components)
	vals := make([]float64, 0, opts.Components)

	x := make([]float64, n)
	gx := make([]float64, n)

	startComp, startIter := 0, 0
	if opts.Resume != nil {
		ck := opts.Resume
		if len(ck.X) != n || ck.Comp > opts.Components || len(ck.Found) < ck.Comp || len(ck.Vals) < ck.Comp {
			panic("solver: resume checkpoint does not match this solve")
		}
		startComp, startIter = ck.Comp, ck.Iter
		for i := 0; i < startComp; i++ {
			vec := mat.CopyVec(ck.Found[i])
			found = append(found, vec)
			vals = append(vals, ck.Vals[i])
			res.Eigenvalues = append(res.Eigenvalues, ck.Vals[i])
			res.Eigenvectors.SetCol(i, vec)
		}
		res.Iters = ck.TotalIters
		if startIter > 0 {
			copy(x, ck.X)
		}
		// Keep the RNG stream aligned with an uninterrupted run: burn the
		// start-vector draws the interrupted run already consumed (one
		// n-draw per component started), so every later component begins
		// from the very same start vector it would have without the fault.
		burn := startComp
		if startIter > 0 {
			burn++
		}
		for b := 0; b < burn; b++ {
			for i := 0; i < n; i++ {
				r.NormFloat64()
			}
		}
	}

	// The snapshot buffer is hoisted out of the iteration loops: a
	// checkpoint is one copy into preallocated storage plus slice-header
	// bookkeeping, never an allocation.
	checkpointing := opts.CheckpointEvery > 0 && opts.Sink != nil
	var ckpt Checkpoint
	if checkpointing {
		ckpt = Checkpoint{X: make([]float64, n)}
	}

	for comp := startComp; comp < opts.Components; comp++ {
		if comp == startComp && startIter > 0 {
			// Mid-component resume: x was restored from the checkpoint.
		} else {
			// Random start, orthogonal to previously found components.
			for i := range x {
				x[i] = r.NormFloat64()
			}
			deflate(x, found)
			normalize(x)
		}

		lambda, prev := 0.0, math.Inf(1)
		for it := startIter; it < opts.MaxIters; it++ {
			st := op.Apply(x, gx)
			res.Stats.Accumulate(st)
			res.Iters++

			// Remove converged components from the operator action: for an
			// exact eigenpair (λ_i, v_i), projecting G·x off v_i subtracts
			// λ_i·(v_iᵀx)·v_i — the paper's "subtract the found content".
			deflate(gx, found)

			lambda = mat.Norm2(gx)
			if lambda == 0 {
				break // null space reached: remaining eigenvalues are 0
			}
			for i := range x {
				x[i] = gx[i] / lambda
			}
			if checkpointing && (it+1)%opts.CheckpointEvery == 0 {
				copy(ckpt.X, x)
				ckpt.Comp, ckpt.Iter = comp, it+1
				ckpt.Found, ckpt.Vals = found, vals
				ckpt.TotalIters = res.Iters
				opts.Sink(&ckpt)
			}
			if math.Abs(lambda-prev) <= opts.Tol*lambda {
				break
			}
			prev = lambda
		}
		startIter = 0
		// Re-orthogonalize against earlier components to stop drift.
		deflate(x, found)
		normalize(x)

		vec := mat.CopyVec(x)
		found = append(found, vec)
		vals = append(vals, lambda)
		res.Eigenvalues = append(res.Eigenvalues, lambda)
		res.Eigenvectors.SetCol(comp, vec)

		if checkpointing {
			// Component boundary: Iter 0 means "next component not yet
			// started", so a resume draws a fresh start vector.
			ckpt.Comp, ckpt.Iter = comp+1, 0
			ckpt.Found, ckpt.Vals = found, vals
			ckpt.TotalIters = res.Iters
			opts.Sink(&ckpt)
		}
	}
	return res
}

// deflate projects v off every found component.
func deflate(v []float64, comps [][]float64) {
	for _, c := range comps {
		mat.Axpy(-mat.Dot(c, v), c, v)
	}
}

func normalize(v []float64) {
	n := mat.Norm2(v)
	if n > 0 {
		mat.ScaleVec(1/n, v)
	}
}
