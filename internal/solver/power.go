package solver

import (
	"math"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// PowerOpts configures a Power-method PCA run on the Gram matrix G = AᵀA.
type PowerOpts struct {
	// Components is the number of leading eigenpairs to extract
	// (paper experiments: 10).
	Components int
	// MaxIters caps iterations per component (default 300).
	MaxIters int
	// Tol stops a component when the eigenvalue estimate's relative
	// change falls below it (default 1e-8).
	Tol float64
	// Seed initializes the start vectors.
	Seed uint64
}

func (o *PowerOpts) fill() {
	if o.Components <= 0 {
		o.Components = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 300
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
}

// PowerResult holds the extracted spectrum of G = AᵀA.
type PowerResult struct {
	// Eigenvalues of the Gram matrix, in decreasing order (these are the
	// squared singular values of A).
	Eigenvalues []float64
	// Eigenvectors has one column per eigenvalue (N×k), orthonormal.
	Eigenvectors *mat.Dense
	// Iters is the total iteration count across all components.
	Iters int
	// Stats accumulates the distributed cost of every iteration.
	Stats cluster.Stats
}

// PowerMethod extracts the leading eigenpairs of the Gram matrix behind op
// with the classic iteration x ← G·x/‖G·x‖ (§VIII-A). After a component
// converges, its contribution is deflated from the operator output
// (equivalent to the paper's "subtract the found content from the data")
// and the iteration restarts for the next component.
func PowerMethod(op dist.Operator, opts PowerOpts) PowerResult {
	opts.fill()
	n := op.Dim()
	res := PowerResult{Eigenvectors: mat.NewDense(n, opts.Components)}
	r := rng.New(opts.Seed)

	found := make([][]float64, 0, opts.Components)
	vals := make([]float64, 0, opts.Components)

	x := make([]float64, n)
	gx := make([]float64, n)
	for comp := 0; comp < opts.Components; comp++ {
		// Random start, orthogonal to previously found components.
		for i := range x {
			x[i] = r.NormFloat64()
		}
		deflate(x, found)
		normalize(x)

		lambda, prev := 0.0, math.Inf(1)
		for it := 0; it < opts.MaxIters; it++ {
			st := op.Apply(x, gx)
			res.Stats.Accumulate(st)
			res.Iters++

			// Remove converged components from the operator action: for an
			// exact eigenpair (λ_i, v_i), projecting G·x off v_i subtracts
			// λ_i·(v_iᵀx)·v_i — the paper's "subtract the found content".
			deflate(gx, found)

			lambda = mat.Norm2(gx)
			if lambda == 0 {
				break // null space reached: remaining eigenvalues are 0
			}
			for i := range x {
				x[i] = gx[i] / lambda
			}
			if math.Abs(lambda-prev) <= opts.Tol*lambda {
				break
			}
			prev = lambda
		}
		// Re-orthogonalize against earlier components to stop drift.
		deflate(x, found)
		normalize(x)

		vec := mat.CopyVec(x)
		found = append(found, vec)
		vals = append(vals, lambda)
		res.Eigenvalues = append(res.Eigenvalues, lambda)
		res.Eigenvectors.SetCol(comp, vec)
	}
	return res
}

// deflate projects v off every found component.
func deflate(v []float64, comps [][]float64) {
	for _, c := range comps {
		mat.Axpy(-mat.Dot(c, v), c, v)
	}
}

func normalize(v []float64) {
	n := mat.Norm2(v)
	if n > 0 {
		mat.ScaleVec(1/n, v)
	}
}
