package solver

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

func elasticFixture(t *testing.T, seed uint64) (*mat.Dense, []float64) {
	t.Helper()
	r := rng.New(seed)
	a := mat.NewDense(40, 20)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	y := make([]float64, 40)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	return a, y
}

func TestElasticNetReducesToLasso(t *testing.T) {
	a, y := elasticFixture(t, 1)
	aty := a.MulVecT(y, nil)
	y2 := mat.Dot(y, y)
	las := Lasso(singleCoreOp(a), aty, y2, LassoOpts{Lambda: 0.2, MaxIters: 2000, Tol: 1e-10})
	en := ElasticNet(singleCoreOp(a), aty, y2, ElasticNetOpts{Lambda1: 0.2, Lambda2: 0, MaxIters: 2000, Tol: 1e-10})
	for i := range las.X {
		if math.Abs(las.X[i]-en.X[i]) > 1e-4 {
			t.Fatalf("λ₂=0 elastic net diverges from LASSO at %d: %v vs %v", i, en.X[i], las.X[i])
		}
	}
}

func TestElasticNetRidgeShrinks(t *testing.T) {
	// Increasing λ₂ must shrink the solution norm.
	a, y := elasticFixture(t, 2)
	aty := a.MulVecT(y, nil)
	y2 := mat.Dot(y, y)
	prev := math.Inf(1)
	for _, l2 := range []float64{0, 1, 10, 100} {
		res := ElasticNet(singleCoreOp(a), aty, y2, ElasticNetOpts{Lambda1: 0, Lambda2: l2, MaxIters: 3000, Tol: 1e-12})
		n := mat.Norm2(res.X)
		if n > prev+1e-9 {
			t.Fatalf("‖x‖ grew with λ₂=%v: %v > %v", l2, n, prev)
		}
		prev = n
	}
}

func TestElasticNetOptimalityConditions(t *testing.T) {
	// At the minimizer with λ₁=0: 2Aᵀ(Ax - y) + 2λ₂x = 0.
	a, y := elasticFixture(t, 3)
	aty := a.MulVecT(y, nil)
	const l2 = 2.5
	res := ElasticNet(singleCoreOp(a), aty, mat.Dot(y, y), ElasticNetOpts{
		Lambda2: l2, MaxIters: 6000, Tol: 1e-13,
	})
	r := a.MulVec(res.X, nil)
	mat.SubVec(r, r, y)
	grad := a.MulVecT(r, nil)
	for i := range grad {
		grad[i] = 2*grad[i] + 2*l2*res.X[i]
	}
	if g := mat.NormInf(grad); g > 1e-2 {
		t.Fatalf("KKT residual %v", g)
	}
}

func TestElasticNetSparsityFromL1(t *testing.T) {
	a, y := elasticFixture(t, 4)
	aty := a.MulVecT(y, nil)
	y2 := mat.Dot(y, y)
	dense := ElasticNet(singleCoreOp(a), aty, y2, ElasticNetOpts{Lambda1: 0, Lambda2: 0.1, MaxIters: 1500})
	sparse := ElasticNet(singleCoreOp(a), aty, y2, ElasticNetOpts{Lambda1: 5, Lambda2: 0.1, MaxIters: 1500})
	nz := func(x []float64) int {
		n := 0
		for _, v := range x {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if nz(sparse.X) >= nz(dense.X) {
		t.Fatalf("ℓ₁ did not sparsify: %d vs %d nonzeros", nz(sparse.X), nz(dense.X))
	}
}

func TestElasticNetDefaults(t *testing.T) {
	var o ElasticNetOpts
	o.fill()
	//lint:ignore nofloateq defaults are assigned constants, equality is bit-exact by construction
	if o.MaxIters != 500 || o.LearningRate != 0.5 || o.Tol != 1e-6 {
		t.Fatalf("defaults %+v", o)
	}
}
