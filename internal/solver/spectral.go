package solver

import (
	"math"

	"extdict/internal/dist"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// SpectralOpts configures spectral partitioning of the data columns — an
// application the paper lists for the Power method (§II-A). Columns are
// embedded by the top eigenvectors of the Gram matrix AᵀA (the similarity
// structure) and clustered with k-means on the sign-canonicalized,
// row-normalized embedding.
//
// Scope: the method recovers direction clusters — groups of columns aligned
// with a common direction up to sign and noise (rank-1 subspaces, the
// geometry of the paper's Fig. 2 example). Higher-dimensional subspaces
// spread over great circles of the embedding sphere and need a dedicated
// subspace-clustering step on top.
type SpectralOpts struct {
	// Clusters is k, the number of groups to form.
	Clusters int
	// EmbedDim is the number of Gram eigenvectors to embed with
	// (default: Clusters).
	EmbedDim int
	// PowerOpts tunes the underlying eigensolver; Components is
	// overridden with EmbedDim.
	Power PowerOpts
	// KMeansIters caps Lloyd iterations (default 50).
	KMeansIters int
	// Restarts runs k-means this many times with different seedings and
	// keeps the best (default 4).
	Restarts int
	// Seed drives k-means initialization.
	Seed uint64
}

func (o *SpectralOpts) fill() {
	if o.Clusters < 1 {
		o.Clusters = 2
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = o.Clusters
	}
	if o.KMeansIters <= 0 {
		o.KMeansIters = 50
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
}

// SpectralResult is a clustering of the operator's columns.
type SpectralResult struct {
	// Assign maps each column to its cluster in [0, Clusters).
	Assign []int
	// Inertia is the final k-means objective (sum of squared distances to
	// centroids) on the spectral embedding.
	Inertia float64
	// Eigen is the underlying Power-method result (eigenvalues, vectors,
	// distributed cost).
	Eigen PowerResult
}

// SpectralCluster embeds the columns with the top eigenvectors of the Gram
// operator and clusters the rows of the (row-normalized) embedding.
func SpectralCluster(op dist.Operator, opts SpectralOpts) SpectralResult {
	opts.fill()
	p := opts.Power
	p.Components = opts.EmbedDim
	if p.Seed == 0 {
		p.Seed = opts.Seed + 1
	}
	eig := PowerMethod(op, p)

	n := op.Dim()
	k := opts.Clusters
	// Embedding: row i of the eigenvector matrix, row-normalized (the
	// standard spectral-clustering projection onto the unit sphere).
	emb := mat.NewDense(n, opts.EmbedDim)
	for i := 0; i < n; i++ {
		row := emb.Row(i)
		for j := 0; j < opts.EmbedDim; j++ {
			row[j] = eig.Eigenvectors.At(i, j)
		}
		if nrm := mat.Norm2(row); nrm > 0 {
			mat.ScaleVec(1/nrm, row)
		}
		// Sign canonicalization: a column and its negation carry the same
		// cluster identity (the Gram similarity is quadratic in sign), so
		// flip each row to make its largest-magnitude coordinate positive.
		canonicalizeSign(row)
	}

	r := rng.New(opts.Seed)
	best := SpectralResult{Inertia: math.Inf(1), Eigen: eig}
	for restart := 0; restart < opts.Restarts; restart++ {
		assign, inertia := kmeans(emb, k, opts.KMeansIters, r)
		if inertia < best.Inertia {
			best.Assign, best.Inertia = assign, inertia
		}
	}
	return best
}

// kmeans is Lloyd's algorithm with k-means++ seeding on the rows of emb.
func kmeans(emb *mat.Dense, k, maxIters int, r *rng.RNG) ([]int, float64) {
	n, d := emb.Rows, emb.Cols
	if k > n {
		k = n
	}
	centers := kmeansppInit(emb, k, r)
	assign := make([]int, n)
	counts := make([]int, k)

	for it := 0; it < maxIters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			bi, bd := 0, math.Inf(1)
			row := emb.Row(i)
			for c := 0; c < k; c++ {
				dd := sqDist(row, centers.Row(c))
				if dd < bd {
					bi, bd = c, dd
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids.
		for i := range centers.Data {
			centers.Data[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			mat.Axpy(1, emb.Row(i), centers.Row(c))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers.Row(c), emb.Row(r.Intn(n)))
				continue
			}
			mat.ScaleVec(1/float64(counts[c]), centers.Row(c))
		}
	}

	inertia := 0.0
	for i := 0; i < n; i++ {
		inertia += sqDist(emb.Row(i), centers.Row(assign[i]))
	}
	_ = d
	return assign, inertia
}

// kmeansppInit draws k initial centers with the k-means++ distribution.
func kmeansppInit(emb *mat.Dense, k int, r *rng.RNG) *mat.Dense {
	n := emb.Rows
	centers := mat.NewDense(k, emb.Cols)
	copy(centers.Row(0), emb.Row(r.Intn(n)))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(emb.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		pick := 0
		if total > 0 {
			u := r.Float64() * total
			acc := 0.0
			for i, v := range d2 {
				acc += v
				if acc >= u {
					pick = i
					break
				}
			}
		} else {
			pick = r.Intn(n)
		}
		copy(centers.Row(c), emb.Row(pick))
		for i := range d2 {
			if dd := sqDist(emb.Row(i), centers.Row(c)); dd < d2[i] {
				d2[i] = dd
			}
		}
	}
	return centers
}

// canonicalizeSign flips v so its largest-magnitude entry is positive.
func canonicalizeSign(v []float64) {
	bi, bv := -1, 0.0
	for i, x := range v {
		if a := math.Abs(x); a > bv {
			bi, bv = i, a
		}
	}
	if bi >= 0 && v[bi] < 0 {
		for i := range v {
			v[i] = -v[i]
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
