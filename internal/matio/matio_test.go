package matio

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

func randomMatrix(seed uint64, r, c int) *mat.Dense {
	g := rng.New(seed)
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = g.NormFloat64()
	}
	return m
}

func TestCSVRoundTrip(t *testing.T) {
	m := randomMatrix(1, 7, 5)
	m.Set(0, 0, 0)
	m.Set(1, 2, -1e-17)
	m.Set(2, 3, 1e300)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m, got, 0) {
		t.Fatal("CSV round trip changed values")
	}
}

func TestCSVSkipsBlankLines(t *testing.T) {
	in := "1,2\n\n3,4\n"
	m, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.At(1, 1) != 4 {
		t.Fatalf("parsed %+v", m)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty input: %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ragged rows: %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("non-numeric: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := randomMatrix(2, 13, 9)
	m.Set(3, 3, math.Inf(1))
	m.Set(4, 4, -0.0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 13 || got.Cols != 9 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i := range m.Data {
		if math.Float64bits(m.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("bit-level mismatch at %d", i)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGIC"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, randomMatrix(3, 4, 4)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestLoadSaveByExtension(t *testing.T) {
	dir := t.TempDir()
	m := randomMatrix(4, 6, 8)
	for _, name := range []string{"m.csv", "m.edm"} {
		path := filepath.Join(dir, name)
		if err := Save(path, m); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.Equal(m, got, 0) {
			t.Fatalf("%s round trip failed", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := Save("/nonexistent-dir/x.csv", m); err == nil {
		t.Fatal("unwritable path accepted")
	}
	_ = os.Remove(filepath.Join(dir, "m.csv"))
}
