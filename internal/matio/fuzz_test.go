package matio

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"extdict/internal/mat"
)

// binFile hand-assembles an EDM byte stream so seeds can be deliberately
// malformed in ways WriteBinary never produces.
func binFile(magic string, rows, cols int64, vals ...float64) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	hdr := [2]int64{rows, cols}
	if err := binary.Write(&b, binary.LittleEndian, hdr[:]); err != nil {
		panic(err)
	}
	for _, v := range vals {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		b.Write(w[:])
	}
	return b.Bytes()
}

// FuzzReadBinary asserts the EDM reader's crash-safety contract: arbitrary
// bytes either parse or error — never panic — NaN payloads always error,
// and anything accepted survives a write/read round-trip bit-for-bit.
func FuzzReadBinary(f *testing.F) {
	f.Add(binFile(binaryMagic, 2, 3, 1, 2, 3, 4, 5, 6))          // valid
	f.Add(binFile(binaryMagic, 1, 1, math.NaN()))                // NaN payload
	f.Add(binFile(binaryMagic, 1, 2, math.Inf(1), math.Inf(-1))) // infinities are legal
	f.Add(binFile("EXTDICT9", 1, 1, 0))                          // bad magic
	f.Add(binFile(binaryMagic, -1, 4))                           // negative dims
	f.Add(binFile(binaryMagic, 1<<40, 1<<40))                    // implausible dims
	f.Add(binFile(binaryMagic, 4, 4, 1, 2))                      // truncated payload
	f.Add([]byte(binaryMagic))                                   // truncated header
	f.Add([]byte{})                                              // empty
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, v := range m.Data {
			if math.IsNaN(v) {
				t.Fatal("reader accepted a NaN payload")
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatalf("re-encoding accepted matrix: %v", err)
		}
		m2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		requireSame(t, m, m2)
	})
}

// FuzzReadCSV asserts the same contract for the CSV reader.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("1.5e-30,-0\n+Inf,-Inf\n")
	f.Add("NaN,1\n")   // NaN payload must error
	f.Add("1,2\n3\n")  // ragged rows
	f.Add("a,b\n")     // unparsable fields
	f.Add("1e999,0\n") // overflow
	f.Add("\n\n")      // effectively empty
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		for _, v := range m.Data {
			if math.IsNaN(v) {
				t.Fatal("reader accepted a NaN payload")
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, m); err != nil {
			t.Fatalf("re-encoding accepted matrix: %v", err)
		}
		m2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		requireSame(t, m, m2)
	})
}

// requireSame asserts bit-exact equality (NaN-free inputs, so Float64bits
// equality also pins signed zeros).
func requireSame(t *testing.T, a, b *mat.Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("round-trip changed shape: %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if math.Float64bits(v) != math.Float64bits(b.Data[i]) {
			t.Fatalf("round-trip changed element %d: %v -> %v", i, v, b.Data[i])
		}
	}
}
