// Package matio reads and writes data matrices in the two formats the
// command-line tools accept: CSV (one row per line, comma-separated, for
// interoperability) and EDM, a compact little-endian binary format
// ("EXTDICT1" magic, two int64 dimensions, then rows·cols float64 values in
// row-major order) for large datasets.
package matio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"extdict/internal/mat"
)

const binaryMagic = "EXTDICT1"

// ErrBadFormat reports an unreadable or corrupt matrix file.
var ErrBadFormat = errors.New("matio: bad matrix file format")

// WriteCSV writes m with one matrix row per line.
func WriteCSV(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a comma-separated matrix; every line must have the same
// number of fields.
func ReadCSV(r io.Reader) (*mat.Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var data []float64
	cols := -1
	rows := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d",
				ErrBadFormat, rows+1, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			if math.IsNaN(v) {
				// NaN payloads poison every downstream reduction; refuse
				// them at the boundary instead of producing silent garbage.
				return nil, fmt.Errorf("%w: NaN value at row %d", ErrBadFormat, rows+1)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrBadFormat)
	}
	return mat.NewDenseData(rows, cols, data), nil
}

// WriteBinary writes m in the EDM binary format.
func WriteBinary(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := [2]int64{int64(m.Rows), int64(m.Cols)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads an EDM binary matrix.
func ReadBinary(r io.Reader) (*mat.Dense, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	rows, cols := int(hdr[0]), int(hdr[1])
	if rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<28 {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrBadFormat, rows, cols)
	}
	// Read in fixed-size chunks and grow the backing slice as data actually
	// arrives, so a forged header cannot demand a rows·cols allocation up
	// front: memory stays proportional to the bytes really present.
	total := hdr[0] * hdr[1] // ≤ 2^52, no overflow
	var data []float64
	buf := make([]byte, 1<<16)
	for idx := int64(0); idx < total; {
		chunk := total - idx
		if max := int64(len(buf) / 8); chunk > max {
			chunk = max
		}
		b := buf[:8*chunk]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: truncated at element %d: %v", ErrBadFormat, idx, err)
		}
		for j := int64(0); j < chunk; j++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
			if math.IsNaN(v) {
				// See ReadCSV: NaN payloads must error, never load.
				return nil, fmt.Errorf("%w: NaN value at element %d", ErrBadFormat, idx+j)
			}
			data = append(data, v)
		}
		idx += chunk
	}
	return mat.NewDenseData(rows, cols, data), nil
}

// Load reads a matrix from path, choosing the format by extension
// (.edm = binary, anything else = CSV).
func Load(path string) (*mat.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only open; Close cannot lose buffered writes
	defer f.Close()
	if strings.HasSuffix(path, ".edm") {
		return ReadBinary(f)
	}
	return ReadCSV(f)
}

// Save writes a matrix to path, choosing the format by extension.
func Save(path string, m *mat.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".edm") {
		werr = WriteBinary(f, m)
	} else {
		werr = WriteCSV(f, m)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
