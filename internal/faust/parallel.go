package faust

import (
	"sort"

	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// parallelThreshold is the minimum output length worth splitting across the
// shared pool; below it the chunk bookkeeping costs more than the hop.
const parallelThreshold = 256

// ParMulVec computes y = (S_1·…·S_k)·x with each hop's output rows split
// across the shared mat worker pool. Every y[i] receives its column updates
// in the same ascending-column order the serial scatter kernel uses — each
// chunk owns a row range and walks all columns, binary-searching the first
// stored row at or above its range — so the result is bit-identical to
// MulVec at any worker count.
func (f *FastDict) ParMulVec(x, y, t1, t2 []float64) []float64 {
	if len(x) != f.Cols {
		panic("faust: ParMulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, f.Rows)
	}
	if len(y) != f.Rows {
		panic("faust: ParMulVec output length mismatch")
	}
	k := len(f.Factors)
	cur := x
	for hop := 0; hop < k-1; hop++ {
		s := f.Factors[k-1-hop]
		dst := f.interBuf(hop, &t1, &t2)[:s.Rows]
		parScatter(s, cur, dst)
		cur = dst
	}
	parScatter(f.Factors[0], cur, y)
	return y
}

// ParMulVecT computes y = (S_1·…·S_k)ᵀ·x with each hop's output columns
// split across the pool. Column j's gather dot is computed by exactly one
// chunk with the serial accumulation pattern, so the result is bit-identical
// to MulVecT at any worker count.
func (f *FastDict) ParMulVecT(x, y, t1, t2 []float64) []float64 {
	if len(x) != f.Rows {
		panic("faust: ParMulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, f.Cols)
	}
	if len(y) != f.Cols {
		panic("faust: ParMulVecT output length mismatch")
	}
	k := len(f.Factors)
	cur := x
	for hop := 0; hop < k-1; hop++ {
		s := f.Factors[hop]
		dst := f.interBuf(hop, &t1, &t2)[:s.Cols]
		parGather(s, cur, dst)
		cur = dst
	}
	parGather(f.Factors[k-1], cur, y)
	return y
}

// parScatter is one parallel y = S·x hop. Row-partitioning keeps every
// y[i] owned by one chunk; within a chunk, columns are visited in the same
// ascending order as the serial scatter, and a column contributes at most
// one update per row (row indices are strictly increasing within a column),
// so each y[i] accumulates the identical sequence of terms the serial
// kernel produces.
func parScatter(s *sparse.CSC, x, y []float64) {
	w := mat.Workers
	if w <= 1 || s.Rows < parallelThreshold || s.NNZ() < parallelThreshold {
		s.MulVec(x, y)
		return
	}
	mat.ParallelChunks(s.Rows, w, func(_, rlo, rhi int) {
		mat.Zero(y[rlo:rhi])
		for j := 0; j < s.Cols; j++ {
			xj := x[j]
			if xj == 0 {
				continue // matches the serial kernel's skip
			}
			lo, hi := s.ColPtr[j], s.ColPtr[j+1]
			p := lo + sort.SearchInts(s.RowIdx[lo:hi], rlo)
			for ; p < hi && s.RowIdx[p] < rhi; p++ {
				y[s.RowIdx[p]] += s.Val[p] * xj
			}
		}
	})
}

// parGather is one parallel y = Sᵀ·x hop: output columns are partitioned
// and each chunk runs the serial 4-accumulator gather dot for its columns.
func parGather(s *sparse.CSC, x, y []float64) {
	w := mat.Workers
	if w <= 1 || s.Cols < parallelThreshold || s.NNZ() < parallelThreshold {
		s.MulVecT(x, y)
		return
	}
	mat.ParallelChunks(s.Cols, w, func(_, clo, chi int) {
		for j := clo; j < chi; j++ {
			var s0, s1, s2, s3 float64
			p, hi := s.ColPtr[j], s.ColPtr[j+1]
			for ; p+4 <= hi; p += 4 {
				idx := s.RowIdx[p : p+4 : p+4]
				v := s.Val[p : p+4 : p+4]
				s0 += v[0] * x[idx[0]]
				s1 += v[1] * x[idx[1]]
				s2 += v[2] * x[idx[2]]
				s3 += v[3] * x[idx[3]]
			}
			for ; p < hi; p++ {
				s0 += s.Val[p] * x[s.RowIdx[p]]
			}
			y[j] = (s0 + s1) + (s2 + s3)
		}
	})
}
