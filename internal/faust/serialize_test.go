package faust

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"extdict/internal/rng"
)

// TestSerializeRoundTrip checks a fitted chain survives write/read bit for
// bit, including shape and structure.
func TestSerializeRoundTrip(t *testing.T) {
	r := rng.New(21)
	fd := randomChain(r, 33, 17, 4)
	var buf bytes.Buffer
	n, err := fd.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFastDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameChain(t, fd, got)
}

func requireSameChain(t *testing.T, a, b *FastDict) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Factors) != len(b.Factors) {
		t.Fatalf("round-trip changed shape: %dx%d/%d -> %dx%d/%d",
			a.Rows, a.Cols, len(a.Factors), b.Rows, b.Cols, len(b.Factors))
	}
	for i := range a.Factors {
		af, bf := a.Factors[i], b.Factors[i]
		if af.Rows != bf.Rows || af.Cols != bf.Cols || af.NNZ() != bf.NNZ() {
			t.Fatalf("factor %d changed shape", i)
		}
		for p := range af.ColPtr {
			if af.ColPtr[p] != bf.ColPtr[p] {
				t.Fatalf("factor %d ColPtr[%d] changed", i, p)
			}
		}
		for p := range af.Val {
			if af.RowIdx[p] != bf.RowIdx[p] || math.Float64bits(af.Val[p]) != math.Float64bits(bf.Val[p]) {
				t.Fatalf("factor %d entry %d changed", i, p)
			}
		}
	}
}

// fdFile hand-assembles a fastdict stream so seeds can be malformed in ways
// WriteTo never produces.
func fdFile(magic string, hdr []int64, rest ...any) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	if err := binary.Write(&b, binary.LittleEndian, hdr); err != nil {
		panic(err)
	}
	for _, v := range rest {
		if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
			panic(err)
		}
	}
	return b.Bytes()
}

// TestReadRejectsForgedHeaders covers the hardening paths directly: bad
// magic, implausible dims, nnz above capacity, truncation, and NaN.
func TestReadRejectsForgedHeaders(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":        fdFile("NOTFAUST", []int64{1, 1, 1}),
		"zero factors":     fdFile(fastDictMagic, []int64{2, 2, 0}),
		"huge dims":        fdFile(fastDictMagic, []int64{1 << 40, 2, 1}),
		"huge depth":       fdFile(fastDictMagic, []int64{2, 2, 1 << 20}),
		"nnz over cap":     fdFile(fastDictMagic, []int64{2, 2, 1}, []int64{2, 2, 5}),
		"truncated":        fdFile(fastDictMagic, []int64{2, 2, 1}, []int64{2, 2, 1}),
		"truncated header": []byte(fastDictMagic),
		"empty":            nil,
		"nan payload": fdFile(fastDictMagic, []int64{1, 1, 1},
			[]int64{1, 1, 1}, []int64{0, 1}, []int64{0}, math.NaN()),
		"inner mismatch": fdFile(fastDictMagic, []int64{1, 1, 2},
			[]int64{1, 2, 0}, []int64{0, 0, 0}, []int64{1, 1, 0}, []int64{0}),
	}
	for name, data := range cases {
		if _, err := ReadFastDict(bytes.NewReader(data)); !errors.Is(err, ErrBadFastDictFile) {
			t.Errorf("%s: err = %v, want ErrBadFastDictFile", name, err)
		}
	}
}

// FuzzReadFastDict asserts the reader's crash-safety contract: arbitrary
// bytes either parse or error — never panic — NaN payloads always error,
// and anything accepted survives a write/read round-trip bit for bit.
func FuzzReadFastDict(f *testing.F) {
	r := rng.New(31)
	var valid bytes.Buffer
	if _, err := randomChain(r, 5, 3, 2).WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(fdFile(fastDictMagic, []int64{1, 1, 1}, []int64{1, 1, 1}, []int64{0, 1}, []int64{0}, 2.5))
	f.Add(fdFile(fastDictMagic, []int64{1, 1, 1}, []int64{1, 1, 1}, []int64{0, 1}, []int64{0}, math.NaN()))
	f.Add(fdFile("NOTFAUST", []int64{1, 1, 1}))
	f.Add(fdFile(fastDictMagic, []int64{-1, 1, 1}))
	f.Add(fdFile(fastDictMagic, []int64{1 << 40, 1 << 40, 1}))
	f.Add(fdFile(fastDictMagic, []int64{2, 2, 1}, []int64{2, 2, 4}))
	f.Add([]byte(fastDictMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fd, err := ReadFastDict(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range fd.Factors {
			for _, v := range s.Val {
				if math.IsNaN(v) {
					t.Fatal("reader accepted a NaN payload")
				}
			}
		}
		var buf bytes.Buffer
		if _, err := fd.WriteTo(&buf); err != nil {
			t.Fatalf("re-encoding accepted chain: %v", err)
		}
		fd2, err := ReadFastDict(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		requireSameChain(t, fd, fd2)
	})
}
