package faust

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"extdict/internal/sparse"
)

// Binary serialization of fitted fast dictionaries. Factorization is the
// expensive one-time step the tuner amortizes over the reuse count, so a
// deployment factors once and ships the chain. The format is little-endian:
// a magic string, [rows, cols, k], then per factor [rows, cols, nnz]
// followed by its ColPtr, RowIdx, and Val arrays.

const fastDictMagic = "FAUSTD01"

// ErrBadFastDictFile reports an unreadable or corrupt fast-dictionary file.
var ErrBadFastDictFile = errors.New("faust: bad fastdict file")

// maxDim bounds any dimension or nnz a reader will believe; combined with
// the chunked array reads below it caps what a forged header can allocate.
const maxDim = 1 << 28

// readChunk is the array-read granularity: a forged nnz backed by a
// truncated payload fails after at most one chunk of over-allocation.
const readChunk = 1 << 16

// WriteTo serializes the chain. It returns the byte count written.
func (f *FastDict) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(fastDictMagic); err != nil {
		return n, err
	}
	n += int64(len(fastDictMagic))
	if err := write([]int64{int64(f.Rows), int64(f.Cols), int64(len(f.Factors))}); err != nil {
		return n, err
	}
	for _, s := range f.Factors {
		if err := write([]int64{int64(s.Rows), int64(s.Cols), int64(s.NNZ())}); err != nil {
			return n, err
		}
		for _, arr := range [][]int{s.ColPtr, s.RowIdx} {
			buf := make([]int64, len(arr))
			for i, v := range arr {
				buf[i] = int64(v)
			}
			if err := write(buf); err != nil {
				return n, err
			}
		}
		if err := write(s.Val); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFastDict deserializes a chain written by WriteTo, validating the CSC
// invariants, inner-dimension agreement, and NaN-freedom before returning
// it. Array allocation is chunked, so a forged header cannot make the
// reader allocate more than one chunk past what the stream actually backs.
func ReadFastDict(r io.Reader) (*FastDict, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fastDictMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
	}
	if string(magic) != fastDictMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFastDictFile, magic)
	}
	hdr := make([]int64, 3)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
	}
	rows, cols, k := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if rows <= 0 || cols <= 0 || k <= 0 || rows > maxDim || cols > maxDim || k > 64 {
		return nil, fmt.Errorf("%w: implausible header %v", ErrBadFastDictFile, hdr)
	}
	fd := &FastDict{Rows: rows, Cols: cols, Factors: make([]*sparse.CSC, k)}
	for i := range fd.Factors {
		fhdr := make([]int64, 3)
		if err := binary.Read(br, binary.LittleEndian, fhdr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
		}
		fr, fc, nnz := int(fhdr[0]), int(fhdr[1]), int(fhdr[2])
		if fr <= 0 || fc <= 0 || nnz < 0 || fr > maxDim || fc > maxDim || int64(nnz) > int64(fr)*int64(fc) {
			return nil, fmt.Errorf("%w: implausible factor %d header %v", ErrBadFastDictFile, i, fhdr)
		}
		colPtr, err := readInts(br, fc+1)
		if err != nil {
			return nil, err
		}
		rowIdx, err := readInts(br, nnz)
		if err != nil {
			return nil, err
		}
		val, err := readFloats(br, nnz)
		if err != nil {
			return nil, err
		}
		fd.Factors[i] = &sparse.CSC{Rows: fr, Cols: fc, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
	}
	if err := fd.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
	}
	return fd, nil
}

// readInts reads n little-endian int64 values in chunks.
func readInts(br io.Reader, n int) ([]int, error) {
	out := make([]int, 0, min(n, readChunk))
	buf := make([]int64, min(n, readChunk))
	for len(out) < n {
		c := buf[:min(n-len(out), readChunk)]
		if err := binary.Read(br, binary.LittleEndian, c); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
		}
		for _, v := range c {
			out = append(out, int(v))
		}
	}
	return out, nil
}

// readFloats reads n little-endian float64 values in chunks, rejecting NaN.
func readFloats(br io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunk))
	for len(out) < n {
		c := make([]float64, min(n-len(out), readChunk))
		if err := binary.Read(br, binary.LittleEndian, c); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFastDictFile, err)
		}
		for _, v := range c {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("%w: NaN payload", ErrBadFastDictFile)
			}
		}
		out = append(out, c...)
	}
	return out, nil
}
