package faust

import (
	"fmt"
	"math"
	"sort"

	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/sparse"
)

// Options controls Factorize. Zero values take the documented defaults.
type Options struct {
	// Factors is the chain depth k: one Rows×Cols factor at the wide end
	// followed by k−1 square Cols×Cols factors. Default 4.
	Factors int
	// Budget is the per-factor nnz target: each factor keeps at most Budget
	// entries (clamped to the factor's capacity). Default rows·cols/(4·k),
	// i.e. a 4× compression of the dense dictionary.
	Budget int
	// Iters is the number of PALM iterations per hierarchical two-factor
	// split. Default 30.
	Iters int
	// Polish is the number of global all-factor proximal-gradient sweeps
	// after the hierarchical splits. Default 2.
	Polish int
	// Restarts is the number of seeded initializations tried: restart 0
	// initializes from the thresholded residual, later restarts from
	// random supports drawn via internal/rng. The best final chain wins.
	// Default 1.
	Restarts int
	// Seed drives the restart initializations through internal/rng.
	Seed uint64
}

// fill applies the documented defaults for zero fields.
func (o Options) fill(rows, cols int) Options {
	if o.Factors == 0 {
		o.Factors = 4
	}
	if o.Budget == 0 {
		o.Budget = rows * cols / (4 * o.Factors)
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	if o.Polish == 0 {
		o.Polish = 2
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

// Plan is the analytic shape of a factorization before running it: the
// canonical chain (one rows×cols factor, then k−1 square cols×cols factors)
// with every factor filled to its clamped budget. Its accessors are upper
// bounds on the fitted chain's NNZ/VecWords/ResidentWords (thresholding
// keeps at most the budget), so the tuner can price a FastDict without
// factorizing anything.
type Plan struct {
	Rows, Cols int
	Factors    int
	Budget     int
}

// NewPlan returns the plan for factoring a rows×cols dictionary into k
// factors at the given per-factor budget, with the Factorize defaults
// applied to zero arguments.
func NewPlan(rows, cols, k, budget int) Plan {
	o := Options{Factors: k, Budget: budget}.fill(rows, cols)
	return Plan{Rows: rows, Cols: cols, Factors: o.Factors, Budget: o.Budget}
}

// factorShape returns factor i's dimensions in the canonical chain.
func (p Plan) factorShape(i int) (rows, cols int) {
	if i == 0 {
		return p.Rows, p.Cols
	}
	return p.Cols, p.Cols
}

// factorBudget returns factor i's budget clamped to its capacity.
func (p Plan) factorBudget(i int) int {
	r, c := p.factorShape(i)
	if p.Budget > r*c {
		return r * c
	}
	return p.Budget
}

// NNZ returns Σ nnz(S_i) with every factor at its clamped budget.
func (p Plan) NNZ() int64 {
	var n int64
	for i := 0; i < p.Factors; i++ {
		n += int64(p.factorBudget(i))
	}
	return n
}

// VecWords returns Σ (rows_i + 2·cols_i + 1), as FastDict.VecWords.
func (p Plan) VecWords() int64 {
	var n int64
	for i := 0; i < p.Factors; i++ {
		r, c := p.factorShape(i)
		n += int64(r) + 2*int64(c) + 1
	}
	return n
}

// ResidentWords returns Σ (2·nnz_i + cols_i + 1), as FastDict.ResidentWords.
func (p Plan) ResidentWords() int64 {
	var n int64
	for i := 0; i < p.Factors; i++ {
		_, c := p.factorShape(i)
		n += 2*int64(p.factorBudget(i)) + int64(c) + 1
	}
	return n
}

// InterDim returns the chain-apply scratch length, as FastDict.MaxInterDim.
func (p Plan) InterDim() int {
	if p.Factors <= 1 {
		return 0
	}
	return p.Cols
}

// FactorizeFlops estimates the one-time cost of running Factorize at this
// plan: each PALM iteration on a p×q split costs ~6·p·q² flops (three dense
// p×q·q×q products), the hierarchy runs iters of those on one Rows×Cols
// split and k−2 Cols×Cols splits, and each polish sweep revisits all k
// factors at the wide shape. The tuner amortizes this over the reuse count.
func (p Plan) FactorizeFlops(iters, polish int) int64 {
	o := Options{Factors: p.Factors, Budget: p.Budget, Iters: iters, Polish: polish}.fill(p.Rows, p.Cols)
	l2 := int64(p.Cols) * int64(p.Cols)
	perSplit := 6 * int64(p.Rows) * l2
	square := 6 * int64(p.Cols) * l2
	hier := int64(o.Iters) * (perSplit + int64(p.Factors-2)*square)
	if p.Factors < 2 {
		hier = 0
	}
	return hier + int64(o.Polish)*int64(p.Factors)*perSplit
}

// Factorize approximates the dense dictionary d by a chain of sparse
// factors via hierarchical PALM: the residual is repeatedly split R ≈ S·R′
// with alternating proximal gradient steps (hard thresholding to the nnz
// budget), the final residual is thresholded into the last factor, and a
// few global polish sweeps refine all factors jointly. The best iterate —
// including every initialization — is kept, so at a budget covering the
// dense dictionary the error is exactly zero, and the result is
// deterministic for a given (d, opt).
func Factorize(d *mat.Dense, opt Options) (*FastDict, error) {
	if d.Rows <= 0 || d.Cols <= 0 {
		return nil, fmt.Errorf("faust: cannot factorize %dx%d dictionary", d.Rows, d.Cols)
	}
	opt = opt.fill(d.Rows, d.Cols)
	if opt.Factors < 1 {
		return nil, fmt.Errorf("faust: need at least one factor, got %d", opt.Factors)
	}
	if opt.Budget < 1 {
		return nil, fmt.Errorf("faust: per-factor nnz budget must be positive, got %d", opt.Budget)
	}
	plan := Plan{Rows: d.Rows, Cols: d.Cols, Factors: opt.Factors, Budget: opt.Budget}
	r := rng.New(opt.Seed)
	var best []*mat.Dense
	bestErr := math.Inf(1)
	for restart := 0; restart < opt.Restarts; restart++ {
		factors := factorizeOnce(d, plan, opt, restart, r.Split())
		if e := chainRelError(d, factors); e < bestErr {
			bestErr = e
			best = factors
		}
	}
	fd := &FastDict{Rows: d.Rows, Cols: d.Cols, Factors: make([]*sparse.CSC, len(best))}
	for i, s := range best {
		fd.Factors[i] = denseToCSC(s)
	}
	if err := fd.Check(); err != nil {
		return nil, err
	}
	return fd, nil
}

// factorizeOnce runs one seeded restart: hierarchical splits, then global
// polish, tracking the best snapshot by reconstruction error throughout.
func factorizeOnce(d *mat.Dense, plan Plan, opt Options, restart int, r *rng.RNG) []*mat.Dense {
	factors := make([]*mat.Dense, plan.Factors)
	res := d.Clone()
	for t := 0; t < plan.Factors-1; t++ {
		a, b := twoFactorPALM(res, plan.factorBudget(t), opt.Iters, restart, r)
		factors[t] = a
		res = b
	}
	factors[plan.Factors-1] = hardThreshold(res, plan.factorBudget(plan.Factors-1))
	best := cloneAll(factors)
	bestErr := chainRelError(d, factors)
	for sweep := 0; sweep < opt.Polish; sweep++ {
		polishSweep(d, factors, plan)
		if e := chainRelError(d, factors); e < bestErr {
			bestErr = e
			best = cloneAll(factors)
		}
	}
	return best
}

// twoFactorPALM approximates res (p×q) as A·B with A holding at most
// budget entries and B a dense q×q residual passed to the next split.
// Restart 0 initializes A from the thresholded residual and B from the
// identity; later restarts draw A's support at random through r. Proximal
// gradient steps alternate on A (with hard thresholding) and B, with the
// Frobenius bound ‖·‖_F² ≥ ‖·‖₂² as the safe Lipschitz estimate. The best
// (A, B) pair over all iterates, including the initialization, is returned.
func twoFactorPALM(res *mat.Dense, budget, iters, restart int, r *rng.RNG) (*mat.Dense, *mat.Dense) {
	p, q := res.Rows, res.Cols
	var a *mat.Dense
	if restart == 0 {
		a = hardThreshold(res, budget)
	} else {
		a = randomSupport(p, q, budget, r)
	}
	b := identity(q)
	e := mat.NewDense(p, q)
	ga := mat.NewDense(p, q)
	gb := mat.NewDense(q, q)
	bestA, bestB := a.Clone(), b.Clone()
	bestErr := splitResidual(res, a, b, e)
	for it := 0; it < iters; it++ {
		// A-step: A ← prox_budget(A − (A·B − res)·Bᵀ / (‖B‖_F² + δ)).
		splitResidual(res, a, b, e)
		mat.ParMulTo(ga, e, b.T())
		stepA := 1 / (frobSq(b) + 1e-12)
		axpyDense(-stepA, ga, a)
		a = hardThreshold(a, budget)
		// B-step: B ← B − Aᵀ·(A·B − res) / (‖A‖_F² + δ).
		splitResidual(res, a, b, e)
		mat.ParMulTo(gb, a.T(), e)
		stepB := 1 / (frobSq(a) + 1e-12)
		axpyDense(-stepB, gb, b)
		if err := splitResidual(res, a, b, e); err < bestErr {
			bestErr = err
			bestA, bestB = a.Clone(), b.Clone()
		}
	}
	return bestA, bestB
}

// polishSweep runs one global proximal-gradient pass over every factor,
// holding the others fixed: S_i ← prox(S_i − Leftᵀ·E·Rightᵀ / c) with
// E = Left·S_i·Right − D and c the product of the fixed factors' squared
// Frobenius norms.
func polishSweep(d *mat.Dense, factors []*mat.Dense, plan Plan) {
	for i := range factors {
		left := chainProduct(factors[:i], factors[i].Rows)
		right := chainProduct(factors[i+1:], factors[i].Cols)
		li := mat.Mul(left, factors[i])
		e := mat.Mul(li, right)
		e.Sub(d)
		grad := mat.Mul(mat.Mul(left.T(), e), right.T())
		step := 1 / (frobSq(left)*frobSq(right) + 1e-12)
		axpyDense(-step, grad, factors[i])
		factors[i] = hardThreshold(factors[i], plan.factorBudget(i))
	}
}

// chainProduct multiplies a run of factors, returning the dim×dim identity
// for an empty run.
func chainProduct(factors []*mat.Dense, dim int) *mat.Dense {
	if len(factors) == 0 {
		return identity(dim)
	}
	out := factors[0]
	for _, f := range factors[1:] {
		out = mat.Mul(out, f)
	}
	return out
}

// chainRelError returns ‖D − Π S_i‖_F / ‖D‖_F for dense factors.
func chainRelError(d *mat.Dense, factors []*mat.Dense) float64 {
	rec := chainProduct(factors, d.Rows)
	var num float64
	for i := 0; i < d.Rows; i++ {
		dr, rr := d.Row(i), rec.Row(i)
		for j := range dr {
			e := dr[j] - rr[j]
			num += e * e
		}
	}
	den := frobSq(d)
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// splitResidual computes e = a·b − res and returns ‖e‖_F.
func splitResidual(res, a, b, e *mat.Dense) float64 {
	mat.ParMulTo(e, a, b)
	e.Sub(res)
	return math.Sqrt(frobSq(e))
}

// hardThreshold returns a copy of m keeping its budget largest-magnitude
// entries (exact zeros never stored). Ties break on row-major index, so the
// proximal step is fully deterministic.
func hardThreshold(m *mat.Dense, budget int) *mat.Dense {
	type entry struct {
		idx int
		v   float64
	}
	entries := make([]entry, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				entries = append(entries, entry{i*m.Cols + j, v})
			}
		}
	}
	sort.Slice(entries, func(x, y int) bool {
		ax, ay := math.Abs(entries[x].v), math.Abs(entries[y].v)
		if ax != ay {
			return ax > ay
		}
		return entries[x].idx < entries[y].idx
	})
	if budget < len(entries) {
		entries = entries[:budget]
	}
	out := mat.NewDense(m.Rows, m.Cols)
	for _, e := range entries {
		out.Data[(e.idx/m.Cols)*out.Stride+e.idx%m.Cols] = e.v
	}
	return out
}

// randomSupport draws a budget-sized uniform support with ±1 entries — the
// seeded alternative initialization tried by later restarts.
func randomSupport(rows, cols, budget int, r *rng.RNG) *mat.Dense {
	out := mat.NewDense(rows, cols)
	if budget > rows*cols {
		budget = rows * cols
	}
	for _, idx := range r.Subset(rows*cols, budget) {
		v := 1.0
		if r.Float64() < 0.5 {
			v = -1
		}
		out.Data[(idx/cols)*out.Stride+idx%cols] = v
	}
	return out
}

func identity(n int) *mat.Dense {
	out := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, 1)
	}
	return out
}

func frobSq(m *mat.Dense) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return s
}

// axpyDense computes y += alpha·x elementwise over equal-shaped matrices.
func axpyDense(alpha float64, x, y *mat.Dense) {
	for i := 0; i < y.Rows; i++ {
		mat.Axpy(alpha, x.Row(i), y.Row(i))
	}
}

func cloneAll(factors []*mat.Dense) []*mat.Dense {
	out := make([]*mat.Dense, len(factors))
	for i, f := range factors {
		out[i] = f.Clone()
	}
	return out
}

// denseToCSC converts one fitted factor to the CSC layout the chain kernels
// run on.
func denseToCSC(m *mat.Dense) *sparse.CSC {
	out := &sparse.CSC{Rows: m.Rows, Cols: m.Cols, ColPtr: make([]int, m.Cols+1)}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if v := m.At(i, j); v != 0 {
				out.RowIdx = append(out.RowIdx, i)
				out.Val = append(out.Val, v)
			}
		}
		out.ColPtr[j+1] = len(out.Val)
	}
	return out
}
