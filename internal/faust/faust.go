// Package faust implements FAµST-style fast dictionaries: a dense
// dictionary D (M×L) approximated by a chain of sparse factors
//
//	D ≈ S_1 · S_2 · … · S_k,
//
// so applying D or Dᵀ to a vector costs O(Σ nnz(S_i)) instead of O(M·L)
// ("Learning computationally efficient dictionaries and their implementation
// as fast transforms", Le Magoarou & Gribonval). The factors are the
// repository's native sparse.CSC matrices, so the chain apply rides the same
// unrolled CSC kernels the distributed operators already use.
//
// The package provides the FastDict operator (chain storage + serial and
// deterministic parallel MulVec/MulVecT), a PALM-style hierarchical
// factorization routine (palm.go), and binary serialization (serialize.go).
package faust

import (
	"fmt"
	"math"

	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// FastDict is a dense M×L dictionary represented as a product of sparse
// factors: Factors[0]·Factors[1]·…·Factors[k-1], where Factors[0] has Rows
// rows, Factors[k-1] has Cols columns, and adjacent factors agree on their
// inner dimension. The canonical shape produced by Factorize is one M×L
// factor at the wide end followed by k-1 square L×L factors, but the apply
// kernels accept any consistent chain.
type FastDict struct {
	Rows, Cols int
	Factors    []*sparse.CSC
}

// Depth returns the number of factors in the chain.
func (f *FastDict) Depth() int { return len(f.Factors) }

// NNZ returns the total number of stored entries across the chain,
// Σ nnz(S_i) — the quantity the chain's FLOP cost (2·NNZ per apply) and the
// costmodel analyzer's factor-chain contracts are written in.
func (f *FastDict) NNZ() int64 {
	var n int64
	for _, s := range f.Factors {
		n += int64(s.NNZ())
	}
	return n
}

// VecWords returns Σ (rows_i + 2·cols_i + 1) over the factors: the total
// vector and column-pointer words one chain apply streams in addition to its
// 16·NNZ of sparse entries. Each CSC hop touches 16·nnz_i + 8·(rows_i +
// 2·cols_i + 1) bytes — identically in both the MulVec and MulVecT
// directions — so one symbol serves the memmodel contracts for both kernels.
func (f *FastDict) VecWords() int64 {
	var n int64
	for _, s := range f.Factors {
		n += int64(s.Rows) + 2*int64(s.Cols) + 1
	}
	return n
}

// ResidentWords returns Σ (2·nnz_i + cols_i + 1) over the factors: the
// 8-byte words the chain's CSC storage occupies (Val + RowIdx + ColPtr per
// factor). 8·ResidentWords is the allocmodel contract for holding a FastDict
// resident.
func (f *FastDict) ResidentWords() int64 {
	var n int64
	for _, s := range f.Factors {
		n += 2*int64(s.NNZ()) + int64(s.Cols) + 1
	}
	return n
}

// MaxInterDim returns the length of the largest intermediate vector a chain
// apply produces — max over interior dimensions Factors[i].Cols, i < k-1 —
// and therefore the scratch-buffer length both MulVec and MulVecT require.
// A single-factor chain needs no intermediates and returns 0.
func (f *FastDict) MaxInterDim() int {
	d := 0
	for i := 0; i+1 < len(f.Factors); i++ {
		if c := f.Factors[i].Cols; c > d {
			d = c
		}
	}
	return d
}

// Check validates the chain: factor CSC invariants, inner-dimension
// agreement, and the outer dimensions matching Rows×Cols.
func (f *FastDict) Check() error {
	if len(f.Factors) == 0 {
		return fmt.Errorf("faust: empty factor chain")
	}
	if f.Factors[0].Rows != f.Rows {
		return fmt.Errorf("faust: first factor has %d rows, want %d", f.Factors[0].Rows, f.Rows)
	}
	if f.Factors[len(f.Factors)-1].Cols != f.Cols {
		return fmt.Errorf("faust: last factor has %d cols, want %d", f.Factors[len(f.Factors)-1].Cols, f.Cols)
	}
	for i, s := range f.Factors {
		if err := s.Check(); err != nil {
			return fmt.Errorf("faust: factor %d: %w", i, err)
		}
		if i > 0 && f.Factors[i-1].Cols != s.Rows {
			return fmt.Errorf("faust: factor %d has %d rows, want %d (inner dimension)", i, s.Rows, f.Factors[i-1].Cols)
		}
	}
	return nil
}

// MulVec computes y = (S_1·…·S_k)·x by applying the factors right to left.
// len(x) must be Cols and len(y) Rows (y allocated when nil); t1 and t2 are
// intermediate buffers of length ≥ MaxInterDim (allocated when nil). The
// hops ping-pong between t1 and t2 and the final hop writes y directly, so
// a steady-state caller allocates nothing.
func (f *FastDict) MulVec(x, y, t1, t2 []float64) []float64 {
	if len(x) != f.Cols {
		panic("faust: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, f.Rows)
	}
	if len(y) != f.Rows {
		panic("faust: MulVec output length mismatch")
	}
	k := len(f.Factors)
	cur := x
	for hop := 0; hop < k-1; hop++ {
		s := f.Factors[k-1-hop]
		dst := f.interBuf(hop, &t1, &t2)[:s.Rows]
		s.MulVec(cur, dst)
		cur = dst
	}
	return f.Factors[0].MulVec(cur, y)
}

// MulVecT computes y = (S_1·…·S_k)ᵀ·x = S_kᵀ·…·S_1ᵀ·x by applying factor
// transposes left to right. len(x) must be Rows and len(y) Cols (allocated
// when nil); t1 and t2 as in MulVec.
func (f *FastDict) MulVecT(x, y, t1, t2 []float64) []float64 {
	if len(x) != f.Rows {
		panic("faust: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, f.Cols)
	}
	if len(y) != f.Cols {
		panic("faust: MulVecT output length mismatch")
	}
	k := len(f.Factors)
	cur := x
	for hop := 0; hop < k-1; hop++ {
		s := f.Factors[hop]
		dst := f.interBuf(hop, &t1, &t2)[:s.Cols]
		s.MulVecT(cur, dst)
		cur = dst
	}
	return f.Factors[k-1].MulVecT(cur, y)
}

// interBuf returns the ping-pong buffer for intermediate hop number hop,
// allocating it on first use when the caller passed nil.
func (f *FastDict) interBuf(hop int, t1, t2 *[]float64) []float64 {
	t := t1
	if hop%2 == 1 {
		t = t2
	}
	if *t == nil {
		*t = make([]float64, f.MaxInterDim())
	}
	if len(*t) < f.MaxInterDim() {
		panic("faust: intermediate buffer too short")
	}
	return *t
}

// Dense materializes the chain product as a dense M×L matrix — the
// reference the property tests compare the chain kernels against, and the
// reconstruction RelError measures.
func (f *FastDict) Dense() *mat.Dense {
	out := f.Factors[0].Dense()
	for _, s := range f.Factors[1:] {
		right := s.Dense()
		next := mat.NewDense(out.Rows, right.Cols)
		mat.ParMulTo(next, out, right)
		out = next
	}
	return out
}

// RelError returns ‖D − S_1·…·S_k‖_F / ‖D‖_F, the relative reconstruction
// error of the chain against the dense dictionary it approximates.
func (f *FastDict) RelError(d *mat.Dense) float64 {
	if d.Rows != f.Rows || d.Cols != f.Cols {
		panic("faust: RelError dimension mismatch")
	}
	rec := f.Dense()
	var num, den float64
	for i := 0; i < d.Rows; i++ {
		dr, rr := d.Row(i), rec.Row(i)
		for j := range dr {
			e := dr[j] - rr[j]
			num += e * e
			den += dr[j] * dr[j]
		}
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
