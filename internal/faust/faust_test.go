package faust

import (
	"math"
	"testing"

	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/sparse"
)

// randomCSC builds a rows×cols factor with about nnz seeded entries.
func randomCSC(r *rng.RNG, rows, cols, nnz int) *sparse.CSC {
	out := &sparse.CSC{Rows: rows, Cols: cols, ColPtr: make([]int, cols+1)}
	perCol := nnz / cols
	if perCol < 1 {
		perCol = 1
	}
	if perCol > rows {
		perCol = rows
	}
	for j := 0; j < cols; j++ {
		for _, i := range r.Subset(rows, perCol) {
			out.RowIdx = append(out.RowIdx, i)
			out.Val = append(out.Val, r.NormFloat64())
		}
		out.ColPtr[j+1] = len(out.Val)
	}
	return out
}

// randomChain builds a consistent factor chain over seeded interior dims.
func randomChain(r *rng.RNG, rows, cols, k int) *FastDict {
	dims := make([]int, k+1)
	dims[0], dims[k] = rows, cols
	for i := 1; i < k; i++ {
		dims[i] = 1 + r.Intn(2*cols)
	}
	fd := &FastDict{Rows: rows, Cols: cols, Factors: make([]*sparse.CSC, k)}
	for i := 0; i < k; i++ {
		fd.Factors[i] = randomCSC(r, dims[i], dims[i+1], dims[i]*dims[i+1]/3+1)
	}
	return fd
}

func randomVec(r *rng.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// TestChainApplyMatchesDense checks chain MulVec/MulVecT against the
// materialized S_1·…·S_k dense product to 1e-12 over randomized shapes.
func TestChainApplyMatchesDense(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+r.Intn(90), 1+r.Intn(60)
		k := 1 + r.Intn(5)
		fd := randomChain(r, rows, cols, k)
		if err := fd.Check(); err != nil {
			t.Fatalf("trial %d: invalid chain: %v", trial, err)
		}
		d := fd.Dense()
		x, xt := randomVec(r, cols), randomVec(r, rows)
		got := fd.MulVec(x, nil, nil, nil)
		want := d.MulVec(x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: MulVec[%d] = %v, dense %v", trial, i, got[i], want[i])
			}
		}
		gotT := fd.MulVecT(xt, nil, nil, nil)
		wantT := d.MulVecT(xt, nil)
		for i := range wantT {
			if math.Abs(gotT[i]-wantT[i]) > 1e-12*(1+math.Abs(wantT[i])) {
				t.Fatalf("trial %d: MulVecT[%d] = %v, dense %v", trial, i, gotT[i], wantT[i])
			}
		}
	}
}

// TestParChainBitIdenticalToSerial pins the determinism contract: the
// parallel chain kernels equal the serial ones bit for bit at any worker
// count, including sizes above the parallel threshold.
func TestParChainBitIdenticalToSerial(t *testing.T) {
	oldWorkers := mat.Workers
	defer func() { mat.Workers = oldWorkers }()
	r := rng.New(11)
	for _, shape := range [][3]int{{513, 300, 4}, {1024, 400, 3}, {40, 20, 2}} {
		fd := randomChain(r, shape[0], shape[1], shape[2])
		x, xt := randomVec(r, shape[1]), randomVec(r, shape[0])
		mat.Workers = 1
		serial := fd.MulVec(x, nil, nil, nil)
		serialT := fd.MulVecT(xt, nil, nil, nil)
		for _, w := range []int{1, 2, 3, 5, 8, 16} {
			mat.Workers = w
			got := fd.ParMulVec(x, nil, nil, nil)
			gotT := fd.ParMulVecT(xt, nil, nil, nil)
			for i := range serial {
				if math.Float64bits(got[i]) != math.Float64bits(serial[i]) {
					t.Fatalf("shape %v workers %d: ParMulVec[%d] = %v, serial %v", shape, w, i, got[i], serial[i])
				}
			}
			for i := range serialT {
				if math.Float64bits(gotT[i]) != math.Float64bits(serialT[i]) {
					t.Fatalf("shape %v workers %d: ParMulVecT[%d] = %v, serial %v", shape, w, i, gotT[i], serialT[i])
				}
			}
		}
	}
}

// TestChainApplyReusesBuffers checks the steady-state contract: with y and
// both intermediates supplied, the kernels write into the provided storage.
func TestChainApplyReusesBuffers(t *testing.T) {
	r := rng.New(3)
	fd := randomChain(r, 50, 30, 4)
	inter := fd.MaxInterDim()
	y, t1, t2 := make([]float64, 50), make([]float64, inter), make([]float64, inter)
	x := randomVec(r, 30)
	if got := fd.MulVec(x, y, t1, t2); &got[0] != &y[0] {
		t.Fatal("MulVec did not write into the provided output buffer")
	}
	yt := make([]float64, 30)
	if got := fd.MulVecT(randomVec(r, 50), yt, t1, t2); &got[0] != &yt[0] {
		t.Fatal("MulVecT did not write into the provided output buffer")
	}
}

// TestFactorizeErrorBoundedAndMonotone pins the PALM property: the
// reconstruction error stays bounded, and growing the per-factor budget
// never hurts on a fixed seeded problem.
func TestFactorizeErrorBoundedAndMonotone(t *testing.T) {
	r := rng.New(5)
	d := mat.NewDense(48, 24)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	prev := math.Inf(1)
	for _, budget := range []int{48, 96, 192, 384, 48 * 24} {
		fd, err := Factorize(d, Options{Factors: 3, Budget: budget, Seed: 9})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		e := fd.RelError(d)
		if e > 1.0+1e-12 {
			t.Fatalf("budget %d: relative error %v above the trivial zero-chain bound", budget, e)
		}
		if e > prev+1e-12 {
			t.Fatalf("budget %d: error %v worse than smaller budget's %v", budget, e, prev)
		}
		prev = e
	}
	if prev > 1e-9 {
		t.Fatalf("full budget should reconstruct exactly, got relative error %v", prev)
	}
}

// TestFactorizeRespectsBudget checks every factor's nnz stays within the
// clamped budget and the chain has the canonical shape.
func TestFactorizeRespectsBudget(t *testing.T) {
	r := rng.New(6)
	d := mat.NewDense(40, 16)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	fd, err := Factorize(d, Options{Factors: 4, Budget: 64, Iters: 10, Restarts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fd.Depth() != 4 || fd.Rows != 40 || fd.Cols != 16 {
		t.Fatalf("unexpected chain shape: %d factors, %dx%d", fd.Depth(), fd.Rows, fd.Cols)
	}
	for i, s := range fd.Factors {
		if s.NNZ() > 64 {
			t.Fatalf("factor %d has %d entries, budget 64", i, s.NNZ())
		}
	}
	if got := fd.NNZ(); got > 4*64 {
		t.Fatalf("chain nnz %d above total budget", got)
	}
}

// TestFactorizeDeterministic pins bit-identical output for a fixed seed.
func TestFactorizeDeterministic(t *testing.T) {
	r := rng.New(8)
	d := mat.NewDense(30, 12)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	opt := Options{Factors: 3, Budget: 60, Iters: 8, Restarts: 2, Seed: 4}
	a, err := Factorize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Factorize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Factors {
		av, bv := a.Factors[i].Val, b.Factors[i].Val
		if len(av) != len(bv) {
			t.Fatalf("factor %d nnz differs across runs: %d vs %d", i, len(av), len(bv))
		}
		for j := range av {
			if math.Float64bits(av[j]) != math.Float64bits(bv[j]) {
				t.Fatalf("factor %d entry %d differs across runs", i, j)
			}
		}
	}
}

// TestPlanMatchesFastDictAtReferenceShape pins the documented reference
// chain the lint goldens evaluate at: M=512, L=128, k=4, budget 1024.
func TestPlanMatchesFastDictAtReferenceShape(t *testing.T) {
	p := NewPlan(512, 128, 4, 1024)
	if got := p.NNZ(); got != 4096 {
		t.Fatalf("reference NNZ = %d, want 4096", got)
	}
	if got := p.VecWords(); got != 1924 {
		t.Fatalf("reference VecWords = %d, want 1924", got)
	}
	if got := p.ResidentWords(); got != 8708 {
		t.Fatalf("reference ResidentWords = %d, want 8708", got)
	}
	if got := p.InterDim(); got != 128 {
		t.Fatalf("reference InterDim = %d, want 128", got)
	}
	if got := p.FactorizeFlops(0, 0); got <= 0 {
		t.Fatalf("FactorizeFlops = %d, want positive", got)
	}
}

// TestPlanBoundsFittedChain checks the plan's accessors are upper bounds on
// a fitted chain and that a fitted chain's accessors agree with its factors.
func TestPlanBoundsFittedChain(t *testing.T) {
	r := rng.New(12)
	d := mat.NewDense(32, 16)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	p := NewPlan(32, 16, 3, 80)
	fd, err := Factorize(d, Options{Factors: 3, Budget: 80, Iters: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fd.NNZ() > p.NNZ() || fd.VecWords() != p.VecWords() || fd.ResidentWords() > p.ResidentWords() {
		t.Fatalf("plan (nnz %d, vw %d, rw %d) does not bound fitted chain (nnz %d, vw %d, rw %d)",
			p.NNZ(), p.VecWords(), p.ResidentWords(), fd.NNZ(), fd.VecWords(), fd.ResidentWords())
	}
	if fd.MaxInterDim() != p.InterDim() {
		t.Fatalf("InterDim %d, plan %d", fd.MaxInterDim(), p.InterDim())
	}
}

// TestCheckRejectsMalformedChains covers the validation paths.
func TestCheckRejectsMalformedChains(t *testing.T) {
	r := rng.New(13)
	good := randomChain(r, 10, 6, 3)
	if err := good.Check(); err != nil {
		t.Fatal(err)
	}
	empty := &FastDict{Rows: 10, Cols: 6}
	if empty.Check() == nil {
		t.Fatal("empty chain accepted")
	}
	wrongOuter := &FastDict{Rows: 11, Cols: 6, Factors: good.Factors}
	if wrongOuter.Check() == nil {
		t.Fatal("wrong outer rows accepted")
	}
	mismatch := randomChain(r, 10, 6, 3)
	mismatch.Factors[1] = randomCSC(r, mismatch.Factors[1].Rows+1, mismatch.Factors[1].Cols, 5)
	if mismatch.Check() == nil {
		t.Fatal("inner dimension mismatch accepted")
	}
}
