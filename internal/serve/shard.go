package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/perf"
)

// snapshot is one immutable published version of a shard's dictionary: the
// matrix, its precomputed Batch-OMP Gram structures, and the epoch that
// names this version in responses. Snapshots are never mutated after
// publication — hot reload builds a fresh one and swaps the pointer — so
// the encode path reads them without any lock.
type snapshot struct {
	dict  *mat.Dense      // M×L, unit-norm columns
	coder *omp.BatchCoder // Gram structures built once per snapshot
	epoch uint64
}

// reqKind selects what the batcher does with a coded request.
type reqKind int

const (
	kindEncode reqKind = iota
	kindDenoise
)

// request is one accepted client signal travelling from an HTTP handler to
// the shard's batcher. Ownership transfers over the request channel: after
// submit succeeds the handler only waits on done, and the batcher populates
// the result fields before closing it.
type request struct {
	kind   reqKind
	signal []float64
	done   chan struct{}

	// Written by the batcher, readable after done is closed.
	res      omp.Result
	denoised []float64
	epoch    uint64
	batch    int
}

// shardStats are a shard's monotone serving counters. All fields are
// atomics: handlers and the batcher bump them concurrently, statsz reads
// them without stopping the world.
type shardStats struct {
	accepted    atomic.Int64
	shedLatency atomic.Int64 // 429: modeled latency exceeded the budget
	shedQueue   atomic.Int64 // 429: queue at capacity
	rejected    atomic.Int64 // 503: submitted after the shard began draining
	batches     atomic.Int64
	encoded     atomic.Int64
	depthPeak   atomic.Int64
	hist        []atomic.Int64 // hist[b-1] counts panels of exactly b columns
}

// shard is one served dictionary: an epoch-swapped snapshot, a bounded
// request queue, and a single batcher goroutine that coalesces queued
// requests into Batch-OMP panels.
type shard struct {
	name  string
	rows  int // signal dimension M, fixed for the shard's lifetime
	cfg   *Config
	clock Clock

	snap   atomic.Pointer[snapshot]
	swapMu sync.Mutex // serializes swaps so epochs increment exactly once

	mu     sync.Mutex // guards closed and the closed-vs-send race on reqCh
	closed bool
	reqCh  chan *request

	// inflight counts accepted requests not yet responded to — the queue
	// depth the admission controller prices.
	inflight atomic.Int64
	stats    shardStats
}

// Sentinel submit errors; the HTTP layer maps them to status codes.
var (
	// ErrClosed reports a submit after the shard began draining (503).
	ErrClosed = errors.New("serve: shard is draining; server shutting down")
	// ErrShedLatency reports an admission shed: the modeled completion
	// latency at the current queue depth exceeds the budget (429).
	ErrShedLatency = errors.New("serve: modeled latency exceeds the budget; retry later")
	// ErrShedQueue reports a full request queue (429).
	ErrShedQueue = errors.New("serve: request queue full; retry later")
)

// newShard builds a shard around an already-validated dictionary and
// publishes epoch 1.
func newShard(name string, d *mat.Dense, cfg *Config) *shard {
	sh := &shard{
		name:  name,
		rows:  d.Rows,
		cfg:   cfg,
		clock: cfg.Clock,
		reqCh: make(chan *request, cfg.QueueCap),
	}
	sh.stats.hist = make([]atomic.Int64, cfg.BatchMax)
	sh.snap.Store(&snapshot{dict: d, coder: omp.NewBatchCoder(d), epoch: 1})
	return sh
}

// submit runs admission and enqueues the request. It returns the modeled
// completion latency in seconds (whatever the decision) and nil on accept,
// or one of the sentinel errors. The closed check and the channel send
// happen under one mutex so a send can never race the drain's close; the
// send itself is non-blocking — a full queue sheds instead of stalling the
// handler on a held lock.
func (sh *shard) submit(req *request) (float64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		sh.stats.rejected.Add(1)
		return 0, ErrClosed
	}
	depth := int(sh.inflight.Load())
	modeled := sh.modeledLatency(depth + 1)
	if budget := sh.cfg.LatencyBudget; budget > 0 && modeled > budget.Seconds() {
		sh.stats.shedLatency.Add(1)
		return modeled, ErrShedLatency
	}
	select {
	case sh.reqCh <- req:
	default:
		sh.stats.shedQueue.Add(1)
		return modeled, ErrShedQueue
	}
	n := sh.inflight.Add(1)
	sh.stats.accepted.Add(1)
	for {
		p := sh.stats.depthPeak.Load()
		if n <= p || sh.stats.depthPeak.CompareAndSwap(p, n) {
			break
		}
	}
	return modeled, nil
}

// modeledLatency prices the queue for the admission decision against the
// current snapshot's shape. It is a pure function of the queue depth and
// the (snapshot, config, platform) constants — replaying the same submit
// sequence replays the same accept/shed trace bit for bit.
func (sh *shard) modeledLatency(queued int) float64 {
	snap := sh.snap.Load()
	return ModeledLatency(snap.dict.Rows, snap.dict.Cols, queued,
		sh.cfg.BatchMax, sh.cfg.MaxAtoms, sh.cfg.Platform)
}

// ModeledLatency is the serving layer's admission formula: the Eq. 2
// predicted seconds until a request admitted with `queued` requests in
// flight (itself included) leaves the encoder. The queue drains in
// ⌈queued/batchMax⌉ panels, each priced by perf.PredictEncodeBatch — full
// panels of batchMax columns plus one remainder panel.
func ModeledLatency(m, l, queued, batchMax, maxAtoms int, plat cluster.Platform) float64 {
	if queued < 1 {
		queued = 1
	}
	if batchMax < 1 {
		batchMax = 1
	}
	full := queued / batchMax
	t := float64(full) * perf.PredictEncodeBatch(m, l, batchMax, maxAtoms, plat).Time
	if rem := queued % batchMax; rem > 0 {
		t += perf.PredictEncodeBatch(m, l, rem, maxAtoms, plat).Time
	}
	return t
}

// swap publishes a new dictionary snapshot and returns its epoch. The Gram
// precompute happens before the swap lock, so concurrent encodes keep
// streaming against the old snapshot until the single atomic store; they
// see either the old version or the new one, never a mix.
func (sh *shard) swap(d *mat.Dense) (uint64, error) {
	if d == nil || d.Rows != sh.rows || d.Cols < 1 {
		return 0, fmt.Errorf("serve: replacement dictionary for %q must be %d×L with L ≥ 1", sh.name, sh.rows)
	}
	coder := omp.NewBatchCoder(d)
	sh.swapMu.Lock()
	defer sh.swapMu.Unlock()
	next := sh.snap.Load().epoch + 1
	sh.snap.Store(&snapshot{dict: d, coder: coder, epoch: next})
	return next, nil
}

// close marks the shard draining: later submits fail with ErrClosed (the
// handler's 503) and the request channel closes, so the batcher encodes
// every already-accepted request and exits — no accepted request is ever
// dropped. Idempotent.
func (sh *shard) close() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return
	}
	sh.closed = true
	close(sh.reqCh)
}

// run is the shard's batcher: the single goroutine that owns the consuming
// end of the request queue. Each panel opens with the first queued request,
// then coalesces more until either batchMax columns are buffered or the
// injected batching window fires; the panel is then coded in one
// omp.BatchCoder pass over the shared mat pool. When the queue closes
// mid-fill the current panel still encodes before the goroutine exits.
func (sh *shard) run() {
	// The batcher's steady state is allocation-free (hotalloc's serve
	// contract): the request and column scratch live for the goroutine's
	// lifetime and each panel fills them by index.
	buf := make([]*request, sh.cfg.BatchMax)
	cols := make([][]float64, sh.cfg.BatchMax)
	for {
		first, ok := <-sh.reqCh
		if !ok {
			return
		}
		buf[0] = first
		n := 1
		window := sh.clock.After(sh.cfg.BatchWindow)
	fill:
		for n < sh.cfg.BatchMax {
			select {
			case r, open := <-sh.reqCh:
				if !open {
					break fill
				}
				buf[n] = r
				n++
			case <-window:
				break fill
			}
		}
		sh.encodeBatch(buf[:n], cols[:n])
	}
}

// encodeBatch codes one coalesced panel against a single atomically-loaded
// snapshot and completes every request in it. cols is the batcher's reused
// column-pointer scratch.
func (sh *shard) encodeBatch(buf []*request, cols [][]float64) {
	snap := sh.snap.Load()
	for i, r := range buf {
		cols[i] = r.signal
	}
	results := snap.coder.EncodePanel(cols, sh.cfg.Tol, sh.cfg.MaxAtoms, sh.cfg.Workers)

	b := len(buf)
	sh.stats.batches.Add(1)
	sh.stats.encoded.Add(int64(b))
	sh.stats.hist[b-1].Add(1)
	for i, r := range buf {
		r.res = results[i]
		r.epoch = snap.epoch
		r.batch = b
		if r.kind == kindDenoise {
			r.denoised = reconstruct(snap.dict, results[i])
		}
		sh.inflight.Add(-1)
		close(r.done)
	}
}

// reconstruct returns D·γ for one sparse code — the denoised signal of the
// paper's first application (§VIII-A), served.
func reconstruct(d *mat.Dense, r omp.Result) []float64 {
	y := make([]float64, d.Rows)
	for i, jj := range r.Idx {
		c := r.Coef[i]
		for row := 0; row < d.Rows; row++ {
			y[row] += c * d.At(row, jj)
		}
	}
	return y
}
