package serve

import (
	"math"
	"runtime"
	"testing"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/cluster/clustertest"
	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/rng"
)

// newVirtualShard builds a shard driven by a VirtualClock and starts its
// batcher, returning both plus a cleanup that drains it.
func newVirtualShard(t *testing.T, d *mat.Dense, cfg Config) (*shard, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock(1024)
	cfg.Clock = vc
	cfg.BatchWindow = time.Hour // never fires on its own; the test drives it
	cfg = cfg.withDefaults()
	sh := newShard("d", d, &cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sh.run()
	}()
	t.Cleanup(func() {
		sh.close()
		for {
			select {
			case <-done:
				return
			default:
				vc.TryFireNext()
				runtime.Gosched()
			}
		}
	})
	return sh, vc
}

// submitN submits n fresh requests built from the signal stream and returns
// them. Every submit must be accepted.
func submitN(t *testing.T, sh *shard, r *rng.RNG, n int) []*request {
	t.Helper()
	reqs := make([]*request, n)
	for i := range reqs {
		reqs[i] = &request{kind: kindEncode, signal: randSignal(r, sh.rows), done: make(chan struct{})}
		if _, err := sh.submit(reqs[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return reqs
}

// waitDrained spins until the batcher has consumed every queued request, so
// a subsequent window fire deterministically closes the current panel.
func waitDrained(sh *shard) {
	for len(sh.reqCh) > 0 {
		runtime.Gosched()
	}
}

// completeAll fires virtual windows until every request in reqs has been
// answered.
func completeAll(t *testing.T, vc *VirtualClock, reqs []*request) {
	t.Helper()
	clustertest.Watchdog(t, func() {
		for _, r := range reqs {
			for {
				select {
				case <-r.done:
				default:
					vc.TryFireNext()
					runtime.Gosched()
					continue
				}
				break
			}
		}
	})
}

// TestBatcherMatchesSerialUnderSeededArrivals is the core batching
// property: for seeded arrival patterns, every coalesced panel's results
// are bit-identical to coding the same signals one at a time, batch sizes
// never exceed BatchMax, and every accepted request is answered.
func TestBatcherMatchesSerialUnderSeededArrivals(t *testing.T) {
	const batchMax = 4
	r := rng.New(101)
	d := unitDictionary(r, 16, 48)
	ref := omp.NewBatchCoder(d)
	ws := &omp.Workspace{}

	for trial := 0; trial < 20; trial++ {
		sh, vc := newVirtualShard(t, d, Config{BatchMax: batchMax, QueueCap: 64, Tol: 0.05, Workers: 2})
		var all []*request
		// A seeded arrival pattern: bursts of 1..2·batchMax requests, each
		// burst flushed by the virtual window after the queue drains.
		for burst := 0; burst < 4; burst++ {
			n := 1 + r.Intn(2*batchMax)
			reqs := submitN(t, sh, r, n)
			waitDrained(sh)
			vc.TryFireNext()
			all = append(all, reqs...)
		}
		completeAll(t, vc, all)

		for i, req := range all {
			if req.batch < 1 || req.batch > batchMax {
				t.Fatalf("trial %d: request %d rode a panel of %d columns (max %d)", trial, i, req.batch, batchMax)
			}
			want := ref.Encode(req.signal, 0.05, 0, ws)
			if req.res.Iters != want.Iters ||
				math.Float64bits(req.res.Resid2) != math.Float64bits(want.Resid2) {
				t.Fatalf("trial %d: request %d differs from serial encode", trial, i)
			}
			for k := range want.Idx {
				if req.res.Idx[k] != want.Idx[k] ||
					math.Float64bits(req.res.Coef[k]) != math.Float64bits(want.Coef[k]) {
					t.Fatalf("trial %d: request %d coef/idx differ from serial encode", trial, i)
				}
			}
		}
		if got := sh.inflight.Load(); got != 0 {
			t.Fatalf("trial %d: %d requests still in flight after completion", trial, got)
		}
		var coded int64
		for b1 := range sh.stats.hist {
			n := sh.stats.hist[b1].Load()
			coded += int64(b1+1) * n
		}
		if coded != int64(len(all)) {
			t.Fatalf("trial %d: histogram codes %d signals, want %d", trial, coded, len(all))
		}
	}
}

// TestBatcherFullPanelWithoutWindow proves BatchMax alone closes a panel:
// submitting exactly BatchMax requests completes them with no window fire.
func TestBatcherFullPanelWithoutWindow(t *testing.T) {
	r := rng.New(55)
	d := unitDictionary(r, 8, 24)
	sh, _ := newVirtualShard(t, d, Config{BatchMax: 4, QueueCap: 64})
	reqs := submitN(t, sh, r, 4)
	clustertest.Watchdog(t, func() {
		for _, req := range reqs {
			<-req.done
		}
	})
	for _, req := range reqs {
		if req.batch != 4 {
			t.Fatalf("batch %d, want the full panel of 4", req.batch)
		}
	}
}

// TestAdmissionTraceReplays proves admission is a pure function of the
// submit sequence: two fresh shards driven with the same seeded signals
// produce bitwise-identical accept/shed decisions and modeled latencies.
func TestAdmissionTraceReplays(t *testing.T) {
	const n = 40
	d := unitDictionary(rng.New(5), 16, 48)
	plat := cluster.NewPlatform(1, 4)
	// A budget that the model itself crosses at depth 21, so the trace has a
	// real accept→shed transition whatever the platform constants are.
	budget := time.Duration(ModeledLatency(d.Rows, d.Cols, 20, n, 0, plat) * float64(time.Second))

	type decision struct {
		modeledBits uint64
		err         error
	}
	drive := func() []decision {
		// BatchMax ≥ n keeps the batcher waiting on the (never-fired)
		// window, so queue depth during the submit run is exactly the
		// accepted count — deterministic.
		sh, _ := newVirtualShard(t, d, Config{
			BatchMax: n, QueueCap: n, LatencyBudget: budget, Platform: plat,
		})
		r := rng.New(77)
		trace := make([]decision, n)
		for i := range trace {
			req := &request{kind: kindEncode, signal: randSignal(r, sh.rows), done: make(chan struct{})}
			waitDrained(sh)
			m, err := sh.submit(req)
			trace[i] = decision{modeledBits: math.Float64bits(m), err: err}
		}
		return trace
	}

	a, b := drive(), drive()
	accepted, shed := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between replays: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].err != nil {
			shed++
		} else {
			accepted++
		}
	}
	if accepted == 0 || shed == 0 {
		t.Fatalf("schedule should mix accepts and sheds: %d accepted, %d shed", accepted, shed)
	}
}

// TestQueueCapSheds proves the queue bound: with no batcher draining the
// channel, exactly QueueCap submits are accepted and the rest shed with
// ErrShedQueue — a deterministic count.
func TestQueueCapSheds(t *testing.T) {
	const qcap = 4
	r := rng.New(23)
	d := unitDictionary(r, 8, 24)
	cfg := (Config{QueueCap: qcap}).withDefaults()
	sh := newShard("d", d, &cfg) // run() never started: the queue only fills

	shed := 0
	for i := 0; i < 3*qcap; i++ {
		req := &request{kind: kindEncode, signal: randSignal(r, sh.rows), done: make(chan struct{})}
		if _, err := sh.submit(req); err == ErrShedQueue {
			shed++
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed != 2*qcap {
		t.Fatalf("shed %d submits, want exactly %d", shed, 2*qcap)
	}
	if got := sh.stats.shedQueue.Load(); got != int64(shed) {
		t.Fatalf("shedQueue counter %d, want %d", got, shed)
	}
}

// TestDrainCompletesAcceptedRequests proves the no-drop guarantee: close
// mid-fill and every accepted request still gets coded — without any window
// fire — while later submits fail with ErrClosed.
func TestDrainCompletesAcceptedRequests(t *testing.T) {
	r := rng.New(31)
	d := unitDictionary(r, 8, 24)
	sh, _ := newVirtualShard(t, d, Config{BatchMax: 16, QueueCap: 64})

	reqs := submitN(t, sh, r, 5)
	sh.close()
	clustertest.Watchdog(t, func() {
		for _, req := range reqs {
			<-req.done
		}
	})
	for i, req := range reqs {
		if len(req.res.Idx) == 0 && req.res.Iters == 0 {
			t.Fatalf("request %d drained without being coded", i)
		}
	}
	late := &request{kind: kindEncode, signal: randSignal(r, sh.rows), done: make(chan struct{})}
	if _, err := sh.submit(late); err != ErrClosed {
		t.Fatalf("post-drain submit: %v, want ErrClosed", err)
	}
}
