package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/matio"
	"extdict/internal/omp"
	"extdict/internal/rng"
)

// unitDictionary returns an M×L dictionary with unit-norm random columns.
func unitDictionary(r *rng.RNG, m, l int) *mat.Dense {
	d := mat.NewDense(m, l)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	d.NormalizeColumns()
	return d
}

// randSignal draws a dense random signal of dimension m.
func randSignal(r *rng.RNG, m int) []float64 {
	sig := make([]float64, m)
	for i := range sig {
		sig[i] = r.NormFloat64()
	}
	return sig
}

// newTestServer builds a server plus an httptest front end and returns both
// with a cleanup-registered shutdown.
func newTestServer(t *testing.T, dicts map[string]*mat.Dense, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(dicts, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON marshals v against the URL and returns status plus raw body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

// sameResult asserts a response code equals the serial reference bit for bit.
func sameResult(t *testing.T, got EncodeResponse, want omp.Result) {
	t.Helper()
	if got.Iters != want.Iters {
		t.Fatalf("iters: got %d want %d", got.Iters, want.Iters)
	}
	if math.Float64bits(got.Resid2) != math.Float64bits(want.Resid2) {
		t.Fatalf("resid2 bits differ: got %v want %v", got.Resid2, want.Resid2)
	}
	if len(got.Idx) != len(want.Idx) {
		t.Fatalf("support size: got %d want %d", len(got.Idx), len(want.Idx))
	}
	for i := range got.Idx {
		if got.Idx[i] != want.Idx[i] {
			t.Fatalf("idx[%d]: got %d want %d", i, got.Idx[i], want.Idx[i])
		}
		if math.Float64bits(got.Coef[i]) != math.Float64bits(want.Coef[i]) {
			t.Fatalf("coef[%d] bits differ: got %v want %v", i, got.Coef[i], want.Coef[i])
		}
	}
}

func TestEncodeBitIdenticalToSerial(t *testing.T) {
	r := rng.New(7)
	d := unitDictionary(r, 24, 60)
	_, ts := newTestServer(t, map[string]*mat.Dense{"d": d}, Config{Tol: 0.05})

	ref := omp.NewBatchCoder(d)
	ws := &omp.Workspace{}
	for i := 0; i < 20; i++ {
		sig := randSignal(r, d.Rows)
		want := ref.Encode(sig, 0.05, 0, ws)
		status, body := postJSON(t, ts.URL+"/v1/encode", EncodeRequest{Signal: sig})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		var got EncodeResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.Dict != "d" || got.Epoch != 1 || got.Batch < 1 {
			t.Fatalf("metadata: %+v", got)
		}
		sameResult(t, got, want)
	}
}

func TestDenoiseMatchesReconstruction(t *testing.T) {
	r := rng.New(11)
	d := unitDictionary(r, 16, 40)
	_, ts := newTestServer(t, map[string]*mat.Dense{"d": d}, Config{Tol: 0.1})

	ref := omp.NewBatchCoder(d)
	sig := randSignal(r, d.Rows)
	want := ref.Encode(sig, 0.1, 0, &omp.Workspace{})
	wantY := reconstruct(d, want)

	status, body := postJSON(t, ts.URL+"/v1/denoise", EncodeRequest{Signal: sig})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var got DenoiseResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got.Denoised) != len(wantY) {
		t.Fatalf("denoised length %d want %d", len(got.Denoised), len(wantY))
	}
	for i := range wantY {
		if math.Float64bits(got.Denoised[i]) != math.Float64bits(wantY[i]) {
			t.Fatalf("denoised[%d] bits differ: got %v want %v", i, got.Denoised[i], wantY[i])
		}
	}
}

func TestRequestValidation(t *testing.T) {
	r := rng.New(3)
	d1 := unitDictionary(r, 8, 16)
	d2 := unitDictionary(r, 12, 20)
	_, ts := newTestServer(t, map[string]*mat.Dense{"a": d1, "b": d2}, Config{})

	cases := []struct {
		name string
		req  EncodeRequest
		want int
	}{
		{"wrong length", EncodeRequest{Dict: "a", Signal: make([]float64, 5)}, http.StatusBadRequest},
		{"unknown dict", EncodeRequest{Dict: "zzz", Signal: make([]float64, 8)}, http.StatusNotFound},
		{"ambiguous empty name", EncodeRequest{Signal: make([]float64, 8)}, http.StatusNotFound},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v1/encode", tc.req)
		if status != tc.want {
			t.Errorf("%s: status %d want %d (%s)", tc.name, status, tc.want, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body missing: %s", tc.name, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/encode", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d want 400", resp.StatusCode)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	r := rng.New(5)
	dicts := map[string]*mat.Dense{
		"beta":  unitDictionary(r, 8, 16),
		"alpha": unitDictionary(r, 8, 12),
	}
	_, ts := newTestServer(t, dicts, Config{})

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || len(h.Dicts) != 2 || h.Dicts[0] != "alpha" || h.Dicts[1] != "beta" {
		t.Fatalf("healthz: %+v", h)
	}

	status, _ := postJSON(t, ts.URL+"/v1/encode", EncodeRequest{Dict: "alpha", Signal: randSignal(r, 8)})
	if status != http.StatusOK {
		t.Fatalf("encode status %d", status)
	}

	resp, err = http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	var st Statsz
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	a := st.Dicts["alpha"]
	if a.Accepted != 1 || a.Encoded != 1 || a.Batches != 1 || a.Epoch != 1 {
		t.Fatalf("alpha stats: %+v", a)
	}
	if a.BatchHist[0] != 1 {
		t.Fatalf("batch hist: %v", a.BatchHist)
	}
	if st.Dicts["beta"].Accepted != 0 {
		t.Fatalf("beta stats: %+v", st.Dicts["beta"])
	}
	if st.PoolBudget < 1 || st.BatchMax < 1 {
		t.Fatalf("config echo: %+v", st)
	}
}

func TestReloadSwapsEpoch(t *testing.T) {
	r := rng.New(9)
	d1 := unitDictionary(r, 10, 24)
	d2 := unitDictionary(r, 10, 30)
	_, ts := newTestServer(t, map[string]*mat.Dense{"d": d1}, Config{Tol: 0.05})

	var csv bytes.Buffer
	if err := matio.WriteCSV(&csv, d2); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	// The reference must see exactly what the server sees: the CSV
	// round-trip re-normalized, same as handleReload does.
	d2ref, err := matio.ReadCSV(bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatalf("read csv back: %v", err)
	}
	d2ref.NormalizeColumns()
	resp, err := http.Post(ts.URL+"/v1/reloadz?dict=d&format=csv", "text/csv", &csv)
	if err != nil {
		t.Fatalf("reloadz: %v", err)
	}
	var rl ReloadResponse
	err = json.NewDecoder(resp.Body).Decode(&rl)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode reload: %v", err)
	}
	if rl.Epoch != 2 || rl.Rows != 10 || rl.Cols != 30 {
		t.Fatalf("reload: %+v", rl)
	}

	// Post-swap responses carry the new epoch and the new dictionary's codes.
	ref := omp.NewBatchCoder(d2ref)
	sig := randSignal(r, 10)
	want := ref.Encode(sig, 0.05, 0, &omp.Workspace{})
	status, body := postJSON(t, ts.URL+"/v1/encode", EncodeRequest{Signal: sig})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var got EncodeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Epoch != 2 {
		t.Fatalf("epoch: got %d want 2", got.Epoch)
	}
	sameResult(t, got, want)

	// A mismatched shape is rejected and the epoch stays put.
	bad := unitDictionary(r, 4, 6)
	var badCSV bytes.Buffer
	if err := matio.WriteCSV(&badCSV, bad); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	resp, err = http.Post(ts.URL+"/v1/reloadz?dict=d&format=csv", "text/csv", &badCSV)
	if err != nil {
		t.Fatalf("reloadz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shape: status %d want 400", resp.StatusCode)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	r := rng.New(13)
	d := unitDictionary(r, 8, 16)
	srv, err := New(map[string]*mat.Dense{"d": d}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent

	sh := srv.shards["d"]
	req := &request{kind: kindEncode, signal: randSignal(r, 8), done: make(chan struct{})}
	if _, err := sh.submit(req); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if sh.stats.rejected.Load() != 1 {
		t.Fatalf("rejected counter: %d", sh.stats.rejected.Load())
	}
}

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	d := unitDictionary(r, 4, 8)
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New with no dictionaries should fail")
	}
	if _, err := New(map[string]*mat.Dense{"": d}, Config{}); err == nil {
		t.Fatal("New with empty name should fail")
	}
	if _, err := New(map[string]*mat.Dense{"d": nil}, Config{}); err == nil {
		t.Fatal("New with nil dictionary should fail")
	}
}

func TestModeledLatencyPureAndMonotone(t *testing.T) {
	// One core, so the critical path grows with every queued column and the
	// prediction is strictly monotone in depth.
	plat := cluster.NewPlatform(1, 1)
	prev := 0.0
	for queued := 1; queued <= 128; queued *= 2 {
		a := ModeledLatency(64, 256, queued, 32, 0, plat)
		b := ModeledLatency(64, 256, queued, 32, 0, plat)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("queued=%d: not reproducible: %v vs %v", queued, a, b)
		}
		if a <= prev {
			t.Fatalf("queued=%d: modeled latency %v not increasing past %v", queued, a, prev)
		}
		prev = a
	}
}

func TestLatencyBudgetSheds(t *testing.T) {
	r := rng.New(21)
	d := unitDictionary(r, 32, 64)
	srv, err := New(map[string]*mat.Dense{"d": d}, Config{
		LatencyBudget: time.Nanosecond, // below any modeled batch cost
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	sh := srv.shards["d"]
	req := &request{kind: kindEncode, signal: randSignal(r, 32), done: make(chan struct{})}
	modeled, err := sh.submit(req)
	if err != ErrShedLatency {
		t.Fatalf("submit: %v, want ErrShedLatency", err)
	}
	if modeled <= 0 {
		t.Fatalf("modeled latency %v, want > 0", modeled)
	}
	if sh.stats.shedLatency.Load() != 1 {
		t.Fatalf("shedLatency counter: %d", sh.stats.shedLatency.Load())
	}
}

func TestStartServesAndCloses(t *testing.T) {
	r := rng.New(17)
	d := unitDictionary(r, 8, 16)
	srv, err := New(map[string]*mat.Dense{"d": d}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := Start("127.0.0.1:0", srv)
	if err != nil {
		srv.Close()
		t.Fatalf("Start: %v", err)
	}
	base := fmt.Sprintf("http://%s", h.Addr())
	status, body := postJSON(t, base+"/v1/encode", EncodeRequest{Signal: randSignal(r, 8)})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("healthz after Close should fail to connect")
	}
}
