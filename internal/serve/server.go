// Package serve is ExtDict-as-a-service: a long-running HTTP server that
// holds hot dictionaries in memory as epoch-swapped immutable snapshots and
// answers encode/denoise traffic from many concurrent clients.
//
// The core trick is request coalescing: each dictionary shard runs one
// batcher goroutine that accumulates queued requests up to a batching
// window or a panel-size cap and codes them in a single omp.BatchCoder pass
// — the server queue becomes the batch dimension, so the blocked
// ParATA/ParMulVec kernels amortize across users exactly as they amortize
// across columns in a batch run. Admission is the paper's performance model
// turned live scheduler: every submit prices the queue with the Eq. 2
// encode prediction (perf.PredictEncodeBatch) and sheds with 429 when the
// modeled completion latency exceeds the configured budget.
//
// Concurrency shape (machine-checked by extdict-lint's sharedstate /
// lockorder analyzers): snapshots are immutable and published through an
// atomic pointer, so the encode path takes no lock; requests transfer
// ownership over a bounded channel; the only mutex on the request path
// guards the closed-vs-send race during drain. Wall time never enters the
// package — the batching window comes from an injected Clock, keeping the
// noclock invariant and making batch composition test-controllable.
package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"extdict/internal/cluster"
	"extdict/internal/mat"
)

// Config tunes the serving layer. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// BatchWindow is the maximum time the batcher waits to coalesce a
	// panel after its first request arrives (default 2ms).
	BatchWindow time.Duration
	// BatchMax caps the columns per coded panel (default 32).
	BatchMax int
	// QueueCap bounds each shard's queued-request count; submits beyond it
	// shed with 429 (default 256).
	QueueCap int
	// LatencyBudget sheds requests whose modeled completion latency
	// (ModeledLatency at the current queue depth) exceeds it. Zero
	// disables latency shedding; the queue cap still bounds load.
	LatencyBudget time.Duration
	// Tol is the OMP relative residual tolerance (default 0.1).
	Tol float64
	// MaxAtoms caps the OMP support size (0 = min(M, L)).
	MaxAtoms int
	// Workers is the panel-encode parallelism over the shared mat pool
	// (0 = mat.Workers).
	Workers int
	// Platform prices the admission model's Eq. 2 terms. The zero value
	// becomes a single node with mat.Workers cores — the process itself.
	Platform cluster.Platform
	// Clock injects the batching-window timer (nil = WallClock). Tests
	// substitute a VirtualClock to drive batch composition by hand.
	Clock Clock
}

// withDefaults returns cfg with every unset field at its default.
func (c Config) withDefaults() Config {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax < 1 {
		c.BatchMax = 32
	}
	if c.QueueCap < 1 {
		c.QueueCap = 256
	}
	if c.Tol <= 0 {
		c.Tol = 0.1
	}
	if c.Workers < 1 {
		c.Workers = mat.Workers
	}
	if c.Platform.Topology.P() < 1 {
		c.Platform = cluster.NewPlatform(1, mat.Workers)
	}
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
	return c
}

// Server serves one or more dictionaries over HTTP. Construct with New,
// mount Mux on an http.Server (or use Start), and Close to drain.
type Server struct {
	cfg    Config
	shards map[string]*shard // frozen after New
	names  []string          // sorted shard names, frozen after New
	mux    *http.ServeMux
	wg     sync.WaitGroup
}

// New builds a server holding the given dictionaries (name → M×L matrix
// with unit-norm columns; the server takes ownership — callers must not
// mutate a dictionary after handing it over) and starts one batcher
// goroutine per shard. Close releases them.
func New(dicts map[string]*mat.Dense, cfg Config) (*Server, error) {
	if len(dicts) == 0 {
		return nil, fmt.Errorf("serve: no dictionaries to serve")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		shards: make(map[string]*shard, len(dicts)),
		names:  make([]string, 0, len(dicts)),
	}
	for name := range dicts {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		d := dicts[name]
		if name == "" {
			return nil, fmt.Errorf("serve: empty dictionary name")
		}
		if d == nil || d.Rows < 1 || d.Cols < 1 {
			return nil, fmt.Errorf("serve: dictionary %q is empty", name)
		}
		s.shards[name] = newShard(name, d, &s.cfg)
	}
	s.mux = s.routes()
	for _, name := range s.names {
		sh := s.shards[name]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sh.run()
		}()
	}
	return s, nil
}

// Names returns the served dictionary names in sorted order.
func (s *Server) Names() []string { return s.names }

// shardFor resolves a request's dictionary name; an empty name selects the
// single loaded dictionary when there is exactly one.
func (s *Server) shardFor(name string) (*shard, error) {
	if name == "" {
		if len(s.names) == 1 {
			name = s.names[0]
		} else {
			return nil, fmt.Errorf("serve: request names no dictionary and %d are loaded; set \"dict\"", len(s.names))
		}
	}
	sh, ok := s.shards[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown dictionary %q", name)
	}
	return sh, nil
}

// Swap hot-reloads one dictionary: it precomputes the Gram structures for
// d outside any lock, then atomically publishes a new snapshot under the
// next epoch. In-flight panels finish against the snapshot they loaded;
// every response names the epoch that coded it. The server takes ownership
// of d. Returns the new epoch.
func (s *Server) Swap(name string, d *mat.Dense) (uint64, error) {
	sh, err := s.shardFor(name)
	if err != nil {
		return 0, err
	}
	return sh.swap(d)
}

// Epoch returns the currently published epoch of one dictionary.
func (s *Server) Epoch(name string) (uint64, error) {
	sh, err := s.shardFor(name)
	if err != nil {
		return 0, err
	}
	return sh.snap.Load().epoch, nil
}

// Close drains every shard and waits for the batchers to exit. Every
// request accepted before Close completes normally; submits during and
// after the drain fail with 503. Idempotent.
func (s *Server) Close() {
	for _, name := range s.names {
		s.shards[name].close()
	}
	s.wg.Wait()
}
