package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"extdict/internal/mat"
	"extdict/internal/matio"
)

// maxBodyBytes bounds request bodies: signals are M floats (a few KB), and
// reloadz matrices at paper scale stay well under this.
const maxBodyBytes = 256 << 20

// EncodeRequest is the body of POST /v1/encode and POST /v1/denoise. Dict
// may be empty when exactly one dictionary is served.
type EncodeRequest struct {
	Dict   string    `json:"dict,omitempty"`
	Signal []float64 `json:"signal"`
}

// EncodeResponse is the 200 body of POST /v1/encode: the sparse code of
// the signal against the snapshot that coded it, plus the size of the
// coalesced panel the request rode in.
type EncodeResponse struct {
	Dict   string    `json:"dict"`
	Epoch  uint64    `json:"epoch"`
	Batch  int       `json:"batch"`
	Idx    []int     `json:"idx"`
	Coef   []float64 `json:"coef"`
	Resid2 float64   `json:"resid2"`
	Iters  int       `json:"iters"`
}

// DenoiseResponse is the 200 body of POST /v1/denoise: the reconstruction
// D·γ of the signal's sparse code.
type DenoiseResponse struct {
	Dict     string    `json:"dict"`
	Epoch    uint64    `json:"epoch"`
	Batch    int       `json:"batch"`
	Denoised []float64 `json:"denoised"`
	Resid2   float64   `json:"resid2"`
	Iters    int       `json:"iters"`
}

// ErrorResponse is the body of every non-200 answer. ModeledMS carries the
// admission controller's predicted latency on 429 sheds so clients can
// back off proportionally.
type ErrorResponse struct {
	Error     string  `json:"error"`
	ModeledMS float64 `json:"modeled_ms,omitempty"`
}

// ReloadResponse is the 200 body of POST /v1/reloadz.
type ReloadResponse struct {
	Dict  string `json:"dict"`
	Epoch uint64 `json:"epoch"`
	Rows  int    `json:"rows"`
	Cols  int    `json:"cols"`
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status string   `json:"status"`
	Dicts  []string `json:"dicts"`
}

// ShardStats is one dictionary's entry in the statsz report.
type ShardStats struct {
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	Epoch          uint64  `json:"epoch"`
	Accepted       int64   `json:"accepted"`
	ShedLatency    int64   `json:"shed_latency"`
	ShedQueue      int64   `json:"shed_queue"`
	RejectedClosed int64   `json:"rejected_closed"`
	Batches        int64   `json:"batches"`
	Encoded        int64   `json:"encoded"`
	InFlight       int64   `json:"in_flight"`
	DepthPeak      int64   `json:"depth_peak"`
	BatchHist      []int64 `json:"batch_hist"` // BatchHist[b-1] = panels of b columns
}

// Statsz is the GET /v1/statsz body: per-shard serving counters plus the
// shared kernel pool's budget accounting.
type Statsz struct {
	Dicts           map[string]ShardStats `json:"dicts"`
	PoolBudget      int                   `json:"pool_budget"`
	PoolPeak        int                   `json:"pool_peak"`
	BatchWindowMS   float64               `json:"batch_window_ms"`
	BatchMax        int                   `json:"batch_max"`
	QueueCap        int                   `json:"queue_cap"`
	LatencyBudgetMS float64               `json:"latency_budget_ms"`
}

// routes builds the server's mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/encode", func(w http.ResponseWriter, r *http.Request) {
		s.handleCode(w, r, kindEncode)
	})
	mux.HandleFunc("POST /v1/denoise", func(w http.ResponseWriter, r *http.Request) {
		s.handleCode(w, r, kindDenoise)
	})
	mux.HandleFunc("POST /v1/reloadz", s.handleReload)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/statsz", s.handleStats)
	return mux
}

// Mux returns the HTTP handler serving the /v1 API.
func (s *Server) Mux() http.Handler { return s.mux }

// handleCode is the shared encode/denoise path: decode, validate, admit,
// wait for the batcher, respond.
func (s *Server) handleCode(w http.ResponseWriter, r *http.Request, kind reqKind) {
	var in EncodeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	sh, err := s.shardFor(in.Dict)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error(), 0)
		return
	}
	if len(in.Signal) != sh.rows {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("serve: signal has %d entries, dictionary %q wants %d", len(in.Signal), sh.name, sh.rows), 0)
		return
	}
	// Non-finite entries cannot arrive: JSON has no NaN/Inf tokens and the
	// decoder rejects out-of-range numbers, so decode success implies a
	// finite signal.

	req := &request{kind: kind, signal: in.Signal, done: make(chan struct{})}
	modeled, err := sh.submit(req)
	if err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error(), modeled*1e3)
		return
	}
	<-req.done

	if kind == kindDenoise {
		writeJSON(w, http.StatusOK, DenoiseResponse{
			Dict: sh.name, Epoch: req.epoch, Batch: req.batch,
			Denoised: req.denoised, Resid2: req.res.Resid2, Iters: req.res.Iters,
		})
		return
	}
	writeJSON(w, http.StatusOK, EncodeResponse{
		Dict: sh.name, Epoch: req.epoch, Batch: req.batch,
		Idx: req.res.Idx, Coef: req.res.Coef, Resid2: req.res.Resid2, Iters: req.res.Iters,
	})
}

// handleReload hot-swaps a dictionary from the request body: a CSV or EDM
// binary matrix (query parameter format=csv|edm), columns normalized
// before publication.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dict")
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var d *mat.Dense
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "csv":
		d, err = matio.ReadCSV(body)
	case "", "edm":
		d, err = matio.ReadBinary(body)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: unknown matrix format %q (want csv or edm)", format), 0)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad matrix body: "+err.Error(), 0)
		return
	}
	d.NormalizeColumns()
	epoch, err := s.Swap(name, d)
	if err != nil {
		status := http.StatusBadRequest
		if _, lookupErr := s.shardFor(name); lookupErr != nil {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Dict: name, Epoch: epoch, Rows: d.Rows, Cols: d.Cols})
}

// handleHealth reports liveness and the served dictionary names.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Dicts: s.names})
}

// handleStats renders the serving counters. Shards iterate in sorted-name
// order so the report is stable.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the statsz report from the shards' atomic counters.
func (s *Server) Stats() Statsz {
	out := Statsz{
		Dicts:           make(map[string]ShardStats, len(s.names)),
		PoolBudget:      mat.PoolBudget(),
		PoolPeak:        mat.PoolPeakWorkers(),
		BatchWindowMS:   float64(s.cfg.BatchWindow.Nanoseconds()) / 1e6,
		BatchMax:        s.cfg.BatchMax,
		QueueCap:        s.cfg.QueueCap,
		LatencyBudgetMS: float64(s.cfg.LatencyBudget.Nanoseconds()) / 1e6,
	}
	for _, name := range s.names {
		sh := s.shards[name]
		snap := sh.snap.Load()
		st := ShardStats{
			Rows:           sh.rows,
			Cols:           snap.dict.Cols,
			Epoch:          snap.epoch,
			Accepted:       sh.stats.accepted.Load(),
			ShedLatency:    sh.stats.shedLatency.Load(),
			ShedQueue:      sh.stats.shedQueue.Load(),
			RejectedClosed: sh.stats.rejected.Load(),
			Batches:        sh.stats.batches.Load(),
			Encoded:        sh.stats.encoded.Load(),
			InFlight:       sh.inflight.Load(),
			DepthPeak:      sh.stats.depthPeak.Load(),
			BatchHist:      make([]int64, len(sh.stats.hist)),
		}
		for i := range sh.stats.hist {
			st.BatchHist[i] = sh.stats.hist[i].Load()
		}
		out.Dicts[name] = st
	}
	return out
}

// writeJSON renders v with the given status. An encode error here means
// the client hung up mid-response; there is no one left to tell.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the error body; modeledMS > 0 adds the admission
// controller's latency prediction.
func writeError(w http.ResponseWriter, status int, msg string, modeledMS float64) {
	writeJSON(w, status, ErrorResponse{Error: msg, ModeledMS: modeledMS})
}
