package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"extdict/internal/cluster/clustertest"
	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/rng"
)

// TestSoakEncodeRacingSwapAndDrain is the soak test: concurrent clients
// hammer /v1/encode while the main goroutine hot-swaps the dictionary and
// finally drains the server mid-flight. Run under -race (ci.sh does), it
// proves the snapshot-swap and closed-vs-send protocols.
//
// Invariants checked:
//   - every 200 response is bit-identical to a serial encode against the
//     snapshot (epoch) that coded it — swaps never produce a torn panel;
//   - no request is dropped silently: every send resolves to 200, 429, or
//     (after drain starts) 503;
//   - the shared kernel pool never exceeds its worker budget.
func TestSoakEncodeRacingSwapAndDrain(t *testing.T) {
	const (
		clients   = 8
		perClient = 60
		swaps     = 6
	)
	r := rng.New(2024)
	dicts := []*mat.Dense{
		unitDictionary(r, 16, 40),
		unitDictionary(r, 16, 48),
		unitDictionary(r, 16, 56),
	}
	// Serial reference coder per dictionary; epoch e serves dicts[(e-1)%3].
	refs := make([]*omp.BatchCoder, len(dicts))
	for i, d := range dicts {
		refs[i] = omp.NewBatchCoder(d)
	}

	mat.ResetPoolPeak()
	srv, err := New(map[string]*mat.Dense{"d": dicts[0]}, Config{
		Tol:         0.05,
		BatchWindow: 200 * time.Microsecond,
		BatchMax:    8,
		QueueCap:    1024,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	type outcome struct {
		status    int
		epoch     uint64
		signal    []float64
		iters     int
		resid2    uint64
		idx       []int
		coefBits  []uint64
		transport error
	}
	results := make(chan outcome, clients*perClient)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		id := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cr := rng.New(9000 + uint64(id))
			for i := 0; i < perClient; i++ {
				sig := randSignal(cr, 16)
				body, err := json.Marshal(&EncodeRequest{Signal: sig})
				if err != nil {
					results <- outcome{transport: err}
					continue
				}
				resp, err := http.Post(ts.URL+"/v1/encode", "application/json", bytes.NewReader(body))
				if err != nil {
					results <- outcome{transport: err}
					continue
				}
				payload, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					results <- outcome{transport: err}
					continue
				}
				o := outcome{status: resp.StatusCode, signal: sig}
				if resp.StatusCode == http.StatusOK {
					var er EncodeResponse
					if err := json.Unmarshal(payload, &er); err != nil {
						o.transport = err
					} else {
						o.epoch = er.Epoch
						o.iters = er.Iters
						o.resid2 = math.Float64bits(er.Resid2)
						o.idx = er.Idx
						o.coefBits = make([]uint64, len(er.Coef))
						for k, v := range er.Coef {
							o.coefBits[k] = math.Float64bits(v)
						}
					}
				}
				results <- o
			}
		}()
	}

	// Race the swaps against the in-flight encodes, then drain mid-traffic.
	for s := 1; s <= swaps; s++ {
		if _, err := srv.Swap("d", dicts[s%len(dicts)].Clone()); err != nil {
			t.Fatalf("swap %d: %v", s, err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	srv.Close()

	clustertest.Watchdog(t, func() { wg.Wait() })
	close(results)

	counts := map[int]int{}
	checked := 0
	ws := &omp.Workspace{}
	for o := range results {
		if o.transport != nil {
			t.Fatalf("transport error: %v", o.transport)
		}
		counts[o.status]++
		if o.status != http.StatusOK {
			continue
		}
		if o.epoch < 1 || o.epoch > swaps+1 {
			t.Fatalf("response names epoch %d outside [1, %d]", o.epoch, swaps+1)
		}
		want := refs[(int(o.epoch)-1)%len(dicts)].Encode(o.signal, 0.05, 0, ws)
		if o.iters != want.Iters || o.resid2 != math.Float64bits(want.Resid2) || len(o.idx) != len(want.Idx) {
			t.Fatalf("epoch %d response differs from serial encode against that epoch's dictionary", o.epoch)
		}
		for k := range want.Idx {
			if o.idx[k] != want.Idx[k] || o.coefBits[k] != math.Float64bits(want.Coef[k]) {
				t.Fatalf("epoch %d coef/idx differ from serial encode", o.epoch)
			}
		}
		checked++
	}
	total := 0
	for status, n := range counts {
		if status != http.StatusOK && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status %d (%d requests): no request may fail outside 200/429/503", status, n)
		}
		total += n
	}
	if total != clients*perClient {
		t.Fatalf("accounted for %d requests, sent %d", total, clients*perClient)
	}
	if checked == 0 {
		t.Fatal("no 200s survived the soak; nothing was verified")
	}
	if peak, budget := mat.PoolPeakWorkers(), mat.PoolBudget(); peak > budget {
		t.Fatalf("pool peak %d exceeded budget %d", peak, budget)
	}
}
