package loadtest

import (
	"testing"
	"time"

	"extdict/internal/cluster/clustertest"
	"extdict/internal/mat"
	"extdict/internal/rng"
	"extdict/internal/serve"
)

// unitDictionary returns an M×L dictionary with unit-norm random columns.
func unitDictionary(r *rng.RNG, m, l int) *mat.Dense {
	d := mat.NewDense(m, l)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	d.NormalizeColumns()
	return d
}

// TestLoadAgainstLiveServer runs the full harness against a real listener:
// 8 concurrent clients, seeded streams, every response checked bit for bit.
func TestLoadAgainstLiveServer(t *testing.T) {
	d := unitDictionary(rng.New(42), 24, 64)
	srv, err := serve.New(map[string]*mat.Dense{"d": d.Clone()}, serve.Config{
		Tol:         0.05,
		BatchWindow: 500 * time.Microsecond,
		BatchMax:    16,
		QueueCap:    1024,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	h, err := serve.Start("127.0.0.1:0", srv)
	if err != nil {
		srv.Close()
		t.Fatalf("serve.Start: %v", err)
	}

	var res Result
	clustertest.Watchdog(t, func() {
		res, err = Run(Config{
			BaseURL:      "http://" + h.Addr(),
			Dict:         d,
			Clients:      8,
			Requests:     40,
			Seed:         7,
			DenoiseEvery: 10,
			Tol:          0.05,
		})
	})
	if cerr := h.Close(); cerr != nil {
		t.Fatalf("close: %v", cerr)
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if res.Sent != 8*40 {
		t.Fatalf("sent %d, want %d", res.Sent, 8*40)
	}
	if res.OK != res.Sent || res.Shed != 0 || res.Failed != 0 {
		t.Fatalf("uncapped run should succeed everywhere: %+v", res)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d responses differed from the serial reference", res.Mismatches)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.MaxMS < res.P99MS {
		t.Fatalf("latency ordering broken: %+v", res)
	}
	if res.MaxBatch < 1 || res.MaxBatch > 16 {
		t.Fatalf("max batch %d outside [1, 16]", res.MaxBatch)
	}
	var coded int64
	for b1, n := range res.BatchHist {
		coded += int64(b1+1) * n
	}
	if coded != int64(res.OK) {
		t.Fatalf("batch histogram codes %d signals, want %d", coded, res.OK)
	}
	if res.MeanBatch < 1 || res.MeanBatch > 16 {
		t.Fatalf("mean batch %v outside [1, 16]", res.MeanBatch)
	}
}

// TestRunValidatesConfig covers the harness's own error paths.
func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("Run without a dictionary should fail")
	}
	d := unitDictionary(rng.New(1), 4, 8)
	if _, err := Run(Config{Dict: d}); err == nil {
		t.Fatal("Run without a BaseURL should fail")
	}
	if _, err := Run(Config{Dict: d, BaseURL: "http://127.0.0.1:1", Clients: 1, Requests: 1}); err == nil {
		t.Fatal("Run against a dead server should report a harness error")
	}
}
