// Package loadtest is a deterministic closed-loop load generator for the
// ExtDict serving layer. N concurrent clients replay seeded signal streams
// against a running server, and every response is checked bit for bit
// against a serial reference encode of the same signal — proving that
// request coalescing changes only throughput and latency, never a single
// coefficient. The harness reports a latency histogram (p50/p99) and the
// achieved batch-size distribution from the server's statsz counters, which
// is what the committed BENCH_PR9.json artifact captures.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"

	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/perf"
	"extdict/internal/rng"
	"extdict/internal/serve"
)

// Config describes one load-test run against a live server.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// Dict is the reference dictionary — the same matrix (bit for bit) the
	// server loaded. The harness encodes every signal serially against it
	// to get the ground-truth codes. Required.
	Dict *mat.Dense
	// Name is the dictionary name sent in requests ("" = server default).
	Name string
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Requests is the request count per client (default 50).
	Requests int
	// Seed drives the signal generator; the same seed replays the same
	// signal streams (default 1).
	Seed uint64
	// DenoiseEvery routes every k-th request per client to /v1/denoise
	// instead of /v1/encode (0 = encode only).
	DenoiseEvery int
	// Tol and MaxAtoms must match the server's OMP configuration, or the
	// reference codes will legitimately differ.
	Tol      float64
	MaxAtoms int
}

// withDefaults returns cfg with unset fields at their defaults.
func (c Config) withDefaults() Config {
	if c.Clients < 1 {
		c.Clients = 8
	}
	if c.Requests < 1 {
		c.Requests = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 0.1
	}
	return c
}

// Result summarizes a run.
type Result struct {
	// Sent counts issued requests; OK + Shed + Failed partitions them.
	Sent int
	// OK counts 200 responses (all compared against the serial reference).
	OK int
	// Shed counts 429 admission sheds.
	Shed int
	// Failed counts transport errors and unexpected statuses.
	Failed int
	// Mismatches counts 200 responses whose code differed bitwise from the
	// serial reference encode. Zero is the bit-identity property.
	Mismatches int

	// Latency percentiles over the OK responses, in milliseconds.
	P50MS, P99MS, MeanMS, MaxMS float64

	// BatchHist is the server's achieved batch-size distribution:
	// BatchHist[b-1] panels coded with exactly b columns.
	BatchHist []int64
	// MeanBatch is signals coded per panel; MaxBatch the largest panel.
	MeanBatch float64
	MaxBatch  int
}

// clientStats is one client's tally, sent back over the results channel.
type clientStats struct {
	ok, shed, failed, mismatches int
	latMS                        []float64
	err                          error
}

// Run drives the configured load against cfg.BaseURL and returns the
// aggregate. A non-nil error reports a harness failure (unreachable server,
// undecodable stats); response mismatches are data, not errors.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Dict == nil {
		return Result{}, fmt.Errorf("loadtest: Config.Dict is required")
	}
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadtest: Config.BaseURL is required")
	}

	// One independently-built coder: NewBatchCoder's Gram precompute is
	// deterministic, so its codes are bit-identical to the server's.
	ref := omp.NewBatchCoder(cfg.Dict)

	ch := make(chan clientStats, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		id := c
		go func() {
			ch <- runClient(id, cfg, ref)
		}()
	}

	res := Result{}
	var all []float64
	var harnessErr error
	for c := 0; c < cfg.Clients; c++ {
		cs := <-ch
		if cs.err != nil && harnessErr == nil {
			harnessErr = cs.err
		}
		res.OK += cs.ok
		res.Shed += cs.shed
		res.Failed += cs.failed
		res.Mismatches += cs.mismatches
		all = append(all, cs.latMS...)
	}
	res.Sent = cfg.Clients * cfg.Requests
	if harnessErr != nil {
		return res, harnessErr
	}

	sort.Float64s(all)
	if len(all) > 0 {
		res.P50MS = percentile(all, 0.50)
		res.P99MS = percentile(all, 0.99)
		res.MaxMS = all[len(all)-1]
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		res.MeanMS = sum / float64(len(all))
	}

	if err := fetchBatchStats(cfg.BaseURL, &res); err != nil {
		return res, err
	}
	return res, nil
}

// runClient replays one client's seeded signal stream: generate, reference-
// encode, then fire closed-loop requests and compare every answer.
func runClient(id int, cfg Config, ref *omp.BatchCoder) clientStats {
	// Distinct golden-ratio-spaced streams per client; replaying the same
	// (Seed, id) replays the same signals.
	r := rng.New(cfg.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
	sigs := make([][]float64, cfg.Requests)
	for i := range sigs {
		sigs[i] = sparseSignal(r, cfg.Dict)
	}

	// Reference pass, outside the timed loop. This loop is the harness's
	// hot region: the Encode calls reuse one workspace and nothing else
	// allocates per iteration.
	refs := make([]omp.Result, cfg.Requests)
	ws := &omp.Workspace{}
	for i := range sigs {
		refs[i] = ref.Encode(sigs[i], cfg.Tol, cfg.MaxAtoms, ws)
	}
	wantDenoised := make([][]float64, cfg.Requests)
	for i := range sigs {
		if cfg.DenoiseEvery > 0 && (i+1)%cfg.DenoiseEvery == 0 {
			wantDenoised[i] = reconstruct(cfg.Dict, refs[i])
		}
	}

	cs := clientStats{latMS: make([]float64, 0, cfg.Requests)}
	for i := range sigs {
		body, err := json.Marshal(&serve.EncodeRequest{Dict: cfg.Name, Signal: sigs[i]})
		if err != nil {
			cs.err = err
			return cs
		}
		path := "/v1/encode"
		if wantDenoised[i] != nil {
			path = "/v1/denoise"
		}
		sw := perf.StartWall()
		resp, err := http.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			cs.err = err
			return cs
		}
		payload, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		ms := float64(sw.Elapsed().Nanoseconds()) / 1e6
		if err != nil {
			cs.err = err
			return cs
		}
		switch resp.StatusCode {
		case http.StatusOK:
			cs.ok++
			cs.latMS = append(cs.latMS, ms)
			if !sameAnswer(payload, wantDenoised[i], refs[i]) {
				cs.mismatches++
			}
		case http.StatusTooManyRequests:
			cs.shed++
		default:
			cs.failed++
		}
	}
	return cs
}

// sparseSignal draws a signal as a 3-atom combination of dictionary columns
// plus small dense noise — the workload the coder is built for.
func sparseSignal(r *rng.RNG, d *mat.Dense) []float64 {
	sig := make([]float64, d.Rows)
	for a := 0; a < 3; a++ {
		j := r.Intn(d.Cols)
		c := 0.5 + r.Float64()
		for row := 0; row < d.Rows; row++ {
			sig[row] += c * d.At(row, j)
		}
	}
	for row := range sig {
		sig[row] += 0.01 * r.NormFloat64()
	}
	return sig
}

// sameAnswer checks a 200 payload bit for bit against the serial reference:
// every index, coefficient, residual, and iteration count must round-trip
// identically (Go's float64 JSON encoding is exact).
func sameAnswer(payload []byte, wantDenoised []float64, want omp.Result) bool {
	if wantDenoised != nil {
		var got serve.DenoiseResponse
		if err := json.Unmarshal(payload, &got); err != nil {
			return false
		}
		return got.Iters == want.Iters &&
			math.Float64bits(got.Resid2) == math.Float64bits(want.Resid2) &&
			sameFloats(got.Denoised, wantDenoised)
	}
	var got serve.EncodeResponse
	if err := json.Unmarshal(payload, &got); err != nil {
		return false
	}
	if got.Iters != want.Iters ||
		math.Float64bits(got.Resid2) != math.Float64bits(want.Resid2) {
		return false
	}
	if len(got.Idx) != len(want.Idx) {
		return false
	}
	for i := range got.Idx {
		if got.Idx[i] != want.Idx[i] {
			return false
		}
	}
	return sameFloats(got.Coef, want.Coef)
}

// sameFloats reports bitwise equality of two float slices.
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// reconstruct mirrors the server's denoise reconstruction D·γ exactly —
// same accumulation order, so the sums carry the same rounding.
func reconstruct(d *mat.Dense, r omp.Result) []float64 {
	y := make([]float64, d.Rows)
	for i, jj := range r.Idx {
		c := r.Coef[i]
		for row := 0; row < d.Rows; row++ {
			y[row] += c * d.At(row, jj)
		}
	}
	return y
}

// percentile reads the q-quantile from an ascending-sorted slice with the
// nearest-rank rule.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fetchBatchStats pulls /v1/statsz and folds the achieved batch-size
// distribution (summed across shards) into res.
func fetchBatchStats(baseURL string, res *Result) error {
	resp, err := http.Get(baseURL + "/v1/statsz")
	if err != nil {
		return err
	}
	payload, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadtest: statsz returned %d", resp.StatusCode)
	}
	var st serve.Statsz
	if err := json.Unmarshal(payload, &st); err != nil {
		return err
	}
	var batches, coded int64
	for _, sh := range st.Dicts {
		for b1, n := range sh.BatchHist {
			if n == 0 {
				continue
			}
			for len(res.BatchHist) <= b1 {
				res.BatchHist = append(res.BatchHist, 0)
			}
			res.BatchHist[b1] += n
			batches += n
			coded += int64(b1+1) * n
			if b1+1 > res.MaxBatch {
				res.MaxBatch = b1 + 1
			}
		}
	}
	if batches > 0 {
		res.MeanBatch = float64(coded) / float64(batches)
	}
	return nil
}
