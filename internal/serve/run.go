package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// Handle is a running HTTP listener bound to a Server. It exists so that
// callers outside the goroutine-allowlisted packages (cmd/extdict-serve,
// the CI smoke test) never write a `go` statement themselves: Start owns
// the accept-loop goroutine, Close joins it.
type Handle struct {
	srv  *Server
	http *http.Server
	ln   net.Listener
	done chan error
}

// Start listens on addr (":8347", "127.0.0.1:0", …) and serves srv's mux
// from a background accept loop. The caller owns both lifetimes and ends
// them with Close.
func Start(addr string, srv *Server) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Handle{
		srv:  srv,
		http: &http.Server{Handler: srv.Mux()},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		h.done <- h.http.Serve(h.ln)
	}()
	return h, nil
}

// Addr returns the bound listen address (useful with port 0).
func (h *Handle) Addr() string { return h.ln.Addr().String() }

// Server returns the underlying serve.Server.
func (h *Handle) Server() *Server { return h.srv }

// Close shuts the service down in drain order: stop accepting new
// connections and wait out in-flight handlers, then drain the batchers.
// Requests accepted before Close get coded and answered; the accept loop's
// exit is joined before return.
func (h *Handle) Close() error {
	err := h.http.Shutdown(context.Background())
	h.srv.Close()
	serveErr := <-h.done
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
