package serve

import "time"

// Clock abstracts the batching-window timer so the server never reads the
// host clock directly (the noclock invariant: wall time belongs to
// internal/cluster and internal/perf). The batcher only needs "a channel
// that fires once d has elapsed"; production uses WallClock, tests inject a
// VirtualClock and fire the windows by hand, which makes batch composition
// — and therefore the admission trace — a deterministic function of the
// driven schedule instead of the host's timer resolution.
type Clock interface {
	// After returns a channel that delivers one value once d has elapsed.
	// The returned channel is never closed and fires at most once.
	After(d time.Duration) <-chan time.Time
}

// WallClock is the production Clock: real timers from the time package
// (timer creation is not a clock read; only Now/Since/Until are barred).
type WallClock struct{}

// After returns time.After(d).
func (WallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// VirtualClock is a manually driven Clock for deterministic tests: After
// registers a pending timer and returns immediately; nothing fires until
// the test calls FireNext. Timers fire in registration order. A timer whose
// batch already filled up (the batcher abandoned the channel) fires into a
// one-slot buffer and is harmlessly dropped.
type VirtualClock struct {
	timers chan chan time.Time
}

// NewVirtualClock returns a VirtualClock with room for `pending` registered
// but unfired timers (registration past that blocks, which a test driving
// the clock should treat as a bug in its schedule).
func NewVirtualClock(pending int) *VirtualClock {
	return &VirtualClock{timers: make(chan chan time.Time, pending)}
}

// After registers a pending timer; the duration is ignored — virtual time
// advances only through FireNext.
func (c *VirtualClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.timers <- ch
	return ch
}

// FireNext fires the oldest registered timer, blocking until one has been
// registered.
func (c *VirtualClock) FireNext() {
	ch := <-c.timers
	ch <- time.Time{}
}

// TryFireNext fires the oldest registered timer if any is pending and
// reports whether one fired.
func (c *VirtualClock) TryFireNext() bool {
	select {
	case ch := <-c.timers:
		ch <- time.Time{}
		return true
	default:
		return false
	}
}
