package sparse

import "sort"

// Builder assembles a CSC matrix column by column. ExD's sparse coding emits
// one coefficient column per data column; the builder collects them in order
// without knowing the final nnz in advance.
type Builder struct {
	rows   int
	colPtr []int
	rowIdx []int
	val    []float64
}

// NewBuilder returns a builder for matrices with the given number of rows.
func NewBuilder(rows int) *Builder {
	return &Builder{rows: rows, colPtr: []int{0}}
}

// AppendColumn adds the next column with the given (index, value) pairs.
// Indices need not be sorted; they are sorted here. Duplicate indices and
// out-of-range indices panic: they indicate a bug in the encoder.
func (b *Builder) AppendColumn(idx []int, val []float64) {
	if len(idx) != len(val) {
		panic("sparse: AppendColumn length mismatch")
	}
	start := len(b.rowIdx)
	b.rowIdx = append(b.rowIdx, idx...)
	b.val = append(b.val, val...)
	seg := colSegment{b.rowIdx[start:], b.val[start:]}
	sort.Sort(seg)
	for i, r := range seg.idx {
		if r < 0 || r >= b.rows {
			panic("sparse: row index out of range")
		}
		if i > 0 && seg.idx[i-1] == r {
			panic("sparse: duplicate row index in column")
		}
	}
	b.colPtr = append(b.colPtr, len(b.rowIdx))
}

// AppendEmptyColumn adds a column with no stored entries.
func (b *Builder) AppendEmptyColumn() { b.colPtr = append(b.colPtr, len(b.rowIdx)) }

// Cols returns the number of columns appended so far.
func (b *Builder) Cols() int { return len(b.colPtr) - 1 }

// Build finalizes the matrix. The builder must not be used afterwards.
func (b *Builder) Build() *CSC {
	return &CSC{
		Rows:   b.rows,
		Cols:   len(b.colPtr) - 1,
		ColPtr: b.colPtr,
		RowIdx: b.rowIdx,
		Val:    b.val,
	}
}

type colSegment struct {
	idx []int
	val []float64
}

func (s colSegment) Len() int           { return len(s.idx) }
func (s colSegment) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s colSegment) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// FromColumns builds a CSC matrix from parallel per-column index/value
// slices, e.g. the output of a parallel sparse-coding pass where worker w
// produced columns [lo_w, hi_w).
func FromColumns(rows int, idx [][]int, val [][]float64) *CSC {
	if len(idx) != len(val) {
		panic("sparse: FromColumns length mismatch")
	}
	b := NewBuilder(rows)
	for j := range idx {
		b.AppendColumn(idx[j], val[j])
	}
	return b.Build()
}
