// Package sparse provides the compressed sparse column (CSC) and compressed
// sparse row (CSR) matrix types ExtDict uses to hold the coefficient matrix
// C produced by the ExD projection, plus the products the distributed
// computing model needs: C·x, Cᵀ·y, and per-column slicing for partitioning
// across processors.
//
// CSC is the native layout because ExD produces C column by column (one OMP
// solve per data column) and the distributed model (Algorithm 2) partitions
// C by columns.
package sparse

import (
	"fmt"
	"sort"

	"extdict/internal/mat"
)

// CSC is a sparse matrix in compressed sparse column format. Column j's
// entries are RowIdx[ColPtr[j]:ColPtr[j+1]] / Val[ColPtr[j]:ColPtr[j+1]],
// with row indices strictly increasing within each column.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Val        []float64
}

// NNZ returns the number of stored (structurally nonzero) entries.
func (m *CSC) NNZ() int { return len(m.Val) }

// ColNNZ returns the number of stored entries in column j.
func (m *CSC) ColNNZ(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// At returns element (i, j) with a binary search over column j.
func (m *CSC) At(i, j int) float64 {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	idx := sort.SearchInts(m.RowIdx[lo:hi], i) + lo
	if idx < hi && m.RowIdx[idx] == i {
		return m.Val[idx]
	}
	return 0
}

// Dense expands m into a dense matrix.
func (m *CSC) Dense() *mat.Dense {
	out := mat.NewDense(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			out.Set(m.RowIdx[p], j, m.Val[p])
		}
	}
	return out
}

// MulVec computes y = C·x, exploiting sparsity: cost is O(nnz).
// len(x) must be Cols; y must have length Rows (allocated when nil).
func (m *CSC) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	if len(y) != m.Rows {
		panic("sparse: MulVec output length mismatch")
	}
	mat.Zero(y)
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		// 4-way unrolled scatter: updates stay in column order, so the
		// result is bit-identical to the scalar loop.
		p, hi := m.ColPtr[j], m.ColPtr[j+1]
		for ; p+4 <= hi; p += 4 {
			idx := m.RowIdx[p : p+4 : p+4]
			v := m.Val[p : p+4 : p+4]
			y[idx[0]] += v[0] * xj
			y[idx[1]] += v[1] * xj
			y[idx[2]] += v[2] * xj
			y[idx[3]] += v[3] * xj
		}
		for ; p < hi; p++ {
			y[m.RowIdx[p]] += m.Val[p] * xj
		}
	}
	return y
}

// MulVecT computes y = Cᵀ·x in O(nnz). len(x) must be Rows; y must have
// length Cols (allocated when nil).
func (m *CSC) MulVecT(x, y []float64) []float64 {
	if len(x) != m.Rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Cols)
	}
	if len(y) != m.Cols {
		panic("sparse: MulVecT output length mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		// 4-accumulator gather dot: independent accumulators overlap the
		// gather latency; reassociation changes last-ulp rounding only.
		var s0, s1, s2, s3 float64
		p, hi := m.ColPtr[j], m.ColPtr[j+1]
		for ; p+4 <= hi; p += 4 {
			idx := m.RowIdx[p : p+4 : p+4]
			v := m.Val[p : p+4 : p+4]
			s0 += v[0] * x[idx[0]]
			s1 += v[1] * x[idx[1]]
			s2 += v[2] * x[idx[2]]
			s3 += v[3] * x[idx[3]]
		}
		for ; p < hi; p++ {
			s0 += m.Val[p] * x[m.RowIdx[p]]
		}
		y[j] = (s0 + s1) + (s2 + s3)
	}
	return y
}

// ColSliceRange returns the sub-matrix of columns [j0, j1) as a new CSC with
// fresh storage. Used to hand each simulated processor its column block.
func (m *CSC) ColSliceRange(j0, j1 int) *CSC {
	if j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic("sparse: ColSliceRange out of bounds")
	}
	n := j1 - j0
	nnz := m.ColPtr[j1] - m.ColPtr[j0]
	out := &CSC{
		Rows:   m.Rows,
		Cols:   n,
		ColPtr: make([]int, n+1),
		RowIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	base := m.ColPtr[j0]
	for j := 0; j <= n; j++ {
		out.ColPtr[j] = m.ColPtr[j0+j] - base
	}
	copy(out.RowIdx, m.RowIdx[base:m.ColPtr[j1]])
	copy(out.Val, m.Val[base:m.ColPtr[j1]])
	return out
}

// HStack concatenates blocks horizontally (all must share Rows). It is the
// inverse of splitting by ColSliceRange and is used by the evolving-data
// update to append new coefficient columns.
func HStack(blocks ...*CSC) *CSC {
	if len(blocks) == 0 {
		panic("sparse: HStack of nothing")
	}
	rows := blocks[0].Rows
	cols, nnz := 0, 0
	for _, b := range blocks {
		if b.Rows != rows {
			panic("sparse: HStack row mismatch")
		}
		cols += b.Cols
		nnz += b.NNZ()
	}
	out := &CSC{
		Rows:   rows,
		Cols:   cols,
		ColPtr: make([]int, 0, cols+1),
		RowIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	out.ColPtr = append(out.ColPtr, 0)
	for _, b := range blocks {
		base := len(out.Val)
		for j := 0; j < b.Cols; j++ {
			out.ColPtr = append(out.ColPtr, base+b.ColPtr[j+1])
		}
		out.RowIdx = append(out.RowIdx, b.RowIdx...)
		out.Val = append(out.Val, b.Val...)
	}
	return out
}

// PadRows returns a copy of m with extra zero rows appended so the result
// has newRows rows. Existing entries keep their row indices. This implements
// the zero-padding step of the evolving-data update (paper Fig. 3), where C
// gains rows when the dictionary gains atoms.
func (m *CSC) PadRows(newRows int) *CSC {
	if newRows < m.Rows {
		panic("sparse: PadRows cannot shrink")
	}
	out := &CSC{
		Rows:   newRows,
		Cols:   m.Cols,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowIdx: append([]int(nil), m.RowIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return out
}

// ShiftRows returns a copy of m with all row indices increased by offset and
// the row count grown to newRows. Used for the lower-right block in the
// evolving-data zero-padding layout.
func (m *CSC) ShiftRows(offset, newRows int) *CSC {
	if offset < 0 || m.Rows+offset > newRows {
		panic("sparse: ShiftRows out of bounds")
	}
	out := m.PadRows(newRows)
	for i := range out.RowIdx {
		out.RowIdx[i] += offset
	}
	return out
}

// Check validates the CSC invariants, returning a descriptive error when the
// structure is malformed. Used by tests and by the builder.
func (m *CSC) Check() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.Cols] != len(m.Val) || len(m.Val) != len(m.RowIdx) {
		return fmt.Errorf("sparse: inconsistent pointers")
	}
	for j := 0; j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("sparse: decreasing ColPtr at column %d", j)
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if m.RowIdx[p] < 0 || m.RowIdx[p] >= m.Rows {
				return fmt.Errorf("sparse: row index %d out of range in column %d", m.RowIdx[p], j)
			}
			if p > m.ColPtr[j] && m.RowIdx[p-1] >= m.RowIdx[p] {
				return fmt.Errorf("sparse: unsorted rows in column %d", j)
			}
		}
	}
	return nil
}
