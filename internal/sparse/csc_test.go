package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"extdict/internal/mat"
	"extdict/internal/rng"
)

// randomCSC builds a random sparse matrix with the given density.
func randomCSC(r *rng.RNG, rows, cols int, density float64) *CSC {
	b := NewBuilder(rows)
	for j := 0; j < cols; j++ {
		var idx []int
		var val []float64
		for i := 0; i < rows; i++ {
			if r.Float64() < density {
				idx = append(idx, i)
				val = append(val, r.NormFloat64())
			}
		}
		b.AppendColumn(idx, val)
	}
	return b.Build()
}

func TestBuilderAndCheck(t *testing.T) {
	b := NewBuilder(4)
	b.AppendColumn([]int{3, 0}, []float64{30, 0.5}) // unsorted on purpose
	b.AppendEmptyColumn()
	b.AppendColumn([]int{2}, []float64{2})
	m := b.Build()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4 || m.Cols != 3 || m.NNZ() != 3 {
		t.Fatalf("shape/nnz wrong: %+v", m)
	}
	//lint:ignore nofloateq parsed values must round-trip the literal bits unchanged
	if m.At(0, 0) != 0.5 || m.At(3, 0) != 30 || m.At(1, 0) != 0 {
		t.Fatal("At wrong")
	}
	if m.ColNNZ(1) != 0 || m.ColNNZ(2) != 1 {
		t.Fatal("ColNNZ wrong")
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate row index")
		}
	}()
	NewBuilder(3).AppendColumn([]int{1, 1}, []float64{1, 2})
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	NewBuilder(3).AppendColumn([]int{3}, []float64{1})
}

func TestDenseRoundTrip(t *testing.T) {
	r := rng.New(31)
	m := randomCSC(r, 9, 7, 0.3)
	d := m.Dense()
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			if d.At(i, j) != m.At(i, j) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		rows, cols := 2+r.Intn(20), 2+r.Intn(20)
		m := randomCSC(r, rows, cols, 0.25)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := m.MulVec(x, nil)
		want := m.Dense().MulVec(x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 7)
		rows, cols := 2+r.Intn(20), 2+r.Intn(20)
		m := randomCSC(r, rows, cols, 0.25)
		x := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := m.MulVecT(x, nil)
		want := m.Dense().MulVecT(x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestColSliceRangeAndHStack(t *testing.T) {
	r := rng.New(33)
	m := randomCSC(r, 11, 10, 0.3)
	a := m.ColSliceRange(0, 4)
	b := m.ColSliceRange(4, 4) // empty slice is legal
	c := m.ColSliceRange(4, 10)
	if b.Cols != 0 {
		t.Fatal("empty slice has columns")
	}
	re := HStack(a, b, c)
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(re.Dense(), m.Dense(), 0) {
		t.Fatal("HStack(ColSliceRange...) != original")
	}
}

func TestColSliceRangeIsACopy(t *testing.T) {
	r := rng.New(34)
	m := randomCSC(r, 5, 5, 0.9)
	s := m.ColSliceRange(1, 3)
	if s.NNZ() == 0 {
		t.Skip("degenerate draw")
	}
	s.Val[0] = 1e9
	for _, v := range m.Val {
		//lint:ignore nofloateq 1e9 is a sentinel written verbatim; detecting it requires exact match
		if v == 1e9 {
			t.Fatal("slice aliases parent storage")
		}
	}
}

func TestPadAndShiftRows(t *testing.T) {
	r := rng.New(35)
	m := randomCSC(r, 4, 3, 0.5)
	p := m.PadRows(7)
	if p.Rows != 7 || p.NNZ() != m.NNZ() {
		t.Fatal("PadRows wrong")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	s := m.ShiftRows(3, 7)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if s.At(i+3, j) != m.At(i, j) {
				t.Fatal("ShiftRows moved values incorrectly")
			}
			if s.At(i, j) != 0 && i < 3 {
				t.Fatal("ShiftRows left values in the zero band")
			}
		}
	}
}

func TestFromColumns(t *testing.T) {
	idx := [][]int{{0, 2}, {}, {1}}
	val := [][]float64{{1, 2}, {}, {3}}
	m := FromColumns(3, idx, val)
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.At(2, 0) != 2 || m.At(1, 2) != 3 || m.ColNNZ(1) != 0 {
		t.Fatal("FromColumns content wrong")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	r := rng.New(36)
	m := randomCSC(r, 6, 6, 0.5)
	if m.NNZ() < 2 {
		t.Skip("degenerate draw")
	}
	m.RowIdx[0], m.RowIdx[1] = m.RowIdx[1], m.RowIdx[0]
	// Only fails if the two entries are in the same column and now unsorted;
	// force a definite corruption instead.
	m.RowIdx[0] = -1
	if err := m.Check(); err == nil {
		t.Fatal("Check missed corruption")
	}
}

func BenchmarkMulVecSparse(b *testing.B) {
	r := rng.New(1)
	m := randomCSC(r, 512, 4096, 0.01)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y := make([]float64, m.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}
