package sparse

import (
	"math"
	"testing"
)

// decodeInts turns fuzzer bytes into small signed ints so in-range row
// indices and plausible column pointers are actually reachable, not just
// astronomically unlikely.
func decodeInts(b []byte) []int {
	out := make([]int, len(b))
	for i, v := range b {
		out[i] = int(int8(v))
	}
	return out
}

// FuzzCSCCheck decodes arbitrary bytes into a CSC skeleton and asserts the
// validator's contract: malformed structures (bad pointers, out-of-range or
// unsorted rows, negative dims) must be reported as errors, never as panics,
// and anything Check accepts must survive the full operation surface.
func FuzzCSCCheck(f *testing.F) {
	// Valid 3x2 matrix: cols {0:1, 2:-2} and {1:3}.
	f.Add(3, 2, []byte{0, 2, 3}, []byte{0, 2, 1}, []byte{1, 254, 3})
	// Valid with an empty middle column.
	f.Add(2, 3, []byte{0, 1, 1, 2}, []byte{0, 1}, []byte{5, 7})
	// Empty matrix and degenerate shapes.
	f.Add(0, 0, []byte{0}, []byte{}, []byte{})
	f.Add(0, 2, []byte{0, 0, 0}, []byte{}, []byte{})
	// Malformed: negative dims, short ColPtr, decreasing ColPtr,
	// out-of-range row, duplicate (non-increasing) rows.
	f.Add(-1, -1, []byte{}, []byte{}, []byte{})
	f.Add(3, 2, []byte{0, 1}, []byte{0}, []byte{1})
	f.Add(3, 2, []byte{0, 2, 1}, []byte{0, 1}, []byte{1, 2})
	f.Add(2, 1, []byte{0, 1}, []byte{9}, []byte{1})
	f.Add(3, 1, []byte{0, 2}, []byte{1, 1}, []byte{1, 2})
	f.Fuzz(func(t *testing.T, rows, cols int, ptr, idx, vals []byte) {
		m := &CSC{
			Rows:   rows,
			Cols:   cols,
			ColPtr: decodeInts(ptr),
			RowIdx: decodeInts(idx),
		}
		m.Val = make([]float64, len(vals))
		for i, v := range vals {
			m.Val[i] = float64(int8(v))
		}
		if err := m.Check(); err != nil {
			return // rejected cleanly; that is the contract
		}
		// Check accepted the structure: every operation must be safe.
		if m.NNZ() != len(m.Val) {
			t.Fatalf("NNZ %d != len(Val) %d", m.NNZ(), len(m.Val))
		}
		d := m.Dense()
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if d.At(i, j) != m.At(i, j) {
					t.Fatalf("Dense/At disagree at (%d,%d)", i, j)
				}
			}
		}
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = 1
		}
		y := m.MulVec(x, nil)
		_ = m.MulVecT(y, nil)
		if m.Cols > 0 {
			sub := m.ColSliceRange(0, m.Cols)
			if err := sub.Check(); err != nil {
				t.Fatalf("full ColSliceRange of valid matrix invalid: %v", err)
			}
		}
	})
}

// FuzzBuilderRoundTrip drives the incremental Builder with fuzzer-derived
// column specs — normalised to the documented contract (strictly increasing,
// in-range row indices), with empty columns whenever the spec byte says so —
// and asserts the built matrix passes Check and reads back every entry.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add(4, []byte{2, 0, 0, 3, 1})
	f.Add(1, []byte{0, 0, 0})
	f.Add(8, []byte{255, 1, 254, 0, 2})
	f.Add(0, []byte{0, 0}) // zero-row matrix: only empty columns possible
	f.Fuzz(func(t *testing.T, rows int, spec []byte) {
		if rows < 0 || rows > 64 || len(spec) > 64 {
			t.Skip("outside the shape envelope the builder documents")
		}
		b := NewBuilder(rows)
		type entry struct {
			row int
			val float64
		}
		want := make([][]entry, 0, len(spec))
		for _, s := range spec {
			n := int(s) % 4 // 0..3 entries requested for this column
			if n == 0 || rows == 0 {
				b.AppendEmptyColumn()
				want = append(want, nil)
				continue
			}
			// Derive strictly increasing in-range rows from the spec byte.
			idx := make([]int, 0, n)
			val := make([]float64, 0, n)
			var es []entry
			r := int(s) % rows
			for k := 0; k < n && r < rows; k++ {
				v := float64(int(s)+k) - 7
				idx = append(idx, r)
				val = append(val, v)
				es = append(es, entry{r, v})
				r += 1 + int(s)%3
			}
			b.AppendColumn(idx, val)
			want = append(want, es)
		}
		m := b.Build()
		if err := m.Check(); err != nil {
			t.Fatalf("built matrix fails Check: %v", err)
		}
		if m.Rows != rows || m.Cols != len(spec) {
			t.Fatalf("built %dx%d, want %dx%d", m.Rows, m.Cols, rows, len(spec))
		}
		for j, es := range want {
			if m.ColNNZ(j) != len(es) {
				t.Fatalf("column %d has %d entries, want %d", j, m.ColNNZ(j), len(es))
			}
			for _, e := range es {
				if got := m.At(e.row, j); math.Float64bits(got) != math.Float64bits(e.val) {
					t.Fatalf("At(%d,%d) = %v, want %v", e.row, j, got, e.val)
				}
			}
		}
	})
}
