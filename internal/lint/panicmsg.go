package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// PanicMsg enforces the house style for panic messages: a string literal
// passed to panic must start with "<package>: " so a stack-less crash report
// still names the subsystem that raised it. Applies everywhere except
// package main (commands return errors instead of panicking) and test files.
var PanicMsg = &Analyzer{
	Name: "panicmsg",
	Doc: `panic string literals must carry the "<package>: " prefix so ` +
		"crash output names the subsystem",
	SkipTests: true,
	Run: func(p *Pass) {
		p.EachFile(func(f *ast.File) {
			pkgName := f.Name.Name
			if pkgName == "main" {
				return
			}
			want := pkgName + ": "
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				msg := strings.Trim(lit.Value, "`\"")
				if !strings.HasPrefix(msg, want) {
					p.Reportf(lit.Pos(),
						"panic message %q does not start with %q (house style for crash attribution)", msg, want)
					// Insert the prefix right after the opening quote; the
					// prefix needs no escaping in either quote style.
					p.SuggestFix(fmt.Sprintf("insert the %q prefix", want),
						p.Edit(lit.Pos()+1, lit.Pos()+1, want))
				}
				return true
			})
		})
	},
}
