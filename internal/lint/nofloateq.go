package lint

import (
	"go/ast"
	"go/token"
)

// NoFloatEq flags == and != where one side is a floating point literal.
// Exact comparison against a float constant is almost always a rounding bug
// waiting to happen; compare with a tolerance, or suppress with a reason
// when bit-exactness is genuinely intended (e.g. determinism tests).
var NoFloatEq = &Analyzer{
	Name: "nofloateq",
	Doc: "forbid ==/!= against floating point literals; compare with a " +
		"tolerance or justify bit-exact intent",
	Run: func(p *Pass) {
		p.EachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if isFloatLit(bin.X) || isFloatLit(bin.Y) {
					p.Reportf(bin.Pos(),
						"%s against a float literal is exact comparison; use a tolerance or justify with //lint:ignore nofloateq", bin.Op)
				}
				return true
			})
		})
	},
}

func isFloatLit(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.FLOAT
}
