package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that discard an error result. An error
// dropped on the floor turns a failed solve, a truncated results file, or a
// bad platform spec into silently wrong experiment tables. The check is
// module-wide and type-resolved; without type information it stays quiet
// rather than guessing.
//
// Never-failing writers are exempt: anything in package fmt (printing to
// stdout/stderr for a CLI is conventional), and methods on bytes.Buffer and
// strings.Builder, whose errors are documented to always be nil.
var ErrCheck = &Analyzer{
	Name:      "errcheck",
	SkipTests: true,
	Doc: "a call statement whose (last) result is an error must not discard " +
		"it; handle the error or suppress with a justified //lint:ignore",
	Run: func(p *Pass) {
		info := p.Pkg.TypesInfo
		if info == nil {
			return
		}
		errType := types.Universe.Lookup("error").Type()
		p.EachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				verb := ""
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call, verb = st.Call, "deferred "
				case *ast.GoStmt:
					call, verb = st.Call, "spawned "
				}
				if call == nil || !returnsError(info, call, errType) || exemptCallee(info, call) {
					return true
				}
				p.Reportf(call.Pos(),
					"%scall discards the error returned by %s; check it or justify with //lint:ignore errcheck", verb, types.ExprString(call.Fun))
				return true
			})
		})
	},
}

// returnsError reports whether the call's result — or the last element of
// its result tuple — is the error type.
func returnsError(info *types.Info, call *ast.CallExpr, errType types.Type) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, errType)
}

// exemptCallee reports whether the callee is on the never-fails allowlist.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}
