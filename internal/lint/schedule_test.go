package lint

import (
	"encoding/json"
	"os"
	"strconv"
	"sync"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// moduleProg loads the whole module once per test binary: the program build
// (parse + type-check of every package) dominates these tests' cost.
var moduleProg struct {
	sync.Once
	prog *Program
	pkgs []*Package
	err  error
}

func loadModuleProgram(t *testing.T) (*Program, []*Package) {
	t.Helper()
	moduleProg.Do(func() {
		root, module, err := ModuleRoot(".")
		if err != nil {
			moduleProg.err = err
			return
		}
		pkgs, err := Load(root, module, []string{"./..."})
		if err != nil {
			moduleProg.err = err
			return
		}
		moduleProg.pkgs = pkgs
		moduleProg.prog = NewProgram(pkgs)
	})
	if moduleProg.err != nil {
		t.Fatal(moduleProg.err)
	}
	return moduleProg.prog, moduleProg.pkgs
}

// moduleTraces collects the static schedule of every package, sorted the
// way cmd/extdict-lint -trace emits it.
func moduleTraces(t *testing.T) []OpTrace {
	t.Helper()
	prog, pkgs := loadModuleProgram(t)
	var traces []OpTrace
	for _, pkg := range pkgs {
		traces = append(traces, Traces(prog, pkg)...)
	}
	return traces
}

// TestStaticTraceGolden pins the static collective schedule of every shipped
// rank operator to the checked-in golden file; an operator whose schedule
// drifts must update the golden deliberately.
func TestStaticTraceGolden(t *testing.T) {
	traces := moduleTraces(t)
	got, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(fixturePath("schedule.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("static schedule drifted from the golden file.\nRegenerate with:\n  go run ./cmd/extdict-lint -checks schedule -trace internal/lint/testdata/schedule.golden.json ./...\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func genMatrix(t *testing.T, m, n int, seed uint64) *mat.Dense {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: []int{3, 4}}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u.A
}

func fitTransform(t *testing.T, a *mat.Dense, l int) *exd.Transform {
	t.Helper()
	tr, err := exd.Fit(a, exd.Params{L: l, Epsilon: 0.05, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestStaticTraceMatchesRuntime executes every exported dist operator with
// runtime tracing on and checks the recorded schedule is exactly the static
// trace with its symbolic sizes bound to the instance's dimensions — the
// end-to-end proof that the abstract interpretation models the machine.
func TestStaticTraceMatchesRuntime(t *testing.T) {
	static := make(map[string]OpTrace)
	for _, tr := range moduleTraces(t) {
		static[tr.Func] = tr
	}

	newComm := func() *cluster.Comm {
		c := cluster.NewComm(cluster.NewPlatform(1, 4))
		c.EnableTrace()
		// Arm an empty fault plan: the injection hooks must be perfectly
		// transparent to the collective schedule, so the runtime trace still
		// has to match the static one word for word.
		c.InstallFaultPlan(&cluster.FaultPlan{})
		return c
	}

	cases := []struct {
		fn   string
		bind map[string]int
		run  func(t *testing.T) cluster.Stats
	}{
		{
			fn:   "DenseGram.Apply#1",
			bind: map[string]int{"m": 24},
			run: func(t *testing.T) cluster.Stats {
				a := genMatrix(t, 24, 90, 1)
				g := dist.NewDenseGram(newComm(), a)
				return g.Apply(make([]float64, 90), make([]float64, 90))
			},
		},
		{
			// Case 1 (L=20 ≤ M=30) runs the second rank literal.
			fn:   "ExDGram.Apply#2",
			bind: map[string]int{"m": 30, "l": 20},
			run: func(t *testing.T) cluster.Stats {
				a := genMatrix(t, 30, 80, 3)
				tr := fitTransform(t, a, 20)
				g, err := dist.NewExDGram(newComm(), tr.D, tr.C)
				if err != nil {
					t.Fatal(err)
				}
				return g.Apply(make([]float64, 80), make([]float64, 80))
			},
		},
		{
			// Case 2 (L=80 > M=30) runs the first rank literal.
			fn:   "ExDGram.Apply#1",
			bind: map[string]int{"m": 30, "l": 80},
			run: func(t *testing.T) cluster.Stats {
				a := genMatrix(t, 30, 120, 3)
				tr := fitTransform(t, a, 80)
				g, err := dist.NewExDGram(newComm(), tr.D, tr.C)
				if err != nil {
					t.Fatal(err)
				}
				return g.Apply(make([]float64, 120), make([]float64, 120))
			},
		},
		{
			fn:   "BatchGram.Apply#1",
			bind: map[string]int{"len(batch)": 8},
			run: func(t *testing.T) cluster.Stats {
				a := genMatrix(t, 40, 100, 12)
				g := dist.NewBatchGram(newComm(), a, 8, 99)
				return g.Apply(make([]float64, 100), make([]float64, 100))
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			want, ok := static[tc.fn]
			if !ok {
				t.Fatalf("no static trace for %s; have %v", tc.fn, static)
			}
			got := tc.run(t).Trace
			if len(got) != len(want.Ops) {
				t.Fatalf("runtime trace has %d phases, static has %d: %v vs %v", len(got), len(want.Ops), got, want.Ops)
			}
			for i, op := range want.Ops {
				rt := got[i]
				if op.Op != rt.Op {
					t.Errorf("phase %d: static %s, runtime %s", i, op.Op, rt.Op)
				}
				root, err := strconv.Atoi(op.Root)
				if err != nil {
					t.Fatalf("phase %d: static root %q is not constant", i, op.Root)
				}
				if root != rt.Root {
					t.Errorf("phase %d: static root %d, runtime %d", i, root, rt.Root)
				}
				size, ok := tc.bind[op.Size]
				if !ok {
					if size, err = strconv.Atoi(op.Size); err != nil {
						t.Fatalf("phase %d: static size %q has no binding", i, op.Size)
					}
				}
				if size != rt.Words {
					t.Errorf("phase %d: static size %s=%d, runtime %d words", i, op.Size, size, rt.Words)
				}
			}
		})
	}
}
