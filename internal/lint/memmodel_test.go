package lint

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
)

// TestMemModelSymbolicBytes closes the static/runtime loop for the memory
// model the same way TestCostModelSymbolicFlops does for flops: the
// symbolic byte terms derived from ExDGram.applyCase1 — the CSC contracts
// per rank, the dense dictionary round trip under the "r.ID == 0" guard —
// are evaluated with the instance's dimensions and must sum to exactly the
// runtime-counted TotalBytes. The analyzer proves each AddBytes claim
// equals the derived polynomial; this test proves the derived polynomials
// predict the machine's counters.
func TestMemModelSymbolicBytes(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	var fc *funcCost
	for _, c := range deriveBytes(distPkg) {
		if c.fn == "ExDGram.applyCase1" {
			c := c
			fc = &c
		}
	}
	if fc == nil {
		t.Fatal("no derived bytes for ExDGram.applyCase1")
	}

	// Same instance as dist's TestExDGramFlopAccounting: M=30, L=20, Case 1.
	const M, L, N, P = 30, 20, 80, 4
	a := genMatrix(t, M, N, 10)
	tr := fitTransform(t, a, L)
	plat := cluster.NewPlatform(1, P)
	g, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Apply(make([]float64, N), make([]float64, N))
	if st.TotalBytes == 0 {
		t.Fatal("runtime counted zero bytes; AddBytes claims missing")
	}

	// Evaluate the symbolic terms per rank; unlike the flop test the byte
	// polynomials also carry the rank's column window (ranges[][0/1]) for
	// the vector-end traffic, so bind those per rank too.
	ranges := dist.WeightedBlockRanges(N, plat.RankSpeeds())
	var total int64
	for i := 0; i < P; i++ {
		nnz := tr.C.ColSliceRange(ranges[i][0], ranges[i][1]).NNZ()
		bind := map[string]int64{
			"m": M, "l": L,
			"NNZ(blocks[])": int64(nnz),
			"ranges[][0]":   int64(ranges[i][0]),
			"ranges[][1]":   int64(ranges[i][1]),
		}
		for _, term := range fc.terms {
			if term.claim == nil || term.unsupported {
				continue
			}
			switch term.guard {
			case "":
			case "r.ID == 0":
				if i != 0 {
					continue
				}
			default:
				t.Fatalf("unexpected guard %q in applyCase1", term.guard)
			}
			// The analyzer already proves claim == derived symbolically;
			// evaluate the derived side so this test exercises the
			// derivation, not the annotation.
			pd, okD := normalize(term.derived, fc.subst)
			pc, okC := normalize(term.claim, fc.subst)
			if !okD || !okC || !equalPoly(pd, pc) {
				t.Fatalf("claim %s does not match derived %s", term.claim.render(), term.derived.render())
			}
			v, ok := evalSym(term.derived, fc.subst, bind)
			if !ok {
				t.Fatalf("cannot evaluate %s under %v", term.derived.render(), bind)
			}
			total += v
		}
	}

	// Case 1 totals: the two CSC passes per rank plus the dictionary round
	// trip on rank 0 (16-byte operand pairs over nnz and the dense block).
	var want int64
	for i := 0; i < P; i++ {
		ni := int64(ranges[i][1] - ranges[i][0])
		nnz := int64(tr.C.ColSliceRange(ranges[i][0], ranges[i][1]).NNZ())
		want += 16*nnz + 8*(2*ni+L+1) // C_i·x_i
		want += 16*nnz + 8*(L+2*ni+1) // C_iᵀ·v³
	}
	want += 16 * (M*L + M + L) // rank 0: D·v¹ then Dᵀ·v²
	if total != want {
		t.Fatalf("symbolic total %d, want %d", total, want)
	}
	if total != st.TotalBytes {
		t.Fatalf("symbolic total %d, runtime counted %d", total, st.TotalBytes)
	}
}
