package lint

import (
	"math"
	"sort"
)

// RooflineRow is one accounted kernel region of a rank function in the
// static roofline report: the derived flop and byte polynomials (the
// costmodel and memmodel sides of the same region) and the arithmetic
// intensity — flops ÷ bytes — evaluated at the reference shape.
type RooflineRow struct {
	// Func is the rank function the region belongs to ("ExDGram.applyCase1").
	Func string `json:"func"`
	// Region is the ordinal of the accounted region within the function.
	Region int `json:"region"`
	// Guard is the condition the region runs under ("" at top level).
	Guard string `json:"guard,omitempty"`
	// Flops and Bytes are the derived polynomials in the paper's variables.
	Flops string `json:"flops"`
	Bytes string `json:"bytes"`
	// Intensity is flops ÷ bytes at the reference shape, rounded to 1e-4.
	Intensity float64 `json:"intensity"`
	// Bound classifies the region against the machine balance:
	// "bandwidth" below the ridge, "compute" at or above it.
	Bound string `json:"bound"`
}

// RooflineReport is the full static roofline artifact behind
// extdict-lint -roofline: the platform ridge point, the reference shape
// the intensities are evaluated at, and one row per accounted region.
type RooflineReport struct {
	// MachineBalance is the platform ridge point in flops per byte
	// (cluster.Platform.MachineBalance of the default cost model).
	MachineBalance float64 `json:"machineBalance"`
	// Reference is the shape binding the intensities are evaluated at.
	Reference map[string]int64 `json:"reference"`
	// Kernels is sorted by function name, then region ordinal.
	Kernels []RooflineRow `json:"kernels"`
}

// RooflineReference returns the documented reference shape the roofline
// intensities are evaluated at: a mid-sized paper instance — M=512 signal
// rows, L=128 dictionary atoms, a 256-column rank window holding 8192
// stored coefficients, SGD batches of 64. The FastDict bindings are the
// canonical chain at that shape — k=4 factors (one 512×128 plus three
// 128×128) at 1024 stored entries each, so NNZ(fd) = 4096 and
// VecWords(fd) = (512+2·128+1) + 3·(3·128+1) = 1924. Intensity ratios vary
// only weakly with shape (both polynomials are dominated by the same
// leading term), so one documented point suffices to classify every kernel.
func RooflineReference() map[string]int64 {
	return map[string]int64{
		"m":             512,
		"l":             128,
		"NNZ(blocks[])": 8192,
		"ranges[][0]":   0,
		"ranges[][1]":   256,
		"len(batch)":    64,
		"NNZ(fd)":       4096,
		"VecWords(fd)":  1924,
	}
}

// Roofline derives the static roofline rows of one package: for every rank
// function it pairs the costmodel flop terms with the memmodel byte terms
// region by region (each accounted region closes with an AddFlops and an
// AddBytes claim, in that order, so the claim-bearing terms align) and
// evaluates the arithmetic intensity at the reference shape. Functions
// whose kernels stream no bytes are omitted. Bound classification is
// filled in by NewRooflineReport, which knows the platform ridge.
func Roofline(pkg *Package) []RooflineRow {
	if !inAnyPkg(pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
		return nil
	}
	if pkg.TypesInfo == nil {
		return nil
	}
	ref := RooflineReference()
	costs := deriveCosts(pkg)
	bytes := deriveBytes(pkg)
	byFn := make(map[string]funcCost, len(bytes))
	for _, b := range bytes {
		byFn[b.fn] = b
	}
	var rows []RooflineRow
	for _, fc := range costs {
		bc, ok := byFn[fc.fn]
		if !ok {
			continue
		}
		ft := claimTerms(fc.terms)
		bt := claimTerms(bc.terms)
		if len(ft) == 0 || len(ft) != len(bt) {
			continue
		}
		for i := range ft {
			row := RooflineRow{Func: fc.fn, Region: i, Guard: ft[i].guard}
			pf, okF := normalize(ft[i].derived, fc.subst)
			pb, okB := normalize(bt[i].derived, bc.subst)
			if !okF || !okB {
				continue
			}
			if len(pb) == 0 {
				continue // no kernel traffic in this region
			}
			row.Flops = pf.render()
			row.Bytes = pb.render()
			f, okF := evalSym(ft[i].derived, fc.subst, ref)
			b, okB := evalSym(bt[i].derived, bc.subst, ref)
			if !okF || !okB || b == 0 {
				continue
			}
			row.Intensity = math.Round(float64(f)/float64(b)*1e4) / 1e4
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Func != rows[j].Func {
			return rows[i].Func < rows[j].Func
		}
		return rows[i].Region < rows[j].Region
	})
	return rows
}

// claimTerms filters a term list to the checkable claim-closing regions.
func claimTerms(terms []costTerm) []costTerm {
	var out []costTerm
	for _, t := range terms {
		if t.claim != nil && !t.unsupported {
			out = append(out, t)
		}
	}
	return out
}

// NewRooflineReport assembles the report: rows sorted, each classified
// against the ridge point — bandwidth-bound strictly below it, compute-
// bound at or above.
func NewRooflineReport(balance float64, rows []RooflineRow) RooflineReport {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Func != rows[j].Func {
			return rows[i].Func < rows[j].Func
		}
		return rows[i].Region < rows[j].Region
	})
	if rows == nil {
		rows = []RooflineRow{}
	}
	for i := range rows {
		if rows[i].Intensity >= balance {
			rows[i].Bound = "compute"
		} else {
			rows[i].Bound = "bandwidth"
		}
	}
	return RooflineReport{
		MachineBalance: math.Round(balance*1e6) / 1e6,
		Reference:      RooflineReference(),
		Kernels:        rows,
	}
}
