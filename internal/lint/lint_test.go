package lint

import (
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("expected 17 analyzers, have %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is incomplete", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nonsense") != nil {
		t.Fatal("ByName should return nil for unknown checks")
	}
}

func TestMalformedDirective(t *testing.T) {
	pkg := parseFixture(t, fixturePath("directive", "malformed.go"), "extdict/internal/solver")
	findings := Run(pkg, []*Analyzer{NoFloatEq})
	var gotDirective, gotFloat bool
	for _, f := range findings {
		switch f.Check {
		case "directive":
			gotDirective = true
			if !strings.Contains(f.Message, "non-empty reason") {
				t.Errorf("directive finding message %q should demand a reason", f.Message)
			}
		case "nofloateq":
			gotFloat = true
		}
	}
	if !gotDirective {
		t.Error("reason-less directive was not reported")
	}
	if !gotFloat {
		t.Error("finding under a malformed directive must not be suppressed")
	}
}

func TestModuleRootAndLoad(t *testing.T) {
	root, module, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "extdict" {
		t.Fatalf("module = %q", module)
	}
	pkgs, err := Load(root, module, []string{"./internal/lint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "extdict/internal/lint" {
		t.Fatalf("loaded %+v", pkgs)
	}
	if len(pkgs[0].Files) < 10 {
		t.Fatalf("expected this package's files to be parsed, got %d", len(pkgs[0].Files))
	}
	// Recursive patterns skip testdata: no package may claim a fixture path.
	pkgs, err = Load(root, module, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "testdata") {
			t.Fatalf("testdata leaked into load: %s", p.ImportPath)
		}
	}
}

func TestFindingString(t *testing.T) {
	pkg := parseFixture(t, fixturePath("nofloateq", "fixture.go"), "extdict/internal/solver")
	findings := Run(pkg, []*Analyzer{NoFloatEq})
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	s := findings[0].String()
	if !strings.Contains(s, "fixture.go:") || !strings.HasSuffix(s, "(nofloateq)") {
		t.Fatalf("finding renders as %q", s)
	}
}

func TestImportName(t *testing.T) {
	pkg := parseFixture(t, fixturePath("noclock", "bad.go"), "extdict/internal/solver")
	name, ok := ImportName(pkg.Files[0], "time")
	if !ok || name != "time" {
		t.Fatalf("ImportName(time) = %q, %v", name, ok)
	}
	if _, ok := ImportName(pkg.Files[0], "math/rand"); ok {
		t.Fatal("ImportName reported an import that is not there")
	}
}
