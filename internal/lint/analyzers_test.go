package lint

import "testing"

// Each analyzer is proven to fire (and to stay quiet) on its testdata
// fixtures, run under the import path named in the fixture's package doc.

func TestNoRandFixture(t *testing.T) {
	runFixture(t, NoRand, fixturePath("norand", "bad.go"), "extdict/internal/solver")
	runFixture(t, NoRand, fixturePath("norand", "allowed.go"), "extdict/internal/rng")
}

func TestNoClockFixture(t *testing.T) {
	runFixture(t, NoClock, fixturePath("noclock", "bad.go"), "extdict/internal/solver")
	runFixture(t, NoClock, fixturePath("noclock", "allowed.go"), "extdict/internal/perf")
	// Aliased imports and uncalled references need the type-aware layer.
	runFixture(t, NoClock, fixturePath("noclock", "aliased.go"), "extdict/internal/solver")
}

func TestGoroutinesFixture(t *testing.T) {
	runFixture(t, Goroutines, fixturePath("goroutines", "bad.go"), "extdict/internal/dist")
	runFixture(t, Goroutines, fixturePath("goroutines", "allowed.go"), "extdict/internal/mat")
	// serve owns the batcher and accept-loop goroutines.
	runFixture(t, Goroutines, fixturePath("goroutines", "allowed.go"), "extdict/internal/serve")
}

func TestFlopAuditFixture(t *testing.T) {
	runFixture(t, FlopAudit, fixturePath("flopaudit", "fixture.go"), "extdict/internal/dist")
	// Outside dist/solver the same file is not audited at all.
	runFixtureExpectNone(t, FlopAudit, fixturePath("flopaudit", "fixture.go"), "extdict/internal/experiments")
	// A type alias hiding *cluster.Rank needs the typed parameter check.
	runFixture(t, FlopAudit, fixturePath("flopaudit", "alias.go"), "extdict/internal/dist")
}

func TestCollectiveFixture(t *testing.T) {
	runFixture(t, Collective, fixturePath("collective", "bad.go"), "extdict/internal/dist")
	runFixture(t, Collective, fixturePath("collective", "allowed.go"), "extdict/internal/dist")
	runFixture(t, Collective, fixturePath("collective", "interproc.go"), "extdict/internal/dist")
}

func TestScheduleFixture(t *testing.T) {
	runFixture(t, Schedule, fixturePath("schedule", "fixture.go"), "extdict/internal/dist")
	// Outside dist/solver no schedule is demanded.
	runFixtureExpectNone(t, Schedule, fixturePath("schedule", "fixture.go"), "extdict/internal/experiments")
}

func TestCostModelFixture(t *testing.T) {
	runFixture(t, CostModel, fixturePath("costmodel", "fixture.go"), "extdict/internal/dist")
	// Outside dist/solver the accounting is not audited.
	runFixtureExpectNone(t, CostModel, fixturePath("costmodel", "fixture.go"), "extdict/internal/experiments")
}

func TestCostModelKernelContractsFixture(t *testing.T) {
	runFixture(t, CostModel, fixturePath("costmodel", "kernels.go"), "extdict/internal/dist")
	runFixtureExpectNone(t, CostModel, fixturePath("costmodel", "kernels.go"), "extdict/internal/experiments")
}

func TestMemModelFixture(t *testing.T) {
	runFixture(t, MemModel, fixturePath("memmodel", "fixture.go"), "extdict/internal/dist")
	// Outside dist/solver the accounting is not audited.
	runFixtureExpectNone(t, MemModel, fixturePath("memmodel", "fixture.go"), "extdict/internal/experiments")
}

func TestAllocModelFixture(t *testing.T) {
	runFixture(t, AllocModel, fixturePath("allocmodel", "fixture.go"), "extdict/internal/dist")
	// Out of scope: the capacity model audits dist and solver only.
	runFixtureExpectNone(t, AllocModel, fixturePath("allocmodel", "fixture.go"), "extdict/internal/experiments")
}

func TestMemModelKernelContractsFixture(t *testing.T) {
	runFixture(t, MemModel, fixturePath("memmodel", "kernels.go"), "extdict/internal/dist")
	runFixtureExpectNone(t, MemModel, fixturePath("memmodel", "kernels.go"), "extdict/internal/experiments")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, fixturePath("hotalloc", "bad.go"), "extdict/internal/solver")
	// Outside dist/solver/omp the check does not apply.
	runFixtureExpectNone(t, HotAlloc, fixturePath("hotalloc", "bad.go"), "extdict/internal/experiments")
}

func TestHotAllocOmpFixture(t *testing.T) {
	runFixture(t, HotAlloc, fixturePath("hotalloc", "omp.go"), "extdict/internal/omp")
	runFixtureExpectNone(t, HotAlloc, fixturePath("hotalloc", "omp.go"), "extdict/internal/experiments")
}

func TestErrCheckFixture(t *testing.T) {
	runFixture(t, ErrCheck, fixturePath("errcheck", "fixture.go"), "extdict/internal/experiments")
}

func TestPanicMsgFixture(t *testing.T) {
	runFixture(t, PanicMsg, fixturePath("panicmsg", "fixture.go"), "extdict/internal/imgproc")
}

func TestNoFloatEqFixture(t *testing.T) {
	runFixture(t, NoFloatEq, fixturePath("nofloateq", "fixture.go"), "extdict/internal/solver")
}

func TestExportedDocFixture(t *testing.T) {
	runFixture(t, ExportedDoc, fixturePath("exporteddoc", "fixture.go"), "extdict/internal/fixture")
	// Outside internal/ the check does not apply.
	runFixtureExpectNone(t, ExportedDoc, fixturePath("exporteddoc", "fixture.go"), "extdict/cmd/fixture")
}

func TestSuppressionFixture(t *testing.T) {
	runFixture(t, NoFloatEq, fixturePath("directive", "fixture.go"), "extdict/internal/solver")
}

func TestSharedStateFixture(t *testing.T) {
	runFixture(t, SharedState, fixturePath("sharedstate", "fixture.go"), "extdict/internal/mat")
	// The serving layer's sharing shapes: snapshot pointers, request
	// hand-off with a done barrier, and the drain protocol.
	runFixture(t, SharedState, fixturePath("sharedstate", "serve.go"), "extdict/internal/serve")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, fixturePath("lockorder", "fixture.go"), "extdict/internal/mat")
}

func TestDetOrderFixture(t *testing.T) {
	runFixture(t, DetOrder, fixturePath("detorder", "fixture.go"), "extdict/internal/mat/fixture")
	// Outside the result-affecting packages the same file is not audited,
	// and the clustertest scaffolding is excluded by name.
	runFixtureExpectNone(t, DetOrder, fixturePath("detorder", "fixture.go"), "extdict/internal/solver")
	runFixtureExpectNone(t, DetOrder, fixturePath("detorder", "fixture.go"), "extdict/internal/cluster/clustertest")
}
