package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MemModel statically pins the memory-traffic accounting of internal/dist
// and internal/solver to the code: it derives a symbolic bytes-streamed
// expression for the region of a rank body preceding each r.AddBytes call —
// kernel calls through their byte contracts, loop nests as trip count ×
// inner traffic — and reports when the AddBytes argument cannot equal the
// derived expression. It is the static half of the roofline model: the
// derived polynomials are the denominators of the arithmetic-intensity
// report (extdict-lint -roofline), and the runtime Stats.TotalBytes counters
// they prove are the ground truth the golden tests compare against.
//
// The byte contracts model compulsory (streaming) traffic — every operand
// touched once per kernel pass, in float64 (8-byte) words and 8-byte sparse
// indices:
//
//	Dense MulVec/MulVecT (and Par* forms) 8·(rows·cols + rows + cols)
//	CSC MulVec                            16·nnz + 8·(2·len(x) + len(y) + 1)
//	CSC MulVecT                           16·nnz + 8·(len(x) + 2·len(y) + 1)
//	FastDict MulVec/MulVecT (and Par*)    16·NNZ + 8·VecWords
//	mat.Dot                               16·len(x)
//	mat.Axpy                              24·len(x)
//	mat.Zero                              8·len(x)
//
// (The CSC constant is the column-pointer array, 8·(cols+1) bytes, with the
// cols-side vector's length standing for cols.) Cache reuse below a whole
// kernel pass is deliberately not modeled: the contracts are the compulsory
// lower bound the roofline classifies against, and deviations — a blocked
// kernel that re-streams, a fused pass that reads less — must be argued
// with a //lint:ignore memmodel directive, not silently absorbed.
var MemModel = &Analyzer{
	Name: "memmodel",
	Doc: "every r.AddBytes argument must symbolically equal the memory-" +
		"traffic polynomial derived from the preceding kernel calls " +
		"through their byte contracts, the static denominator of the " +
		"roofline model",
	SkipTests: true,
	Run: func(p *Pass) {
		if !inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
			return
		}
		if p.Pkg.TypesInfo == nil {
			return
		}
		for _, fc := range deriveBytes(p.Pkg) {
			subst := fc.subst
			for _, term := range fc.terms {
				switch {
				case term.unsupported:
					p.Reportf(term.pos,
						"AddBytes inside a loop cannot be checked against the static memory model; hoist the accounting out of the loop")
				case term.claim != nil:
					pd, okD := normalize(term.derived, subst)
					pc, okC := normalize(term.claim, subst)
					if !okD || !okC {
						p.Reportf(term.pos,
							"cannot derive a symbolic byte count for the code preceding this AddBytes; restructure so loop bounds and kernel dimensions resolve through the operator constructor")
						continue
					}
					if !equalPoly(pd, pc) {
						p.Reportf(term.pos,
							"AddBytes claims %s but the preceding kernels stream %s bytes%s (memory-model conformance, roofline denominator)",
							pc.render(), pd.render(), guardSuffix(term.guard))
					}
				default:
					// Trailing streamed bytes with no AddBytes to absorb them.
					p.Reportf(term.pos,
						"bytes streamed here are not covered by any AddBytes call%s; the memory model under-counts this kernel", guardSuffix(term.guard))
				}
			}
		}
	},
}

// deriveBytes derives the symbolic byte terms of every rank function in the
// package — the data behind the memmodel analyzer and the static side of
// the roofline report.
func deriveBytes(pkg *Package) []funcCost {
	shapes := buildShapes(pkg)
	var out []funcCost
	eachRankFunc(pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		opType, _, _ := strings.Cut(name, ".")
		if !strings.Contains(name, ".") {
			opType = ""
		}
		bw := &byteWalk{costWalk{
			st:        newSymState(pkg, shapes),
			shapes:    shapes,
			opType:    opType,
			claimName: "AddBytes",
		}}
		bw.stmtCost = bw.stmtBytes
		bw.st.envFixpoint(body)
		terms := bw.region(body.List, "")
		out = append(out, funcCost{fn: name, terms: terms, subst: shapes.substFor(opType)})
	})
	return out
}

// byteWalk derives symbolic byte-traffic expressions over one rank body,
// reusing the costWalk region machinery with byte semantics: only kernel
// calls carry traffic; scalar arithmetic and index math stream nothing.
type byteWalk struct {
	costWalk
}

// stmtBytes derives the kernel memory traffic one statement streams.
func (c *byteWalk) stmtBytes(s ast.Stmt) symExpr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.exprBytes(s.X)
	case *ast.AssignStmt:
		total := symExpr(symConst(0))
		for _, rhs := range s.Rhs {
			total = symAdd{total, c.exprBytes(rhs)}
		}
		return total
	case *ast.IfStmt:
		total := c.exprBytes(s.Cond)
		total = symAdd{total, c.blockBytes(s.Body)}
		if s.Else != nil {
			total = symAdd{total, c.stmtBytes(s.Else)}
		}
		return total
	case *ast.ForStmt:
		trip := c.forTrip(s)
		body := c.blockBytes(s.Body)
		return c.loopFlops(trip, body)
	case *ast.RangeStmt:
		trip := c.st.symLen(s.X)
		body := c.blockBytes(s.Body)
		return c.loopFlops(trip, body)
	case *ast.BlockStmt:
		return c.blockBytes(s)
	case *ast.DeclStmt:
		total := symExpr(symConst(0))
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						total = symAdd{total, c.exprBytes(v)}
					}
				}
			}
		}
		return total
	case *ast.ReturnStmt:
		total := symExpr(symConst(0))
		for _, e := range s.Results {
			total = symAdd{total, c.exprBytes(e)}
		}
		return total
	}
	return symConst(0)
}

func (c *byteWalk) blockBytes(b *ast.BlockStmt) symExpr {
	total := symExpr(symConst(0))
	for _, s := range b.List {
		total = symAdd{total, c.stmtBytes(s)}
	}
	return total
}

// exprBytes finds kernel calls in an expression and sums their byte
// contracts; everything else streams nothing.
func (c *byteWalk) exprBytes(e ast.Expr) symExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return symAdd{c.exprBytes(e.X), c.exprBytes(e.Y)}
	case *ast.CallExpr:
		total := symExpr(symConst(0))
		if k, ok := c.kernelBytes(e); ok {
			total = k
		}
		for _, arg := range e.Args {
			total = symAdd{total, c.exprBytes(arg)}
		}
		return total
	case *ast.UnaryExpr:
		return c.exprBytes(e.X)
	case *ast.IndexExpr:
		return symAdd{c.exprBytes(e.X), c.exprBytes(e.Index)}
	case *ast.SelectorExpr:
		return c.exprBytes(e.X)
	case *ast.SliceExpr:
		return c.exprBytes(e.X)
	case *ast.StarExpr:
		return c.exprBytes(e.X)
	}
	return symConst(0)
}

// kernelBytes prices a kernel call through its byte contract (see the
// analyzer doc). The pool-parallel kernels carry the same contracts as
// their serial forms: chunking partitions the streams without changing
// their total length.
func (c *byteWalk) kernelBytes(call *ast.CallExpr) (symExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := c.st.info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "extdict/internal/mat" {
				switch sel.Sel.Name {
				case "Dot":
					if len(call.Args) == 2 {
						return c.lenBytes(call.Args[0], 16), true
					}
				case "Axpy":
					if len(call.Args) == 3 {
						return c.lenBytes(call.Args[1], 24), true
					}
				case "Zero":
					if len(call.Args) == 1 {
						return c.lenBytes(call.Args[0], 8), true
					}
				}
			}
			return nil, false
		}
	}
	var transposed bool
	switch sel.Sel.Name {
	case "MulVec", "ParMulVec":
	case "MulVecT", "ParMulVecT":
		transposed = true
	default:
		return nil, false
	}
	recvType := c.st.info.TypeOf(sel.X)
	name := c.canonRecv(sel.X)
	switch namedTypeName(recvType) {
	case "Dense":
		// The matrix streams once; the input and output vectors are one
		// rows-length and one cols-length pass between them, whichever way
		// the product runs.
		if d, ok := c.dimsOf(name); ok {
			return symMul{symConst(8),
				symAdd{symMul{d.rows, d.cols}, symAdd{d.rows, d.cols}}}, true
		}
		return symUnknown{}, true
	case "CSC":
		// Values + row indices over nnz, the column-pointer array, one pass
		// over the rows-side vector and two (gather + scatter via the
		// column walk) over the cols-side one.
		if name == "" || len(call.Args) < 2 {
			return symUnknown{}, true
		}
		x := c.st.symLen(call.Args[0])
		y := c.st.symLen(call.Args[len(call.Args)-1])
		if isUnknown(x) || isUnknown(y) {
			return symUnknown{}, true
		}
		colsSide := x // MulVec: x spans the columns
		if transposed {
			colsSide = y
		}
		vecs := symAdd{symAdd{x, y}, symAdd{colsSide, symConst(1)}}
		return symAdd{
			symMul{symConst(16), symVar("NNZ(" + name + ")")},
			symMul{symConst(8), vecs},
		}, true
	case "FastDict":
		// Factor-chain apply: each CSC hop streams 16·nnz_i + 8·(rows_i +
		// 2·cols_i + 1) bytes — identically in both directions, since the
		// cols-side vector is double-passed either way — which sums to
		// 16·NNZ(fd) + 8·VecWords(fd) with VecWords ≡ Σ (rows_i + 2·cols_i
		// + 1), the alias the constructor records from g.fd.VecWords().
		if name == "" {
			return symUnknown{}, true
		}
		return symAdd{
			symMul{symConst(16), symVar("NNZ(" + name + ")")},
			symMul{symConst(8), symVar("VecWords(" + name + ")")},
		}, true
	}
	return nil, false
}

// lenBytes prices a per-element vector kernel at mult bytes per element of
// the slice e.
func (c *byteWalk) lenBytes(e ast.Expr, mult int64) symExpr {
	l := c.st.symLen(e)
	if isUnknown(l) {
		return symUnknown{}
	}
	return symMul{symConst(mult), l}
}
