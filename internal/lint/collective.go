package lint

import (
	"go/ast"
	"go/types"
)

// collectiveNames are the Rank methods that participate in the lock-step
// collective schedule. Every rank must call the same one, in the same order,
// with a matching root and vector length — internal/cluster panics at
// runtime when they disagree (see internal/cluster/regress_test.go); this
// analyzer catches the same divergence statically.
var collectiveNames = map[string]bool{
	"Allreduce": true, "Reduce": true, "Broadcast": true, "Barrier": true,
}

// Collective is a whole-program SPMD symmetry analysis over every function
// that takes a *cluster.Rank. It tracks which values are rank-varying under
// the dep lattice of summary.go, seeded by r.ID and r.Node() (r.P() is
// uniform — every rank agrees on the world size), and separately tracks
// rank-varying vector lengths (a make sized by a tainted value, a slice
// expression with tainted bounds). It reports a collective call that is
//
//   - control-dependent on a rank-varying condition (ranks disagree on
//     whether, or which, collective runs — mismatched kind),
//   - given a rank-varying root (mismatched root),
//   - given a vector whose length is rank-varying (mismatched length), or
//   - reachable after a divergent early exit (a return/break/continue under
//     a rank-varying condition desynchronizes every later collective).
//
// The analysis is interprocedural: calls to declared functions resolve
// through the program's per-function summaries, so a collective hidden
// behind a helper, a rank-varying value returned from a call, a returned
// slice of rank-varying length, and an indirect call through a collective
// method value (op := r.Reduce; op(v, root)) are all caught. Findings
// reached through a callee carry a "(reached inside <fn>)" suffix at the
// call site. Results of calls outside the program (standard-library and
// function-value calls) are uniform-valued unless an argument is tainted,
// and length-unknown, treated uniform: a kernel like
// blk.MulVec(x[lo:hi], nil) returns a block-shaped vector whose length the
// analysis cannot see, and flagging it would drown the real findings. A
// closure that captures a rank (rather than receiving it as a parameter) is
// still not analyzed.
var Collective = &Analyzer{
	Name: "collective",
	Doc: "collectives (Allreduce/Reduce/Broadcast/Barrier) must run " +
		"symmetrically across ranks: not under a rank-varying condition, " +
		"not with a rank-varying root or vector length, not after a " +
		"divergent early exit — including divergence hidden behind helper " +
		"calls, resolved interprocedurally",
	Run: func(p *Pass) {
		info := p.Pkg.TypesInfo
		if info == nil {
			return // resolved types are the whole analysis; no fallback
		}
		p.EachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				if len(rankParams(ft, info)) == 0 {
					return true
				}
				reportCollectives(p, ft, body)
				return true // literals nested in rank functions analyze on their own
			})
		})
	},
}

// reportCollectives runs the shared SPMD walker over one rank function in
// reporting mode — parameters other than the rank are uniform, so a finding
// is an effect whose dep is inherent — and reports each violated invariant
// with the same message a direct violation gets, suffixed with the helper
// chain when the collective is reached through a call.
func reportCollectives(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	s := newSpmd(p.Pkg, func(call *ast.CallExpr) (*funcNode, *summary) {
		return p.Prog.summaryFor(p.Pkg, call)
	})
	s.analyze(ft, body)
	sortEffects(s.effects)
	for _, e := range s.effects {
		via := describeVia(e.via)
		switch {
		case e.cond.inherent:
			p.Reportf(e.pos,
				"%s is control-dependent on a rank-varying condition%s; ranks may disagree on which collective runs (cluster panics on mismatched kind)", e.op, via)
		case e.exit.inherent:
			p.Reportf(e.pos,
				"%s follows a divergent early exit%s: a rank-varying return above means not every rank reaches this collective", e.op, via)
		}
		if e.root.inherent {
			p.Reportf(e.rootPos,
				"%s root is rank-varying%s; every rank must name the same root (cluster panics on mismatched root)", e.op, via)
		}
		if e.length.inherent {
			p.Reportf(e.lenPos,
				"%s vector length is rank-varying%s; collectives require equal lengths on every rank (cluster panics on mismatched length)", e.op, via)
		}
	}
}

// isBuiltinObj reports whether obj resolves to a predeclared builtin.
func isBuiltinObj(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}
