package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collectiveNames are the Rank methods that participate in the lock-step
// collective schedule. Every rank must call the same one, in the same order,
// with a matching root and vector length — internal/cluster panics at
// runtime when they disagree (see internal/cluster/regress_test.go); this
// analyzer catches the same divergence statically.
var collectiveNames = map[string]bool{
	"Allreduce": true, "Reduce": true, "Broadcast": true, "Barrier": true,
}

// Collective is an intra-procedural SPMD symmetry analysis over every
// function that takes a *cluster.Rank. It tracks which values are
// rank-varying under a two-point lattice {uniform ⊑ rank-varying}, seeded by
// r.ID and r.Node() (r.P() is uniform — every rank agrees on the world
// size), and separately tracks rank-varying vector lengths (a make sized by
// a tainted value, a slice expression with tainted bounds). It reports a
// collective call that is
//
//   - control-dependent on a rank-varying condition (ranks disagree on
//     whether, or which, collective runs — mismatched kind),
//   - given a rank-varying root (mismatched root),
//   - given a vector whose length is rank-varying (mismatched length), or
//   - reachable after a divergent early exit (a return/break/continue under
//     a rank-varying condition desynchronizes every later collective).
//
// Call results are treated as length-unknown, not length-tainted: a kernel
// like blk.MulVec(x[lo:hi], nil) returns a block-shaped vector whose length
// the analysis cannot see, and flagging it would drown the real findings.
// The analysis is per-function: it does not follow calls, and a closure that
// captures a rank (rather than receiving it as a parameter) is not analyzed.
var Collective = &Analyzer{
	Name: "collective",
	Doc: "collectives (Allreduce/Reduce/Broadcast/Barrier) must run " +
		"symmetrically across ranks: not under a rank-varying condition, " +
		"not with a rank-varying root or vector length, not after a " +
		"divergent early exit",
	Run: func(p *Pass) {
		info := p.Pkg.TypesInfo
		if info == nil {
			return // resolved types are the whole analysis; no fallback
		}
		p.EachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				ranks := rankParams(ft, info)
				if len(ranks) == 0 {
					return true
				}
				s := &spmdScan{p: p, info: info, rankObjs: make(map[types.Object]bool),
					tainted: make(map[types.Object]bool), lenTainted: make(map[types.Object]bool)}
				for _, r := range ranks {
					s.rankObjs[r] = true
				}
				s.taintFixpoint(body)
				s.stmtList(body.List, false)
				return true // literals nested in rank functions analyze on their own
			})
		})
	},
}

// spmdScan is one function's symmetry analysis state.
type spmdScan struct {
	p        *Pass
	info     *types.Info
	rankObjs map[types.Object]bool // the *cluster.Rank parameters

	tainted    map[types.Object]bool // variables holding rank-varying values
	lenTainted map[types.Object]bool // slices of rank-varying length

	exitDiverged bool // a rank-varying return has been passed in source order
}

// taintFixpoint propagates value- and length-taint through the body's
// assignments until the sets stop growing, so later uses see taint no matter
// where the defining statement sits.
func (s *spmdScan) taintFixpoint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						changed = s.assign(lhs, s.valueTainted(st.Rhs[i]), s.lengthTainted(st.Rhs[i])) || changed
					}
				}
				// A multi-value RHS is a call or map/type lookup: results are
				// unknown, hence uniform — nothing to record.
			case *ast.RangeStmt:
				// Ranging over a length-tainted slice (or a rank-varying
				// count) gives the key rank-varying bounds.
				if s.lengthTainted(st.X) || s.valueTainted(st.X) {
					if st.Key != nil {
						changed = s.assign(st.Key, true, false) || changed
					}
					if st.Value != nil {
						changed = s.assign(st.Value, true, false) || changed
					}
				}
			case *ast.GenDecl:
				for _, spec := range st.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						changed = s.assign(name, s.valueTainted(vs.Values[i]), s.lengthTainted(vs.Values[i])) || changed
					}
				}
			}
			return true
		})
	}
}

// assign records taint flowing into an lvalue, reporting whether a set grew.
// Compound assignment (x += tainted) flows through valueTainted on the RHS
// expression alone; the pre-existing taint of x is already in the set.
func (s *spmdScan) assign(lhs ast.Expr, val, length bool) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := s.info.Defs[id]
	if obj == nil {
		obj = s.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	changed := false
	if val && !s.tainted[obj] {
		s.tainted[obj] = true
		changed = true
	}
	if length && !s.lenTainted[obj] {
		s.lenTainted[obj] = true
		changed = true
	}
	return changed
}

// rankMethod returns the method name when call is r.<Method>(...) on a
// *cluster.Rank value, else "".
func (s *spmdScan) rankMethod(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if t := s.info.TypeOf(sel.X); t != nil && isRankPtr(t) {
		return sel.Sel.Name
	}
	return ""
}

// valueTainted reports whether e may evaluate to different values on
// different ranks.
func (s *spmdScan) valueTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.info.Uses[e]
		return obj != nil && s.tainted[obj]
	case *ast.SelectorExpr:
		// r.ID is the seed; a field of a tainted value stays tainted.
		if t := s.info.TypeOf(e.X); t != nil && isRankPtr(t) {
			return e.Sel.Name == "ID"
		}
		return s.valueTainted(e.X)
	case *ast.CallExpr:
		switch s.rankMethod(e) {
		case "Node":
			return true
		case "P", "AddFlops", "Allreduce", "Reduce", "Broadcast", "Barrier":
			return false // uniform by contract (collectives return nothing)
		}
		for _, arg := range e.Args {
			if s.valueTainted(arg) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return s.valueTainted(e.X) || s.valueTainted(e.Y)
	case *ast.UnaryExpr:
		return s.valueTainted(e.X)
	case *ast.ParenExpr:
		return s.valueTainted(e.X)
	case *ast.IndexExpr:
		return s.valueTainted(e.X) || s.valueTainted(e.Index)
	case *ast.SliceExpr:
		// A rank-local window into a shared vector holds rank-varying values.
		if s.valueTainted(e.X) {
			return true
		}
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil && s.valueTainted(b) {
				return true
			}
		}
		return false
	case *ast.StarExpr:
		return s.valueTainted(e.X)
	}
	return false
}

// lengthTainted reports whether the slice e may have different lengths on
// different ranks. Call results are length-unknown and treated as uniform.
func (s *spmdScan) lengthTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.info.Uses[e]
		return obj != nil && s.lenTainted[obj]
	case *ast.ParenExpr:
		return s.lengthTainted(e.X)
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil && s.valueTainted(b) {
				return true
			}
		}
		return s.lengthTainted(e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && isBuiltinObj(s.info.Uses[id]) {
			switch id.Name {
			case "make":
				return len(e.Args) >= 2 && s.valueTainted(e.Args[1])
			case "append":
				return len(e.Args) > 0 && s.lengthTainted(e.Args[0])
			}
		}
		return false
	}
	return false
}

// isBuiltinObj reports whether obj resolves to a predeclared builtin.
func isBuiltinObj(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// stmtList walks statements in source order. divergent means control already
// depends on a rank-varying condition; s.exitDiverged persists across the
// walk once a rank-varying return has been seen.
func (s *spmdScan) stmtList(list []ast.Stmt, divergent bool) {
	for _, st := range list {
		s.stmt(st, divergent)
	}
}

func (s *spmdScan) stmt(st ast.Stmt, divergent bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.stmtList(st.List, divergent)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, divergent)
		}
		s.checkExpr(st.Cond, divergent)
		branchDiv := divergent || s.valueTainted(st.Cond)
		s.stmt(st.Body, branchDiv)
		if st.Else != nil {
			s.stmt(st.Else, branchDiv)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, divergent)
		}
		loopDiv := divergent
		if st.Cond != nil {
			s.checkExpr(st.Cond, divergent)
			loopDiv = loopDiv || s.valueTainted(st.Cond)
		}
		// A break/continue under a rank-varying condition desynchronizes the
		// whole loop: iteration counts differ, so every collective inside —
		// even before the branch statement — can mismatch.
		loopDiv = loopDiv || s.loopExitDiverges(st.Body)
		s.stmt(st.Body, loopDiv)
		if st.Post != nil {
			s.stmt(st.Post, loopDiv)
		}
	case *ast.RangeStmt:
		s.checkExpr(st.X, divergent)
		loopDiv := divergent || s.lengthTainted(st.X) || s.valueTainted(st.X) || s.loopExitDiverges(st.Body)
		s.stmt(st.Body, loopDiv)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, divergent)
		}
		caseDiv := divergent
		if st.Tag != nil {
			s.checkExpr(st.Tag, divergent)
			caseDiv = caseDiv || s.valueTainted(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			d := caseDiv
			for _, e := range cc.List {
				if s.valueTainted(e) {
					d = true
				}
			}
			s.stmtList(cc.Body, d)
		}
	case *ast.TypeSwitchStmt:
		s.stmt(st.Body, divergent)
	case *ast.SelectStmt:
		s.stmt(st.Body, divergent)
	case *ast.CommClause:
		s.stmtList(st.Body, divergent)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e, divergent)
		}
		if divergent {
			s.exitDiverged = true
		}
	case *ast.BranchStmt:
		// break/continue divergence is handled by loopExitDiverges; a goto
		// under a tainted condition is treated like a return.
		if divergent && st.Tok == token.GOTO {
			s.exitDiverged = true
		}
	case *ast.ExprStmt:
		s.checkExpr(st.X, divergent)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.checkExpr(e, divergent)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.checkExpr(v, divergent)
					}
				}
			}
		}
	case *ast.DeferStmt:
		s.checkExpr(st.Call, divergent)
	case *ast.GoStmt:
		s.checkExpr(st.Call, divergent)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, divergent)
	case *ast.SendStmt:
		s.checkExpr(st.Value, divergent)
	}
}

// loopExitDiverges pre-scans a loop body for a break or continue under a
// rank-varying condition, without descending into nested loops (their
// break/continue bind to themselves) or function literals.
func (s *spmdScan) loopExitDiverges(body *ast.BlockStmt) bool {
	var walk func(st ast.Stmt, tainted bool) bool
	walkList := func(list []ast.Stmt, tainted bool) bool {
		for _, st := range list {
			if walk(st, tainted) {
				return true
			}
		}
		return false
	}
	walk = func(st ast.Stmt, tainted bool) bool {
		switch st := st.(type) {
		case *ast.BranchStmt:
			return tainted && (st.Tok == token.BREAK || st.Tok == token.CONTINUE)
		case *ast.BlockStmt:
			return walkList(st.List, tainted)
		case *ast.IfStmt:
			t := tainted || s.valueTainted(st.Cond)
			if walk(st.Body, t) {
				return true
			}
			return st.Else != nil && walk(st.Else, t)
		case *ast.SwitchStmt:
			t := tainted || (st.Tag != nil && s.valueTainted(st.Tag))
			for _, c := range st.Body.List {
				cc := c.(*ast.CaseClause)
				d := t
				for _, e := range cc.List {
					if s.valueTainted(e) {
						d = true
					}
				}
				// break inside a switch binds to the switch, not the loop.
				for _, inner := range cc.Body {
					if bs, ok := inner.(*ast.BranchStmt); ok && bs.Tok == token.BREAK && bs.Label == nil {
						continue
					} else if walk(inner, d) {
						return true
					}
				}
			}
			return false
		case *ast.LabeledStmt:
			return walk(st.Stmt, tainted)
		}
		return false
	}
	return walkList(body.List, false)
}

// checkExpr descends into an expression reporting every collective call it
// contains, given the control context it executes under.
func (s *spmdScan) checkExpr(e ast.Expr, divergent bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed on its own if it takes a rank
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := s.rankMethod(call)
		if !collectiveNames[name] {
			return true
		}
		switch {
		case divergent:
			s.p.Reportf(call.Pos(),
				"%s is control-dependent on a rank-varying condition; ranks may disagree on which collective runs (cluster panics on mismatched kind)", name)
		case s.exitDiverged:
			s.p.Reportf(call.Pos(),
				"%s follows a divergent early exit: a rank-varying return above means not every rank reaches this collective", name)
		}
		if name == "Reduce" || name == "Broadcast" {
			if len(call.Args) == 2 && s.valueTainted(call.Args[1]) {
				s.p.Reportf(call.Args[1].Pos(),
					"%s root is rank-varying; every rank must name the same root (cluster panics on mismatched root)", name)
			}
		}
		if name != "Barrier" && len(call.Args) >= 1 && s.lengthTainted(call.Args[0]) {
			s.p.Reportf(call.Args[0].Pos(),
				"%s vector length is rank-varying; collectives require equal lengths on every rank (cluster panics on mismatched length)", name)
		}
		return true
	})
}
