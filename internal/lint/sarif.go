package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Minimal SARIF 2.1.0 document shapes — only the fields CI viewers
// (GitHub code scanning, VS Code SARIF viewer) require.
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 run, one rule per analyzer,
// with file URIs relative to the module root so the report is portable
// across checkouts.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "extdict-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
