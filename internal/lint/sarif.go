package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Minimal SARIF 2.1.0 document shapes — only the fields CI viewers
// (GitHub code scanning, VS Code SARIF viewer) require.
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
	HelpURI          string       `json:"helpUri"`
}

// designHeadings maps each analyzer to its DESIGN.md section heading. The
// rule's helpUri is the GitHub anchor of that heading, so a SARIF viewer
// jumps straight to the invariant's rationale. TestSARIFHelpAnchors pins
// every entry against the actual document, so a renamed section (or a new
// analyzer without one) breaks loudly.
var designHeadings = map[string]string{
	"norand":      "`norand` — randomness determinism",
	"noclock":     "`noclock` — wall-clock confinement",
	"goroutines":  "`goroutines` — concurrency ownership",
	"flopaudit":   "`flopaudit` — exact flop accounting",
	"collective":  "`collective` — static SPMD symmetry",
	"schedule":    "`schedule` — static collective traces vs the runtime",
	"costmodel":   "`costmodel` — static cost-model conformance (Eqs. 2–4)",
	"memmodel":    "`memmodel` — static memory-model conformance",
	"allocmodel":  "`allocmodel` — static capacity-model conformance (Eq. 4)",
	"hotalloc":    "`hotalloc` — allocation-free hot paths",
	"errcheck":    "`errcheck` — no discarded errors",
	"panicmsg":    "`panicmsg` — crash attribution",
	"nofloateq":   "`nofloateq` — tolerance discipline",
	"exporteddoc": "`exporteddoc` — documented internal API surface",
	"sharedstate": "`sharedstate` — shared-state capture safety",
	"lockorder":   "`lockorder` — lock acquisition order and discipline",
	"detorder":    "`detorder` — whole-program determinism order",
}

// designHelpURI resolves an analyzer name to its DESIGN.md anchor; analyzers
// without a pinned heading link to the document head.
func designHelpURI(name string) string {
	h, ok := designHeadings[name]
	if !ok {
		return "DESIGN.md"
	}
	return "DESIGN.md#" + githubSlug(h)
}

// githubSlug renders a heading the way GitHub's anchor generator does:
// lowercased, spaces to hyphens, everything else but letters, digits, and
// hyphens dropped (backticks, em-dashes, parentheses, periods).
func githubSlug(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || ('a' <= r && r <= 'z') || ('0' <= r && r <= '9'):
			b.WriteRune(r)
		}
	}
	return b.String()
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 run, one rule per analyzer,
// with file URIs relative to the module root so the report is portable
// across checkouts.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		short := a.Doc
		if i := strings.Index(short, ";"); i >= 0 {
			short = short[:i] // the invariant alone; the fix hint stays in fullDescription
		}
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: short},
			FullDescription:  sarifMessage{Text: a.Doc},
			HelpURI:          designHelpURI(a.Name),
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "extdict-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
