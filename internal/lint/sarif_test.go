package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFHelpAnchors proves every analyzer's helpUri resolves: each has a
// pinned DESIGN.md heading, and that heading (by GitHub anchor slug) exists
// in the document. Renaming a section or adding an analyzer without
// documenting it fails here, not in a CI viewer's 404.
func TestSARIFHelpAnchors(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	docSlugs := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "### "); ok {
			docSlugs[githubSlug(rest)] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		heading, ok := designHeadings[a.Name]
		if !ok {
			t.Errorf("analyzer %q has no DESIGN.md heading pinned in designHeadings", a.Name)
			continue
		}
		if slug := githubSlug(heading); !docSlugs[slug] {
			t.Errorf("analyzer %q: DESIGN.md has no section with anchor %q", a.Name, slug)
		}
	}
}

// TestWriteSARIFRules checks the rendered rule metadata: one rule per
// analyzer carrying a non-empty shortDescription (the invariant alone), the
// full Doc as fullDescription, and a DESIGN.md helpUri.
func TestWriteSARIFRules(t *testing.T) {
	finding := Finding{
		Check:   "memmodel",
		Message: "AddBytes claims 8 but the preceding kernels stream 16 bytes",
		Pos:     token.Position{Filename: "/mod/internal/dist/dist.go", Line: 3, Column: 2},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", All(), []Finding{finding}); err != nil {
		t.Fatal(err)
	}
	var doc sarifDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	rules := doc.Runs[0].Tool.Driver.Rules
	if len(rules) != len(All()) {
		t.Fatalf("got %d rules, want one per analyzer (%d)", len(rules), len(All()))
	}
	for i, r := range rules {
		a := All()[i]
		if r.ID != a.Name {
			t.Errorf("rule %d: id %q, want %q", i, r.ID, a.Name)
		}
		if r.ShortDescription.Text == "" || strings.Contains(r.ShortDescription.Text, ";") {
			t.Errorf("rule %q: shortDescription %q should be the invariant clause alone", r.ID, r.ShortDescription.Text)
		}
		if r.FullDescription.Text != a.Doc {
			t.Errorf("rule %q: fullDescription does not carry the full Doc", r.ID)
		}
		if !strings.HasPrefix(r.HelpURI, "DESIGN.md#") {
			t.Errorf("rule %q: helpUri %q does not point into DESIGN.md", r.ID, r.HelpURI)
		}
	}
	if got := doc.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/dist/dist.go" {
		t.Errorf("result uri %q, want module-relative path", got)
	}
}
