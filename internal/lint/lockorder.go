package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module's static lock-acquisition graph — an edge
// A→B whenever B is acquired (directly or through a callee, via the
// summary lattice) while A is held — and enforces four disciplines: no
// cycles in the graph (the classic deadlock shape), no lock acquired by
// pool-submitted work while the submitter already holds it (trySubmit's
// inline fallback would run the body on the submitting goroutine's stack
// and self-deadlock), no function returning with a lock still held, and no
// loop iteration that changes the held lockset (an imbalance that
// compounds per iteration).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must form a cycle-free order, pair Lock/Unlock on every path, and never overlap pool submission; " +
		"acquire locks in one global order and defer the unlock next to the lock",
	SkipTests: true,
	Run:       runLockOrder,
}

// runLockOrder reports the per-function disciplines for the pass package
// and the global cycle check once per cycle (at its deterministic
// representative edge, when that edge lives in this package).
func runLockOrder(p *Pass) {
	if p.Pkg.TypesInfo == nil {
		return
	}
	p.EachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			lockOrderFunc(p, decl)
		}
	})
	reportCycles(p)
}

// lockOrderFunc checks one function's pairing disciplines.
func lockOrderFunc(p *Pass, decl *ast.FuncDecl) {
	fnID := declFuncID(p.Pkg, decl)
	resolve := func(call *ast.CallExpr) (*funcNode, *summary) {
		return p.Prog.summaryFor(p.Pkg, call)
	}
	lf := newLockFlow(p.Pkg, fnID, resolve)
	lf.walk(decl.Body)
	for _, ex := range lf.exits {
		p.Reportf(ex.pos, "%s returns with %s still held; pair every Lock with a deferred Unlock on the same path",
			decl.Name.Name, strings.Join(displayLocks(ex.locks), ", "))
	}
	for _, lb := range lf.loopBad {
		p.Reportf(lb.pos, "loop body changes the held lockset (%s); lock and unlock symmetrically within one iteration",
			strings.Join(displayLocks(lb.locks), ", "))
	}
	checkPoolSubmissions(p, decl, fnID, resolve)
}

// checkPoolSubmissions flags locks acquired inside pool-submitted literals
// while the submitting site already holds them — the inline-fallback
// deadlock: trySubmit runs the body on the submitter's own stack when no
// worker is free, so a lock held across the submission is re-acquired
// recursively.
func checkPoolSubmissions(p *Pass, decl *ast.FuncDecl, fnID string, resolve func(*ast.CallExpr) (*funcNode, *summary)) {
	sites := launchSites(p.Prog, p.Pkg, decl.Body)
	heldAtSite := make(map[token.Pos][]string)
	lf := newLockFlow(p.Pkg, fnID, resolve)
	lf.on = func(e ast.Expr, held map[string]bool) {
		if _, seen := heldAtSite[e.Pos()]; !seen {
			heldAtSite[e.Pos()] = sortedHeld(held)
		}
	}
	lf.walk(decl.Body)
	for _, s := range sites {
		if s.kind != "pool" {
			continue
		}
		held := heldAtSite[s.pos]
		if len(held) == 0 {
			continue
		}
		acquired := literalLocks(p, fnID, s.lit, resolve)
		if both := intersectSorted(held, acquired); len(both) > 0 {
			p.Reportf(s.pos, "pool-submitted work acquires %s while the submitting site still holds it; the inline fallback in trySubmit would self-deadlock — release the lock before submitting",
				strings.Join(displayLocks(both), ", "))
		}
	}
}

// literalLocks collects the locks a literal may acquire, directly or
// through callee summaries, sorted.
func literalLocks(p *Pass, fnID string, lit *ast.FuncLit, resolve func(*ast.CallExpr) (*funcNode, *summary)) []string {
	set := make(map[string]bool)
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, delta, ok := lockCall(p.Pkg, fnID, call); ok && delta > 0 {
			set[id] = true
		} else if _, sum := resolve(call); sum != nil {
			for _, id := range sum.locks {
				set[id] = true
			}
		}
		return true
	})
	return capSorted(set, maxSummaryLocks)
}

// reportCycles finds strongly connected components of the whole-program
// lock graph and reports each once. The graph is built from every program
// package so cross-package cycles close; a cycle is reported only by the
// pass whose package owns the representative edge (the lexicographically
// smallest (from, to) pair in the cycle), so the module run prints each
// deadlock exactly once.
func reportCycles(p *Pass) {
	edges := p.Prog.lockGraphEdges()
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	for _, scc := range lockSCCs(adj) {
		in := make(map[string]bool, len(scc))
		for _, id := range scc {
			in[id] = true
		}
		// Representative edge: smallest (from, to) within the component.
		var rep *lockEdge
		for i := range edges {
			e := &edges[i]
			if !in[e.from] || !in[e.to] {
				continue
			}
			if rep == nil || e.from < rep.from || (e.from == rep.from && e.to < rep.to) {
				rep = e
			}
		}
		if rep == nil {
			continue
		}
		pos := p.Pkg.Fset.Position(rep.pos)
		owned := false
		for _, f := range p.Pkg.Files {
			if p.Pkg.Fset.Position(f.Pos()).Filename == pos.Filename {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		via := ""
		if rep.via != "" {
			via = " (acquired inside " + rep.via + ")"
		}
		p.Reportf(rep.pos, "lock-order cycle %s: %s is acquired while %s is held and the reverse order also occurs%s; acquire these locks in one global order",
			cycleName(scc), lockDisplay(rep.to), lockDisplay(rep.from), via)
	}
}

// cycleName renders a component as a stable sorted list.
func cycleName(scc []string) string {
	names := make([]string, len(scc))
	for i, id := range scc {
		names[i] = lockDisplay(id)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// lockSCCs returns the strongly connected components with at least two
// locks (a one-lock component cannot deadlock against itself: recursive
// re-acquisition surfaces as the pool-submission or exit checks instead).
// Tarjan's algorithm, iterative-free — the graphs here are tiny.
func lockSCCs(adj map[string]map[string]bool) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0

	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := make([]string, 0, len(adj[v]))
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sort.Strings(scc)
				out = append(out, scc)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
