package lint

import "testing"

// TestCallGraphResolvesDistHelpers proves the whole-program graph indexes
// dist's rank helpers under stable ids and resolves method calls to them.
func TestCallGraphResolvesDistHelpers(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	n := prog.graph.nodeByName("extdict/internal/dist", "ExDGram.applyCase1")
	if n == nil {
		t.Fatal("ExDGram.applyCase1 missing from the call graph")
	}
	if n.id != "extdict/internal/dist.(ExDGram).applyCase1" {
		t.Fatalf("unexpected id %q", n.id)
	}
	// Receiver + (r, x, y): parameters in call-site order, receiver first.
	if len(n.params) != 4 || n.params[0] == nil {
		t.Fatalf("params = %v", n.params)
	}

	apply := prog.graph.nodeByName("extdict/internal/dist", "ExDGram.Apply")
	if apply == nil {
		t.Fatal("ExDGram.Apply missing from the call graph")
	}
	callees := make(map[string]bool)
	for _, c := range apply.callees(prog.graph) {
		callees[c.name] = true
	}
	if !callees["ExDGram.applyCase1"] || !callees["ExDGram.applyCase2"] {
		t.Fatalf("Apply's resolved callees %v miss the case helpers", callees)
	}
}

// TestSummaryLattice checks the per-function summaries on the interproc
// fixture: returned rank-taint, returned lengths, parameter-deferred
// dependencies, and recorded collectives.
func TestSummaryLattice(t *testing.T) {
	pkg := parseFixture(t, fixturePath("collective", "interproc.go"), "extdict/internal/dist")
	prog := NewProgram([]*Package{pkg})

	// myRoot returns r.ID%2: inherently rank-varying.
	sum := prog.summaries["extdict/internal/dist.myRoot"]
	if sum == nil || len(sum.retVal) != 1 || !sum.retVal[0].inherent {
		t.Fatalf("myRoot summary = %+v", sum)
	}

	// localPart returns v[:r.ID+1]: the returned length is rank-varying.
	sum = prog.summaries["extdict/internal/dist.localPart"]
	if sum == nil || len(sum.retLen) != 1 || !sum.retLen[0].inherent {
		t.Fatalf("localPart summary = %+v", sum)
	}

	// scratch(n) returns make([]float64, n): length defers to the caller's
	// first value argument, varying only if the call site's does.
	sum = prog.summaries["extdict/internal/dist.scratch"]
	if sum == nil || len(sum.retLen) != 1 {
		t.Fatalf("scratch summary = %+v", sum)
	}
	if d := sum.retLen[0]; d.inherent || d.valParams != 1<<0 {
		t.Fatalf("scratch returned length = %+v, want deferred to value param 0", d)
	}

	// doReduce(r, v) records one Reduce whose length defers to param 1 and
	// whose root is uniform.
	sum = prog.summaries["extdict/internal/dist.doReduce"]
	if sum == nil || len(sum.colls) != 1 {
		t.Fatalf("doReduce summary = %+v", sum)
	}
	c := sum.colls[0]
	if c.op != "Reduce" || c.root.inherent || c.length.inherent || c.length.lenParams != 1<<1 {
		t.Fatalf("doReduce collective = %+v", c)
	}

	// level1 reaches level2's Barrier transitively.
	sum = prog.summaries["extdict/internal/dist.level1"]
	if sum == nil || len(sum.colls) != 1 || sum.colls[0].op != "Barrier" {
		t.Fatalf("level1 summary = %+v", sum)
	}
}
