package lint

import (
	"go/ast"
	"strings"
)

// NoRand forbids math/rand outside internal/rng. Every random draw in the
// system must flow through the deterministic splittable streams in
// extdict/internal/rng, or tuning runs and experiments stop being
// reproducible run-to-run — the property the paper's tables depend on.
var NoRand = &Analyzer{
	Name: "norand",
	Doc: "forbid math/rand imports outside internal/rng; randomness must " +
		"come from extdict/internal/rng so every run is reproducible",
	Run: func(p *Pass) {
		if hasPrefixPkg(p.Pkg.ImportPath, "extdict/internal/rng") {
			return
		}
		p.EachFile(func(f *ast.File) {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(),
						"import of %q outside internal/rng breaks run-to-run determinism; use extdict/internal/rng", path)
				}
			}
		})
	},
}
