package lint

import (
	"go/ast"
	"go/types"
)

// nilDstKernels are the mat kernels whose final destination argument, when
// nil, makes the kernel allocate its result. In a hot region the caller must
// pass a scratch buffer instead.
var nilDstKernels = map[string]bool{
	"MulVec": true, "MulVecT": true, "ParMulVec": true, "ParMulVecT": true,
}

// hotCallNames mark a loop body as per-iteration hot: applying an operator,
// reporting flops or bytes, or running a collective all mean the loop is the
// algorithm's inner iteration, where the paper's cost model assumes
// allocation-free steady state.
var hotCallNames = map[string]bool{
	"Apply": true, "AddFlops": true, "AddBytes": true, "AddResident": true,
	"Allreduce": true, "Reduce": true, "Broadcast": true, "Barrier": true,
}

// ompHotCallNames mark internal/omp's hot loops: the Batch-OMP selection
// loop calls the coder and the level-1 kernels once per atom, and the
// column-coding driver calls Encode once per signal. There are no ranks or
// collectives in omp, so the batch kernels themselves are the signal.
var ompHotCallNames = map[string]bool{
	"Encode": true, "gramRow": true, "Axpy": true, "Dot": true,
}

// serveHotCallNames mark internal/serve's hot loop: the batcher's panel
// loop runs once per coalesced batch of live requests, so a loop that codes
// a panel is the serving layer's steady state and must reuse its request
// and column scratch instead of allocating per batch.
var serveHotCallNames = map[string]bool{
	"Encode": true, "EncodePanel": true, "encodeBatch": true,
}

// HotAlloc flags per-iteration allocation in the hot regions of
// internal/dist, internal/solver, and internal/omp. A hot region is either
//
//   - the body of a function taking a *cluster.Rank (it runs once per rank
//     per operator application — the innermost distributed step), or
//   - the body of a for/range loop that directly contains a hot call
//     (.Apply, .AddFlops, .AddBytes, or a collective in dist/solver; the
//     batch-coding kernels .Encode, .gramRow, .Axpy, .Dot in omp; the
//     panel-coding calls .Encode, .EncodePanel, .encodeBatch in serve) —
//     "directly" meaning not through a nested loop's body, so an outer
//     driver loop whose iteration work happens only inside inner loops is
//     setup, not hot.
//
// Inside a hot region it reports make/new, append, kernel calls with a nil
// destination (they allocate their result), and — when type information is
// available — implicit interface boxing of non-constant, non-pointer
// concrete values. Allocations before the loop (setup) are never flagged:
// the fix for every finding is to hoist the buffer there, or into a scratch
// field on the owning struct. Function literals inside a hot region are not
// descended into — they are analyzed on their own if they take a rank.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	SkipTests: true,
	Doc: "forbid per-iteration allocation (make/new/append, nil-destination " +
		"kernels, interface boxing) in internal/dist, internal/solver, " +
		"internal/omp, and internal/serve hot regions; hoist buffers into " +
		"setup or struct scratch fields",
	Run: func(p *Pass) {
		hot := hotCallNames
		switch {
		case inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver"):
		case inAnyPkg(p.Pkg.ImportPath, "extdict/internal/omp"):
			hot = ompHotCallNames
		case inAnyPkg(p.Pkg.ImportPath, "extdict/internal/serve"):
			hot = serveHotCallNames
		default:
			return
		}
		p.EachFile(func(f *ast.File) {
			clusterName, _ := ImportName(f, "extdict/internal/cluster")
			h := &hotScan{p: p, info: p.Pkg.TypesInfo, clusterName: clusterName, hot: hot}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					h.walkFunc(fd.Type, fd.Body)
				}
			}
		})
	},
}

type hotScan struct {
	p           *Pass
	info        *types.Info
	clusterName string
	hot         map[string]bool // calls that mark a loop body as hot
}

// walkFunc classifies one function: a rank function is hot in its entirety;
// otherwise its loops are inspected for direct hot calls.
func (h *hotScan) walkFunc(ft *ast.FuncType, body *ast.BlockStmt) {
	if takesRank(ft, h.info, h.clusterName) {
		h.reportAllocs(body)
		return
	}
	h.findHotLoops(body)
}

// findHotLoops descends looking for hot loops and nested function literals.
func (h *hotScan) findHotLoops(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.walkFunc(n.Type, n.Body)
			return false
		case *ast.ForStmt:
			if h.directlyHot(n.Body) {
				h.reportAllocs(n.Body)
				return false // nested loops already covered by reportAllocs
			}
		case *ast.RangeStmt:
			if h.directlyHot(n.Body) {
				h.reportAllocs(n.Body)
				return false
			}
		}
		return true
	})
}

// directlyHot reports whether the loop body contains a hot call outside any
// nested loop or function literal.
func (h *hotScan) directlyHot(body *ast.BlockStmt) bool {
	hot := false
	for _, st := range body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && h.hot[sel.Sel.Name] {
					hot = true
				}
			}
			return !hot
		})
		if hot {
			return true
		}
	}
	return false
}

// reportAllocs flags every per-iteration allocation in the hot region.
func (h *hotScan) reportAllocs(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if h.info != nil && !isBuiltinObj(h.info.Uses[fun]) {
				break
			}
			switch fun.Name {
			case "make", "new":
				h.p.Reportf(call.Pos(),
					"%s allocates on every iteration of a hot region; hoist the buffer into setup or a struct scratch field", fun.Name)
			case "append":
				h.p.Reportf(call.Pos(),
					"append may reallocate on every iteration of a hot region; preallocate the full-size buffer in setup and index into it")
			}
		case *ast.SelectorExpr:
			if nilDstKernels[fun.Sel.Name] && len(call.Args) >= 2 {
				if id, ok := call.Args[len(call.Args)-1].(*ast.Ident); ok && id.Name == "nil" {
					h.p.Reportf(call.Pos(),
						"%s with a nil destination allocates its result on every iteration of a hot region; pass a scratch buffer", fun.Sel.Name)
				}
			}
		}
		h.reportBoxing(call)
		return true
	})
}

// reportBoxing flags call arguments that implicitly box a concrete value
// into an interface parameter — a heap allocation per iteration. Pointers
// and constants do not allocate; interfaces passed through stay as they are.
func (h *hotScan) reportBoxing(call *ast.CallExpr) {
	if h.info == nil {
		return
	}
	sigType := h.info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			param = last.(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		tv, found := h.info.Types[arg]
		if !found || tv.Value != nil || tv.Type == nil {
			continue // untyped constants never reach the heap
		}
		at := tv.Type
		if types.IsInterface(at) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if at == types.Typ[types.UntypedNil] {
			continue
		}
		h.p.Reportf(arg.Pos(),
			"passing %s boxes it into an interface, allocating on every iteration of a hot region; pass a pointer or hoist the call", at.String())
	}
}
