package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SharedState proves every mutable location captured by a goroutine safe:
// guarded by a consistent lockset, accessed only through sync/atomic,
// ownership-transferred over a channel, or frozen before launch. "Captured
// by a goroutine" covers both function literals launched by a `go`
// statement and literals handed to a pool sink — any callee parameter the
// escape analysis (conc.go) proves to reach a `go` statement or a job
// channel, which resolves the internal/mat worker-pool chain
// (ParallelChunks → parallelFor → trySubmit) without a hard-coded list.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc: "variables captured by goroutines or pool-submitted closures must be lock-guarded, atomic, channel-transferred, or frozen before launch; " +
		"guard every access with one mutex, use sync/atomic consistently, or stop sharing the variable",
	SkipTests: true,
	Run:       runSharedState,
}

// shLoc is one shared mutable location: a captured variable, or one named
// field reached through a captured pointer/struct. Field granularity keeps
// a read of the pointer `c` itself (always safe — it is never reassigned)
// distinct from a write to `c.state` through it.
type shLoc struct {
	obj   types.Object
	field string // "" for the variable itself
}

func (l shLoc) display() string {
	if l.field == "" {
		return l.obj.Name()
	}
	return l.obj.Name() + "." + l.field
}

// shAccess is one classified access to a location.
type shAccess struct {
	pos      token.Pos
	write    bool
	atomic   bool
	site     int             // launch-site index, -1 for enclosing-function accesses
	locks    []string        // lockset held at the access (sorted)
	assign   *ast.AssignStmt // non-nil for a simple `x = rhs` write (fix target)
	elemType types.Type      // location's type, for the atomic fix
}

// runSharedState analyzes every function that launches goroutines.
func runSharedState(p *Pass) {
	if p.Pkg.TypesInfo == nil {
		return
	}
	p.EachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			analyzeSharedFunc(p, decl)
		}
	})
}

// analyzeSharedFunc checks one enclosing function's launch sites.
func analyzeSharedFunc(p *Pass, decl *ast.FuncDecl) {
	sites := launchSites(p.Prog, p.Pkg, decl.Body)
	if len(sites) == 0 {
		return
	}
	fnID := declFuncID(p.Pkg, decl)
	resolve := func(call *ast.CallExpr) (*funcNode, *summary) {
		return p.Prog.summaryFor(p.Pkg, call)
	}

	launched := make(map[*ast.FuncLit]int, len(sites))
	for i, s := range sites {
		launched[s.lit] = i
	}

	// Lockset at every expression, per context: the enclosing body (lockFlow
	// skips literals) and each launched literal (fresh lockset — a goroutine
	// starts holding nothing).
	heldAt := make(map[token.Pos][]string)
	observe := func(e ast.Expr, held map[string]bool) {
		if _, seen := heldAt[e.Pos()]; !seen {
			heldAt[e.Pos()] = sortedHeld(held)
		}
	}
	outer := newLockFlow(p.Pkg, fnID, resolve)
	outer.on = observe
	outer.walk(decl.Body)
	for _, s := range sites {
		inner := newLockFlow(p.Pkg, fnID, resolve)
		inner.on = observe
		inner.walk(s.lit.Body)
	}

	// Classified accesses per location. sent marks objects handed over a
	// channel — ownership transfer, clause (c) of the invariant.
	accs := make(map[shLoc][]shAccess)
	sent := make(map[types.Object]bool)
	collectAccesses(p, decl.Body, sites, launched, heldAt, accs, sent)

	goLaunch, barrier := launchWindow(p, decl.Body, sites)

	locs := make([]shLoc, 0, len(accs))
	for l := range accs {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].obj.Pos() != locs[j].obj.Pos() {
			return locs[i].obj.Pos() < locs[j].obj.Pos()
		}
		return locs[i].field < locs[j].field
	})
	for _, l := range locs {
		if sent[l.obj] {
			continue
		}
		checkLocation(p, l, accs[l], sites, goLaunch, barrier, decl)
	}
}

// launchWindow finds the start of the concurrent window (the first `go`
// launch) and its end (the first barrier after it — a WaitGroup.Wait or a
// channel receive in the enclosing body). Pool sites open no window: the
// sink only returns after the submitted work completed. Returns NoPos when
// the function has no `go`-kind site.
func launchWindow(p *Pass, body *ast.BlockStmt, sites []launchSite) (launch, barrier token.Pos) {
	launch, barrier = token.NoPos, token.NoPos
	for _, s := range sites {
		if s.kind == "go" && (launch == token.NoPos || s.pos < launch) {
			launch = s.pos
		}
	}
	if launch == token.NoPos {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		var pos token.Pos
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pos = x.Pos()
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pos = x.Pos()
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := p.TypeOf(sel.X); t != nil && isSyncType(t, "WaitGroup") {
					pos = x.Pos()
				}
			}
		}
		if pos.IsValid() && pos > launch && (barrier == token.NoPos || pos < barrier) {
			barrier = pos
		}
		return true
	})
	return
}

// isSyncType reports whether t (or its pointee) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == name
}

// collectAccesses classifies every access in the function: writes via
// assignment/inc-dec lvalues, atomic accesses via sync/atomic calls, and
// plain reads for remaining identifier uses. Accesses inside launched
// literals carry their site index; accesses inside other (synchronously
// invoked or deferred) literals are skipped — their execution context is
// the caller's and the lockset walker cannot place them.
func collectAccesses(p *Pass, body *ast.BlockStmt, sites []launchSite, launched map[*ast.FuncLit]int, heldAt map[token.Pos][]string, accs map[shLoc][]shAccess, sent map[types.Object]bool) {
	info := p.Pkg.TypesInfo

	emit := func(l shLoc, a shAccess) {
		if l.obj == nil || syncPrimitiveLoc(l, info) {
			return
		}
		if _, isVar := l.obj.(*types.Var); !isVar {
			return
		}
		if a.site >= 0 && !declaredOutside(l.obj, sites[a.site].lit) {
			return // the literal's own locals are not shared state
		}
		a.locks = heldAt[a.pos]
		accs[l] = append(accs[l], a)
	}

	var scan func(n ast.Node, site int)
	scan = func(n ast.Node, site int) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if s, isLaunched := launched[x]; isLaunched {
					if site == -1 {
						scan(x.Body, s)
					}
					return false
				}
				return false // synchronous/deferred literal: context unknown
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					l, elem, exempt := lvalueLoc(info, lhs)
					if exempt || l.obj == nil {
						continue
					}
					a := shAccess{pos: lhs.Pos(), write: true, site: site, elemType: elem}
					if x.Tok == token.ASSIGN && len(x.Lhs) == 1 && len(x.Rhs) == 1 && i == 0 {
						a.assign = x
					}
					emit(l, a)
				}
				for _, rhs := range x.Rhs {
					scanReads(info, rhs, site, emit)
				}
				return false
			case *ast.IncDecStmt:
				if l, elem, exempt := lvalueLoc(info, x.X); !exempt && l.obj != nil {
					emit(l, shAccess{pos: x.X.Pos(), write: true, site: site, elemType: elem})
				}
				return false
			case *ast.CallExpr:
				if l, isAtomic := atomicCallLoc(info, x); isAtomic {
					if l.obj != nil {
						emit(l, shAccess{pos: x.Pos(), write: true, atomic: true, site: site})
					}
					for _, arg := range x.Args[min(1, len(x.Args)):] {
						scanReads(info, arg, site, emit)
					}
					return false
				}
				return true
			case *ast.SendStmt:
				scanReads(info, x.Chan, site, emit)
				// Sending the variable itself (or its address) transfers
				// ownership: clause (c). Sending a derived value (k * 2)
				// does not — the variable stays shared and the send is a
				// read of it.
				v := ast.Unparen(x.Value)
				if u, ok := v.(*ast.UnaryExpr); ok && u.Op == token.AND {
					v = ast.Unparen(u.X)
				}
				if id, ok := v.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						sent[obj] = true
						return false
					}
				}
				scanReads(info, x.Value, site, emit)
				return false
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					emit(shLoc{obj: obj}, shAccess{pos: x.Pos(), site: site})
				}
				return false
			case *ast.SelectorExpr:
				scanReads(info, x, site, emit)
				return false
			}
			return true
		})
	}
	scan(body, -1)
}

// scanReads emits read accesses for every location an expression touches.
func scanReads(info *types.Info, e ast.Expr, site int, emit func(shLoc, shAccess)) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			emit(shLoc{obj: obj}, shAccess{pos: x.Pos(), site: site})
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj := info.Uses[base]; obj != nil {
				emit(shLoc{obj: obj, field: x.Sel.Name}, shAccess{pos: x.Pos(), site: site})
				return
			}
		}
		scanReads(info, x.X, site, emit)
	case *ast.FuncLit:
		// handled by the caller's scan
	default:
		if x == nil {
			return
		}
		ast.Inspect(x, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectorExpr:
				scanReads(info, n, site, emit)
				return false
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil {
					emit(shLoc{obj: obj}, shAccess{pos: n.Pos(), site: site})
				}
				return false
			}
			return true
		})
	}
}

// lvalueLoc resolves an assignment target to its location. exempt marks
// element writes through a captured slice or array — partitioned ownership,
// where disjoint index ranges per worker are the design (ParMulVec chunks,
// ParATA triangles) and the equivalence tests prove the partition; map
// element writes stay flagged (no partition protects a shared map).
func lvalueLoc(info *types.Info, e ast.Expr) (l shLoc, elem types.Type, exempt bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil || x.Name == "_" {
			return shLoc{}, nil, false
		}
		return shLoc{obj: obj}, obj.Type(), false
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj := info.Uses[base]; obj != nil {
				var t types.Type
				if info.TypeOf(x) != nil {
					t = info.TypeOf(x)
				}
				return shLoc{obj: obj, field: x.Sel.Name}, t, false
			}
		}
		return lvalueLoc(info, x.X)
	case *ast.IndexExpr:
		l, elem, exempt = lvalueLoc(info, x.X)
		if exempt {
			return l, elem, true
		}
		if t := info.TypeOf(x.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				return l, elem, true // partitioned element write
			case *types.Map:
				return l, elem, false
			}
		}
		return l, elem, false
	case *ast.StarExpr:
		return lvalueLoc(info, x.X)
	}
	return shLoc{}, nil, false
}

// atomicCallLoc recognizes a sync/atomic access — the function form
// (atomic.AddInt64(&x, 1)) or the method form (x.Add(1) on atomic.Int64) —
// and returns the accessed location.
func atomicCallLoc(info *types.Info, call *ast.CallExpr) (shLoc, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return shLoc{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return shLoc{}, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		// Method form: the receiver is an atomic value type, which
		// syncPrimitiveType already exempts; nothing to track.
		return shLoc{}, true
	}
	if len(call.Args) == 0 {
		return shLoc{}, true
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return shLoc{}, true
	}
	l, _, _ := lvalueLoc(info, addr.X)
	return l, true
}

// syncPrimitiveLoc reports whether the location is itself a synchronization
// primitive (the captured mutex, wait group, or channel IS the protocol).
func syncPrimitiveLoc(l shLoc, info *types.Info) bool {
	t := l.obj.Type()
	if l.field != "" {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		s, ok := t.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		for i := 0; i < s.NumFields(); i++ {
			if s.Field(i).Name() == l.field {
				t = s.Field(i).Type()
				break
			}
		}
	}
	return syncPrimitiveType(t)
}

// checkLocation applies the shared-state invariant to one location's
// accesses. The decision tree mirrors the documented clauses: atomic
// consistency first (clause b), then locked-write discipline inside
// goroutines (clauses a/d) and the publication rules between the goroutine
// and the enclosing function (clauses a/c/d).
func checkLocation(p *Pass, l shLoc, accs []shAccess, sites []launchSite, goLaunch, barrier token.Pos, decl *ast.FuncDecl) {
	var insideW, insideR, outsideW, outsideR []shAccess
	hasAtomic, insideAtomic := false, false
	for _, a := range accs {
		if a.atomic {
			hasAtomic = true
			insideAtomic = insideAtomic || a.site >= 0
			continue
		}
		switch {
		case a.site >= 0 && a.write:
			insideW = append(insideW, a)
		case a.site >= 0:
			insideR = append(insideR, a)
		case a.write:
			outsideW = append(outsideW, a)
		default:
			outsideR = append(outsideR, a)
		}
	}
	if len(insideW)+len(insideR) == 0 && !insideAtomic {
		return // never touched concurrently
	}

	inWindow := func(a shAccess) bool {
		if goLaunch == token.NoPos || a.pos < goLaunch {
			return false // pre-launch accesses are initialization
		}
		return barrier == token.NoPos || a.pos < barrier
	}

	// Clause (b): no mixed atomic/plain access. Pre-launch plain writes are
	// initialization (ordered before the goroutine exists) and stay legal.
	if hasAtomic {
		for _, a := range append(insideW, insideR...) {
			p.Reportf(a.pos, "captured %s mixes sync/atomic and plain access; make every post-launch access atomic", l.display())
			suggestAtomicFix(p, a)
		}
		for _, a := range append(outsideW, outsideR...) {
			if !inWindow(a) {
				continue
			}
			p.Reportf(a.pos, "captured %s mixes sync/atomic and plain access; make every post-launch access atomic", l.display())
			suggestAtomicFix(p, a)
		}
		return
	}

	// The goroutine side's common guard: the intersection of locksets over
	// every inside write.
	guard := commonGuard(insideW)

	// Clause (a), goroutine side: every inside write needs a lock unless the
	// location is confined to a single non-repeated goroutine.
	if len(insideW) > 0 && len(guard) == 0 {
		if singleOwner(l, insideW, insideR, outsideW, outsideR, sites, decl, goLaunch, barrier) {
			return
		}
		for _, a := range insideW {
			if len(a.locks) == 0 {
				p.Reportf(a.pos, "captured %s is written inside a goroutine without a lock, atomic access, channel transfer, or pre-launch freeze; guard every access with one mutex", l.display())
				return // one report per location keeps the output readable
			}
		}
		// Writes are individually locked but share no common mutex.
		a := insideW[0]
		p.Reportf(a.pos, "captured %s is guarded inconsistently across goroutine writes (%s vs %s); every access must share one mutex",
			l.display(), strings.Join(displayLocks(a.locks), "+"), strings.Join(displayLocks(insideW[len(insideW)-1].locks), "+"))
		return
	}

	// Clauses (a)/(c)/(d), enclosing side: accesses racing the launched
	// goroutines must agree with the goroutine's guard.
	for _, a := range outsideW {
		if !inWindow(a) || intersects(a.locks, guard) {
			continue
		}
		if len(insideW) == 0 && len(insideR) == 0 {
			continue
		}
		if len(a.locks) == 0 {
			p.Reportf(a.pos, "captured %s is written after the goroutine launch without synchronization; freeze it before the launch or guard both sides with the goroutine's mutex", l.display())
		} else {
			p.Reportf(a.pos, "captured %s is written under %s but the goroutine accesses it under %s; every access must share one mutex",
				l.display(), strings.Join(displayLocks(a.locks), "+"), guardName(guard))
		}
		return
	}
	for _, a := range outsideR {
		if !inWindow(a) || len(insideW) == 0 || intersects(a.locks, guard) {
			continue
		}
		if len(a.locks) == 0 {
			p.Reportf(a.pos, "captured %s is written by a goroutine but read here before any barrier; wait on the WaitGroup or receive from the goroutine's channel first", l.display())
		} else {
			p.Reportf(a.pos, "captured %s is read under %s but the goroutine writes it under %s; every access must share one mutex",
				l.display(), strings.Join(displayLocks(a.locks), "+"), guardName(guard))
		}
		return
	}
}

// suggestAtomicFix attaches the mechanical rewrite `x = rhs` →
// `atomic.StoreT(&x, rhs)` when the location's type has a direct
// sync/atomic store and the file already imports sync/atomic.
func suggestAtomicFix(p *Pass, a shAccess) {
	if a.assign == nil || a.elemType == nil {
		return
	}
	b, ok := a.elemType.(*types.Basic)
	if !ok {
		return
	}
	var fn string
	switch b.Kind() {
	case types.Int32:
		fn = "StoreInt32"
	case types.Int64:
		fn = "StoreInt64"
	case types.Uint32:
		fn = "StoreUint32"
	case types.Uint64:
		fn = "StoreUint64"
	default:
		return
	}
	if p.file == nil {
		return
	}
	name, imported := ImportName(p.file, "sync/atomic")
	if !imported || name == "_" || name == "." {
		return
	}
	lhs := types.ExprString(a.assign.Lhs[0])
	rhs := types.ExprString(a.assign.Rhs[0])
	p.SuggestFix(fmt.Sprintf("replace the plain store with %s.%s", name, fn),
		p.Edit(a.assign.Pos(), a.assign.End(),
			fmt.Sprintf("%s.%s(&%s, %s)", name, fn, lhs, rhs)))
}

// commonGuard intersects the locksets of a group of accesses; empty input
// yields nil (no guard proven).
func commonGuard(accs []shAccess) []string {
	if len(accs) == 0 {
		return nil
	}
	guard := accs[0].locks
	for _, a := range accs[1:] {
		guard = intersectSorted(guard, a.locks)
	}
	return guard
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func intersects(a, b []string) bool { return len(intersectSorted(a, b)) > 0 }

func displayLocks(ids []string) []string {
	if len(ids) == 0 {
		return []string{"no lock"}
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = lockDisplay(id)
	}
	return out
}

func guardName(guard []string) string {
	if len(guard) == 0 {
		return "no lock"
	}
	return strings.Join(displayLocks(guard), "+")
}

// singleOwner reports whether the location is confined to one goroutine:
// exactly one `go`-kind launch site touches it, that site is not inside a
// loop (a looped launch spawns many instances of the literal), and the
// enclosing function neither writes it post-launch nor reads it inside the
// concurrent window. Pool-submitted literals are never single owners — a
// pool sink runs its body once per chunk, concurrently.
func singleOwner(l shLoc, insideW, insideR, outsideW, outsideR []shAccess, sites []launchSite, decl *ast.FuncDecl, goLaunch, barrier token.Pos) bool {
	siteOf := -1
	for _, a := range append(insideW, insideR...) {
		if siteOf == -1 {
			siteOf = a.site
		} else if a.site != siteOf {
			return false
		}
	}
	if siteOf < 0 || sites[siteOf].kind != "go" || launchInLoop(decl.Body, sites[siteOf].pos) {
		return false
	}
	for _, a := range outsideW {
		if a.pos > sites[siteOf].pos {
			return false
		}
	}
	for _, a := range outsideR {
		if a.pos > sites[siteOf].pos && (barrier == token.NoPos || a.pos < barrier) {
			return false
		}
	}
	return true
}

// launchInLoop reports whether pos sits inside a for/range statement of the
// body.
func launchInLoop(body *ast.BlockStmt, pos token.Pos) bool {
	in := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos < n.End() {
				in = true
			}
		}
		return !in
	})
	return in
}

// declFuncID renders the stable funcID of a declaration, matching
// funcIDOf, for scoping local lock names.
func declFuncID(pkg *Package, decl *ast.FuncDecl) string {
	if fn, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func); ok {
		if id := funcIDOf(fn); id != "" {
			return id
		}
	}
	return pkg.ImportPath + "." + decl.Name.Name
}
