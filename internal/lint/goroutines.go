package lint

import "go/ast"

// Goroutines restricts `go` statements to the four packages that own
// concurrency: the cluster runtime (rank goroutines), mat (parallelFor),
// omp (batch workers), and serve (per-shard batchers, the HTTP accept
// loop, and the load-test clients). Concurrency anywhere else escapes the
// flop accounting and the deterministic reduction order those packages
// were built to protect. Tests may spawn goroutines only in the same
// packages; a test that needs one elsewhere should drive the owning
// package's API instead.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc: "forbid go statements outside internal/cluster, internal/mat, " +
		"internal/omp, and internal/serve — the packages that own concurrency " +
		"and its accounting",
	Run: func(p *Pass) {
		if inAnyPkg(p.Pkg.ImportPath,
			"extdict/internal/cluster", "extdict/internal/mat",
			"extdict/internal/omp", "extdict/internal/serve") {
			return
		}
		p.EachFile(func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(),
						"go statement outside the concurrency-owning packages (cluster, mat, omp); route parallelism through their APIs")
				}
				return true
			})
		})
	},
}
