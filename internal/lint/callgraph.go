package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// funcNode is one function in the whole-program call graph: a declared
// function or method with a body, addressed by a package-qualified id that
// is stable across the per-package type-check universes (each Package is
// checked into its own *types.Package, so *types.Func identity does not
// survive a package boundary — string ids do).
type funcNode struct {
	id   string        // see funcIDOf: "pkg.Func" or "pkg.(Type).Method"
	name string        // display name: "Func" or "Type.Method"
	pkg  *Package      // the package the body lives in
	decl *ast.FuncDecl // the declaration (never nil; literals are not nodes)

	// params are the parameter objects in call-site order — the receiver,
	// when the node is a method, is parameter 0.
	params []types.Object
}

// callees returns the resolved call edges out of the node's body, in source
// order. Edges through function values are not resolved — only direct calls
// to declared functions and methods.
func (n *funcNode) callees(cg *callGraph) []*funcNode {
	var out []*funcNode
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if c := cg.calleeOf(n.pkg, call); c != nil {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// callGraph indexes every declared function and method of a program by its
// package-qualified id.
type callGraph struct {
	nodes map[string]*funcNode
}

// funcIDOf renders the stable id of a declared function or method:
// "pkgpath.Name" for functions, "pkgpath.(Type).Name" for methods (pointer
// and value receivers share an id — a program declares at most one of each
// name). Returns "" for objects without a package (builtins).
func funcIDOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), named.Obj().Name(), fn.Name())
		}
		return "" // interface method or unnamed receiver: not a graph node
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// buildCallGraph collects every declared function and method with a body
// across the program's packages. Test-file declarations are included: the
// collective invariants hold in test rank bodies too.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{nodes: make(map[string]*funcNode)}
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		if info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcIDOf(fn)
				if id == "" {
					continue
				}
				node := &funcNode{id: id, name: declName(decl), pkg: pkg, decl: decl}
				node.params = declParams(decl, info)
				cg.nodes[id] = node
			}
		}
	}
	return cg
}

// declName renders the display name of a declaration: "Type.Method" with
// the receiver's pointer marker dropped, or the bare function name.
func declName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}

// declParams resolves the declaration's parameter objects in call-site
// order, receiver first. A blank or unnamed parameter contributes nil, so
// indices stay aligned with call-site arguments.
func declParams(decl *ast.FuncDecl, info *types.Info) []types.Object {
	var out []types.Object
	appendField := func(field *ast.Field) {
		if len(field.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name]) // nil for _
		}
	}
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			appendField(field)
		}
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			appendField(field)
		}
	}
	return out
}

// calleeOf resolves a call expression to its target node, or nil when the
// callee is a builtin, a conversion, a function value, an interface method,
// or a function outside the program (standard library).
func (cg *callGraph) calleeOf(pkg *Package, call *ast.CallExpr) *funcNode {
	info := pkg.TypesInfo
	if info == nil {
		return nil
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	id := funcIDOf(fn)
	if id == "" {
		return nil
	}
	return cg.nodes[id]
}

// callArgs returns the call's effective argument expressions in parameter
// order: for a method call through a selector, the receiver expression is
// prepended so indices line up with funcNode.params.
func callArgs(pkg *Package, call *ast.CallExpr, callee *funcNode) []ast.Expr {
	args := call.Args
	if callee.decl.Recv == nil {
		return args
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// A package-qualified call (pkg.Func) has no receiver; a method
		// expression (Type.Method) is not resolved here. Only genuine
		// method calls through a value reach a callee with a receiver.
		out := make([]ast.Expr, 0, len(args)+1)
		out = append(out, sel.X)
		out = append(out, args...)
		return out
	}
	return args
}

// sortedNodeIDs returns every node id in deterministic order, for tests and
// stable iteration.
func (cg *callGraph) sortedNodeIDs() []string {
	ids := make([]string, 0, len(cg.nodes))
	for id := range cg.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// nodeByName finds a node by display name inside one import path — a test
// convenience ("ExDGram.applyCase1" in "extdict/internal/dist").
func (cg *callGraph) nodeByName(importPath, name string) *funcNode {
	for _, n := range cg.nodes {
		if n.name == name && n.pkg.ImportPath == importPath {
			return n
		}
	}
	return nil
}

// Program is the whole-module analysis unit: the packages under analysis,
// their call graph, and the per-function summaries interprocedural
// analyzers consult. Build one with NewProgram and hand it to RunProgram.
type Program struct {
	pkgs      []*Package
	graph     *callGraph
	summaries map[string]*summary

	// lockEdges memoizes the whole-module lock-order graph (conc.go); the
	// lint engine runs analyzers sequentially, so a plain flag suffices.
	lockEdges      []lockEdge
	lockEdgesBuilt bool
}

// NewProgram builds the call graph and function summaries for the given
// packages. Analyzers run through RunProgram see every package in the
// program, so a collective hidden behind a helper in another package is
// visible; Run (single-package) degrades to within-package resolution.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{pkgs: pkgs, graph: buildCallGraph(pkgs)}
	p.summaries = computeSummaries(p.graph)
	return p
}

// summaryFor returns the summary of the call's resolved target, or nil.
func (p *Program) summaryFor(pkg *Package, call *ast.CallExpr) (*funcNode, *summary) {
	node := p.graph.calleeOf(pkg, call)
	if node == nil {
		return nil, nil
	}
	return node, p.summaries[node.id]
}

// packageByPath returns the program package with the import path, or nil.
func (p *Program) packageByPath(path string) *Package {
	for _, pkg := range p.pkgs {
		if pkg.ImportPath == path {
			return pkg
		}
	}
	return nil
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(pkg *Package, n ast.Node) bool {
	return strings.HasSuffix(pkg.Fset.Position(n.Pos()).Filename, "_test.go")
}
