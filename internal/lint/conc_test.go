package lint

import (
	"strings"
	"testing"
)

// TestConcEscapeSummaries pins the escape analysis against the real mat
// pool: the analyzers never hard-code the trySubmit → ParallelChunks →
// parallelFor chain, they derive it from which function-typed parameters
// reach goroutines, composite literals, or channel sends. If the pool
// plumbing is refactored these pins say whether the derivation kept up.
func TestConcEscapeSummaries(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	pins := []struct {
		id  string
		bit uint
	}{
		{"extdict/internal/mat.trySubmit", 0},
		{"extdict/internal/mat.parallelFor", 1},
		{"extdict/internal/mat.ParallelChunks", 2},
	}
	for _, pin := range pins {
		sum := prog.summaries[pin.id]
		if sum == nil {
			t.Fatalf("no summary for %s", pin.id)
		}
		if sum.escParams&(1<<pin.bit) == 0 {
			t.Errorf("%s: parameter %d does not escape (escParams=%b); pool submissions would not count as launch sites",
				pin.id, pin.bit, sum.escParams)
		}
	}
}

// TestConcLockSummaries pins the lock identity and lockset propagation on
// the cluster communicator, whose every collective runs under (Comm).mu.
func TestConcLockSummaries(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	const id = "extdict/internal/cluster.(Comm).abort"
	const mu = "extdict/internal/cluster.(Comm).mu"
	sum := prog.summaries[id]
	if sum == nil {
		t.Fatalf("no summary for %s", id)
	}
	found := false
	for _, l := range sum.locks {
		found = found || l == mu
	}
	if !found {
		t.Errorf("%s: locks %v do not include %s", id, sum.locks, mu)
	}
	if len(sum.netLocks) != 0 {
		t.Errorf("%s: netLocks %v, want none (Lock and Unlock pair on every path)", id, sum.netLocks)
	}
}

// TestConcDetTaintSummaries pins the determinism taint: perf's Stopwatch
// is the module's clock-read surface, and the taint it seeds is what
// detorder's whole-program rule propagates into kernels.
func TestConcDetTaintSummaries(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	for id, want := range map[string]string{
		"extdict/internal/perf.StartWall":           "time.Now",
		"extdict/internal/perf.(Stopwatch).Elapsed": "time.Since",
	} {
		sum := prog.summaries[id]
		if sum == nil {
			t.Fatalf("no summary for %s", id)
		}
		if sum.detVia != want {
			t.Errorf("%s: detVia %q, want %q", id, sum.detVia, want)
		}
	}
}

// TestDetOrderWallSinkExemption pins the one sanctioned clock read:
// cluster.(Comm).Run stamps the observational Stats.Wall field and must
// not taint every solver that runs under a communicator.
func TestDetOrderWallSinkExemption(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	sum := prog.summaries[wallSinkExempt]
	if sum == nil {
		t.Fatalf("no summary for %s", wallSinkExempt)
	}
	if sum.detVia != "" {
		t.Errorf("%s: detVia %q, want empty — its Stats.Wall measurement is exempt", wallSinkExempt, sum.detVia)
	}
}

// TestDetOrderTransitiveClock runs the transitive fixture against the full
// module program: the clock read lives in internal/perf, which noclock
// allowlists, but a mat kernel calling StartWall/Elapsed is still flagged
// because the taint crosses package boundaries through the summaries.
func TestDetOrderTransitiveClock(t *testing.T) {
	_, pkgs := loadModuleProgram(t)
	fix := parseFixture(t, fixturePath("detorder", "transitive.go"), "extdict/internal/mat/fixture")
	prog := NewProgram(append(append([]*Package{}, pkgs...), fix))
	findings := RunProgram(prog, fix, []*Analyzer{DetOrder})
	var start, elapsed bool
	for _, f := range findings {
		if !strings.Contains(f.Message, "reaches a nondeterministic read") {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		start = start || strings.Contains(f.Message, "StartWall") && strings.Contains(f.Message, "time.Now")
		elapsed = elapsed || strings.Contains(f.Message, "Elapsed") && strings.Contains(f.Message, "time.Since")
	}
	if !start {
		t.Errorf("no finding for the transitive time.Now behind perf.StartWall; findings: %v", findings)
	}
	if !elapsed {
		t.Errorf("no finding for the transitive time.Since behind (Stopwatch).Elapsed; findings: %v", findings)
	}
}
