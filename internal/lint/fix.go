package lint

import (
	"fmt"
	"go/format"
	"io/fs"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by findings to the files on
// disk and gofmt-formats each touched file, so -fix output always passes
// gofmt -l. It returns the findings that were fixed and the ones left for a
// human (no fix attached). The engine drops suppressed findings before they
// reach here, so a justified exception is never machine-edited.
//
// Edits are applied per file in offset order. Overlapping edits — two fixes
// fighting over the same bytes — abort the whole file set with an error
// rather than guessing, since a half-applied fix leaves the tree unbuildable.
func ApplyFixes(findings []Finding) (fixed, remaining []Finding, err error) {
	byFile := make(map[string][]TextEdit)
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			remaining = append(remaining, f)
			continue
		}
		fixed = append(fixed, f)
		for _, e := range f.Fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)

	for _, name := range files {
		if err := applyFileEdits(name, byFile[name]); err != nil {
			return nil, findings, err
		}
	}
	return fixed, remaining, nil
}

// applyFileEdits rewrites one file with its edits, validated and in order.
func applyFileEdits(name string, edits []TextEdit) error {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	src, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	var out []byte
	cursor := 0
	for _, e := range edits {
		if e.Start < cursor {
			return fmt.Errorf("lint: overlapping fixes in %s at byte %d", name, e.Start)
		}
		if e.End < e.Start || e.End > len(src) {
			return fmt.Errorf("lint: fix range [%d,%d) out of bounds for %s (%d bytes)", e.Start, e.End, name, len(src))
		}
		out = append(out, src[cursor:e.Start]...)
		out = append(out, e.NewText...)
		cursor = e.End
	}
	out = append(out, src[cursor:]...)

	formatted, err := format.Source(out)
	if err != nil {
		return fmt.Errorf("lint: fixes produced unparsable %s: %w", name, err)
	}
	mode := fs.FileMode(0o644)
	if info, statErr := os.Stat(name); statErr == nil {
		mode = info.Mode()
	}
	if err := os.WriteFile(name, formatted, mode); err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	return nil
}
