package lint

import (
	"go/ast"
	"go/types"
)

// kernelCalls are the mat/sparse operations that execute floating point
// work. A distributed kernel that calls one of these on behalf of a rank
// must report the flops, or the cost model's Eq. 2/3 accounting silently
// under-counts.
var kernelCalls = map[string]bool{
	"MulVec": true, "MulVecT": true, "Mul": true, "MulTo": true,
	"ParMulVec": true, "ParMulVecT": true, "ParMulTo": true, "ParATA": true,
	"ATA": true, "GramColumns": true,
	"Dot": true, "Axpy": true, "AddVec": true, "SubVec": true,
	"ScaleVec": true, "Norm2": true, "SolveInPlace": true,
	"SolveLeastSquares": true, "Factorize": true,
}

// FlopAudit is a heuristic check over internal/dist and internal/solver: any
// function (declaration or literal) that receives a *cluster.Rank and calls
// a flop-performing kernel must also call AddFlops somewhere in its body.
// The check is syntactic — it cannot prove the count is right, only that the
// author remembered the instrumentation hook. Genuine zero-flop uses are
// suppressible with a justification.
var FlopAudit = &Analyzer{
	Name: "flopaudit",
	Doc: "in internal/dist and internal/solver, a function taking a " +
		"*cluster.Rank that calls mat kernels must also call AddFlops so " +
		"the cost model's flop accounting stays exact",
	Run: func(p *Pass) {
		if !inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
			return
		}
		p.EachFile(func(f *ast.File) {
			info := p.Pkg.TypesInfo
			clusterName, imported := ImportName(f, "extdict/internal/cluster")
			if info == nil && !imported {
				return
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil || !takesRank(ft, info, clusterName) {
					return true
				}
				kernel, counted := auditBody(body)
				if kernel != "" && !counted {
					p.Reportf(n.Pos(),
						"rank function calls kernel %s but never calls AddFlops; report the flops or justify with //lint:ignore flopaudit", kernel)
				}
				return true
			})
		})
	},
}

// takesRank reports whether the signature has a *cluster.Rank parameter.
// With type information the parameter type is resolved, so in-file type
// aliases and renamed imports cannot hide it; otherwise it falls back to
// the syntactic *<clusterName>.Rank shape.
func takesRank(ft *ast.FuncType, info *types.Info, clusterName string) bool {
	if info != nil {
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				if t := info.TypeOf(field.Type); t != nil && isRankPtr(t) {
					return true
				}
			}
		}
		return false
	}
	return takesRankParam(ft, clusterName)
}

// takesRankParam reports whether the signature has a *cluster.Rank parameter
// (with cluster imported under clusterName).
func takesRankParam(ft *ast.FuncType, clusterName string) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Rank" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == clusterName {
			return true
		}
	}
	return false
}

// auditBody scans a function body for kernel calls and AddFlops calls,
// returning the first kernel name seen and whether AddFlops appears.
func auditBody(body *ast.BlockStmt) (kernel string, counted bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		switch {
		case name == "AddFlops":
			counted = true
		case kernelCalls[name] && kernel == "":
			kernel = name
		}
		return true
	})
	return kernel, counted
}
