package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// symExpr is a symbolic integer expression over named dimensions — the
// common currency of the schedule analyzer (collective vector lengths) and
// the costmodel analyzer (FLOP counts). Variables are canonical dimension
// names derived from operator constructors: a field ("m", "l"), a per-rank
// slot of a field ("nnz[]", "ranges[][0]"), the length of a captured slice
// ("len(batch)"), or an opaque sparse population ("NNZ(blocks[])").
type symExpr interface {
	render() string
}

type symConst int64

func (c symConst) render() string { return strconv.FormatInt(int64(c), 10) }

type symVar string

func (v symVar) render() string { return string(v) }

type symAdd struct{ a, b symExpr }

func (e symAdd) render() string { return e.a.render() + " + " + e.b.render() }

type symSub struct{ a, b symExpr }

func (e symSub) render() string { return e.a.render() + " - " + renderTight(e.b) }

type symMul struct{ a, b symExpr }

func (e symMul) render() string { return renderTight(e.a) + "*" + renderTight(e.b) }

// symUnknown marks a quantity the analysis could not resolve; it poisons
// equality so the analyzers report "cannot derive" instead of a false
// mismatch.
type symUnknown struct{}

func (symUnknown) render() string { return "?" }

// renderTight parenthesizes additive subexpressions inside products.
func renderTight(e symExpr) string {
	switch e.(type) {
	case symAdd, symSub:
		return "(" + e.render() + ")"
	}
	return e.render()
}

// poly is a symExpr normalized to a sum of products: the key is the
// "*"-joined sorted list of variable names of one product term (empty for
// the constant term), the value its integer coefficient. Two symExprs are
// semantically equal iff their polys are equal, which settles
// 2*2*m*l == 2*m*l + 2*l*m and 2*m*(hi-lo) == 2*m*hi - 2*m*lo without a
// solver. Variable names never contain '*', so the key join is unambiguous.
type poly map[string]int64

// normalize flattens e into a poly, rewriting variables through subst first
// (constructor aliases like nnz[] ≡ NNZ(blocks[])). It returns ok=false
// when e contains an unresolved quantity.
func normalize(e symExpr, subst map[string]string) (poly, bool) {
	switch e := e.(type) {
	case symConst:
		return poly{"": int64(e)}.trim(), true
	case symVar:
		name := string(e)
		for i := 0; i < 8; i++ { // bounded alias chase
			next, ok := subst[name]
			if !ok {
				break
			}
			name = next
		}
		return poly{name: 1}, true
	case symAdd:
		return combine(e.a, e.b, 1, subst)
	case symSub:
		return combine(e.a, e.b, -1, subst)
	case symMul:
		pa, ok := normalize(e.a, subst)
		if !ok {
			return nil, false
		}
		pb, ok := normalize(e.b, subst)
		if !ok {
			return nil, false
		}
		out := poly{}
		for ka, ca := range pa {
			for kb, cb := range pb {
				out[mulKey(ka, kb)] += ca * cb
			}
		}
		return out.trim(), true
	}
	return nil, false // symUnknown or nil
}

func combine(a, b symExpr, sign int64, subst map[string]string) (poly, bool) {
	pa, ok := normalize(a, subst)
	if !ok {
		return nil, false
	}
	pb, ok := normalize(b, subst)
	if !ok {
		return nil, false
	}
	out := poly{}
	for k, c := range pa {
		out[k] += c
	}
	for k, c := range pb {
		out[k] += sign * c
	}
	return out.trim(), true
}

// mulKey merges two product keys into one canonical sorted key.
func mulKey(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	vars := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(vars)
	return strings.Join(vars, "*")
}

// trim drops zero coefficients so equality is structural.
func (p poly) trim() poly {
	for k, c := range p {
		if c == 0 {
			delete(p, k)
		}
	}
	return p
}

// equalPoly reports semantic equality of two normalized expressions.
func equalPoly(a, b poly) bool {
	if len(a) != len(b) {
		return false
	}
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

// render writes the poly in a stable human-readable form for findings.
func (p poly) render() string {
	if len(p) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" + ")
		}
		if k == "" {
			fmt.Fprintf(&b, "%d", p[k])
		} else if p[k] == 1 {
			b.WriteString(k)
		} else {
			fmt.Fprintf(&b, "%d*%s", p[k], k)
		}
	}
	return b.String()
}

// evalSym evaluates the expression under concrete bindings (after subst
// rewriting), used by the golden tests to check a symbolic cost against a
// runtime-measured count. ok=false when a variable is unbound or the
// expression is unresolved.
func evalSym(e symExpr, subst map[string]string, bind map[string]int64) (int64, bool) {
	p, ok := normalize(e, subst)
	if !ok {
		return 0, false
	}
	var total int64
	for k, c := range p {
		term := c
		if k != "" {
			for _, v := range strings.Split(k, "*") {
				val, ok := bind[v]
				if !ok {
					return 0, false
				}
				term *= val
			}
		}
		total += term
	}
	return total, true
}

// --- constructor shape analysis ---

// dimPair is the symbolic (rows, cols) of a matrix-typed field.
type dimPair struct{ rows, cols symExpr }

// shapeTable is the per-package constructor analysis: for every named
// operator type it records, keyed by canonical field reference, the
// symbolic length of slice fields ("scratch[]" → m, "scratch[].vl1" → l),
// the symbolic dimensions of matrix fields ("blocks[]", "d"), and variable
// aliases introduced by precomputation ("nnz[]" ≡ "NNZ(blocks[])"). The
// canonical key drops the concrete index: blocks[i] in the constructor and
// blocks[r.ID] in the rank body both canonicalize to "blocks[]" — the
// per-rank slots deliberately share one symbol, which is exactly the
// shape-uniformity the collective schedule relies on.
// For the allocmodel analyzer the table also records, per key, the byte
// size of one slice element (sizes) and the storage kind of a matrix field
// (kinds: "dense", "csc", or "faust") — together these turn the shape
// entries into allocation contracts (8 bytes per dense matrix entry or
// float64 slot; 16·nnz + 8·(cols+1) for a CSC block's value/row-index
// payload plus column pointers; 8·ResidentWords for a factor chain).
type shapeTable struct {
	lens  map[string]map[string]symExpr // type -> key -> slice length
	dims  map[string]map[string]dimPair // type -> key -> matrix dims
	subst map[string]map[string]string  // type -> var -> alias
	sizes map[string]map[string]int64   // type -> key -> bytes per slice element
	kinds map[string]map[string]string  // type -> key -> "dense" | "csc"
}

// buildShapes scans every non-test function of the package for constructor
// idiom: a builder assignment g := &T{field: expr, ...} followed by
// per-slot writes g.field[i] = make/composite/kernel-derived values. Field
// expressions in the composite literal become the canonical names — a
// later occurrence of the same expression (a.Rows when the literal said
// m: a.Rows) renders as the field name (m).
func buildShapes(pkg *Package) *shapeTable {
	t := &shapeTable{
		lens:  make(map[string]map[string]symExpr),
		dims:  make(map[string]map[string]dimPair),
		subst: make(map[string]map[string]string),
		sizes: make(map[string]map[string]int64),
		kinds: make(map[string]map[string]string),
	}
	info := pkg.TypesInfo
	if info == nil {
		return t
	}
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			t.scanConstructor(pkg, decl.Body)
		}
	}
	return t
}

// scanConstructor finds builder literals and follow-up field writes in one
// function body.
func (t *shapeTable) scanConstructor(pkg *Package, body *ast.BlockStmt) {
	info := pkg.TypesInfo
	type builder struct {
		typeName string
		fields   *types.Struct     // the literal's struct type, for field kinds
		bind     map[string]string // types.ExprString(fieldValue) -> field name
	}
	builders := make(map[types.Object]*builder)

	// Pass 1: collect builder vars and their literal field bindings.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit := compositeOf(as.Rhs[0])
		if lit == nil {
			return true
		}
		name := namedTypeName(info.TypeOf(lit))
		if name == "" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		fields, _ := underlyingStruct(info.TypeOf(lit))
		b := &builder{typeName: name, fields: fields, bind: make(map[string]string)}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			b.bind[types.ExprString(kv.Value)] = key.Name
		}
		builders[obj] = b
		return true
	})
	if len(builders) == 0 {
		return
	}

	// sym renders a constructor-context expression into a canonical symbol:
	// expressions the literal bound become field names; g.field reads
	// become field names; everything else renders literally.
	var symFor func(b *builder, e ast.Expr) symExpr
	symFor = func(b *builder, e ast.Expr) symExpr {
		e = ast.Unparen(e)
		if name, ok := b.bind[types.ExprString(e)]; ok {
			return symVar(name)
		}
		switch e := e.(type) {
		case *ast.BasicLit:
			if v, err := strconv.ParseInt(e.Value, 0, 64); err == nil {
				return symConst(v)
			}
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isBuilder := builders[info.Uses[id]]; isBuilder {
					return symVar(e.Sel.Name)
				}
			}
		case *ast.IndexExpr:
			isBuilder := func(obj types.Object) bool { _, ok := builders[obj]; return ok }
			if base, ok := indexedField(info, isBuilder, e); ok {
				return symVar(base)
			}
		case *ast.BinaryExpr:
			a, bb := symFor(b, e.X), symFor(b, e.Y)
			switch e.Op {
			case token.ADD:
				return symAdd{a, bb}
			case token.SUB:
				return symSub{a, bb}
			case token.MUL:
				return symMul{a, bb}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return symFor(b, e.Args[0])
			}
		}
		return symVar(types.ExprString(e))
	}

	// record one field-slot write.
	var record func(b *builder, key string, rhs ast.Expr)
	record = func(b *builder, key string, rhs ast.Expr) {
		tn := b.typeName
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok && isBuiltinObj(info.Uses[id]) && id.Name == "make" && len(rhs.Args) >= 2 {
				t.setLen(tn, key, symFor(b, rhs.Args[1]))
				t.setSize(tn, key, sliceElemBytes(info.TypeOf(rhs)))
				return
			}
			if tv, ok := info.Types[rhs.Fun]; ok && tv.IsType() && len(rhs.Args) == 1 {
				// int64(g.blocks[i].NNZ()) → alias nnz[] ≡ NNZ(blocks[]).
				record(b, key, rhs.Args[0])
				return
			}
			if sel, ok := rhs.Fun.(*ast.SelectorExpr); ok {
				recv := symFor(b, sel.X)
				switch sel.Sel.Name {
				case "NNZ":
					t.setSubst(tn, key, "NNZ("+recv.render()+")")
				case "VecWords", "ResidentWords", "MaxInterDim":
					// Factor-chain aggregates precomputed off a FastDict
					// field: chainVecs ≡ VecWords(fd) etc., the symbols the
					// chain kernel contracts are written in.
					t.setSubst(tn, key, sel.Sel.Name+"("+recv.render()+")")
				case "ColRange", "ColSliceRange":
					// A column window [lo, hi) of the receiver: rows carry
					// over, cols are the window width. ColRange windows are
					// dense, ColSliceRange copies are CSC.
					if len(rhs.Args) == 2 {
						rows := symFor(b, &ast.SelectorExpr{X: sel.X, Sel: ast.NewIdent("Rows")})
						cols := symSub{symFor(b, rhs.Args[1]), symFor(b, rhs.Args[0])}
						t.setDims(tn, key, dimPair{rows: rows, cols: cols})
						if sel.Sel.Name == "ColSliceRange" {
							t.setKind(tn, key, "csc")
						} else {
							t.setKind(tn, key, "dense")
						}
					}
				}
			}
		case *ast.CompositeLit:
			// Struct-of-buffers slot: exdScratch{vl1: make(...), ...}.
			for _, el := range rhs.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				fname, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if mk, ok := kv.Value.(*ast.CallExpr); ok {
					if id, ok := mk.Fun.(*ast.Ident); ok && isBuiltinObj(info.Uses[id]) && id.Name == "make" && len(mk.Args) >= 2 {
						t.setLen(tn, key+"."+fname.Name, symFor(b, mk.Args[1]))
						t.setSize(tn, key+"."+fname.Name, sliceElemBytes(info.TypeOf(mk)))
					}
				}
			}
		case *ast.Ident:
			// Matrix field bound straight from a constructor argument
			// (d: d): dims come from the argument's own fields, which the
			// literal may also have bound (m: d.Rows).
		}
	}

	// Literal fields themselves: a matrix parameter stored as a field gets
	// dims from <param>.Rows / <param>.Cols through the binding table.
	for _, b := range builders {
		for exprStr, field := range b.bind {
			rows, rok := b.bind[exprStr+".Rows"]
			cols, cok := b.bind[exprStr+".Cols"]
			if rok || cok {
				dp := dimPair{rows: symVar(exprStr + ".Rows"), cols: symVar(exprStr + ".Cols")}
				if rok {
					dp.rows = symVar(rows)
				}
				if cok {
					dp.cols = symVar(cols)
				}
				t.setDims(b.typeName, field, dp)
				if k := fieldKind(b.fields, field); k != "" {
					t.setKind(b.typeName, field, k)
				}
			}
		}
	}

	// Pass 2: follow-up writes g.field[...] = rhs and g.field = rhs.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		switch lhs := as.Lhs[0].(type) {
		case *ast.IndexExpr:
			if sel, ok := lhs.X.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if b, ok := builders[info.Uses[id]]; ok {
						record(b, sel.Sel.Name+"[]", as.Rhs[0])
					}
				}
			}
		case *ast.SelectorExpr:
			if id, ok := lhs.X.(*ast.Ident); ok {
				if b, ok := builders[info.Uses[id]]; ok {
					record(b, lhs.Sel.Name, as.Rhs[0])
				}
			}
		}
		return true
	})
}

// indexedField recognizes base.field[i] (and base.field[i][0] with a
// constant outer index) on a recognized base object and returns the
// canonical "field[]" / "field[][0]" key.
func indexedField(info *types.Info, isBase func(types.Object) bool, e *ast.IndexExpr) (string, bool) {
	if inner, ok := e.X.(*ast.IndexExpr); ok {
		if base, ok2 := indexedFieldBase(info, isBase, inner); ok2 {
			if lit, ok3 := e.Index.(*ast.BasicLit); ok3 {
				return base + "[" + lit.Value + "]", true
			}
			return base + "[]", true
		}
		return "", false
	}
	return indexedFieldBase(info, isBase, e)
}

func indexedFieldBase(info *types.Info, isBase func(types.Object) bool, e *ast.IndexExpr) (string, bool) {
	sel, ok := e.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if !isBase(info.Uses[id]) {
		return "", false
	}
	return sel.Sel.Name + "[]", true
}

func (t *shapeTable) setLen(typeName, key string, e symExpr) {
	if t.lens[typeName] == nil {
		t.lens[typeName] = make(map[string]symExpr)
	}
	t.lens[typeName][key] = e
}

func (t *shapeTable) setDims(typeName, key string, d dimPair) {
	if t.dims[typeName] == nil {
		t.dims[typeName] = make(map[string]dimPair)
	}
	t.dims[typeName][key] = d
}

func (t *shapeTable) setSubst(typeName, v, alias string) {
	if t.subst[typeName] == nil {
		t.subst[typeName] = make(map[string]string)
	}
	t.subst[typeName][v] = alias
}

func (t *shapeTable) setSize(typeName, key string, n int64) {
	if t.sizes[typeName] == nil {
		t.sizes[typeName] = make(map[string]int64)
	}
	t.sizes[typeName][key] = n
}

func (t *shapeTable) setKind(typeName, key, kind string) {
	if t.kinds[typeName] == nil {
		t.kinds[typeName] = make(map[string]string)
	}
	t.kinds[typeName][key] = kind
}

// sizeOf returns the recorded element byte size of a slice key, defaulting
// to one 8-byte word.
func (t *shapeTable) sizeOf(typeName, key string) int64 {
	if n, ok := t.sizes[typeName][key]; ok {
		return n
	}
	return 8
}

// kindOf returns the recorded storage kind of a matrix key ("" if unknown).
func (t *shapeTable) kindOf(typeName, key string) string {
	return t.kinds[typeName][key]
}

// substFor returns the alias table of one operator type (may be nil).
func (t *shapeTable) substFor(typeName string) map[string]string {
	return t.subst[typeName]
}

// allocSizes is the 64-bit size model allocation contracts are priced
// under — the word size every byte contract in DESIGN.md assumes.
var allocSizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

// sliceElemBytes returns the byte size of one element of a slice type,
// defaulting to one 8-byte word when the type is unresolved.
func sliceElemBytes(t types.Type) int64 {
	if t != nil {
		if s, ok := t.Underlying().(*types.Slice); ok {
			if n := allocSizes.Sizeof(s.Elem()); n > 0 {
				return n
			}
		}
	}
	return 8
}

// fieldKind classifies a struct field's matrix storage by its named type.
func fieldKind(st *types.Struct, field string) string {
	if st == nil {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() != field {
			continue
		}
		switch namedTypeName(st.Field(i).Type()) {
		case "Dense":
			return "dense"
		case "CSC":
			return "csc"
		case "FastDict":
			return "faust"
		}
	}
	return ""
}

// compositeOf unwraps &T{...} or T{...}.
func compositeOf(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		return lit
	}
	return nil
}

// namedTypeName returns the bare name of a (possibly pointered) named type.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
