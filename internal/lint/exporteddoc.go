package lint

import (
	"go/ast"
	"go/token"
)

// ExportedDoc requires a doc comment on every exported top-level identifier
// inside internal/. The internal tree is this project's API surface between
// subsystems; undocumented exports are how accounting conventions (what a
// flop count includes, which buffers alias) silently diverge. Grouped
// declarations may document the group once; methods on unexported receivers
// are exempt (they are unreachable outside the package).
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc: "exported identifiers in internal/ packages need doc comments " +
		"(on the declaration or its group)",
	SkipTests: true,
	Run: func(p *Pass) {
		if !hasPrefixPkg(p.Pkg.ImportPath, "extdict/internal") {
			return
		}
		p.EachFile(func(f *ast.File) {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFuncDoc(p, d)
				case *ast.GenDecl:
					checkGenDoc(p, d)
				}
			}
		})
	},
}

func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv != nil && !exportedRecv(d.Recv) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
	}
	p.Reportf(d.Name.Pos(), "exported %s %s lacks a doc comment", kind, d.Name.Name)
}

// exportedRecv reports whether the receiver's base type name is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func checkGenDoc(p *Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	// Trailing line comments document a spec only inside a grouped
	// declaration — the idiomatic const-block style. An ungrouped decl
	// needs a leading doc comment.
	grouped := d.Lparen.IsValid()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && !(grouped && s.Comment != nil) {
				p.Reportf(s.Name.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || (grouped && s.Comment != nil) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					p.Reportf(name.Pos(), "exported %s %s lacks a doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}
