package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseSrc builds a single-file Package from source text, without type
// checking — the directive machinery is purely syntactic.
func parseSrc(t *testing.T, filename, src, importPath string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{
		Dir:        filepath.Dir(filename),
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
	}
}

func TestDirectiveOnLastLineOfFile(t *testing.T) {
	// The directive is the file's final byte run, with no trailing newline:
	// suppression must still index it by line.
	src := "package fixture\n\n" +
		"var tol = 0.1\n" +
		"var bad = tol == 0.1 //lint:ignore nofloateq fixture compares an exact sentinel"
	pkg := parseSrc(t, "last.go", src, "extdict/internal/solver")
	if findings := Run(pkg, []*Analyzer{NoFloatEq}); len(findings) != 0 {
		t.Fatalf("last-line directive did not suppress: %v", findings)
	}
}

func TestDirectiveNamesMultipleChecks(t *testing.T) {
	// The comparison and the panic share a line, so one directive must cover
	// findings from two different checks.
	src := `package fixture

func f(a, b float64) {
	//lint:ignore nofloateq,panicmsg sentinel comparison and legacy message, both audited
	if a == 0.5 { panic("no prefix") }
}
`
	pkg := parseSrc(t, "multi.go", src, "extdict/internal/solver")
	findings := Run(pkg, []*Analyzer{NoFloatEq, PanicMsg})
	if len(findings) != 0 {
		t.Fatalf("multi-check directive did not suppress both: %v", findings)
	}
	// The same source without the directive fires both checks.
	bare := strings.Replace(src, "\t//lint:ignore nofloateq,panicmsg sentinel comparison and legacy message, both audited\n", "", 1)
	pkg = parseSrc(t, "multi.go", bare, "extdict/internal/solver")
	if findings := Run(pkg, []*Analyzer{NoFloatEq, PanicMsg}); len(findings) != 2 {
		t.Fatalf("expected both checks to fire without the directive, got %v", findings)
	}
}

func TestDirectiveInsideStructLiteral(t *testing.T) {
	src := `package fixture

type gate struct{ open bool }

var tol = 0.25

var cfg = gate{
	//lint:ignore nofloateq tolerance is a power of two, comparison is exact
	open: tol == 0.25,
}
`
	pkg := parseSrc(t, "lit.go", src, "extdict/internal/solver")
	if findings := Run(pkg, []*Analyzer{NoFloatEq}); len(findings) != 0 {
		t.Fatalf("struct-literal directive did not suppress: %v", findings)
	}
}

func TestSuppressedFindingsAreExemptFromFix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.go")
	src := `package demo

func a() { panic("one") }

func b() {
	//lint:ignore panicmsg legacy message preserved for log scrapers
	panic("two")
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: dir, ImportPath: "demo", Fset: fset, Files: []*ast.File{f}}

	findings := Run(pkg, []*Analyzer{PanicMsg})
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed finding, got %v", findings)
	}
	fixed, remaining, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 || len(remaining) != 0 {
		t.Fatalf("fixed %d remaining %d, want 1/0", len(fixed), len(remaining))
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	if !strings.Contains(got, `panic("demo: one")`) {
		t.Errorf("unsuppressed panic was not fixed:\n%s", got)
	}
	if !strings.Contains(got, `panic("two")`) || strings.Contains(got, `panic("demo: two")`) {
		t.Errorf("suppressed panic must stay untouched:\n%s", got)
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(path, []byte("package demo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	overlap := []Finding{
		{Check: "x", Fix: &SuggestedFix{Edits: []TextEdit{{Filename: path, Start: 0, End: 7, NewText: "a"}}}},
		{Check: "x", Fix: &SuggestedFix{Edits: []TextEdit{{Filename: path, Start: 5, End: 12, NewText: "b"}}}},
	}
	if _, _, err := ApplyFixes(overlap); err == nil {
		t.Fatal("overlapping fixes must be rejected")
	}
}
