package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexes of a // want "..." comment; backticks
// quote regexes that themselves contain double quotes.
var (
	wantRe         = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
	wantBacktickRe = regexp.MustCompile("`([^`]*)`")
)

// runFixture parses one fixture file as a standalone package pretending to
// live at importPath, runs the analyzer through the real engine (so
// suppression directives apply), and diffs the findings against the
// fixture's // want "regex" comments line by line.
func runFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	pkg := parseFixture(t, fixture, importPath)
	f := pkg.Files[0]
	fset := pkg.Fset
	findings := Run(pkg, []*Analyzer{a})

	// line -> pending expectation regexes.
	wants := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			re := wantRe
			if strings.Contains(rest, "`") {
				re = wantBacktickRe
			}
			for _, m := range re.FindAllStringSubmatch(rest, -1) {
				wants[line] = append(wants[line], m[1])
			}
		}
	}

	for _, fd := range findings {
		if !matchWant(t, wants, fd) {
			t.Errorf("%s: unexpected finding: %s", filepath.Base(fixture), fd)
		}
	}
	for line, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", filepath.Base(fixture), line, re)
		}
	}
}

// matchWant consumes the first pending expectation on the finding's line
// that matches its message.
func matchWant(t *testing.T, wants map[int][]string, fd Finding) bool {
	t.Helper()
	res := wants[fd.Pos.Line]
	for i, re := range res {
		ok, err := regexp.MatchString(re, fmt.Sprintf("%s (%s)", fd.Message, fd.Check))
		if err != nil {
			t.Fatalf("bad want regex %q: %v", re, err)
		}
		if ok {
			wants[fd.Pos.Line] = append(res[:i], res[i+1:]...)
			if len(wants[fd.Pos.Line]) == 0 {
				delete(wants, fd.Pos.Line)
			}
			return true
		}
	}
	return false
}

// runFixtureExpectNone runs the analyzer on a fixture under a different
// import path and requires zero findings, ignoring the fixture's want
// comments — used to prove package allowlists hold.
func runFixtureExpectNone(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	pkg := parseFixture(t, fixture, importPath)
	for _, fd := range Run(pkg, []*Analyzer{a}) {
		t.Errorf("%s as %s: unexpected finding: %s", filepath.Base(fixture), importPath, fd)
	}
}

// parseFixture loads one fixture file as a standalone package and
// type-checks it against the real module, so fixtures exercise the same
// type-aware paths the CLI runs. Deliberately broken fixtures still load:
// type errors are collected, not fatal.
func parseFixture(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, fixture, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", fixture, err)
	}
	pkg := &Package{
		Dir:        filepath.Dir(fixture),
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
	}
	root, module, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkg.TypeCheck(root, module)
	return pkg
}

// fixturePath resolves a file under testdata/.
func fixturePath(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}
