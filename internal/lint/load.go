package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks upward from dir until it finds a go.mod, returning the
// containing directory and the module path declared inside.
func ModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, readErr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if readErr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load expands the package patterns relative to root and parses every
// matched directory into a Package, then type-checks each one (resolving
// module-local imports from source and standard-library imports through the
// compiler's export data), so analyzers see resolved types. Type-check
// diagnostics land in each Package's TypeErrors; they do not fail the load.
// Patterns follow the go tool's shape: a directory path loads one package,
// a trailing "/..." loads the whole subtree. Directories named testdata or
// vendor and hidden directories are skipped.
func Load(root, module string, patterns []string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			dirSet[dir] = true
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			dirSet[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	tc := newTypeChecker(root, module)
	for _, dir := range dirs {
		pkg, err := parseDir(dir, root, module)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.typeCheck(tc)
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// parseDir parses every .go file in dir into one Package, or returns nil if
// the directory holds no Go files.
func parseDir(dir, root, module string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	importPath := module
	if rel != "." {
		importPath = module + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Fset: token.NewFileSet()}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(pkg.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}
