package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
	"extdict/internal/faust"
	"extdict/internal/perf"
)

// TestCapacityGolden pins the static capacity report: the peak-resident
// polynomials derived from the shipped rank entry points, evaluated at the
// documented reference shapes and classified against the default platform's
// per-rank RAM, must match the checked-in artifact byte for byte. Any
// change to an operator's resident set — or to the capacity itself — shows
// up as a diff here (and in scripts/ci.sh, which performs the same
// comparison through the CLI).
func TestCapacityGolden(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	var rows []CapacityRow
	for _, path := range []string{"extdict/internal/dist", "extdict/internal/solver"} {
		if pkg := prog.packageByPath(path); pkg != nil {
			rows = append(rows, Capacity(pkg)...)
		}
	}
	if len(rows) == 0 {
		t.Fatal("no capacity rows derived from the shipped tree")
	}
	report := NewCapacityReport(cluster.NewPlatform(1, 1).MemBytesCapacity(), rows)
	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "capacity.golden.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("capacity report drifted from %s; regenerate with\n\tgo run ./cmd/extdict-lint -capacity %s ./...\ngot:\n%s", goldenPath, goldenPath, got)
	}
}

// TestCapacityGoldenVerdicts pins the report's punchline independent of the
// exact byte values: every shipped figure configuration fits in the default
// 2 GiB per rank, and the ROADMAP item 5 shape (5 billion stored
// coefficients over a 100M-column corpus) does not — the static motivation
// for the out-of-core schedule.
func TestCapacityGoldenVerdicts(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	report := NewCapacityReport(cluster.NewPlatform(1, 1).MemBytesCapacity(), Capacity(distPkg))
	if len(report.Entries) == 0 {
		t.Fatal("empty capacity report")
	}
	for _, row := range report.Entries {
		want := "fits"
		if row.Config == "roadmap5-5Bnnz" {
			want = "needs-out-of-core"
		}
		if row.Verdict != want {
			t.Errorf("%s at %s: verdict %q, want %q (%d bytes against %d)",
				row.Func, row.Config, row.Verdict, want, row.BytesPerRank, report.CapacityBytes)
		}
	}
}

// TestCapacityAgreesWithRuntime closes the loop the capacity report stands
// on: the resident-set polynomials derived from ExDGram.applyCase1,
// evaluated per rank at a real instance's dimensions (guarded terms on
// rank 0 only), must reproduce the simulator's PeakResidentPerRank exactly —
// so a "fits" verdict is a statement about the machine's counters, not an
// estimate. The allocmodel analyzer proves each AddResident claim equals the
// derived polynomial; this test proves the derived polynomials are the
// runtime high-water marks.
func TestCapacityAgreesWithRuntime(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	var fc *funcCost
	for _, c := range deriveResident(distPkg) {
		if c.fn == "ExDGram.applyCase1" {
			c := c
			fc = &c
		}
	}
	if fc == nil {
		t.Fatal("no derived resident set for ExDGram.applyCase1")
	}

	// Same Case 1 instance as the costmodel and memmodel symbolic tests.
	const M, L, N, P = 30, 20, 80, 4
	a := genMatrix(t, M, N, 10)
	tr := fitTransform(t, a, L)
	plat := cluster.NewPlatform(1, P)
	g, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Apply(make([]float64, N), make([]float64, N))
	if len(st.PeakResidentPerRank) != P {
		t.Fatalf("runtime reported %d resident ranks, want %d", len(st.PeakResidentPerRank), P)
	}

	ranges := dist.WeightedBlockRanges(N, plat.RankSpeeds())
	for i := 0; i < P; i++ {
		bind := map[string]int64{
			"m": M, "l": L,
			"NNZ(blocks[])": int64(tr.C.ColSliceRange(ranges[i][0], ranges[i][1]).NNZ()),
			"ranges[][0]":   int64(ranges[i][0]),
			"ranges[][1]":   int64(ranges[i][1]),
		}
		var static int64
		for _, term := range claimTerms(fc.terms) {
			switch term.guard {
			case "":
			case "r.ID == 0":
				if i != 0 {
					continue
				}
			default:
				t.Fatalf("unexpected guard %q in applyCase1", term.guard)
			}
			v, ok := evalSym(term.derived, fc.subst, bind)
			if !ok {
				t.Fatalf("cannot evaluate %s under %v", term.derived.render(), bind)
			}
			static += v
		}
		if static != st.PeakResidentPerRank[i] {
			t.Fatalf("rank %d: static resident set %d bytes, runtime counted %d", i, static, st.PeakResidentPerRank[i])
		}
		if static == 0 {
			t.Fatalf("rank %d: zero derived resident set", i)
		}
	}
}

// TestPerfMemoryAgreesWithCapacityModel pins perf.Estimate.MemoryWordsPerRank
// to the allocmodel polynomials: at a shape where the uniform partition is
// exact, each predictor's words-per-rank, scaled to bytes, must equal the
// corresponding entry point's derived worst-rank resident set (all claim
// regions summed — rank 0 carries the guarded dictionary term). This is the
// regression gate for the Eq. 4 closed forms: a formula drifting from the
// operators' actual allocations fails here, not in a reviewer's head.
func TestPerfMemoryAgreesWithCapacityModel(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	derived := make(map[string]funcCost)
	for _, c := range deriveResident(distPkg) {
		derived[c.fn] = c
	}
	worst := func(fn string, bind map[string]int64) int64 {
		c, ok := derived[fn]
		if !ok {
			t.Fatalf("no derived resident set for %s", fn)
		}
		var total int64
		for _, term := range claimTerms(c.terms) {
			v, ok := evalSym(term.derived, c.subst, bind)
			if !ok {
				t.Fatalf("%s: cannot evaluate %s under %v", fn, term.derived.render(), bind)
			}
			total += v
		}
		return total
	}

	const M, N, L, NNZ, B, P = 128, 16384, 256, 524288, 64, 4
	plat := cluster.NewPlatform(1, P)
	plan := faust.NewPlan(M, L, 0, 0)
	chain := perf.ChainTerms{
		NNZ:           plan.NNZ(),
		VecWords:      plan.VecWords(),
		ResidentWords: plan.ResidentWords(),
		InterDim:      int64(plan.InterDim()),
	}
	cases := []struct {
		fn    string
		words float64
		bind  map[string]int64
	}{
		{
			fn:    "ExDGram.applyCase1",
			words: perf.PredictTransformed(M, N, L, NNZ, plat).MemoryWordsPerRank,
			bind: map[string]int64{
				"m": M, "l": L,
				"NNZ(blocks[])": NNZ / P,
				"ranges[][0]":   0,
				"ranges[][1]":   N / P,
			},
		},
		{
			fn:    "FastGram.applyCase1",
			words: perf.PredictFastDict(M, N, L, NNZ, chain, plat).MemoryWordsPerRank,
			bind: map[string]int64{
				"m": M, "l": L,
				"NNZ(blocks[])":     NNZ / P,
				"ranges[][0]":       0,
				"ranges[][1]":       N / P,
				"ResidentWords(fd)": plan.ResidentWords(),
				"MaxInterDim(fd)":   int64(plan.InterDim()),
			},
		},
		{
			fn:    "DenseGram.Apply#1",
			words: perf.PredictDense(M, N, plat).MemoryWordsPerRank,
			bind: map[string]int64{
				"m":           M,
				"ranges[][0]": 0,
				"ranges[][1]": N / P,
			},
		},
		{
			fn:    "BatchGram.Apply#1",
			words: perf.PredictSGD(M, N, B, plat).MemoryWordsPerRank,
			bind:  map[string]int64{"a.Rows": M, "n": N, "B": B},
		},
	}
	for _, tc := range cases {
		static := worst(tc.fn, tc.bind)
		if got := int64(tc.words) * 8; got != static {
			t.Errorf("%s: perf predicts %d resident bytes per rank, capacity model derives %d", tc.fn, got, static)
		}
	}
}
