package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CostModel statically pins the flop accounting of internal/dist and
// internal/solver to the code: it derives a symbolic FLOP expression for
// the region of a rank body preceding each r.AddFlops call — kernel calls
// through their contracts (Dense MulVec/MulVecT/ParMulVec = 2·rows·cols,
// CSC MulVec/MulVecT = 2·NNZ), loop nests as trip count × inner float
// operations — and reports when the AddFlops argument cannot equal the
// derived expression. Dimensions resolve through operator constructors the
// same way schedule's vector lengths do, so the comparison happens in the
// paper's own variables: applyCase1's rank-0 block derives 4·M·L against
// the claimed 2*2*int64(g.m)*int64(g.l), which is Eq. 2; the per-rank
// 4·nnz_i terms are Eq. 3's sparse half. An if-block containing its own
// AddFlops is checked as an independent guarded region ("r.ID == 0"), so
// asymmetric accounting stays checkable.
//
// The model counts float64 arithmetic only (multiplies, adds, subtracts,
// divides); integer index math, comparisons, and calls without a kernel
// contract derive zero. A claim that folds data-dependent work (a branch
// that skips rows) will mismatch — that is a feature: the paper's cost
// model (Eqs. 2-4) is an upper-bound multiply-add count, and deviations
// must be argued with a //lint:ignore directive, not silently absorbed.
var CostModel = &Analyzer{
	Name: "costmodel",
	Doc: "every r.AddFlops argument must symbolically equal the FLOP " +
		"expression derived from the preceding kernel calls and loop " +
		"nests, pinning the code to the paper's cost model (Eqs. 2-4)",
	SkipTests: true,
	Run: func(p *Pass) {
		if !inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
			return
		}
		if p.Pkg.TypesInfo == nil {
			return
		}
		for _, fc := range deriveCosts(p.Pkg) {
			subst := fc.subst
			for _, term := range fc.terms {
				switch {
				case term.unsupported:
					p.Reportf(term.pos,
						"AddFlops inside a loop cannot be checked against the static cost model; hoist the accounting out of the loop")
				case term.claim != nil:
					pd, okD := normalize(term.derived, subst)
					pc, okC := normalize(term.claim, subst)
					if !okD || !okC {
						p.Reportf(term.pos,
							"cannot derive a symbolic flop count for the code preceding this AddFlops; restructure so loop bounds and kernel dimensions resolve through the operator constructor")
						continue
					}
					if !equalPoly(pd, pc) {
						p.Reportf(term.pos,
							"AddFlops claims %s but the preceding code computes %s flops%s (cost-model conformance, Eqs. 2-4)",
							pc.render(), pd.render(), guardSuffix(term.guard))
					}
				default:
					// Trailing derived flops with no AddFlops to absorb them.
					p.Reportf(term.pos,
						"flops computed here are not covered by any AddFlops call%s; the cost model under-counts this kernel", guardSuffix(term.guard))
				}
			}
		}
	},
}

func guardSuffix(guard string) string {
	if guard == "" {
		return ""
	}
	return " under " + guard
}

// costTerm is one checkable unit of a rank body: the symbolic flops derived
// for a region, the AddFlops claim that closes it (nil for trailing
// uncovered work), and the guard condition the region runs under.
type costTerm struct {
	guard       string  // canonical condition, "" at top level
	claim       symExpr // parsed AddFlops argument; nil for trailing terms
	derived     symExpr
	pos         token.Pos
	unsupported bool // AddFlops nested in a loop
}

// funcCost is the derived cost structure of one rank function.
type funcCost struct {
	fn    string
	terms []costTerm
	subst map[string]string // dimension aliases of the operator type
}

// deriveCosts derives the symbolic cost terms of every rank function in the
// package — the data behind the costmodel analyzer and the symbolic
// reproduction of the flop-accounting tests.
func deriveCosts(pkg *Package) []funcCost {
	shapes := buildShapes(pkg)
	var out []funcCost
	eachRankFunc(pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		opType, _, _ := strings.Cut(name, ".")
		if !strings.Contains(name, ".") {
			opType = ""
		}
		cw := &costWalk{
			st:        newSymState(pkg, shapes),
			shapes:    shapes,
			opType:    opType,
			claimName: "AddFlops",
		}
		cw.stmtCost = cw.stmtFlops
		cw.st.envFixpoint(body)
		terms := cw.region(body.List, "")
		out = append(out, funcCost{fn: name, terms: terms, subst: shapes.substFor(opType)})
	})
	return out
}

// costWalk derives symbolic accounting expressions over one rank body. The
// region machinery is shared between the costmodel and memmodel analyzers:
// claimName is the Rank method that closes an accounted region ("AddFlops"
// or "AddBytes") and stmtCost derives the per-statement quantity that
// method's claims must account for (flops or bytes).
type costWalk struct {
	st        *symState
	shapes    *shapeTable
	opType    string
	claimName string
	stmtCost  func(ast.Stmt) symExpr
}

// region scans a statement list in source order, accumulating the derived
// quantity and closing a term at each claim call. An if-statement containing
// its own claim becomes a nested guarded region; one without folds into the
// parent's accumulator.
func (c *costWalk) region(stmts []ast.Stmt, guard string) []costTerm {
	var terms []costTerm
	acc := symExpr(symConst(0))
	flush := func(claim symExpr, pos token.Pos) {
		terms = append(terms, costTerm{guard: guard, claim: claim, derived: acc, pos: pos})
		acc = symConst(0)
	}
	for _, s := range stmts {
		if call, ok := rankCallStmt(c.st, s, c.claimName); ok {
			flush(c.st.symVal(call.Args[0]), call.Pos())
			continue
		}
		switch s := s.(type) {
		case *ast.IfStmt:
			if containsRankCall(c.st, s.Body, c.claimName) {
				terms = append(terms, c.region(s.Body.List, conjoin(guard, types.ExprString(s.Cond)))...)
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); ok && containsRankCall(c.st, blk, c.claimName) {
						terms = append(terms, c.region(blk.List, conjoin(guard, "!("+types.ExprString(s.Cond)+")"))...)
						continue
					}
					acc = symAdd{acc, c.stmtCost(s.Else)}
				}
				continue
			}
			acc = symAdd{acc, c.stmtCost(s)}
		case *ast.ForStmt:
			if containsRankCall(c.st, s.Body, c.claimName) {
				terms = append(terms, costTerm{guard: guard, pos: s.Pos(), unsupported: true})
				continue
			}
			acc = symAdd{acc, c.stmtCost(s)}
		case *ast.RangeStmt:
			if containsRankCall(c.st, s.Body, c.claimName) {
				terms = append(terms, costTerm{guard: guard, pos: s.Pos(), unsupported: true})
				continue
			}
			acc = symAdd{acc, c.stmtCost(s)}
		case *ast.BlockStmt:
			// A bare block continues the region.
			sub := c.region(s.List, guard)
			for _, t := range sub {
				if t.claim == nil && !t.unsupported {
					acc = symAdd{acc, t.derived}
				} else {
					terms = append(terms, t)
				}
			}
		default:
			acc = symAdd{acc, c.stmtCost(s)}
		}
	}
	if p, ok := normalize(acc, nil); !ok || len(p) != 0 {
		// Leftover work (or unresolvable work) after the last claim.
		pos := token.NoPos
		if len(stmts) > 0 {
			pos = stmts[len(stmts)-1].Pos()
		}
		terms = append(terms, costTerm{guard: guard, derived: acc, pos: pos})
	}
	return terms
}

// rankCallStmt matches the statement form r.<name>(expr).
func rankCallStmt(st *symState, s ast.Stmt, name string) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	if st.rankMethodName(call) != name {
		return nil, false
	}
	return call, true
}

// containsRankCall reports whether the block calls r.<name> anywhere
// outside nested function literals.
func containsRankCall(st *symState, block *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && st.rankMethodName(call) == name {
			found = true
		}
		return !found
	})
	return found
}

func conjoin(guard, cond string) string {
	if guard == "" {
		return cond
	}
	return guard + " && " + cond
}

// stmtFlops derives the float operations one statement performs.
func (c *costWalk) stmtFlops(s ast.Stmt) symExpr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.exprFlops(s.X)
	case *ast.AssignStmt:
		total := symExpr(symConst(0))
		for _, rhs := range s.Rhs {
			total = symAdd{total, c.exprFlops(rhs)}
		}
		// Compound float assignment is one more operation: s += x*y is a
		// multiply and an add.
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(s.Lhs) == 1 && isFloatExpr(c.st.info, s.Lhs[0]) {
				total = symAdd{total, symConst(1)}
			}
		}
		return total
	case *ast.IfStmt:
		total := c.exprFlops(s.Cond)
		total = symAdd{total, c.blockFlops(s.Body)}
		if s.Else != nil {
			total = symAdd{total, c.stmtFlops(s.Else)}
		}
		return total
	case *ast.ForStmt:
		trip := c.forTrip(s)
		body := c.blockFlops(s.Body)
		return c.loopFlops(trip, body)
	case *ast.RangeStmt:
		trip := c.st.symLen(s.X)
		body := c.blockFlops(s.Body)
		return c.loopFlops(trip, body)
	case *ast.BlockStmt:
		return c.blockFlops(s)
	case *ast.DeclStmt:
		total := symExpr(symConst(0))
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						total = symAdd{total, c.exprFlops(v)}
					}
				}
			}
		}
		return total
	case *ast.ReturnStmt:
		total := symExpr(symConst(0))
		for _, e := range s.Results {
			total = symAdd{total, c.exprFlops(e)}
		}
		return total
	case *ast.BranchStmt, *ast.IncDecStmt:
		return symConst(0)
	}
	return symConst(0)
}

// loopFlops multiplies a trip count by per-iteration flops, short-circuiting
// zero bodies so an unresolvable trip count over pure index work stays zero.
func (c *costWalk) loopFlops(trip, body symExpr) symExpr {
	if p, ok := normalize(body, nil); ok && len(p) == 0 {
		return symConst(0)
	}
	if isUnknown(trip) {
		return symUnknown{}
	}
	return symMul{trip, body}
}

func (c *costWalk) blockFlops(b *ast.BlockStmt) symExpr {
	total := symExpr(symConst(0))
	for _, s := range b.List {
		total = symAdd{total, c.stmtFlops(s)}
	}
	return total
}

// forTrip resolves the canonical trip count of for i := 0; i < N; i++.
func (c *costWalk) forTrip(s *ast.ForStmt) symExpr {
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(init.Rhs) != 1 {
		return symUnknown{}
	}
	if lit, ok := init.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "0" {
		return symUnknown{}
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return symUnknown{}
	}
	return c.st.symVal(cond.Y)
}

// exprFlops counts float64 arithmetic in an expression, pricing kernel
// calls through their contracts.
func (c *costWalk) exprFlops(e ast.Expr) symExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		total := symAdd{c.exprFlops(e.X), c.exprFlops(e.Y)}
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if isFloatExpr(c.st.info, e.X) || isFloatExpr(c.st.info, e.Y) {
				return symAdd{total, symConst(1)}
			}
		}
		return total
	case *ast.CallExpr:
		if k, ok := c.kernelFlops(e); ok {
			total := k
			for _, arg := range e.Args {
				total = symAdd{total, c.exprFlops(arg)}
			}
			return total
		}
		total := symExpr(symConst(0))
		for _, arg := range e.Args {
			total = symAdd{total, c.exprFlops(arg)}
		}
		return total
	case *ast.UnaryExpr:
		return c.exprFlops(e.X)
	case *ast.IndexExpr:
		return symAdd{c.exprFlops(e.X), c.exprFlops(e.Index)}
	case *ast.SelectorExpr:
		return c.exprFlops(e.X)
	case *ast.SliceExpr:
		return c.exprFlops(e.X)
	case *ast.StarExpr:
		return c.exprFlops(e.X)
	}
	return symConst(0)
}

// kernelFlops prices a matrix-vector kernel call: Dense kernels cost
// 2·rows·cols of the receiver (one multiply and one add per matrix entry),
// CSC kernels 2·NNZ of the receiver — the terms of Eqs. 2-4. The unrolled /
// pool-parallel kernels (ParMulVec, ParMulVecT) carry the same contracts as
// their serial forms: register blocking and chunked execution regroup the
// multiply-adds without changing their count. The package-level vector
// kernels mat.Dot and mat.Axpy cost 2·len(x) each (one multiply and one add
// per element).
func (c *costWalk) kernelFlops(call *ast.CallExpr) (symExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := c.st.info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "extdict/internal/mat" {
				switch sel.Sel.Name {
				case "Dot":
					if len(call.Args) == 2 {
						return c.lenFlops(call.Args[0]), true
					}
				case "Axpy":
					if len(call.Args) == 3 {
						return c.lenFlops(call.Args[1]), true
					}
				}
			}
			return nil, false
		}
	}
	switch sel.Sel.Name {
	case "MulVec", "MulVecT", "ParMulVec", "ParMulVecT":
	default:
		return nil, false
	}
	recvType := c.st.info.TypeOf(sel.X)
	name := c.canonRecv(sel.X)
	switch namedTypeName(recvType) {
	case "Dense":
		if d, ok := c.dimsOf(name); ok {
			return symMul{symConst(2), symMul{d.rows, d.cols}}, true
		}
		return symUnknown{}, true
	case "CSC":
		if name == "" {
			return symUnknown{}, true
		}
		return symMul{symConst(2), symVar("NNZ(" + name + ")")}, true
	case "FastDict":
		// Factor-chain apply: one multiply and one add per stored entry of
		// every factor, Σ 2·nnz(S_i) — the FAµST cost the chain exists for.
		// NNZ(fd) is the whole-chain population Σ nnz(S_i) recorded by the
		// constructor analysis from g.chainNNZ = g.fd.NNZ().
		if name == "" {
			return symUnknown{}, true
		}
		return symMul{symConst(2), symVar("NNZ(" + name + ")")}, true
	}
	return nil, false
}

// lenFlops prices a 2-flops-per-element vector kernel over the slice e.
func (c *costWalk) lenFlops(e ast.Expr) symExpr {
	l := c.st.symLen(e)
	if isUnknown(l) {
		return symUnknown{}
	}
	return symMul{symConst(2), l}
}

// canonRecv renders the canonical name of a kernel receiver: a field chain
// resolves directly, a local resolves through its recorded value
// (blk := g.blocks[r.ID] → "blocks[]").
func (c *costWalk) canonRecv(e ast.Expr) string {
	if _, key, ok := c.st.canonRef(e); ok {
		return key
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := c.st.info.Uses[id]; obj != nil {
			if v, ok := c.st.val[obj].(symVar); ok {
				return string(v)
			}
		}
		return id.Name
	}
	return ""
}

// dimsOf looks up the symbolic dimensions of a matrix field of the
// enclosing operator type.
func (c *costWalk) dimsOf(name string) (dimPair, bool) {
	if name == "" || c.opType == "" {
		return dimPair{}, false
	}
	dims := c.shapes.dims[c.opType]
	if dims == nil {
		return dimPair{}, false
	}
	d, ok := dims[name]
	return d, ok
}

// isFloatExpr reports whether e has (possibly named) floating-point type.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
