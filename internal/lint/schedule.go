package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// TraceOp is one collective in a static schedule: the operation, its root,
// and its vector length as a symbolic dimension expression ("m", "l",
// "len(batch)"). Allreduce is expanded to its implementation — Reduce to
// root 0 followed by Broadcast from root 0 — so a static trace compares
// positionally against the runtime trace recorded by
// cluster.Comm.EnableTrace.
type TraceOp struct {
	Op   string `json:"op"`
	Root string `json:"root"`
	Size string `json:"size"`
}

// OpTrace is the static collective schedule of one rank function, named
// "Type.Method" for declared functions and "Type.Method#i" for the i-th
// rank-taking function literal inside a method (the bodies passed to
// comm.Run).
type OpTrace struct {
	Func string    `json:"func"`
	Ops  []TraceOp `json:"ops"`
}

// tracedOp carries the source position alongside the emitted op so the
// analyzer can report unresolved sizes at the offending argument.
type tracedOp struct {
	TraceOp
	pos token.Pos
}

// Schedule verifies that every rank function in internal/dist and
// internal/solver admits a rank-invariant static collective trace — the
// whole-program guarantee behind Algorithm 2's lock-step schedule. It
// abstract-interprets each rank body into an ordered list of collectives
// with symbolic roots and vector lengths (resolved through operator
// constructors: a scratch buffer allocated with make([]float64, a.Rows) in
// the constructor traces as the dimension "m"), inlining calls to
// same-package rank helpers. It reports when
//
//   - a collective's schedule position, root, or vector length depends on
//     the rank (the trace differs across ranks — the runtime would abort), or
//   - a vector length cannot be resolved to a symbolic dimension (the
//     schedule cannot be verified against the paper's communication model).
//
// The emitted traces (cmd/extdict-lint -trace) are cross-checked in tests
// against the runtime traces recorded by cluster.Comm.EnableTrace.
var Schedule = &Analyzer{
	Name: "schedule",
	Doc: "every *cluster.Rank operator must admit a rank-invariant static " +
		"collective trace with symbolically resolved vector lengths, " +
		"verified against the runtime-recorded schedule",
	SkipTests: true,
	Run: func(p *Pass) {
		if !inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
			return
		}
		if p.Pkg.TypesInfo == nil {
			return
		}
		shapes := buildShapes(p.Pkg)
		eachRankFunc(p.Pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			if !rankInvariant(p, ft, body) {
				p.Reportf(body.Pos(),
					"%s has no rank-invariant static collective trace: a collective's position, root, or vector length depends on the rank (see collective findings)", name)
				return
			}
			ops := traceBody(p.Prog, p.Pkg, shapes, body, nil)
			seen := make(map[token.Pos]bool) // Allreduce expands to two ops at one site
			for _, op := range ops {
				if op.Size == "?" && !seen[op.pos] {
					seen[op.pos] = true
					p.Reportf(op.pos,
						"cannot resolve a symbolic vector length for this collective; the static schedule cannot be checked against the communication model — size buffers through the operator constructor")
				}
			}
		})
	},
}

// eachRankFunc visits every rank-taking function in the package's non-test
// files: declared functions under their "Type.Method" name and rank-taking
// literals inside each declaration as "Type.Method#i".
func eachRankFunc(pkg *Package, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	info := pkg.TypesInfo
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if len(rankParams(decl.Type, info)) > 0 {
				fn(declName(decl), decl.Type, decl.Body)
				continue
			}
			i := 0
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if len(rankParams(lit.Type, info)) == 0 {
					return true
				}
				i++
				fn(declName(decl)+"#"+strconv.Itoa(i), lit.Type, lit.Body)
				return false // a lit nested in a rank lit traces on its own
			})
		}
	}
}

// rankInvariant runs the shared SPMD walker and reports whether every
// collective effect is independent of the rank.
func rankInvariant(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) bool {
	s := newSpmd(p.Pkg, func(call *ast.CallExpr) (*funcNode, *summary) {
		return p.Prog.summaryFor(p.Pkg, call)
	})
	s.analyze(ft, body)
	for _, e := range s.effects {
		if e.cond.inherent || e.exit.inherent || e.root.inherent || e.length.inherent {
			return false
		}
	}
	return true
}

// traceBody walks one rank body in source order and emits its collective
// schedule, inlining calls to same-package rank-taking declared functions
// (ExDGram.Apply's literal delegates to applyCase1/applyCase2; the trace is
// the helper's). visiting guards recursion.
func traceBody(prog *Program, pkg *Package, shapes *shapeTable, body *ast.BlockStmt, visiting map[string]bool) []tracedOp {
	st := newSymState(pkg, shapes)
	st.envFixpoint(body)
	var ops []tracedOp
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := st.rankMethodName(call); collectiveNames[name] {
			ops = append(ops, st.collectiveOps(name, call)...)
			return true
		}
		// Inline a same-package rank helper's trace.
		if prog == nil {
			return true
		}
		callee := prog.graph.calleeOf(pkg, call)
		if callee == nil || callee.pkg != pkg || len(rankParams(callee.decl.Type, pkg.TypesInfo)) == 0 {
			return true
		}
		if visiting[callee.id] {
			return true // recursion: trace is not statically bounded here
		}
		next := map[string]bool{callee.id: true}
		for id := range visiting {
			next[id] = true
		}
		ops = append(ops, traceBody(prog, pkg, shapes, callee.decl.Body, next)...)
		return true
	})
	return ops
}

// Traces returns the static collective schedule of every rank function in
// the package, in the order and with the sizes the runtime trace records —
// the artifact behind cmd/extdict-lint -trace and the golden cross-check
// test. Functions without a rank-invariant schedule (flagged by the
// schedule analyzer) and functions with no collectives are omitted. Only
// internal/dist and internal/solver are traced.
func Traces(prog *Program, pkg *Package) []OpTrace {
	if !inAnyPkg(pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
		return nil
	}
	if pkg.TypesInfo == nil {
		return nil
	}
	shapes := buildShapes(pkg)
	var out []OpTrace
	p := &Pass{Analyzer: Schedule, Pkg: pkg, Prog: prog}
	eachRankFunc(pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		if !rankInvariant(p, ft, body) {
			return
		}
		traced := traceBody(prog, pkg, shapes, body, nil)
		if len(traced) == 0 {
			return
		}
		ops := make([]TraceOp, len(traced))
		for i, op := range traced {
			ops[i] = op.TraceOp
		}
		out = append(out, OpTrace{Func: name, Ops: ops})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// symState resolves canonical symbolic values and slice lengths inside one
// rank body, against the package's constructor shape table.
type symState struct {
	pkg    *Package
	info   *types.Info
	shapes *shapeTable

	val  map[types.Object]symExpr // canonical value of locals
	slen map[types.Object]symExpr // canonical slice length of locals
}

func newSymState(pkg *Package, shapes *shapeTable) *symState {
	return &symState{
		pkg:    pkg,
		info:   pkg.TypesInfo,
		shapes: shapes,
		val:    make(map[types.Object]symExpr),
		slen:   make(map[types.Object]symExpr),
	}
}

// envFixpoint records the canonical value and length of every local
// assignment, iterating so definition order does not matter.
func (st *symState) envFixpoint(body *ast.BlockStmt) {
	for iter := 0; iter < 4; iter++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := st.info.Defs[id]
					if obj == nil {
						obj = st.info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if v := st.symVal(s.Rhs[i]); !isUnknown(v) && st.val[obj] == nil {
						st.val[obj] = v
						changed = true
					}
					if l := st.symLen(s.Rhs[i]); !isUnknown(l) && st.slen[obj] == nil {
						st.slen[obj] = l
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

func isUnknown(e symExpr) bool {
	_, ok := e.(symUnknown)
	return ok
}

// rankMethodName is the symState copy of the rank-method test.
func (st *symState) rankMethodName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if t := st.info.TypeOf(sel.X); t != nil && isRankPtr(t) {
		return sel.Sel.Name
	}
	return ""
}

// collectiveOps renders one collective call into trace ops, expanding
// Allreduce to Reduce+Broadcast from root 0 exactly as the runtime does.
func (st *symState) collectiveOps(name string, call *ast.CallExpr) []tracedOp {
	size := "0"
	pos := call.Pos()
	if name != "Barrier" && len(call.Args) >= 1 {
		size = st.symLen(call.Args[0]).render()
		pos = call.Args[0].Pos()
	}
	switch name {
	case "Allreduce":
		return []tracedOp{
			{TraceOp{Op: "Reduce", Root: "0", Size: size}, pos},
			{TraceOp{Op: "Broadcast", Root: "0", Size: size}, pos},
		}
	case "Reduce", "Broadcast":
		root := "?"
		if len(call.Args) == 2 {
			root = st.symVal(call.Args[1]).render()
		}
		return []tracedOp{{TraceOp{Op: name, Root: root, Size: size}, pos}}
	case "Barrier":
		return []tracedOp{{TraceOp{Op: "Barrier", Root: "0", Size: "0"}, call.Pos()}}
	}
	return nil
}

// canonRef resolves a field-reference chain rooted at an operator-typed
// value — g.m, g.scratch[r.ID], g.ranges[r.ID][0], g.scratch[r.ID].vl1 —
// into the operator type name and the canonical shape-table key.
func (st *symState) canonRef(e ast.Expr) (typeName, key string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Field of an indexed slot first (g.scratch[r.ID].vl1), so a named
		// slot struct does not shadow the operator-rooted chain.
		if tn, base, ok := st.canonRef(e.X); ok {
			return tn, base + "." + e.Sel.Name, true
		}
		// Direct field of the operator value (g.m): the root of every chain.
		if id, isIdent := e.X.(*ast.Ident); isIdent {
			t := st.info.TypeOf(id)
			if tn := namedTypeName(t); tn != "" && !isRankPtr(t) {
				if _, isStruct := underlyingStruct(t); isStruct {
					return tn, e.Sel.Name, true
				}
			}
		}
	case *ast.IndexExpr:
		if tn, base, ok := st.canonRef(e.X); ok {
			if lit, isLit := e.Index.(*ast.BasicLit); isLit {
				return tn, base + "[" + lit.Value + "]", true
			}
			return tn, base + "[]", true
		}
	}
	return "", "", false
}

// underlyingStruct unwraps pointers to a struct underlying type.
func underlyingStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	return s, ok
}

// kernelDst recognizes the matrix-vector kernels' destination-return
// contract — MulVec/MulVecT/ParMulVec/ParMulVecT(x, dst, ...) return dst —
// and yields the destination expression. The destination is always the
// second argument; the FastDict chain kernels take two trailing temp
// buffers after it, which must not be mistaken for the result.
func kernelDst(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "MulVec", "MulVecT", "ParMulVec", "ParMulVecT":
		if len(call.Args) >= 2 {
			return call.Args[1], true
		}
	}
	return nil, false
}

// symLen resolves the symbolic length of a slice-valued expression.
func (st *symState) symLen(e ast.Expr) symExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := st.info.Uses[e]; obj != nil {
			if l, ok := st.slen[obj]; ok {
				return l
			}
			// An unresolved slice local or captured parameter: its length is
			// itself the symbol ("len(batch)").
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				return symVar("len(" + e.Name + ")")
			}
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		if tn, key, ok := st.canonRef(e); ok {
			if lens := st.shapes.lens[tn]; lens != nil {
				if l, ok := lens[key]; ok {
					return l
				}
			}
		}
	case *ast.SliceExpr:
		if e.High != nil {
			hi := st.symVal(e.High)
			if isUnknown(hi) {
				return symUnknown{}
			}
			if e.Low == nil {
				return hi
			}
			lo := st.symVal(e.Low)
			if isUnknown(lo) {
				return symUnknown{}
			}
			if c, ok := lo.(symConst); ok && c == 0 {
				return hi
			}
			return symSub{hi, lo}
		}
		if e.Low == nil {
			return st.symLen(e.X)
		}
	case *ast.CallExpr:
		if dst, ok := kernelDst(e); ok {
			return st.symLen(dst)
		}
		if id, ok := e.Fun.(*ast.Ident); ok && isBuiltinObj(st.info.Uses[id]) {
			switch id.Name {
			case "make":
				if len(e.Args) >= 2 {
					return st.symVal(e.Args[1])
				}
			case "append":
				if len(e.Args) > 0 {
					return st.symLen(e.Args[0])
				}
			}
		}
	}
	return symUnknown{}
}

// symVal resolves the canonical symbolic value of an integer expression.
func (st *symState) symVal(e ast.Expr) symExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			if n, err := strconv.ParseInt(e.Value, 0, 64); err == nil {
				return symConst(n)
			}
		}
	case *ast.Ident:
		if obj := st.info.Uses[e]; obj != nil {
			if v, ok := st.val[obj]; ok {
				return v
			}
			return symVar(e.Name)
		}
	case *ast.SelectorExpr:
		if tn, key, ok := st.canonRef(e); ok {
			_ = tn
			return symVar(key)
		}
	case *ast.IndexExpr:
		if _, key, ok := st.canonRef(e); ok {
			return symVar(key)
		}
	case *ast.BinaryExpr:
		a, b := st.symVal(e.X), st.symVal(e.Y)
		if isUnknown(a) || isUnknown(b) {
			return symUnknown{}
		}
		switch e.Op {
		case token.ADD:
			return symAdd{a, b}
		case token.SUB:
			return symSub{a, b}
		case token.MUL:
			return symMul{a, b}
		}
	case *ast.CallExpr:
		if tv, ok := st.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.symVal(e.Args[0]) // conversion: int64(x)
		}
		if id, ok := e.Fun.(*ast.Ident); ok && isBuiltinObj(st.info.Uses[id]) {
			if id.Name == "len" && len(e.Args) == 1 {
				return st.symLen(e.Args[0])
			}
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NNZ" && len(e.Args) == 0 {
			// Sparse population count: canonical over the receiver chain.
			if _, key, ok := st.canonRef(sel.X); ok {
				return symVar("NNZ(" + key + ")")
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := st.info.Uses[id]; obj != nil {
					if v, isVar := st.val[obj].(symVar); isVar {
						return symVar("NNZ(" + string(v) + ")")
					}
				}
				return symVar("NNZ(" + id.Name + ")")
			}
		}
	}
	return symUnknown{}
}
