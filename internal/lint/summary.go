package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// dep is the interprocedural taint lattice element: how a value's
// rank-variance depends on the enclosing function's arguments. The empty
// dep is "uniform on every rank"; inherent means rank-varying no matter
// what the caller passes (derived from a *cluster.Rank parameter's own
// identity); the bitsets defer the verdict to the call site — bit j of
// valParams (lenParams) taints the value when argument j's value (length)
// is rank-varying there. Parameters beyond 64 are ignored (no function in
// this module comes close).
type dep struct {
	inherent  bool
	valParams uint64
	lenParams uint64
}

// or joins two lattice elements.
func (d dep) or(o dep) dep {
	return dep{
		inherent:  d.inherent || o.inherent,
		valParams: d.valParams | o.valParams,
		lenParams: d.lenParams | o.lenParams,
	}
}

// empty reports whether the dep is the bottom element (uniform).
func (d dep) empty() bool { return !d.inherent && d.valParams == 0 && d.lenParams == 0 }

// key renders the dep for summary equality comparison.
func (d dep) key() string {
	return fmt.Sprintf("%v/%x/%x", d.inherent, d.valParams, d.lenParams)
}

// collSig is one collective operation a function (transitively) executes on
// a rank derived from its own parameters, as recorded in its summary: the
// operation plus the argument-dependence of the control condition it runs
// under, its root, and its vector length.
type collSig struct {
	op                 string
	cond, root, length dep
}

func (c collSig) key() string {
	return c.op + "|" + c.cond.key() + "|" + c.root.key() + "|" + c.length.key()
}

// summary is one function's interprocedural abstract: the rank-variance
// its results inherit from its arguments (retVal by value, retLen by
// length), and the collectives it reaches on ranks it was handed. The
// collective analyzer instantiates summaries at call sites; the schedule
// analyzer splices callee traces through the same call graph.
type summary struct {
	retVal []dep
	retLen []dep
	colls  []collSig

	// Concurrency facts (conc.go), consumed by the sharedstate/lockorder/
	// detorder analyzers. locks is the sorted transitive set of mutexes the
	// function may acquire; netLocks are the mutexes still held at return
	// (lock helpers); escParams has bit j set when the j-th call-site
	// argument (receiver counts as 0) is a func value that escapes to
	// another goroutine inside the callee; detVia is "" when the function is
	// determinism-clean and otherwise names the transitive clock/rand seed.
	locks     []string
	netLocks  []string
	escParams uint64
	detVia    string
}

// equal compares summaries structurally (colls are kept sorted by key).
func (s *summary) equal(o *summary) bool {
	if o == nil {
		return false
	}
	if len(s.retVal) != len(o.retVal) || len(s.colls) != len(o.colls) {
		return false
	}
	for i := range s.retVal {
		if s.retVal[i] != o.retVal[i] || s.retLen[i] != o.retLen[i] {
			return false
		}
	}
	for i := range s.colls {
		if s.colls[i] != o.colls[i] {
			return false
		}
	}
	if s.escParams != o.escParams || s.detVia != o.detVia {
		return false
	}
	if !equalStrings(s.locks, o.locks) || !equalStrings(s.netLocks, o.netLocks) {
		return false
	}
	return true
}

// maxSummaryColls bounds a summary's collective list so the global fixpoint
// terminates even on pathological inputs; beyond the cap the remaining
// signatures are dropped (the first cap entries still catch divergence).
const maxSummaryColls = 64

// computeSummaries runs the whole-program fixpoint: every node is
// re-analyzed against the current summaries of its callees until no summary
// changes. Deps only grow and colls are deduped and capped, so the lattice
// is finite and the loop terminates; the iteration cap is a backstop for
// the pathological case, not a correctness requirement.
func computeSummaries(cg *callGraph) map[string]*summary {
	sums := make(map[string]*summary)
	ids := cg.sortedNodeIDs()
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, id := range ids {
			n := cg.nodes[id]
			s := analyzeNode(cg, sums, n)
			if !s.equal(sums[id]) {
				sums[id] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// analyzeNode computes one node's summary against the given callee
// summaries.
func analyzeNode(cg *callGraph, sums map[string]*summary, n *funcNode) *summary {
	s := newSpmd(n.pkg, func(call *ast.CallExpr) (*funcNode, *summary) {
		callee := cg.calleeOf(n.pkg, call)
		if callee == nil {
			return nil, nil
		}
		return callee, sums[callee.id]
	})
	for i, obj := range n.params {
		if obj == nil || i >= 64 {
			continue
		}
		s.params[obj] = i
		s.val[obj] = dep{valParams: 1 << i}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			s.length[obj] = dep{lenParams: 1 << i}
		}
	}
	s.analyze(n.decl.Type, n.decl.Body)

	out := &summary{}
	if res := n.decl.Type.Results; res != nil {
		nres := 0
		for _, f := range res.List {
			if len(f.Names) == 0 {
				nres++
			} else {
				nres += len(f.Names)
			}
		}
		out.retVal = make([]dep, nres)
		out.retLen = make([]dep, nres)
		for i := 0; i < nres && i < len(s.retVal); i++ {
			out.retVal[i] = s.retVal[i]
			out.retLen[i] = s.retLen[i]
		}
	}
	seen := make(map[string]bool)
	for _, e := range s.effects {
		sig := collSig{op: e.op, cond: e.cond.or(e.exit), root: e.root, length: e.length}
		if k := sig.key(); !seen[k] {
			seen[k] = true
			out.colls = append(out.colls, sig)
		}
		if len(out.colls) >= maxSummaryColls {
			break
		}
	}
	sort.Slice(out.colls, func(i, j int) bool { return out.colls[i].key() < out.colls[j].key() })
	concSummarize(cg, sums, n, out)
	return out
}

// effect is one collective operation observed during a function walk, with
// the positions the collective analyzer reports at. via names the callee
// chain head when the collective is reached through a call rather than
// executed directly.
type effect struct {
	op  string
	via string

	pos, rootPos, lenPos token.Pos

	cond   dep // control condition governing the site
	exit   dep // divergent early exit preceding the site in source order
	root   dep
	length dep
}

// spmd is the dep-lattice SPMD walker shared by the collective analyzer
// (reporting mode: findings are effects whose deps are inherent) and the
// summary computation (the same effects and return deps, parameterized by
// the function's own arguments).
type spmd struct {
	pkg     *Package
	info    *types.Info
	resolve func(*ast.CallExpr) (*funcNode, *summary)

	params map[types.Object]int

	val     map[types.Object]dep    // rank-variance of variable values
	length  map[types.Object]dep    // rank-variance of slice lengths
	collVal map[types.Object]string // variables bound to collective method values

	exit    dep // accumulated divergent-early-exit dep, in source order
	effects []effect

	retVal []dep
	retLen []dep
}

func newSpmd(pkg *Package, resolve func(*ast.CallExpr) (*funcNode, *summary)) *spmd {
	return &spmd{
		pkg:     pkg,
		info:    pkg.TypesInfo,
		resolve: resolve,
		params:  make(map[types.Object]int),
		val:     make(map[types.Object]dep),
		length:  make(map[types.Object]dep),
		collVal: make(map[types.Object]string),
	}
}

// analyze runs both passes over a function body: the assignment fixpoint
// that stabilizes variable deps, then the control-flow walk that records
// collective effects and return deps.
func (s *spmd) analyze(ft *ast.FuncType, body *ast.BlockStmt) {
	s.taintFixpoint(body)
	s.walkStmts(body.List, dep{})
}

// taintFixpoint propagates value- and length-deps through assignments until
// the environment stops growing, so later uses see taint no matter where
// the defining statement sits. Nested function literals are skipped — they
// are analyzed as functions of their own.
func (s *spmd) taintFixpoint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						changed = s.assign(lhs, st.Rhs[i]) || changed
					}
				} else if len(st.Rhs) == 1 {
					// Multi-value call/map/type lookup: known callees
					// contribute per-result deps, everything else is uniform.
					changed = s.assignMulti(st.Lhs, st.Rhs[0]) || changed
				}
			case *ast.RangeStmt:
				// Ranging over a length-tainted slice (or a rank-varying
				// count) gives the key rank-varying bounds.
				if d := s.lenDep(st.X).or(s.valDep(st.X)); !d.empty() {
					if st.Key != nil {
						changed = s.mergeVar(st.Key, d, dep{}) || changed
					}
					if st.Value != nil {
						changed = s.mergeVar(st.Value, d, dep{}) || changed
					}
				}
			case *ast.GenDecl:
				for _, spec := range st.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						changed = s.assign(name, vs.Values[i]) || changed
					}
				}
			}
			return true
		})
	}
}

// assign records the deps of rhs flowing into the lvalue, including method
// values of collectives (op := r.Reduce), reporting whether anything grew.
func (s *spmd) assign(lhs ast.Expr, rhs ast.Expr) bool {
	changed := s.mergeVar(lhs, s.valDep(rhs), s.lenDep(rhs))
	if name := s.collMethodValue(rhs); name != "" {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := s.objOf(id); obj != nil && s.collVal[obj] != name {
				s.collVal[obj] = name
				changed = true
			}
		}
	}
	return changed
}

// assignMulti handles a, b := f(): per-result deps from a known callee.
func (s *spmd) assignMulti(lhs []ast.Expr, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || s.resolve == nil {
		return false
	}
	callee, sum := s.resolve(call)
	if sum == nil || len(sum.retVal) < len(lhs) {
		return false
	}
	changed := false
	for i, l := range lhs {
		v := s.instantiateVal(sum.retVal[i], call, callee)
		ln := s.instantiateLen(sum.retLen[i], call, callee)
		changed = s.mergeVar(l, v, ln) || changed
	}
	return changed
}

// mergeVar joins deps into an identifier's environment entry.
func (s *spmd) mergeVar(lhs ast.Expr, v, ln dep) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := s.objOf(id)
	if obj == nil {
		return false
	}
	changed := false
	if nv := s.val[obj].or(v); nv != s.val[obj] {
		s.val[obj] = nv
		changed = true
	}
	if nl := s.length[obj].or(ln); nl != s.length[obj] {
		s.length[obj] = nl
		changed = true
	}
	return changed
}

func (s *spmd) objOf(id *ast.Ident) types.Object {
	if obj := s.info.Defs[id]; obj != nil {
		return obj
	}
	return s.info.Uses[id]
}

// rankMethod returns the method name when call is r.<Method>(...) on a
// *cluster.Rank value, else "".
func (s *spmd) rankMethod(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if t := s.info.TypeOf(sel.X); t != nil && isRankPtr(t) {
		return sel.Sel.Name
	}
	return ""
}

// collMethodValue recognizes an uncalled collective method value
// (r.Reduce as an expression), the seed of indirect collective calls.
func (s *spmd) collMethodValue(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !collectiveNames[sel.Sel.Name] {
		return ""
	}
	if t := s.info.TypeOf(sel.X); t != nil && isRankPtr(t) {
		return sel.Sel.Name
	}
	return ""
}

// collCallName resolves the collective name of a call: a direct rank
// method, or an identifier bound to a collective method value.
func (s *spmd) collCallName(call *ast.CallExpr) string {
	if name := s.rankMethod(call); collectiveNames[name] {
		return name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := s.info.Uses[id]; obj != nil {
			return s.collVal[obj]
		}
	}
	return ""
}

// valDep reports how e's value varies across ranks.
func (s *spmd) valDep(e ast.Expr) dep {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.info.Uses[e]; obj != nil {
			return s.val[obj]
		}
		return dep{}
	case *ast.SelectorExpr:
		// r.ID is the seed; a field of a tainted value stays tainted.
		if t := s.info.TypeOf(e.X); t != nil && isRankPtr(t) {
			if e.Sel.Name == "ID" {
				return dep{inherent: true}
			}
			return dep{}
		}
		return s.valDep(e.X)
	case *ast.CallExpr:
		return s.callValDep(e)
	case *ast.BinaryExpr:
		return s.valDep(e.X).or(s.valDep(e.Y))
	case *ast.UnaryExpr:
		return s.valDep(e.X)
	case *ast.ParenExpr:
		return s.valDep(e.X)
	case *ast.IndexExpr:
		return s.valDep(e.X).or(s.valDep(e.Index))
	case *ast.SliceExpr:
		// A rank-local window into a shared vector holds rank-varying values.
		d := s.valDep(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				d = d.or(s.valDep(b))
			}
		}
		return d
	case *ast.StarExpr:
		return s.valDep(e.X)
	}
	return dep{}
}

// callValDep is valDep for call expressions: conversions pass their operand
// through, rank methods follow the Rank contract (Node varies, P and the
// collectives are uniform), len/cap read the operand's length-dep, known
// callees contribute their instantiated return dep, and unknown calls fall
// back to "a function of rank-varying arguments is rank-varying".
func (s *spmd) callValDep(e *ast.CallExpr) dep {
	if tv, ok := s.info.Types[e.Fun]; ok && tv.IsType() { // conversion
		if len(e.Args) == 1 {
			return s.valDep(e.Args[0])
		}
		return dep{}
	}
	switch s.rankMethod(e) {
	case "Node":
		return dep{inherent: true}
	case "P", "AddFlops", "AddBytes", "AddResident", "Allreduce", "Reduce", "Broadcast", "Barrier":
		return dep{} // uniform by contract (collectives return nothing)
	}
	if id, ok := e.Fun.(*ast.Ident); ok && isBuiltinObj(s.info.Uses[id]) {
		switch id.Name {
		case "len", "cap":
			if len(e.Args) == 1 {
				return s.lenDep(e.Args[0])
			}
			return dep{}
		}
		d := dep{}
		for _, arg := range e.Args {
			d = d.or(s.valDep(arg))
		}
		return d
	}
	if s.resolve != nil {
		if callee, sum := s.resolve(e); sum != nil {
			if len(sum.retVal) == 1 {
				return s.instantiateVal(sum.retVal[0], e, callee)
			}
			if len(sum.retVal) > 1 {
				return dep{} // handled positionally in assignMulti
			}
			return dep{}
		}
	}
	d := dep{}
	for _, arg := range e.Args {
		d = d.or(s.valDep(arg))
	}
	return d
}

// lenDep reports how the slice e's length varies across ranks.
func (s *spmd) lenDep(e ast.Expr) dep {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.info.Uses[e]; obj != nil {
			return s.length[obj]
		}
		return dep{}
	case *ast.ParenExpr:
		return s.lenDep(e.X)
	case *ast.SliceExpr:
		d := dep{}
		explicit := false
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				explicit = true
				d = d.or(s.valDep(b))
			}
		}
		if !explicit || e.High == nil {
			// x[lo:] keeps a dependence on the base length.
			d = d.or(s.lenDep(e.X))
		}
		return d
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && isBuiltinObj(s.info.Uses[id]) {
			switch id.Name {
			case "make":
				if len(e.Args) >= 2 {
					return s.valDep(e.Args[1])
				}
				return dep{}
			case "append":
				if len(e.Args) > 0 {
					return s.lenDep(e.Args[0])
				}
				return dep{}
			}
			return dep{}
		}
		if s.resolve != nil {
			if callee, sum := s.resolve(e); sum != nil && len(sum.retLen) == 1 {
				return s.instantiateLen(sum.retLen[0], e, callee)
			}
		}
		// Unknown call results are length-unknown, treated uniform: a kernel
		// like blk.MulVec(x[lo:hi], nil) returns a block-shaped vector whose
		// length the analysis cannot see, and flagging it would drown the
		// real findings.
		return dep{}
	}
	return dep{}
}

// instantiateVal maps a callee-relative value dep into the caller's frame
// by substituting argument deps for parameter bits.
func (s *spmd) instantiateVal(d dep, call *ast.CallExpr, callee *funcNode) dep {
	out := dep{inherent: d.inherent}
	args := callArgs(s.pkg, call, callee)
	for j, arg := range args {
		if j >= 64 {
			break
		}
		if d.valParams&(1<<j) != 0 {
			out = out.or(s.valDep(arg))
		}
		if d.lenParams&(1<<j) != 0 {
			out = out.or(s.lenDep(arg))
		}
	}
	return out
}

// instantiateLen maps a callee-relative length dep into the caller's frame.
// Argument-length bits substitute fully; argument-value bits substitute
// only for integer parameters. A returned slice's length can genuinely vary
// through an integer size argument (make inside the callee) or an argument
// slice's own length — but a value-dep on a struct or matrix argument is
// the shape-field chain (m.Rows inside MulVec), and the kernels' contract
// is that dimension fields are uniform even when the per-rank block values
// differ; substituting those bits would flag every scratch-buffer kernel
// result, drowning the real findings.
func (s *spmd) instantiateLen(d dep, call *ast.CallExpr, callee *funcNode) dep {
	out := dep{inherent: d.inherent}
	args := callArgs(s.pkg, call, callee)
	for j, arg := range args {
		if j >= 64 {
			break
		}
		if d.lenParams&(1<<j) != 0 {
			out = out.or(s.lenDep(arg))
		}
		if d.valParams&(1<<j) != 0 && j < len(callee.params) && isIntObj(callee.params[j]) {
			out = out.or(s.valDep(arg))
		}
	}
	return out
}

// isIntObj reports whether the parameter object has integer type.
func isIntObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// walkStmts walks statements in source order. div is the control-divergence
// dep in force; s.exit persists across the walk once a rank-varying return
// has been seen.
func (s *spmd) walkStmts(list []ast.Stmt, div dep) {
	for _, st := range list {
		s.walkStmt(st, div)
	}
}

func (s *spmd) walkStmt(st ast.Stmt, div dep) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.walkStmts(st.List, div)
	case *ast.IfStmt:
		if st.Init != nil {
			s.walkStmt(st.Init, div)
		}
		s.scanExpr(st.Cond, div)
		branchDiv := div.or(s.valDep(st.Cond))
		s.walkStmt(st.Body, branchDiv)
		if st.Else != nil {
			s.walkStmt(st.Else, branchDiv)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.walkStmt(st.Init, div)
		}
		loopDiv := div
		if st.Cond != nil {
			s.scanExpr(st.Cond, div)
			loopDiv = loopDiv.or(s.valDep(st.Cond))
		}
		// A break/continue under a rank-varying condition desynchronizes the
		// whole loop: iteration counts differ, so every collective inside —
		// even before the branch statement — can mismatch.
		loopDiv = loopDiv.or(s.loopExitDep(st.Body))
		s.walkStmt(st.Body, loopDiv)
		if st.Post != nil {
			s.walkStmt(st.Post, loopDiv)
		}
	case *ast.RangeStmt:
		s.scanExpr(st.X, div)
		loopDiv := div.or(s.lenDep(st.X)).or(s.valDep(st.X)).or(s.loopExitDep(st.Body))
		s.walkStmt(st.Body, loopDiv)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.walkStmt(st.Init, div)
		}
		caseDiv := div
		if st.Tag != nil {
			s.scanExpr(st.Tag, div)
			caseDiv = caseDiv.or(s.valDep(st.Tag))
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			d := caseDiv
			for _, e := range cc.List {
				d = d.or(s.valDep(e))
			}
			s.walkStmts(cc.Body, d)
		}
	case *ast.TypeSwitchStmt:
		s.walkStmt(st.Body, div)
	case *ast.SelectStmt:
		s.walkStmt(st.Body, div)
	case *ast.CommClause:
		s.walkStmts(st.Body, div)
	case *ast.ReturnStmt:
		for i, e := range st.Results {
			s.scanExpr(e, div)
			s.mergeRet(i, s.valDep(e), s.lenDep(e))
		}
		s.exit = s.exit.or(div)
	case *ast.BranchStmt:
		// break/continue divergence is handled by loopExitDep; a goto
		// under a tainted condition is treated like a return.
		if st.Tok == token.GOTO {
			s.exit = s.exit.or(div)
		}
	case *ast.ExprStmt:
		s.scanExpr(st.X, div)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.scanExpr(e, div)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, div)
					}
				}
			}
		}
	case *ast.DeferStmt:
		s.scanExpr(st.Call, div)
	case *ast.GoStmt:
		s.scanExpr(st.Call, div)
	case *ast.LabeledStmt:
		s.walkStmt(st.Stmt, div)
	case *ast.SendStmt:
		s.scanExpr(st.Value, div)
	}
}

// mergeRet joins deps into the i-th return slot.
func (s *spmd) mergeRet(i int, v, ln dep) {
	for len(s.retVal) <= i {
		s.retVal = append(s.retVal, dep{})
		s.retLen = append(s.retLen, dep{})
	}
	s.retVal[i] = s.retVal[i].or(v)
	s.retLen[i] = s.retLen[i].or(ln)
}

// loopExitDep pre-scans a loop body for a break or continue under a
// rank-varying condition, without descending into nested loops (their
// break/continue bind to themselves) or function literals, and returns the
// joined condition dep of every such exit.
func (s *spmd) loopExitDep(body *ast.BlockStmt) dep {
	var walk func(st ast.Stmt, tainted dep) dep
	walkList := func(list []ast.Stmt, tainted dep) dep {
		out := dep{}
		for _, st := range list {
			out = out.or(walk(st, tainted))
		}
		return out
	}
	walk = func(st ast.Stmt, tainted dep) dep {
		switch st := st.(type) {
		case *ast.BranchStmt:
			if st.Tok == token.BREAK || st.Tok == token.CONTINUE {
				return tainted
			}
			return dep{}
		case *ast.BlockStmt:
			return walkList(st.List, tainted)
		case *ast.IfStmt:
			t := tainted.or(s.valDep(st.Cond))
			out := walk(st.Body, t)
			if st.Else != nil {
				out = out.or(walk(st.Else, t))
			}
			return out
		case *ast.SwitchStmt:
			t := tainted
			if st.Tag != nil {
				t = t.or(s.valDep(st.Tag))
			}
			out := dep{}
			for _, c := range st.Body.List {
				cc := c.(*ast.CaseClause)
				d := t
				for _, e := range cc.List {
					d = d.or(s.valDep(e))
				}
				// break inside a switch binds to the switch, not the loop.
				for _, inner := range cc.Body {
					if bs, ok := inner.(*ast.BranchStmt); ok && bs.Tok == token.BREAK && bs.Label == nil {
						continue
					}
					out = out.or(walk(inner, d))
				}
			}
			return out
		case *ast.LabeledStmt:
			return walk(st.Stmt, tainted)
		}
		return dep{}
	}
	return walkList(body.List, dep{})
}

// scanExpr descends into an expression recording every collective effect it
// contains — direct collective calls, indirect calls through collective
// method values, and calls to functions whose summaries reach collectives —
// given the control context div it executes under.
func (s *spmd) scanExpr(e ast.Expr, div dep) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed on its own if it takes a rank
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s.recordCall(call, div)
		return true
	})
}

// recordCall inspects one call site for collective effects.
func (s *spmd) recordCall(call *ast.CallExpr, div dep) {
	if name := s.collCallName(call); name != "" {
		e := effect{
			op:   name,
			pos:  call.Pos(),
			cond: div,
			exit: s.exit,
		}
		if (name == "Reduce" || name == "Broadcast") && len(call.Args) == 2 {
			e.root = s.valDep(call.Args[1])
			e.rootPos = call.Args[1].Pos()
		}
		if name != "Barrier" && len(call.Args) >= 1 {
			e.length = s.lenDep(call.Args[0])
			e.lenPos = call.Args[0].Pos()
		}
		s.effects = append(s.effects, e)
		return
	}
	if s.resolve == nil {
		return
	}
	callee, sum := s.resolve(call)
	if sum == nil || len(sum.colls) == 0 {
		return
	}
	for _, sig := range sum.colls {
		e := effect{
			op:      sig.op,
			via:     callee.name,
			pos:     call.Pos(),
			rootPos: call.Pos(),
			lenPos:  call.Pos(),
			cond:    div.or(s.instantiateVal(sig.cond, call, callee)),
			exit:    s.exit,
			root:    s.instantiateVal(sig.root, call, callee),
			length:  s.instantiateLen(sig.length, call, callee),
		}
		s.effects = append(s.effects, e)
	}
}

// describeVia renders the "reached through helper" suffix of a finding.
func describeVia(via string) string {
	if via == "" {
		return ""
	}
	return fmt.Sprintf(" (reached inside %s)", via)
}

// sortEffects orders effects by position for deterministic reporting.
func sortEffects(effects []effect) {
	sort.SliceStable(effects, func(i, j int) bool { return effects[i].pos < effects[j].pos })
}

// importPathSuffix trims the module prefix for compact display names.
func importPathSuffix(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
