package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detOrderPkgs are the result-affecting packages: everything they compute
// flows into solver outputs, chaos replay digests, or benchmark baselines,
// all of which the repository pins bit-for-bit. internal/cluster/clustertest
// is excluded by name — it is test scaffolding (watchdog timers around rank
// functions) whose select-on-timeout never touches a result.
var detOrderPkgs = []string{
	"extdict/internal/mat",
	"extdict/internal/cluster",
	"extdict/internal/omp",
	"extdict/internal/dist",
}

const detOrderExcluded = "extdict/internal/cluster/clustertest"

// DetOrder is the determinism-taint analyzer over the result-affecting
// packages: no map-range iteration (order varies per run), no select over
// multiple ready channels (a scheduling race), no unordered merges —
// floating-point accumulation into a captured variable from concurrent
// goroutines, or a merge loop consuming channel receives in arrival order
// — and, whole-program through the summary lattice, no path from a
// result-affecting function to a wall-clock or math/rand read even when
// the read hides in a package the per-file norand/noclock allowlists
// permit. The one pinned exemption is cluster.(Comm).Run's Stats.Wall
// measurement, which is observational (see conc.go, wallSinkExempt).
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "result-affecting packages must be schedule-independent: no map ranges, multi-ready selects, unordered concurrent merges, or transitive clock/rand reads; " +
		"iterate sorted keys, merge partials in fixed order, and thread randomness through internal/rng",
	SkipTests: true,
	Run:       runDetOrder,
}

// runDetOrder applies the four syntactic rules per function and the
// whole-program taint rule at call sites.
func runDetOrder(p *Pass) {
	if !inAnyPkg(p.Pkg.ImportPath, detOrderPkgs...) || hasPrefixPkg(p.Pkg.ImportPath, detOrderExcluded) {
		return
	}
	if p.Pkg.TypesInfo == nil {
		return
	}
	p.EachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			detOrderFunc(p, decl)
		}
	})
}

// detOrderFunc checks one function body.
func detOrderFunc(p *Pass, decl *ast.FuncDecl) {
	info := p.Pkg.TypesInfo
	sites := launchSites(p.Prog, p.Pkg, decl.Body)
	launched := make(map[*ast.FuncLit]bool, len(sites))
	for _, s := range sites {
		launched[s.lit] = true
	}

	// walk visits one function body; lit is the innermost launched literal
	// (nil outside any), the scope boundary that defines "captured".
	var walk func(body ast.Node, lit *ast.FuncLit)
	walk = func(body ast.Node, lit *ast.FuncLit) {
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				inner := lit
				if launched[x] {
					inner = x
				}
				walk(x.Body, inner)
				return false
			case *ast.RangeStmt:
				if t := p.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !keyCollectRange(x) {
						p.Reportf(x.Pos(), "range over map %s in a result-affecting path iterates in randomized order; collect and sort the keys first",
							types.ExprString(x.X))
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.Reportf(x.Pos(), "select over %d channels resolves by scheduling when several are ready; receive in a fixed order instead", comm)
				}
			case *ast.AssignStmt:
				detOrderAssign(p, info, x, lit)
			case *ast.IncDecStmt:
				// ++/-- on floats is a concurrent-merge hazard like += 1.
				if lit != nil {
					if l, t, exempt := lvalueLoc(info, x.X); !exempt && l.obj != nil && isFloat(t) && declaredOutside(l.obj, lit) {
						p.Reportf(x.Pos(), "floating-point update of captured %s inside a concurrently-launched function makes the merge order scheduling-dependent; accumulate into a per-worker partial and merge in fixed order", l.display())
					}
				}
			case *ast.CallExpr:
				detOrderCall(p, x)
			}
			return true
		})
	}
	walk(decl.Body, nil)

	// Direct clock/rand seeds in this function (minus the pinned Wall
	// exemption) — the whole-program cross-check of norand/noclock.
	fnID := declFuncID(p.Pkg, decl)
	if fnID == wallSinkExempt {
		return
	}
	ast.Inspect(decl.Body, func(x ast.Node) bool {
		ident, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[ident]
		if obj == nil {
			return true
		}
		if isClockObj(obj) {
			p.Reportf(ident.Pos(), "result-affecting path reads the wall clock (time.%s); hoist measurement out of the kernel or record it observationally like cluster.Stats.Wall", obj.Name())
			return true
		}
		if fn, isFn := obj.(*types.Func); isFn && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				p.Reportf(ident.Pos(), "result-affecting path draws from math/rand (rand.%s); thread randomness through internal/rng", fn.Name())
			}
		}
		return true
	})
}

// detOrderAssign flags the two unordered-merge shapes on assignments:
// a compound floating-point update of a captured variable inside a
// launched literal (the WaitGroup-merge race — even a mutex around it
// leaves the addition order scheduling-dependent), and a compound update
// whose right-hand side consumes a channel receive (arrival-order merge).
func detOrderAssign(p *Pass, info *types.Info, st *ast.AssignStmt, lit *ast.FuncLit) {
	compound := st.Tok != token.ASSIGN && st.Tok != token.DEFINE
	if !compound {
		return
	}
	for _, rhs := range st.Rhs {
		recv := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = true
			}
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
		if recv {
			p.Reportf(st.Pos(), "compound assignment folds in a channel receive, so the result depends on arrival order; receive into indexed slots and merge in fixed order")
			return
		}
	}
	if lit == nil {
		return
	}
	for _, lhs := range st.Lhs {
		l, t, exempt := lvalueLoc(info, lhs)
		if exempt || l.obj == nil || !isFloat(t) {
			continue
		}
		if !declaredOutside(l.obj, lit) {
			continue
		}
		p.Reportf(st.Pos(), "floating-point accumulation into captured %s inside a concurrently-launched function makes the merge order scheduling-dependent; accumulate into a per-worker partial and merge in fixed order", l.display())
		return
	}
}

// detOrderCall flags call sites whose callee transitively reaches a clock
// or math/rand read — but only callees outside the detorder scope, which
// report their own seeds directly; this is where a result-affecting kernel
// calling into an allowlisted package (internal/perf may read clocks) gets
// caught.
func detOrderCall(p *Pass, call *ast.CallExpr) {
	callee, sum := p.Prog.summaryFor(p.Pkg, call)
	if sum == nil || sum.detVia == "" {
		return
	}
	if inAnyPkg(callee.pkg.ImportPath, detOrderPkgs...) && !hasPrefixPkg(callee.pkg.ImportPath, detOrderExcluded) {
		return // reported at its own seed
	}
	p.Reportf(call.Pos(), "call to %s reaches a nondeterministic read (%s) on a result-affecting path; hoist it out of the kernel or thread the value in as an argument",
		callee.name, sum.detVia)
}

// keyCollectRange recognizes the canonical fix — a key-only map range whose
// single statement appends the key to a slice for later sorting — so the
// rewrite the map-range message suggests does not itself trip the rule.
func keyCollectRange(r *ast.RangeStmt) bool {
	if r.Value != nil || r.Body == nil || len(r.Body.List) != 1 {
		return false
	}
	key, ok := r.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether obj's declaration lies outside node n.
func declaredOutside(obj types.Object, n ast.Node) bool {
	return obj.Pos() < n.Pos() || obj.Pos() >= n.End()
}
