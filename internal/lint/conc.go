package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared machinery behind the three concurrency analyzers
// (sharedstate, lockorder, detorder): canonical lock identities, a
// branch-sensitive lockset walker, the escape analysis that decides which
// function literals run on another goroutine (directly via `go` or
// indirectly through the internal/mat worker pool), and the determinism
// taint seeds. The interprocedural halves — which locks a function
// transitively acquires, which of its func-typed parameters escape to a
// goroutine, whether it transitively reaches a clock read or a global
// math/rand draw — live in the summary lattice (summary.go) and are
// computed by concSummarize inside the same whole-program fixpoint the
// collective analyzers use.

// maxSummaryLocks bounds a summary's transitive lock set so the fixpoint
// lattice stays finite; no type in this module declares more than two locks.
const maxSummaryLocks = 16

// lockMethods classifies the sync.Mutex/RWMutex methods by their effect on
// the holder's lockset. TryLock acquires only conditionally, so the linear
// walker treats a TryLock like a Lock (over-approximation: the guarded
// branch is where the lock matters).
var lockMethods = map[string]int{
	"Lock": +1, "RLock": +1, "TryLock": +1, "TryRLock": +1,
	"Unlock": -1, "RUnlock": -1,
}

// lockCall recognizes a sync.Mutex/sync.RWMutex (un)lock call and returns
// the canonical id of the mutex plus the lockset delta (+1 acquire,
// -1 release). Embedded mutexes resolve through the used method object, so
// `c.Lock()` on a struct embedding sync.Mutex is seen too.
func lockCall(pkg *Package, fn string, call *ast.CallExpr) (id string, delta int, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK || pkg.TypesInfo == nil {
		return "", 0, false
	}
	d, named := lockMethods[sel.Sel.Name]
	if !named {
		return "", 0, false
	}
	m, mOK := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !mOK || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", 0, false
	}
	return lockExprID(pkg, fn, sel.X), d, true
}

// lockExprID canonicalizes a mutex-valued expression to a stable id:
// "pkg.(Type).field" for a struct field (instances of one type share an id —
// the type-level abstraction standard for static lock-order analysis),
// "pkg.var" for a package-level mutex, and "funcID$name" for a
// function-local one. Expressions the canonicalizer cannot resolve render
// as their syntax, scoped to the function, so distinct unknown mutexes do
// not alias each other across functions.
func lockExprID(pkg *Package, fn string, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := pkg.TypesInfo.ObjectOf(x)
		if obj == nil {
			return fn + "$" + x.Name
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + x.Name
		}
		return fn + "$" + x.Name
	case *ast.SelectorExpr:
		if t := pkg.TypesInfo.TypeOf(x.X); t != nil {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if n, isNamed := t.(*types.Named); isNamed && n.Obj().Pkg() != nil {
				return fmt.Sprintf("%s.(%s).%s", n.Obj().Pkg().Path(), n.Obj().Name(), x.Sel.Name)
			}
		}
		return fn + "$" + renderExpr(x)
	case *ast.StarExpr:
		return lockExprID(pkg, fn, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockExprID(pkg, fn, x.X)
		}
	}
	return fn + "$" + renderExpr(e)
}

// renderExpr flat-prints a small expression for lock-id fallbacks.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[]"
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	}
	return "?"
}

// lockDisplay trims module and package prefixes from a lock id for
// human-readable findings: "extdict/internal/cluster.(Comm).mu" → "(Comm).mu",
// "extdict/internal/lint.F$mu" → "F$mu".
func lockDisplay(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.Index(id, "."); i >= 0 && !strings.HasPrefix(id[i+1:], "(") {
		// "pkg.var" keeps the package for context only when it is short.
		return id[i+1:]
	}
	if i := strings.Index(id, ".("); i >= 0 {
		return id[i+1:]
	}
	return id
}

// lockEdge is one order observation: to was acquired while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee display name when the acquisition is indirect
}

// heldExit is one function-exit point (return or fall-off-the-end) with
// locks still held after deferred unlocks are applied.
type heldExit struct {
	pos   token.Pos
	locks []string
}

// lockFlow walks one function body with a branch-sensitive lockset and
// reports the observations the concurrency analyzers consume.
type lockFlow struct {
	pkg     *Package
	fn      string // enclosing funcID, scopes local lock names
	resolve func(*ast.CallExpr) (*funcNode, *summary)

	deferred map[string]bool // unlocks registered via defer
	edges    []lockEdge
	exits    []heldExit
	loopBad  []heldExit // lock/unlock imbalance across one loop iteration

	// on, when set, observes every expression with the lockset held at its
	// evaluation. sharedstate uses it to learn the guard of each access.
	on func(e ast.Expr, held map[string]bool)
}

func newLockFlow(pkg *Package, fn string, resolve func(*ast.CallExpr) (*funcNode, *summary)) *lockFlow {
	return &lockFlow{pkg: pkg, fn: fn, resolve: resolve, deferred: make(map[string]bool)}
}

// walk runs the flow over a body starting from an empty lockset and records
// the fall-off-the-end exit.
func (lf *lockFlow) walk(body *ast.BlockStmt) {
	held := make(map[string]bool)
	terminated := lf.stmts(body.List, held)
	if !terminated {
		lf.exit(body.End(), held)
	}
}

// exit records an exit point if locks survive the deferred unlocks.
func (lf *lockFlow) exit(pos token.Pos, held map[string]bool) {
	var rest []string
	for id := range held {
		if !lf.deferred[id] {
			rest = append(rest, id)
		}
	}
	if len(rest) > 0 {
		sort.Strings(rest)
		lf.exits = append(lf.exits, heldExit{pos: pos, locks: rest})
	}
}

// stmts walks a statement list, mutating held; reports whether the list
// definitely terminates (return / panic-like) before falling through.
func (lf *lockFlow) stmts(list []ast.Stmt, held map[string]bool) bool {
	for _, st := range list {
		if lf.stmt(st, held) {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortedHeld(held map[string]bool) []string {
	out := make([]string, 0, len(held))
	for id := range held {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// stmt walks one statement; returns true when control definitely leaves the
// enclosing function (return) or the current path (panic).
func (lf *lockFlow) stmt(st ast.Stmt, held map[string]bool) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		lf.expr(st.X, held)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltinObj(lf.pkg.TypesInfo.Uses[id]) {
				return true // deferred unlocks run during the unwind
			}
		}
	case *ast.DeferStmt:
		lf.exprChildren(st.Call, held)
		if id, delta, ok := lockCall(lf.pkg, lf.fn, st.Call); ok && delta < 0 {
			lf.deferred[id] = true
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			lf.expr(e, held)
		}
		for _, e := range st.Lhs {
			lf.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			lf.expr(e, held)
		}
		lf.exit(st.Pos(), held)
		return true
	case *ast.BlockStmt:
		return lf.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			lf.stmt(st.Init, held)
		}
		lf.expr(st.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := lf.stmt(st.Body, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if st.Else != nil {
			elseTerm = lf.stmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			// Join by intersection: a lock held on only one surviving branch
			// is not reliably held afterwards.
			joinHeld(held, thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lf.stmt(st.Init, held)
		}
		if st.Cond != nil {
			lf.expr(st.Cond, held)
		}
		before := sortedHeld(held)
		bodyHeld := copyHeld(held)
		lf.stmt(st.Body, bodyHeld)
		if st.Post != nil {
			lf.stmt(st.Post, bodyHeld)
		}
		if after := sortedHeld(bodyHeld); !equalStrings(before, after) {
			lf.loopBad = append(lf.loopBad, heldExit{pos: st.Pos(), locks: diffStrings(before, after)})
		}
	case *ast.RangeStmt:
		lf.expr(st.X, held)
		before := sortedHeld(held)
		bodyHeld := copyHeld(held)
		lf.stmt(st.Body, bodyHeld)
		if after := sortedHeld(bodyHeld); !equalStrings(before, after) {
			lf.loopBad = append(lf.loopBad, heldExit{pos: st.Pos(), locks: diffStrings(before, after)})
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			lf.stmt(st.Init, held)
		}
		if st.Tag != nil {
			lf.expr(st.Tag, held)
		}
		lf.caseClauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		lf.caseClauses(st.Body, held)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			caseHeld := copyHeld(held)
			if cc.Comm != nil {
				lf.stmt(cc.Comm, caseHeld)
			}
			lf.stmts(cc.Body, caseHeld)
		}
	case *ast.GoStmt:
		lf.exprChildren(st.Call, held)
	case *ast.SendStmt:
		lf.expr(st.Chan, held)
		lf.expr(st.Value, held)
	case *ast.IncDecStmt:
		lf.expr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lf.expr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return lf.stmt(st.Stmt, held)
	case *ast.BranchStmt:
		// break/continue/goto: fall out of the linear walk; the loop
		// imbalance check covers the interesting lock effects.
	}
	return false
}

// caseClauses walks each case with its own lockset copy (cases are
// alternatives, not a sequence).
func (lf *lockFlow) caseClauses(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			lf.expr(e, held)
		}
		caseHeld := copyHeld(held)
		lf.stmts(cc.Body, caseHeld)
	}
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// joinHeld intersects two branch locksets into dst.
func joinHeld(dst, a, b map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range a {
		if b[k] {
			dst[k] = true
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStrings returns the symmetric difference of two sorted sets.
func diffStrings(a, b []string) []string {
	in := make(map[string]int)
	for _, s := range a {
		in[s]++
	}
	for _, s := range b {
		in[s]--
	}
	var out []string
	for s, n := range in {
		if n != 0 {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// expr walks an expression: applies lock/unlock effects of calls in
// evaluation order, records lock-order edges (direct and through callee
// summaries), and feeds every node to the observer. Function literals are
// not descended into — they execute later, on their own lockset.
func (lf *lockFlow) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	if lf.on != nil {
		lf.on(e, held)
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		return
	case *ast.CallExpr:
		lf.exprChildren(x, held)
		lf.applyCall(x, held)
		return
	case *ast.BinaryExpr:
		lf.expr(x.X, held)
		lf.expr(x.Y, held)
		return
	case *ast.UnaryExpr:
		lf.expr(x.X, held)
		return
	case *ast.ParenExpr:
		lf.expr(x.X, held)
		return
	case *ast.IndexExpr:
		lf.expr(x.X, held)
		lf.expr(x.Index, held)
		return
	case *ast.SliceExpr:
		lf.expr(x.X, held)
		lf.expr(x.Low, held)
		lf.expr(x.High, held)
		lf.expr(x.Max, held)
		return
	case *ast.StarExpr:
		lf.expr(x.X, held)
		return
	case *ast.SelectorExpr:
		lf.expr(x.X, held)
		return
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			lf.expr(el, held)
		}
		return
	case *ast.KeyValueExpr:
		lf.expr(x.Value, held)
		return
	}
}

// exprChildren walks a call's fun/args without applying the call itself.
func (lf *lockFlow) exprChildren(call *ast.CallExpr, held map[string]bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		lf.expr(sel.X, held)
	}
	for _, a := range call.Args {
		lf.expr(a, held)
	}
}

// applyCall folds one call's lock effects into held and records order edges.
func (lf *lockFlow) applyCall(call *ast.CallExpr, held map[string]bool) {
	if id, delta, ok := lockCall(lf.pkg, lf.fn, call); ok {
		if delta > 0 {
			for from := range held {
				if from != id {
					lf.edges = append(lf.edges, lockEdge{from: from, to: id, pos: call.Pos()})
				}
			}
			held[id] = true
		} else {
			delete(held, id)
		}
		return
	}
	if lf.resolve == nil {
		return
	}
	callee, sum := lf.resolve(call)
	if sum == nil {
		return
	}
	if len(held) > 0 {
		for _, to := range sum.locks {
			for from := range held {
				if from != to {
					lf.edges = append(lf.edges, lockEdge{from: from, to: to, pos: call.Pos(), via: callee.name})
				}
			}
		}
	}
	for _, id := range sum.netLocks {
		held[id] = true
	}
}

// --- escape analysis ------------------------------------------------------

// concSummarize fills the concurrency fields of a function summary: the
// transitive lock set, the locks still held at return (lock helpers), the
// func-typed parameters that escape to another goroutine (directly via a
// `go` statement, or indirectly — stored into a composite literal or sent
// on a channel like the mat pool's job structs, or passed on to a callee
// parameter that itself escapes), and the determinism taint (a transitive
// reach to a clock read or a math/rand draw).
func concSummarize(cg *callGraph, sums map[string]*summary, n *funcNode, out *summary) {
	resolve := func(call *ast.CallExpr) (*funcNode, *summary) {
		callee := cg.calleeOf(n.pkg, call)
		if callee == nil {
			return nil, nil
		}
		return callee, sums[callee.id]
	}

	// Lock set and net effect.
	lf := newLockFlow(n.pkg, n.id, resolve)
	lf.walk(n.decl.Body)
	lockSet := make(map[string]bool)
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, delta, ok := lockCall(n.pkg, n.id, call); ok && delta > 0 {
			lockSet[id] = true
		}
		if _, sum := resolve(call); sum != nil {
			for _, id := range sum.locks {
				lockSet[id] = true
			}
		}
		return true
	})
	out.locks = capSorted(lockSet, maxSummaryLocks)
	netSet := make(map[string]bool)
	for _, ex := range lf.exits {
		for _, id := range ex.locks {
			netSet[id] = true
		}
	}
	out.netLocks = capSorted(netSet, maxSummaryLocks)

	// Parameter escape bits.
	paramBit := make(map[types.Object]uint64)
	for i, obj := range n.params {
		if obj == nil || i >= 64 {
			continue
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); ok {
			paramBit[obj] = 1 << i
		}
	}
	if len(paramBit) > 0 {
		esc := newEscapeWalk(n.pkg, resolve, paramBit)
		esc.walk(n.decl.Body)
		out.escParams = esc.escaped
	}

	// Determinism taint.
	out.detVia = detSeed(n)
	if out.detVia == "" {
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			if out.detVia != "" {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if callee, sum := resolve(call); sum != nil && sum.detVia != "" {
					out.detVia = sum.detVia + " (reached inside " + callee.name + ")"
					// Keep the chain description bounded.
					if len(out.detVia) > 160 {
						out.detVia = out.detVia[:160]
					}
				}
			}
			return true
		})
	}
}

// wallSinkExempt is the one function whose direct clock reads do not seed
// determinism taint: cluster.(Comm).Run reads the wall clock solely to
// stamp the observational Stats.Wall field — the measurement never feeds
// back into any computed value, which TestDetOrderWallSinkExemption and the
// noclock analyzer's package allowlist both pin. Every other clock read or
// global math/rand draw in the module taints its callers transitively.
const wallSinkExempt = "extdict/internal/cluster.(Comm).Run"

// detSeed reports the direct determinism-taint seed of a function body:
// a use of time.Now/Since/Until or of any math/rand function. Returns ""
// when the body is clean.
func detSeed(n *funcNode) string {
	if n.pkg.TypesInfo == nil || n.id == wallSinkExempt {
		return ""
	}
	info := n.pkg.TypesInfo
	seed := ""
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		if seed != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if isClockObj(obj) {
			seed = "time." + obj.Name()
			return false
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				seed = "rand." + fn.Name()
				return false
			}
		}
		return true
	})
	return seed
}

// capSorted renders a set as a sorted, capped slice.
func capSorted(set map[string]bool, cap int) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	if len(out) > cap {
		out = out[:cap]
	}
	return out
}

// escapeWalk marks func-typed parameters that escape to another goroutine.
type escapeWalk struct {
	pkg      *Package
	resolve  func(*ast.CallExpr) (*funcNode, *summary)
	paramBit map[types.Object]uint64
	escaped  uint64
}

func newEscapeWalk(pkg *Package, resolve func(*ast.CallExpr) (*funcNode, *summary), paramBit map[types.Object]uint64) *escapeWalk {
	return &escapeWalk{pkg: pkg, resolve: resolve, paramBit: paramBit}
}

func (w *escapeWalk) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.GoStmt:
			// Everything referenced by the launched call escapes.
			w.markAll(st.Call)
			return false
		case *ast.SendStmt:
			w.markAll(st.Value)
		case *ast.CompositeLit:
			// A func value stored into a composite literal is assumed to
			// escape (the pool's job struct travels over a channel).
			for _, el := range st.Elts {
				w.markAll(el)
			}
		case *ast.CallExpr:
			w.callSite(st)
		case *ast.AssignStmt:
			// Assignment to a field or index publishes the value.
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					w.markAll(st.Rhs[i])
				}
			}
		}
		return true
	})
}

// callSite marks arguments passed to callee parameters that escape there.
func (w *escapeWalk) callSite(call *ast.CallExpr) {
	callee, sum := w.resolve(call)
	if sum == nil || sum.escParams == 0 {
		return
	}
	args := callArgs(w.pkg, call, callee)
	for j, arg := range args {
		if j >= 64 || sum.escParams&(1<<j) == 0 {
			continue
		}
		w.markAll(arg)
	}
}

// markAll marks every tracked parameter referenced inside e (including
// captures of a func literal) as escaped.
func (w *escapeWalk) markAll(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.pkg.TypesInfo.Uses[id]; obj != nil {
			if bit, tracked := w.paramBit[obj]; tracked {
				w.escaped |= bit
			}
		}
		return true
	})
}

// --- goroutine launch sites ----------------------------------------------

// launchSite is one function literal that runs on another goroutine: the
// literal, the position of the launch, and whether the launching call is
// synchronous (a pool sink that only returns after the submitted work
// completed — everything after the call is ordered after the work).
type launchSite struct {
	lit  *ast.FuncLit
	pos  token.Pos
	kind string // "go" or "pool"
}

// launchSites collects the goroutine-carrying function literals of one
// declared function: literals launched by a `go` statement and literals
// passed to a call argument whose callee parameter escapes to a goroutine
// (the mat pool's trySubmit/ParallelChunks chain, or any fixture-local
// equivalent — the escape bits come from the summary fixpoint, so new
// submission helpers are picked up without a hard-coded list).
func launchSites(prog *Program, pkg *Package, body *ast.BlockStmt) []launchSite {
	var out []launchSite
	ast.Inspect(body, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, launchSite{lit: lit, pos: st.Pos(), kind: "go"})
			}
			for _, arg := range st.Call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out = append(out, launchSite{lit: lit, pos: st.Pos(), kind: "go"})
				}
			}
		case *ast.CallExpr:
			callee, sum := prog.summaryFor(pkg, st)
			if sum == nil || sum.escParams == 0 {
				return true
			}
			args := callArgs(pkg, st, callee)
			for j, arg := range args {
				if j >= 64 || sum.escParams&(1<<j) == 0 {
					continue
				}
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out = append(out, launchSite{lit: lit, pos: st.Pos(), kind: "pool"})
				}
			}
		}
		return true
	})
	return out
}

// lockGraphEdges builds (once per Program) the whole-module lock-order
// edge list: every funcNode's straight-line edges plus the edges of each
// goroutine-carrying literal it launches — a rank goroutine locking b and
// calling a helper that locks a closes a cycle just as surely as
// straight-line code. Test-file declarations are excluded, matching the
// lockorder analyzer's SkipTests.
func (p *Program) lockGraphEdges() []lockEdge {
	if p.lockEdgesBuilt {
		return p.lockEdges
	}
	p.lockEdgesBuilt = true
	for _, id := range p.graph.sortedNodeIDs() {
		n := p.graph.nodes[id]
		if n.pkg.TypesInfo == nil || isTestFile(n.pkg, n.decl) {
			continue
		}
		resolve := func(call *ast.CallExpr) (*funcNode, *summary) {
			callee := p.graph.calleeOf(n.pkg, call)
			if callee == nil {
				return nil, nil
			}
			return callee, p.summaries[callee.id]
		}
		lf := newLockFlow(n.pkg, n.id, resolve)
		lf.walk(n.decl.Body)
		p.lockEdges = append(p.lockEdges, lf.edges...)
		for _, s := range launchSites(p, n.pkg, n.decl.Body) {
			inner := newLockFlow(n.pkg, n.id, resolve)
			inner.walk(s.lit.Body)
			p.lockEdges = append(p.lockEdges, inner.edges...)
		}
	}
	return p.lockEdges
}

// syncPrimitiveType reports whether t is itself a synchronization primitive
// — a channel, sync.WaitGroup/Mutex/RWMutex/Once/Cond/Pool, or a
// sync/atomic value type. Captured variables of these types ARE the
// synchronization and are exempt from the shared-state rules.
func syncPrimitiveType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	case "testing":
		return true // *testing.T and friends synchronize internally
	}
	return false
}
