package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
)

// TestRooflineGolden pins the static roofline report: the rows derived from
// the shipped rank functions, classified against the default platform's
// machine balance, must match the checked-in artifact byte for byte. Any
// change to a kernel's flop or byte polynomial — or to the platform cost
// model — shows up as a diff here (and in scripts/ci.sh, which performs the
// same comparison through the CLI).
func TestRooflineGolden(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	var rows []RooflineRow
	for _, path := range []string{"extdict/internal/dist", "extdict/internal/solver"} {
		if pkg := prog.packageByPath(path); pkg != nil {
			rows = append(rows, Roofline(pkg)...)
		}
	}
	if len(rows) == 0 {
		t.Fatal("no roofline rows derived from the shipped tree")
	}
	report := NewRooflineReport(cluster.NewPlatform(1, 1).MachineBalance(), rows)
	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "roofline.golden.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("roofline report drifted from %s; regenerate with\n\tgo run ./cmd/extdict-lint -roofline %s ./...\ngot:\n%s", goldenPath, goldenPath, got)
	}
}

// TestRooflineAgreesWithRuntimeCounters closes the loop the roofline report
// stands on: the paired flop/byte claim terms of ExDGram.applyCase1,
// evaluated at a real instance's dimensions, must reproduce the simulator's
// TotalFlops and TotalBytes exactly — so the static arithmetic intensity is
// the runtime intensity, not an estimate of it. The bandwidth-bound verdict
// pinned in the golden must then also hold for the runtime ratio.
func TestRooflineAgreesWithRuntimeCounters(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	find := func(costs []funcCost, fn string) *funcCost {
		for _, c := range costs {
			if c.fn == fn {
				c := c
				return &c
			}
		}
		return nil
	}
	fc := find(deriveCosts(distPkg), "ExDGram.applyCase1")
	bc := find(deriveBytes(distPkg), "ExDGram.applyCase1")
	if fc == nil || bc == nil {
		t.Fatal("no derived costs for ExDGram.applyCase1")
	}

	// Same Case 1 instance as the costmodel and memmodel symbolic tests.
	const M, L, N, P = 30, 20, 80, 4
	a := genMatrix(t, M, N, 10)
	tr := fitTransform(t, a, L)
	plat := cluster.NewPlatform(1, P)
	g, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Apply(make([]float64, N), make([]float64, N))
	if st.TotalFlops == 0 || st.TotalBytes == 0 {
		t.Fatalf("runtime counters empty: flops=%d bytes=%d", st.TotalFlops, st.TotalBytes)
	}

	sum := func(c *funcCost, bind map[string]int64, rank int) int64 {
		var total int64
		for _, term := range claimTerms(c.terms) {
			switch term.guard {
			case "":
			case "r.ID == 0":
				if rank != 0 {
					continue
				}
			default:
				t.Fatalf("unexpected guard %q in applyCase1", term.guard)
			}
			v, ok := evalSym(term.derived, c.subst, bind)
			if !ok {
				t.Fatalf("cannot evaluate %s under %v", term.derived.render(), bind)
			}
			total += v
		}
		return total
	}
	ranges := dist.WeightedBlockRanges(N, plat.RankSpeeds())
	var staticFlops, staticBytes int64
	for i := 0; i < P; i++ {
		bind := map[string]int64{
			"m": M, "l": L,
			"NNZ(blocks[])": int64(tr.C.ColSliceRange(ranges[i][0], ranges[i][1]).NNZ()),
			"ranges[][0]":   int64(ranges[i][0]),
			"ranges[][1]":   int64(ranges[i][1]),
		}
		staticFlops += sum(fc, bind, i)
		staticBytes += sum(bc, bind, i)
	}
	if staticFlops != st.TotalFlops {
		t.Fatalf("static flops %d, runtime counted %d", staticFlops, st.TotalFlops)
	}
	if staticBytes != st.TotalBytes {
		t.Fatalf("static bytes %d, runtime counted %d", staticBytes, st.TotalBytes)
	}

	// The golden classifies every applyCase1 region as bandwidth-bound; the
	// runtime ratio must land on the same side of the ridge.
	balance := plat.MachineBalance()
	runtimeAI := float64(st.TotalFlops) / float64(st.TotalBytes)
	if runtimeAI >= balance {
		t.Fatalf("runtime intensity %.4f at or above machine balance %.4f; golden says bandwidth-bound", runtimeAI, balance)
	}
	for _, row := range Roofline(distPkg) {
		if row.Func != "ExDGram.applyCase1" {
			continue
		}
		report := NewRooflineReport(balance, []RooflineRow{row})
		if report.Kernels[0].Bound != "bandwidth" {
			t.Fatalf("region %d of applyCase1 classified %q, runtime says bandwidth", row.Region, report.Kernels[0].Bound)
		}
	}
}
