// Package lint is extdict's project-invariant static analyzer. It is built
// purely on the standard library (go/ast, go/parser, go/types) so the module
// stays dependency-free, and it encodes the written invariants the paper's
// cost model relies on: deterministic randomness, wall-clock confinement,
// goroutine ownership, exact flop accounting, symmetric collective
// schedules, and allocation-free hot loops.
//
// The engine runs in two layers. Every package is parsed, and additionally
// type-checked with go/types through a module-local importer (see
// typecheck.go), so analyzers see resolved objects — aliased imports,
// dot imports, and indirect references cannot dodge a check. Analyzers that
// need types degrade to their syntactic behavior when type information is
// unavailable for a node.
//
// An Analyzer inspects one package at a time and reports findings at token
// positions; a finding may carry a machine-applicable SuggestedFix that
// cmd/extdict-lint -fix applies. Findings can be suppressed with a justified
// directive:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or on the line directly above it. A directive
// without a reason is itself a finding — exceptions must be argued, not
// waved through. Suppressed findings are dropped before -fix runs, so a
// justified exception is never machine-edited.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TextEdit is one replacement of the byte range [Start, End) of Filename
// with NewText. Offsets are byte offsets into the file's current content.
type TextEdit struct {
	// Filename is the file the edit applies to.
	Filename string `json:"filename"`
	// Start is the byte offset of the first replaced byte.
	Start int `json:"start"`
	// End is the byte offset one past the last replaced byte.
	End int `json:"end"`
	// NewText replaces the range.
	NewText string `json:"new_text"`
}

// SuggestedFix is a machine-applicable correction for a finding: a set of
// non-overlapping textual edits plus a human-readable description. Fixes
// must be behavior-preserving up to the invariant being enforced —
// cmd/extdict-lint -fix applies them and gofmt-formats the result.
type SuggestedFix struct {
	// Message describes the fix ("prefix the panic message with ...").
	Message string `json:"message"`
	// Edits are the textual replacements, in file order.
	Edits []TextEdit `json:"edits"`
}

// Finding is one rule violation at a source position.
type Finding struct {
	// Check names the analyzer that produced the finding.
	Check string `json:"check"`
	// Pos locates the violation.
	Pos token.Position `json:"pos"`
	// Message explains the violation and how to fix or suppress it.
	Message string `json:"message"`
	// Fix, when non-nil, is a machine-applicable correction.
	Fix *SuggestedFix `json:"suggested_fix,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Check)
}

// Package is one parsed package unit: every file in a directory, sharing a
// FileSet. Test files are included; analyzers that do not apply to tests set
// SkipTests.
type Package struct {
	// Dir is the directory the files were read from.
	Dir string
	// ImportPath is the package's module-qualified path, e.g.
	// "extdict/internal/dist". Analyzers use it to scope allowlists.
	ImportPath string
	// Fset resolves token positions for all Files.
	Fset *token.FileSet
	// Files are the parsed files, with comments.
	Files []*ast.File

	// Types is the type-checked package object for the primary (non-_test)
	// file group; nil when the package was parsed without type checking.
	Types *types.Package
	// TypesInfo holds resolved identifiers, types, and selections for every
	// file group that was type-checked (in-package test files check together
	// with the primary group, external _test packages as their own unit,
	// all recording into this one Info). Nil for purely syntactic loads.
	TypesInfo *types.Info
	// TypeErrors collects type-check diagnostics. They are non-fatal to the
	// engine — analyzers fall back to syntactic behavior for nodes without
	// type info — but cmd/extdict-lint treats them as a load failure
	// (exit 2) so a broken tree cannot silently pass as "no findings".
	TypeErrors []error
}

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name identifies the check in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SkipTests excludes _test.go files from this check.
	SkipTests bool
	// Run inspects the pass's package and reports findings.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Prog is the whole-program context (call graph and function summaries).
	// Run populates it with a single-package program; RunProgram shares one
	// program across every package, so interprocedural analyzers see helpers
	// in other packages. Never nil for analyzers run through Run/RunProgram.
	Prog *Program

	file     *ast.File // file currently being walked (set by the engine)
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// SuggestFix attaches a machine-applicable fix to the most recently
// reported finding. Calling it without a prior Reportf panics: a fix only
// makes sense as a correction for a concrete finding.
func (p *Pass) SuggestFix(msg string, edits ...TextEdit) {
	if len(p.findings) == 0 {
		panic("lint: SuggestFix without a preceding Reportf")
	}
	p.findings[len(p.findings)-1].Fix = &SuggestedFix{Message: msg, Edits: edits}
}

// Edit builds a TextEdit replacing the source range [pos, end) with newText,
// resolving byte offsets through the package's FileSet.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	start := p.Pkg.Fset.Position(pos)
	stop := p.Pkg.Fset.Position(end)
	return TextEdit{
		Filename: start.Filename,
		Start:    start.Offset,
		End:      stop.Offset,
		NewText:  newText,
	}
}

// TypeOf returns the resolved type of e, or nil when the package was not
// type-checked or e lies in a region that failed to check. Analyzers treat
// a nil result as "unknown" and fall back to syntactic reasoning.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.TypesInfo == nil {
		return nil
	}
	return p.Pkg.TypesInfo.TypeOf(e)
}

// EachFile invokes fn for every file in the package, honoring the analyzer's
// SkipTests setting. Analyzers should iterate with this rather than ranging
// over Pkg.Files directly.
func (p *Pass) EachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		if p.Analyzer.SkipTests && strings.HasSuffix(p.position(f.Pos()).Filename, "_test.go") {
			continue
		}
		p.file = f
		fn(f)
	}
	p.file = nil
}

func (p *Pass) position(pos token.Pos) token.Position {
	return p.Pkg.Fset.Position(pos)
}

// ImportName returns the local name under which file imports path, and
// whether it imports it at all. An unnamed import of "math/rand" yields
// "rand"; a named import follows the alias. Blank and dot imports report
// their literal spelling.
func ImportName(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// Run executes every analyzer over the package and returns the surviving
// findings, sorted by position: suppressed findings are dropped, and
// malformed ignore directives are reported under the "directive" check.
// Interprocedural analyzers see a single-package program; use RunProgram to
// resolve helpers across package boundaries.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	return RunProgram(NewProgram([]*Package{pkg}), pkg, analyzers)
}

// RunProgram executes every analyzer over one package of a whole-module
// program, so interprocedural analyzers (collective, schedule, costmodel)
// resolve calls into every package the program was built from.
func RunProgram(prog *Program, pkg *Package, analyzers []*Analyzer) []Finding {
	dirs, bad := collectDirectives(pkg)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
		a.Run(pass)
		for _, f := range pass.findings {
			if !dirs.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}
