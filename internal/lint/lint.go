// Package lint is extdict's project-invariant static analyzer. It is built
// purely on the standard library (go/ast, go/parser, go/token) so the module
// stays dependency-free, and it encodes the written invariants the paper's
// cost model relies on: deterministic randomness, wall-clock confinement,
// goroutine ownership, and exact flop accounting.
//
// The engine is deliberately small: an Analyzer inspects the parsed files of
// one package at a time and reports findings at token positions. Findings can
// be suppressed with a justified directive:
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or on the line directly above it. A directive
// without a reason is itself a finding — exceptions must be argued, not
// waved through.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Check names the analyzer that produced the finding.
	Check string `json:"check"`
	// Pos locates the violation.
	Pos token.Position `json:"pos"`
	// Message explains the violation and how to fix or suppress it.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Check)
}

// Package is one parsed package unit: every file in a directory, sharing a
// FileSet. Test files are included; analyzers that do not apply to tests set
// SkipTests.
type Package struct {
	// Dir is the directory the files were read from.
	Dir string
	// ImportPath is the package's module-qualified path, e.g.
	// "extdict/internal/dist". Analyzers use it to scope allowlists.
	ImportPath string
	// Fset resolves token positions for all Files.
	Fset *token.FileSet
	// Files are the parsed files, with comments.
	Files []*ast.File
}

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name identifies the check in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SkipTests excludes _test.go files from this check.
	SkipTests bool
	// Run inspects the pass's package and reports findings.
	Run func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	file     *ast.File // file currently being walked (set by the engine)
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// EachFile invokes fn for every file in the package, honoring the analyzer's
// SkipTests setting. Analyzers should iterate with this rather than ranging
// over Pkg.Files directly.
func (p *Pass) EachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		if p.Analyzer.SkipTests && strings.HasSuffix(p.position(f.Pos()).Filename, "_test.go") {
			continue
		}
		p.file = f
		fn(f)
	}
	p.file = nil
}

func (p *Pass) position(pos token.Pos) token.Position {
	return p.Pkg.Fset.Position(pos)
}

// ImportName returns the local name under which file imports path, and
// whether it imports it at all. An unnamed import of "math/rand" yields
// "rand"; a named import follows the alias. Blank and dot imports report
// their literal spelling.
func ImportName(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// Run executes every analyzer over the package and returns the surviving
// findings, sorted by position: suppressed findings are dropped, and
// malformed ignore directives are reported under the "directive" check.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	dirs, bad := collectDirectives(pkg)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, f := range pass.findings {
			if !dirs.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}
