package lint

import (
	"sort"
	"strings"
)

// CapacityRow is one solver/dist entry point of the static capacity report:
// the proven per-rank peak-resident polynomial and its value at one
// documented reference shape, classified against the platform's per-rank
// RAM. The polynomial is the sum of the entry point's AddResident claim
// regions including guarded ones — rank 0 carries every guard in Case 1,
// so the sum is the worst rank's footprint, which is what capacity must
// cover.
type CapacityRow struct {
	// Func is the rank entry point ("ExDGram.applyCase1").
	Func string `json:"func"`
	// Config names the reference shape the polynomial is evaluated at.
	Config string `json:"config"`
	// Resident is the derived peak-resident polynomial in the paper's
	// variables.
	Resident string `json:"resident"`
	// BytesPerRank is the polynomial evaluated at the config shape.
	BytesPerRank int64 `json:"bytesPerRank"`
	// Verdict classifies the footprint against the capacity: "fits" when
	// it is at or under the per-rank RAM, "needs-out-of-core" above it.
	Verdict string `json:"verdict"`
}

// CapacityReport is the full static admission artifact behind
// extdict-lint -capacity: the per-rank RAM threshold, the documented
// reference shapes, and one row per (entry point, shape).
type CapacityReport struct {
	// CapacityBytes is the per-rank RAM the verdicts classify against
	// (cluster.Platform.MemBytesCapacity of the default cost model).
	CapacityBytes int64 `json:"capacityBytes"`
	// Configs maps each reference shape name to its variable binding.
	Configs map[string]map[string]int64 `json:"configs"`
	// Entries is sorted by function name, then config name.
	Entries []CapacityRow `json:"entries"`
}

// CapacityReference returns the documented reference shapes the capacity
// polynomials are evaluated at — the evaluation configurations of Fig. 4,
// Table 2, and Fig. 7 (dataset shape from internal/dataset presets, L and
// nnz(C) from the experiments' transform settings, P from the platform each
// figure runs on), plus ROADMAP item 5's out-of-core target: 5 billion
// stored coefficients over a 100M-column corpus, the shape whose verdict
// motivates the out-of-core schedule. Bindings are per rank: nnz and the
// column window are the n/P share of a uniform partition.
func CapacityReference() map[string]map[string]int64 {
	shape := func(m, n, l, nnz, p, batch int64) map[string]int64 {
		// The FastDict bindings are the canonical k=4 chain at 4× dictionary
		// compression — per-factor budget m·l/16, so the chain stores m·l/4
		// entries in factors shaped m×l, l×l, l×l, l×l: resident words
		// 2·(m·l/4) + 4·(l+1) and hop buffers as wide as the inner dimension.
		return map[string]int64{
			"m":                 m,
			"l":                 l,
			"n":                 n,
			"a.Rows":            m,
			"B":                 batch,
			"NNZ(blocks[])":     nnz / p,
			"ranges[][0]":       0,
			"ranges[][1]":       n / p,
			"ResidentWords(fd)": m*l/2 + 4*(l+1),
			"MaxInterDim(fd)":   l,
		}
	}
	return map[string]map[string]int64{
		"fig4-salinas":    shape(96, 16384, 192, 262144, 1, 64),
		"tab2-cancercell": shape(128, 16384, 256, 524288, 4, 64),
		"fig7-lightfield": shape(192, 24576, 256, 245760, 64, 64),
		"roadmap5-5Bnnz":  shape(512, 100_000_000, 2048, 5_000_000_000, 8, 64),
	}
}

// Capacity derives the static capacity rows of one package: for every rank
// entry point with at least one proven AddResident region it sums the claim
// regions into the worst-rank peak-resident polynomial and evaluates it at
// every reference shape. Delegating wrappers carry no claims and are
// omitted. Verdicts are filled in by NewCapacityReport, which knows the
// platform capacity.
func Capacity(pkg *Package) []CapacityRow {
	if !inAnyPkg(pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
		return nil
	}
	if pkg.TypesInfo == nil {
		return nil
	}
	refs := CapacityReference()
	names := make([]string, 0, len(refs))
	for name := range refs {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []CapacityRow
	for _, fc := range deriveResident(pkg) {
		terms := claimTerms(fc.terms)
		if len(terms) == 0 {
			continue
		}
		total := symExpr(symConst(0))
		for _, t := range terms {
			total = symAdd{total, t.derived}
		}
		p, ok := normalize(total, fc.subst)
		if !ok {
			continue
		}
		for _, name := range names {
			v, ok := evalSym(total, fc.subst, refs[name])
			if !ok {
				continue
			}
			rows = append(rows, CapacityRow{
				Func:         fc.fn,
				Config:       name,
				Resident:     p.render(),
				BytesPerRank: v,
			})
		}
	}
	sortCapacityRows(rows)
	return rows
}

// NewCapacityReport assembles the report: rows sorted, each classified
// against the per-rank RAM — "fits" at or under capacity,
// "needs-out-of-core" above it.
func NewCapacityReport(capacityBytes int64, rows []CapacityRow) CapacityReport {
	sortCapacityRows(rows)
	if rows == nil {
		rows = []CapacityRow{}
	}
	for i := range rows {
		if rows[i].BytesPerRank <= capacityBytes {
			rows[i].Verdict = "fits"
		} else {
			rows[i].Verdict = "needs-out-of-core"
		}
	}
	return CapacityReport{
		CapacityBytes: capacityBytes,
		Configs:       CapacityReference(),
		Entries:       rows,
	}
}

func sortCapacityRows(rows []CapacityRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Func != rows[j].Func {
			return rows[i].Func < rows[j].Func
		}
		return strings.Compare(rows[i].Config, rows[j].Config) < 0
	})
}
