package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// typeChecker resolves imports for go/types without the external go/packages
// machinery, keeping the module dependency-free: import paths inside this
// module are parsed and type-checked from source (non-test files only, so an
// external _test package can import its package under test without a cycle),
// and everything else — the standard library — is delegated to the
// compiler's export data via go/importer. Packages are cached by import
// path, so diamond-shaped import graphs are checked once.
type typeChecker struct {
	root   string // module root directory
	module string // module path from go.mod
	fset   *token.FileSet
	std    types.ImporterFrom
	cache  map[string]*types.Package
}

func newTypeChecker(root, module string) *typeChecker {
	return &typeChecker{
		root:   root,
		module: module,
		fset:   token.NewFileSet(),
		std:    importer.Default().(types.ImporterFrom),
		cache:  make(map[string]*types.Package),
	}
}

// Import implements types.Importer.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	return tc.ImportFrom(path, tc.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (tc *typeChecker) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := tc.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return pkg, nil
	}
	if path != tc.module && !strings.HasPrefix(path, tc.module+"/") {
		return tc.std.ImportFrom(path, dir, mode)
	}
	tc.cache[path] = nil // cycle guard while this package checks

	rel := strings.TrimPrefix(strings.TrimPrefix(path, tc.module), "/")
	pkgDir := filepath.Join(tc.root, filepath.FromSlash(rel))
	files, err := tc.parseNonTestFiles(pkgDir)
	if err != nil {
		delete(tc.cache, path)
		return nil, err
	}
	if len(files) == 0 {
		delete(tc.cache, path)
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", pkgDir, path)
	}
	// Dependency diagnostics are swallowed here: if the imported package has
	// its own problems they resurface when that package is linted directly,
	// and a partially-checked dependency is still usable for resolution.
	conf := types.Config{Importer: tc, Error: func(error) {}}
	pkg, checkErr := conf.Check(path, tc.fset, files, nil)
	if pkg == nil {
		delete(tc.cache, path)
		return nil, checkErr
	}
	tc.cache[path] = pkg
	return pkg, nil
}

// parseNonTestFiles parses every non-test .go file in dir under the
// checker's private FileSet.
func (tc *typeChecker) parseNonTestFiles(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(tc.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck populates pkg.Types, pkg.TypesInfo, and pkg.TypeErrors by
// running go/types over the package's parsed files, resolving module-local
// imports from source under root. Load calls it for every package; tests
// that assemble fixture packages by hand call it directly.
//
// Files are grouped by package clause: in-package test files (package foo
// in foo_test.go) check together with the primary group, an external test
// package (package foo_test) checks as its own unit importing the primary
// from source. All groups record into the one shared TypesInfo, so
// analyzers never care which group a node came from. Type errors are
// collected, not fatal — analyzers see partial info and degrade to
// syntactic behavior where it is missing.
func (pkg *Package) TypeCheck(root, module string) {
	pkg.typeCheck(newTypeChecker(root, module))
}

func (pkg *Package) typeCheck(tc *typeChecker) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg.TypesInfo = info

	// Group files by package clause, primary group first.
	primary := ""
	for _, f := range pkg.Files {
		if name := f.Name.Name; !strings.HasSuffix(name, "_test") {
			primary = name
			break
		}
	}
	groups := make(map[string][]*ast.File)
	var order []string
	for _, f := range pkg.Files {
		name := f.Name.Name
		if _, ok := groups[name]; !ok {
			order = append(order, name)
		}
		groups[name] = append(groups[name], f)
	}
	sort.Slice(order, func(i, j int) bool {
		if (order[i] == primary) != (order[j] == primary) {
			return order[i] == primary
		}
		return order[i] < order[j]
	})

	for _, name := range order {
		conf := types.Config{
			Importer: tc,
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
		}
		path := pkg.ImportPath
		if strings.HasSuffix(name, "_test") && name != primary {
			path += "_test"
		}
		tpkg, _ := conf.Check(path, pkg.Fset, groups[name], info)
		if name == primary && tpkg != nil {
			pkg.Types = tpkg
		}
	}
}

// isRankPtr reports whether t is *cluster.Rank — the parameter type that
// marks a function as one rank's body in a distributed Run.
func isRankPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rank" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "extdict/internal/cluster"
}

// rankParams returns the objects of every *cluster.Rank parameter of the
// function type, resolved through info. Nil when none (or no type info).
func rankParams(ft *ast.FuncType, info *types.Info) []types.Object {
	if info == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isRankPtr(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}
