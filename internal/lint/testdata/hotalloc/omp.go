// Package fixture (omp.go) exercises hotalloc's omp mode: run as
// extdict/internal/omp. There are no ranks or collectives in omp, so the
// batch-coding kernels (Encode, gramRow, Axpy, Dot) mark a loop as hot;
// the same file under any other package yields nothing.
package fixture

type coder struct{}

func (coder) Encode(a []float64) int     { return len(a) }
func (coder) gramRow(j int) []float64    { return nil }
func (coder) Dot(x, y []float64) float64 { return 0 }
func (coder) Apply(x, y []float64)       {} // hot in dist/solver, not here
func consume(x []float64)                {}
func produce(n int) []float64            { return make([]float64, n) }

// codeAll's loop calls the coder per signal, so its body is hot.
func codeAll(c coder, sigs [][]float64) {
	buf := make([]float64, 8) // setup: before the loop, never flagged
	for _, s := range sigs {
		tmp := make([]float64, len(s)) // want "make allocates on every iteration"
		_ = tmp
		_ = c.Encode(s)
	}
	consume(buf)
}

// selection mirrors the Batch-OMP atom loop: a Gram-row fetch plus a dot
// per atom makes the loop hot, and the growing support must be indexed
// into a preallocated buffer, not appended.
func selection(c coder, l int) {
	var idx []int
	for j := 0; j < l; j++ {
		row := c.gramRow(j)
		_ = c.Dot(row, row)
		idx = append(idx, j) // want "append may reallocate on every iteration"
	}
	_ = idx
}

// applyOnly is quiet here: Apply is a dist/solver hot call, not an omp one,
// so this loop is not a batch-coding hot region.
func applyOnly(c coder, sigs [][]float64) {
	for _, s := range sigs {
		tmp := make([]float64, len(s))
		c.Apply(s, tmp)
	}
}
