// Package fixture exercises hotalloc: run as extdict/internal/solver.
package fixture

import "extdict/internal/cluster"

type op struct{}

func (op) Apply(x, y []float64)                {}
func (op) MulVec(x, y []float64) []float64     { return y }
func (op) Describe(v interface{})              {}
func (op) DescribeMany(vs ...interface{})      {}
func (op) DescribePtr(v *[3]float64, w any)    {}
func kernelish(a op, x []float64, s []float64) { _ = s }
func objective(history []float64, obj float64) {}
func setupOnly(n int) []float64                { return make([]float64, n) }
func describeIface(v interface{}) interface{}  { return v }

// hotLoop directly applies the operator, so its whole body is hot.
func hotLoop(a op, x, y []float64, iters int) {
	scratch := make([]float64, len(x)) // setup: before the loop, never flagged
	var history []float64
	for it := 0; it < iters; it++ {
		a.Apply(x, y)
		tmp := make([]float64, len(x)) // want "make allocates on every iteration"
		_ = tmp
		history = append(history, x[0]) // want "append may reallocate on every iteration"
		v := a.MulVec(x, nil)           // want "MulVec with a nil destination allocates"
		_ = v
		p := new(float64) // want "new allocates on every iteration"
		_ = p
		a.Describe(x[0]) // want "boxes it into an interface"
	}
	_ = scratch
	_ = history
}

// outerDriver only works through an inner loop, so the outer body is setup:
// its allocations are fine, the inner loop's are not.
func outerDriver(a op, x, y []float64, comps int) {
	for c := 0; c < comps; c++ {
		col := make([]float64, len(x)) // setup for the inner hot loop
		for it := 0; it < 8; it++ {
			a.Apply(col, y)
			col = append(col, 0) // want "append may reallocate on every iteration"
		}
	}
}

// rankBody is hot in its entirety: it runs once per rank per application.
func rankBody(r *cluster.Rank, a op, x []float64) {
	v := make([]float64, len(x)) // want "make allocates on every iteration"
	a.MulVec(x, v)
	r.Allreduce(v)
}

// byteLoop is hot because it reports bytes per iteration: the memory
// accounting marks the algorithm's inner step exactly as AddFlops does.
// (No rank parameter, so the AddBytes call alone is what makes it hot.)
func byteLoop(acct interface{ AddBytes(int64) }, x []float64, iters int) {
	for it := 0; it < iters; it++ {
		acct.AddBytes(int64(len(x)))
		tmp := make([]float64, len(x)) // want "make allocates on every iteration"
		_ = tmp
	}
}

// boxing cases: pointers, constants, interface pass-through, and spread
// arguments do not allocate.
func boxingEdges(a op, x []float64, iv interface{}, vs []interface{}) {
	var arr [3]float64
	for i := 0; i < 4; i++ {
		a.Apply(x, x)
		a.Describe(3.0)           // constant: no boxing at runtime
		a.Describe(iv)            // already an interface
		a.DescribeMany(vs...)     // spread passes the slice through
		a.DescribePtr(&arr, arr)  // want "boxes it into an interface"
		a.DescribeMany(x[0], 1.0) // want "boxes it into an interface"
	}
}

// justified keeps a deliberate per-iteration allocation.
func justified(a op, x, y []float64) {
	for it := 0; it < 4; it++ {
		a.Apply(x, y)
		//lint:ignore hotalloc the trace is sampled once per run, not per iteration
		snapshot := make([]float64, len(x))
		_ = snapshot
	}
}
