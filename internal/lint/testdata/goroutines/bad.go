// Package fixture exercises goroutines: run as extdict/internal/dist, which
// must route concurrency through cluster/mat/omp instead of spawning its own.
package fixture

func spawn(done chan struct{}) {
	go func() { // want "go statement outside the concurrency-owning packages"
		close(done)
	}()
}
