// Package fixture exercises goroutines' allowlist: run as
// extdict/internal/mat, an owner of concurrency.
package fixture

func spawn(done chan struct{}) {
	go func() {
		close(done)
	}()
}
