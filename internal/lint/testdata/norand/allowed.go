// Package fixture exercises norand's allowlist: run as extdict/internal/rng,
// where importing math/rand (e.g. to cross-check a distribution) is legal.
package fixture

import (
	"math/rand"
)

var _ = rand.Int
