// Package fixture exercises norand: run as extdict/internal/solver.
package fixture

import (
	"math/rand" // want `import of "math/rand" outside internal/rng`
)

var _ = rand.Int
