// Package fixture exercises errcheck: run as extdict/internal/experiments.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error            { return errors.New("fixture: boom") }
func valueAndErr() (int, error) { return 0, nil }
func onlyValues() (int, string) { return 0, "" }
func cleanup() error            { return nil }

func discards(f *os.File) {
	mayFail()       // want "discards the error returned by mayFail"
	valueAndErr()   // want "discards the error returned by valueAndErr"
	f.Close()       // want "discards the error returned by f.Close"
	defer f.Close() // want "deferred call discards the error returned by f.Close"
	go cleanup()    // want "spawned call discards the error returned by cleanup"
	onlyValues()    // no error in the results: fine
}

func handled(f *os.File) error {
	if err := mayFail(); err != nil {
		return err
	}
	_, err := valueAndErr()
	return err
}

// exempt: fmt printing and never-failing writers.
func exempt(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "warn\n")
	buf.WriteString("x")
	sb.WriteByte('y')
}

// justified documents why the error genuinely cannot matter.
func justified(f *os.File) {
	//lint:ignore errcheck read-only file; Close cannot lose buffered writes
	f.Close()
}
