// Package fixture exercises the suppression machinery with nofloateq.
package fixture

func compare(x float64) int {
	//lint:ignore nofloateq suppressed from the line above, with a reason
	if x == 1.25 {
		return 1
	}
	if x == 2.25 { //lint:ignore nofloateq suppressed from the same line, with a reason
		return 2
	}
	//lint:ignore othercheck reason names a different check, so no suppression
	if x == 4.25 { // want "== against a float literal"
		return 4
	}
	return 0
}
