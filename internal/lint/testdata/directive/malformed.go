// Package fixture holds a reason-less ignore directive; the engine must
// report the directive itself and leave the finding unsuppressed.
package fixture

func compare(x float64) int {
	//lint:ignore nofloateq
	if x == 3.25 {
		return 3
	}
	return 0
}
