// Package fixture exercises noclock's type-aware layer: run as
// extdict/internal/solver. The clock is reached through an aliased import
// and through an uncalled function reference — both invisible to the old
// syntactic time.<func>() pattern, both resolved by go/types.
package fixture

import clk "time"

func aliasedClock() clk.Duration {
	start := clk.Now() // want "time.Now outside internal/cluster and internal/perf"
	f := clk.Since     // want "time.Since outside"
	return f(start)
}

func timersStillFine() {
	<-clk.After(clk.Millisecond)
}
