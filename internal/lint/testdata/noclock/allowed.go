// Package fixture exercises noclock's allowlist: run as
// extdict/internal/perf, which owns the Stopwatch and may read the clock.
package fixture

import "time"

func stopwatch() time.Time {
	return time.Now()
}
