// Package fixture exercises noclock: run as extdict/internal/solver.
package fixture

import "time"

func clockReads() time.Duration {
	start := time.Now()                     // want "time.Now outside internal/cluster and internal/perf"
	d := time.Since(start)                  // want "time.Since outside"
	u := time.Until(start.Add(time.Second)) // want "time.Until outside"
	_ = u
	t := time.After(time.Millisecond) // timers are fine: not a clock read
	<-t
	return d
}
