// Package fixture exercises collective: run as extdict/internal/dist. Each
// function reproduces, statically, one of the runtime mismatch panics from
// internal/cluster/regress_test.go.
package fixture

import "extdict/internal/cluster"

// mismatchedKind: ranks disagree on which collective runs.
func mismatchedKind(r *cluster.Rank, v []float64) {
	if r.ID == 0 {
		r.Reduce(v, 0) // want "control-dependent on a rank-varying condition"
	} else {
		r.Broadcast(v, 0) // want "control-dependent on a rank-varying condition"
	}
}

// mismatchedRoot: ranks disagree on who the root is.
func mismatchedRoot(r *cluster.Rank, v []float64) {
	r.Reduce(v, r.ID%2) // want "root is rank-varying"
}

// mismatchedLength: ranks pass vectors of different lengths.
func mismatchedLength(r *cluster.Rank) {
	r.Allreduce(make([]float64, 1+r.ID%2)) // want "vector length is rank-varying"
}

// taintFlows: rank-variance survives assignment through locals and helpers.
func taintFlows(r *cluster.Rank, v []float64) {
	me := r.ID
	double := me * 2
	if double > 2 {
		r.Barrier() // want "control-dependent on a rank-varying condition"
	}
	root := pick(me)
	r.Broadcast(v, root) // want "root is rank-varying"
	w := make([]float64, me+1)
	r.Allreduce(w) // want "vector length is rank-varying"
}

func pick(n int) int { return n % 2 }

// nodeVaries: r.Node() is a taint seed just like r.ID.
func nodeVaries(r *cluster.Rank, v []float64) {
	if r.Node() == 0 {
		r.Allreduce(v) // want "control-dependent on a rank-varying condition"
	}
}

// earlyExit: a rank-varying return desynchronizes every later collective.
func earlyExit(r *cluster.Rank, v []float64) {
	r.Allreduce(v) // fine: before the divergent exit
	if r.ID > 1 {
		return
	}
	r.Allreduce(v) // want "follows a divergent early exit"
}

// loopExit: a rank-varying break desynchronizes the whole loop, including
// collectives ahead of the break.
func loopExit(r *cluster.Rank, v []float64) {
	for i := 0; i < 8; i++ {
		r.Allreduce(v) // want "control-dependent on a rank-varying condition"
		if float64(r.ID) > v[0] {
			break
		}
	}
}

// taintedTrip: loop bound itself varies by rank.
func taintedTrip(r *cluster.Rank, v []float64) {
	for i := 0; i < r.ID; i++ {
		r.Barrier() // want "control-dependent on a rank-varying condition"
	}
}

// rankSwitch: a switch on a rank-varying tag diverges every case.
func rankSwitch(r *cluster.Rank, v []float64) {
	switch r.ID % 2 {
	case 0:
		r.Reduce(v, 0) // want "control-dependent on a rank-varying condition"
	default:
		r.Allreduce(v) // want "control-dependent on a rank-varying condition"
	}
}

// justified: a suppression with a reason silences the finding.
func justified(r *cluster.Rank, v []float64) {
	if r.ID == 0 {
		//lint:ignore collective single-rank probe run outside the lock-step schedule
		r.Barrier()
	}
}
