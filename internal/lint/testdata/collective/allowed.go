// Package fixture proves collective stays quiet on the symmetric idioms the
// shipped internal/dist kernels use: run as extdict/internal/dist.
package fixture

import "extdict/internal/cluster"

type blkMat struct{}

func (blkMat) MulVec(x, y []float64) []float64 { return y }
func (blkMat) MulVecT(x, y []float64)          {}

// rowBlock mirrors DenseGram.Apply: a rank-local window feeds a kernel, the
// call result is length-unknown (treated uniform), and the collective
// schedule is identical on every rank.
func rowBlock(r *cluster.Rank, blk blkMat, x, y []float64) {
	per := (len(x) + r.P() - 1) / r.P()
	lo := r.ID * per
	hi := lo + per
	if hi > len(x) {
		hi = len(x)
	}
	v := blk.MulVec(x[lo:hi], nil)
	r.Allreduce(v)
	blk.MulVecT(v, y)
}

// rankZeroWork mirrors ExDGram.applyCase1: rank-dependent local compute is
// fine as long as the collectives themselves stay outside the branch.
func rankZeroWork(r *cluster.Rank, d blkMat, v1, v3 []float64) {
	r.Reduce(v1, 0)
	if r.ID == 0 {
		v2 := d.MulVec(v1, nil)
		d.MulVecT(v2, v3)
	}
	r.Broadcast(v3, 0)
}

// uniformLoop: collectives inside a loop with uniform bounds are symmetric.
func uniformLoop(r *cluster.Rank, v []float64, iters int) {
	for i := 0; i < iters; i++ {
		r.Allreduce(v)
	}
	for range v {
		r.Barrier()
	}
}

// uniformExit: an early return every rank takes together is symmetric.
func uniformExit(r *cluster.Rank, v []float64, n int) {
	if n == 0 {
		return
	}
	r.Allreduce(v)
}

// uniformScratch: make sized by uniform values is symmetric.
func uniformScratch(r *cluster.Rank, k int) {
	w := make([]float64, k)
	r.Allreduce(w)
	r.Broadcast(w[:k/2], 0)
}
