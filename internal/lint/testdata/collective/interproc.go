// Package fixture exercises the interprocedural half of collective: run as
// extdict/internal/dist. Every divergence here is invisible to a purely
// intra-procedural scan — the collective, the rank-varying value, or the
// rank-varying length hides behind a call — and is resolved through the
// whole-program function summaries.
package fixture

import "extdict/internal/cluster"

// doReduce is itself symmetric: analyzed alone it reports nothing.
func doReduce(r *cluster.Rank, v []float64) {
	r.Reduce(v, 0)
}

// hiddenKind: the collective runs inside a helper, but the call site is
// control-dependent on the rank — the classic bug the intra-procedural
// analyzer missed.
func hiddenKind(r *cluster.Rank, v []float64) {
	if r.ID == 0 {
		doReduce(r, v) // want "Reduce is control-dependent on a rank-varying condition .reached inside doReduce."
	}
}

// exitThenHelper: a divergent early exit desynchronizes a collective even
// when the collective hides behind a helper below it.
func exitThenHelper(r *cluster.Rank, v []float64) {
	if r.ID > 1 {
		return
	}
	doReduce(r, v) // want "Reduce follows a divergent early exit .reached inside doReduce."
}

// myRoot returns a rank-varying value.
func myRoot(r *cluster.Rank) int {
	return r.ID % 2
}

// returnedRoot: the mismatched root comes out of a function call.
func returnedRoot(r *cluster.Rank, v []float64) {
	r.Broadcast(v, myRoot(r)) // want "Broadcast root is rank-varying"
}

// localPart returns a slice whose length varies by rank.
func localPart(r *cluster.Rank, v []float64) []float64 {
	return v[:r.ID+1]
}

// returnedLength: the mismatched vector length comes out of a function call.
func returnedLength(r *cluster.Rank, v []float64) {
	r.Allreduce(localPart(r, v)) // want "Allreduce vector length is rank-varying"
}

// reduceAt forwards its arguments into a collective; symmetric on its own.
func reduceAt(r *cluster.Rank, v []float64, root int) {
	r.Reduce(v, root)
}

// taintedArgRoot: the rank-varying root flows through a helper parameter.
func taintedArgRoot(r *cluster.Rank, v []float64) {
	reduceAt(r, v, r.ID%2) // want "Reduce root is rank-varying .reached inside reduceAt."
}

// share forwards a vector into a collective; symmetric on its own.
func share(r *cluster.Rank, w []float64) {
	r.Allreduce(w)
}

// taintedArgLength: the rank-varying length flows through a helper parameter.
func taintedArgLength(r *cluster.Rank) {
	share(r, make([]float64, r.ID+1)) // want "Allreduce vector length is rank-varying .reached inside share."
}

// indirect: a collective called through a method value still counts.
func indirect(r *cluster.Rank, v []float64) {
	op := r.Reduce
	op(v, r.ID%2) // want "Reduce root is rank-varying"
}

// level2 and level1 bury a collective two calls deep.
func level2(r *cluster.Rank) {
	r.Barrier()
}

func level1(r *cluster.Rank) {
	level2(r)
}

// chained: divergence at the top of a two-level helper chain is still
// reported, attributed to the immediate callee.
func chained(r *cluster.Rank) {
	if r.Node() == 1 {
		level1(r) // want "Barrier is control-dependent on a rank-varying condition .reached inside level1."
	}
}

// --- negative space: helpers used symmetrically must stay silent ---

// uniformHelperUse: calling a collective-bearing helper symmetrically with
// uniform arguments is the intended pattern.
func uniformHelperUse(r *cluster.Rank, v []float64) {
	doReduce(r, v)
	reduceAt(r, v, 0)
	share(r, v)
	level1(r)
}

// zeroRoot returns a uniform root.
func zeroRoot() int { return 0 }

// uniformReturnedRoot: a call-returned root that cannot vary is fine.
func uniformReturnedRoot(r *cluster.Rank, v []float64) {
	r.Broadcast(v, zeroRoot())
}

// scratch sizes a buffer by an integer argument: the returned length varies
// only if the size argument does.
func scratch(n int) []float64 { return make([]float64, n) }

// uniformScratchLen: sizing the helper's buffer by a uniform length keeps
// the collective symmetric.
func uniformScratchLen(r *cluster.Rank, v []float64) {
	r.Allreduce(scratch(len(v)))
}

// guarded runs its collective under a condition on its own arguments —
// divergent only if the caller passes rank-varying data.
func guarded(r *cluster.Rank, v []float64) {
	if len(v) > 0 {
		r.Allreduce(v)
	}
}

// uniformGuardUse: uniform arguments keep the helper's internal guard
// uniform too.
func uniformGuardUse(r *cluster.Rank, v []float64) {
	guarded(r, v)
}
