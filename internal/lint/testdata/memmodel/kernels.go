// Package fixture (kernels.go) exercises the byte-contract half of
// memmodel: dense kernels stream the matrix plus one rows-length and one
// cols-length vector pass (8·(rows·cols + rows + cols)), CSC kernels the
// nnz payload with 8-byte indices plus the column-pointer array and the
// vector ends, and the pool-parallel forms carry the same contracts as
// their serial ones — chunking partitions the streams without changing
// their total length. Run as extdict/internal/dist.
package fixture

import (
	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// poolOp stands in for a distributed operator holding a dense block whose
// dimensions the constructor binds (d: m×l).
type poolOp struct {
	d    *mat.Dense
	m, l int
}

func newPoolOp(d *mat.Dense) *poolOp {
	g := &poolOp{d: d, m: d.Rows, l: d.Cols}
	return g
}

// apply prices the pool-parallel round trip exactly as the serial one:
// each direction streams the matrix and both vector ends — quiet.
func (g *poolOp) apply(r *cluster.Rank, x, v, y []float64) {
	g.d.ParMulVec(x, v)
	g.d.ParMulVecT(v, y)
	r.AddBytes(2 * 8 * (int64(g.m)*int64(g.l) + int64(g.m) + int64(g.l)))
}

// applyOver claims the round trip but runs only half of it.
func (g *poolOp) applyOver(r *cluster.Rank, x, v []float64) {
	g.d.ParMulVec(x, v)
	r.AddBytes(2 * 8 * (int64(g.m)*int64(g.l) + int64(g.m) + int64(g.l))) // want "AddBytes claims"
}

// sparseOp stands in for a transformed operator: per-rank CSC column
// blocks with the precomputed nnz alias (nnz[] ≡ NNZ(blocks[])).
type sparseOp struct {
	blocks []*sparse.CSC
	nnz    []int64
	l      int
}

func newSparseOp(c *sparse.CSC, p, l int) *sparseOp {
	g := &sparseOp{blocks: make([]*sparse.CSC, p), nnz: make([]int64, p), l: l}
	for i := 0; i < p; i++ {
		g.blocks[i] = c.ColSliceRange(0, 4)
		g.nnz[i] = int64(g.blocks[i].NNZ())
	}
	return g
}

// applySparse streams the CSC payload (16·nnz), the column pointers, two
// passes over the cols-side window and one over the L-vector — quiet for
// the forward product, flagged when the transpose claim doubles the
// rows-side vector instead of the cols-side one.
func (g *sparseOp) applySparse(r *cluster.Rank, x, y []float64, lo, hi int) {
	v := make([]float64, g.l)
	g.blocks[r.ID].MulVec(x[lo:hi], v)
	r.AddBytes(16*g.nnz[r.ID] + 8*(2*int64(hi-lo)+int64(g.l)+1))

	g.blocks[r.ID].MulVecT(v, y[lo:hi])
	r.AddBytes(16*g.nnz[r.ID] + 8*(int64(hi-lo)+2*int64(g.l)+1)) // want "AddBytes claims"
}
