// Package fixture exercises memmodel: run as extdict/internal/dist. Each
// rank body's AddBytes claims are checked against the byte-traffic
// expression derived from the preceding kernel calls; mismatched claims,
// uncovered kernels, unsupported in-loop accounting, and underived loop
// bounds are all flagged, while an exact claim stays quiet. Pure scalar
// work streams nothing, so flop-only regions need no byte claim.
package fixture

import (
	"extdict/internal/cluster"
	"extdict/internal/mat"
)

// covered: one dot product streams both operands once and the claim says
// exactly that — no finding.
func covered(r *cluster.Rank, x, y []float64) {
	_ = mat.Dot(x, y)
	r.AddBytes(16 * int64(len(x)))
}

// undercount: the axpy streams 24·len(x) bytes but the claim prices a dot.
func undercount(r *cluster.Rank, a float64, x, y []float64) {
	mat.Axpy(a, x, y)
	r.AddBytes(16 * int64(len(x))) // want "AddBytes claims"
}

// inLoop: accounting inside the loop cannot be folded into a static
// per-region expression.
func inLoop(r *cluster.Rank, x []float64) {
	for range x { // want "AddBytes inside a loop"
		mat.Zero(x)
		r.AddBytes(8)
	}
}

// uncovered: kernel traffic with no AddBytes at all — the memory model
// misses this kernel entirely.
func uncovered(r *cluster.Rank, x, y []float64) {
	_ = mat.Dot(x, y) // want "not covered by any AddBytes"
}

// floatOnly: scalar float work streams no kernel bytes, so a flop claim
// alone is complete — no finding.
func floatOnly(r *cluster.Rank, x []float64) {
	for i := range x {
		x[i] *= 2
	}
	r.AddFlops(2 * int64(len(x)))
}

func mystery() int { return 3 }

// opaqueTrip: the loop bound is a call the analyzer cannot resolve, so the
// derived traffic is unknown and the claim cannot be checked.
func opaqueTrip(r *cluster.Rank, x []float64, n int) {
	for i := 0; i < mystery(); i++ {
		mat.Zero(x)
	}
	r.AddBytes(int64(n)) // want "cannot derive a symbolic byte count"
}

// guarded: asymmetric accounting under a rank guard is checked as its own
// region; an exact claim inside the guard stays quiet, a wrong one fires.
func guarded(r *cluster.Rank, x, y []float64) {
	_ = mat.Dot(x, y)
	r.AddBytes(16 * int64(len(x)))
	if r.ID == 0 {
		mat.Zero(y)
		r.AddBytes(16 * int64(len(y))) // want "AddBytes claims"
	}
}

// batched mirrors BatchGram.Apply's shape: per-row dots over a column
// window, derived as len(rows)·16·(hi-lo) through the slice-length
// substitution, then a zero + per-row axpy pass — both claimed exactly.
func batched(r *cluster.Rank, rows [][]float64, x, v, y []float64, lo, hi int) {
	xi := x[lo:hi]
	for bi, row := range rows {
		rowSlice := row[lo:hi]
		v[bi] = mat.Dot(rowSlice, xi)
	}
	r.AddBytes(16 * int64(len(rows)) * int64(hi-lo))

	yi := y[lo:hi]
	mat.Zero(yi)
	for bi := range rows {
		mat.Axpy(v[bi], rows[bi][lo:hi], yi)
	}
	r.AddBytes(8*int64(hi-lo) + 24*int64(len(rows))*int64(hi-lo))
}
