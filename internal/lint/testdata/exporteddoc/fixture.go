// Package fixture exercises exporteddoc: run as extdict/internal/fixture.
package fixture

func Undocumented() {} // want "exported function Undocumented lacks a doc comment"

// Documented has a doc comment; no finding.
func Documented() {}

func internalHelper() {} // unexported: no finding

type Bare struct{} // want "exported type Bare lacks a doc comment"

// Widget is documented.
type Widget struct{}

func (Widget) Method() {} // want "exported method Method lacks a doc comment"

// String is documented; no finding.
func (Widget) String() string { return "widget" }

type hidden struct{}

func (hidden) Reachable() {} // unexported receiver: no finding

var Loose = 1 // want "exported var Loose lacks a doc comment"

// Grouped constants may share the group's doc comment.
const (
	ModeA = iota
	ModeB
)
