// Package fixture exercises panicmsg: the package is named "fixture", so
// panic literals must start with "fixture: ".
package fixture

import "fmt"

func checks(n int) {
	if n < 0 {
		panic("negative input") // want `panic message "negative input" does not start with "fixture: "`
	}
	if n == 0 {
		panic("fixture: zero input") // correct prefix: no finding
	}
	// Non-literal panics are out of scope for the syntactic check.
	panic(fmt.Sprintf("n = %d", n))
}
