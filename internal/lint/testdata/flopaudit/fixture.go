// Package fixture exercises flopaudit: run as extdict/internal/dist.
package fixture

import "extdict/internal/cluster"

type dense struct{}

func (dense) MulVec(x, y []float64) []float64 { return y }

// uncounted calls a kernel without reporting flops — the finding anchors at
// the function position.
func uncounted(r *cluster.Rank, d dense, x []float64) { // want "calls kernel MulVec but never calls AddFlops"
	d.MulVec(x, nil)
}

// counted reports its flops; no finding.
func counted(r *cluster.Rank, d dense, x []float64) {
	d.MulVec(x, nil)
	r.AddFlops(int64(2 * len(x)))
}

// commOnly performs no kernel work; no finding.
func commOnly(r *cluster.Rank, v []float64) {
	r.Allreduce(v)
}

// literals get audited too.
func viaLiteral(d dense, x []float64) func(*cluster.Rank) {
	return func(r *cluster.Rank) { // want "calls kernel MulVec but never calls AddFlops"
		d.MulVec(x, nil)
	}
}

// justified documents a genuinely zero-cost use.
//
//lint:ignore flopaudit MulVec on an empty matrix moves no data and costs no flops
func justified(r *cluster.Rank, d dense) {
	d.MulVec(nil, nil)
}
