// Package fixture exercises flopaudit's typed rank detection: run as
// extdict/internal/dist. The in-file alias hides the literal *cluster.Rank
// parameter shape; go/types resolves it anyway.
package fixture

import "extdict/internal/cluster"

type rankAlias = cluster.Rank

type denseA struct{}

func (denseA) MulVec(x, y []float64) []float64 { return y }

func aliasHidden(r *rankAlias, d denseA, x []float64) { // want "calls kernel MulVec but never calls AddFlops"
	d.MulVec(x, nil)
}

func aliasCounted(r *rankAlias, d denseA, x []float64) {
	d.MulVec(x, nil)
	r.AddFlops(int64(2 * len(x)))
}
