// Package fixture proves detorder's whole-program taint rule: the clock
// read hides inside internal/perf — a package the per-file noclock
// allowlist permits — yet a result-affecting kernel that calls into it is
// still caught through the summary lattice. Loaded only by
// TestDetOrderTransitiveClock, which runs it against the full module
// program (runFixture's single-package program has no perf summaries).
package fixture

import "extdict/internal/perf"

// timedNorm threads a Stopwatch through a kernel: the elapsed time gates
// the result, so the clock read two calls away is result-affecting.
func timedNorm(x []float64) float64 {
	sw := perf.StartWall()
	s := 0.0
	for _, v := range x {
		s += v
	}
	if sw.Elapsed() < 0 {
		return 0
	}
	return s
}
