// Package fixture exercises detorder: result-affecting packages must be
// schedule-independent — no map-range iteration, no select over several
// ready channels, no unordered concurrent merges (floating-point
// accumulation into a captured variable, even under a lock; compound
// assignments folding in channel receives), and no clock or math/rand
// reads. The fixed-order patterns at the bottom must stay quiet, and the
// whole file must go quiet when loaded under an import path outside the
// detorder scope.
package fixture

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// mapMerge folds map values in iteration order, which Go randomizes.
func mapMerge(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want "range over map w in a result-affecting path"
		total += v
	}
	return total
}

// firstReady returns whichever channel wins the scheduling race.
func firstReady(a, b chan float64) float64 {
	select { // want "select over 2 channels resolves by scheduling"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// lockedMerge serializes the += with a mutex, but float addition is not
// associative: the sum still depends on which worker locks first.
func lockedMerge(parts [][]float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := 0.0
			for _, v := range part {
				s += v
			}
			mu.Lock()
			sum += s // want "floating-point accumulation into captured sum"
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// arrivalMerge folds partials in the order they arrive on the channel.
func arrivalMerge(parts [][]float64) float64 {
	res := make(chan float64, len(parts))
	for _, part := range parts {
		go func() {
			s := 0.0
			for _, v := range part {
				s += v
			}
			res <- s
		}()
	}
	sum := 0.0
	for range parts {
		sum += <-res // want "compound assignment folds in a channel receive"
	}
	return sum
}

// timedKernel reads the wall clock on the result path.
func timedKernel(x []float64) float64 {
	start := time.Now() // want "result-affecting path reads the wall clock"
	s := 0.0
	for _, v := range x {
		s += v
	}
	if time.Since(start) > time.Millisecond { // want "result-affecting path reads the wall clock"
		return 0
	}
	return s
}

// jitter draws from the global math/rand stream.
func jitter() float64 {
	return rand.Float64() // want "result-affecting path draws from math/rand"
}

// --- fixed-order patterns: none of these may produce findings ------------

// sortedMerge iterates the map through sorted keys; the key-collection
// range is the canonical fix and is exempt.
func sortedMerge(w map[string]float64) float64 {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += w[k]
	}
	return total
}

// indexedMerge receives into indexed slots and folds them in slice order.
func indexedMerge(parts [][]float64) float64 {
	partials := make([]float64, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := 0.0
			for _, v := range part {
				s += v
			}
			partials[i] = s
		}()
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// timeoutGuard selects over one channel plus a timer: a single comm clause
// with a default is a poll, not a race.
func timeoutGuard(ch chan float64) (float64, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
