// Package fixture exercises allocmodel: run as extdict/internal/dist. Each
// rank body's AddResident claims are checked against the resident-set
// polynomial derived from the operator's constructor contracts (per-rank
// slot payloads charged at entry, shared matrix fields at first touch) plus
// in-region transient allocations. Exact claims stay quiet; wrong claims,
// unclaimed residency, per-iteration accounting, opaque allocation sizes,
// and allocations escaping into fields are all flagged.
package fixture

import (
	"extdict/internal/cluster"
	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// winOp holds a dense per-rank column window (blocks[]) plus the shared
// source matrix d — the DenseGram shape.
type winOp struct {
	d      *mat.Dense
	blocks []*mat.Dense
	m, w   int
	lcol   int
}

func newWinOp(d *mat.Dense, p, w int) *winOp {
	g := &winOp{d: d, blocks: make([]*mat.Dense, p), m: d.Rows, w: w, lcol: d.Cols}
	for i := 0; i < p; i++ {
		g.blocks[i] = d.ColRange(0, w)
	}
	return g
}

// apply claims its entry slots (8·m·w), both transient buffers, and the
// shared source at first touch — exact, so no finding.
func (g *winOp) apply(r *cluster.Rank, x []float64) []float64 {
	v := make([]float64, g.m)
	g.blocks[r.ID].MulVec(x, v)
	y := make([]float64, g.lcol)
	g.d.MulVecT(v, y)
	r.AddResident(8*int64(g.m)*int64(g.w) + 8*int64(g.m) + 8*int64(g.lcol) + 8*int64(g.m)*int64(g.lcol))
	return y
}

// applyShort touches the shared source matrix but claims only the entry
// slots: the resident set is under-counted.
func (g *winOp) applyShort(r *cluster.Rank, x, v []float64) {
	g.d.MulVec(x, v)
	r.AddResident(8 * int64(g.m) * int64(g.w)) // want "AddResident claims"
}

// sliceOp holds per-rank CSC column slices with the precomputed nnz alias
// plus a shared dictionary — the ExDGram shape.
type sliceOp struct {
	d      *mat.Dense
	blocks []*sparse.CSC
	nnz    []int64
	m, l   int
}

func newSliceOp(d *mat.Dense, c *sparse.CSC, p int) *sliceOp {
	g := &sliceOp{d: d, blocks: make([]*sparse.CSC, p), nnz: make([]int64, p), m: d.Rows, l: d.Cols}
	for i := 0; i < p; i++ {
		g.blocks[i] = c.ColSliceRange(0, 4)
		g.nnz[i] = int64(g.blocks[i].NNZ())
	}
	return g
}

// applyGuarded claims the CSC slot payload and its transient at entry —
// exact, quiet — then under-counts the dictionary whose first touch sits
// under the rank-0 guard: the guarded region's claim fires.
func (g *sliceOp) applyGuarded(r *cluster.Rank, x, y []float64) {
	v := make([]float64, g.l)
	g.blocks[r.ID].MulVec(x, v)
	r.AddResident(16*g.nnz[r.ID] + 40 + 8*int64(g.l))
	if r.ID == 0 {
		g.d.MulVec(v, y)
		r.AddResident(8 * int64(g.m)) // want "AddResident claims"
	}
}

// Apply delegates to applyGuarded, which owns the residency claims: the
// wrapper is not entry-charged, so it stays quiet with no claim at all.
func (g *sliceOp) Apply(r *cluster.Rank, x, y []float64) {
	g.applyGuarded(r, x, y)
}

// cacheOp's constructor declares no buffer, but fill establishes one.
type cacheOp struct {
	buf []float64
	n   int
}

// fill stores its allocation through a field: the bytes are priced (the
// claim is exact, so no mismatch) but the escape itself is a finding —
// persistent state must be established in the constructor.
func (g *cacheOp) fill(r *cluster.Rank) {
	g.buf = make([]float64, g.n) // want "allocation escapes the rank body"
	r.AddResident(8 * int64(g.n))
}

// inLoop: residency is a high-water mark; per-iteration accounting inside
// the loop cannot be folded into a static polynomial.
func inLoop(r *cluster.Rank, n int) {
	for i := 0; i < n; i++ { // want "AddResident inside a loop"
		v := make([]float64, n)
		v[0] = 1
		r.AddResident(8 * int64(n))
	}
}

func mystery() int { return 3 }

// opaque: an allocation sized by a call the analyzer cannot resolve makes
// the region's resident set underivable.
func opaque(r *cluster.Rank) {
	v := make([]float64, mystery())
	v[0] = 1
	r.AddResident(24) // want "cannot derive a symbolic resident-set size"
}

// uncovered: a transient allocation with no AddResident at all leaves the
// entry point's capacity polynomial under-counting.
func uncovered(r *cluster.Rank, n int) {
	_ = make([]float64, n) // want "not covered by any AddResident"
}
