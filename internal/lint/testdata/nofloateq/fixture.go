// Package fixture exercises nofloateq.
package fixture

func compare(x float64, n int) bool {
	if x == 1.5 { // want "== against a float literal"
		return true
	}
	if x != -2.5 { // want "!= against a float literal"
		return false
	}
	//lint:ignore nofloateq bit-exact sentinel intended
	if x == 3.5 {
		return true
	}
	return n == 0 // integer literal: no finding
}
