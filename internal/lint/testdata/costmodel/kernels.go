// Package fixture (kernels.go) exercises the kernel-contract half of
// costmodel: the package-level vector kernels mat.Dot / mat.Axpy price
// 2·len(x) each, and the pool-parallel Dense kernels ParMulVec / ParMulVecT
// carry the same 2·rows·cols contract as their serial forms — register
// blocking and chunked execution regroup the multiply-adds without changing
// their count. Run as extdict/internal/dist.
package fixture

import (
	"extdict/internal/cluster"
	"extdict/internal/mat"
)

// dotKernel: one package-level dot product, claimed exactly — quiet.
func dotKernel(r *cluster.Rank, x, y []float64) {
	_ = mat.Dot(x, y)
	r.AddFlops(2 * int64(len(x)))
}

// axpyUnder: the mat.Axpy contract derives 2·len(x) but the claim halves it.
func axpyUnder(r *cluster.Rank, a float64, x, y []float64) {
	mat.Axpy(a, x, y)
	r.AddFlops(int64(len(x))) // want "AddFlops claims"
}

// batchDots mirrors BatchGram.Apply's loop shape: one dot per batch row over
// a column window, derived as len(rows)·2·(hi-lo) through the slice-length
// substitution and claimed in the same variables.
func batchDots(r *cluster.Rank, rows [][]float64, x, v []float64, lo, hi int) {
	xi := x[lo:hi]
	for bi, row := range rows {
		rowSlice := row[lo:hi]
		v[bi] = mat.Dot(rowSlice, xi)
	}
	r.AddFlops(2 * int64(len(rows)) * int64(hi-lo))
}

// poolOp stands in for a distributed operator holding a dense block whose
// dimensions the constructor binds (d: m×l).
type poolOp struct {
	d    *mat.Dense
	m, l int
}

func newPoolOp(d *mat.Dense) *poolOp {
	g := &poolOp{d: d, m: d.Rows, l: d.Cols}
	return g
}

// apply prices the pool-parallel round trip exactly as the serial one:
// ParMulVec + ParMulVecT = 2·m·l + 2·m·l — quiet.
func (g *poolOp) apply(r *cluster.Rank, x, v, y []float64) {
	g.d.ParMulVec(x, v)
	g.d.ParMulVecT(v, y)
	r.AddFlops(4 * int64(g.m) * int64(g.l))
}

// applyOver claims the round trip but runs only half of it.
func (g *poolOp) applyOver(r *cluster.Rank, x, v []float64) {
	g.d.ParMulVec(x, v)
	r.AddFlops(4 * int64(g.m) * int64(g.l)) // want "AddFlops claims"
}
