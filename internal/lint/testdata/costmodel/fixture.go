// Package fixture exercises costmodel: run as extdict/internal/dist. Each
// rank body's AddFlops claims are checked against the FLOP expression
// derived from the preceding loop nests; mismatched claims, uncovered
// kernels, unsupported in-loop accounting, and underived loop bounds are
// all flagged, while an exact claim stays quiet.
package fixture

import "extdict/internal/cluster"

// covered: the loop does one multiply and one add per element and the claim
// says exactly that — no finding.
func covered(r *cluster.Rank, x, y []float64) {
	for i := range x {
		y[i] += 2 * x[i]
	}
	r.AddFlops(2 * int64(len(x)))
}

// undercount: the loop performs one flop per element but the claim doubles
// it.
func undercount(r *cluster.Rank, x []float64) {
	for i := range x {
		x[i] *= 2
	}
	r.AddFlops(2 * int64(len(x))) // want "AddFlops claims"
}

// inLoop: accounting inside the loop cannot be folded into a static
// per-region expression.
func inLoop(r *cluster.Rank, x []float64) {
	for i := range x { // want "AddFlops inside a loop"
		x[i] *= 2
		r.AddFlops(1)
	}
}

// uncovered: float work with no AddFlops at all — the cost model misses
// this kernel entirely.
func uncovered(r *cluster.Rank, x, y []float64) {
	for i := range x { // want "not covered by any AddFlops"
		y[i] += x[i]
	}
}

func mystery() int { return 3 }

// opaqueTrip: the loop bound is a call the analyzer cannot resolve, so the
// derived count is unknown and the claim cannot be checked.
func opaqueTrip(r *cluster.Rank, x []float64, n int) {
	for i := 0; i < mystery(); i++ {
		x[0] += 1
	}
	r.AddFlops(int64(n)) // want "cannot derive a symbolic flop count"
}

// guarded: asymmetric accounting under a rank guard is checked as its own
// region; an exact claim inside the guard stays quiet, a wrong one fires.
func guarded(r *cluster.Rank, x, y []float64) {
	for i := range x {
		y[i] += 2 * x[i]
	}
	r.AddFlops(2 * int64(len(x)))
	if r.ID == 0 {
		for i := range x {
			y[i] += x[i]
		}
		r.AddFlops(int64(len(x)) * 3) // want "AddFlops claims"
	}
}
