// Package fixture exercises schedule: run as extdict/internal/dist. The
// analyzer must reject rank bodies whose collective trace varies across
// ranks, flag collectives whose vector length has no constructor-derived
// symbol, and stay quiet when the schedule is rank-invariant with lengths
// resolved through the builder idiom.
package fixture

import "extdict/internal/cluster"

// sized allocates its buffer through the constructor, so the rank body's
// collective resolves to the symbolic length "n".
type sized struct {
	n   int
	buf []float64
}

func newSized(n int) *sized {
	s := &sized{n: n}
	s.buf = make([]float64, n)
	return s
}

// Resolved: rank-invariant schedule, length "n" from the constructor.
func (s *sized) run(r *cluster.Rank) {
	r.Allreduce(s.buf)
}

// opaque's buffer is never sized by a constructor the analyzer can see.
type opaque struct {
	buf []float64
}

// unresolved: the schedule itself is rank-invariant, but the vector length
// has no symbolic dimension, so the trace cannot be checked.
func (o *opaque) run(r *cluster.Rank) {
	r.Allreduce(o.buf) // want "cannot resolve a symbolic vector length"
}

// varyingRoot has no rank-invariant trace: the Broadcast root differs by
// rank, so the static schedule differs across ranks.
func varyingRoot(r *cluster.Rank, v []float64) { // want "no rank-invariant static collective trace"
	root := r.ID % 2
	r.Broadcast(v, root)
}

// varyingPosition has no rank-invariant trace either: half the ranks skip
// the collective entirely.
func varyingPosition(r *cluster.Rank, v []float64) { // want "no rank-invariant static collective trace"
	if r.ID%2 == 0 {
		r.Allreduce(v)
	}
}

// captured slice parameters trace under their own length symbol; this is
// rank-invariant and fully resolved, so no finding.
func paramLen(r *cluster.Rank, v []float64) {
	r.Reduce(v, 0)
	r.Broadcast(v, 0)
}
