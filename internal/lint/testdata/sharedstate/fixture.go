// Package fixture exercises sharedstate: every variable captured by a
// goroutine — launched with `go` or submitted to a pool sink — must be
// lock-guarded consistently, accessed only through sync/atomic, handed
// over a channel, or frozen before the launch. The safe patterns at the
// bottom (consistent guard, pure atomics, pre-launch freeze, partitioned
// slice writes, single-owner goroutine, channel hand-off) must stay quiet.
package fixture

import (
	"sync"
	"sync/atomic"
)

var (
	muA sync.Mutex
	muB sync.Mutex
)

// jobs is the fixture's pool: submit's fn parameter escapes to the worker
// goroutines through the channel, so the escape analysis classifies every
// literal passed to submit as pool-launched — the same derivation that
// resolves the real mat pool's trySubmit chain.
var jobs = make(chan func(), 8)

func startWorkers(n int, wg *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		go func() {
			for fn := range jobs {
				fn()
				wg.Done()
			}
		}()
	}
}

func submit(fn func()) bool {
	select {
	case jobs <- fn:
		return true
	default:
		return false
	}
}

// unlockedCounter races two goroutines on a plain int.
func unlockedCounter() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); n++ }() // want "captured n is written inside a goroutine without a lock"
	go func() { defer wg.Done(); n++ }()
	wg.Wait()
	return n
}

// poolRace races pool-submitted chunks on a captured accumulator: a pool
// sink runs the literal once per submission, concurrently.
func poolRace(wg *sync.WaitGroup) int {
	total := 0
	for c := 0; c < 4; c++ {
		wg.Add(1)
		if !submit(func() { total += c }) { // want "captured total is written inside a goroutine without a lock"
			total += c
			wg.Done()
		}
	}
	wg.Wait()
	return total
}

// inconsistentGuards locks muA in the goroutine but muB outside.
func inconsistentGuards() int {
	v := 0
	done := make(chan struct{})
	go func() {
		muA.Lock()
		v++
		muA.Unlock()
		close(done)
	}()
	muB.Lock()
	v++ // want "captured v is written under muB but the goroutine accesses it under muA"
	muB.Unlock()
	<-done
	return v
}

// splitGuards locks a different mutex in each goroutine — no common guard.
func splitGuards() int {
	v := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); muA.Lock(); v++; muA.Unlock() }() // want "captured v is guarded inconsistently across goroutine writes"
	go func() { defer wg.Done(); muB.Lock(); v++; muB.Unlock() }()
	wg.Wait()
	return v
}

// mixedAtomic stores plainly into a variable the goroutine updates
// atomically; the suggested fix rewrites the store to atomic.StoreInt64.
func mixedAtomic() int64 {
	var n int64
	done := make(chan struct{})
	go func() {
		atomic.AddInt64(&n, 1)
		close(done)
	}()
	n = 2 // want "captured n mixes sync/atomic and plain access"
	<-done
	return atomic.LoadInt64(&n)
}

// unfrozen rewrites a captured input while the goroutine still reads it.
func unfrozen() int {
	k := 1
	res := make(chan int, 1)
	go func() { res <- k * 2 }()
	k = 3 // want "captured k is written after the goroutine launch without synchronization"
	return k + <-res
}

// readBeforeBarrier reads the goroutine's output before waiting for it.
func readBeforeBarrier() int {
	sum := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); muA.Lock(); sum = 42; muA.Unlock() }()
	r := sum // want "captured sum is written by a goroutine but read here before any barrier"
	wg.Wait()
	return r
}

// --- safe patterns: none of these may produce findings -------------------

// lockedCounter guards every access with the same mutex.
func lockedCounter() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			muA.Lock()
			n++
			muA.Unlock()
		}()
	}
	wg.Wait()
	muA.Lock()
	defer muA.Unlock()
	return n
}

// atomicCounter is atomic on both sides.
func atomicCounter() int64 {
	var n int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); atomic.AddInt64(&n, 1) }()
	go func() { defer wg.Done(); atomic.AddInt64(&n, 1) }()
	wg.Wait()
	return atomic.LoadInt64(&n)
}

// frozenInput is written only before the launches and read after the wait.
func frozenInput(xs []float64) float64 {
	scale := 2.0
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = scale * xs[i] // partitioned element writes
		}()
	}
	wg.Wait()
	return out[0]
}

// singleOwnerResult is touched by exactly one goroutine and read only
// after the channel barrier publishes it.
func singleOwnerResult() int {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 7
		close(done)
	}()
	<-done
	return x
}

// handOff transfers ownership of the buffer over a channel.
func handOff() []float64 {
	buf := make([]float64, 4)
	ch := make(chan []float64, 1)
	go func() {
		buf[0] = 1
		ch <- buf
	}()
	return <-ch
}
