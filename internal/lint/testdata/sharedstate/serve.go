// Package fixture (serve.go) exercises sharedstate on the serving layer's
// sharing shapes: epoch-swapped snapshots behind an atomic pointer, request
// ownership transfer over a bounded channel with a done-channel barrier,
// and the closed-vs-send drain protocol under one mutex. The safe forms at
// the bottom mirror internal/serve and must stay quiet; the top half shows
// each protocol broken by one missing piece.
package fixture

import (
	"sync"
	"sync/atomic"
)

// coderReq is the fixture's request: batcher-written fields published by
// closing done.
type coderReq struct {
	signal []float64
	res    float64
	done   chan struct{}
}

var reqMu sync.Mutex

// resultBeforeBarrier keeps the request as a shared struct value instead
// of handing a pointer over a channel, then reads the batcher's result
// field before the done barrier publishes it.
func resultBeforeBarrier() float64 {
	req := coderReq{signal: []float64{1, 2}, done: make(chan struct{})}
	go func() {
		req.res = req.signal[0] + req.signal[1] // want "captured req.res is written inside a goroutine without a lock"
		close(req.done)
	}()
	r := req.res
	<-req.done
	return r
}

// statsRace bumps a serving counter plainly from the batcher while the
// submitter also writes it — the shape shardStats avoids with atomics.
func statsRace() int {
	encoded := 0
	done := make(chan struct{})
	go func() {
		encoded++ // want "captured encoded is written inside a goroutine without a lock"
		close(done)
	}()
	encoded++
	<-done
	return encoded
}

// drainRaceUnguarded closes the queue under the mutex but submits without
// it — the exact send-on-closed-channel race shard.submit's lock prevents.
func drainRaceUnguarded(reqCh chan coderReq) bool {
	closed := false
	go func() {
		reqMu.Lock()
		closed = true
		close(reqCh)
		reqMu.Unlock()
	}()
	if closed { // want "captured closed is written by a goroutine but read here before any barrier"
		return false
	}
	reqCh <- coderReq{}
	return true
}

// --- safe serving-layer patterns: none of these may produce findings -----

// snapshotSwap publishes immutable snapshots through an atomic pointer:
// the batcher loads, the reloader stores, nobody locks — the pointer IS
// the synchronization.
func snapshotSwap(fresh *[]float64) []float64 {
	var snap atomic.Pointer[[]float64]
	base := []float64{1}
	snap.Store(&base)
	done := make(chan struct{})
	go func() {
		_ = *snap.Load()
		close(done)
	}()
	snap.Store(fresh)
	<-done
	return *snap.Load()
}

// requestHandOff transfers request ownership over the queue channel; the
// batcher writes the result and the done close publishes it back.
func requestHandOff(queue chan *coderReq) float64 {
	go func() {
		for r := range queue {
			r.res = r.signal[0]
			close(r.done)
		}
	}()
	req := &coderReq{signal: []float64{5}, done: make(chan struct{})}
	queue <- req
	<-req.done
	return req.res
}

// guardedDrain holds one mutex across the closed check and the send on
// both sides — shard.submit versus shard.close.
func guardedDrain(reqCh chan coderReq) bool {
	closed := false
	done := make(chan struct{})
	go func() {
		reqMu.Lock()
		closed = true
		close(reqCh)
		reqMu.Unlock()
		close(done)
	}()
	reqMu.Lock()
	ok := !closed
	if ok {
		reqCh <- coderReq{}
	}
	reqMu.Unlock()
	<-done
	return ok
}

// frozenConfig is the batcher's view of its shard config: written only
// before the launch, read-only ever after.
func frozenConfig() int {
	batchMax := 8
	out := make(chan int, 1)
	go func() {
		out <- batchMax * 2
	}()
	return <-out
}
