// Package fixture exercises lockorder: lock acquisitions across the whole
// program must form a cycle-free order (directly or through callees), pair
// every Lock with an Unlock on every path, keep loop iterations
// lock-balanced, and never submit work to the pool that re-acquires a lock
// the submitting site still holds (trySubmit's inline fallback would run
// it recursively on the same stack). The branch-sensitive patterns at the
// bottom — the gramRow-style conditional unlock and the defer pairing —
// must stay quiet.
package fixture

import "sync"

var (
	ma sync.Mutex
	mb sync.Mutex
	mc sync.Mutex
	md sync.Mutex
	me sync.Mutex
	mf sync.Mutex
	mg sync.Mutex
	mh sync.Mutex
)

// abOrder and baOrder acquire {ma, mb} in opposite orders: the classic
// deadlock. The cycle is reported once, at its representative edge.
func abOrder() {
	ma.Lock()
	mb.Lock() // want "lock-order cycle"
	mb.Unlock()
	ma.Unlock()
}

func baOrder() {
	mb.Lock()
	ma.Lock()
	ma.Unlock()
	mb.Unlock()
}

// lockSecond hides the md acquisition behind a call: the mc→md edge comes
// from the callee's summary, and secondThenFirst closes the cycle.
func lockSecond() {
	md.Lock()
	md.Unlock()
}

func firstThenSecond() {
	mc.Lock()
	lockSecond() // want "lock-order cycle"
	mc.Unlock()
}

func secondThenFirst() {
	md.Lock()
	mc.Lock()
	mc.Unlock()
	md.Unlock()
}

// leak returns with me held on the early-return path.
func leak(skip bool) {
	me.Lock()
	if skip {
		return // want "returns with me still held"
	}
	me.Unlock()
}

// ratchet re-locks every iteration without releasing.
func ratchet(n int) {
	for i := 0; i < n; i++ { // want "loop body changes the held lockset"
		mg.Lock()
	}
}

// jobs/submit is the fixture pool sink: fn escapes to worker goroutines.
var jobs = make(chan func(), 8)

func submit(fn func()) bool {
	select {
	case jobs <- fn:
		return true
	default:
		fn() // inline fallback, on the submitter's stack
		return false
	}
}

// submitUnderLock holds mh across the submission of work that re-acquires
// mh: if the pool is busy, the inline fallback self-deadlocks.
func submitUnderLock() {
	mh.Lock()
	submit(func() { // want "pool-submitted work acquires mh while the submitting site still holds it"
		mh.Lock()
		mh.Unlock()
	})
	mh.Unlock()
}

// --- balanced patterns: none of these may produce findings ---------------

// lockedLookup unlocks on both the hit and miss paths (the omp gramRow
// shape: conditional early return inside the critical section).
func lockedLookup(m map[int]int, k int) int {
	mf.Lock()
	if v, ok := m[k]; ok {
		mf.Unlock()
		return v
	}
	mf.Unlock()
	return -1
}

// deferred pairs the Lock with a deferred Unlock; the panic path unwinds
// through the defer too.
func deferred(fail bool) {
	ma.Lock()
	defer ma.Unlock()
	if fail {
		panic("fixture: deferred failure")
	}
}

// nested repeats the ma→mb direction abOrder already uses: a second
// acquisition in the same global order adds no new cycle.
func nested() {
	ma.Lock()
	mb.Lock()
	mb.Unlock()
	ma.Unlock()
}
