package lint

import (
	"go/token"
	"strings"
)

// directiveSet indexes //lint:ignore directives by file and line. A directive
// suppresses matching findings on its own line and on the line directly
// below it, so it works both as a trailing comment and as a lead-in line.
type directiveSet map[string]map[int][]string // filename -> line -> checks

func (d directiveSet) add(filename string, line int, check string) {
	byLine := d[filename]
	if byLine == nil {
		byLine = make(map[int][]string)
		d[filename] = byLine
	}
	byLine[line] = append(byLine[line], check)
}

func (d directiveSet) suppresses(f Finding) bool {
	byLine := d[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, check := range byLine[line] {
			if check == f.Check {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectDirectives scans every comment in the package for ignore
// directives. One directive may name several checks separated by commas
// (//lint:ignore hotalloc,flopaudit reason); the reason covers all of them.
// Malformed directives — no check name, or no reason — are returned as
// findings so that suppression always carries a justification.
func collectDirectives(pkg *Package) (directiveSet, []Finding) {
	dirs := make(directiveSet)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Check: "directive",
						Pos:   pos,
						Message: "malformed ignore directive: want " +
							"//lint:ignore <check> <reason>, with a non-empty reason",
					})
					continue
				}
				for _, check := range strings.Split(fields[0], ",") {
					if check != "" {
						dirs.add(pos.Filename, pos.Line, check)
					}
				}
			}
		}
	}
	return dirs, bad
}

// position helper shared by analyzers that need a file name for a node.
func filenameOf(fset *token.FileSet, pos token.Pos) string {
	return fset.Position(pos).Filename
}
