package lint

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dist"
)

// TestCostModelSymbolicFlops reproduces TestExDGramFlopAccounting's expected
// value from the static cost model alone: the symbolic terms derived from
// applyCase1 — 2·nnz_i per sparse product on every rank, 4·M·L under the
// "r.ID == 0" guard — are evaluated with the instance's dimensions and must
// sum to exactly the runtime-counted TotalFlops. This pins the code's flop
// accounting to Eqs. 2-4 in both directions: the analyzer proves each claim
// equals the derived expression, and this test proves the derived
// expressions predict the machine.
func TestCostModelSymbolicFlops(t *testing.T) {
	prog, _ := loadModuleProgram(t)
	distPkg := prog.packageByPath("extdict/internal/dist")
	if distPkg == nil {
		t.Fatal("dist package not loaded")
	}
	var fc *funcCost
	for _, c := range deriveCosts(distPkg) {
		if c.fn == "ExDGram.applyCase1" {
			c := c
			fc = &c
		}
	}
	if fc == nil {
		t.Fatal("no derived costs for ExDGram.applyCase1")
	}

	// Same instance as dist's TestExDGramFlopAccounting: M=30, L=20, Case 1.
	const M, L, N, P = 30, 20, 80, 4
	a := genMatrix(t, M, N, 10)
	tr := fitTransform(t, a, L)
	plat := cluster.NewPlatform(1, P)
	g, err := dist.NewExDGram(cluster.NewComm(plat), tr.D, tr.C)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Apply(make([]float64, N), make([]float64, N))

	// Evaluate the symbolic terms per rank, binding the per-rank sparse
	// population through the same column partition the constructor uses.
	ranges := dist.WeightedBlockRanges(N, plat.RankSpeeds())
	var total int64
	for i := 0; i < P; i++ {
		nnz := tr.C.ColSliceRange(ranges[i][0], ranges[i][1]).NNZ()
		bind := map[string]int64{"m": M, "l": L, "NNZ(blocks[])": int64(nnz)}
		for _, term := range fc.terms {
			if term.claim == nil || term.unsupported {
				continue
			}
			switch term.guard {
			case "":
			case "r.ID == 0":
				if i != 0 {
					continue
				}
			default:
				t.Fatalf("unexpected guard %q in applyCase1", term.guard)
			}
			// The analyzer already proves claim == derived symbolically;
			// evaluate the derived side so this test exercises the
			// derivation, not the annotation.
			pd, okD := normalize(term.derived, fc.subst)
			pc, okC := normalize(term.claim, fc.subst)
			if !okD || !okC || !equalPoly(pd, pc) {
				t.Fatalf("claim %s does not match derived %s", term.claim.render(), term.derived.render())
			}
			v, ok := evalSym(term.derived, fc.subst, bind)
			if !ok {
				t.Fatalf("cannot evaluate %s under %v", term.derived.render(), bind)
			}
			total += v
		}
	}

	// Case 1 totals: 4·nnz(C) for the sparse products + 4·M·L on rank 0.
	want := int64(4*tr.C.NNZ() + 4*M*L)
	if total != want {
		t.Fatalf("symbolic total %d, want %d", total, want)
	}
	if total != st.TotalFlops {
		t.Fatalf("symbolic total %d, runtime counted %d", total, st.TotalFlops)
	}
}
