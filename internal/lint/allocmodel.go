package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AllocModel statically pins the per-rank resident-set accounting of
// internal/dist and internal/solver to the code — the capacity axis of the
// paper's Eq. 4 that decides whether a shape fits in RAM at all. It derives
// a symbolic allocation-size polynomial for the region of a rank body
// preceding each r.AddResident call, from the operator's constructor
// contracts:
//
//	make([]T, n)            allocSizes.Sizeof(T)·n bytes
//	mat.NewDense(r, c)      8·r·c bytes
//	Dense.ColRange(lo, hi)  8·rows·(hi−lo) bytes — the rank's owned window
//	CSC.ColSliceRange       16·nnz + 8·(cols+1) bytes (values + row indices
//	                        + column pointers)
//	workspace structs       sum of their recorded make'd fields
//
// Allocations are classified persistent or transient. Per-rank constructor
// slots (blocks[i], scratch[i]) and operator-shared matrix fields (the
// dictionary d, SGD's full data matrix a) are persistent: they escape every
// region and form the rank's steady-state resident set — slots are charged
// at rank-body entry, shared fields at their first textual touch, which
// places the Case 1 dictionary naturally under its "r.ID == 0" guard. An
// in-body make that stays local is transient: it is charged to the region
// it lives in (peak, not sum — a later region's claim must NOT re-count
// it). An in-body allocation stored through a field escapes its region;
// allocmodel reports it, because resident state established outside the
// constructor is invisible to the capacity polynomial of every other entry
// point (and to hotalloc's allocation-free guarantee).
//
// A rank function that merely delegates to another rank method of the same
// operator (ExDGram.Apply's closures) is not charged: the callee claims the
// residency. The per-entry-point polynomials this analyzer proves are the
// rows of the static capacity report (extdict-lint -capacity) and the
// ground truth for perf.Estimate.MemoryWordsPerRank.
var AllocModel = &Analyzer{
	Name: "allocmodel",
	Doc: "every r.AddResident argument must symbolically equal the " +
		"resident-set polynomial derived from the operator's constructor " +
		"contracts and in-region allocations, the capacity side of Eq. 4",
	SkipTests: true,
	Run: func(p *Pass) {
		if !inAnyPkg(p.Pkg.ImportPath, "extdict/internal/dist", "extdict/internal/solver") {
			return
		}
		if p.Pkg.TypesInfo == nil {
			return
		}
		for _, fc := range deriveResident(p.Pkg) {
			subst := fc.subst
			for _, term := range fc.terms {
				switch {
				case term.unsupported:
					p.Reportf(term.pos,
						"AddResident inside a loop cannot be checked against the static capacity model; hoist the accounting out of the loop")
				case term.claim != nil:
					pd, okD := normalize(term.derived, subst)
					pc, okC := normalize(term.claim, subst)
					if !okD || !okC {
						p.Reportf(term.pos,
							"cannot derive a symbolic resident-set size for the region preceding this AddResident; restructure so allocation sizes resolve through the operator constructor")
						continue
					}
					if !equalPoly(pd, pc) {
						p.Reportf(term.pos,
							"AddResident claims %s but the region's resident set is %s bytes%s (capacity-model conformance, Eq. 4)",
							pc.render(), pd.render(), guardSuffix(term.guard))
					}
				default:
					// Trailing residency with no AddResident to absorb it.
					p.Reportf(term.pos,
						"resident bytes established here are not covered by any AddResident call%s; the capacity model under-counts this entry point", guardSuffix(term.guard))
				}
			}
		}
		eachRankFunc(p.Pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			reportEscapingAllocs(p, body)
		})
	},
}

// deriveResident derives the symbolic resident-set terms of every rank
// function in the package — the data behind the allocmodel analyzer and the
// static capacity report.
func deriveResident(pkg *Package) []funcCost {
	shapes := buildShapes(pkg)
	var out []funcCost
	eachRankFunc(pkg, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
		opType, _, _ := strings.Cut(name, ".")
		if !strings.Contains(name, ".") {
			opType = ""
		}
		aw := &allocWalk{
			costWalk: costWalk{
				st:        newSymState(pkg, shapes),
				shapes:    shapes,
				opType:    opType,
				claimName: "AddResident",
			},
			charged: make(map[string]bool),
			shared:  sharedContracts(shapes, opType),
		}
		aw.stmtCost = aw.stmtResident
		aw.st.envFixpoint(body)
		terms := aw.region(body.List, "")
		if !delegatesResidency(pkg.TypesInfo, opType, body) {
			terms = chargeEntry(terms, slotContracts(shapes, opType), body)
		}
		out = append(out, funcCost{fn: name, terms: terms, subst: shapes.substFor(opType)})
	})
	return out
}

// allocWalk derives symbolic resident-set expressions over one rank body,
// reusing the costWalk region machinery with allocation semantics: in-body
// make / mat.NewDense calls are priced through the allocation contracts,
// and the first touch of a shared persistent matrix field charges its
// steady-state size. Loops charge their body once — residency is an
// idempotent high-water mark, not a per-iteration flow.
type allocWalk struct {
	costWalk
	charged map[string]bool    // shared fields already charged this body
	shared  map[string]symExpr // field -> steady-state resident size
}

// stmtResident derives the resident bytes one statement establishes.
func (c *allocWalk) stmtResident(s ast.Stmt) symExpr {
	total := symExpr(symConst(0))
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sz, ok := c.allocSize(n); ok {
				total = symAdd{total, sz}
			}
		case *ast.SelectorExpr:
			if tn, key, ok := c.st.canonRef(n); ok && tn == c.opType {
				base, _, _ := strings.Cut(key, ".")
				base, _, _ = strings.Cut(base, "[")
				if e, ok := c.shared[base]; ok && !c.charged[base] {
					c.charged[base] = true
					total = symAdd{total, e}
				}
			}
		}
		return true
	})
	return total
}

// allocSize prices one allocation call through the contracts; ok=false for
// calls that allocate nothing the model tracks.
func (c *allocWalk) allocSize(call *ast.CallExpr) (symExpr, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltinObj(c.st.info.Uses[id]) && id.Name == "make" && len(call.Args) >= 2 {
		// make([]T, len[, cap]) reserves cap elements when given.
		n := c.st.symVal(call.Args[len(call.Args)-1])
		if isUnknown(n) {
			return symUnknown{}, true
		}
		return symMul{symConst(sliceElemBytes(c.st.info.TypeOf(call))), n}, true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewDense" && len(call.Args) == 2 {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := c.st.info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "extdict/internal/mat" {
				r, cc := c.st.symVal(call.Args[0]), c.st.symVal(call.Args[1])
				if isUnknown(r) || isUnknown(cc) {
					return symUnknown{}, true
				}
				return symMul{symConst(8), symMul{r, cc}}, true
			}
		}
	}
	return nil, false
}

// slotContracts sums the per-rank constructor slot payloads of one operator
// type: every recorded slice length and matrix dimension whose canonical
// key carries a slot index ("scratch[]", "blocks[]", "scratch[].vl1"). The
// O(P) bookkeeping arrays holding the slots themselves (the slice headers,
// the ranges table) are deliberately outside the model: they are shape-
// independent and vanish against any data term.
func slotContracts(shapes *shapeTable, opType string) symExpr {
	total := symExpr(symConst(0))
	if opType == "" {
		return total
	}
	for _, key := range sortedShapeKeys(shapes.lens[opType]) {
		if !strings.Contains(key, "[]") {
			continue
		}
		total = symAdd{total, symMul{symConst(shapes.sizeOf(opType, key)), shapes.lens[opType][key]}}
	}
	for _, key := range sortedShapeKeys(shapes.dims[opType]) {
		if !strings.Contains(key, "[]") {
			continue
		}
		total = symAdd{total, matrixResident(shapes, opType, key)}
	}
	return total
}

// sharedContracts returns the steady-state resident size of every operator-
// shared persistent field (recorded shape entries without a slot index):
// the dictionary d, SGD's full data matrix a, or a whole-operator buffer.
// Shared fields are charged at their first textual touch in the rank body,
// so a field only one guarded branch uses (Case 1's dictionary on rank 0)
// lands in that branch's region.
func sharedContracts(shapes *shapeTable, opType string) map[string]symExpr {
	out := make(map[string]symExpr)
	if opType == "" {
		return out
	}
	for key, l := range shapes.lens[opType] {
		if strings.Contains(key, "[]") || strings.Contains(key, ".") {
			continue
		}
		out[key] = symMul{symConst(shapes.sizeOf(opType, key)), l}
	}
	for key := range shapes.dims[opType] {
		if strings.Contains(key, "[]") || strings.Contains(key, ".") {
			continue
		}
		out[key] = matrixResident(shapes, opType, key)
	}
	return out
}

// matrixResident prices the steady-state payload of a recorded matrix
// field: dense storage is 8·rows·cols; a CSC block is its value and
// row-index payload (16·nnz) plus the column-pointer array (8·(cols+1)); a
// FastDict factor chain is 8·ResidentWords — Σ (2·nnz_i + cols_i + 1) words
// of values, row indices, and column pointers across the factors.
func matrixResident(shapes *shapeTable, opType, key string) symExpr {
	d := shapes.dims[opType][key]
	switch shapes.kindOf(opType, key) {
	case "csc":
		return symAdd{
			symMul{symConst(16), symVar("NNZ(" + key + ")")},
			symMul{symConst(8), symAdd{d.cols, symConst(1)}},
		}
	case "faust":
		return symMul{symConst(8), symVar("ResidentWords(" + key + ")")}
	}
	return symMul{symConst(8), symMul{d.rows, d.cols}}
}

// chargeEntry folds the constructor slot payloads into the first top-level
// region of a rank body: the slots exist the moment the rank enters, so the
// first unguarded AddResident must account for them. A body with charges
// but no claim gets a trailing uncovered term.
func chargeEntry(terms []costTerm, entry symExpr, body *ast.BlockStmt) []costTerm {
	if p, ok := normalize(entry, nil); ok && len(p) == 0 {
		return terms
	}
	for i := range terms {
		if terms[i].guard == "" && !terms[i].unsupported {
			terms[i].derived = symAdd{terms[i].derived, entry}
			return terms
		}
	}
	return append(terms, costTerm{guard: "", derived: entry, pos: body.Pos()})
}

// delegatesResidency reports whether a rank body hands its rank off to
// another rank method of the same operator type (g.applyCase1(r, x, y)): the
// callee establishes and claims the residency, so charging the wrapper too
// would double-count every slot.
func delegatesResidency(info *types.Info, opType string, body *ast.BlockStmt) bool {
	if opType == "" {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || namedTypeName(info.TypeOf(sel.X)) != opType {
			return true
		}
		for _, a := range call.Args {
			if t := info.TypeOf(a); t != nil && isRankPtr(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// reportEscapingAllocs flags allocations a rank body stores through a field:
// the allocation escapes its region into persistent state established
// outside the constructor, where no other entry point's capacity polynomial
// (and no hotalloc guarantee) can see it.
func reportEscapingAllocs(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isAllocCall(info, call) {
				continue
			}
			if storesThroughField(as.Lhs[i]) {
				p.Reportf(as.Pos(),
					"allocation escapes the rank body into a field — persistent resident state must be established in the constructor so every entry point's capacity polynomial (Eq. 4) sees it")
			}
		}
		return true
	})
}

// isAllocCall matches the allocation calls the capacity model prices.
func isAllocCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltinObj(info.Uses[id]) && id.Name == "make" {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewDense" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() == "extdict/internal/mat"
			}
		}
	}
	return false
}

// storesThroughField reports whether an assignment target reaches through a
// field selector (g.buf, g.scratch[i]) rather than binding a local.
func storesThroughField(lhs ast.Expr) bool {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			return true
		default:
			return false
		}
	}
}

// sortedShapeKeys returns the map's keys in stable order.
func sortedShapeKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
