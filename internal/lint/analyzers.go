package lint

// All returns every project analyzer in stable report order.
func All() []*Analyzer {
	return []*Analyzer{
		NoRand,
		NoClock,
		Goroutines,
		FlopAudit,
		Collective,
		HotAlloc,
		ErrCheck,
		PanicMsg,
		NoFloatEq,
		ExportedDoc,
		Schedule,
		CostModel,
		MemModel,
		AllocModel,
		SharedState,
		LockOrder,
		DetOrder,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// hasPrefixPkg reports whether importPath is pkg or a subpackage of pkg.
func hasPrefixPkg(importPath, pkg string) bool {
	return importPath == pkg || len(importPath) > len(pkg) &&
		importPath[:len(pkg)] == pkg && importPath[len(pkg)] == '/'
}

// inAnyPkg reports whether importPath lies in any of the listed packages.
func inAnyPkg(importPath string, pkgs ...string) bool {
	for _, pkg := range pkgs {
		if hasPrefixPkg(importPath, pkg) {
			return true
		}
	}
	return false
}
