package lint

import "go/ast"

// clockFuncs are the time package's clock reads. Timers and constants
// (time.After, time.Millisecond) are fine; reading the clock is not.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// NoClock confines wall-clock reads to the two packages allowed to measure
// time: the cluster runtime (which stamps Stats.Wall) and the perf package
// (which owns the Stopwatch helper). Everywhere else, "time" must come from
// the platform cost model — a solver that consults the host clock smuggles
// platform noise into numbers the paper models analytically.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/time.Since/time.Until outside internal/cluster " +
		"and internal/perf; modeled time comes from the cost model, wall " +
		"time only from Stats.Wall or perf.StartWall",
	Run: func(p *Pass) {
		if inAnyPkg(p.Pkg.ImportPath, "extdict/internal/cluster", "extdict/internal/perf") {
			return
		}
		p.EachFile(func(f *ast.File) {
			timeName, ok := ImportName(f, "time")
			if !ok || timeName == "_" || timeName == "." {
				return
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !clockFuncs[sel.Sel.Name] {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
					p.Reportf(call.Pos(),
						"time.%s outside internal/cluster and internal/perf; measure wall time with perf.StartWall",
						sel.Sel.Name)
				}
				return true
			})
		})
	},
}
