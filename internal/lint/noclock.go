package lint

import (
	"go/ast"
	"go/types"
)

// clockFuncs are the time package's clock reads. Timers and constants
// (time.After, time.Millisecond) are fine; reading the clock is not.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// NoClock confines wall-clock reads to the two packages allowed to measure
// time: the cluster runtime (which stamps Stats.Wall) and the perf package
// (which owns the Stopwatch helper). Everywhere else, "time" must come from
// the platform cost model — a solver that consults the host clock smuggles
// platform noise into numbers the paper models analytically.
//
// The check is type-resolved: any use of the time.Now/Since/Until function
// objects is flagged, whether reached through the plain import, an aliased
// or dot import, or a reference without a call (assigning time.Now to a
// variable smuggles the clock just as well). Without type information it
// falls back to the syntactic time.<func>() pattern.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/time.Since/time.Until outside internal/cluster " +
		"and internal/perf; modeled time comes from the cost model, wall " +
		"time only from Stats.Wall or perf.StartWall",
	Run: func(p *Pass) {
		if inAnyPkg(p.Pkg.ImportPath, "extdict/internal/cluster", "extdict/internal/perf") {
			return
		}
		p.EachFile(func(f *ast.File) {
			if p.Pkg.TypesInfo != nil {
				noClockTyped(p, f)
				return
			}
			noClockSyntactic(p, f)
		})
	},
}

// isClockObj reports whether obj is one of time's clock-read functions.
func isClockObj(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && clockFuncs[fn.Name()]
}

// noClockTyped flags every resolved use of a clock function: selector
// (time.Now, aliased or not), dot-imported bare identifier, call or plain
// reference alike.
func noClockTyped(p *Pass, f *ast.File) {
	info := p.Pkg.TypesInfo
	seen := make(map[*ast.Ident]bool) // selector Sels handled, skip as Idents
	ast.Inspect(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			seen[e.Sel] = true
			if isClockObj(info.Uses[e.Sel]) {
				p.Reportf(e.Pos(),
					"time.%s outside internal/cluster and internal/perf; measure wall time with perf.StartWall",
					e.Sel.Name)
			}
		case *ast.Ident:
			if !seen[e] && isClockObj(info.Uses[e]) {
				p.Reportf(e.Pos(),
					"time.%s outside internal/cluster and internal/perf; measure wall time with perf.StartWall",
					e.Name)
			}
		}
		return true
	})
}

// noClockSyntactic is the pre-type-checking behavior: direct calls through
// the file's named time import.
func noClockSyntactic(p *Pass, f *ast.File) {
	timeName, ok := ImportName(f, "time")
	if !ok || timeName == "_" || timeName == "." {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !clockFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
			p.Reportf(call.Pos(),
				"time.%s outside internal/cluster and internal/perf; measure wall time with perf.StartWall",
				sel.Sel.Name)
		}
		return true
	})
}
