// Package exd implements the Extensible Dictionary (ExD) projection —
// Algorithm 1 of the paper and the primary contribution of ExtDict.
//
// ExD factors a column-normalized data matrix A (M×N) into a dictionary D
// (M×L), formed by sampling L columns of A uniformly at random, and a sparse
// coefficient matrix C (L×N) found column-by-column with Orthogonal Matching
// Pursuit so that ‖A - D·C‖_F ≤ ε‖A‖_F.
//
// The "extensible" degree of freedom is L: enlarging the dictionary makes
// each column's code sparser (the union-of-subspaces argument of §V-B),
// trading communication cost (∝ min(M, L)) against computation and memory
// (∝ nnz(C)). The tune package searches this trade-off against a platform
// cost model.
package exd

import (
	"fmt"
	"math"

	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/rng"
	"extdict/internal/sparse"
)

// Params configures one ExD projection.
type Params struct {
	// L is the dictionary size — the number of columns of A sampled into D.
	L int
	// Epsilon is the relative transformation error tolerance ε of Eq. 1:
	// each column is coded until ‖a_j - D·c_j‖ ≤ ε‖a_j‖.
	Epsilon float64
	// MaxAtoms caps the per-column support size; 0 means min(M, L).
	MaxAtoms int
	// Workers is the number of parallel sparse-coding goroutines
	// (Algorithm 1 distributes step 3 over processors); 0 means 1.
	Workers int
	// Seed drives the random column sub-sampling.
	Seed uint64
}

func (p Params) validate(m, n int) error {
	if p.L < 1 || p.L > n {
		return fmt.Errorf("exd: dictionary size L=%d outside [1, N=%d]", p.L, n)
	}
	if p.Epsilon < 0 || p.Epsilon >= 1 {
		return fmt.Errorf("exd: epsilon %v outside [0, 1)", p.Epsilon)
	}
	if p.MaxAtoms < 0 {
		return fmt.Errorf("exd: negative MaxAtoms")
	}
	return nil
}

// Transform is a fitted ExD projection A ≈ D·C.
type Transform struct {
	// D is the M×L dictionary (selected columns of A).
	D *mat.Dense
	// C is the L×N sparse coefficient matrix.
	C *sparse.CSC
	// DictIdx records which columns of A were sampled into D; -1 entries
	// mark atoms appended by evolving-data updates (they come from A_new,
	// not the original A).
	DictIdx []int
	// OMPIters is the total number of OMP iterations spent coding C —
	// the dominant preprocessing cost (Table II).
	OMPIters int
	// Params echoes the fitting parameters.
	Params Params
}

// Fit runs Algorithm 1 on a column-normalized data matrix.
func Fit(a *mat.Dense, p Params) (*Transform, error) {
	if err := p.validate(a.Rows, a.Cols); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	r := rng.New(p.Seed)

	// Step 0-1: sample L column indices uniformly at random; load D.
	idx := r.Subset(a.Cols, p.L)
	d := a.ColSlice(idx)

	// Steps 2-3: every processor codes its block of columns with OMP.
	coder := omp.NewBatchCoder(d)
	c, iters := coder.EncodeColumns(a, p.Epsilon, p.MaxAtoms, workers)

	return &Transform{D: d, C: c, DictIdx: idx, OMPIters: iters, Params: p}, nil
}

// L returns the current dictionary size (it grows under evolving-data
// updates).
func (t *Transform) L() int { return t.D.Cols }

// N returns the number of coded data columns.
func (t *Transform) N() int { return t.C.Cols }

// Alpha returns the density measure α = nnz(C)/N — the average number of
// nonzeros per coefficient column (Eq. 5).
func (t *Transform) Alpha() float64 {
	if t.C.Cols == 0 {
		return 0
	}
	return float64(t.C.NNZ()) / float64(t.C.Cols)
}

// RelError returns the achieved relative transformation error
// ‖A - D·C‖_F / ‖A‖_F against the given data matrix, computed column by
// column in O(M·nnz(C)) without forming D·C densely.
func (t *Transform) RelError(a *mat.Dense) float64 {
	if a.Rows != t.D.Rows || a.Cols != t.C.Cols {
		panic("exd: RelError shape mismatch")
	}
	var num, den float64
	rec := make([]float64, a.Rows)
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		mat.Zero(rec)
		for ptr := t.C.ColPtr[j]; ptr < t.C.ColPtr[j+1]; ptr++ {
			atom, v := t.C.RowIdx[ptr], t.C.Val[ptr]
			for i := 0; i < a.Rows; i++ {
				rec[i] += v * t.D.At(i, atom)
			}
		}
		a.Col(j, col)
		for i := range col {
			dlt := col[i] - rec[i]
			num += dlt * dlt
			den += col[i] * col[i]
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Reconstruct materializes D·C as a dense matrix (test/inspection helper;
// production paths never form it).
func (t *Transform) Reconstruct() *mat.Dense {
	out := mat.NewDense(t.D.Rows, t.C.Cols)
	col := make([]float64, t.D.Rows)
	for j := 0; j < t.C.Cols; j++ {
		mat.Zero(col)
		for ptr := t.C.ColPtr[j]; ptr < t.C.ColPtr[j+1]; ptr++ {
			atom, v := t.C.RowIdx[ptr], t.C.Val[ptr]
			for i := range col {
				col[i] += v * t.D.At(i, atom)
			}
		}
		out.SetCol(j, col)
	}
	return out
}

// MemoryWords returns the storage footprint of the transform in float64
// words, matching the paper's Table III accounting: M·L for D plus two words
// per nonzero of C (value + index) plus column pointers.
func (t *Transform) MemoryWords() int {
	return t.D.Rows*t.D.Cols + 2*t.C.NNZ() + t.C.Cols + 1
}
