package exd

// Ablation: the evolving-data update (§V-E, zero-padding of Fig. 3) versus
// re-running ExD on the combined dataset from scratch. The update's cost is
// proportional to the NEW columns only, while a refit pays for everything —
// the gap widens with the accumulated history size.

import (
	"testing"

	"extdict/internal/dataset"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

func evolveFixtures(b *testing.B) (base, extra *mat.Dense) {
	b.Helper()
	r := rng.New(1)
	u1, err := dataset.GenerateUnion(dataset.UnionParams{M: 64, N: 6000, Ks: []int{3, 4}}, r)
	if err != nil {
		b.Fatal(err)
	}
	u2, err := dataset.GenerateUnion(dataset.UnionParams{M: 64, N: 500, Ks: []int{6}}, r)
	if err != nil {
		b.Fatal(err)
	}
	return u1.A, u2.A
}

func BenchmarkAblationEvolveUpdate(b *testing.B) {
	base, extra := evolveFixtures(b)
	params := Params{L: 120, Epsilon: 0.08, Seed: 2, Workers: 2}
	fitted, err := Fit(base, params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone the transform state so every iteration extends the same
		// baseline instead of accumulating columns.
		tr := &Transform{
			D: fitted.D, C: fitted.C,
			DictIdx: fitted.DictIdx, Params: fitted.Params,
		}
		if _, err := tr.Extend(extra, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEvolveRefit(b *testing.B) {
	base, extra := evolveFixtures(b)
	combined := mat.NewDense(base.Rows, base.Cols+extra.Cols)
	for i := 0; i < base.Rows; i++ {
		copy(combined.Row(i)[:base.Cols], base.Row(i))
		copy(combined.Row(i)[base.Cols:], extra.Row(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(combined, Params{L: 130, Epsilon: 0.08, Seed: 2, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
