package exd

import (
	"math"
	"testing"

	"extdict/internal/dataset"
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// testUnion generates a small union-of-subspaces dataset for the tests.
func testUnion(t testing.TB, m, n int, ks []int, seed uint64) *dataset.Union {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: ks}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestFitValidation(t *testing.T) {
	u := testUnion(t, 16, 40, []int{3}, 1)
	if _, err := Fit(u.A, Params{L: 0, Epsilon: 0.1}); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := Fit(u.A, Params{L: 41, Epsilon: 0.1}); err == nil {
		t.Fatal("L>N accepted")
	}
	if _, err := Fit(u.A, Params{L: 10, Epsilon: -0.1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := Fit(u.A, Params{L: 10, Epsilon: 1.0}); err == nil {
		t.Fatal("epsilon=1 accepted")
	}
}

func TestFitShapesAndDictionaryColumns(t *testing.T) {
	u := testUnion(t, 20, 80, []int{3, 4}, 2)
	tr, err := Fit(u.A, Params{L: 30, Epsilon: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.D.Rows != 20 || tr.D.Cols != 30 {
		t.Fatalf("D shape %dx%d", tr.D.Rows, tr.D.Cols)
	}
	if tr.C.Rows != 30 || tr.C.Cols != 80 {
		t.Fatalf("C shape %dx%d", tr.C.Rows, tr.C.Cols)
	}
	if len(tr.DictIdx) != 30 {
		t.Fatal("DictIdx length wrong")
	}
	// Dictionary columns must be actual columns of A.
	for k, j := range tr.DictIdx {
		for i := 0; i < 20; i++ {
			if tr.D.At(i, k) != u.A.At(i, j) {
				t.Fatalf("dictionary atom %d is not column %d of A", k, j)
			}
		}
	}
}

func TestFitMeetsErrorTolerance(t *testing.T) {
	u := testUnion(t, 24, 120, []int{3, 4, 5}, 3)
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.01} {
		tr, err := Fit(u.A, Params{L: 60, Epsilon: eps, Seed: 7, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.RelError(u.A); got > eps+1e-9 {
			t.Fatalf("eps=%v: achieved error %v", eps, got)
		}
	}
}

func TestFitDeterministicInSeed(t *testing.T) {
	u := testUnion(t, 16, 60, []int{4}, 4)
	a, _ := Fit(u.A, Params{L: 20, Epsilon: 0.1, Seed: 9})
	b, _ := Fit(u.A, Params{L: 20, Epsilon: 0.1, Seed: 9})
	if a.C.NNZ() != b.C.NNZ() || a.Alpha() != b.Alpha() {
		t.Fatal("same seed produced different transforms")
	}
	for i := range a.DictIdx {
		if a.DictIdx[i] != b.DictIdx[i] {
			t.Fatal("same seed sampled different dictionaries")
		}
	}
}

func TestWorkerCountDoesNotChangeResult(t *testing.T) {
	u := testUnion(t, 20, 70, []int{3, 3}, 5)
	p := Params{L: 25, Epsilon: 0.08, Seed: 11}
	single, _ := Fit(u.A, p)
	p.Workers = 4
	multi, _ := Fit(u.A, p)
	if single.C.NNZ() != multi.C.NNZ() {
		t.Fatal("parallel coding changed nnz")
	}
	for j := 0; j <= u.A.Cols; j++ {
		if single.C.ColPtr[j] != multi.C.ColPtr[j] {
			t.Fatal("parallel coding changed column structure")
		}
	}
	for i := range single.C.Val {
		if single.C.RowIdx[i] != multi.C.RowIdx[i] ||
			math.Abs(single.C.Val[i]-multi.C.Val[i]) > 1e-12 {
			t.Fatal("parallel coding changed values")
		}
	}
}

func TestAlphaDecreasesWithL(t *testing.T) {
	// The core ExD tunability property (Fig. 4/5): on union-of-subspace
	// data, α(L) is (weakly) decreasing for L above L_min.
	u := testUnion(t, 32, 300, []int{4, 5, 6}, 6)
	var prev float64 = math.Inf(1)
	for _, l := range []int{60, 120, 200, 290} {
		tr, err := Fit(u.A, Params{L: l, Epsilon: 0.05, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		a := tr.Alpha()
		if a > prev*1.15 { // allow mild sampling noise
			t.Fatalf("alpha increased with L: %v -> %v at L=%d", prev, a, l)
		}
		if a < prev {
			prev = a
		}
	}
}

func TestAlphaLooseEpsilonSparser(t *testing.T) {
	// Second tunability axis (Fig. 5): looser ε gives sparser C.
	u := testUnion(t, 32, 200, []int{5, 6}, 7)
	tight, _ := Fit(u.A, Params{L: 100, Epsilon: 0.01, Seed: 17})
	loose, _ := Fit(u.A, Params{L: 100, Epsilon: 0.2, Seed: 17})
	if loose.Alpha() > tight.Alpha() {
		t.Fatalf("loose eps denser: %v vs %v", loose.Alpha(), tight.Alpha())
	}
}

func TestAlphaBoundedBySubspaceDimension(t *testing.T) {
	// §V-B guarantee: columns on a K-dimensional subspace admit K-sparse
	// codes once the dictionary covers the subspace. With generous L,
	// average sparsity must not exceed max(K) by much.
	ks := []int{3, 4}
	u := testUnion(t, 24, 240, ks, 8)
	tr, err := Fit(u.A, Params{L: 160, Epsilon: 0.02, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	maxK := 4.0
	if a := tr.Alpha(); a > maxK+1 {
		t.Fatalf("alpha %v far above max subspace dimension %v", a, maxK)
	}
}

func TestFullDictionaryIdentityCodes(t *testing.T) {
	// L = N ⇒ D = A (up to permutation) ⇒ α = 1 (paper §VII).
	u := testUnion(t, 16, 40, []int{3}, 9)
	tr, err := Fit(u.A, Params{L: 40, Epsilon: 1e-9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a := tr.Alpha(); math.Abs(a-1) > 1e-9 {
		t.Fatalf("alpha with full dictionary = %v, want 1", a)
	}
}

func TestReconstructMatchesRelError(t *testing.T) {
	u := testUnion(t, 18, 50, []int{4}, 10)
	tr, _ := Fit(u.A, Params{L: 25, Epsilon: 0.1, Seed: 23})
	rec := tr.Reconstruct()
	diff := rec.Clone()
	diff.Sub(u.A)
	want := diff.FrobNorm() / u.A.FrobNorm()
	if got := tr.RelError(u.A); math.Abs(got-want) > 1e-10 {
		t.Fatalf("RelError %v, dense check %v", got, want)
	}
}

func TestMemoryWords(t *testing.T) {
	u := testUnion(t, 10, 30, []int{2}, 11)
	tr, _ := Fit(u.A, Params{L: 12, Epsilon: 0.1, Seed: 25})
	want := 10*12 + 2*tr.C.NNZ() + 30 + 1
	if got := tr.MemoryWords(); got != want {
		t.Fatalf("MemoryWords = %d, want %d", got, want)
	}
}

func TestExtendFastPath(t *testing.T) {
	// New columns drawn from the same subspaces: the dictionary already
	// spans them, so no growth should occur.
	p := dataset.UnionParams{M: 24, N: 200, Ks: []int{3, 4}}
	u, _ := dataset.GenerateUnion(p, rng.New(31))
	base := u.Subset(seqInts(0, 150))
	extra := u.Subset(seqInts(150, 200))

	tr, err := Fit(base.A, Params{L: 90, Epsilon: 0.08, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	l0 := tr.L()
	res, err := tr.Extend(extra.A, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DictGrown {
		t.Fatalf("dictionary grew although data is in-span (failed=%d)", res.FailedColumns)
	}
	if tr.L() != l0 || tr.N() != 200 {
		t.Fatalf("shape after extend: L=%d N=%d", tr.L(), tr.N())
	}
	// Whole updated transform must satisfy the tolerance on [base extra].
	if got := tr.RelError(u.A); got > 0.08+1e-9 {
		t.Fatalf("error after extend %v", got)
	}
}

func TestExtendGrowthPath(t *testing.T) {
	// New columns from unseen subspaces force dictionary growth and the
	// Fig. 3 zero-padding layout.
	r := rng.New(33)
	uOld, _ := dataset.GenerateUnion(dataset.UnionParams{M: 30, N: 120, Ks: []int{3}}, r)
	uNew, _ := dataset.GenerateUnion(dataset.UnionParams{M: 30, N: 60, Ks: []int{5}}, r)

	tr, err := Fit(uOld.A, Params{L: 60, Epsilon: 0.05, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	l0, n0 := tr.L(), tr.N()
	res, err := tr.Extend(uNew.A, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DictGrown || res.AddedAtoms == 0 {
		t.Fatalf("expected growth, got %+v", res)
	}
	if tr.L() != l0+res.AddedAtoms || tr.N() != n0+60 {
		t.Fatalf("post-growth shapes L=%d N=%d", tr.L(), tr.N())
	}
	if err := tr.C.Check(); err != nil {
		t.Fatal(err)
	}
	// Old columns must not reference new atoms (upper-right zero block).
	for j := 0; j < n0; j++ {
		for p := tr.C.ColPtr[j]; p < tr.C.ColPtr[j+1]; p++ {
			if tr.C.RowIdx[p] >= l0 {
				t.Fatal("old column references a new atom")
			}
		}
	}
	// New atoms flagged in DictIdx.
	for k := l0; k < tr.L(); k++ {
		if tr.DictIdx[k] != -1 {
			t.Fatal("appended atom not flagged with -1")
		}
	}
	// Combined transform meets tolerance on the combined data.
	combined := mat.NewDense(30, 180)
	for i := 0; i < 30; i++ {
		copy(combined.Row(i)[:120], uOld.A.Row(i))
		copy(combined.Row(i)[120:], uNew.A.Row(i))
	}
	if got := tr.RelError(combined); got > 0.05+1e-9 {
		t.Fatalf("combined error %v", got)
	}
}

func TestExtendShapeMismatch(t *testing.T) {
	u := testUnion(t, 12, 40, []int{2}, 12)
	tr, _ := Fit(u.A, Params{L: 15, Epsilon: 0.1, Seed: 35})
	bad := mat.NewDense(13, 5)
	if _, err := tr.Extend(bad, 0); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if res, err := tr.Extend(mat.NewDense(12, 0), 0); err != nil || res.NewColumns != 0 {
		t.Fatal("empty extend mishandled")
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func BenchmarkFitSalinasSmall(b *testing.B) {
	p, _ := dataset.Preset("salinas", 0.25)
	u, err := dataset.GenerateUnion(p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(u.A, Params{L: 200, Epsilon: 0.1, Seed: 1, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
