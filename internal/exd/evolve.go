package exd

import (
	"fmt"

	"extdict/internal/mat"
	"extdict/internal/omp"
	"extdict/internal/sparse"
)

// ExtendResult reports what an evolving-data update did.
type ExtendResult struct {
	// NewColumns is the number of data columns appended.
	NewColumns int
	// FailedColumns is how many new columns the existing dictionary could
	// not code within tolerance (before any dictionary growth).
	FailedColumns int
	// DictGrown reports whether new atoms were appended to D (the
	// zero-padding update of Fig. 3).
	DictGrown bool
	// AddedAtoms is the number of atoms appended when DictGrown.
	AddedAtoms int
	// OMPIters counts the OMP iterations spent by this update.
	OMPIters int
}

// Extend implements the evolving-data update of §V-E. New columns aNew are
// first coded against the existing dictionary (re-running only step 3 of
// Algorithm 1). If every column meets the error tolerance, C simply gains
// the new coefficient columns. Otherwise ExD is re-run on aNew alone to
// obtain (D_new, C_new), the dictionary becomes [D D_new], and the combined
// coefficient matrix takes the zero-padded block form of Fig. 3:
//
//	C' = [ C      C_ok∪0 ]
//	     [ 0      C_new  ]
//
// newL is the dictionary size used for the refit when growth is needed
// (0 = same ratio L/N as the original fit, at least 1).
func (t *Transform) Extend(aNew *mat.Dense, newL int) (ExtendResult, error) {
	var res ExtendResult
	if aNew.Rows != t.D.Rows {
		return res, fmt.Errorf("exd: new data has %d rows, dictionary has %d", aNew.Rows, t.D.Rows)
	}
	if aNew.Cols == 0 {
		return res, nil
	}
	res.NewColumns = aNew.Cols
	workers := t.Params.Workers
	if workers < 1 {
		workers = 1
	}
	eps := t.Params.Epsilon

	// Try the existing dictionary first. The trial pass only needs to
	// discover whether columns are in-span: cap the support at a small
	// multiple of the observed density so out-of-span columns fail fast
	// instead of grinding through min(M, L) futile selections.
	trialMax := 3*int(t.Alpha()+1) + 4
	if t.Params.MaxAtoms > 0 && t.Params.MaxAtoms < trialMax {
		trialMax = t.Params.MaxAtoms
	}
	coder := omp.NewBatchCoder(t.D)
	cNew, iters := coder.EncodeColumns(aNew, eps, trialMax, workers)
	res.OMPIters += iters

	// Count columns whose residual missed the tolerance: reconstruct the
	// relative error per column from the achieved code.
	failed := make([]bool, aNew.Cols)
	nFailed := 0
	rec := make([]float64, aNew.Rows)
	col := make([]float64, aNew.Rows)
	for j := 0; j < aNew.Cols; j++ {
		mat.Zero(rec)
		for p := cNew.ColPtr[j]; p < cNew.ColPtr[j+1]; p++ {
			atom, v := cNew.RowIdx[p], cNew.Val[p]
			for i := range rec {
				rec[i] += v * t.D.At(i, atom)
			}
		}
		aNew.Col(j, col)
		var num, den float64
		for i := range col {
			d := col[i] - rec[i]
			num += d * d
			den += col[i] * col[i]
		}
		if den > 0 && num > eps*eps*den*(1+1e-9) {
			failed[j] = true
			nFailed++
		}
	}
	res.FailedColumns = nFailed

	if nFailed == 0 {
		// Fast path: C = [C, C_new], D unchanged.
		t.C = sparse.HStack(t.C, cNew)
		t.OMPIters += res.OMPIters
		return res, nil
	}

	// Growth path: run ExD on aNew to get D_new and C_new, then zero-pad.
	if newL <= 0 {
		ratio := float64(t.Params.L) / float64(t.C.Cols)
		newL = int(ratio * float64(aNew.Cols))
		if newL < 1 {
			newL = 1
		}
	}
	if newL > aNew.Cols {
		newL = aNew.Cols
	}
	sub := t.Params
	sub.L = newL
	sub.Seed = t.Params.Seed + 0x9e37
	fresh, err := Fit(aNew, sub)
	if err != nil {
		return res, err
	}
	res.OMPIters += fresh.OMPIters
	res.DictGrown = true
	res.AddedAtoms = fresh.D.Cols

	oldL := t.D.Cols
	totalL := oldL + fresh.D.Cols

	// D' = [D D_new].
	d2 := mat.NewDense(t.D.Rows, totalL)
	for i := 0; i < t.D.Rows; i++ {
		copy(d2.Row(i)[:oldL], t.D.Row(i))
		copy(d2.Row(i)[oldL:], fresh.D.Row(i))
	}

	// C' = [C padded ; C_new shifted] stacked horizontally.
	oldPadded := t.C.PadRows(totalL)
	newShifted := fresh.C.ShiftRows(oldL, totalL)
	t.D = d2
	t.C = sparse.HStack(oldPadded, newShifted)
	for range fresh.DictIdx {
		t.DictIdx = append(t.DictIdx, -1)
	}
	t.OMPIters += res.OMPIters
	return res, nil
}
