package exd

import (
	"testing"
	"testing/quick"

	"extdict/internal/dataset"
	"extdict/internal/rng"
)

// Property-based invariants of the ExD transform over random
// union-of-subspaces datasets and random parameters.

func TestTransformInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		m := 12 + r.Intn(24)
		n := 40 + r.Intn(120)
		ks := []int{2 + r.Intn(3), 2 + r.Intn(4)}
		u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: ks}, r)
		if err != nil {
			return false
		}
		l := 2*(ks[0]+ks[1]) + r.Intn(n/2)
		if l > n {
			l = n
		}
		eps := 0.05 + 0.2*r.Float64()
		tr, err := Fit(u.A, Params{L: l, Epsilon: eps, Seed: uint64(seed) + 1, Workers: 1 + r.Intn(3)})
		if err != nil {
			return false
		}

		// Shape invariants.
		if tr.D.Rows != m || tr.D.Cols != l || tr.C.Rows != l || tr.C.Cols != n {
			return false
		}
		if err := tr.C.Check(); err != nil {
			return false
		}
		// Dictionary indices are valid, distinct columns of A.
		seen := map[int]bool{}
		for _, idx := range tr.DictIdx {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		// Density bounds: 0 ≤ α ≤ min(M, L); iterations == nnz.
		a := tr.Alpha()
		maxA := float64(m)
		if l < m {
			maxA = float64(l)
		}
		if a < 0 || a > maxA {
			return false
		}
		if tr.OMPIters != tr.C.NNZ() {
			return false
		}
		// Achieved error never negative, and the reported memory matches
		// its definition.
		if tr.RelError(u.A) < 0 {
			return false
		}
		want := m*l + 2*tr.C.NNZ() + n + 1
		return tr.MemoryWords() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendPreservesOldCodes(t *testing.T) {
	// Property: extending never alters the coefficients of previously
	// coded columns (both fast path and growth path).
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 99)
		u1, err := dataset.GenerateUnion(dataset.UnionParams{M: 20, N: 80, Ks: []int{3}}, r)
		if err != nil {
			return false
		}
		u2, err := dataset.GenerateUnion(dataset.UnionParams{M: 20, N: 30, Ks: []int{2 + r.Intn(5)}}, r)
		if err != nil {
			return false
		}
		tr, err := Fit(u1.A, Params{L: 40, Epsilon: 0.1, Seed: uint64(seed), Workers: 2})
		if err != nil {
			return false
		}
		type entry struct {
			row int
			val float64
		}
		before := make([][]entry, 80)
		for j := 0; j < 80; j++ {
			for p := tr.C.ColPtr[j]; p < tr.C.ColPtr[j+1]; p++ {
				before[j] = append(before[j], entry{tr.C.RowIdx[p], tr.C.Val[p]})
			}
		}
		if _, err := tr.Extend(u2.A, 0); err != nil {
			return false
		}
		for j := 0; j < 80; j++ {
			got := tr.C.ColPtr[j+1] - tr.C.ColPtr[j]
			if got != len(before[j]) {
				return false
			}
			for k, p := 0, tr.C.ColPtr[j]; p < tr.C.ColPtr[j+1]; k, p = k+1, p+1 {
				if tr.C.RowIdx[p] != before[j][k].row || tr.C.Val[p] != before[j][k].val {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
