package exd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"extdict/internal/mat"
	"extdict/internal/sparse"
)

// Serialization of fitted transforms: preprocessing is the expensive
// one-time step ExtDict amortizes over many runs (§I), so a production
// deployment fits once and ships (D, C) to the compute jobs. The format is
// little-endian binary: a magic string, the Params, the dictionary, the CSC
// arrays, and the dictionary provenance indices.

const transformMagic = "EXDTFM01"

// ErrBadTransformFile reports an unreadable or corrupt transform file.
var ErrBadTransformFile = errors.New("exd: bad transform file")

// WriteTo serializes the transform. It returns the byte count written.
func (t *Transform) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(transformMagic); err != nil {
		return n, err
	}
	n += int64(len(transformMagic))

	hdr := []int64{
		int64(t.D.Rows), int64(t.D.Cols),
		int64(t.C.Rows), int64(t.C.Cols), int64(t.C.NNZ()),
		int64(t.Params.L), int64(t.Params.MaxAtoms), int64(t.OMPIters),
	}
	if err := write(hdr); err != nil {
		return n, err
	}
	if err := write(math.Float64bits(t.Params.Epsilon)); err != nil {
		return n, err
	}
	if err := write(t.Params.Seed); err != nil {
		return n, err
	}

	// Dictionary, row-major.
	for i := 0; i < t.D.Rows; i++ {
		if err := write(t.D.Row(i)); err != nil {
			return n, err
		}
	}
	// CSC arrays as int64 + float64.
	colPtr := make([]int64, len(t.C.ColPtr))
	for i, v := range t.C.ColPtr {
		colPtr[i] = int64(v)
	}
	if err := write(colPtr); err != nil {
		return n, err
	}
	rowIdx := make([]int64, len(t.C.RowIdx))
	for i, v := range t.C.RowIdx {
		rowIdx[i] = int64(v)
	}
	if err := write(rowIdx); err != nil {
		return n, err
	}
	if err := write(t.C.Val); err != nil {
		return n, err
	}
	dictIdx := make([]int64, len(t.DictIdx))
	for i, v := range t.DictIdx {
		dictIdx[i] = int64(v)
	}
	if err := write(dictIdx); err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTransform deserializes a transform written by WriteTo, validating
// structural invariants before returning it.
func ReadTransform(r io.Reader) (*Transform, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(transformMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTransformFile, err)
	}
	if string(magic) != transformMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTransformFile, magic)
	}
	read := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("%w: %v", ErrBadTransformFile, err)
		}
		return nil
	}
	hdr := make([]int64, 8)
	if err := read(hdr); err != nil {
		return nil, err
	}
	dRows, dCols := int(hdr[0]), int(hdr[1])
	cRows, cCols, nnz := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if dRows <= 0 || dCols <= 0 || cRows != dCols || cCols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: inconsistent header %v", ErrBadTransformFile, hdr)
	}
	const maxDim = 1 << 28
	if dRows > maxDim || dCols > maxDim || cCols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("%w: implausible sizes %v", ErrBadTransformFile, hdr)
	}
	var epsBits, seed uint64
	if err := read(&epsBits); err != nil {
		return nil, err
	}
	if err := read(&seed); err != nil {
		return nil, err
	}

	t := &Transform{
		D:        mat.NewDense(dRows, dCols),
		OMPIters: int(hdr[7]),
		Params: Params{
			L: int(hdr[5]), MaxAtoms: int(hdr[6]),
			Epsilon: math.Float64frombits(epsBits), Seed: seed,
		},
	}
	for i := 0; i < dRows; i++ {
		if err := read(t.D.Row(i)); err != nil {
			return nil, err
		}
	}
	colPtr := make([]int64, cCols+1)
	if err := read(colPtr); err != nil {
		return nil, err
	}
	rowIdx := make([]int64, nnz)
	if err := read(rowIdx); err != nil {
		return nil, err
	}
	val := make([]float64, nnz)
	if err := read(val); err != nil {
		return nil, err
	}
	dictIdx := make([]int64, dCols)
	if err := read(dictIdx); err != nil {
		return nil, err
	}

	c := &sparse.CSC{
		Rows:   cRows,
		Cols:   cCols,
		ColPtr: make([]int, len(colPtr)),
		RowIdx: make([]int, len(rowIdx)),
		Val:    val,
	}
	for i, v := range colPtr {
		c.ColPtr[i] = int(v)
	}
	for i, v := range rowIdx {
		c.RowIdx[i] = int(v)
	}
	if err := c.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTransformFile, err)
	}
	t.C = c
	t.DictIdx = make([]int, len(dictIdx))
	for i, v := range dictIdx {
		t.DictIdx[i] = int(v)
	}
	return t, nil
}
