package exd

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"extdict/internal/dataset"
	"extdict/internal/rng"
)

func TestTransformSerializationRoundTrip(t *testing.T) {
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: 20, N: 90, Ks: []int{3, 4}}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Fit(u.A, Params{L: 40, Epsilon: 0.07, MaxAtoms: 12, Seed: 62, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadTransform(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.L() != tr.L() || got.N() != tr.N() || got.C.NNZ() != tr.C.NNZ() {
		t.Fatal("shape changed through serialization")
	}
	// Workers is host-specific and intentionally not serialized.
	want := tr.Params
	want.Workers = 0
	if got.Params != want || got.OMPIters != tr.OMPIters {
		t.Fatalf("metadata changed: %+v vs %+v", got.Params, want)
	}
	for i := range tr.D.Data {
		if math.Float64bits(tr.D.Data[i]) != math.Float64bits(got.D.Data[i]) {
			t.Fatal("dictionary bits changed")
		}
	}
	for i := range tr.C.Val {
		if tr.C.RowIdx[i] != got.C.RowIdx[i] || tr.C.Val[i] != got.C.Val[i] {
			t.Fatal("coefficients changed")
		}
	}
	for i := range tr.DictIdx {
		if tr.DictIdx[i] != got.DictIdx[i] {
			t.Fatal("provenance changed")
		}
	}
	// The deserialized transform must behave identically.
	if got.RelError(u.A) != tr.RelError(u.A) {
		t.Fatal("reconstruction differs after round trip")
	}
}

func TestReadTransformRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________________"),
	}
	for _, c := range cases {
		if _, err := ReadTransform(bytes.NewReader(c)); !errors.Is(err, ErrBadTransformFile) {
			t.Fatalf("garbage %q accepted: %v", c, err)
		}
	}
}

func TestReadTransformRejectsTruncation(t *testing.T) {
	u, _ := dataset.GenerateUnion(dataset.UnionParams{M: 12, N: 40, Ks: []int{3}}, rng.New(63))
	tr, err := Fit(u.A, Params{L: 15, Epsilon: 0.1, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := ReadTransform(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadTransformFile) {
			t.Fatalf("truncation at %d accepted: %v", cut, err)
		}
	}
}

func TestReadTransformRejectsCorruptCSC(t *testing.T) {
	u, _ := dataset.GenerateUnion(dataset.UnionParams{M: 12, N: 40, Ks: []int{3}}, rng.New(65))
	tr, err := Fit(u.A, Params{L: 15, Epsilon: 0.1, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a row index deep in the CSC section to an out-of-range value.
	// The CSC row indices live after magic+header+eps+seed+dictionary.
	off := len(transformMagic) + 8*8 + 8 + 8 + 8*tr.D.Rows*tr.D.Cols + 8*(tr.C.Cols+1)
	if off+8 <= len(raw) {
		for i := 0; i < 8; i++ {
			raw[off+i] = 0xff
		}
		if _, err := ReadTransform(bytes.NewReader(raw)); err == nil {
			t.Fatal("corrupt CSC accepted")
		}
	}
}
