package tune

import (
	"extdict/internal/cluster"
	"extdict/internal/faust"
	"extdict/internal/perf"
)

// FamilyConfig controls the operator-family decision: which objective to
// minimize, how many Gram iterations the fitted operator will be reused
// for (the factorization cost amortizes over these), and the chain shape
// to price for the FastDict candidate.
type FamilyConfig struct {
	// Objective selects which cost to minimize (default Runtime).
	Objective perf.Objective
	// Reuse is the number of Apply iterations the operator serves before
	// being refit — the denominator the one-time factorization cost is
	// amortized over. Default 1 (the whole cost charged to a single
	// iteration, the conservative extreme).
	Reuse int
	// Factors and Budget shape the candidate chain (faust.Options
	// semantics; zero values take the faust defaults: k=4 at 4× dictionary
	// compression).
	Factors int
	Budget  int
	// Iters and Polish are the factorization effort priced into the
	// amortized cost (faust.Options defaults when zero).
	Iters, Polish int
}

func (c *FamilyConfig) fill() {
	if c.Reuse <= 0 {
		c.Reuse = 1
	}
}

// FamilyCost is one scored operator family.
type FamilyCost struct {
	// Family is "raw", "exd", or "fastdict".
	Family string
	// Estimate is the per-iteration platform prediction (Eq. 2/3/4).
	Estimate perf.Estimate
	// PrepPerIter is the amortized one-time preparation cost per iteration
	// in the objective's unit — nonzero only for fastdict, whose PALM
	// factorization costs Plan.FactorizeFlops once. Memory objectives
	// carry no prep term: the factorization workspace is transient.
	PrepPerIter float64
	// Total is Estimate.Cost(objective) + PrepPerIter — the number the
	// decision minimizes.
	Total float64
}

// FamilyChoice is the decision record: the winning family and every
// candidate's score, so reports can show the margin.
type FamilyChoice struct {
	// Family is the winner: the candidate with the lowest Total, ties
	// resolved toward the simpler family (raw before exd before fastdict).
	Family string
	// Plan is the chain shape the fastdict candidate was priced at.
	Plan faust.Plan
	// Costs lists the candidates in decision order: raw, exd, fastdict.
	Costs []FamilyCost
}

// ChainTermsOf bridges a factorization plan into the perf model's chain
// symbols — the same four invariants the lint contracts are proven in.
func ChainTermsOf(p faust.Plan) perf.ChainTerms {
	return perf.ChainTerms{
		NNZ:           p.NNZ(),
		VecWords:      p.VecWords(),
		ResidentWords: p.ResidentWords(),
		InterDim:      int64(p.InterDim()),
	}
}

// ChooseFamily picks among the untransformed operator, the ExD operator,
// and the FastDict operator by modeled cost at shape (M, N, L, nnz(C)) on
// the platform: per-iteration Eq. 2/3/4 predictions, plus the fastdict
// candidate's factorization flops amortized over cfg.Reuse iterations. The
// decision is exactly the model's argmin — no heuristics on top — so a
// unit test can pin it against hand-evaluated polynomials.
func ChooseFamily(m, n, l, nnz int, plat cluster.Platform, cfg FamilyConfig) FamilyChoice {
	cfg.fill()
	plan := faust.NewPlan(m, l, cfg.Factors, cfg.Budget)

	prep := 0.0
	flops := float64(plan.FactorizeFlops(cfg.Iters, cfg.Polish))
	switch cfg.Objective {
	case perf.Runtime:
		prep = flops * plat.Cost.FlopTime / float64(cfg.Reuse)
	case perf.Energy:
		prep = flops * plat.Cost.FlopEnergy / float64(cfg.Reuse)
	}

	costs := []FamilyCost{
		{Family: "raw", Estimate: perf.PredictDense(m, n, plat)},
		{Family: "exd", Estimate: perf.PredictTransformed(m, n, l, nnz, plat)},
		{Family: "fastdict", Estimate: perf.PredictFastDict(m, n, l, nnz, ChainTermsOf(plan), plat), PrepPerIter: prep},
	}
	best := 0
	for i := range costs {
		costs[i].Total = costs[i].Estimate.Cost(cfg.Objective) + costs[i].PrepPerIter
		if costs[i].Total < costs[best].Total {
			best = i
		}
	}
	return FamilyChoice{Family: costs[best].Family, Plan: plan, Costs: costs}
}
