package tune

// Ablation: subset-based tuning (§VII) versus the Brute Force the paper
// rules out — fitting ExD on the FULL data at every candidate L. Both end
// at the same selected L on union-of-subspaces data; the subset tuner gets
// there at a fraction of the cost, which is exactly the point of Fig. 6 and
// Table II.

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/perf"
	"extdict/internal/rng"
)

func benchData(b *testing.B) *dataset.Union {
	b.Helper()
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 64, N: 8192, Ks: []int{3, 4, 5}}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func BenchmarkAblationSubsetTuning(b *testing.B) {
	u := benchData(b)
	plat := cluster.NewPlatform(2, 8)
	for i := 0; i < b.N; i++ {
		res, err := Tune(u.A, plat, Config{Epsilon: 0.1, Workers: 2, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Best.L), "chosen-L")
		}
	}
}

func BenchmarkAblationBruteForceTuning(b *testing.B) {
	u := benchData(b)
	plat := cluster.NewPlatform(2, 8)
	lMin := EstimateLMin(u.A, 0.1, 3)
	grid := GeometricGrid(lMin+lMin/8+1, u.A.Cols, 8)
	for i := 0; i < b.N; i++ {
		bestL, bestCost := 0, math.Inf(1)
		for _, l := range grid {
			tr, err := exd.Fit(u.A, exd.Params{L: l, Epsilon: 0.1, Workers: 2, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			if tr.RelError(u.A) > 0.1*1.05 {
				continue
			}
			cost := perf.PredictTransformed(u.A.Rows, u.A.Cols, l, tr.C.NNZ(), plat).Time
			if cost < bestCost {
				bestL, bestCost = l, cost
			}
		}
		if i == 0 {
			b.ReportMetric(float64(bestL), "chosen-L")
		}
	}
}
