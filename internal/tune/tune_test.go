package tune

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/perf"
	"extdict/internal/rng"
)

func unionData(t testing.TB, m, n int, ks []int, seed uint64) *mat.Dense {
	t.Helper()
	u, err := dataset.GenerateUnion(dataset.UnionParams{M: m, N: n, Ks: ks}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u.A
}

func TestGeometricGrid(t *testing.T) {
	g := GeometricGrid(10, 1000, 5)
	if g[0] != 10 || g[len(g)-1] != 1000 {
		t.Fatalf("grid endpoints %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
	if got := GeometricGrid(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate grid %v", got)
	}
	if got := GeometricGrid(0, 3, 2); got[0] != 1 {
		t.Fatalf("lo clamp failed: %v", got)
	}
}

func TestTuneValidatesEpsilon(t *testing.T) {
	a := unionData(t, 16, 64, []int{3}, 1)
	plat := cluster.NewPlatform(1, 1)
	if _, err := Tune(a, plat, Config{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Tune(a, plat, Config{Epsilon: 1}); err == nil {
		t.Fatal("epsilon 1 accepted")
	}
}

func TestTuneFindsFeasibleMinimum(t *testing.T) {
	a := unionData(t, 32, 512, []int{4, 5}, 2)
	plat := cluster.NewPlatform(2, 4)
	res, err := Tune(a, plat, Config{Epsilon: 0.1, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible {
		t.Fatal("best candidate infeasible")
	}
	best := res.Best.Estimate.Cost(perf.Runtime)
	for _, c := range res.Candidates {
		if c.Feasible && c.Estimate.Cost(perf.Runtime) < best-1e-12 {
			t.Fatalf("candidate L=%d beats selected L=%d", c.L, res.Best.L)
		}
	}
	if res.Rounds < 1 || len(res.SubsetSizes) != res.Rounds {
		t.Fatalf("round bookkeeping wrong: %+v", res)
	}
}

func TestTuneRespectsObjective(t *testing.T) {
	// Memory objective must never pick a candidate with a higher memory
	// estimate than any feasible alternative.
	a := unionData(t, 32, 512, []int{4, 5, 6}, 4)
	plat := cluster.NewPlatform(8, 8)
	res, err := Tune(a, plat, Config{Epsilon: 0.1, Objective: perf.Memory, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Feasible && c.Estimate.MemoryWordsPerRank < res.Best.Estimate.MemoryWordsPerRank-1e-9 {
			t.Fatalf("memory objective ignored: L=%d cheaper than L=%d", c.L, res.Best.L)
		}
	}
}

func TestTuneSubsetAlphaApproximatesFullAlpha(t *testing.T) {
	// The paper's §VII estimator: α from a subset tracks α from the full
	// data (Fig. 6). Probe one L directly.
	a := unionData(t, 32, 800, []int{4, 4, 5}, 6)
	const l, eps = 200, 0.1

	full, err := exd.Fit(a, exd.Params{L: l, Epsilon: eps, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The subset must be comfortably larger than L for the estimator to be
	// valid (see the reliability guard in Tune).
	r := rng.New(8)
	sub := a.ColSlice(r.Subset(800, 450))
	subTr, err := exd.Fit(sub, exd.Params{L: l, Epsilon: eps, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fa, sa := full.Alpha(), subTr.Alpha()
	if math.Abs(fa-sa)/fa > 0.30 {
		t.Fatalf("subset alpha %v far from full alpha %v", sa, fa)
	}
}

func TestTuneInfeasibleGridErrors(t *testing.T) {
	// A grid capped far below L_min must be rejected, not silently chosen.
	a := unionData(t, 48, 300, []int{8, 8, 8}, 9)
	plat := cluster.NewPlatform(1, 1)
	_, err := Tune(a, plat, Config{
		Epsilon: 0.01, LGrid: []int{2, 3}, Workers: 2, Seed: 10,
	})
	if err == nil {
		t.Fatal("infeasible grid accepted")
	}
}

func TestTunePlatformChangesChoice(t *testing.T) {
	// The whole point of platform awareness: a communication-heavy
	// platform should not pick a larger L than a cheap-communication one
	// when the objective is runtime (larger L ⇒ more words up to M).
	a := unionData(t, 64, 1024, []int{3, 3, 4, 4}, 11)
	grid := []int{96, 160, 256, 420, 700, 1024}
	cheap := cluster.NewPlatform(1, 4) // intra-node words
	dear := cluster.NewPlatform(8, 8)  // inter-node words, P=64

	r1, err := Tune(a, cheap, Config{Epsilon: 0.1, LGrid: grid, Workers: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(a, dear, Config{Epsilon: 0.1, LGrid: grid, Workers: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Not a strict inequality in general; assert the tuner is sensitive to
	// the platform (different or equal picks allowed) and both feasible.
	if !r1.Best.Feasible || !r2.Best.Feasible {
		t.Fatal("infeasible picks")
	}
	// At minimum the predicted cost differs across platforms.
	if r1.Best.Estimate.Time == r2.Best.Estimate.Time {
		t.Fatal("platform had no effect on predictions")
	}
}

func TestTuneAndFit(t *testing.T) {
	a := unionData(t, 32, 400, []int{4, 5}, 13)
	plat := cluster.NewPlatform(1, 4)
	tr, res, err := TuneAndFit(a, plat, Config{Epsilon: 0.1, Workers: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if tr.L() != res.Best.L {
		t.Fatalf("fit used L=%d, tuner chose %d", tr.L(), res.Best.L)
	}
	if got := tr.RelError(a); got > 0.1+1e-9 {
		t.Fatalf("final transform error %v", got)
	}
}

func TestTuneDeterministic(t *testing.T) {
	a := unionData(t, 24, 300, []int{3, 4}, 15)
	plat := cluster.NewPlatform(2, 2)
	cfg := Config{Epsilon: 0.1, Workers: 2, Seed: 16}
	r1, err := Tune(a, plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(a, plat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.L != r2.Best.L || r1.Best.Alpha != r2.Best.Alpha {
		t.Fatal("tuner not deterministic")
	}
}
