package tune

import (
	"extdict/internal/mat"
	"extdict/internal/rng"
)

// EstimateLMin estimates the minimal basis size meeting the relative error
// eps on the data: it counts how many randomly ordered columns an
// incremental orthogonal projection needs before the residual energy falls
// below eps²·‖A‖_F². This is the knee of the α(L) curve (the paper's L_min,
// ≈175 for its Salinas example) and anchors the tuner's automatic L grid —
// dictionary sizes below it cannot meet the error criterion, sizes at it
// match RankMap's minimal basis.
func EstimateLMin(a *mat.Dense, eps float64, seed uint64) int {
	r := rng.New(seed)
	order := r.Perm(a.Cols)
	m := a.Rows
	res2 := make([]float64, a.Cols)
	var total float64
	col := make([]float64, m)
	for j := 0; j < a.Cols; j++ {
		a.Col(j, col)
		res2[j] = mat.Dot(col, col)
		total += res2[j]
	}
	target := eps * eps * total
	remaining := total
	var q [][]float64
	picked := 0
	proj := make([]float64, m)
	maxL := m + 16
	if maxL > a.Cols {
		maxL = a.Cols
	}
	for _, k := range order {
		if remaining <= target || picked >= maxL {
			break
		}
		if res2[k] <= 0 {
			continue
		}
		a.Col(k, proj)
		for pass := 0; pass < 2; pass++ {
			for _, qv := range q {
				mat.Axpy(-mat.Dot(qv, proj), qv, proj)
			}
		}
		n := mat.Norm2(proj)
		if n < 1e-10 {
			res2[k] = 0
			continue
		}
		mat.ScaleVec(1/n, proj)
		qv := mat.CopyVec(proj)
		q = append(q, qv)
		picked++
		dots := a.MulVecT(qv, nil)
		remaining = 0
		for j := range res2 {
			res2[j] -= dots[j] * dots[j]
			if res2[j] < 0 {
				res2[j] = 0
			}
			remaining += res2[j]
		}
	}
	return picked
}
