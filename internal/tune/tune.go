// Package tune implements ExtDict's automated customization of ExD (§VII):
// choosing the dictionary size L that minimizes the platform cost model.
//
// The expensive ingredient is the density function α(L, A, ε) = nnz(C)/N.
// Evaluating it on the full data would cost a full ExD fit per candidate L
// (the Brute Force the paper rules out), so the tuner exploits the paper's
// subset result: for union-of-subspaces data, E[α(L, A_s, ε)] = E[α(L, A, ε)]
// for a uniform random subset A_s. It therefore measures α on growing
// subsets A₁ ⊂ A₂ ⊂ … until the estimates stabilize, then plugs α̂(L)·N
// into the Eq. 2/3/4 predictions and returns the argmin over the L grid.
package tune

import (
	"fmt"
	"math"

	"extdict/internal/cluster"
	"extdict/internal/exd"
	"extdict/internal/mat"
	"extdict/internal/perf"
	"extdict/internal/rng"
)

// Config controls the tuning procedure.
type Config struct {
	// Epsilon is the transformation error tolerance the tuned transform
	// must satisfy.
	Epsilon float64
	// Objective selects which cost to minimize (default Runtime).
	Objective perf.Objective
	// LGrid lists candidate dictionary sizes. Empty = an automatic
	// geometric grid between max(8, M/4) and N.
	LGrid []int
	// InitialSubset is the number of columns in the first probe subset
	// (default max(64, N/32), clamped to N).
	InitialSubset int
	// StabilityTol stops subset growth once every candidate's α estimate
	// moved less than this relative amount between rounds (default 0.15,
	// mirroring the paper's ~14%-at-1% observation in Fig. 6).
	StabilityTol float64
	// MaxRounds caps subset doublings (default 4).
	MaxRounds int
	// Workers parallelizes the probe fits.
	Workers int
	// Seed drives subset sampling and the probe fits.
	Seed uint64
}

func (c *Config) fill(n int) {
	if c.StabilityTol <= 0 {
		c.StabilityTol = 0.15
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 4
	}
	if c.InitialSubset <= 0 {
		c.InitialSubset = n / 32
		if c.InitialSubset < 64 {
			c.InitialSubset = 64
		}
	}
	if c.InitialSubset > n {
		c.InitialSubset = n
	}
}

// GeometricGrid returns up to points values geometrically spaced in
// [lo, hi], always including both endpoints, strictly increasing.
func GeometricGrid(lo, hi, points int) []int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if points < 2 || lo == hi {
		return []int{lo}
	}
	out := make([]int, 0, points)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(points-1))
	v := float64(lo)
	for i := 0; i < points; i++ {
		iv := int(math.Round(v))
		if len(out) == 0 || iv > out[len(out)-1] {
			out = append(out, iv)
		}
		v *= ratio
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// Candidate is one probed dictionary size.
type Candidate struct {
	L int
	// Alpha is the final subset estimate of α(L) (nonzeros per column).
	Alpha float64
	// AchievedError is the relative transformation error measured on the
	// probe subset.
	AchievedError float64
	// Feasible reports whether the probe met the error tolerance — L
	// values below L_min fail here (the regime left of the knee in
	// Fig. 4b).
	Feasible bool
	// Estimate is the platform cost prediction at this L using α̂·N.
	Estimate perf.Estimate
}

// Result is the tuner's output.
type Result struct {
	// Best is the selected candidate (lowest predicted cost among
	// feasible ones).
	Best Candidate
	// Candidates holds every probed L, in grid order.
	Candidates []Candidate
	// SubsetSizes lists the probe subset sizes used per round.
	SubsetSizes []int
	// Rounds is the number of subset-growth rounds executed.
	Rounds int
}

// Tune selects the cost-minimizing dictionary size for data a on the given
// platform. The data must be column-normalized (as for exd.Fit).
func Tune(a *mat.Dense, plat cluster.Platform, cfg Config) (Result, error) {
	var res Result
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return res, fmt.Errorf("tune: epsilon %v outside (0, 1)", cfg.Epsilon)
	}
	n := a.Cols
	cfg.fill(n)
	r := rng.New(cfg.Seed)
	size := cfg.InitialSubset

	if len(cfg.LGrid) == 0 {
		// Anchor the automatic grid at the measured L_min so the tuner can
		// reach near-minimal dictionaries (where RankMap operates) as well
		// as strongly over-complete ones. L_min is rank-driven, so a probe
		// subset estimates it well.
		probe := a.ColSlice(r.Subset(n, size))
		lMin := EstimateLMin(probe, cfg.Epsilon, cfg.Seed)
		// Anchor the grid essentially AT L_min: on communication-bound
		// platforms the optimum sits at the smallest feasible dictionary
		// (where RankMap operates, and where the paper reports parity with
		// it). Infeasible picks are caught by the subset feasibility check
		// and, as a last resort, by TuneAndFit's escalation.
		lo := lMin + max(1, lMin/32)
		if lo > n {
			lo = n
		}
		// Cap the grid well below N: beyond ~24·L_min the density curve
		// has flattened while the M·L cost terms keep growing, so larger
		// candidates can never win — and probing them would need O(L²)
		// Gram work.
		hi := 24 * lMin
		if hi < 64 {
			hi = 64
		}
		if hi > n {
			hi = n
		}
		if hi < lo {
			hi = lo
		}
		cfg.LGrid = GeometricGrid(lo, hi, 10)
	}

	var prev []float64
	var alphas []float64
	var errsAchieved []float64

	for round := 0; ; round++ {
		res.Rounds = round + 1
		res.SubsetSizes = append(res.SubsetSizes, size)
		sub := a.ColSlice(r.Subset(n, size))

		alphas = make([]float64, len(cfg.LGrid))
		errsAchieved = make([]float64, len(cfg.LGrid))
		lastReliable := -1
		for i, l := range cfg.LGrid {
			// A subset estimate of α(L) is only trustworthy when the
			// subset is comfortably larger than L: as L → |A_s| the
			// dictionary swallows the whole subset and α collapses to 1
			// regardless of the data geometry. For such candidates reuse
			// the largest reliable estimate — α is non-increasing in L
			// (§VII), so this is a conservative (never underestimating)
			// stand-in for nnz.
			if 2*l > sub.Cols && lastReliable >= 0 {
				alphas[i] = alphas[lastReliable]
				errsAchieved[i] = errsAchieved[lastReliable]
				continue
			}
			li := l
			if li > sub.Cols {
				li = sub.Cols
			}
			tr, err := exd.Fit(sub, exd.Params{
				L: li, Epsilon: cfg.Epsilon, Workers: cfg.Workers,
				Seed: cfg.Seed + uint64(round)*131 + uint64(i),
			})
			if err != nil {
				return res, err
			}
			alphas[i] = tr.Alpha()
			errsAchieved[i] = tr.RelError(sub)
			if 2*l <= sub.Cols {
				lastReliable = i
			}
		}

		stable := prev != nil
		if prev != nil {
			for i := range alphas {
				if prev[i] == 0 {
					continue
				}
				if math.Abs(alphas[i]-prev[i])/prev[i] > cfg.StabilityTol {
					stable = false
					break
				}
			}
		}
		if stable || size >= n || round+1 >= cfg.MaxRounds {
			break
		}
		prev = alphas
		size *= 2
		if size > n {
			size = n
		}
	}

	// Score every candidate with the platform model at full scale.
	res.Candidates = make([]Candidate, len(cfg.LGrid))
	bestIdx := -1
	for i, l := range cfg.LGrid {
		nnz := int(math.Round(alphas[i] * float64(n)))
		c := Candidate{
			L:             l,
			Alpha:         alphas[i],
			AchievedError: errsAchieved[i],
			Feasible:      errsAchieved[i] <= cfg.Epsilon*1.05,
			Estimate:      perf.PredictTransformed(a.Rows, n, l, nnz, plat),
		}
		res.Candidates[i] = c
		if c.Feasible && (bestIdx < 0 ||
			c.Estimate.Cost(cfg.Objective) < res.Candidates[bestIdx].Estimate.Cost(cfg.Objective)) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return res, fmt.Errorf("tune: no feasible dictionary size in grid %v for eps=%v (L_min exceeds the grid)",
			cfg.LGrid, cfg.Epsilon)
	}
	res.Best = res.Candidates[bestIdx]
	return res, nil
}

// TuneAndFit tunes L, then fits the final transform on the full data with
// the selected size. This is ExtDict's complete preprocessing step; its
// wall time corresponds to Table II's "tuning + transformation" overhead.
//
// Feasibility near the knee is measured on a subset, so the chosen L can
// occasionally miss the tolerance on the full data; in that case the fit
// escalates to the next-larger candidate until the criterion holds.
func TuneAndFit(a *mat.Dense, plat cluster.Platform, cfg Config) (*exd.Transform, Result, error) {
	res, err := Tune(a, plat, cfg)
	if err != nil {
		return nil, res, err
	}
	try := []int{res.Best.L}
	for _, c := range res.Candidates {
		if c.L > res.Best.L {
			try = append(try, c.L)
		}
	}
	if try[len(try)-1] < a.Cols {
		try = append(try, a.Cols)
	}
	var last *exd.Transform
	for _, l := range try {
		tr, err := exd.Fit(a, exd.Params{
			L: l, Epsilon: cfg.Epsilon, Workers: cfg.Workers, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, res, err
		}
		last = tr
		if achieved := tr.RelError(a); achieved <= cfg.Epsilon*(1+1e-9) {
			if l != res.Best.L {
				// Record the escalated choice so Result stays consistent
				// with the transform actually returned.
				res.Best = Candidate{
					L: l, Alpha: tr.Alpha(), AchievedError: achieved, Feasible: true,
					Estimate: perf.PredictTransformed(a.Rows, a.Cols, l, tr.C.NNZ(), plat),
				}
			}
			return tr, res, nil
		}
	}
	return last, res, fmt.Errorf("tune: no candidate met eps=%v on the full data", cfg.Epsilon)
}
