package tune

import (
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/faust"
	"extdict/internal/perf"
)

// TestChooseFamilyFollowsModeledCost pins the decision rule to the model:
// the winner must be exactly the argmin of the per-iteration predictions
// plus the amortized factorization term, recomputed here by hand from the
// perf package — no heuristic slack.
func TestChooseFamilyFollowsModeledCost(t *testing.T) {
	const m, n, l, nnz = 512, 16384, 128, 524288
	plat := cluster.NewPlatform(1, 4)

	for _, reuse := range []int{1, 10, 1000, 100000, 10000000} {
		cfg := FamilyConfig{Reuse: reuse}
		got := ChooseFamily(m, n, l, nnz, plat, cfg)

		plan := faust.NewPlan(m, l, 0, 0)
		prep := float64(plan.FactorizeFlops(0, 0)) * plat.Cost.FlopTime / float64(reuse)
		want := "raw"
		best := perf.PredictDense(m, n, plat).Time
		if c := perf.PredictTransformed(m, n, l, nnz, plat).Time; c < best {
			want, best = "exd", c
		}
		if c := perf.PredictFastDict(m, n, l, nnz, ChainTermsOf(plan), plat).Time + prep; c < best {
			want = "fastdict"
		}
		if got.Family != want {
			t.Fatalf("reuse=%d: chose %q, model argmin is %q (costs %+v)", reuse, got.Family, want, got.Costs)
		}
	}
}

// TestChooseFamilyAmortizationFlipsDecision pins the tentpole trade-off:
// at this shape the chain iteration is cheaper than the dense-dictionary
// one, but the one-time PALM factorization is ~10⁴ iterations of that
// saving — so a single-use operator must stay ExD and a long-lived one
// must switch to FastDict, with the flip exactly at the modeled
// break-even reuse count.
func TestChooseFamilyAmortizationFlipsDecision(t *testing.T) {
	const m, n, l, nnz = 512, 16384, 128, 524288
	plat := cluster.NewPlatform(1, 4)

	short := ChooseFamily(m, n, l, nnz, plat, FamilyConfig{Reuse: 1})
	if short.Family != "exd" {
		t.Fatalf("reuse=1 chose %q, want exd (factorization cannot amortize)", short.Family)
	}
	long := ChooseFamily(m, n, l, nnz, plat, FamilyConfig{Reuse: 10000000})
	if long.Family != "fastdict" {
		t.Fatalf("reuse=10M chose %q, want fastdict", long.Family)
	}

	// Break-even: prep/reuse < perIterSaving exactly when reuse exceeds
	// prepFlops-to-saving ratio; check the flip lands on the modeled edge.
	plan := faust.NewPlan(m, l, 0, 0)
	exdCost := perf.PredictTransformed(m, n, l, nnz, plat).Time
	fastIter := perf.PredictFastDict(m, n, l, nnz, ChainTermsOf(plan), plat).Time
	saving := exdCost - fastIter
	if saving <= 0 {
		t.Fatalf("chain iteration %v not cheaper than exd %v at this shape", fastIter, exdCost)
	}
	prep := float64(plan.FactorizeFlops(0, 0)) * plat.Cost.FlopTime
	breakEven := int(prep/saving) + 1
	at := ChooseFamily(m, n, l, nnz, plat, FamilyConfig{Reuse: breakEven})
	below := ChooseFamily(m, n, l, nnz, plat, FamilyConfig{Reuse: breakEven / 2})
	if at.Family != "fastdict" || below.Family == "fastdict" {
		t.Fatalf("flip off the modeled break-even %d: at=%q below=%q", breakEven, at.Family, below.Family)
	}
}

// TestChooseFamilyMemoryObjective pins the Eq. 4 side: under the memory
// objective the factorization (transient workspace) carries no amortized
// term, and the chain's resident footprint wins at any reuse count.
func TestChooseFamilyMemoryObjective(t *testing.T) {
	const m, n, l, nnz = 512, 16384, 128, 524288
	plat := cluster.NewPlatform(1, 4)
	got := ChooseFamily(m, n, l, nnz, plat, FamilyConfig{Objective: perf.Memory, Reuse: 1})
	if got.Family != "fastdict" {
		t.Fatalf("memory objective chose %q, want fastdict", got.Family)
	}
	for _, c := range got.Costs {
		if c.PrepPerIter != 0 {
			t.Fatalf("memory objective charged prep %v to %s", c.PrepPerIter, c.Family)
		}
	}
}
