package perf

import (
	"math"
	"testing"

	"extdict/internal/cluster"
	"extdict/internal/dataset"
	"extdict/internal/dist"
	"extdict/internal/exd"
	"extdict/internal/faust"
	"extdict/internal/rng"
)

// chainTermsOf extracts the fitted chain's invariants for the predictor —
// the exact values FastGram's constructor records for its claims.
func chainTermsOf(fd *faust.FastDict) ChainTerms {
	return ChainTerms{
		NNZ:           fd.NNZ(),
		VecWords:      fd.VecWords(),
		ResidentWords: fd.ResidentWords(),
		InterDim:      int64(fd.MaxInterDim()),
	}
}

func TestPredictFastDictCommunicationBound(t *testing.T) {
	// The chain changes arithmetic only: communicated words stay at the
	// ExD schedule's 2·min(M, L) in both cases.
	plat := cluster.NewPlatform(2, 4)
	chain := ChainTerms{NNZ: 1000, VecWords: 500, ResidentWords: 2200, InterDim: 40}
	if e := PredictFastDict(100, 1000, 40, 5000, chain, plat); e.PathWords != 80 {
		t.Fatalf("Case 1 words %v, want 80", e.PathWords)
	}
	if e := PredictFastDict(100, 1000, 300, 5000, chain, plat); e.PathWords != 200 {
		t.Fatalf("Case 2 words %v, want 200", e.PathWords)
	}
}

func TestPredictFastDictMatchesSimulator(t *testing.T) {
	// Eq. 2 extended with factor-chain terms must track the simulator the
	// way PredictTransformed does: words and total flops exactly, time to
	// within the nnz partition's load-imbalance slack.
	u, err := dataset.GenerateUnion(
		dataset.UnionParams{M: 48, N: 400, Ks: []int{4, 5}}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{30, 120} { // Case 1 and Case 2
		tr, err := exd.Fit(u.A, exd.Params{L: l, Epsilon: 0.05, Seed: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		fd, err := faust.Factorize(tr.D, faust.Options{Factors: 3, Budget: 12 * l, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, plat := range cluster.PaperPlatforms()[:3] {
			g, err := dist.NewFastGram(cluster.NewComm(plat), fd, tr.C)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 400)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, 400)
			st := g.Apply(x, y)
			pred := PredictFastDict(48, 400, l, tr.C.NNZ(), chainTermsOf(fd), plat)

			if pred.PathWords != float64(st.PathWords) {
				t.Fatalf("L=%d %s: predicted words %v, simulated %d",
					l, plat.Topology, pred.PathWords, st.PathWords)
			}
			if math.Abs(pred.FlopsTotal-float64(st.TotalFlops))/pred.FlopsTotal > 1e-9 {
				t.Fatalf("L=%d %s: predicted flops %v, simulated %d",
					l, plat.Topology, pred.FlopsTotal, st.TotalFlops)
			}
			rel := math.Abs(pred.Time-st.ModeledTime) / st.ModeledTime
			if rel > 0.25 {
				t.Fatalf("L=%d %s: predicted %v, simulated %v (rel %v)",
					l, plat.Topology, pred.Time, st.ModeledTime, rel)
			}
		}
	}
}

func TestFastDictBeatsTransformedWhenCompressed(t *testing.T) {
	// The operator family's reason to exist: with Σnnz(S_i) ≪ M·L the chain
	// iteration must be predicted cheaper than the dense-dictionary one in
	// both time and per-rank memory, at identical communication.
	plat := cluster.NewPlatform(8, 8)
	const m, n, l, nnz = 512, 100000, 256, 500000
	chain := planChainTerms(faust.NewPlan(m, l, 0, 0))
	fast := PredictFastDict(m, n, l, nnz, chain, plat)
	exdE := PredictTransformed(m, n, l, nnz, plat)
	if fast.Time >= exdE.Time {
		t.Fatalf("fastdict %v not cheaper than exd %v", fast.Time, exdE.Time)
	}
	if fast.MemoryWordsPerRank >= exdE.MemoryWordsPerRank {
		t.Fatal("fastdict memory not lower")
	}
	if fast.PathWords != exdE.PathWords {
		t.Fatal("communication changed; the chain must preserve the schedule")
	}
}

// planChainTerms mirrors tune.ChainTermsOf for perf-local tests without
// importing the tuner.
func planChainTerms(p faust.Plan) ChainTerms {
	return ChainTerms{
		NNZ:           p.NNZ(),
		VecWords:      p.VecWords(),
		ResidentWords: p.ResidentWords(),
		InterDim:      int64(p.InterDim()),
	}
}
