// Package perf implements the paper's performance quantification (§VI-B):
// closed-form predictions of per-iteration runtime (Eq. 2), energy (Eq. 3),
// and per-rank memory (Eq. 4) from the transform shape (M, N, L, nnz(C)) and
// the platform's word-per-flop ratios. The tune package minimizes these
// predictions over the dictionary size L; Fig. 8 validates them against the
// measured cost of the simulated cluster.
package perf

import (
	"math"

	"extdict/internal/cluster"
)

// Objective selects which cost Eq. to optimize.
type Objective int

const (
	// Runtime optimizes Eq. 2 (the default).
	Runtime Objective = iota
	// Energy optimizes Eq. 3.
	Energy
	// Memory optimizes Eq. 4.
	Memory
)

// String renders the objective name.
func (o Objective) String() string {
	switch o {
	case Runtime:
		return "runtime"
	case Energy:
		return "energy"
	case Memory:
		return "memory"
	}
	return "unknown"
}

// Estimate is the predicted cost of one Gram-product iteration.
type Estimate struct {
	// FlopsCritical is the flop count on the slowest rank's path: the
	// dictionary multiplies (not parallelizable across ranks — rank 0 does
	// them in Case 1, everyone redundantly in Case 2) plus this rank's
	// share of the sparse work.
	FlopsCritical float64
	// FlopsTotal is the total flops across ranks (drives energy).
	FlopsTotal float64
	// BytesCritical is the kernel memory traffic on the slowest rank's
	// path, mirroring the AddBytes claims the simulator counts: the byte
	// polynomials of the same kernels whose flops FlopsCritical prices.
	BytesCritical float64
	// BytesTotal is the total kernel memory traffic across ranks.
	BytesTotal float64
	// PathWords is the communicated words on the critical path:
	// 2·min(M, L) per iteration, the paper's optimal bound.
	PathWords float64
	// TotalWords counts every word moved by every rank.
	TotalWords float64
	// Time is the Eq. 2 prediction in seconds (critical-path flops, bytes
	// streamed, words, and collective latency under the platform cost
	// model).
	Time float64
	// EnergyJ is the Eq. 3 prediction in joules.
	EnergyJ float64
	// MemoryWordsPerRank is the Eq. 4 bound — the worst rank's peak
	// resident set in 8-byte words, proven against the allocmodel capacity
	// polynomial (M·L + 2·nnz(C)/P + N/P + M + 2·L + 1 for the transformed
	// operator: the dictionary, the CSC block with its row indices and
	// column pointers, and the per-rank workspace vectors).
	MemoryWordsPerRank float64
}

// Cost returns the estimate's value under the chosen objective, in the
// objective's natural unit (seconds, joules, or words).
func (e Estimate) Cost(o Objective) float64 {
	switch o {
	case Energy:
		return e.EnergyJ
	case Memory:
		return e.MemoryWordsPerRank
	default:
		return e.Time
	}
}

// latencyTerm returns the collective-latency seconds for `phases`
// reduce/broadcast rounds on the platform.
func latencyTerm(plat cluster.Platform, phases float64) float64 {
	p := plat.Topology.P()
	hops := 1.0
	if p > 1 {
		hops = math.Ceil(math.Log2(float64(p)))
	}
	return phases * hops * plat.Latency()
}

// PredictTransformed predicts one iteration of Algorithm 2 on a transformed
// pair with dictionary size l and nnz stored coefficients, for data shape
// m×n on the platform. It mirrors the simulator's accounting exactly:
//
//	time ≈ (4·nnz/P + 4·M·L)·c_f + 2·min(M, L)·c_w + latency
//
// (4 = two sparse products and two dictionary products, each 2 flops per
// multiply-add; the M·L term sits on the critical path in both cases —
// rank 0 serially in Case 1, redundantly replicated in Case 2).
func PredictTransformed(m, n, l, nnz int, plat cluster.Platform) Estimate {
	p := float64(plat.Topology.P())
	minML := float64(min(m, l))

	sparseCritical := 4 * float64(nnz) / p
	dictCritical := 4 * float64(m) * float64(l)
	e := Estimate{
		FlopsCritical: sparseCritical + dictCritical,
		PathWords:     2 * minML,
		TotalWords:    2 * minML * (p - 1),
	}
	// Total flops: sparse work once across ranks; dictionary work once in
	// Case 1 (rank 0), P times in Case 2 (replicated).
	dictTotal := dictCritical
	if l > m {
		dictTotal *= p
	}
	e.FlopsTotal = 4*float64(nnz) + dictTotal

	// Bytes mirror the AddBytes claims: the two sparse products stream the
	// CSC payload (16·nnz_i each), the N/P-length ends twice each, the
	// L-vector and the column pointers; the two dictionary products stream
	// D plus an L- and an M-vector each — on the critical path in both
	// cases (rank 0 serially in Case 1, redundantly in Case 2).
	sparseBytes := 32*float64(nnz)/p + 32*float64(n)/p + 16*float64(l) + 16
	dictBytes := 16 * (float64(m)*float64(l) + float64(m) + float64(l))
	e.BytesCritical = sparseBytes + dictBytes
	dictBytesTotal := dictBytes
	if l > m {
		dictBytesTotal *= p
	}
	e.BytesTotal = 32*float64(nnz) + 32*float64(n) + (16*float64(l)+16)*p + dictBytesTotal

	c := plat.Cost
	e.Time = e.FlopsCritical*c.FlopTime + e.BytesCritical*c.MemByteTime +
		e.PathWords*plat.WordTime() + latencyTerm(plat, 2)
	e.EnergyJ = e.FlopsTotal*c.FlopEnergy + e.TotalWords*plat.WordEnergy()
	// The worst rank's resident set (allocmodel's applyCase1 polynomial,
	// rank 0, in words): the dictionary M·L, the CSC block's values and row
	// indices 2·nnz/P, its column pointers N/P + 1, and the workspace
	// vectors vl1, vl2 (L each) and vm (M).
	e.MemoryWordsPerRank = float64(m)*float64(l) + 2*float64(nnz)/p +
		float64(n)/p + float64(m) + 2*float64(l) + 1
	return e
}

// ChainTerms carries the whole-chain invariants of a FAµST factor chain
// D ≈ S_1·…·S_k into the Eq. 2/3/4 predictions — the same four symbols the
// allocmodel and memmodel contracts are proven in, so a perf estimate and a
// lint polynomial always speak about the same chain.
type ChainTerms struct {
	// NNZ is Σ nnz(S_i), the stored entries across all factors.
	NNZ int64
	// VecWords is Σ (rows_i + 2·cols_i + 1), the dense-vector words one
	// chain apply streams alongside the factor payloads (either direction).
	VecWords int64
	// ResidentWords is Σ (2·nnz_i + cols_i + 1), the chain's resident
	// footprint in 8-byte words.
	ResidentWords int64
	// InterDim is the widest intermediate vector between factor hops.
	InterDim int64
}

// PredictFastDict predicts one iteration of Algorithm 2 with the dense
// dictionary replaced by a FAµST factor chain: the schedule — and therefore
// every communication term — is PredictTransformed's, but the two
// dictionary applications cost Σ 2·nnz(S_i) flops each instead of 2·M·L,
// and the resident dictionary term shrinks from M·L words to the chain
// payload. Eq. 2 becomes
//
//	time ≈ (4·nnz/P + 4·Σnnz(S_i))·c_f + 2·min(M, L)·c_w + latency
//
// which is why the tuner can prefer the chain exactly when the factor
// budget undercuts M·L (amortized factorization cost permitting).
func PredictFastDict(m, n, l, nnz int, chain ChainTerms, plat cluster.Platform) Estimate {
	p := float64(plat.Topology.P())
	minML := float64(min(m, l))

	sparseCritical := 4 * float64(nnz) / p
	chainCritical := 4 * float64(chain.NNZ)
	e := Estimate{
		FlopsCritical: sparseCritical + chainCritical,
		PathWords:     2 * minML,
		TotalWords:    2 * minML * (p - 1),
	}
	// Chain flops once across ranks in Case 1 (rank 0), P times in Case 2
	// (replicated), exactly as the dense dictionary's.
	chainTotal := chainCritical
	if l > m {
		chainTotal *= p
	}
	e.FlopsTotal = 4*float64(nnz) + chainTotal

	// Bytes mirror the FastGram AddBytes claims: the two sparse products as
	// in PredictTransformed; the two chain applies each stream the factor
	// payloads (16·Σnnz_i) plus the hop vectors (8·VecWords).
	sparseBytes := 32*float64(nnz)/p + 32*float64(n)/p + 16*float64(l) + 16
	chainBytes := 2 * (16*float64(chain.NNZ) + 8*float64(chain.VecWords))
	e.BytesCritical = sparseBytes + chainBytes
	chainBytesTotal := chainBytes
	if l > m {
		chainBytesTotal *= p
	}
	e.BytesTotal = 32*float64(nnz) + 32*float64(n) + (16*float64(l)+16)*p + chainBytesTotal

	c := plat.Cost
	e.Time = e.FlopsCritical*c.FlopTime + e.BytesCritical*c.MemByteTime +
		e.PathWords*plat.WordTime() + latencyTerm(plat, 2)
	e.EnergyJ = e.FlopsTotal*c.FlopEnergy + e.TotalWords*plat.WordEnergy()
	// The worst rank's resident set (allocmodel's FastGram.applyCase1
	// polynomial, rank 0, in words): the chain payload replaces M·L, the CSC
	// block and workspace vectors stay, and the two hop buffers add
	// 2·InterDim.
	e.MemoryWordsPerRank = float64(chain.ResidentWords) + 2*float64(nnz)/p +
		float64(n)/p + float64(m) + 2*float64(l) + 2*float64(chain.InterDim) + 1
	return e
}

// PredictDense predicts one iteration of the untransformed baseline
// y = AᵀA·x with A column-partitioned: 4·M·N/P critical flops and 2·M
// critical words.
func PredictDense(m, n int, plat cluster.Platform) Estimate {
	p := float64(plat.Topology.P())
	e := Estimate{
		FlopsCritical: 4 * float64(m) * float64(n) / p,
		FlopsTotal:    4 * float64(m) * float64(n),
		PathWords:     2 * float64(m),
		TotalWords:    2 * float64(m) * (p - 1),
	}
	// Two dense products per iteration, each streaming the M×N/P block plus
	// its M- and N/P-length vector ends (the AddBytes contract).
	e.BytesCritical = 16 * (float64(m)*float64(n)/p + float64(m) + float64(n)/p)
	e.BytesTotal = 16 * (float64(m)*float64(n) + float64(m)*p + float64(n))
	c := plat.Cost
	e.Time = e.FlopsCritical*c.FlopTime + e.BytesCritical*c.MemByteTime +
		e.PathWords*plat.WordTime() + latencyTerm(plat, 2)
	e.EnergyJ = e.FlopsTotal*c.FlopEnergy + e.TotalWords*plat.WordEnergy()
	// The rank's resident set (allocmodel's DenseGram polynomial, in
	// words): the owned M×N/P column block plus the M-length partial
	// product buffer.
	e.MemoryWordsPerRank = float64(m)*float64(n)/p + float64(m)
	return e
}

// PredictSGD predicts one SGD iteration over an m×n data matrix with batch
// size b: 4·b·N/P critical flops and 2·b critical words.
func PredictSGD(m, n, batch int, plat cluster.Platform) Estimate {
	p := float64(plat.Topology.P())
	e := Estimate{
		FlopsCritical: 4 * float64(batch) * float64(n) / p,
		FlopsTotal:    4 * float64(batch) * float64(n),
		PathWords:     2 * float64(batch),
		TotalWords:    2 * float64(batch) * (p - 1),
	}
	// b dot products (16·n_i each), one Zero (8·n_i), and b axpys (24·n_i
	// each) per rank — the BatchGram AddBytes claims.
	e.BytesCritical = 40*float64(batch)*float64(n)/p + 8*float64(n)/p
	e.BytesTotal = 40*float64(batch)*float64(n) + 8*float64(n)
	c := plat.Cost
	e.Time = e.FlopsCritical*c.FlopTime + e.BytesCritical*c.MemByteTime +
		e.PathWords*plat.WordTime() + latencyTerm(plat, 2)
	e.EnergyJ = e.FlopsTotal*c.FlopEnergy + e.TotalWords*plat.WordEnergy()
	// The rank's resident set (allocmodel's BatchGram polynomial, in
	// words): every rank streams the full M×N data matrix from its own
	// copy, plus the batch-length partial product buffer.
	e.MemoryWordsPerRank = float64(m)*float64(n) + float64(batch)
	return e
}

// PredictEncodeBatch predicts the cost of Batch-OMP-coding a panel of
// `batch` signals against an M×L dictionary with support cap maxAtoms on
// the platform, whose P cores the panel parallelizes across (columns are
// independent, so the critical path carries ⌈batch/P⌉ of them). It is the
// serving layer's admission model: the same Eq. 2 shape as the solver
// predictions — flops at the achieved dense rate plus streamed bytes at
// memory bandwidth — with no collective terms, since coding touches no
// cluster.
//
// Per signal, Batch-OMP costs (Rubinstein et al., the implementation in
// internal/omp):
//
//	flops ≈ 2·M·L  (initial correlations α⁰ = Dᵀa)
//	      + k·(k+1)·L  (the α update re-applies i Gram-row axpys at step i)
//	      + k³  (progressive Cholesky growth and triangular solves, bound)
//	bytes ≈ 8·(M·L + M + L)  (streaming D once for α⁰)
//	      + 12·k·(k+1)·L  (the axpys re-stream 24 bytes per element)
//
// with k = min(maxAtoms, M, L). Both are upper bounds — early residual
// convergence only shrinks them — which is the right sign for an admission
// controller: it sheds on the modeled worst case, never accepts on it.
//
// MemoryWordsPerRank is the serving-side Eq. 4 analogue: the resident
// dictionary M·L, its precomputed Gram L², the batch's signals batch·M,
// and the per-worker α/α⁰/selection workspace ≈ 3·L.
func PredictEncodeBatch(m, l, batch, maxAtoms int, plat cluster.Platform) Estimate {
	if batch < 0 {
		batch = 0
	}
	k := float64(min(m, l))
	if maxAtoms > 0 && float64(maxAtoms) < k {
		k = float64(maxAtoms)
	}
	mf, lf := float64(m), float64(l)
	perFlops := 2*mf*lf + k*(k+1)*lf + k*k*k
	perBytes := 8*(mf*lf+mf+lf) + 12*k*(k+1)*lf

	p := float64(plat.Topology.P())
	critCols := math.Ceil(float64(batch) / p)
	e := Estimate{
		FlopsCritical: critCols * perFlops,
		FlopsTotal:    float64(batch) * perFlops,
		BytesCritical: critCols * perBytes,
		BytesTotal:    float64(batch) * perBytes,
	}
	c := plat.Cost
	e.Time = e.FlopsCritical*c.FlopTime + e.BytesCritical*c.MemByteTime
	e.EnergyJ = e.FlopsTotal * c.FlopEnergy
	e.MemoryWordsPerRank = mf*lf + lf*lf + float64(batch)*mf + 3*lf
	return e
}

// RetryBackoff is the modeled recovery pause before retry number attempt
// (0-based) of a supervised solve: base·2^attempt virtual seconds of
// exponential backoff. The solver Supervisor charges it to the run's
// ModeledTime when it restarts a solve on a shrunk communicator, so
// fault recovery shows up in the same performance model Eq. 2 feeds —
// and, being a pure function of the attempt number, replays exactly.
func RetryBackoff(base float64, attempt int) float64 {
	if base <= 0 || attempt < 0 {
		return 0
	}
	return math.Ldexp(base, attempt)
}
