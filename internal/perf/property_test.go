package perf

import (
	"testing"
	"testing/quick"

	"extdict/internal/cluster"
	"extdict/internal/rng"
)

// Property tests of the closed-form cost model: the qualitative shapes the
// tuner depends on must hold over random problem shapes and platforms.

func randomShape(r *rng.RNG) (m, n, l, nnz int, plat cluster.Platform) {
	m = 16 + r.Intn(512)
	n = 256 + r.Intn(1<<16)
	l = 8 + r.Intn(2*m)
	alpha := 1 + r.Intn(20)
	nnz = alpha * n
	plats := cluster.PaperPlatforms()
	plat = plats[r.Intn(len(plats))]
	return
}

func TestCostsPositive(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		m, n, l, nnz, plat := randomShape(r)
		e := PredictTransformed(m, n, l, nnz, plat)
		return e.Time > 0 && e.EnergyJ > 0 && e.MemoryWordsPerRank > 0 &&
			e.FlopsCritical > 0 && e.PathWords > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInNNZ(t *testing.T) {
	// More stored coefficients never make an iteration cheaper.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 1)
		m, n, l, nnz, plat := randomShape(r)
		a := PredictTransformed(m, n, l, nnz, plat)
		b := PredictTransformed(m, n, l, nnz+n, plat)
		return b.Time >= a.Time && b.EnergyJ >= a.EnergyJ &&
			b.MemoryWordsPerRank >= a.MemoryWordsPerRank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInL(t *testing.T) {
	// For fixed nnz, a bigger dictionary costs more time (flops up, words
	// up until L=M, flat after).
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 2)
		m, n, l, nnz, plat := randomShape(r)
		a := PredictTransformed(m, n, l, nnz, plat)
		b := PredictTransformed(m, n, l+l/2+1, nnz, plat)
		return b.Time >= a.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreRanksNeverMoreCriticalFlops(t *testing.T) {
	// Growing P can only shrink the per-rank share of the sparse work;
	// the dictionary term is P-independent.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 3)
		m, n, l, nnz, _ := randomShape(r)
		small := PredictTransformed(m, n, l, nnz, cluster.NewPlatform(1, 2))
		big := PredictTransformed(m, n, l, nnz, cluster.NewPlatform(1, 16))
		return big.FlopsCritical <= small.FlopsCritical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationCapAtM(t *testing.T) {
	// Words on the wire never exceed 2·M regardless of L (Case 2 replaces
	// the L-vector exchange with an M-vector exchange).
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 4)
		m, n, l, nnz, plat := randomShape(r)
		e := PredictTransformed(m, n, l, nnz, plat)
		return e.PathWords <= float64(2*m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSGDWordsIndependentOfM(t *testing.T) {
	plat := cluster.NewPlatform(2, 4)
	a := PredictSGD(100, 1000, 64, plat)
	b := PredictSGD(100, 5000, 64, plat)
	if a.PathWords != b.PathWords {
		t.Fatal("SGD words must depend only on the batch size")
	}
}
