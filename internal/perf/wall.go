package perf

import "time"

// Stopwatch measures host wall-clock time. It exists so clock reads stay
// confined to this package and internal/cluster (the noclock invariant
// enforced by extdict-lint): front ends and experiment drivers that report
// elapsed wall time start a Stopwatch instead of calling time.Now, keeping
// every other package free of platform noise the cost model does not model.
type Stopwatch struct{ start time.Time }

// StartWall begins timing.
func StartWall() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall time since StartWall.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
